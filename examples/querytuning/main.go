// Querytuning: the paper's performance-engineering observations as
// runnable ablations — the UDF-vs-builtin call overhead of Figure 14, the
// fenced-UDF penalty the paper avoided, the §4.1 compression trade-off,
// the §4.4 join-algorithm cost shapes, and the statistics-driven plan
// change: the same three-table join planned greedily vs with the
// cost-based optimizer (DESIGN.md §5j).
package main

import (
	"fmt"
	"log"
	"time"

	xmlstore "repro"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/engine/catalog"
	"repro/internal/engine/plan"
	"repro/internal/engine/types"
)

func main() {
	ds := bench.ShakespeareDataset(16)
	hybrid, _, err := bench.BuildStore(ds, core.Hybrid, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Figure 14: built-in vs UDF call overhead ==")
	ms, err := bench.RunUDFOverhead(hybrid, 9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.UDFTable(ms))

	fmt.Println("\n== FENCED vs NOT FENCED UDFs ==")
	fmt.Println("(the paper runs NOT FENCED: 'the FENCED option causes a significant performance penalty')")
	q := `SELECT udf_length(speaker_value) FROM speaker`
	base := timeIt(hybrid, q)
	hybrid.DB.Registry.Fenced = true
	fenced := timeIt(hybrid, q)
	hybrid.DB.Registry.Fenced = false
	fmt.Printf("not fenced: %v   fenced: %v   penalty: %.1fx\n",
		base.Round(time.Microsecond), fenced.Round(time.Microsecond),
		float64(fenced)/float64(base))

	fmt.Println("\n== §4.4 join algorithm ablation (QS4 Hybrid plan) ==")
	qs4 := bench.ShakespeareQueries()[3].Hybrid
	for _, alg := range []plan.JoinAlgorithm{plan.JoinHash, plan.JoinMerge, plan.JoinNested} {
		hybrid.DB.SetPlannerOptions(plan.Options{Join: alg})
		fmt.Printf("%-8s %v\n", alg, timeIt(hybrid, qs4).Round(time.Microsecond))
	}
	hybrid.DB.SetPlannerOptions(plan.Options{})

	fmt.Println("\n== §4.1 XADT storage-format trade-off ==")
	sig := bench.SigmodDataset(200)
	for _, format := range []xmlstore.Format{xmlstore.Raw, xmlstore.Compressed} {
		f := format
		st, err := core.NewStore(sig.DTD, core.Config{Algorithm: core.XORator, ForceFormat: &f})
		if err != nil {
			log.Fatal(err)
		}
		if err := st.Load(sig.Docs); err != nil {
			log.Fatal(err)
		}
		if err := st.RunStats(); err != nil {
			log.Fatal(err)
		}
		t := timeIt(st, `SELECT getElm(getElm(pp_slist, 'aTuple', 'title', 'Join'), 'author', '', '')
FROM pp WHERE findKeyInElm(pp_slist, 'title', 'Join') = 1`)
		fmt.Printf("%-11s database=%5.1fMB  QG1=%v\n",
			format, float64(st.Stats().DataBytes)/(1<<20), t.Round(time.Microsecond))
	}

	fmt.Println("\n== §5j statistics-driven join ordering ==")
	statsDrivenPlanChange()
}

// statsDrivenPlanChange builds the chain the greedy order loses on —
// a tiny table a whose join edge to b explodes (4 distinct key values),
// while b joins c 1:1 over a unique key — and shows the cost-based
// planner reordering the join once statistics exist.
func statsDrivenPlanChange() {
	db := engine.Open(engine.Config{})
	mk := func(name string, cols []string, rows int, gen func(i int) []types.Value) {
		specs := make([]catalog.Column, len(cols))
		for i, c := range cols {
			specs[i] = catalog.Column{Name: c, Type: types.KindInt}
		}
		if _, err := db.CreateTable(name, specs); err != nil {
			log.Fatal(err)
		}
		tbl := db.Catalog.Table(name)
		for i := 0; i < rows; i++ {
			if err := tbl.Insert(gen(i)); err != nil {
				log.Fatal(err)
			}
		}
	}
	mk("a", []string{"a_id", "a_ab"}, 100, func(i int) []types.Value {
		return []types.Value{types.NewInt(int64(i)), types.NewInt(int64(i % 4))}
	})
	mk("b", []string{"b_id", "b_ab", "b_bc"}, 2000, func(i int) []types.Value {
		return []types.Value{types.NewInt(int64(i)), types.NewInt(int64(i % 4)), types.NewInt(int64(i))}
	})
	mk("c", []string{"c_id", "c_bc"}, 2000, func(i int) []types.Value {
		return []types.Value{types.NewInt(int64(i)), types.NewInt(int64(i))}
	})
	if err := db.RunStats(); err != nil {
		log.Fatal(err)
	}

	q := `SELECT COUNT(*) FROM a, b, c WHERE a_ab = b_ab AND b_bc = c_bc`
	show := func(label string, opts plan.Options) time.Duration {
		db.SetPlannerOptions(opts)
		ex, err := db.Explain(q)
		if err != nil {
			log.Fatal(err)
		}
		best := time.Duration(0)
		for i := 0; i < 3; i++ {
			start := time.Now()
			if _, err := db.Query(q); err != nil {
				log.Fatal(err)
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		fmt.Printf("--- %s (%v) ---\n%s", label, best.Round(time.Microsecond), ex)
		return best
	}
	greedy := show("greedy: smallest table first, a⋈b explodes", plan.Options{DisableCostModel: true})
	cost := show("cost-based: the selective b⋈c edge joins first", plan.Options{})
	fmt.Printf("join-order speedup: %.1fx\n", float64(greedy)/float64(cost))
	db.SetPlannerOptions(plan.Options{})
}

func timeIt(st *core.Store, query string) time.Duration {
	best := time.Duration(0)
	for i := 0; i < 3; i++ {
		start := time.Now()
		if _, err := st.Query(query); err != nil {
			log.Fatal(err)
		}
		d := time.Since(start)
		if best == 0 || d < best {
			best = d
		}
	}
	return best
}
