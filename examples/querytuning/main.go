// Querytuning: the paper's performance-engineering observations as
// runnable ablations — the UDF-vs-builtin call overhead of Figure 14, the
// fenced-UDF penalty the paper avoided, the §4.1 compression trade-off,
// and the §4.4 join-algorithm cost shapes.
package main

import (
	"fmt"
	"log"
	"time"

	xmlstore "repro"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine/plan"
)

func main() {
	ds := bench.ShakespeareDataset(16)
	hybrid, _, err := bench.BuildStore(ds, core.Hybrid, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Figure 14: built-in vs UDF call overhead ==")
	ms, err := bench.RunUDFOverhead(hybrid, 9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.UDFTable(ms))

	fmt.Println("\n== FENCED vs NOT FENCED UDFs ==")
	fmt.Println("(the paper runs NOT FENCED: 'the FENCED option causes a significant performance penalty')")
	q := `SELECT udf_length(speaker_value) FROM speaker`
	base := timeIt(hybrid, q)
	hybrid.DB.Registry.Fenced = true
	fenced := timeIt(hybrid, q)
	hybrid.DB.Registry.Fenced = false
	fmt.Printf("not fenced: %v   fenced: %v   penalty: %.1fx\n",
		base.Round(time.Microsecond), fenced.Round(time.Microsecond),
		float64(fenced)/float64(base))

	fmt.Println("\n== §4.4 join algorithm ablation (QS4 Hybrid plan) ==")
	qs4 := bench.ShakespeareQueries()[3].Hybrid
	for _, alg := range []plan.JoinAlgorithm{plan.JoinHash, plan.JoinMerge, plan.JoinNested} {
		hybrid.DB.SetPlannerOptions(plan.Options{Join: alg})
		fmt.Printf("%-8s %v\n", alg, timeIt(hybrid, qs4).Round(time.Microsecond))
	}
	hybrid.DB.SetPlannerOptions(plan.Options{})

	fmt.Println("\n== §4.1 XADT storage-format trade-off ==")
	sig := bench.SigmodDataset(200)
	for _, format := range []xmlstore.Format{xmlstore.Raw, xmlstore.Compressed} {
		f := format
		st, err := core.NewStore(sig.DTD, core.Config{Algorithm: core.XORator, ForceFormat: &f})
		if err != nil {
			log.Fatal(err)
		}
		if err := st.Load(sig.Docs); err != nil {
			log.Fatal(err)
		}
		if err := st.RunStats(); err != nil {
			log.Fatal(err)
		}
		t := timeIt(st, `SELECT getElm(getElm(pp_slist, 'aTuple', 'title', 'Join'), 'author', '', '')
FROM pp WHERE findKeyInElm(pp_slist, 'title', 'Join') = 1`)
		fmt.Printf("%-11s database=%5.1fMB  QG1=%v\n",
			format, float64(st.Stats().DataBytes)/(1<<20), t.Round(time.Microsecond))
	}
}

func timeIt(st *core.Store, query string) time.Duration {
	best := time.Duration(0)
	for i := 0; i < 3; i++ {
		start := time.Now()
		if _, err := st.Query(query); err != nil {
			log.Fatal(err)
		}
		d := time.Since(start)
		if best == 0 || d < best {
			best = d
		}
	}
	return best
}
