// Shakespeare: the paper's §4.3 scenario — load the plays corpus under
// both mappings, compare storage footprints (Table 1), and run the QE1 /
// QE2 example queries of Figures 7 and 8 side by side.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	xmlstore "repro"
	"repro/internal/datagen"
	"repro/internal/xmltree"
)

func main() {
	plays := flag.Int("plays", 10, "number of plays to generate")
	flag.Parse()

	cfg := datagen.DefaultPlayConfig()
	cfg.Plays = *plays
	docs := datagen.GeneratePlays(cfg)
	texts := make([]string, len(docs))
	for i, d := range docs {
		texts[i] = xmltree.Serialize(d.Root)
	}
	fmt.Printf("generated %d plays (%.1f MB)\n\n", len(docs),
		float64(datagen.CorpusSize(docs))/(1<<20))

	stores := map[xmlstore.Algorithm]*xmlstore.Store{}
	for _, alg := range []xmlstore.Algorithm{xmlstore.Hybrid, xmlstore.XORator} {
		st, err := xmlstore.NewStore(xmlstore.ShakespeareDTD, xmlstore.Config{Algorithm: alg})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		if err := st.LoadXML(texts); err != nil {
			log.Fatal(err)
		}
		load := time.Since(start)
		if err := st.CreateDefaultIndexes(); err != nil {
			log.Fatal(err)
		}
		if err := st.RunStats(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s  (loaded in %v)\n", st.Stats(), load.Round(time.Millisecond))
		stores[alg] = st
	}

	// QE1 (Figure 7): lines spoken in acts by HAMLET containing "friend".
	fmt.Println("\nQE1: HAMLET's lines containing 'friend' (Figure 7)")
	runBoth(stores,
		`SELECT line_value
FROM speech, act, speaker, line
WHERE speech_parentID = actID
AND speech_parentCODE = 'ACT'
AND speaker_parentID = speechID
AND speaker_value = 'HAMLET'
AND line_parentID = speechID
AND line_value LIKE '%friend%'`,
		`SELECT getElm(speech_line, 'LINE', 'LINE', 'friend')
FROM speech, act
WHERE findKeyInElm(speech_speaker, 'SPEAKER', 'HAMLET') = 1
AND findKeyInElm(speech_line, 'LINE', 'friend') = 1
AND speech_parentID = actID
AND speech_parentCODE = 'ACT'`)

	// QE2 (Figure 8): the second line in each speech.
	fmt.Println("\nQE2: the second line in each speech (Figure 8)")
	runBoth(stores,
		`SELECT line_value FROM speech, line
WHERE line_parentID = speechID AND line_childOrder = 2`,
		`SELECT getElmIndex(speech_line, '', 'LINE', 2, 2) FROM speech`)
}

func runBoth(stores map[xmlstore.Algorithm]*xmlstore.Store, hybridSQL, xoratorSQL string) {
	for _, entry := range []struct {
		alg xmlstore.Algorithm
		sql string
	}{{xmlstore.Hybrid, hybridSQL}, {xmlstore.XORator, xoratorSQL}} {
		st := stores[entry.alg]
		joins, err := st.JoinCount(entry.sql)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := st.Query(entry.sql)
		if err != nil {
			log.Fatal(err)
		}
		took := time.Since(start)
		fmt.Printf("  %-8s %d joins, %d rows, %v\n", entry.alg, joins, len(res.Rows), took.Round(time.Microsecond))
		if len(res.Rows) > 0 {
			sample, err := xmlstore.FragmentText(res.Rows[0][0])
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("           first row: %.70s\n", sample)
		}
	}
}
