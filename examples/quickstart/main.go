// Quickstart: define a DTD, pick a mapping, load documents, and query —
// the minimal end-to-end tour of the public API.
package main

import (
	"fmt"
	"log"

	xmlstore "repro"
)

const libraryDTD = `
<!ELEMENT library (book*)>
<!ELEMENT book    (title, author+, excerpt?)>
<!ELEMENT title   (#PCDATA)>
<!ELEMENT author  (#PCDATA)>
<!ELEMENT excerpt (para*)>
<!ELEMENT para    (#PCDATA)>
`

const docs = `<library>
  <book>
    <title>A Night of Queries</title>
    <author>A. Coder</author>
    <author>B. Hacker</author>
    <excerpt><para>It was a dark and stormy backup window.</para>
             <para>The optimizer chose poorly.</para></excerpt>
  </book>
  <book>
    <title>The Joins of Summer</title>
    <author>C. Planner</author>
  </book>
</library>`

func main() {
	// Show what each mapping algorithm derives from the DTD. Hybrid
	// shreds into one table per starred element; XORator folds the whole
	// book subtree into a single XADT attribute of library.
	for _, alg := range []xmlstore.Algorithm{xmlstore.Hybrid, xmlstore.XORator} {
		schema, err := xmlstore.SchemaText(libraryDTD, alg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("-- %s schema --\n%s\n", alg, schema)
	}

	// Build an XORator store and load the documents.
	st, err := xmlstore.NewStore(libraryDTD, xmlstore.Config{Algorithm: xmlstore.XORator})
	if err != nil {
		log.Fatal(err)
	}
	if err := st.LoadXML([]string{docs}); err != nil {
		log.Fatal(err)
	}
	if err := st.CreateDefaultIndexes(); err != nil {
		log.Fatal(err)
	}
	if err := st.RunStats(); err != nil {
		log.Fatal(err)
	}
	fmt.Println(st.Stats())

	// Unnest the books (the Figure 9 pattern) and keep those whose
	// excerpt mentions the optimizer; extract their titles with getElm.
	res, err := st.Query(`
SELECT getElm(b.out, 'title', '', '')
FROM library, TABLE(unnest(library_book, 'book')) b
WHERE findKeyInElm(b.out, 'para', 'optimizer') = 1`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbooks mentioning the optimizer:")
	for _, row := range res.Rows {
		title, err := xmlstore.FragmentText(row[0])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(" -", title)
	}

	// All authors, distinct and sorted.
	res, err = st.Query(`
SELECT DISTINCT xadtInnerText(a.out) AS author
FROM library, TABLE(unnest(library_book, 'author')) a
ORDER BY author`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nall authors:")
	for _, row := range res.Rows {
		fmt.Println(" -", row[0])
	}
}
