// Sigmod: the paper's §4.4 scenario — the deep SIGMOD Proceedings DTD
// where XORator maps everything into a single table with one large XADT
// attribute, compression pays off, and queries become chains of XADT
// method calls and unnest applications.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	xmlstore "repro"
	"repro/internal/datagen"
	"repro/internal/xmltree"
)

func main() {
	n := flag.Int("n", 300, "number of proceedings documents")
	flag.Parse()

	cfg := datagen.DefaultSigmodConfig()
	cfg.Documents = *n
	docs := datagen.GenerateSigmod(cfg)
	texts := make([]string, len(docs))
	for i, d := range docs {
		texts[i] = xmltree.Serialize(d.Root)
	}
	fmt.Printf("generated %d proceedings documents (%.1f MB)\n\n", len(docs),
		float64(datagen.CorpusSize(docs))/(1<<20))

	st, err := xmlstore.NewStore(xmlstore.SigmodDTD, xmlstore.Config{Algorithm: xmlstore.XORator})
	if err != nil {
		log.Fatal(err)
	}
	if err := st.LoadXML(texts); err != nil {
		log.Fatal(err)
	}
	if err := st.RunStats(); err != nil {
		log.Fatal(err)
	}
	// The deep DTD maps to a single table, and the sampling step picks
	// the compressed XADT representation (§4.4: ~38% smaller).
	fmt.Println(st.Stats())

	queries := []struct {
		name string
		sql  string
	}{
		{"authors of papers with 'Join' in the title (QG1)", `
SELECT getElm(getElm(pp_slist, 'aTuple', 'title', 'Join'), 'author', '', '')
FROM pp WHERE findKeyInElm(pp_slist, 'title', 'Join') = 1`},
		{"sections with papers by authors named 'Worthy' (QG3)", `
SELECT getElm(s.out, 'sectionName', '', '')
FROM pp, TABLE(unnest(pp_slist, 'sListTuple')) s
WHERE findKeyInElm(s.out, 'author', 'Worthy') = 1`},
		{"distinct sections holding papers by authors named 'Bird' (QG5)", `
SELECT COUNT(DISTINCT xadtInnerText(sn.out))
FROM pp, TABLE(unnest(pp_slist, 'sListTuple')) s,
     TABLE(unnest(s.out, 'sectionName')) sn
WHERE findKeyInElm(s.out, 'author', 'Bird') = 1`},
		{"second author of papers with 'Join' in the title (QG6)", `
SELECT getElmIndex(a.out, 'authors', 'author', 2, 2)
FROM pp, TABLE(unnest(pp_slist, 'aTuple')) a
WHERE findKeyInElm(a.out, 'title', 'Join') = 1`},
	}
	for _, q := range queries {
		start := time.Now()
		res, err := st.Query(q.sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s\n  %d rows in %v\n", q.name, len(res.Rows),
			time.Since(start).Round(time.Microsecond))
		if len(res.Rows) > 0 {
			sample, err := xmlstore.FragmentText(res.Rows[0][0])
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  first row: %.80s\n", sample)
		}
	}
}
