// Package testutil carries the shared -seed flag of the repo's
// randomized tests. Every test binary that imports it accepts
//
//	go test -run TestName ./internal/<pkg>/ -seed N
//
// so a CI failure can be replayed from the seed its log prints. The flag
// defaults to 0, meaning "use the test's own fixed default seed" — runs
// stay deterministic unless a seed is given explicitly.
package testutil

import (
	"flag"
	"fmt"
	"testing"
)

var seedFlag = flag.Int64("seed", 0, "override the seed of randomized tests (0 = per-test default)")

// Seed returns the seed a randomized test should use: the -seed flag when
// set, otherwise def. It logs the choice so every run's log carries the
// one-line reproduction command.
func Seed(tb testing.TB, def int64) int64 {
	tb.Helper()
	s := def
	if *seedFlag != 0 {
		s = *seedFlag
	}
	tb.Logf("seed %d (replay: go test -run '^%s$' -seed %d)", s, tb.Name(), s)
	return s
}

// ReproLine formats the one-line reproduction command for a failure under
// the given seed, for embedding in t.Errorf messages.
func ReproLine(tb testing.TB, seed int64) string {
	return fmt.Sprintf("go test -run '^%s$' -seed %d", tb.Name(), seed)
}
