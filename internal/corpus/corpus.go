// Package corpus holds the document type definitions used throughout the
// paper and this reproduction: the Plays DTD of Figure 1, the full
// Shakespeare DTD of Figure 10, and the SIGMOD Proceedings DTD of
// Figure 12.
package corpus

// PlaysDTD is the running-example DTD of Figure 1.
const PlaysDTD = `
<!ELEMENT PLAY      (INDUCT?, ACT+)>
<!ELEMENT INDUCT    (TITLE, SUBTITLE*, SCENE+)>
<!ELEMENT ACT       (SCENE+, TITLE, SUBTITLE*, SPEECH+, PROLOGUE?)>
<!ELEMENT SCENE     (TITLE, SUBTITLE*, (SPEECH | SUBHEAD)+)>
<!ELEMENT SPEECH    (SPEAKER, LINE)+>
<!ELEMENT PROLOGUE  (#PCDATA)>
<!ELEMENT TITLE     (#PCDATA)>
<!ELEMENT SUBTITLE  (#PCDATA)>
<!ELEMENT SUBHEAD   (#PCDATA)>
<!ELEMENT SPEAKER   (#PCDATA)>
<!ELEMENT LINE      (#PCDATA)>
`

// ShakespeareDTD is the DTD of the Shakespeare plays data set (Figure 10),
// as published by Jon Bosak.
const ShakespeareDTD = `
<!ELEMENT PLAY      (TITLE, FM, PERSONAE, SCNDESCR, PLAYSUBT, INDUCT?,
                     PROLOGUE?, ACT+, EPILOGUE?)>
<!ELEMENT TITLE     (#PCDATA)>
<!ELEMENT FM        (P+)>
<!ELEMENT P         (#PCDATA)>
<!ELEMENT PERSONAE  (TITLE, (PERSONA | PGROUP)+)>
<!ELEMENT PGROUP    (PERSONA+, GRPDESCR)>
<!ELEMENT PERSONA   (#PCDATA)>
<!ELEMENT GRPDESCR  (#PCDATA)>
<!ELEMENT SCNDESCR  (#PCDATA)>
<!ELEMENT PLAYSUBT  (#PCDATA)>
<!ELEMENT INDUCT    (TITLE, SUBTITLE*, (SCENE+ | (SPEECH | STAGEDIR | SUBHEAD)+))>
<!ELEMENT ACT       (TITLE, SUBTITLE*, PROLOGUE?, SCENE+, EPILOGUE?)>
<!ELEMENT SCENE     (TITLE, SUBTITLE*, (SPEECH | STAGEDIR | SUBHEAD)+)>
<!ELEMENT PROLOGUE  (TITLE, SUBTITLE*, (STAGEDIR | SPEECH)+)>
<!ELEMENT EPILOGUE  (TITLE, SUBTITLE*, (STAGEDIR | SPEECH)+)>
<!ELEMENT SPEECH    (SPEAKER+, (LINE | STAGEDIR | SUBHEAD)+)>
<!ELEMENT SPEAKER   (#PCDATA)>
<!ELEMENT SUBTITLE  (#PCDATA)>
<!ELEMENT SUBHEAD   (#PCDATA)>
<!ELEMENT LINE      (#PCDATA | STAGEDIR)*>
<!ELEMENT STAGEDIR  (#PCDATA)>
`

// SigmodDTD is the SIGMOD Proceedings DTD (Figure 12): a deep DTD whose
// frequently queried elements (author, title) sit at the bottom level. The
// Xlink parameter entity is declared here; the paper's figure references it
// without showing its declaration.
const SigmodDTD = `
<!ENTITY % Xlink "href CDATA #IMPLIED">
<!ELEMENT PP          (volume, number, month, year, conference,
                       date, confyear, location, sList)>
<!ELEMENT volume      (#PCDATA)>
<!ELEMENT number      (#PCDATA)>
<!ELEMENT month       (#PCDATA)>
<!ELEMENT year        (#PCDATA)>
<!ELEMENT conference  (#PCDATA)>
<!ELEMENT date        (#PCDATA)>
<!ELEMENT confyear    (#PCDATA)>
<!ELEMENT location    (#PCDATA)>
<!ELEMENT sList       (sListTuple)*>
<!ELEMENT sListTuple  (sectionName, articles)>
<!ELEMENT sectionName (#PCDATA)>
<!ATTLIST sectionName SectionPosition CDATA #IMPLIED>
<!ELEMENT articles    (aTuple)*>
<!ELEMENT aTuple      (title, authors, initPage, endPage, Toindex, fullText)>
<!ELEMENT title       (#PCDATA)>
<!ATTLIST title       articleCode CDATA #IMPLIED>
<!ELEMENT authors     (author)*>
<!ELEMENT author      (#PCDATA)>
<!ATTLIST author      AuthorPosition CDATA #IMPLIED>
<!ELEMENT initPage    (#PCDATA)>
<!ELEMENT endPage     (#PCDATA)>
<!ELEMENT Toindex     (index)?>
<!ELEMENT index       (#PCDATA)>
<!ATTLIST index       %Xlink;>
<!ELEMENT fullText    (size)?>
<!ELEMENT size        (#PCDATA)>
<!ATTLIST size        %Xlink;>
`
