package mapping

import (
	"sort"
	"testing"

	"repro/internal/corpus"
	"repro/internal/dtd"
)

func simplify(t *testing.T, src string) *dtd.SimplifiedDTD {
	t.Helper()
	d, err := dtd.Parse(src)
	if err != nil {
		t.Fatalf("dtd.Parse: %v", err)
	}
	return dtd.Simplify(d)
}

func hybridSchema(t *testing.T, src string) *Schema {
	t.Helper()
	s, err := Hybrid(simplify(t, src))
	if err != nil {
		t.Fatalf("Hybrid: %v", err)
	}
	return s
}

func xoratorSchema(t *testing.T, src string) *Schema {
	t.Helper()
	s, err := XORator(simplify(t, src))
	if err != nil {
		t.Fatalf("XORator: %v", err)
	}
	return s
}

func sortedNames(s *Schema) []string {
	names := s.TableNames()
	sort.Strings(names)
	return names
}

// TestPlaysHybridTables checks the Figure 5 table set for the running
// example. (The paper's figure omits scene_parentCODE even though SCENE
// has two parent relations; we include it for consistency.)
func TestPlaysHybridTables(t *testing.T) {
	s := hybridSchema(t, corpus.PlaysDTD)
	want := []string{"act", "induct", "line", "play", "scene", "speaker", "speech", "subhead", "subtitle"}
	got := sortedNames(s)
	if len(got) != len(want) {
		t.Fatalf("tables = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tables = %v, want %v", got, want)
		}
	}
}

func TestPlaysHybridActColumns(t *testing.T) {
	s := hybridSchema(t, corpus.PlaysDTD)
	act := s.Relation("act")
	if act == nil {
		t.Fatal("no act relation")
	}
	wantCols := []string{"actID", "act_parentID", "act_childOrder", "act_title", "act_prologue"}
	if len(act.Columns) != len(wantCols) {
		t.Fatalf("act = %s, want columns %v", act, wantCols)
	}
	for i, w := range wantCols {
		if act.Columns[i].Name != w {
			t.Errorf("act column %d = %s, want %s", i, act.Columns[i].Name, w)
		}
	}
	if c, _ := act.Column("act_title"); c.Type != String || c.Kind != KindInlined {
		t.Errorf("act_title = %+v", c)
	}
}

func TestPlaysHybridParentCodes(t *testing.T) {
	s := hybridSchema(t, corpus.PlaysDTD)
	// speech and subtitle have multiple parent relations (paper Fig 5);
	// scene does too (INDUCT and ACT), which the figure omits.
	for _, tc := range []struct {
		table string
		want  bool
	}{
		{"speech", true}, {"subtitle", true}, {"scene", true},
		{"subhead", false}, {"speaker", false}, {"line", false}, {"induct", false},
	} {
		r := s.Relation(tc.table)
		got := r.HasColumn(tc.table + "_parentCODE")
		if got != tc.want {
			t.Errorf("%s parentCODE present = %v, want %v", tc.table, got, tc.want)
		}
	}
}

func TestPlaysHybridValueColumns(t *testing.T) {
	s := hybridSchema(t, corpus.PlaysDTD)
	for _, table := range []string{"subtitle", "subhead", "speaker", "line"} {
		r := s.Relation(table)
		c, ok := r.Column(table + "_value")
		if !ok || c.Type != String || c.Kind != KindValue {
			t.Errorf("%s value column = %+v, %v", table, c, ok)
		}
	}
	if s.Relation("play").HasColumn("play_value") {
		t.Error("play should not have a value column")
	}
}

// TestPlaysXoratorTables checks the Figure 6 table set.
func TestPlaysXoratorTables(t *testing.T) {
	s := xoratorSchema(t, corpus.PlaysDTD)
	want := []string{"act", "induct", "play", "scene", "speech"}
	got := sortedNames(s)
	if len(got) != len(want) {
		t.Fatalf("tables = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tables = %v, want %v", got, want)
		}
	}
}

func TestPlaysXoratorColumns(t *testing.T) {
	s := xoratorSchema(t, corpus.PlaysDTD)
	act := s.Relation("act")
	wantCols := []struct {
		name string
		typ  ColType
	}{
		{"actID", Int},
		{"act_parentID", Int},
		{"act_childOrder", Int},
		{"act_title", String},
		{"act_subtitle", XADT},
		{"act_prologue", String},
	}
	if len(act.Columns) != len(wantCols) {
		t.Fatalf("act = %s", act)
	}
	for i, w := range wantCols {
		if act.Columns[i].Name != w.name || act.Columns[i].Type != w.typ {
			t.Errorf("act column %d = %s:%v, want %s:%v",
				i, act.Columns[i].Name, act.Columns[i].Type, w.name, w.typ)
		}
	}

	speech := s.Relation("speech")
	for _, col := range []string{"speech_speaker", "speech_line"} {
		c, ok := speech.Column(col)
		if !ok || c.Type != XADT || c.Kind != KindXADT {
			t.Errorf("%s = %+v, %v; want XADT", col, c, ok)
		}
	}
	if !speech.HasColumn("speech_parentCODE") {
		t.Error("speech should have parentCODE (ACT and SCENE parents)")
	}

	scene := s.Relation("scene")
	for _, col := range []string{"scene_subtitle", "scene_subhead"} {
		if c, ok := scene.Column(col); !ok || c.Type != XADT {
			t.Errorf("%s = %+v, %v; want XADT", col, c, ok)
		}
	}
	if c, ok := scene.Column("scene_title"); !ok || c.Type != String {
		t.Errorf("scene_title = %+v, %v", c, ok)
	}
}

// TestShakespeareTableCounts checks Table 1: 17 tables under Hybrid and 7
// under XORator.
func TestShakespeareTableCounts(t *testing.T) {
	h := hybridSchema(t, corpus.ShakespeareDTD)
	if got := len(h.Relations); got != 17 {
		t.Errorf("Hybrid Shakespeare tables = %d, want 17\n%v", got, h.TableNames())
	}
	x := xoratorSchema(t, corpus.ShakespeareDTD)
	if got := len(x.Relations); got != 7 {
		t.Errorf("XORator Shakespeare tables = %d, want 7\n%v", got, x.TableNames())
	}
	want := map[string]bool{"play": true, "induct": true, "act": true, "scene": true,
		"prologue": true, "epilogue": true, "speech": true}
	for _, name := range x.TableNames() {
		if !want[name] {
			t.Errorf("unexpected XORator table %s", name)
		}
	}
}

func TestShakespeareXoratorAbsorbs(t *testing.T) {
	x := xoratorSchema(t, corpus.ShakespeareDTD)
	play := x.Relation("play")
	// FM and PERSONAE subtrees are absorbed into XADT attributes.
	for _, col := range []string{"play_fm", "play_personae"} {
		c, ok := play.Column(col)
		if !ok || c.Type != XADT {
			t.Errorf("%s = %+v, %v; want XADT", col, c, ok)
		}
	}
	// Mixed-content LINE (with STAGEDIR children) is absorbed into speech.
	speech := x.Relation("speech")
	if c, ok := speech.Column("speech_line"); !ok || c.Type != XADT {
		t.Errorf("speech_line = %+v, %v; want XADT", c, ok)
	}
	if x.RelationFor("LINE") != nil {
		t.Error("LINE should not have its own relation under XORator")
	}
}

// TestSigmodTableCounts checks Table 2: 7 tables under Hybrid and a single
// table under XORator.
func TestSigmodTableCounts(t *testing.T) {
	h := hybridSchema(t, corpus.SigmodDTD)
	if got := len(h.Relations); got != 7 {
		t.Errorf("Hybrid SIGMOD tables = %d, want 7\n%v", got, h.TableNames())
	}
	x := xoratorSchema(t, corpus.SigmodDTD)
	if got := len(x.Relations); got != 1 {
		t.Errorf("XORator SIGMOD tables = %d, want 1\n%v", got, x.TableNames())
	}
	pp := x.Relation("pp")
	if c, ok := pp.Column("pp_slist"); !ok || c.Type != XADT {
		t.Errorf("pp_slist = %+v, %v; want XADT", c, ok)
	}
	if c, ok := pp.Column("pp_volume"); !ok || c.Type != String {
		t.Errorf("pp_volume = %+v, %v; want string", c, ok)
	}
}

func TestSigmodHybridDeepInlining(t *testing.T) {
	h := hybridSchema(t, corpus.SigmodDTD)
	atuple := h.Relation("atuple")
	if atuple == nil {
		t.Fatalf("no atuple relation; tables = %v", h.TableNames())
	}
	// Toindex/index and fullText/size inline two levels deep, attributes
	// included.
	for _, col := range []string{
		"atuple_title", "atuple_title_articleCode",
		"atuple_initpage", "atuple_endpage",
		"atuple_toindex_index", "atuple_toindex_index_href",
		"atuple_fulltext_size", "atuple_fulltext_size_href",
	} {
		if !atuple.HasColumn(col) {
			t.Errorf("atuple missing column %s\n%s", col, atuple)
		}
	}
	author := h.Relation("author")
	if !author.HasColumn("author_AuthorPosition") || !author.HasColumn("author_value") {
		t.Errorf("author = %s", author)
	}
}

// TestMonetBlowUp checks the §2 claim that the Monet mapping produces an
// order-of-magnitude more tables (around ninety-five for Shakespeare)
// than XORator's seven.
func TestMonetBlowUp(t *testing.T) {
	s := simplify(t, corpus.ShakespeareDTD)
	n, err := MonetTableCount(s)
	if err != nil {
		t.Fatal(err)
	}
	if n < 60 || n > 130 {
		t.Errorf("Monet Shakespeare tables = %d, want order of 95", n)
	}
	x, _ := XORator(s)
	if len(x.Relations)*10 > n {
		t.Errorf("Monet (%d) should dwarf XORator (%d)", n, len(x.Relations))
	}
}

func TestRecursiveDTDGetsRelations(t *testing.T) {
	src := `
<!ELEMENT part (name, part*)>
<!ELEMENT name (#PCDATA)>
`
	h := hybridSchema(t, src)
	if h.RelationFor("part") == nil {
		t.Error("recursive part needs a relation under Hybrid")
	}
	x := xoratorSchema(t, src)
	r := x.RelationFor("part")
	if r == nil {
		t.Fatal("recursive part needs a relation under XORator")
	}
	if !r.HasColumn("part_parentID") {
		t.Error("self-recursive relation needs parentID")
	}
}

func TestSchemaLookupHelpers(t *testing.T) {
	s := xoratorSchema(t, corpus.PlaysDTD)
	if s.Relation("nope") != nil {
		t.Error("unknown table should be nil")
	}
	if s.RelationFor("SUBTITLE") != nil {
		t.Error("absorbed element should have no relation")
	}
	r := s.RelationFor("SPEECH")
	if r == nil || r.Name != "speech" {
		t.Errorf("RelationFor(SPEECH) = %v", r)
	}
	if r.IDColumn() != "speechID" {
		t.Errorf("IDColumn = %s", r.IDColumn())
	}
	if len(r.ParentElements) != 2 {
		t.Errorf("speech parents = %v", r.ParentElements)
	}
}

func TestSchemaStringFormat(t *testing.T) {
	s := xoratorSchema(t, corpus.PlaysDTD)
	out := s.String()
	if !contains(out, "speech_speaker:XADT") || !contains(out, "playID:integer") {
		t.Errorf("schema rendering:\n%s", out)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}
