package mapping

import (
	"strings"

	"repro/internal/dtd"
	"repro/internal/dtdgraph"
)

// Hybrid maps a simplified DTD to a relational schema using the Hybrid
// inlining algorithm of Shanmugasundaram et al., as summarized in §3.3 of
// the paper. A relation is created for every element that
//
//  1. has in-degree zero (a document root),
//  2. sits directly below a "*" operator,
//  3. is recursive, or
//  4. is an ancestor of an element that gets a relation (the closure rule:
//     a tuple must exist for child relations to reference).
//
// Every remaining element is inlined as columns of its closest relation
// ancestor, with path-composed column names (act_title, aTuple_Toindex_index).
func Hybrid(s *dtd.SimplifiedDTD) (*Schema, error) {
	g := dtdgraph.Build(s)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	elements := reachable(g)

	isRelation := map[string]bool{}
	recursive := g.Recursive()
	for _, name := range elements {
		switch {
		case g.InDegree(name) == 0:
			isRelation[name] = true
		case g.BelowStar(name):
			isRelation[name] = true
		case recursive[name]:
			// Rules 3 and 4: recursive elements get relations. Creating
			// one per recursive element is the conservative reading of
			// "one node among mutually recursive nodes with in-degree
			// one" that also covers in-degree > 1.
			isRelation[name] = true
		}
	}
	relationClosure(g, isRelation)

	schema := &Schema{
		Algorithm: "hybrid",
		byElement: map[string]*Relation{},
		byName:    map[string]*Relation{},
	}
	for _, name := range elements {
		if !isRelation[name] {
			continue
		}
		r := buildCommon(g, name, isRelation)
		e := s.Element(name)
		prefix := colPrefix(name)
		attrColumns(r, prefix, e.Attrs, nil)
		if e.HasPCDATA {
			r.Columns = append(r.Columns, Column{Name: prefix + "_value", Type: String, Kind: KindValue})
		}
		inlineInto(r, g, s, isRelation, name, prefix, nil)
		schema.add(r)
	}
	return schema, nil
}

// inlineInto recursively inlines the non-relation children of element into
// relation r, extending the column-name prefix and element path at each
// level.
func inlineInto(r *Relation, g *dtdgraph.Graph, s *dtd.SimplifiedDTD, isRelation map[string]bool, element, prefix string, path []string) {
	for _, it := range s.Element(element).Items {
		if isRelation[it.Name] {
			continue
		}
		childPath := append(append([]string(nil), path...), it.Name)
		childPrefix := prefix + "_" + strings.ToLower(it.Name)
		ce := s.Element(it.Name)
		if ce.HasPCDATA {
			r.Columns = append(r.Columns, Column{
				Name: childPrefix,
				Type: String,
				Kind: KindInlined,
				Path: childPath,
			})
		}
		attrColumns(r, childPrefix, ce.Attrs, childPath)
		inlineInto(r, g, s, isRelation, it.Name, childPrefix, childPath)
	}
}
