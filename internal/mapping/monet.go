package mapping

import (
	"repro/internal/dtd"
	"repro/internal/dtdgraph"
)

// MonetTableCount estimates the number of tables the Monet XML mapping
// (Schmidt et al., WebDB 2000) would create for a DTD: one binary
// association table per distinct label path from the root. The paper cites
// this blow-up in §2 — ninety-five tables for the Shakespeare DTD against
// XORator's seven. Our DTD-level count for Shakespeare is 88 (the paper's
// 95 was presumably measured over the concrete documents, which can
// exhibit a few paths a DTD-level cycle cut misses); the order of
// magnitude is what the comparison rests on.
//
// The count is taken over the DTD graph with cycles cut at repeated
// elements on a path.
func MonetTableCount(s *dtd.SimplifiedDTD) (int, error) {
	g := dtdgraph.Build(s)
	if err := g.Validate(); err != nil {
		return 0, err
	}
	total := 0
	for _, root := range g.Roots() {
		total += g.PathCount(root, false)
	}
	return total, nil
}
