// Package mapping implements the XML-to-relational storage mappings the
// paper studies: the Hybrid inlining algorithm of Shanmugasundaram et al.
// (VLDB 1999) targeting a plain relational schema, and the XORator
// algorithm (§3.3) targeting an object-relational schema with XADT
// attributes. A Monet-style path counter is included for the related-work
// table-count comparison (§2).
//
// Both algorithms consume a simplified DTD (see package dtd) and produce a
// Schema: a set of Relations whose Columns carry enough provenance
// (ColKind + Path) for package shred to populate them from documents
// mechanically.
package mapping

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dtd"
	"repro/internal/dtdgraph"
)

// ColType is the SQL type of a column.
type ColType int

const (
	// Int is an INTEGER column.
	Int ColType = iota
	// String is a VARCHAR column.
	String
	// XADT is the XML abstract data type column of the XORator mapping.
	XADT
)

// String returns the SQL spelling of the type.
func (t ColType) String() string {
	switch t {
	case Int:
		return "integer"
	case String:
		return "string"
	case XADT:
		return "XADT"
	default:
		return fmt.Sprintf("ColType(%d)", int(t))
	}
}

// ColKind records what a column stores, so the shredder can fill it.
type ColKind int

const (
	// KindID is the tuple's synthetic primary key.
	KindID ColKind = iota
	// KindParentID is the foreign key to the parent tuple.
	KindParentID
	// KindParentCode identifies the parent's element name when a relation
	// has multiple possible parent relations.
	KindParentCode
	// KindChildOrder is the 1-based position of the element among
	// same-named siblings.
	KindChildOrder
	// KindValue is the element's own character data.
	KindValue
	// KindAttr is an XML attribute on the relation's element.
	KindAttr
	// KindInlined is the character data of a descendant reached by Path.
	KindInlined
	// KindInlinedAttr is an XML attribute of a descendant reached by Path.
	KindInlinedAttr
	// KindXADT is an XML fragment: the serialized occurrences of the
	// child element named by Path.
	KindXADT
)

// String names the kind for debugging output.
func (k ColKind) String() string {
	switch k {
	case KindID:
		return "id"
	case KindParentID:
		return "parentID"
	case KindParentCode:
		return "parentCODE"
	case KindChildOrder:
		return "childOrder"
	case KindValue:
		return "value"
	case KindAttr:
		return "attr"
	case KindInlined:
		return "inlined"
	case KindInlinedAttr:
		return "inlinedAttr"
	case KindXADT:
		return "xadt"
	default:
		return fmt.Sprintf("ColKind(%d)", int(k))
	}
}

// Column describes one column of a mapped relation.
type Column struct {
	// Name is the SQL column name.
	Name string
	// Type is the SQL type.
	Type ColType
	// Kind records the column's provenance.
	Kind ColKind
	// Path is the element path, relative to the relation's element, that
	// KindInlined, KindInlinedAttr and KindXADT columns read from.
	Path []string
	// Attr is the XML attribute name for KindAttr and KindInlinedAttr.
	Attr string
}

// Relation is one mapped table.
type Relation struct {
	// Name is the table name (the element name, lowercased).
	Name string
	// Element is the DTD element this relation stores.
	Element string
	// Columns in declaration order; the first is always the ID column.
	Columns []Column
	// ParentElements are the distinct elements whose relations can be
	// this relation's parent, sorted. Empty for root relations.
	ParentElements []string
}

// Column returns the named column and whether it exists.
func (r *Relation) Column(name string) (Column, bool) {
	for _, c := range r.Columns {
		if c.Name == name {
			return c, true
		}
	}
	return Column{}, false
}

// HasColumn reports whether the relation has the named column.
func (r *Relation) HasColumn(name string) bool {
	_, ok := r.Column(name)
	return ok
}

// IDColumn returns the primary-key column name.
func (r *Relation) IDColumn() string { return r.Columns[0].Name }

// String renders the relation in the paper's schema notation, e.g.
//
//	speech(speechID:integer, speech_parentID:integer, ...)
func (r *Relation) String() string {
	parts := make([]string, len(r.Columns))
	for i, c := range r.Columns {
		parts[i] = c.Name + ":" + c.Type.String()
	}
	return r.Name + "(" + strings.Join(parts, ", ") + ")"
}

// Schema is the result of a mapping algorithm.
type Schema struct {
	// Algorithm is "hybrid" or "xorator".
	Algorithm string
	// Relations in a stable order (root first, then declaration order).
	Relations []*Relation
	byElement map[string]*Relation
	byName    map[string]*Relation
}

// RelationFor returns the relation storing the given element, or nil if
// the element is inlined or absorbed.
func (s *Schema) RelationFor(element string) *Relation {
	return s.byElement[element]
}

// Relation returns the relation with the given table name, or nil.
func (s *Schema) Relation(name string) *Relation {
	return s.byName[name]
}

// TableNames returns all table names in schema order.
func (s *Schema) TableNames() []string {
	out := make([]string, len(s.Relations))
	for i, r := range s.Relations {
		out[i] = r.Name
	}
	return out
}

// String renders every relation, one per line.
func (s *Schema) String() string {
	var sb strings.Builder
	for _, r := range s.Relations {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

func (s *Schema) add(r *Relation) {
	s.Relations = append(s.Relations, r)
	s.byElement[r.Element] = r
	s.byName[r.Name] = r
}

// tableName derives a table name from an element name.
func tableName(element string) string { return strings.ToLower(element) }

// colPrefix derives the column prefix from an element name.
func colPrefix(element string) string { return strings.ToLower(element) }

// reachable returns the set of elements reachable from the DTD roots,
// including the roots themselves, in declaration order.
func reachable(g *dtdgraph.Graph) []string {
	seen := map[string]bool{}
	var visit func(string)
	visit = func(n string) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, it := range g.Items(n) {
			visit(it.Name)
		}
	}
	for _, r := range g.Roots() {
		visit(r)
	}
	// A fully cyclic DTD has no zero-in-degree root; sweep remaining
	// declarations in order so every declared element is mapped.
	for _, name := range g.Order {
		visit(name)
	}
	var out []string
	for _, name := range g.Order {
		if seen[name] {
			out = append(out, name)
		}
	}
	return out
}

// relationClosure extends the seed relation set so that every parent of a
// relation element is itself a relation ("the ancestors of these nodes
// must also be assigned as relations", §3.3 rule 2).
func relationClosure(g *dtdgraph.Graph, seed map[string]bool) map[string]bool {
	for changed := true; changed; {
		changed = false
		for name := range seed {
			for _, p := range g.ParentNames(name) {
				if !seed[p] {
					seed[p] = true
					changed = true
				}
			}
		}
	}
	return seed
}

// buildCommon assembles the bookkeeping columns every mapped relation
// shares: ID, parentID, parentCODE (when several parent relations exist),
// and childOrder.
func buildCommon(g *dtdgraph.Graph, element string, isRelation map[string]bool) *Relation {
	name := tableName(element)
	prefix := colPrefix(element)
	r := &Relation{Name: name, Element: element}
	r.Columns = append(r.Columns, Column{Name: prefix + "ID", Type: Int, Kind: KindID})
	parents := g.ParentNames(element)
	var parentRels []string
	for _, p := range parents {
		if isRelation[p] {
			parentRels = append(parentRels, p)
		}
	}
	sort.Strings(parentRels)
	r.ParentElements = parentRels
	if len(parentRels) > 0 {
		r.Columns = append(r.Columns, Column{Name: prefix + "_parentID", Type: Int, Kind: KindParentID})
		if len(parentRels) > 1 {
			r.Columns = append(r.Columns, Column{Name: prefix + "_parentCODE", Type: String, Kind: KindParentCode})
		}
		r.Columns = append(r.Columns, Column{Name: prefix + "_childOrder", Type: Int, Kind: KindChildOrder})
	}
	return r
}

// attrColumns appends columns for the element's own XML attributes.
func attrColumns(r *Relation, prefix string, attrs []dtd.Attribute, path []string) {
	for _, a := range attrs {
		kind := KindAttr
		if len(path) > 0 {
			kind = KindInlinedAttr
		}
		r.Columns = append(r.Columns, Column{
			Name: prefix + "_" + a.Name,
			Type: String,
			Kind: kind,
			Path: append([]string(nil), path...),
			Attr: a.Name,
		})
	}
}
