package mapping

import (
	"strings"

	"repro/internal/dtd"
	"repro/internal/dtdgraph"
)

// XORator maps a simplified DTD to an object-relational schema using the
// XORator algorithm (§3.3). Working on the revised DTD graph — where
// PCDATA leaves are duplicated per parent (§3.2) — it applies:
//
//  1. A non-leaf node accessed by only one node, whose subtree has no
//     externally incident links, is assigned to an XADT attribute of its
//     parent's relation (the whole subtree is absorbed into the fragment).
//  2. A non-leaf node below a "*" that is accessed by multiple nodes is
//     assigned to a relation; ancestors of relation nodes are relations.
//  3. A leaf node below a "*" becomes an XADT attribute; any other leaf
//     becomes a string attribute.
//
// Document roots always get relations, and recursion forces a relation as
// a special case of the external-link test.
func XORator(s *dtd.SimplifiedDTD) (*Schema, error) {
	g := dtdgraph.Build(s)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	elements := reachable(g)

	isRelation := map[string]bool{}
	for _, name := range elements {
		if g.IsLeaf(name) {
			continue // rule 3: leaves are never relations under XORator
		}
		switch {
		case g.InDegree(name) == 0:
			isRelation[name] = true
		case g.InDegree(name) >= 2:
			// Rule 1 requires a single accessor; shared non-leaf nodes
			// (rule 2 when below a *) become relations.
			isRelation[name] = true
		case g.HasExternalLinks(name):
			// The subtree cannot be cut out as a fragment: some
			// descendant is referenced from outside (or the node is
			// recursive).
			isRelation[name] = true
		}
	}
	relationClosure(g, isRelation)

	schema := &Schema{
		Algorithm: "xorator",
		byElement: map[string]*Relation{},
		byName:    map[string]*Relation{},
	}
	for _, name := range elements {
		if !isRelation[name] {
			continue
		}
		r := buildCommon(g, name, isRelation)
		e := s.Element(name)
		prefix := colPrefix(name)
		attrColumns(r, prefix, e.Attrs, nil)
		if e.HasPCDATA {
			r.Columns = append(r.Columns, Column{Name: prefix + "_value", Type: String, Kind: KindValue})
		}
		for _, it := range e.Items {
			if isRelation[it.Name] {
				continue
			}
			childPrefix := prefix + "_" + strings.ToLower(it.Name)
			ce := s.Element(it.Name)
			switch {
			case g.IsLeaf(it.Name) && it.Occurs != dtd.Star:
				// Rule 3, second half: single-occurrence leaf → string.
				if ce.HasPCDATA {
					r.Columns = append(r.Columns, Column{
						Name: childPrefix,
						Type: String,
						Kind: KindInlined,
						Path: []string{it.Name},
					})
				}
				attrColumns(r, childPrefix, ce.Attrs, []string{it.Name})
			default:
				// Rule 3 first half (leaf below *) and rule 1 (absorbed
				// subtree): the fragment lives in an XADT attribute.
				r.Columns = append(r.Columns, Column{
					Name: childPrefix,
					Type: XADT,
					Kind: KindXADT,
					Path: []string{it.Name},
				})
			}
		}
		schema.add(r)
	}
	return schema, nil
}
