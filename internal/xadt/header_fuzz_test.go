package xadt

import (
	"bytes"
	"testing"

	"repro/internal/xmltree"
)

// FuzzHeaderDecode hammers the 0xF8 fragment-header decoder with
// truncated and corrupt inputs. Decoding must never panic, corrupt
// headers must fall back to the legacy (headerless) interpretation
// without altering the payload, and every XADT method must degrade to an
// error — never a crash — on garbage bytes.
func FuzzHeaderDecode(f *testing.F) {
	frag := []*xmltree.Node{
		xmltree.NewElement("LINE").AppendText("rising and falling"),
		xmltree.NewElement("STAGEDIR").AppendText("Exit, pursued by a bear"),
	}
	frag[0].Append(xmltree.NewElement("EMPH").AppendText("rising"))
	for _, format := range []Format{Raw, Compressed} {
		stored := EncodeStored(frag, format)
		f.Add(stored.Bytes())
		f.Add(Encode(frag, format).Bytes())
		// Truncations of a valid headered value hit every partial-read
		// branch of parseHeader.
		for _, n := range []int{1, 2, 3, 5, 8} {
			if n < stored.Len() {
				f.Add(stored.Bytes()[:n])
			}
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xF8})
	f.Add([]byte{0xF8, 0x01})
	f.Add([]byte{0xF8, 0x01, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Add(append([]byte{0xF8, 0x01, 0x40}, make([]byte, 16)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		v := FromBytes(data)
		h, ok := v.Header()
		if ok {
			h.MayContain("LINE")
			h.MayContain("")
		}
		stripped := StripHeader(v)
		if !ok && !bytes.Equal(stripped.Bytes(), data) {
			t.Fatalf("legacy fallback altered a headerless value: %q -> %q", data, stripped.Bytes())
		}
		v.Format()
		v.IsEmpty()
		v.Text()
		v.Nodes()
		WithHeader(v)
		FindKeyInElm(v, "LINE", "rising")
		GetElm(v, "", "LINE", "", -1)
		GetElmIndex(v, "", "LINE", 1, 2)
		Unnest(v, "LINE")
	})
}
