// Package xadt implements the XML abstract data type of the XORator paper
// (§3.4): a column value holding an arbitrary XML fragment, with two
// storage representations — the raw tagged string, and an XMill-inspired
// compressed form where element and attribute names are replaced by
// integer codes backed by a per-value dictionary — and the query methods
// the paper defines on the type (getElm, findKeyInElm, getElmIndex) plus
// the unnest table function (§3.5).
package xadt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"

	"repro/internal/xmltree"
)

// Format identifies a storage representation.
type Format byte

const (
	// Raw stores the fragment as its serialized text.
	Raw Format = 0
	// Compressed stores the fragment with dictionary-coded tag names.
	Compressed Format = 1
	// Directory stores the raw text preceded by an offset directory of
	// the top-level elements — the metadata extension the paper proposes
	// as future work to speed up the XADT methods.
	Directory Format = 2
)

// String names the format.
func (f Format) String() string {
	switch f {
	case Compressed:
		return "compressed"
	case Directory:
		return "directory"
	default:
		return "raw"
	}
}

// Value is an XADT instance. The zero Value is the empty fragment in raw
// format.
type Value struct {
	data []byte
}

// FromBytes reconstitutes a Value from its stored bytes (as written by
// Bytes).
func FromBytes(b []byte) Value { return Value{data: b} }

// Bytes returns the stored representation. The slice must not be
// modified.
func (v Value) Bytes() []byte { return v.data }

// Len returns the storage size in bytes.
func (v Value) Len() int { return len(v.data) }

// IsEmpty reports whether the value holds no fragment.
func (v Value) IsEmpty() bool { return len(v.payloadBytes()) <= 1 }

// Format returns the storage representation of the value, looking
// through a fragment header if present.
func (v Value) Format() Format {
	p := v.payloadBytes()
	if len(p) == 0 {
		return Raw
	}
	switch p[0] {
	case byte(Compressed):
		return Compressed
	case byte(Directory):
		return Directory
	default:
		return Raw
	}
}

// Encode builds a Value from fragment nodes in the given format.
func Encode(nodes []*xmltree.Node, f Format) Value {
	switch f {
	case Compressed:
		return encodeCompressed(nodes)
	case Directory:
		return encodeDirectory(nodes)
	default:
		return encodeRaw(nodes)
	}
}

// Parse builds a Value from fragment text in the given format.
func Parse(fragment string, f Format) (Value, error) {
	nodes, err := xmltree.ParseFragment(fragment)
	if err != nil {
		return Value{}, err
	}
	return Encode(nodes, f), nil
}

func encodeRaw(nodes []*xmltree.Node) Value {
	text := xmltree.SerializeAll(nodes)
	data := make([]byte, 0, len(text)+1)
	data = append(data, byte(Raw))
	data = append(data, text...)
	return Value{data: data}
}

// Nodes decodes the fragment into a node list.
func (v Value) Nodes() ([]*xmltree.Node, error) {
	p := v.payloadBytes()
	if len(p) == 0 {
		return nil, nil
	}
	switch p[0] {
	case byte(Compressed):
		return decodeCompressed(p[1:])
	case byte(Directory):
		_, text, err := directoryParts(p[1:])
		if err != nil {
			return nil, err
		}
		return xmltree.ParseFragment(text)
	default:
		return xmltree.ParseFragment(string(p[1:]))
	}
}

// Text returns the serialized fragment text, decompressing if needed.
func (v Value) Text() (string, error) {
	p := v.payloadBytes()
	if len(p) == 0 {
		return "", nil
	}
	switch p[0] {
	case byte(Raw):
		return string(p[1:]), nil
	case byte(Directory):
		_, text, err := directoryParts(p[1:])
		return text, err
	default:
		nodes, err := v.Nodes()
		if err != nil {
			return "", err
		}
		return xmltree.SerializeAll(nodes), nil
	}
}

// textPart returns the raw fragment text for formats that store it
// verbatim (Raw and Directory), for the string-scanning fast paths.
func (v Value) textPart() (string, bool) {
	p := v.payloadBytes()
	if len(p) == 0 {
		return "", false
	}
	switch p[0] {
	case byte(Raw):
		return string(p[1:]), true
	case byte(Directory):
		_, text, err := directoryParts(p[1:])
		if err != nil {
			return "", false
		}
		return text, true
	default:
		return "", false
	}
}

// Compressed layout, following the paper's XMill-inspired scheme (§3.4.1):
// element and attribute names are replaced by decimal integer codes in an
// otherwise textual XML rendering, and a dictionary mapping codes back to
// names travels with the value.
//
//	[format=1]
//	[uvarint ndict] [len-prefixed name]*   -- dictionary: code i → name
//	coded fragment text: <0 1="v">text</0><2>…</2>
//
// Keeping the body textual reproduces the paper's storage economics: the
// saving per tag is (len(name) - len(code digits)), so values dominated by
// character data (Shakespeare lines) barely compress and the dictionary
// can make them larger, while deeply tagged fragments (SIGMOD sList
// subtrees) shrink substantially.
func encodeCompressed(nodes []*xmltree.Node) Value {
	dict := map[string]int{}
	var names []string
	code := func(name string) int {
		if c, ok := dict[name]; ok {
			return c
		}
		c := len(names)
		dict[name] = c
		names = append(names, name)
		return c
	}
	var body []byte
	var emit func(n *xmltree.Node)
	emit = func(n *xmltree.Node) {
		if n.IsText() {
			body = append(body, xmltree.EscapeText(n.Text)...)
			return
		}
		c := code(n.Name)
		body = append(body, '<')
		body = appendDecimal(body, c)
		for _, a := range n.Attrs {
			body = append(body, ' ')
			body = appendDecimal(body, code(a.Name))
			body = append(body, '=', '"')
			body = append(body, xmltree.EscapeAttr(a.Value)...)
			body = append(body, '"')
		}
		body = append(body, '>')
		for _, child := range n.Children {
			emit(child)
		}
		body = append(body, '<', '/')
		body = appendDecimal(body, c)
		body = append(body, '>')
	}
	for _, n := range nodes {
		emit(n)
	}

	data := []byte{byte(Compressed)}
	data = binary.AppendUvarint(data, uint64(len(names)))
	for _, name := range names {
		data = appendString(data, name)
	}
	data = append(data, body...)
	return Value{data: data}
}

func appendDecimal(b []byte, n int) []byte {
	return append(b, []byte(fmt.Sprintf("%d", n))...)
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

type byteReader struct {
	b   []byte
	pos int
}

func (r *byteReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		return 0, errors.New("xadt: corrupt varint")
	}
	r.pos += n
	return v, nil
}

func (r *byteReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	// Compare as uint64 first: a corrupt varint length can exceed
	// math.MaxInt and flip negative under int().
	if n > uint64(len(r.b)) || r.pos+int(n) > len(r.b) {
		return "", errors.New("xadt: truncated string")
	}
	s := string(r.b[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

func (r *byteReader) done() bool { return r.pos >= len(r.b) }

func decodeCompressed(b []byte) ([]*xmltree.Node, error) {
	r := &byteReader{b: b}
	ndict, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if ndict > uint64(len(b)) {
		return nil, errors.New("xadt: corrupt dictionary size")
	}
	names := make([]string, ndict)
	for i := range names {
		if names[i], err = r.str(); err != nil {
			return nil, err
		}
	}
	// Substitute codes back into tag names, then reuse the XML parser.
	expanded, err := expandCodes(string(r.b[r.pos:]), names)
	if err != nil {
		return nil, err
	}
	return xmltree.ParseFragment(expanded)
}

// expandCodes rewrites <0 1="v">…</0> into <NAME ATTR="v">…</NAME>.
func expandCodes(body string, names []string) (string, error) {
	var sb strings.Builder
	sb.Grow(len(body) * 2)
	i := 0
	lookup := func(start int) (string, int, error) {
		j := start
		for j < len(body) && body[j] >= '0' && body[j] <= '9' {
			j++
		}
		if j == start {
			return "", 0, errors.New("xadt: expected tag code")
		}
		code := 0
		for _, c := range body[start:j] {
			code = code*10 + int(c-'0')
			// Checking inside the loop keeps a long corrupt digit run
			// from overflowing code past MaxInt into a negative index.
			if code >= len(names) {
				return "", 0, fmt.Errorf("xadt: tag code %s out of range", body[start:j])
			}
		}
		return names[code], j, nil
	}
	for i < len(body) {
		c := body[i]
		if c != '<' {
			sb.WriteByte(c)
			i++
			continue
		}
		// Tag: <code …> or </code>.
		sb.WriteByte('<')
		i++
		if i < len(body) && body[i] == '/' {
			sb.WriteByte('/')
			i++
		}
		name, next, err := lookup(i)
		if err != nil {
			return "", err
		}
		sb.WriteString(name)
		i = next
		// Attributes: " code="value"" repeated until '>'.
		for i < len(body) && body[i] != '>' {
			if body[i] != ' ' {
				return "", errors.New("xadt: malformed coded tag")
			}
			sb.WriteByte(' ')
			i++
			aname, next, err := lookup(i)
			if err != nil {
				return "", err
			}
			sb.WriteString(aname)
			i = next
			if i >= len(body) || body[i] != '=' {
				return "", errors.New("xadt: malformed coded attribute")
			}
			sb.WriteString(`="`)
			i += 2 // skip ="
			for i < len(body) && body[i] != '"' {
				sb.WriteByte(body[i])
				i++
			}
			if i >= len(body) {
				return "", errors.New("xadt: unterminated coded attribute")
			}
			sb.WriteByte('"')
			i++
		}
		if i >= len(body) {
			return "", errors.New("xadt: unterminated coded tag")
		}
		sb.WriteByte('>')
		i++
	}
	return sb.String(), nil
}

// ChooseFormat implements the storage-alternative decision of §4.1: it
// encodes each sample fragment both ways and picks Compressed only when it
// saves at least minSaving (the paper uses 0.20) of the raw size in
// aggregate.
func ChooseFormat(samples [][]*xmltree.Node, minSaving float64) Format {
	var rawTotal, compTotal int
	for _, nodes := range samples {
		rawTotal += Encode(nodes, Raw).Len()
		compTotal += Encode(nodes, Compressed).Len()
	}
	if rawTotal == 0 {
		return Raw
	}
	saving := 1 - float64(compTotal)/float64(rawTotal)
	if saving >= minSaving {
		return Compressed
	}
	return Raw
}
