package xadt

import (
	"strings"
	"testing"

	"repro/internal/xmltree"
)

// FuzzRawScanEntities drives the raw-markup scanner — the parse-free fast
// path behind FindKeyInElm — with arbitrary markup, element names, and
// keys. The scanner must never panic on any input. For markup that
// parses, the fragment is re-encoded through the package serializer (raw
// payloads are only ever produced by it) and the raw fast path must agree
// with the parsed slow path.
func FuzzRawScanEntities(f *testing.F) {
	f.Add("<a>hello &amp; goodbye</a>", "a", "hello")
	f.Add("<a><b k=\"v\">x&#65;y</b><b>z</b></a>", "b", "xAy")
	f.Add("<a>text &#x3C;tag&#x3E; more</a>", "a", "<tag>")
	f.Add("<a>unterminated &amp", "a", "unterminated")
	f.Add("<a/><a>two</a>", "a", "two")
	f.Add("<a><a>nested</a></a>", "a", "nested")
	f.Add("&bogus;&#xZZ;&#99999999999;", "e", "k")
	f.Add("<e>\xff\xfe</e>", "e", "\xff")
	f.Fuzz(func(t *testing.T, markup, elm, key string) {
		// Arbitrary bytes: only the no-panic guarantee applies.
		findKeyRaw(markup, elm, key)
		textContentContains(markup, key)
		forEachRegion(markup, elm, func(string) bool { return true })
		decodeEntityRef(key)

		if elm == "" || strings.ContainsAny(elm, "<>&/ \t\n\r\"'=") {
			return
		}
		v := FromBytes(append([]byte{byte(Raw)}, markup...))
		nodes, err := v.Nodes()
		if err != nil {
			return
		}
		canon := Encode(nodes, Raw)
		fast, err := FindKeyInElm(canon, elm, key)
		if err != nil {
			return
		}
		slow := false
		for _, n := range nodes {
			n.Walk(func(c *xmltree.Node) bool {
				if c.IsElement() && c.Name == elm &&
					(key == "" || strings.Contains(c.InnerText(), key)) {
					slow = true
					return false
				}
				return true
			})
		}
		if fast != slow {
			t.Fatalf("fast path = %v, parsed slow path = %v for markup %q elm %q key %q",
				fast, slow, markup, elm, key)
		}
	})
}
