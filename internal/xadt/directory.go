package xadt

import (
	"encoding/binary"
	"errors"

	"repro/internal/xmltree"
)

// The Directory format implements the paper's future-work proposal
// (§4.4/§5): "storing of metadata with the XADT attribute to improve the
// performance of the methods on the XADT" — here, a directory of the
// fragment's top-level elements (tag name, byte range) in front of the
// raw text, so order-access methods like getElmIndex and the unnest table
// function can slice elements out without parsing.
//
// Layout:
//
//	[format=2]
//	[uvarint nentries] ([len-prefixed name][uvarint start][uvarint end])*
//	raw fragment text
//
// start/end are byte offsets into the text part.

// dirEntry is one top-level element in a Directory value.
type dirEntry struct {
	name       string
	start, end int
}

func encodeDirectory(nodes []*xmltree.Node) Value {
	var text []byte
	var entries []dirEntry
	for _, n := range nodes {
		start := len(text)
		text = append(text, xmltree.Serialize(n)...)
		if n.IsElement() {
			entries = append(entries, dirEntry{name: n.Name, start: start, end: len(text)})
		}
	}
	data := []byte{byte(Directory)}
	data = binary.AppendUvarint(data, uint64(len(entries)))
	for _, e := range entries {
		data = appendString(data, e.name)
		data = binary.AppendUvarint(data, uint64(e.start))
		data = binary.AppendUvarint(data, uint64(e.end))
	}
	data = append(data, text...)
	return Value{data: data}
}

// directoryParts splits a Directory value into its entries and text.
func directoryParts(data []byte) ([]dirEntry, string, error) {
	r := &byteReader{b: data}
	n, err := r.uvarint()
	if err != nil {
		return nil, "", err
	}
	if n > uint64(len(data)) {
		return nil, "", errors.New("xadt: corrupt directory size")
	}
	entries := make([]dirEntry, n)
	for i := range entries {
		name, err := r.str()
		if err != nil {
			return nil, "", err
		}
		start, err := r.uvarint()
		if err != nil {
			return nil, "", err
		}
		end, err := r.uvarint()
		if err != nil {
			return nil, "", err
		}
		entries[i] = dirEntry{name: name, start: int(start), end: int(end)}
	}
	text := string(data[r.pos:])
	for _, e := range entries {
		if e.start > e.end || e.end > len(text) {
			return nil, "", errors.New("xadt: directory entry out of range")
		}
	}
	return entries, text, nil
}

// sliceIndexed implements getElmIndex over the directory when parentElm
// is empty: the childElm occurrences are picked by position and sliced
// out of the text without parsing.
func sliceIndexed(data []byte, childElm string, startPos, endPos int) (Value, bool, error) {
	entries, text, err := directoryParts(data)
	if err != nil {
		return Value{}, false, err
	}
	var out []byte
	pos := 0
	for _, e := range entries {
		if e.name != childElm {
			continue
		}
		pos++
		if pos >= startPos && pos <= endPos {
			out = append(out, text[e.start:e.end]...)
		}
	}
	result := make([]byte, 0, len(out)+1)
	result = append(result, byte(Raw))
	result = append(result, out...)
	return Value{data: result}, true, nil
}

// sliceUnnest implements unnest over the directory: top-level elements
// with the tag are sliced out of the text directly. An entry is parsed
// only when the string scanner detects a nested same-tag occurrence
// inside it, keeping semantics identical to the tree-based path.
func sliceUnnest(data []byte, tag string) ([]Value, error) {
	entries, text, err := directoryParts(data)
	if err != nil {
		return nil, err
	}
	var out []Value
	appendRaw := func(s string) {
		b := make([]byte, 0, len(s)+1)
		b = append(b, byte(Raw))
		b = append(b, s...)
		out = append(out, Value{data: b})
	}
	for _, e := range entries {
		region := text[e.start:e.end]
		inner := innerOf(region)
		if indexOpenTag(inner, "<"+tag) < 0 {
			// Fast path: no nested occurrence; the top-level slice is
			// the only candidate.
			if e.name == tag {
				appendRaw(region)
			}
			continue
		}
		// Rare path: nested same-tag elements; parse this entry only and
		// emit every match in document order.
		nodes, err := xmltree.ParseFragment(region)
		if err != nil {
			return nil, err
		}
		forEachElement(nodes, func(n *xmltree.Node) {
			if n.Name == tag {
				appendRaw(xmltree.Serialize(n))
			}
		})
	}
	return out, nil
}

// innerOf strips the outermost start and end tag from an element's
// serialized text.
func innerOf(region string) string {
	gt := -1
	for i := 0; i < len(region); i++ {
		if region[i] == '>' {
			gt = i
			break
		}
	}
	if gt < 0 {
		return ""
	}
	lt := -1
	for i := len(region) - 1; i >= 0; i-- {
		if region[i] == '<' {
			lt = i
			break
		}
	}
	if lt <= gt {
		return ""
	}
	return region[gt+1 : lt]
}
