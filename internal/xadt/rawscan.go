package xadt

import (
	"strconv"
	"strings"
)

// This file implements string-scanning fast paths over the Raw storage
// format, mirroring the paper's XADT implementation on top of VARCHAR
// (§4.1: "our implementation of the methods on the XADT use string
// compare and copy functions on the VARCHAR"). The scanners rely on the
// invariant that Raw values are produced by the package serializer:
// explicit end tags, and '<', '>', '&' escaped inside content and
// attribute values.

// findKeyRaw reports whether the fragment text contains a searchElm
// element (searchElm must be non-empty) whose text content contains
// searchKey, without building a node tree. An empty searchKey tests for
// the element's existence.
func findKeyRaw(text, searchElm, searchKey string) bool {
	found := false
	forEachRegion(text, searchElm, func(inner string) bool {
		if searchKey == "" || textContentContains(inner, searchKey) {
			found = true
			return false
		}
		return true
	})
	return found
}

// forEachRegion locates each searchElm element in the fragment text and
// passes the markup between its start and end tags to fn. fn returns
// false to stop early. Nested same-named elements are contained in their
// outer region and also visited on their own.
func forEachRegion(text, name string, fn func(inner string) bool) {
	open := "<" + name
	pos := 0
	for {
		i := strings.Index(text[pos:], open)
		if i < 0 {
			return
		}
		start := pos + i
		afterName := start + len(open)
		if afterName >= len(text) || !isTagBoundary(text[afterName]) {
			// A longer tag name sharing the prefix (LINE vs LINEUP).
			pos = start + 1
			continue
		}
		// Skip the start tag; '>' inside attribute values is escaped, so
		// the next '>' ends the tag.
		gt := strings.IndexByte(text[afterName:], '>')
		if gt < 0 {
			return
		}
		contentStart := afterName + gt + 1
		end := findEndTag(text, contentStart, name)
		if end < 0 {
			return
		}
		if !fn(text[contentStart:end]) {
			return
		}
		pos = contentStart
	}
}

func isTagBoundary(c byte) bool { return c == '>' || c == ' ' || c == '\t' || c == '\n' || c == '\r' }

// findEndTag returns the offset of the matching "</name>" for an element
// whose content starts at from, accounting for nested same-named
// elements.
func findEndTag(text string, from int, name string) int {
	open := "<" + name
	close := "</" + name + ">"
	depth := 1
	pos := from
	for {
		nextClose := strings.Index(text[pos:], close)
		if nextClose < 0 {
			return -1
		}
		nextOpen := indexOpenTag(text[pos:pos+nextClose], open)
		if nextOpen < 0 {
			depth--
			if depth == 0 {
				return pos + nextClose
			}
			pos += nextClose + len(close)
			continue
		}
		depth++
		pos += nextOpen + len(open)
	}
}

// indexOpenTag finds an occurrence of open ("<name") followed by a tag
// boundary within s, or -1.
func indexOpenTag(s, open string) int {
	pos := 0
	for {
		i := strings.Index(s[pos:], open)
		if i < 0 {
			return -1
		}
		at := pos + i
		after := at + len(open)
		if after < len(s) && isTagBoundary(s[after]) {
			return at
		}
		if after == len(s) {
			// The boundary character lies beyond this window; treat the
			// truncated occurrence as a match so depth tracking stays
			// conservative.
			return at
		}
		pos = at + 1
	}
}

// textContentContains reports whether the markup's text content (tags
// stripped, entities decoded) contains key. An empty key always matches.
func textContentContains(markup, key string) bool {
	if key == "" {
		return true
	}
	// Fast reject: the key's first byte must occur somewhere.
	var buf []byte
	i := 0
	for i < len(markup) {
		switch markup[i] {
		case '<':
			gt := strings.IndexByte(markup[i:], '>')
			if gt < 0 {
				i = len(markup)
				continue
			}
			i += gt + 1
		case '&':
			semi := strings.IndexByte(markup[i:], ';')
			if semi < 0 || semi > 12 {
				buf = append(buf, markup[i])
				i++
				continue
			}
			if s, err := decodeEntityRef(markup[i+1 : i+semi]); err == nil {
				buf = append(buf, s...)
				i += semi + 1
			} else {
				buf = append(buf, markup[i])
				i++
			}
		default:
			buf = append(buf, markup[i])
			i++
		}
	}
	return strings.Contains(string(buf), key)
}

// decodeEntityRef decodes the predefined entities and the numeric
// character references (&#NN; decimal, &#xNN; hex) XML allows in
// content. Out-of-range or malformed references are rejected so the
// scanner falls back to treating the '&' literally, matching the tree
// parser's behaviour.
func decodeEntityRef(ref string) (string, error) {
	switch ref {
	case "lt":
		return "<", nil
	case "gt":
		return ">", nil
	case "amp":
		return "&", nil
	case "quot":
		return `"`, nil
	case "apos":
		return "'", nil
	}
	if len(ref) > 1 && ref[0] == '#' {
		digits, base := ref[1:], 10
		if len(digits) > 1 && (digits[0] == 'x' || digits[0] == 'X') {
			digits, base = digits[1:], 16
		}
		n, err := strconv.ParseInt(digits, base, 32)
		if err != nil || n < 0 || n > 0x10FFFF {
			return "", errUnknownEntity
		}
		return string(rune(n)), nil
	}
	return "", errUnknownEntity
}

var errUnknownEntity = errStr("xadt: unknown entity")

type errStr string

func (e errStr) Error() string { return string(e) }
