package xadt

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xmltree"
)

func fragment(t *testing.T, s string) []*xmltree.Node {
	t.Helper()
	nodes, err := xmltree.ParseFragment(s)
	if err != nil {
		t.Fatalf("ParseFragment(%q): %v", s, err)
	}
	return nodes
}

func mustText(t *testing.T, v Value) string {
	t.Helper()
	s, err := v.Text()
	if err != nil {
		t.Fatalf("Text: %v", err)
	}
	return s
}

const speechFrag = `<SPEECH><SPEAKER>HAMLET</SPEAKER>` +
	`<LINE>my friend</LINE><LINE>good night</LINE><LINE>sweet prince</LINE></SPEECH>`

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, f := range []Format{Raw, Compressed} {
		nodes := fragment(t, speechFrag)
		v := Encode(nodes, f)
		if v.Format() != f {
			t.Errorf("format = %v, want %v", v.Format(), f)
		}
		if got := mustText(t, v); got != speechFrag {
			t.Errorf("%v text = %q, want %q", f, got, speechFrag)
		}
		decoded, err := v.Nodes()
		if err != nil {
			t.Fatalf("%v Nodes: %v", f, err)
		}
		if xmltree.SerializeAll(decoded) != speechFrag {
			t.Errorf("%v nodes do not round-trip", f)
		}
	}
}

func TestEncodeAttributes(t *testing.T) {
	src := `<author AuthorPosition="1">Gray</author><author AuthorPosition="2">Codd</author>`
	for _, f := range []Format{Raw, Compressed} {
		v := Encode(fragment(t, src), f)
		if got := mustText(t, v); got != src {
			t.Errorf("%v text = %q", f, got)
		}
	}
}

func TestCompressionShrinksRepetitiveFragments(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		sb.WriteString("<LINE>a</LINE>")
	}
	nodes := fragment(t, sb.String())
	raw := Encode(nodes, Raw)
	comp := Encode(nodes, Compressed)
	if comp.Len() >= raw.Len() {
		t.Errorf("compressed %d >= raw %d for repetitive tags", comp.Len(), raw.Len())
	}
}

func TestCompressionCanLose(t *testing.T) {
	// A single long-tagged element: the dictionary overhead dominates.
	nodes := fragment(t, `<x>abc</x>`)
	raw := Encode(nodes, Raw)
	comp := Encode(nodes, Compressed)
	if comp.Len() < raw.Len() {
		t.Skipf("compression won unexpectedly (%d < %d)", comp.Len(), raw.Len())
	}
}

func TestChooseFormat(t *testing.T) {
	var repetitive strings.Builder
	for i := 0; i < 100; i++ {
		repetitive.WriteString("<SPEAKER>x</SPEAKER>")
	}
	rep := [][]*xmltree.Node{fragment(t, repetitive.String())}
	if got := ChooseFormat(rep, 0.20); got != Compressed {
		t.Errorf("ChooseFormat(repetitive) = %v, want Compressed", got)
	}
	small := [][]*xmltree.Node{fragment(t, `<a>this is a long chunk of text with one tag only</a>`)}
	if got := ChooseFormat(small, 0.20); got != Raw {
		t.Errorf("ChooseFormat(small) = %v, want Raw", got)
	}
	if got := ChooseFormat(nil, 0.20); got != Raw {
		t.Errorf("ChooseFormat(nil) = %v, want Raw", got)
	}
}

func TestEmptyValue(t *testing.T) {
	var v Value
	if !v.IsEmpty() {
		t.Error("zero Value should be empty")
	}
	nodes, err := v.Nodes()
	if err != nil || nodes != nil {
		t.Errorf("Nodes = %v, %v", nodes, err)
	}
	if s := mustText(t, v); s != "" {
		t.Errorf("Text = %q", s)
	}
	out, err := GetElm(v, "a", "", "", 0)
	if err != nil || !out.IsEmpty() {
		t.Errorf("GetElm on empty = %v, %v", out, err)
	}
}

func TestGetElmBasic(t *testing.T) {
	v := Encode(fragment(t, speechFrag), Raw)
	out, err := GetElm(v, "LINE", "", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustText(t, out); got != `<LINE>my friend</LINE><LINE>good night</LINE><LINE>sweet prince</LINE>` {
		t.Errorf("all LINEs = %q", got)
	}
}

func TestGetElmWithKey(t *testing.T) {
	v := Encode(fragment(t, speechFrag), Raw)
	out, err := GetElm(v, "LINE", "LINE", "friend", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustText(t, out); got != `<LINE>my friend</LINE>` {
		t.Errorf("LINE[friend] = %q", got)
	}
}

func TestGetElmNestedSearch(t *testing.T) {
	v := Encode(fragment(t, speechFrag), Raw)
	// SPEECH elements containing a SPEAKER with keyword HAMLET.
	out, err := GetElm(v, "SPEECH", "SPEAKER", "HAMLET", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustText(t, out); got != speechFrag {
		t.Errorf("SPEECH[SPEAKER=HAMLET] = %q", got)
	}
	out, err = GetElm(v, "SPEECH", "SPEAKER", "ROMEO", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !out.IsEmpty() {
		t.Errorf("SPEECH[SPEAKER=ROMEO] = %q", mustText(t, out))
	}
}

func TestGetElmLevelLimit(t *testing.T) {
	src := `<a><deep><b>key</b></deep></a>`
	v := Encode(fragment(t, src), Raw)
	// b is at depth 2 from a; level 1 must not find it.
	out, err := GetElm(v, "a", "b", "key", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !out.IsEmpty() {
		t.Error("level 1 should not reach depth-2 element")
	}
	out, err = GetElm(v, "a", "b", "key", 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.IsEmpty() {
		t.Error("level 2 should reach depth-2 element")
	}
}

func TestGetElmComposes(t *testing.T) {
	src := `<act><speech><speaker>ROMEO</speaker><line>love</line></speech>` +
		`<speech><speaker>JULIET</speaker><line>night</line></speech></act>`
	v := Encode(fragment(t, src), Compressed)
	speeches, err := GetElm(v, "speech", "speaker", "ROMEO", 0)
	if err != nil {
		t.Fatal(err)
	}
	if speeches.Format() != Compressed {
		t.Error("format not preserved through GetElm")
	}
	lines, err := GetElm(speeches, "line", "", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustText(t, lines); got != `<line>love</line>` {
		t.Errorf("composed result = %q", got)
	}
}

func TestFindKeyInElm(t *testing.T) {
	v := Encode(fragment(t, speechFrag), Raw)
	cases := []struct {
		elm, key string
		want     bool
	}{
		{"SPEAKER", "HAMLET", true},
		{"SPEAKER", "ROMEO", false},
		{"LINE", "friend", true},
		{"LINE", "", true},           // existence
		{"GHOST", "", false},         // absent element
		{"", "prince", true},         // key anywhere
		{"", "banquo", false},        // key nowhere
		{"SPEAKER", "friend", false}, // key in wrong element
	}
	for _, tc := range cases {
		got, err := FindKeyInElm(v, tc.elm, tc.key)
		if err != nil {
			t.Fatalf("FindKeyInElm(%q,%q): %v", tc.elm, tc.key, err)
		}
		if got != tc.want {
			t.Errorf("FindKeyInElm(%q,%q) = %v, want %v", tc.elm, tc.key, got, tc.want)
		}
	}
}

func TestFindKeyInElmBothEmpty(t *testing.T) {
	v := Encode(fragment(t, speechFrag), Raw)
	if _, err := FindKeyInElm(v, "", ""); err == nil {
		t.Error("both-empty arguments must error")
	}
}

func TestGetElmIndex(t *testing.T) {
	v := Encode(fragment(t, speechFrag), Raw)
	out, err := GetElmIndex(v, "SPEECH", "LINE", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustText(t, out); got != `<LINE>good night</LINE>` {
		t.Errorf("second LINE = %q", got)
	}
	out, err = GetElmIndex(v, "SPEECH", "LINE", 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustText(t, out); !strings.Contains(got, "friend") || !strings.Contains(got, "prince") {
		t.Errorf("range 1..3 = %q", got)
	}
}

func TestGetElmIndexCountsSameNameSiblingsOnly(t *testing.T) {
	// SPEAKER precedes the LINEs; the second LINE is still position 2.
	src := `<S><SPEAKER>x</SPEAKER><LINE>one</LINE><NOTE>n</NOTE><LINE>two</LINE></S>`
	v := Encode(fragment(t, src), Raw)
	out, err := GetElmIndex(v, "S", "LINE", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustText(t, out); got != `<LINE>two</LINE>` {
		t.Errorf("LINE[2] = %q", got)
	}
}

func TestGetElmIndexTopLevel(t *testing.T) {
	src := `<s>a</s><s>b</s><s>c</s>`
	v := Encode(fragment(t, src), Raw)
	out, err := GetElmIndex(v, "", "s", 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustText(t, out); got != `<s>b</s><s>c</s>` {
		t.Errorf("top-level s[2..3] = %q", got)
	}
}

func TestGetElmIndexRequiresChild(t *testing.T) {
	v := Encode(fragment(t, speechFrag), Raw)
	if _, err := GetElmIndex(v, "SPEECH", "", 1, 1); err == nil {
		t.Error("empty childElm must error")
	}
}

// TestUnnestPaperExample reproduces Figure 9: unnesting a speaker
// attribute that stores two speakers in one fragment and one in another.
func TestUnnestPaperExample(t *testing.T) {
	v1 := Encode(fragment(t, `<speaker>s1</speaker><speaker>s2</speaker>`), Raw)
	v2 := Encode(fragment(t, `<speaker>s1</speaker>`), Raw)
	out1, err := Unnest(v1, "speaker")
	if err != nil {
		t.Fatal(err)
	}
	out2, err := Unnest(v2, "speaker")
	if err != nil {
		t.Fatal(err)
	}
	var all []string
	for _, v := range append(out1, out2...) {
		all = append(all, mustText(t, v))
	}
	want := []string{`<speaker>s1</speaker>`, `<speaker>s2</speaker>`, `<speaker>s1</speaker>`}
	if len(all) != len(want) {
		t.Fatalf("unnested = %v", all)
	}
	for i := range want {
		if all[i] != want[i] {
			t.Errorf("unnested[%d] = %q, want %q", i, all[i], want[i])
		}
	}
	// DISTINCT over the unnested values yields s1, s2 as in Figure 9(b).
	distinct := map[string]bool{}
	for _, s := range all {
		distinct[s] = true
	}
	if len(distinct) != 2 {
		t.Errorf("distinct speakers = %d, want 2", len(distinct))
	}
}

func TestUnnestEmptyAndMissing(t *testing.T) {
	var v Value
	out, err := Unnest(v, "x")
	if err != nil || len(out) != 0 {
		t.Errorf("Unnest(empty) = %v, %v", out, err)
	}
	v = Encode(fragment(t, `<a>b</a>`), Raw)
	out, err = Unnest(v, "zzz")
	if err != nil || len(out) != 0 {
		t.Errorf("Unnest(missing tag) = %v, %v", out, err)
	}
}

func TestCorruptCompressedData(t *testing.T) {
	good := Encode(fragment(t, speechFrag), Compressed)
	for _, mutate := range []func([]byte) []byte{
		func(b []byte) []byte { return b[:len(b)/2] },          // truncation
		func(b []byte) []byte { b[len(b)-1] = 0xFF; return b }, // bad trailing op
	} {
		b := append([]byte(nil), good.Bytes()...)
		v := FromBytes(mutate(b))
		if _, err := v.Nodes(); err == nil {
			t.Error("corrupt data should fail to decode")
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Fragments built from arbitrary small structures round-trip through
	// both formats.
	f := func(texts []string, tags []uint8) bool {
		root := xmltree.NewElement("r")
		cur := root
		for i, tag := range tags {
			elem := xmltree.NewElement(string(rune('a' + tag%26)))
			cur.Append(elem)
			if i%2 == 0 {
				cur = elem
			}
		}
		for i, s := range texts {
			clean := strings.Map(func(r rune) rune {
				if r < 0x20 || r == 0xFFFD {
					return -1
				}
				return r
			}, s)
			if clean == "" {
				continue
			}
			target := root
			if i%2 == 0 && len(root.Children) > 0 {
				target = root.Children[0]
			}
			target.AppendText(clean)
		}
		nodes := []*xmltree.Node{root}
		want := xmltree.SerializeAll(nodes)
		for _, f := range []Format{Raw, Compressed} {
			v := Encode(nodes, f)
			got, err := v.Text()
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
