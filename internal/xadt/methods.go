package xadt

import (
	"errors"
	"strings"

	"repro/internal/xmltree"
)

// GetElm implements the getElm method of §3.4.2: it returns all rootElm
// elements in the fragment that contain a searchElm descendant — within
// depth level of the rootElm when level > 0 — whose content contains
// searchKey.
//
// Degenerate arguments follow the paper:
//   - searchKey == "": any searchElm subelement qualifies.
//   - searchElm == "": every rootElm element qualifies.
//   - both empty: all rootElm elements are returned.
//
// The result is a new Value in the same storage format as the input, so
// calls compose: the output of one GetElm can be the input of the next.
func GetElm(in Value, rootElm, searchElm, searchKey string, level int) (Value, error) {
	nodes, err := in.Nodes()
	if err != nil {
		return Value{}, err
	}
	var out []*xmltree.Node
	forEachElement(nodes, func(n *xmltree.Node) {
		if n.Name != rootElm {
			return
		}
		if matchesElm(n, searchElm, searchKey, level) {
			out = append(out, n)
		}
	})
	return Encode(out, in.Format()), nil
}

// matchesElm reports whether root has a searchElm descendant within the
// given depth whose content contains searchKey.
func matchesElm(root *xmltree.Node, searchElm, searchKey string, level int) bool {
	if searchElm == "" {
		if searchKey == "" {
			return true
		}
		return strings.Contains(root.InnerText(), searchKey)
	}
	found := false
	var visit func(n *xmltree.Node, depth int)
	visit = func(n *xmltree.Node, depth int) {
		if found {
			return
		}
		if n.Name == searchElm && (searchKey == "" || strings.Contains(n.InnerText(), searchKey)) {
			found = true
			return
		}
		if level > 0 && depth >= level {
			return
		}
		for _, c := range n.Children {
			if c.IsElement() {
				visit(c, depth+1)
			}
		}
	}
	// The root participates at depth 0, so getElm(x, 'LINE', 'LINE', key)
	// filters LINE elements by their own content, as query QE1 uses it.
	visit(root, 0)
	return found
}

// FindKeyInElm implements the findKeyInElm method of §3.4.2: it reports
// whether any searchElm element in the fragment has content containing
// searchKey. With an empty searchKey it tests for the existence of
// searchElm; with an empty searchElm it tests whether any element content
// contains searchKey. Both arguments empty is an error, as the paper
// specifies.
func FindKeyInElm(in Value, searchElm, searchKey string) (bool, error) {
	if searchElm == "" && searchKey == "" {
		return false, errors.New("xadt: findKeyInElm requires searchElm or searchKey")
	}
	if searchElm != "" {
		// The paper implements this method "using the C string compare
		// and copy functions on the VARCHAR": scan the raw fragment text
		// directly instead of materializing a tree. Raw values are
		// always produced by the package serializer, so tags are never
		// self-closing and markup characters in content are escaped.
		if text, ok := in.textPart(); ok {
			return findKeyRaw(text, searchElm, searchKey), nil
		}
	}
	nodes, err := in.Nodes()
	if err != nil {
		return false, err
	}
	found := false
	forEachElement(nodes, func(n *xmltree.Node) {
		if found {
			return
		}
		if searchElm != "" && n.Name != searchElm {
			return
		}
		if searchKey == "" || strings.Contains(n.InnerText(), searchKey) {
			found = true
		}
	})
	return found, nil
}

// GetElmIndex implements the getElmIndex method of §3.4.2: it returns the
// childElm children of each parentElm element whose 1-based order among
// same-named siblings falls in [startPos, endPos]. With an empty parentElm
// the childElm elements at the top level of the fragment are indexed.
// childElm must not be empty.
func GetElmIndex(in Value, parentElm, childElm string, startPos, endPos int) (Value, error) {
	if childElm == "" {
		return Value{}, errors.New("xadt: getElmIndex requires a childElm")
	}
	if parentElm == "" && in.Format() == Directory {
		// The element directory resolves top-level positions without
		// parsing — the metadata speed-up the paper proposes.
		out, ok, err := sliceIndexed(in.data[1:], childElm, startPos, endPos)
		if err == nil && ok {
			return out, nil
		}
		if err != nil {
			return Value{}, err
		}
	}
	nodes, err := in.Nodes()
	if err != nil {
		return Value{}, err
	}
	var out []*xmltree.Node
	pick := func(children []*xmltree.Node) {
		pos := 0
		for _, c := range children {
			if c.Name != childElm {
				continue
			}
			pos++
			if pos >= startPos && pos <= endPos {
				out = append(out, c)
			}
		}
	}
	if parentElm == "" {
		pick(nodes)
	} else {
		forEachElement(nodes, func(n *xmltree.Node) {
			if n.Name == parentElm {
				pick(n.Children)
			}
		})
	}
	return Encode(out, in.Format()), nil
}

// Unnest implements the unnest table function of §3.5: it splits the
// fragment into one Value per element with the given tag name, in document
// order. Each returned Value keeps the input's storage format.
func Unnest(in Value, tag string) ([]Value, error) {
	if in.Format() == Directory {
		return sliceUnnest(in.data[1:], tag)
	}
	nodes, err := in.Nodes()
	if err != nil {
		return nil, err
	}
	var out []Value
	forEachElement(nodes, func(n *xmltree.Node) {
		if n.Name == tag {
			out = append(out, Encode([]*xmltree.Node{n}, in.Format()))
		}
	})
	return out, nil
}

// forEachElement visits every element in the fragment in document order,
// including nested ones.
func forEachElement(nodes []*xmltree.Node, fn func(*xmltree.Node)) {
	for _, n := range nodes {
		n.Walk(func(d *xmltree.Node) bool {
			if d.IsElement() {
				fn(d)
			}
			return true
		})
	}
}
