package xadt

import (
	"errors"
	"strings"

	"repro/internal/xmltree"
)

// Evaluator runs the XADT methods with the fast-path machinery: header
// fast-reject (skip fragments whose element-name filter proves the
// searched element absent, without decoding) and an optional decode
// cache (skip re-parsing fragments seen earlier in the execution). A nil
// *Evaluator is valid and evaluates with both disabled, which is the
// seed-era behaviour; the package-level functions use it.
//
// Evaluators are cheap value-like structs; each execution worker should
// use its own Cache (see CachePool) since caches are not thread-safe.
type Evaluator struct {
	// Cache, when non-nil, memoizes fragment decoding across calls.
	Cache *Cache
	// NoFilter disables header fast-reject, forcing the full decode path
	// even on headered values — the parse-every-call baseline.
	NoFilter bool
}

// nodes decodes in, through the cache when one is attached.
func (e *Evaluator) nodes(in Value) ([]*xmltree.Node, error) {
	if e != nil && e.Cache != nil {
		return e.Cache.Nodes(in)
	}
	return in.Nodes()
}

// mayContain reports whether in may contain an element called name.
// Only a headered value with name absent from its filter yields false;
// legacy values and disabled filters always pass.
func (e *Evaluator) mayContain(in Value, name string) bool {
	if name == "" || (e != nil && e.NoFilter) {
		return true
	}
	h, ok := in.Header()
	if !ok {
		return true
	}
	return h.MayContain(name)
}

// depthBelow reports whether a headered value's fragment is provably
// shallower than min levels of element nesting.
func (e *Evaluator) depthBelow(in Value, min int) bool {
	if e != nil && e.NoFilter {
		return false
	}
	h, ok := in.Header()
	return ok && h.Depth < min
}

// GetElm implements the getElm method of §3.4.2: it returns all rootElm
// elements in the fragment that contain a searchElm descendant — within
// depth level of the rootElm when level > 0 — whose content contains
// searchKey.
//
// Degenerate arguments follow the paper:
//   - searchKey == "": any searchElm subelement qualifies.
//   - searchElm == "": every rootElm element qualifies.
//   - both empty: all rootElm elements are returned.
//
// The result is a new Value in the same storage format as the input, so
// calls compose: the output of one GetElm can be the input of the next.
// Results are always headerless, matching what the seed produced.
func (e *Evaluator) GetElm(in Value, rootElm, searchElm, searchKey string, level int) (Value, error) {
	// Fast reject: no rootElm element, or no searchElm anywhere, means an
	// empty result — which Encode produces identically without a decode.
	// A searchElm distinct from the root must sit strictly inside it, so
	// a fragment only one level deep cannot match either.
	if !e.mayContain(in, rootElm) || !e.mayContain(in, searchElm) ||
		(searchElm != "" && searchElm != rootElm && e.depthBelow(in, 2)) {
		return Encode(nil, in.Format()), nil
	}
	nodes, err := e.nodes(in)
	if err != nil {
		return Value{}, err
	}
	var out []*xmltree.Node
	forEachElement(nodes, func(n *xmltree.Node) {
		if n.Name != rootElm {
			return
		}
		if matchesElm(n, searchElm, searchKey, level) {
			out = append(out, n)
		}
	})
	return Encode(out, in.Format()), nil
}

// GetElm evaluates with the default (seed-behaviour) evaluator.
func GetElm(in Value, rootElm, searchElm, searchKey string, level int) (Value, error) {
	return (*Evaluator)(nil).GetElm(in, rootElm, searchElm, searchKey, level)
}

// matchesElm reports whether root has a searchElm descendant within the
// given depth whose content contains searchKey.
func matchesElm(root *xmltree.Node, searchElm, searchKey string, level int) bool {
	if searchElm == "" {
		if searchKey == "" {
			return true
		}
		return strings.Contains(root.InnerText(), searchKey)
	}
	found := false
	var visit func(n *xmltree.Node, depth int)
	visit = func(n *xmltree.Node, depth int) {
		if found {
			return
		}
		if n.Name == searchElm && (searchKey == "" || strings.Contains(n.InnerText(), searchKey)) {
			found = true
			return
		}
		if level > 0 && depth >= level {
			return
		}
		for _, c := range n.Children {
			if c.IsElement() {
				visit(c, depth+1)
			}
		}
	}
	// The root participates at depth 0, so getElm(x, 'LINE', 'LINE', key)
	// filters LINE elements by their own content, as query QE1 uses it.
	visit(root, 0)
	return found
}

// FindKeyInElm implements the findKeyInElm method of §3.4.2: it reports
// whether any searchElm element in the fragment has content containing
// searchKey. With an empty searchKey it tests for the existence of
// searchElm; with an empty searchElm it tests whether any element content
// contains searchKey. Both arguments empty is an error, as the paper
// specifies.
func (e *Evaluator) FindKeyInElm(in Value, searchElm, searchKey string) (bool, error) {
	if searchElm == "" && searchKey == "" {
		return false, errors.New("xadt: findKeyInElm requires searchElm or searchKey")
	}
	if searchElm != "" {
		if !e.mayContain(in, searchElm) {
			return false, nil
		}
		// The paper implements this method "using the C string compare
		// and copy functions on the VARCHAR": scan the raw fragment text
		// directly instead of materializing a tree. Raw values are
		// always produced by the package serializer, so tags are never
		// self-closing and markup characters in content are escaped.
		if text, ok := in.textPart(); ok {
			return findKeyRaw(text, searchElm, searchKey), nil
		}
	}
	nodes, err := e.nodes(in)
	if err != nil {
		return false, err
	}
	found := false
	forEachElement(nodes, func(n *xmltree.Node) {
		if found {
			return
		}
		if searchElm != "" && n.Name != searchElm {
			return
		}
		if searchKey == "" || strings.Contains(n.InnerText(), searchKey) {
			found = true
		}
	})
	return found, nil
}

// FindKeyInElm evaluates with the default (seed-behaviour) evaluator.
func FindKeyInElm(in Value, searchElm, searchKey string) (bool, error) {
	return (*Evaluator)(nil).FindKeyInElm(in, searchElm, searchKey)
}

// GetElmIndex implements the getElmIndex method of §3.4.2: it returns the
// childElm children of each parentElm element whose 1-based order among
// same-named siblings falls in [startPos, endPos]. With an empty parentElm
// the childElm elements at the top level of the fragment are indexed.
// childElm must not be empty.
func (e *Evaluator) GetElmIndex(in Value, parentElm, childElm string, startPos, endPos int) (Value, error) {
	if childElm == "" {
		return Value{}, errors.New("xadt: getElmIndex requires a childElm")
	}
	if !e.mayContain(in, childElm) || !e.mayContain(in, parentElm) {
		return Encode(nil, in.Format()), nil
	}
	if parentElm == "" && in.Format() == Directory {
		// The element directory resolves top-level positions without
		// parsing — the metadata speed-up the paper proposes.
		out, ok, err := sliceIndexed(in.payloadBytes()[1:], childElm, startPos, endPos)
		if err == nil && ok {
			return out, nil
		}
		if err != nil {
			return Value{}, err
		}
	}
	nodes, err := e.nodes(in)
	if err != nil {
		return Value{}, err
	}
	var out []*xmltree.Node
	pick := func(children []*xmltree.Node) {
		pos := 0
		for _, c := range children {
			if c.Name != childElm {
				continue
			}
			pos++
			if pos >= startPos && pos <= endPos {
				out = append(out, c)
			}
		}
	}
	if parentElm == "" {
		pick(nodes)
	} else {
		forEachElement(nodes, func(n *xmltree.Node) {
			if n.Name == parentElm {
				pick(n.Children)
			}
		})
	}
	return Encode(out, in.Format()), nil
}

// GetElmIndex evaluates with the default (seed-behaviour) evaluator.
func GetElmIndex(in Value, parentElm, childElm string, startPos, endPos int) (Value, error) {
	return (*Evaluator)(nil).GetElmIndex(in, parentElm, childElm, startPos, endPos)
}

// Unnest implements the unnest table function of §3.5: it splits the
// fragment into one Value per element with the given tag name, in document
// order. Each returned Value keeps the input's storage format.
func (e *Evaluator) Unnest(in Value, tag string) ([]Value, error) {
	if tag != "" && !e.mayContain(in, tag) {
		return nil, nil
	}
	if in.Format() == Directory {
		return sliceUnnest(in.payloadBytes()[1:], tag)
	}
	nodes, err := e.nodes(in)
	if err != nil {
		return nil, err
	}
	var out []Value
	forEachElement(nodes, func(n *xmltree.Node) {
		if n.Name == tag {
			out = append(out, Encode([]*xmltree.Node{n}, in.Format()))
		}
	})
	return out, nil
}

// Unnest evaluates with the default (seed-behaviour) evaluator.
func Unnest(in Value, tag string) ([]Value, error) {
	return (*Evaluator)(nil).Unnest(in, tag)
}

// forEachElement visits every element in the fragment in document order,
// including nested ones.
func forEachElement(nodes []*xmltree.Node, fn func(*xmltree.Node)) {
	for _, n := range nodes {
		n.Walk(func(d *xmltree.Node) bool {
			if d.IsElement() {
				fn(d)
			}
			return true
		})
	}
}
