package xadt

import (
	"strings"
	"testing"

	"repro/internal/xmltree"
)

func dirValue(t *testing.T, src string) Value {
	t.Helper()
	nodes, err := xmltree.ParseFragment(src)
	if err != nil {
		t.Fatal(err)
	}
	return Encode(nodes, Directory)
}

func TestDirectoryRoundTrip(t *testing.T) {
	src := `<LINE attr="v">first &amp; second</LINE><STAGEDIR>Exit</STAGEDIR><LINE>third</LINE>`
	v := dirValue(t, src)
	if v.Format() != Directory {
		t.Fatalf("format = %v", v.Format())
	}
	text, err := v.Text()
	if err != nil || text != src {
		t.Errorf("Text = %q, %v", text, err)
	}
	nodes, err := v.Nodes()
	if err != nil || xmltree.SerializeAll(nodes) != src {
		t.Errorf("Nodes round-trip failed: %v", err)
	}
}

func TestDirectoryGetElmIndex(t *testing.T) {
	v := dirValue(t, `<LINE>one</LINE><NOTE>n</NOTE><LINE>two</LINE><LINE>three</LINE>`)
	out, err := GetElmIndex(v, "", "LINE", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if text, _ := out.Text(); text != `<LINE>two</LINE>` {
		t.Errorf("LINE[2] = %q", text)
	}
	out, err = GetElmIndex(v, "", "LINE", 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if text, _ := out.Text(); !strings.Contains(text, "one") || !strings.Contains(text, "three") {
		t.Errorf("range = %q", text)
	}
}

// TestDirectoryMatchesTreePaths checks every XADT method agrees across
// the three storage formats.
func TestDirectoryMatchesTreePaths(t *testing.T) {
	src := `<SPEECH><SPEAKER>HAMLET</SPEAKER><LINE>a friend</LINE><LINE>two</LINE></SPEECH>` +
		`<SPEECH><SPEAKER>GHOST</SPEAKER><LINE>swear</LINE></SPEECH>`
	nodes, err := xmltree.ParseFragment(src)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[Format]Value{
		Raw:        Encode(nodes, Raw),
		Compressed: Encode(nodes, Compressed),
		Directory:  Encode(nodes, Directory),
	}
	type result struct {
		get, idx string
		found    bool
		unnested int
	}
	results := map[Format]result{}
	for f, v := range vals {
		g, err := GetElm(v, "SPEECH", "SPEAKER", "GHOST", 0)
		if err != nil {
			t.Fatal(err)
		}
		gt, _ := g.Text()
		i, err := GetElmIndex(v, "", "SPEECH", 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		it, _ := i.Text()
		found, err := FindKeyInElm(v, "LINE", "friend")
		if err != nil {
			t.Fatal(err)
		}
		u, err := Unnest(v, "LINE")
		if err != nil {
			t.Fatal(err)
		}
		results[f] = result{get: gt, idx: it, found: found, unnested: len(u)}
	}
	base := results[Raw]
	for f, r := range results {
		if r != base {
			t.Errorf("%v disagrees with raw: %+v vs %+v", f, r, base)
		}
	}
	if base.unnested != 3 || !base.found {
		t.Errorf("base results wrong: %+v", base)
	}
	if !strings.Contains(base.get, "GHOST") || !strings.Contains(base.idx, "GHOST") {
		t.Errorf("unexpected contents: %+v", base)
	}
}

func TestDirectoryUnnestNestedSameTag(t *testing.T) {
	// d elements nested inside d elements: the fallback parse path must
	// report all occurrences, like the tree path does.
	src := `<d>outer<d>inner</d></d><x>no</x>`
	for _, f := range []Format{Raw, Directory} {
		nodes, _ := xmltree.ParseFragment(src)
		v := Encode(nodes, f)
		out, err := Unnest(v, "d")
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 2 {
			t.Errorf("%v: unnested %d, want 2", f, len(out))
		}
	}
}

func TestDirectoryEmpty(t *testing.T) {
	v := Encode(nil, Directory)
	if !v.IsEmpty() && v.Len() > 2 {
		t.Errorf("empty directory value = %d bytes", v.Len())
	}
	out, err := Unnest(v, "x")
	if err != nil || len(out) != 0 {
		t.Errorf("unnest empty = %v, %v", out, err)
	}
}

func TestDirectoryFindKeyUsesScanner(t *testing.T) {
	v := dirValue(t, `<LINE>some friend here</LINE>`)
	found, err := FindKeyInElm(v, "LINE", "friend")
	if err != nil || !found {
		t.Errorf("found = %v, %v", found, err)
	}
}

func TestDirectoryCorrupt(t *testing.T) {
	good := dirValue(t, `<a>x</a>`)
	b := append([]byte(nil), good.Bytes()...)
	v := FromBytes(b[:3])
	if _, err := v.Nodes(); err == nil {
		t.Error("truncated directory should fail")
	}
}

func TestDirectoryTextSizeComparable(t *testing.T) {
	// The directory adds a small header proportional to the number of
	// top-level elements.
	src := strings.Repeat(`<LINE>some text content goes here</LINE>`, 50)
	nodes, _ := xmltree.ParseFragment(src)
	raw := Encode(nodes, Raw)
	dir := Encode(nodes, Directory)
	overhead := dir.Len() - raw.Len()
	if overhead <= 0 || overhead > 50*16 {
		t.Errorf("directory overhead = %d bytes", overhead)
	}
}
