package xadt

import (
	"bytes"
	"testing"

	"repro/internal/xmltree"
)

// The format round-trip guarantee: a headered value decodes identically
// to its headerless twin across every format, including empty and
// single-node fragments.
func TestHeaderedDecodesLikeHeaderless(t *testing.T) {
	fragments := []string{
		"",
		"<LINE>lone element</LINE>",
		speechFrag,
		`<author AuthorPosition="1">Gray</author><author AuthorPosition="2">Codd</author>`,
		"plain text only",
	}
	for _, src := range fragments {
		for _, f := range []Format{Raw, Compressed, Directory} {
			nodes := fragment(t, src)
			plain := Encode(nodes, f)
			stored := EncodeStored(nodes, f)

			if _, ok := stored.Header(); !ok {
				t.Fatalf("%v %q: EncodeStored value has no header", f, src)
			}
			if _, ok := plain.Header(); ok {
				t.Fatalf("%v %q: Encode value unexpectedly has a header", f, src)
			}
			if stored.Format() != plain.Format() {
				t.Errorf("%v %q: headered format %v != %v", f, src, stored.Format(), plain.Format())
			}
			if stored.IsEmpty() != plain.IsEmpty() {
				t.Errorf("%v %q: IsEmpty %v != %v", f, src, stored.IsEmpty(), plain.IsEmpty())
			}
			if got, want := mustText(t, stored), mustText(t, plain); got != want {
				t.Errorf("%v %q: headered text %q != headerless %q", f, src, got, want)
			}
			hn, err := stored.Nodes()
			if err != nil {
				t.Fatalf("%v %q: headered Nodes: %v", f, src, err)
			}
			pn, err := plain.Nodes()
			if err != nil {
				t.Fatalf("%v %q: headerless Nodes: %v", f, src, err)
			}
			if xmltree.SerializeAll(hn) != xmltree.SerializeAll(pn) {
				t.Errorf("%v %q: node trees differ", f, src)
			}
			if !bytes.Equal(StripHeader(stored).Bytes(), plain.Bytes()) {
				t.Errorf("%v %q: StripHeader != headerless encoding", f, src)
			}
		}
	}
}

func TestWithHeaderIdempotent(t *testing.T) {
	nodes := fragment(t, speechFrag)
	plain := Encode(nodes, Compressed)
	h1, err := WithHeader(plain)
	if err != nil {
		t.Fatalf("WithHeader: %v", err)
	}
	h2, err := WithHeader(h1)
	if err != nil {
		t.Fatalf("WithHeader twice: %v", err)
	}
	if !bytes.Equal(h1.Bytes(), h2.Bytes()) {
		t.Error("WithHeader is not idempotent")
	}
	if !bytes.Equal(h1.Bytes(), EncodeStored(nodes, Compressed).Bytes()) {
		t.Error("WithHeader differs from EncodeStored")
	}
}

func TestHeaderFilterAndDepth(t *testing.T) {
	v := EncodeStored(fragment(t, speechFrag), Raw)
	h, ok := v.Header()
	if !ok {
		t.Fatal("no header")
	}
	for _, name := range []string{"SPEECH", "SPEAKER", "LINE"} {
		if !h.MayContain(name) {
			t.Errorf("MayContain(%q) = false for a present element", name)
		}
	}
	// STAGEDIR is absent; with a ~5%-fp filter it is overwhelmingly
	// likely rejected, and deterministic for this fixed fragment.
	if h.MayContain("STAGEDIR") {
		t.Error("MayContain(STAGEDIR) = true; filter not rejecting")
	}
	if h.Depth != 2 {
		t.Errorf("Depth = %d, want 2", h.Depth)
	}

	empty := EncodeStored(nil, Raw)
	eh, ok := empty.Header()
	if !ok {
		t.Fatal("empty fragment: no header")
	}
	if eh.Depth != 0 {
		t.Errorf("empty Depth = %d, want 0", eh.Depth)
	}
	if eh.MayContain("LINE") {
		t.Error("empty fragment claims it may contain LINE")
	}
}

// Fast-reject must be invisible: method results on headered values are
// byte-identical to results on their headerless twins, match or not.
func TestMethodParityHeaderedVsHeaderless(t *testing.T) {
	srcs := []string{
		speechFrag,
		`<SPEECH><SPEAKER>GHOST</SPEAKER><LINE>swear <STAGEDIR>Beneath</STAGEDIR></LINE></SPEECH>`,
		"",
	}
	for _, src := range srcs {
		for _, f := range []Format{Raw, Compressed, Directory} {
			nodes := fragment(t, src)
			plain := Encode(nodes, f)
			stored := EncodeStored(nodes, f)
			eval := &Evaluator{Cache: NewCache(0)}

			for _, args := range [][2]string{
				{"SPEECH", "STAGEDIR"}, {"SPEECH", "LINE"}, {"NOPE", "LINE"}, {"LINE", ""},
			} {
				want, err1 := GetElm(plain, args[0], args[1], "", 0)
				got, err2 := eval.GetElm(stored, args[0], args[1], "", 0)
				if err1 != nil || err2 != nil {
					t.Fatalf("GetElm errs: %v / %v", err1, err2)
				}
				if !bytes.Equal(want.Bytes(), got.Bytes()) {
					t.Errorf("%v %q: GetElm(%q,%q) differs on headered value", f, src, args[0], args[1])
				}
			}
			for _, elm := range []string{"STAGEDIR", "LINE", "ABSENT"} {
				want, err1 := FindKeyInElm(plain, elm, "")
				got, err2 := eval.FindKeyInElm(stored, elm, "")
				if err1 != nil || err2 != nil {
					t.Fatalf("FindKeyInElm errs: %v / %v", err1, err2)
				}
				if want != got {
					t.Errorf("%v %q: FindKeyInElm(%q) = %v on headered, want %v", f, src, elm, got, want)
				}
			}
			want, err1 := GetElmIndex(plain, "SPEECH", "LINE", 1, 2)
			got, err2 := eval.GetElmIndex(stored, "SPEECH", "LINE", 1, 2)
			if err1 != nil || err2 != nil {
				t.Fatalf("GetElmIndex errs: %v / %v", err1, err2)
			}
			if !bytes.Equal(want.Bytes(), got.Bytes()) {
				t.Errorf("%v %q: GetElmIndex differs on headered value", f, src)
			}
			wantU, err1 := Unnest(plain, "LINE")
			gotU, err2 := eval.Unnest(stored, "LINE")
			if err1 != nil || err2 != nil {
				t.Fatalf("Unnest errs: %v / %v", err1, err2)
			}
			if len(wantU) != len(gotU) {
				t.Fatalf("%v %q: Unnest count %d != %d", f, src, len(gotU), len(wantU))
			}
			for i := range wantU {
				if !bytes.Equal(wantU[i].Bytes(), gotU[i].Bytes()) {
					t.Errorf("%v %q: Unnest[%d] differs", f, src, i)
				}
			}
		}
	}
}

func TestCorruptHeaderFallsBackToPayloadError(t *testing.T) {
	// A truncated header must not panic; parseHeader rejects it and the
	// payload decoder reports the corruption.
	v := FromBytes([]byte{headerMarker, headerVersion, 0x20, 1})
	if _, ok := v.Header(); ok {
		t.Error("corrupt header parsed as valid")
	}
}

func TestCacheLRUAndStats(t *testing.T) {
	c := NewCache(2)
	a := Encode(fragment(t, "<A>x</A>"), Raw)
	b := Encode(fragment(t, "<B>y</B>"), Raw)
	d := Encode(fragment(t, "<D>z</D>"), Raw)

	for _, v := range []Value{a, b, a} {
		if _, err := c.Nodes(v); err != nil {
			t.Fatal(err)
		}
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 2 {
		t.Errorf("stats = %+v, want 1 hit / 2 misses", s)
	}
	// Insert d: b is LRU and must be evicted, a stays.
	if _, err := c.Nodes(d); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	if _, err := c.Nodes(a); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Nodes(b); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 4 {
		t.Errorf("stats = %+v, want 2 hits / 4 misses (b evicted)", s)
	}

	// Cached decodes must agree with direct decodes.
	n1, _ := c.Nodes(a)
	n2, _ := a.Nodes()
	if xmltree.SerializeAll(n1) != xmltree.SerializeAll(n2) {
		t.Error("cached decode differs from direct decode")
	}
}

func TestCachePoolFlushesStats(t *testing.T) {
	p := NewCachePool(4)
	c := p.Get()
	v := Encode(fragment(t, "<A>x</A>"), Compressed)
	for i := 0; i < 3; i++ {
		if _, err := c.Nodes(v); err != nil {
			t.Fatal(err)
		}
	}
	if s := p.Stats(); s.Hits != 0 && s.Misses != 0 {
		t.Errorf("pool stats flushed early: %+v", s)
	}
	p.Put(c)
	if s := p.Stats(); s.Hits != 2 || s.Misses != 1 {
		t.Errorf("pool stats = %+v, want 2 hits / 1 miss", s)
	}
}
