package xadt

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/xmltree"
)

func TestFindKeyRawBasics(t *testing.T) {
	frag := `<LINE>my dear friend</LINE><LINE>good &amp; night</LINE>` +
		`<LINE>nested <STAGEDIR>Rising</STAGEDIR> text</LINE>`
	cases := []struct {
		elm, key string
		want     bool
	}{
		{"LINE", "friend", true},
		{"LINE", "ghost", false},
		{"LINE", "", true},
		{"STAGEDIR", "Rising", true},
		{"STAGEDIR", "Falling", false},
		{"GHOST", "", false},
		{"LINE", "good & night", true},  // entity decoding
		{"LINE", "nested  text", false}, // tags are boundaries, not spaces
		{"LINE", "Rising", true},        // nested element text is content
		{"LIN", "", false},              // prefix of a longer tag name
	}
	for _, tc := range cases {
		if got := findKeyRaw(frag, tc.elm, tc.key); got != tc.want {
			t.Errorf("findKeyRaw(%q, %q) = %v, want %v", tc.elm, tc.key, got, tc.want)
		}
	}
}

func TestFindKeyRawNestedSameName(t *testing.T) {
	frag := `<d>outer <d>inner key</d> tail</d>`
	if !findKeyRaw(frag, "d", "inner key") {
		t.Error("nested same-name content not found")
	}
	if !findKeyRaw(frag, "d", "tail") {
		t.Error("outer content after nested close not found")
	}
	if findKeyRaw(frag, "d", "missing") {
		t.Error("false positive")
	}
}

func TestFindKeyRawAttributesIgnored(t *testing.T) {
	frag := `<author AuthorPosition="7">Ann</author>`
	if findKeyRaw(frag, "author", "7") {
		t.Error("attribute values are not element content")
	}
	if !findKeyRaw(frag, "author", "Ann") {
		t.Error("content not found")
	}
}

// TestFindKeyRawMatchesTreePath checks the fast path against the
// tree-based implementation on randomized fragments.
func TestFindKeyRawMatchesTreePath(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tags := []string{"a", "b", "ab", "LINE"}
	words := []string{"friend", "love", "night", "x & y", "<k>"}
	for trial := 0; trial < 300; trial++ {
		// Build a random fragment tree.
		var build func(depth int) *xmltree.Node
		build = func(depth int) *xmltree.Node {
			n := xmltree.NewElement(tags[rng.Intn(len(tags))])
			kids := rng.Intn(3)
			for i := 0; i < kids; i++ {
				if depth < 3 && rng.Intn(2) == 0 {
					n.Append(build(depth + 1))
				} else {
					n.AppendText(words[rng.Intn(len(words))])
				}
			}
			return n
		}
		nodes := []*xmltree.Node{build(0), build(0)}
		raw := Encode(nodes, Raw)
		comp := Encode(nodes, Compressed)
		elm := tags[rng.Intn(len(tags))]
		key := words[rng.Intn(len(words))]
		got, err := FindKeyInElm(raw, elm, key)
		if err != nil {
			t.Fatal(err)
		}
		// The compressed value always takes the tree path.
		want, err := FindKeyInElm(comp, elm, key)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: raw scan %v != tree %v for elm=%q key=%q fragment=%q",
				trial, got, want, elm, key, xmltree.SerializeAll(nodes))
		}
	}
}

func TestTextContentContains(t *testing.T) {
	cases := []struct {
		markup, key string
		want        bool
	}{
		{"plain text", "text", true},
		{"<a>inside</a>", "inside", true},
		{"<a>in</a>side", "inside", false}, // tag boundary splits words? no: "in" + "side" = "inside" actually!
	}
	_ = cases
	// Note: stripping tags concatenates adjacent text runs, matching
	// InnerText semantics.
	if !textContentContains("<a>in</a>side", "inside") {
		t.Error("InnerText concatenation semantics violated")
	}
	if !textContentContains("a &lt; b", "a < b") {
		t.Error("entity decoding")
	}
	if textContentContains("<tag attr=\"key\">x</tag>", "key") {
		t.Error("attribute content leaked into text")
	}
	if !textContentContains("anything", "") {
		t.Error("empty key matches")
	}
}

func TestDecodeEntityRef(t *testing.T) {
	cases := []struct {
		ref  string
		want string
		ok   bool
	}{
		{"lt", "<", true},
		{"gt", ">", true},
		{"amp", "&", true},
		{"quot", `"`, true},
		{"apos", "'", true},
		{"#65", "A", true},
		{"#233", "é", true},
		{"#x41", "A", true},
		{"#xE9", "é", true},
		{"#XE9", "é", true}, // capital X is accepted like the tree parser
		{"#x1F600", "\U0001F600", true},
		{"#x10FFFF", "\U0010FFFF", true},
		{"#1114112", "", false}, // 0x110000: beyond Unicode
		{"#x110000", "", false},
		{"#-1", "", false},
		{"#", "", false},
		{"#x", "", false},
		{"#xZZ", "", false},
		{"#12a", "", false},
		{"nbsp", "", false}, // undeclared named entity
		{"", "", false},
	}
	for _, tc := range cases {
		got, err := decodeEntityRef(tc.ref)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("decodeEntityRef(%q) = %q, %v; want %q", tc.ref, got, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("decodeEntityRef(%q) = %q, want error", tc.ref, got)
		}
	}
}

func TestTextContentContainsNumericRefs(t *testing.T) {
	if !textContentContains("caf&#233;", "café") {
		t.Error("decimal character reference not decoded")
	}
	if !textContentContains("caf&#xE9;", "café") {
		t.Error("hex character reference not decoded")
	}
	if !textContentContains("<LINE>A&#x26;B</LINE>", "A&B") {
		t.Error("hex amp reference not decoded")
	}
	// Malformed references keep the literal bytes, as the tree parser does.
	if !textContentContains("fish &#; chips", "fish &#; chips") {
		t.Error("malformed reference should stay literal")
	}
	if got, err := FindKeyInElm(mustParse("<LINE>caf&#xE9; life</LINE>", Raw), "LINE", "café life"); err != nil || !got {
		t.Errorf("raw-scan numeric ref through FindKeyInElm = %v, %v", got, err)
	}
}

func mustParse(s string, f Format) Value {
	v, err := Parse(s, f)
	if err != nil {
		panic(err)
	}
	return v
}

func TestRawScanPerformanceSanity(t *testing.T) {
	// The fast path must not allocate trees: spot-check it handles a
	// large fragment quickly (smoke test, no timing assertion).
	var sb strings.Builder
	for i := 0; i < 5000; i++ {
		sb.WriteString("<LINE>some ordinary text here</LINE>")
	}
	sb.WriteString("<LINE>the friend appears</LINE>")
	v, err := Parse(sb.String(), Raw)
	if err != nil {
		t.Fatal(err)
	}
	found, err := FindKeyInElm(v, "LINE", "friend")
	if err != nil || !found {
		t.Errorf("found = %v, %v", found, err)
	}
}
