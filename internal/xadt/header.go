package xadt

import (
	"encoding/binary"
	"hash/fnv"

	"repro/internal/xmltree"
)

// The fragment header is the metadata extension the paper proposes in
// §4.4/§5 ("storing of metadata with the XADT attribute to improve the
// performance of the methods on the XADT"), applied to method fast
// rejection: a small self-describing block in front of the stored value
// carrying a Bloom filter over the fragment's element names and the
// fragment's element depth. GetElm, FindKeyInElm, GetElmIndex and Unnest
// consult the filter to reject fragments that cannot contain the element
// they search for in O(header) time, without decoding the payload — the
// dominant cost on Compressed values, which otherwise require a full
// parse per method call.
//
// Layout (in front of any legacy-format payload):
//
//	[0xF8][version=1][uvarint hlen][header body][payload]
//	header body: [uvarint depth][uvarint nfilter][filter bytes]
//
// The payload is a complete legacy value (format byte + body), so every
// decode path works on the payload unchanged and a headerless seed-era
// value is simply one with no header in front. hlen is the body length in
// bytes: readers that know the marker but not the version skip the body
// wholesale, so future header extensions stay readable. 0xF8 cannot
// collide with a legacy value, whose first byte is always a Format
// (0, 1 or 2).

const (
	// headerMarker introduces a headered value.
	headerMarker byte = 0xF8
	// headerVersion is the current header layout version.
	headerVersion byte = 1
)

// Filter sizing: 8 bits per distinct element name gives ~5% false
// positives with two probes; sizes are clamped so tiny fragments pay a
// fixed 8 bytes and pathological ones never exceed 64.
const (
	minFilterBytes = 8
	maxFilterBytes = 64
)

// Header is the decoded fragment header.
type Header struct {
	// Depth is the maximum element nesting depth of the fragment (a lone
	// element is depth 1; an empty fragment is 0).
	Depth int
	// filter is the Bloom filter over the fragment's element names.
	filter []byte
}

// MayContain reports whether the fragment may contain an element with
// the given name. False is definitive: the element is absent. True means
// the element is present or a false positive (~5%).
func (h *Header) MayContain(name string) bool {
	if len(h.filter) == 0 {
		return false // empty fragment: no elements at all
	}
	h1, h2 := filterHashes(name)
	bits := uint32(len(h.filter)) * 8
	return h.testBit(h1%bits) && h.testBit(h2%bits)
}

func (h *Header) testBit(i uint32) bool {
	return h.filter[i/8]&(1<<(i%8)) != 0
}

func setBit(filter []byte, i uint32) {
	filter[i/8] |= 1 << (i % 8)
}

// filterHashes derives the two Bloom probes from one 64-bit FNV-1a hash.
func filterHashes(name string) (uint32, uint32) {
	f := fnv.New64a()
	f.Write([]byte(name))
	h := f.Sum64()
	return uint32(h), uint32(h >> 32)
}

// buildHeader assembles the header bytes for a fragment's nodes.
func buildHeader(nodes []*xmltree.Node) []byte {
	names := map[string]struct{}{}
	depth := 0
	var walk func(n *xmltree.Node, d int)
	walk = func(n *xmltree.Node, d int) {
		if !n.IsElement() {
			return
		}
		names[n.Name] = struct{}{}
		if d > depth {
			depth = d
		}
		for _, c := range n.Children {
			walk(c, d+1)
		}
	}
	for _, n := range nodes {
		walk(n, 1)
	}

	var filter []byte
	if len(names) > 0 {
		nbytes := minFilterBytes
		for nbytes < len(names) && nbytes < maxFilterBytes {
			nbytes *= 2
		}
		filter = make([]byte, nbytes)
		bits := uint32(nbytes) * 8
		for name := range names {
			h1, h2 := filterHashes(name)
			setBit(filter, h1%bits)
			setBit(filter, h2%bits)
		}
	}

	body := binary.AppendUvarint(nil, uint64(depth))
	body = binary.AppendUvarint(body, uint64(len(filter)))
	body = append(body, filter...)

	out := []byte{headerMarker, headerVersion}
	out = binary.AppendUvarint(out, uint64(len(body)))
	return append(out, body...)
}

// EncodeStored builds a Value in the given format with a fragment header
// in front — the representation the loader writes. Method outputs use
// plain Encode so composed results stay byte-identical to seed-era ones.
func EncodeStored(nodes []*xmltree.Node, f Format) Value {
	payload := Encode(nodes, f)
	hdr := buildHeader(nodes)
	data := make([]byte, 0, len(hdr)+len(payload.data))
	data = append(data, hdr...)
	data = append(data, payload.data...)
	return Value{data: data}
}

// WithHeader returns v with a fragment header prepended, decoding the
// payload to compute it. Already-headered values are returned unchanged.
func WithHeader(v Value) (Value, error) {
	if _, off, ok := parseHeader(v.data); ok && off > 0 {
		return v, nil
	}
	nodes, err := v.Nodes()
	if err != nil {
		return Value{}, err
	}
	return EncodeStored(nodes, v.Format()), nil
}

// StripHeader returns the headerless legacy value carried in v. Values
// without a header are returned unchanged.
func StripHeader(v Value) Value {
	return Value{data: v.payloadBytes()}
}

// Header returns the decoded fragment header, or ok=false for legacy
// (headerless) or corrupt values.
func (v Value) Header() (Header, bool) {
	h, _, ok := parseHeader(v.data)
	return h, ok
}

// payloadOffset returns where the legacy payload starts: 0 for
// headerless values, past the header otherwise. Corrupt headers yield 0
// so the payload decoder surfaces the error.
func payloadOffset(data []byte) int {
	_, off, ok := parseHeader(data)
	if !ok {
		return 0
	}
	return off
}

// payloadBytes returns the legacy-format payload of the value.
func (v Value) payloadBytes() []byte {
	return v.data[payloadOffset(v.data):]
}

// parseHeader decodes a header, returning it with the payload offset.
// ok is false when data is headerless or the header is malformed.
func parseHeader(data []byte) (Header, int, bool) {
	if len(data) < 2 || data[0] != headerMarker {
		return Header{}, 0, false
	}
	r := &byteReader{b: data, pos: 2} // skip marker + version
	hlen, err := r.uvarint()
	// Compare lengths as uint64 before converting: a corrupt varint can
	// exceed math.MaxInt and flip negative under int().
	if err != nil || hlen > uint64(len(data)) || r.pos+int(hlen) > len(data) {
		return Header{}, 0, false
	}
	off := r.pos + int(hlen)
	body := &byteReader{b: data[:off], pos: r.pos}
	depth, err := body.uvarint()
	if err != nil || depth > uint64(len(data)) {
		return Header{}, 0, false
	}
	nfilter, err := body.uvarint()
	if err != nil || nfilter > uint64(off) || body.pos+int(nfilter) > off {
		return Header{}, 0, false
	}
	filter := data[body.pos : body.pos+int(nfilter)]
	return Header{Depth: int(depth), filter: filter}, off, true
}
