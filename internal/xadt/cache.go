package xadt

import (
	"sync"
	"sync/atomic"

	"repro/internal/xmltree"
)

// DefaultCacheEntries bounds each decode cache. 128 fragments is enough
// to cover the reuse pattern that matters — a WHERE predicate parsing a
// fragment and the projection re-parsing the same one — while keeping a
// worker's cache well under a megabyte on the paper's datasets.
const DefaultCacheEntries = 128

// Cache memoizes fragment→parsed-tree, keyed by the fragment's encoded
// bytes, with LRU eviction. It is not safe for concurrent use; each
// execution worker owns one (see CachePool).
type Cache struct {
	cap     int
	entries map[string]*cacheEntry
	// Intrusive LRU list with a sentinel: head.next is most recent.
	head cacheEntry
	hits, misses uint64
	// missStreak counts consecutive misses; a long streak means the
	// caller is sweeping distinct fragments (no reuse), so admission is
	// throttled to avoid paying key-copy + eviction per call.
	missStreak int
}

type cacheEntry struct {
	key        string
	nodes      []*xmltree.Node
	prev, next *cacheEntry
}

// NewCache returns a cache bounded to max entries (DefaultCacheEntries
// if max <= 0).
func NewCache(max int) *Cache {
	if max <= 0 {
		max = DefaultCacheEntries
	}
	c := &Cache{cap: max, entries: make(map[string]*cacheEntry, max)}
	c.head.prev, c.head.next = &c.head, &c.head
	return c
}

// Nodes returns the parsed node list for v, decoding and caching on
// miss. Callers must treat the returned trees as read-only: they are
// shared across lookups of the same fragment.
func (c *Cache) Nodes(v Value) ([]*xmltree.Node, error) {
	// The inline string(v.data) conversion lets the compiler elide the
	// key copy on the hit path.
	if e, ok := c.entries[string(v.data)]; ok {
		c.hits++
		c.missStreak = 0
		c.unlink(e)
		c.pushFront(e)
		return e.nodes, nil
	}
	c.misses++
	c.missStreak++
	nodes, err := v.Nodes()
	if err != nil {
		return nil, err
	}
	// Sweep detection: after 2*cap consecutive misses nothing inserted
	// recently has been re-referenced, so admit only every 8th fragment.
	// A single hit resets the streak and restores full admission.
	if c.missStreak > 2*c.cap && c.missStreak%8 != 0 {
		return nodes, nil
	}
	if len(c.entries) >= c.cap {
		lru := c.head.prev
		c.unlink(lru)
		delete(c.entries, lru.key)
	}
	e := &cacheEntry{key: string(v.data), nodes: nodes}
	c.entries[e.key] = e
	c.pushFront(e)
	return nodes, nil
}

func (c *Cache) unlink(e *cacheEntry) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (c *Cache) pushFront(e *cacheEntry) {
	e.next = c.head.next
	e.prev = &c.head
	e.next.prev = e
	c.head.next = e
}

// Len reports the number of cached fragments.
func (c *Cache) Len() int { return len(c.entries) }

// Stats reports the cache's accumulated hit/miss counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{Hits: c.hits, Misses: c.misses}
}

// CacheStats are decode-cache counters, aggregated per pool.
type CacheStats struct {
	Hits   uint64
	Misses uint64
}

// CachePool hands out decode caches to execution workers. It is backed
// by sync.Pool, so under the parallel executor each worker effectively
// keeps a private cache for the life of a pipeline (no contention on the
// hot path); counters are flushed into the pool's atomic totals on Put
// so Stats survives cache recycling.
type CachePool struct {
	pool    sync.Pool
	entries int
	hits    atomic.Uint64
	misses  atomic.Uint64
}

// NewCachePool returns a pool of caches each bounded to entriesPerCache
// (DefaultCacheEntries if <= 0).
func NewCachePool(entriesPerCache int) *CachePool {
	p := &CachePool{entries: entriesPerCache}
	p.pool.New = func() any { return NewCache(p.entries) }
	return p
}

// Get borrows a cache. Pair with Put.
func (p *CachePool) Get() *Cache { return p.pool.Get().(*Cache) }

// Put returns a cache to the pool, folding its counters into the pool
// totals. The cache keeps its contents, so a worker that re-borrows one
// still benefits from earlier decodes.
func (p *CachePool) Put(c *Cache) {
	p.hits.Add(c.hits)
	p.misses.Add(c.misses)
	c.hits, c.misses = 0, 0
	p.pool.Put(c)
}

// Stats returns the pool-wide totals flushed by Put so far.
func (p *CachePool) Stats() CacheStats {
	return CacheStats{Hits: p.hits.Load(), Misses: p.misses.Load()}
}
