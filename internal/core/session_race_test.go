package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestSessionRaceStress drives concurrent writer and reader sessions to
// give the race detector surface area (it runs under -race in make ci).
// Writers increment a counter row with optimistic retry; the final value
// must equal the number of successful commits — the classic lost-update
// check, under real goroutine interleavings this time.
func TestSessionRaceStress(t *testing.T) {
	const (
		writers    = 4
		readers    = 4
		increments = 12
	)
	st, _ := mvccPlayStore(t, XORator, 1)
	if _, err := st.Exec(`INSERT INTO play (playID, play_title) VALUES (-100, '0')`); err != nil {
		t.Fatal(err)
	}

	var commits atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan error, writers+readers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < increments; i++ {
				for {
					s, err := st.NewSession()
					if err != nil {
						errc <- err
						return
					}
					res, err := s.Query(`SELECT play_title FROM play WHERE playID = -100`)
					if err != nil {
						s.Rollback()
						errc <- err
						return
					}
					var n int
					fmt.Sscanf(res.Rows[0][0].Str(), "%d", &n)
					if _, err := s.Exec(fmt.Sprintf(
						`UPDATE play SET play_title = '%d' WHERE playID = -100`, n+1)); err != nil {
						s.Rollback()
						errc <- err
						return
					}
					err = s.Commit()
					if err == nil {
						commits.Add(1)
						break
					}
					if !errors.Is(err, ErrConflict) {
						errc <- err
						return
					}
					// Conflict: retry on a fresh snapshot.
				}
			}
		}()
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3*increments; i++ {
				s, err := st.NewSession()
				if err != nil {
					errc <- err
					return
				}
				// Repeated reads inside one snapshot must agree even
				// while writers commit around it.
				first, err := s.Query(`SELECT play_title FROM play WHERE playID = -100`)
				if err != nil {
					s.Rollback()
					errc <- err
					return
				}
				again, err := s.Query(`SELECT play_title FROM play WHERE playID = -100`)
				if err != nil {
					s.Rollback()
					errc <- err
					return
				}
				if first.Rows[0][0].Str() != again.Rows[0][0].Str() {
					errc <- fmt.Errorf("snapshot wobbled: %q then %q",
						first.Rows[0][0].Str(), again.Rows[0][0].Str())
					s.Rollback()
					return
				}
				s.Rollback()
			}
		}()
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	want := int64(writers * increments)
	if commits.Load() != want {
		t.Fatalf("commits = %d, want %d", commits.Load(), want)
	}
	res, err := st.Query(`SELECT play_title FROM play WHERE playID = -100`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Str(); got != fmt.Sprint(want) {
		t.Fatalf("counter = %s, want %d (lost update under races)", got, want)
	}
}
