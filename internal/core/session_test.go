package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/engine"
)

// mvccPlayStore builds an MVCC-enabled store with registered documents.
func mvccPlayStore(t *testing.T, alg Algorithm, dop int) (*Store, []int64) {
	t.Helper()
	st, err := NewStore(corpus.ShakespeareDTD, Config{
		Algorithm: alg,
		Engine:    engine.Config{MVCC: true, DOP: dop},
	})
	if err != nil {
		t.Fatal(err)
	}
	ids, err := st.AddDocuments(smallPlays(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.RunStats(); err != nil {
		t.Fatal(err)
	}
	return st, ids
}

// canon renders query rows as a sorted byte-comparable string.
func canon(res *engine.Result) string {
	lines := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.String()
		}
		lines[i] = strings.Join(parts, "|")
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func sessionQuery(t *testing.T, s *Session, q string) string {
	t.Helper()
	res, err := s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	return canon(res)
}

func sessionExec(t *testing.T, s *Session, q string) int64 {
	t.Helper()
	n, err := s.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// forEachCell runs fn across both mappings and serial/parallel planning.
func forEachCell(t *testing.T, fn func(t *testing.T, alg Algorithm, dop int)) {
	for _, alg := range []Algorithm{Hybrid, XORator} {
		for _, dop := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/dop%d", alg, dop), func(t *testing.T) {
				fn(t, alg, dop)
			})
		}
	}
}

const titleOfPlay1 = `SELECT play_title FROM play WHERE playID = %d`

func TestIsolationAnomalies(t *testing.T) {
	forEachCell(t, func(t *testing.T, alg Algorithm, dop int) {
		t.Run("DirtyRead", func(t *testing.T) {
			st, _ := mvccPlayStore(t, alg, dop)
			writer, err := st.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			defer writer.Rollback()
			sessionExec(t, writer, `UPDATE play SET play_title = 'DIRTY' WHERE playID = 1`)

			// Neither another session nor the autocommit path may see
			// the uncommitted write.
			reader, err := st.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			defer reader.Rollback()
			for name, got := range map[string]string{
				"session": sessionQuery(t, reader, `SELECT COUNT(*) FROM play WHERE play_title = 'DIRTY'`),
				"store":   storeCount(t, st, `SELECT COUNT(*) FROM play WHERE play_title = 'DIRTY'`),
			} {
				if got != "0" {
					t.Errorf("%s reader sees %s dirty rows, want 0", name, got)
				}
			}
			writer.Rollback()
			if got := storeCount(t, st, `SELECT COUNT(*) FROM play WHERE play_title = 'DIRTY'`); got != "0" {
				t.Errorf("rolled-back write visible: %s rows", got)
			}
		})

		t.Run("NonRepeatableRead", func(t *testing.T) {
			st, _ := mvccPlayStore(t, alg, dop)
			reader, err := st.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			defer reader.Rollback()
			q := fmt.Sprintf(titleOfPlay1, 1)
			first := sessionQuery(t, reader, q)

			writer, err := st.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			sessionExec(t, writer, `UPDATE play SET play_title = 'CHANGED' WHERE playID = 1`)
			if err := writer.Commit(); err != nil {
				t.Fatal(err)
			}

			if again := sessionQuery(t, reader, q); again != first {
				t.Errorf("repeated read changed: %q then %q", first, again)
			}
			// A fresh session does see the commit.
			fresh, err := st.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			defer fresh.Rollback()
			if got := sessionQuery(t, fresh, q); got != "CHANGED" {
				t.Errorf("fresh session reads %q, want CHANGED", got)
			}
		})

		t.Run("LostUpdate", func(t *testing.T) {
			st, _ := mvccPlayStore(t, alg, dop)
			s1, err := st.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			s2, err := st.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Rollback()
			// Both read-modify-write the same row.
			sessionExec(t, s1, `UPDATE play SET play_title = 'FIRST' WHERE playID = 1`)
			sessionExec(t, s2, `UPDATE play SET play_title = 'SECOND' WHERE playID = 1`)
			if err := s1.Commit(); err != nil {
				t.Fatalf("first committer: %v", err)
			}
			err = s2.Commit()
			if !errors.Is(err, ErrConflict) {
				t.Fatalf("second committer got %v, want ErrConflict", err)
			}
			if got := storeCount(t, st, `SELECT play_title FROM play WHERE playID = 1`); got != "FIRST" {
				t.Errorf("final title %q, want FIRST (no lost update)", got)
			}
		})

		t.Run("WriteSkew", func(t *testing.T) {
			st, _ := mvccPlayStore(t, alg, dop)
			// Snapshot isolation permits write skew: both sessions read
			// the same two rows but write disjoint ones, so neither
			// conflicts and both commit.
			s1, err := st.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			s2, err := st.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			_ = sessionQuery(t, s1, `SELECT play_title FROM play WHERE playID <= 2`)
			_ = sessionQuery(t, s2, `SELECT play_title FROM play WHERE playID <= 2`)
			sessionExec(t, s1, `UPDATE play SET play_title = 'SKEW-A' WHERE playID = 1`)
			sessionExec(t, s2, `UPDATE play SET play_title = 'SKEW-B' WHERE playID = 2`)
			if err := s1.Commit(); err != nil {
				t.Fatalf("s1: %v", err)
			}
			if err := s2.Commit(); err != nil {
				t.Fatalf("s2 (write skew must commit under SI): %v", err)
			}
			if got := storeCount(t, st, `SELECT COUNT(*) FROM play WHERE play_title = 'SKEW-A' OR play_title = 'SKEW-B'`); got != "2" {
				t.Errorf("skew rows = %s, want 2", got)
			}
		})

		t.Run("ReadOwnWrites", func(t *testing.T) {
			st, _ := mvccPlayStore(t, alg, dop)
			s, err := st.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			defer s.Rollback()
			sessionExec(t, s, `INSERT INTO play (playID, play_title) VALUES (-7, 'Mine')`)
			sessionExec(t, s, `UPDATE play SET play_title = 'MineToo' WHERE playID = 1`)
			if got := sessionQuery(t, s, `SELECT COUNT(*) FROM play WHERE play_title = 'Mine' OR play_title = 'MineToo'`); got != "2" {
				t.Errorf("session sees %s of its own writes, want 2", got)
			}
			sessionExec(t, s, `DELETE FROM play WHERE playID = -7`)
			if got := sessionQuery(t, s, `SELECT COUNT(*) FROM play WHERE playID = -7`); got != "0" {
				t.Errorf("session sees its own deleted row")
			}
			// Nothing escaped before commit.
			if got := storeCount(t, st, `SELECT COUNT(*) FROM play WHERE play_title = 'MineToo'`); got != "0" {
				t.Errorf("uncommitted write leaked")
			}
			if err := s.Commit(); err != nil {
				t.Fatal(err)
			}
			if got := storeCount(t, st, `SELECT COUNT(*) FROM play WHERE play_title = 'MineToo'`); got != "1" {
				t.Errorf("committed write missing")
			}
		})
	})
}

func storeCount(t *testing.T, st *Store, q string) string {
	t.Helper()
	res, err := st.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	return canon(res)
}

// TestSnapshotStability is the acceptance criterion: a reader holding a
// snapshot gets byte-identical results before, during, and after a
// concurrent committed writer.
func TestSnapshotStability(t *testing.T) {
	forEachCell(t, func(t *testing.T, alg Algorithm, dop int) {
		queries := []string{
			`SELECT play_title FROM play`,
			`SELECT COUNT(*) FROM speech`,
		}
		if alg == Hybrid {
			queries = append(queries,
				`SELECT speaker_value FROM speaker, speech WHERE speaker_parentID = speechID`)
		} else {
			queries = append(queries,
				`SELECT speechID FROM speech, scene WHERE speech_parentID = sceneID`)
		}
		st, ids := mvccPlayStore(t, alg, dop)
		reader, err := st.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		defer reader.Rollback()
		before := make([]string, len(queries))
		for i, q := range queries {
			before[i] = sessionQuery(t, reader, q)
		}

		// Concurrent committed writers: DML, a document removal, and a
		// fresh document load.
		writer, err := st.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		sessionExec(t, writer, `UPDATE play SET play_title = 'Rewritten' WHERE playID = 1`)
		if err := writer.RemoveDocument(ids[1]); err != nil {
			t.Fatal(err)
		}
		if err := writer.AddDocuments(smallPlays(t, 1)); err != nil {
			t.Fatal(err)
		}
		if err := writer.Commit(); err != nil {
			t.Fatal(err)
		}

		for i, q := range queries {
			if got := sessionQuery(t, reader, q); got != before[i] {
				t.Errorf("query %q changed under snapshot:\nbefore: %.120q\nafter:  %.120q", q, before[i], got)
			}
		}
		// And the writer's effects are visible to a fresh snapshot.
		fresh, err := st.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		defer fresh.Rollback()
		if got := sessionQuery(t, fresh, `SELECT COUNT(*) FROM play WHERE play_title = 'Rewritten'`); got != "1" {
			t.Errorf("fresh session misses committed update")
		}
	})
}

// TestSessionDocOps exercises document ops inside transactions.
func TestSessionDocOps(t *testing.T) {
	st, ids := mvccPlayStore(t, XORator, 1)
	speeches := storeCount(t, st, `SELECT COUNT(*) FROM speech`)

	// Rolled-back removal leaves everything in place.
	s, err := st.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveDocument(ids[0]); err != nil {
		t.Fatal(err)
	}
	s.Rollback()
	if got := storeCount(t, st, `SELECT COUNT(*) FROM speech`); got != speeches {
		t.Fatalf("rollback leaked: %s speeches, want %s", got, speeches)
	}

	// Committed removal + add in one transaction.
	s, err = st.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveDocument(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.AddDocuments(smallPlays(t, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := storeCount(t, st, `SELECT COUNT(*) FROM play`); got != "4" {
		t.Fatalf("plays = %s, want 4 (3 - 1 + 2)", got)
	}

	// Removing the same document twice across concurrent sessions: the
	// second committer conflicts on the shared victim rows.
	s1, err := st.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := st.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.RemoveDocument(ids[1]); err != nil {
		t.Fatal(err)
	}
	if err := s2.RemoveDocument(ids[1]); err != nil {
		t.Fatal(err)
	}
	if err := s1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("concurrent double-remove got %v, want ErrConflict", err)
	}

	// Splice inside a session, with a conflicting direct splice landing
	// first.
	s3, err := st.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Query(`SELECT MIN(speechID) FROM speech`)
	if err != nil {
		t.Fatal(err)
	}
	target := res.Rows[0][0].Int()
	frag := `<LINE>mark me</LINE>`
	if err := s3.SpliceFragment("speech", "speech_line", target, []string{frag}); err != nil {
		t.Fatal(err)
	}
	if err := st.SpliceFragment("speech", "speech_line", target, []string{frag}); err != nil {
		t.Fatal(err)
	}
	if err := s3.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("splice over direct splice got %v, want ErrConflict", err)
	}
}

func TestBeginRequiresMVCC(t *testing.T) {
	st := newPlayStore(t, XORator)
	if _, err := st.NewSession(); err == nil {
		t.Fatal("NewSession on a non-MVCC store succeeded")
	}
}
