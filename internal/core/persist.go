package core

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/dtd"
	"repro/internal/engine"
	"repro/internal/mapping"
	"repro/internal/shred"
	"repro/internal/xadt"
)

// storeHeader is the metadata a snapshot needs to rebuild a Store around
// the restored tables.
type storeHeader struct {
	Version   int    `json:"version"`
	Algorithm string `json:"algorithm"`
	Format    byte   `json:"format"`
	DTD       string `json:"dtd"`
}

// Save writes the store — its mapping metadata, DTD, and all table data —
// to w. Restore with OpenSnapshot.
func (st *Store) Save(w io.Writer) error {
	hdr, err := json.Marshal(storeHeader{
		Version:   1,
		Algorithm: string(st.cfg.Algorithm),
		Format:    byte(st.Format),
		DTD:       st.DTD.String(),
	})
	if err != nil {
		return err
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(hdr)))
	if _, err := w.Write(lenBuf[:n]); err != nil {
		return err
	}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	return st.DB.Save(w)
}

// SaveFile writes a snapshot to path.
func (st *Store) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := st.Save(f); err != nil {
		return err
	}
	return f.Sync()
}

// OpenSnapshot restores a store written by Save. Further Load calls
// resume ID assignment where the snapshot left off.
func OpenSnapshot(r io.Reader, engineCfg engine.Config) (*Store, error) {
	br := bufio.NewReader(r)
	hlen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("core: reading snapshot header length: %w", err)
	}
	if hlen > 1<<24 {
		return nil, fmt.Errorf("core: implausible snapshot header size %d", hlen)
	}
	raw := make([]byte, hlen)
	if _, err := io.ReadFull(br, raw); err != nil {
		return nil, err
	}
	var hdr storeHeader
	if err := json.Unmarshal(raw, &hdr); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot header: %w", err)
	}
	if hdr.Version != 1 {
		return nil, fmt.Errorf("core: unsupported snapshot version %d", hdr.Version)
	}

	d, err := dtd.Parse(hdr.DTD)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot DTD: %w", err)
	}
	simplified := dtd.Simplify(d)
	alg := Algorithm(hdr.Algorithm)
	var schema *mapping.Schema
	switch alg {
	case Hybrid:
		schema, err = mapping.Hybrid(simplified)
	case XORator:
		schema, err = mapping.XORator(simplified)
	default:
		return nil, fmt.Errorf("core: snapshot algorithm %q", hdr.Algorithm)
	}
	if err != nil {
		return nil, err
	}

	db, err := engine.OpenSnapshot(br, engineCfg)
	if err != nil {
		return nil, err
	}
	format := xadt.Format(hdr.Format)
	loader, err := shred.ResumeLoader(db, schema, format)
	if err != nil {
		return nil, err
	}
	return &Store{
		DB:         db,
		DTD:        d,
		Simplified: simplified,
		Schema:     schema,
		Format:     format,
		cfg:        Config{Algorithm: alg, Engine: engineCfg},
		loader:     loader,
	}, nil
}

// OpenSnapshotFile restores a store from a file written by SaveFile.
func OpenSnapshotFile(path string, engineCfg engine.Config) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return OpenSnapshot(f, engineCfg)
}
