package core

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path"

	"repro/internal/dtd"
	"repro/internal/engine"
	"repro/internal/engine/storage"
	"repro/internal/engine/types"
	"repro/internal/engine/wal"
	"repro/internal/mapping"
	"repro/internal/shred"
	"repro/internal/xadt"
)

// storeHeader is the metadata a snapshot needs to rebuild a Store around
// the restored tables. Version 2 adds the durability fields; version 1
// snapshots (no WAL) still load, with FormatSet assumed true as it was
// then.
type storeHeader struct {
	Version   int    `json:"version"`
	Algorithm string `json:"algorithm"`
	Format    byte   `json:"format"`
	// FormatSet reports whether the XADT storage-format decision had
	// been made (the first documents loaded) when the snapshot was
	// taken.
	FormatSet bool `json:"format_set"`
	// Legacy mirrors Config.DisableXADTHeaders so resumed loads keep
	// writing the representation the store was built with.
	Legacy bool `json:"legacy,omitempty"`
	// LastBatch is the WAL batch sequence number this snapshot absorbs;
	// recovery replays only batches after it.
	LastBatch uint64 `json:"last_batch"`
	// IDs are the loader's per-relation ID counters at snapshot time.
	// They can exceed the highest stored ID when high rows were deleted,
	// and counters must never move backwards — reusing an ID would alias
	// two elements — so restore takes them as floors. Absent in snapshots
	// predating DML, where counters always equaled the stored maximum.
	IDs map[string]int64 `json:"ids,omitempty"`
	DTD string           `json:"dtd"`
}

// snapshotVersion is the header version Save writes.
const snapshotVersion = 2

// ErrNoCheckpoint reports that a WAL directory holds no checkpoint to
// recover from — either the store never finished creation or the
// directory is wrong.
var ErrNoCheckpoint = errors.New("core: WAL directory has no checkpoint")

// checkpointPath locates the checkpoint snapshot inside a WAL directory.
func checkpointPath(dir string) string { return path.Join(dir, "checkpoint.snap") }

// Save writes the store — its mapping metadata, DTD, and all table data —
// to w. Restore with OpenSnapshot. On a WAL-enabled store the header is
// stamped with the last committed batch, making the snapshot a valid
// checkpoint base.
func (st *Store) Save(w io.Writer) error {
	var ids map[string]int64
	if st.loader != nil {
		ids = st.loader.TupleCounts()
	}
	hdr, err := json.Marshal(storeHeader{
		Version:   snapshotVersion,
		Algorithm: string(st.cfg.Algorithm),
		Format:    byte(st.Format),
		FormatSet: st.loader != nil,
		Legacy:    st.cfg.DisableXADTHeaders,
		LastBatch: st.CommittedBatches(),
		IDs:       ids,
		DTD:       st.DTD.String(),
	})
	if err != nil {
		return err
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(hdr)))
	if _, err := w.Write(lenBuf[:n]); err != nil {
		return err
	}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	return st.DB.Save(w)
}

// SaveFile writes a snapshot to path.
func (st *Store) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := st.Save(f); err != nil {
		return err
	}
	return f.Sync()
}

// Checkpoint makes the store's current committed state the recovery base
// and truncates the log: the snapshot is written to a temporary file,
// synced, atomically renamed over the previous checkpoint, and only then
// is the WAL reset. A crash at any point leaves either the old
// checkpoint with a full log or the new checkpoint with a log whose
// batches it already absorbs (skipped on replay by the LastBatch
// watermark) — never a state that loses committed documents.
func (st *Store) Checkpoint() error {
	if st.wal == nil {
		return errors.New("core: Checkpoint requires a WAL store (set Engine.WALDir)")
	}
	if st.DB.TxnMgr != nil {
		// Quiesce commits while the snapshot scan runs: all mutation
		// happens inside the commit path, so holding the commit mutex
		// gives Save a stable heap without blocking snapshot readers.
		return st.DB.TxnMgr.Quiesce(st.checkpointLocked)
	}
	return st.checkpointLocked()
}

func (st *Store) checkpointLocked() error {
	dir := st.cfg.Engine.WALDir
	tmp := checkpointPath(dir) + ".tmp"
	f, err := st.vfs.Create(tmp)
	if err != nil {
		return err
	}
	if err := st.Save(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := st.vfs.Rename(tmp, checkpointPath(dir)); err != nil {
		return err
	}
	return st.wal.Reset()
}

// decodeSnapshot reads a snapshot stream into a store skeleton: header
// metadata, schema, and restored tables — but no loader and no WAL
// attachment, which the callers layer on.
func decodeSnapshot(r io.Reader, engineCfg engine.Config) (*Store, *storeHeader, error) {
	br := bufio.NewReader(r)
	hlen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, nil, fmt.Errorf("core: reading snapshot header length: %w", err)
	}
	if hlen > 1<<24 {
		return nil, nil, fmt.Errorf("core: implausible snapshot header size %d", hlen)
	}
	raw := make([]byte, hlen)
	if _, err := io.ReadFull(br, raw); err != nil {
		return nil, nil, err
	}
	var hdr storeHeader
	if err := json.Unmarshal(raw, &hdr); err != nil {
		return nil, nil, fmt.Errorf("core: decoding snapshot header: %w", err)
	}
	switch hdr.Version {
	case 1:
		// Version 1 predates the durability fields; its loader was
		// always resumable, so the format counts as decided.
		hdr.FormatSet = true
	case snapshotVersion:
	default:
		return nil, nil, fmt.Errorf("core: unsupported snapshot version %d", hdr.Version)
	}

	d, err := dtd.Parse(hdr.DTD)
	if err != nil {
		return nil, nil, fmt.Errorf("core: snapshot DTD: %w", err)
	}
	simplified := dtd.Simplify(d)
	alg := Algorithm(hdr.Algorithm)
	var schema *mapping.Schema
	switch alg {
	case Hybrid:
		schema, err = mapping.Hybrid(simplified)
	case XORator:
		schema, err = mapping.XORator(simplified)
	default:
		return nil, nil, fmt.Errorf("core: snapshot algorithm %q", hdr.Algorithm)
	}
	if err != nil {
		return nil, nil, err
	}

	db, err := engine.OpenSnapshot(br, engineCfg)
	if err != nil {
		return nil, nil, err
	}
	return &Store{
		DB:         db,
		DTD:        d,
		Simplified: simplified,
		Schema:     schema,
		Format:     xadt.Format(hdr.Format),
		cfg: Config{
			Algorithm:          alg,
			DisableXADTHeaders: hdr.Legacy,
			Engine:             engineCfg,
		},
	}, &hdr, nil
}

// OpenSnapshot restores a store written by Save. Further Load calls
// resume ID assignment where the snapshot left off.
func OpenSnapshot(r io.Reader, engineCfg engine.Config) (*Store, error) {
	st, hdr, err := decodeSnapshot(r, engineCfg)
	if err != nil {
		return nil, err
	}
	if hdr.FormatSet {
		if err := st.resumeLoader(hdr.IDs); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// resumeLoader attaches a loader continuing ID assignment from the
// highest stored IDs, raised to any floors the caller carries over (the
// snapshot's persisted counters, IDs seen in replayed inserts),
// preserving the store's storage representation.
func (st *Store) resumeLoader(floors ...map[string]int64) error {
	loader, err := shred.ResumeLoader(st.DB, st.Schema, st.Format)
	if err != nil {
		return err
	}
	loader.DisableHeaders = st.cfg.DisableXADTHeaders
	for _, fl := range floors {
		for rel, id := range fl {
			loader.EnsureIDFloor(rel, id)
		}
	}
	st.loader = loader
	return nil
}

// OpenSnapshotFile restores a store from a file written by SaveFile.
func OpenSnapshotFile(path string, engineCfg engine.Config) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return OpenSnapshot(f, engineCfg)
}

// OpenRecovered restores the store in cfg.Engine.WALDir to its last
// consistent state after a crash: the checkpoint snapshot is loaded, the
// WAL tail is scanned and every complete batch after the checkpoint's
// watermark is replayed, the torn tail (if any) is truncated, and the
// log is reopened for appending — so loading can resume exactly where
// the committed prefix ends (CommittedBatches reports how far that is).
//
// Structural log damage beyond a torn tail surfaces as a
// *wal.CorruptError; a directory without a checkpoint yields
// ErrNoCheckpoint. The store's identity (mapping algorithm, XADT format,
// header mode) comes from the checkpoint, not from cfg, which supplies
// the engine configuration and the loading policy
// (ForceFormat/CompressionThreshold/SampleDocs) — the latter matters
// only when the crash preceded the first committed batch, so the format
// decision has not been logged yet and resumed loading must re-make it
// under the caller's knobs.
func OpenRecovered(cfg Config) (*Store, error) {
	dir := cfg.Engine.WALDir
	if dir == "" {
		return nil, errors.New("core: OpenRecovered requires Engine.WALDir")
	}
	vfs := cfg.Engine.VFS
	if vfs == nil {
		vfs = storage.OSFS{}
	}
	f, err := vfs.Open(checkpointPath(dir))
	if err != nil {
		if storage.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNoCheckpoint, dir)
		}
		return nil, err
	}
	st, hdr, err := decodeSnapshot(f, cfg.Engine)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("core: reading checkpoint: %w", err)
	}
	st.cfg.ForceFormat = cfg.ForceFormat
	st.cfg.CompressionThreshold = cfg.CompressionThreshold
	st.cfg.SampleDocs = cfg.SampleDocs
	if st.cfg.CompressionThreshold == 0 {
		st.cfg.CompressionThreshold = 0.20
	}
	if st.cfg.SampleDocs == 0 {
		st.cfg.SampleDocs = 5
	}
	// The checkpoint may predate the first load (it is written at store
	// creation), so make sure every mapped relation exists before
	// replay.
	if err := shred.EnsureTables(st.DB, st.Schema); err != nil {
		return nil, err
	}

	tail, err := wal.Scan(vfs, dir)
	if err != nil {
		return nil, err
	}
	formatSet := hdr.FormatSet
	// Track the highest ID each replayed insert assigns per relation:
	// together with the checkpoint's persisted counters, these floor the
	// resumed loader's counters so post-recovery loads assign exactly the
	// IDs a never-crashed store would, even when the max-ID rows were
	// deleted again later in the log.
	maxSeen := map[string]int64{}
	for _, b := range tail.Batches {
		if b.Seq <= hdr.LastBatch {
			// Already absorbed by the checkpoint; a crash between
			// checkpoint publication and log truncation leaves these
			// behind.
			continue
		}
		if b.Format != nil {
			st.Format = xadt.Format(*b.Format)
			formatSet = true
		}
		for _, op := range b.Ops {
			if err := st.replayOp(b.Seq, op); err != nil {
				return nil, err
			}
			if op.Kind != wal.OpInsert {
				continue
			}
			if rel := st.Schema.Relation(op.Table); rel != nil {
				if ic := idColumn(rel); ic >= 0 && ic < len(op.Row) {
					if v := op.Row[ic]; v.Kind() == types.KindInt && v.Int() > maxSeen[op.Table] {
						maxSeen[op.Table] = v.Int()
					}
				}
			}
		}
	}
	if formatSet {
		if err := st.resumeLoader(hdr.IDs, maxSeen); err != nil {
			return nil, err
		}
	}

	lastSeq := tail.LastSeq
	if hdr.LastBatch > lastSeq {
		lastSeq = hdr.LastBatch
	}
	w, err := wal.Resume(vfs, dir, cfg.Engine.WALSync, lastSeq, tail.ValidEnd)
	if err != nil {
		return nil, err
	}
	st.wal = w
	st.vfs = vfs
	st.recovered = true
	// Statistics come from the checkpoint snapshot; replayOp advanced the
	// modification counters through the WAL tail, so the staleness clock
	// matches a store that never crashed. Callers that want fresh
	// statistics run RunStats explicitly, exactly as on a live store.
	return st, nil
}
