package core

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/datagen"
	"repro/internal/xadt"
	"repro/internal/xmltree"
)

func smallPlays(t *testing.T, n int) []*xmltree.Document {
	t.Helper()
	cfg := datagen.DefaultPlayConfig()
	cfg.Plays = n
	return datagen.GeneratePlays(cfg)
}

func newPlayStore(t *testing.T, alg Algorithm) *Store {
	t.Helper()
	st, err := NewStore(corpus.ShakespeareDTD, Config{Algorithm: alg})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Load(smallPlays(t, 3)); err != nil {
		t.Fatal(err)
	}
	if err := st.RunStats(); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestStoreEndToEndXorator(t *testing.T) {
	st := newPlayStore(t, XORator)
	stats := st.Stats()
	if stats.Tables != 7 {
		t.Errorf("tables = %d, want 7", stats.Tables)
	}
	if stats.Rows == 0 || stats.DataBytes == 0 {
		t.Errorf("stats = %+v", stats)
	}
	res, err := st.Query(`SELECT play_title FROM play`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("plays = %v", res.Rows)
	}
}

func TestStoreEndToEndHybrid(t *testing.T) {
	st := newPlayStore(t, Hybrid)
	if st.Stats().Tables != 17 {
		t.Errorf("tables = %d, want 17", st.Stats().Tables)
	}
	res, err := st.Query(`
SELECT speaker_value FROM speaker, speech
WHERE speaker_parentID = speechID AND speaker_value = 'ROMEO'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Error("no ROMEO speeches found")
	}
}

func TestStoreSizeComparison(t *testing.T) {
	h := newPlayStore(t, Hybrid)
	x := newPlayStore(t, XORator)
	if err := h.CreateDefaultIndexes(); err != nil {
		t.Fatal(err)
	}
	if err := x.CreateDefaultIndexes(); err != nil {
		t.Fatal(err)
	}
	hs, xs := h.Stats(), x.Stats()
	// Table 1 shape: the XORator database and indexes are smaller.
	if xs.DataBytes >= hs.DataBytes {
		t.Errorf("XORator data %d >= Hybrid data %d", xs.DataBytes, hs.DataBytes)
	}
	if xs.IndexBytes >= hs.IndexBytes {
		t.Errorf("XORator index %d >= Hybrid index %d", xs.IndexBytes, hs.IndexBytes)
	}
	if !strings.Contains(hs.String(), "hybrid") {
		t.Errorf("stats string = %q", hs.String())
	}
}

func TestStoreJoinCountComparison(t *testing.T) {
	h := newPlayStore(t, Hybrid)
	x := newPlayStore(t, XORator)
	// QS1-equivalent pair: XORator needs no join, Hybrid needs two.
	hq := `SELECT speaker_value, line_value FROM speaker, line, speech
WHERE speaker_parentID = speechID AND line_parentID = speechID`
	xq := `SELECT speech_speaker, speech_line FROM speech`
	hn, err := h.JoinCount(hq)
	if err != nil {
		t.Fatal(err)
	}
	xn, err := x.JoinCount(xq)
	if err != nil {
		t.Fatal(err)
	}
	if hn != 2 || xn != 0 {
		t.Errorf("join counts: hybrid=%d xorator=%d, want 2/0", hn, xn)
	}
}

func TestStoreShakespeareChoosesRaw(t *testing.T) {
	st := newPlayStore(t, XORator)
	if st.Format != xadt.Raw {
		t.Errorf("Shakespeare format = %v, want raw (paper §4.3)", st.Format)
	}
}

func TestStoreSigmodChoosesCompressed(t *testing.T) {
	cfg := datagen.DefaultSigmodConfig()
	cfg.Documents = 30
	docs := datagen.GenerateSigmod(cfg)
	st, err := NewStore(corpus.SigmodDTD, Config{Algorithm: XORator})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Load(docs); err != nil {
		t.Fatal(err)
	}
	if st.Format != xadt.Compressed {
		t.Errorf("SIGMOD format = %v, want compressed (paper §4.4)", st.Format)
	}
	if st.Stats().Tables != 1 {
		t.Errorf("tables = %d, want 1", st.Stats().Tables)
	}
}

func TestStoreForceFormat(t *testing.T) {
	f := xadt.Compressed
	st, err := NewStore(corpus.ShakespeareDTD, Config{Algorithm: XORator, ForceFormat: &f})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Load(smallPlays(t, 1)); err != nil {
		t.Fatal(err)
	}
	if st.Format != xadt.Compressed {
		t.Errorf("format = %v, want forced compressed", st.Format)
	}
	// Queries still work over compressed fragments.
	res, err := st.Query(`
SELECT xadtText(speech_speaker) FROM speech
WHERE findKeyInElm(speech_speaker, 'SPEAKER', 'ROMEO') = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Error("no rows over compressed store")
	}
}

func TestStoreErrors(t *testing.T) {
	if _, err := NewStore("not a dtd", Config{}); err == nil {
		t.Error("bad DTD should fail")
	}
	if _, err := NewStore(corpus.PlaysDTD, Config{Algorithm: "bogus"}); err == nil {
		t.Error("bad algorithm should fail")
	}
	st, _ := NewStore(corpus.PlaysDTD, Config{})
	if err := st.LoadXML([]string{"<oops"}); err == nil {
		t.Error("bad document should fail")
	}
}

func TestFragmentText(t *testing.T) {
	st := newPlayStore(t, XORator)
	res, err := st.Query(`SELECT speech_speaker FROM speech WHERE speechID = 1`)
	if err != nil {
		t.Fatal(err)
	}
	text, err := FragmentText(res.Rows[0][0])
	if err != nil || !strings.Contains(text, "<SPEAKER>") {
		t.Errorf("fragment = %q, %v", text, err)
	}
}

func TestQueryEquivalenceAcrossMappings(t *testing.T) {
	h := newPlayStore(t, Hybrid)
	x := newPlayStore(t, XORator)
	// QS4 shape: speeches spoken by ROMEO in "Romeo and Juliet".
	hres, err := h.Query(`
SELECT speechID FROM play, act, scene, speech, speaker
WHERE act_parentID = playID AND play_title = 'Romeo and Juliet'
AND scene_parentID = actID AND scene_parentCODE = 'ACT'
AND speech_parentID = sceneID AND speech_parentCODE = 'SCENE'
AND speaker_parentID = speechID AND speaker_value = 'ROMEO'`)
	if err != nil {
		t.Fatal(err)
	}
	xres, err := x.Query(`
SELECT speechID FROM play, act, scene, speech
WHERE act_parentID = playID AND play_title = 'Romeo and Juliet'
AND scene_parentID = actID AND scene_parentCODE = 'ACT'
AND speech_parentID = sceneID AND speech_parentCODE = 'SCENE'
AND findKeyInElm(speech_speaker, 'SPEAKER', 'ROMEO') = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(hres.Rows) == 0 {
		t.Fatal("hybrid QS4 returned nothing")
	}
	if len(hres.Rows) != len(xres.Rows) {
		t.Errorf("row counts differ: hybrid=%d xorator=%d", len(hres.Rows), len(xres.Rows))
	}
}
