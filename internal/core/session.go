package core

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/engine/exec"
	"repro/internal/engine/mvcc"
	"repro/internal/engine/storage"
	"repro/internal/engine/types"
	"repro/internal/engine/wal"
	"repro/internal/mapping"
	"repro/internal/xadt"
	"repro/internal/xmltree"
)

// Session is one transaction against a concurrent store (Engine.MVCC):
// queries, DML, and document ops all run under the snapshot the session
// began on, and the session's own writes layer over it (read-own-writes).
// Commit applies everything atomically as one WAL batch after
// first-committer-wins conflict detection — a conflicting commit returns
// an error wrapping ErrConflict and the transaction rolls back.
// Exception: documents added in the session are shredded only at commit,
// so their rows are not visible to the session's own reads.
// A Session must be used from a single goroutine.
type Session struct {
	st *Store
	es *engine.Session
}

// ErrConflict is the sentinel a conflicting Commit wraps.
var ErrConflict = mvcc.ErrConflict

// NewSession opens a snapshot transaction. The store must have been
// opened with Engine.MVCC set.
func (st *Store) NewSession() (*Session, error) {
	es, err := st.DB.Begin()
	if err != nil {
		return nil, err
	}
	return &Session{st: st, es: es}, nil
}

// Snapshot returns the session's snapshot timestamp.
func (s *Session) Snapshot() uint64 { return s.es.Snapshot() }

// Query runs a SELECT under the session snapshot.
func (s *Session) Query(query string) (*engine.Result, error) { return s.es.Query(query) }

// Exec runs one SQL statement under the session: SELECTs return their
// row count, DML records the mutation (visible to this session, applied
// at Commit) and returns the affected-row count.
func (s *Session) Exec(query string) (int64, error) { return s.es.Exec(query) }

// Rollback discards the session's work; safe after Commit and twice.
func (s *Session) Rollback() { s.es.Rollback() }

// Ops returns the transaction's recorded operations so far — the list
// Commit will apply, and the input ApplyTxnOps replays on the serial
// oracle of the differential harness.
func (s *Session) Ops() []mvcc.Op { return s.es.Ops() }

// Commit runs conflict detection and, when it passes, applies the
// session's recorded ops to the shared store as one committed WAL batch.
func (s *Session) Commit() error {
	ops := s.es.Ops()
	hasDocs := false
	for _, op := range ops {
		if op.Kind == mvcc.OpDocAdd {
			hasDocs = true
			break
		}
	}
	return s.es.CommitWith(func(uint64) error {
		var b *wal.Batch
		if s.st.wal != nil {
			b = s.st.wal.Begin()
		}
		if err := s.st.applyTxnOps(ops, b); err != nil {
			return err
		}
		if b != nil {
			if err := b.Commit(); err != nil {
				return err
			}
			if hasDocs {
				// A doc-adding batch carried the pending format frame
				// (loadDocumentSpans wrote it); it is durable now.
				s.st.pendingFormat = false
			}
		}
		return nil
	})
}

// AddDocuments schedules documents for load at Commit. Shredding runs at
// commit time under the then-current document-ID counter, so the rows —
// and the assigned IDs — exist only once the transaction commits; the
// session's own reads do not see them. Fresh rows conflict with nobody.
func (s *Session) AddDocuments(docs []*xmltree.Document) error {
	if len(docs) == 0 {
		return nil
	}
	s.es.Append(mvcc.Op{Kind: mvcc.OpDocAdd, Docs: docs})
	return nil
}

// AddXML parses and schedules document texts; see AddDocuments.
func (s *Session) AddXML(texts []string) error {
	docs := make([]*xmltree.Document, len(texts))
	for i, text := range texts {
		doc, err := xmltree.Parse(text)
		if err != nil {
			return err
		}
		docs[i] = doc
	}
	return s.AddDocuments(docs)
}

// RemoveDocument deletes every row the document produced, per the
// registry as of the session snapshot. The victim set is pinned now:
// rows a concurrent transaction adds under the same document ID after
// this snapshot are not part of it (the write-write conflict check
// aborts this commit if any pinned victim — or the document key itself —
// was touched meanwhile).
func (s *Session) RemoveDocument(docID int64) error {
	if s.st.DB.Catalog.Table(docRegistryTable) == nil {
		return fmt.Errorf("core: store tracks no documents (use AddDocuments)")
	}
	regView, err := s.es.TableView(docRegistryTable)
	if err != nil {
		return err
	}
	type span struct {
		rid    storage.RID
		rel    string
		lo, hi int64
	}
	var spans []span
	for _, vr := range regView.Rows {
		row := vr.Row
		if !row[0].IsNull() && row[0].Kind() == types.KindInt && row[0].Int() == docID {
			if row[1].Kind() != types.KindString || row[2].Kind() != types.KindInt || row[3].Kind() != types.KindInt {
				return fmt.Errorf("core: malformed registry row for document %d", docID)
			}
			spans = append(spans, span{vr.RID, row[1].Str(), row[2].Int(), row[3].Int()})
		}
	}
	if len(spans) == 0 {
		return fmt.Errorf("core: unknown document %d", docID)
	}
	// Phase one: pin every victim against the session view before
	// recording anything, so an error leaves the session unchanged.
	type victimSet struct {
		rel  string
		rids []storage.RID
	}
	victims := make([]victimSet, 0, len(spans))
	for _, sp := range spans {
		rel := s.st.Schema.Relation(sp.rel)
		if s.st.DB.Catalog.Table(sp.rel) == nil || rel == nil {
			return fmt.Errorf("core: registry references unknown relation %s", sp.rel)
		}
		idCol := idColumn(rel)
		if idCol < 0 {
			return fmt.Errorf("core: relation %s has no ID column", sp.rel)
		}
		view, err := s.es.TableView(sp.rel)
		if err != nil {
			return err
		}
		vs := victimSet{rel: sp.rel}
		for _, vr := range view.Rows {
			if v := vr.Row[idCol]; !v.IsNull() && v.Kind() == types.KindInt && v.Int() > sp.lo && v.Int() <= sp.hi {
				vs.rids = append(vs.rids, vr.RID)
			}
		}
		victims = append(victims, vs)
	}
	// Phase two: record the deletes in the same order the direct path
	// applies them — per-span victims in view (heap) order, then the
	// registry rows.
	for _, vs := range victims {
		for _, rid := range vs.rids {
			s.es.Append(mvcc.Op{Kind: mvcc.OpRowDelete, Table: vs.rel, RID: rid})
			s.es.OverlayDelete(vs.rel, rid)
			s.es.TouchRow(vs.rel, rid)
		}
	}
	for _, sp := range spans {
		s.es.Append(mvcc.Op{Kind: mvcc.OpRowDelete, Table: docRegistryTable, RID: sp.rid})
		s.es.OverlayDelete(docRegistryTable, sp.rid)
		s.es.TouchRow(docRegistryTable, sp.rid)
	}
	s.es.Touch(mvcc.DocKey(docID))
	return nil
}

// SpliceFragment replaces the XADT fragment of the row whose ID is id,
// like Store.SpliceFragment but against the session snapshot: the new
// value is encoded now, the target row resolved from the session view,
// and the update applied at Commit.
func (s *Session) SpliceFragment(table, column string, id int64, fragTexts []string) error {
	st := s.st
	rel := st.Schema.Relation(table)
	if rel == nil {
		return fmt.Errorf("core: unknown relation %s", table)
	}
	var col *mapping.Column
	ci := -1
	for i := range rel.Columns {
		if rel.Columns[i].Name == column {
			col, ci = &rel.Columns[i], i
			break
		}
	}
	if col == nil {
		return fmt.Errorf("core: relation %s has no column %s", table, column)
	}
	if col.Kind != mapping.KindXADT {
		return fmt.Errorf("core: column %s.%s is not an XADT column", table, column)
	}
	want := col.Path[0]
	var frags []*xmltree.Node
	for _, text := range fragTexts {
		doc, err := xmltree.Parse(text)
		if err != nil {
			return fmt.Errorf("core: parsing fragment: %w", err)
		}
		if doc.Root == nil || doc.Root.Name != want {
			return fmt.Errorf("core: fragment root must be <%s> for column %s.%s", want, table, column)
		}
		frags = append(frags, doc.Root)
	}
	val := types.Null
	if len(frags) > 0 {
		if st.cfg.DisableXADTHeaders {
			val = types.NewXADT(xadt.Encode(frags, st.Format).Bytes())
		} else {
			val = types.NewXADT(xadt.EncodeStored(frags, st.Format).Bytes())
		}
	}
	if st.DB.Catalog.Table(table) == nil {
		return fmt.Errorf("core: table %s does not exist yet", table)
	}
	idCol := idColumn(rel)
	if idCol < 0 {
		return fmt.Errorf("core: relation %s has no ID column", table)
	}
	view, err := s.es.TableView(table)
	if err != nil {
		return err
	}
	// Last match wins, like the direct path's heap scan.
	var target *mvcc.VRow
	for i := range view.Rows {
		if v := view.Rows[i].Row[idCol]; !v.IsNull() && v.Kind() == types.KindInt && v.Int() == id {
			target = &view.Rows[i]
		}
	}
	if target == nil {
		return fmt.Errorf("core: no row with %s = %d in %s", rel.Columns[idCol].Name, id, table)
	}
	newRow := append([]types.Value(nil), target.Row...)
	newRow[ci] = val
	s.es.Append(mvcc.Op{Kind: mvcc.OpRowUpdate, Table: table, RID: target.RID, Row: newRow})
	s.es.OverlayUpdate(table, target.RID, newRow)
	s.es.TouchRow(table, target.RID)
	return nil
}

// applyTxnOps replays a committed transaction's op list against the
// store, logging redo records into b (nil for stores without a WAL, and
// for the serial oracle of the differential harness). Row ops go through
// the engine applier; document adds run the loader with the shared
// batch, assigning document IDs in commit order.
func (st *Store) applyTxnOps(ops []mvcc.Op, b *wal.Batch) error {
	var log exec.MutationLog
	if b != nil {
		log = b
	}
	applier := st.DB.NewApplier(log)
	for _, op := range ops {
		if op.Kind == mvcc.OpDocAdd {
			docs, ok := op.Docs.([]*xmltree.Document)
			if !ok {
				return fmt.Errorf("core: malformed document op payload %T", op.Docs)
			}
			if err := st.applyDocAdd(docs, b); err != nil {
				return err
			}
			continue
		}
		if err := applier.Apply(op); err != nil {
			return err
		}
	}
	return nil
}

// applyDocAdd shreds scheduled documents at commit time.
func (st *Store) applyDocAdd(docs []*xmltree.Document, b *wal.Batch) error {
	if err := st.ensureLoader(docs); err != nil {
		return err
	}
	reg, err := st.ensureDocRegistry()
	if err != nil {
		return err
	}
	next, err := st.nextDocID()
	if err != nil {
		return err
	}
	for _, doc := range docs {
		if err := st.loadDocumentSpans(reg, next, doc, b); err != nil {
			return err
		}
		next++
	}
	return nil
}

// ApplyTxnOps replays a committed transaction's ops against a plain
// single-user store, without a WAL — the serial oracle of the
// differential harness. Applying every committed transaction's ops in
// commit order reproduces the concurrent store's state byte for byte.
func ApplyTxnOps(st *Store, ops []mvcc.Op) error {
	return st.applyTxnOps(ops, nil)
}
