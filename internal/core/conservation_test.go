package core

import (
	"fmt"
	"testing"

	"repro/internal/corpus"
	"repro/internal/datagen"
	"repro/internal/mapping"
	"repro/internal/xadt"
	"repro/internal/xmltree"
)

// elementCounts tallies every element tag in a document set.
func elementCounts(docs []*xmltree.Document) map[string]int {
	counts := map[string]int{}
	for _, d := range docs {
		d.Root.Walk(func(n *xmltree.Node) bool {
			if n.IsElement() {
				counts[n.Name]++
			}
			return true
		})
	}
	return counts
}

// storeElementCounts recovers per-tag element counts from a store: rows
// of the element's relation, occurrences inside XADT fragments, and
// non-NULL inlined values.
func storeElementCounts(t *testing.T, st *Store) map[string]int {
	t.Helper()
	counts := map[string]int{}
	for _, rel := range st.Schema.Relations {
		tbl := st.Table(rel.Name)
		if tbl == nil {
			t.Fatalf("missing table %s", rel.Name)
		}
		counts[rel.Element] += tbl.Rows()
		for ci, col := range rel.Columns {
			switch col.Kind {
			case mapping.KindXADT:
				res, err := st.Query(fmt.Sprintf("SELECT %s FROM %s", col.Name, rel.Name))
				if err != nil {
					t.Fatal(err)
				}
				for _, row := range res.Rows {
					v := row[0]
					if v.IsNull() {
						continue
					}
					nodes, err := xadt.FromBytes(v.XADT()).Nodes()
					if err != nil {
						t.Fatal(err)
					}
					for _, n := range nodes {
						n.Walk(func(d *xmltree.Node) bool {
							if d.IsElement() {
								counts[d.Name]++
							}
							return true
						})
					}
				}
			case mapping.KindInlined:
				// A non-NULL inlined value column witnesses one element
				// instance at the column's path tail.
				res, err := st.Query(fmt.Sprintf("SELECT %s FROM %s", col.Name, rel.Name))
				if err != nil {
					t.Fatal(err)
				}
				tail := col.Path[len(col.Path)-1]
				for _, row := range res.Rows {
					if !row[0].IsNull() {
						counts[tail]++
					}
				}
			}
			_ = ci
		}
	}
	return counts
}

// TestElementConservation loads the same documents under both mappings
// and checks that no element instance is lost or duplicated: for every
// tag, original count == count recoverable from the store.
//
// Two classes of elements are excluded per mapping, by construction:
//   - elements with no character data and no attributes that are inlined
//     (their existence is only witnessed through their children, e.g. an
//     empty optional Toindex);
//   - under Hybrid, optional inlined elements that occur but hold empty
//     text are indistinguishable from absent ones.
//
// The generated corpora avoid both cases for all tags checked here.
func TestElementConservation(t *testing.T) {
	cfg := datagen.DefaultPlayConfig()
	cfg.Plays = 3
	docs := datagen.GeneratePlays(cfg)
	want := elementCounts(docs)

	for _, alg := range []Algorithm{Hybrid, XORator} {
		st, err := NewStore(corpus.ShakespeareDTD, Config{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Load(docs); err != nil {
			t.Fatal(err)
		}
		got := storeElementCounts(t, st)
		for tag, n := range want {
			if got[tag] != n {
				t.Errorf("%s: element %s count = %d, want %d", alg, tag, got[tag], n)
			}
		}
		for tag := range got {
			if _, ok := want[tag]; !ok {
				t.Errorf("%s: phantom element %s (%d instances)", alg, tag, got[tag])
			}
		}
	}
}

// TestElementConservationSigmod repeats the check over the deep DTD,
// where XORator folds nearly everything into one fragment. Elements that
// can legitimately occur empty without attributes (Toindex, fullText when
// their optional child is absent) are excluded for the Hybrid mapping,
// where an empty inlined element leaves no witness.
func TestElementConservationSigmod(t *testing.T) {
	cfg := datagen.DefaultSigmodConfig()
	cfg.Documents = 40
	docs := datagen.GenerateSigmod(cfg)
	want := elementCounts(docs)

	unwitnessed := map[string]bool{"Toindex": true, "fullText": true}
	for _, alg := range []Algorithm{Hybrid, XORator} {
		st, err := NewStore(corpus.SigmodDTD, Config{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Load(docs); err != nil {
			t.Fatal(err)
		}
		got := storeElementCounts(t, st)
		for tag, n := range want {
			if alg == Hybrid && unwitnessed[tag] {
				continue
			}
			if got[tag] != n {
				t.Errorf("%s: element %s count = %d, want %d", alg, tag, got[tag], n)
			}
		}
	}
}

// TestFragmentContentPreserved checks deep equality for a sample of XADT
// fragments: reserializing what the store holds reproduces the exact
// markup of the original subtrees.
func TestFragmentContentPreserved(t *testing.T) {
	cfg := datagen.DefaultPlayConfig()
	cfg.Plays = 2
	docs := datagen.GeneratePlays(cfg)

	st, err := NewStore(corpus.ShakespeareDTD, Config{Algorithm: XORator})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Load(docs); err != nil {
		t.Fatal(err)
	}

	// Collect original speech speaker fragments in document order.
	var want []string
	for _, d := range docs {
		for _, speech := range d.Root.Descendants("SPEECH") {
			want = append(want, xmltree.SerializeAll(speech.ChildrenNamed("SPEAKER")))
		}
	}
	res, err := st.Query(`SELECT speech_speaker FROM speech`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("speech rows = %d, want %d", len(res.Rows), len(want))
	}
	for i, row := range res.Rows {
		var got string
		if !row[0].IsNull() {
			if got, err = FragmentText(row[0]); err != nil {
				t.Fatal(err)
			}
		}
		if got != want[i] {
			t.Errorf("speech %d speaker fragment = %q, want %q", i, got, want[i])
		}
	}
}
