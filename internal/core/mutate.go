package core

import (
	"fmt"

	"repro/internal/engine/catalog"
	"repro/internal/engine/sql"
	"repro/internal/engine/storage"
	"repro/internal/engine/types"
	"repro/internal/engine/wal"
	"repro/internal/mapping"
	"repro/internal/xadt"
	"repro/internal/xmltree"
)

// docRegistryTable records which rows each added document produced, so
// whole documents can be removed or replaced later. The '$' keeps the
// name out of reach of SQL identifiers. Each row spans one relation:
// the document's tuples there carry IDs in (lo, hi]. The table is
// created lazily by the first AddDocuments, so stores that never use
// document-level mutations keep exactly the mapped table set.
const docRegistryTable = "xml$docs"

// ensureDocRegistry returns the document registry table, creating it if
// this store has never tracked documents.
func (st *Store) ensureDocRegistry() (*catalog.Table, error) {
	if t := st.DB.Catalog.Table(docRegistryTable); t != nil {
		return t, nil
	}
	return st.DB.Catalog.CreateTable(docRegistryTable, []catalog.Column{
		{Name: "docid", Type: types.KindInt},
		{Name: "rel", Type: types.KindString},
		{Name: "lo", Type: types.KindInt},
		{Name: "hi", Type: types.KindInt},
	})
}

// nextDocID returns one past the highest registered document ID.
func (st *Store) nextDocID() (int64, error) {
	reg := st.DB.Catalog.Table(docRegistryTable)
	if reg == nil {
		return 1, nil
	}
	var max int64
	err := reg.Heap.Scan(func(_ storage.RID, row []types.Value) error {
		if v := row[0]; !v.IsNull() && v.Kind() == types.KindInt && v.Int() > max {
			max = v.Int()
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return max + 1, nil
}

// AddDocuments loads documents like Load but registers each one under a
// document ID, so it can later be removed with RemoveDocument or swapped
// with ReplaceDocument. Each document is one WAL batch covering both its
// shredded tuples and its registry rows.
func (st *Store) AddDocuments(docs []*xmltree.Document) ([]int64, error) {
	var ids []int64
	err := st.mvccDirect(func() error {
		var err error
		ids, err = st.addDocumentsDirect(docs)
		return err
	})
	return ids, err
}

func (st *Store) addDocumentsDirect(docs []*xmltree.Document) ([]int64, error) {
	if err := st.ensureLoader(docs); err != nil {
		return nil, err
	}
	reg, err := st.ensureDocRegistry()
	if err != nil {
		return nil, err
	}
	next, err := st.nextDocID()
	if err != nil {
		return nil, err
	}
	ids := make([]int64, 0, len(docs))
	for _, doc := range docs {
		if err := st.addDocumentWithID(reg, next, doc); err != nil {
			return ids, err
		}
		ids = append(ids, next)
		next++
	}
	return ids, nil
}

// AddXML parses and adds document texts; see AddDocuments.
func (st *Store) AddXML(texts []string) ([]int64, error) {
	docs := make([]*xmltree.Document, len(texts))
	for i, text := range texts {
		doc, err := xmltree.Parse(text)
		if err != nil {
			return nil, err
		}
		docs[i] = doc
	}
	return st.AddDocuments(docs)
}

// addDocumentWithID loads one document and registers its tuple spans
// under docID, all inside one WAL batch. The loader's per-relation ID
// counters before and after the load delimit exactly this document's
// rows: IDs are dense per relation and never reused.
func (st *Store) addDocumentWithID(reg *catalog.Table, docID int64, doc *xmltree.Document) error {
	var b *wal.Batch
	if st.wal != nil {
		b = st.wal.Begin()
	}
	if err := st.loadDocumentSpans(reg, docID, doc, b); err != nil {
		return err
	}
	if b != nil {
		if err := b.Commit(); err != nil {
			return err
		}
		st.pendingFormat = false
	}
	return nil
}

// loadDocumentSpans shreds one document and registers its tuple spans
// under docID, logging redo records into b when set (the caller owns the
// batch lifecycle: the legacy path commits one batch per document, a
// session commit shares one batch across the whole transaction). The
// pending XADT format decision is logged into the batch but stays
// pending until the caller's commit succeeds.
func (st *Store) loadDocumentSpans(reg *catalog.Table, docID int64, doc *xmltree.Document, b *wal.Batch) error {
	before := st.loader.TupleCounts()
	if b != nil {
		if st.pendingFormat {
			b.SetFormat(byte(st.Format))
		}
		st.loader.OnInsert = b.Insert
	}
	err := st.loader.LoadDocument(doc)
	st.loader.OnInsert = nil
	if err != nil {
		return err
	}
	after := st.loader.TupleCounts()
	for _, rel := range st.Schema.Relations {
		lo, hi := before[rel.Name], after[rel.Name]
		if hi <= lo {
			continue
		}
		row := []types.Value{
			types.NewInt(docID), types.NewString(rel.Name),
			types.NewInt(lo), types.NewInt(hi),
		}
		if err := reg.Insert(row); err != nil {
			return err
		}
		if b != nil {
			if err := b.Insert(docRegistryTable, row); err != nil {
				return err
			}
		}
	}
	return nil
}

// RemoveDocument deletes every row a document produced (per the
// registry) plus its registry entries. On a WAL store the removal is one
// committed batch holding a single logical doc-removal record; recovery
// re-executes the same deterministic procedure.
func (st *Store) RemoveDocument(docID int64) error {
	return st.mvccDirect(func() error { return st.removeDocumentDirect(docID) })
}

func (st *Store) removeDocumentDirect(docID int64) error {
	if st.wal == nil {
		return st.applyRemoveDocument(docID)
	}
	b := st.wal.Begin()
	if err := b.RemoveDoc(docID); err != nil {
		return err
	}
	if err := st.applyRemoveDocument(docID); err != nil {
		return err
	}
	return b.Commit()
}

// applyRemoveDocument executes a document removal against the current
// state. It is deterministic given the store state — victims are
// collected in heap order before any delete — so WAL replay of the
// logical record reproduces the exact same heap mutations.
func (st *Store) applyRemoveDocument(docID int64) error {
	reg := st.DB.Catalog.Table(docRegistryTable)
	if reg == nil {
		return fmt.Errorf("core: store tracks no documents (use AddDocuments)")
	}
	type span struct {
		rid    storage.RID
		rel    string
		lo, hi int64
	}
	var spans []span
	err := reg.Heap.Scan(func(rid storage.RID, row []types.Value) error {
		if !row[0].IsNull() && row[0].Kind() == types.KindInt && row[0].Int() == docID {
			if row[1].Kind() != types.KindString || row[2].Kind() != types.KindInt || row[3].Kind() != types.KindInt {
				return fmt.Errorf("core: malformed registry row for document %d", docID)
			}
			spans = append(spans, span{rid, row[1].Str(), row[2].Int(), row[3].Int()})
		}
		return nil
	})
	if err != nil {
		return err
	}
	if len(spans) == 0 {
		return fmt.Errorf("core: unknown document %d", docID)
	}
	for _, sp := range spans {
		tbl := st.DB.Catalog.Table(sp.rel)
		rel := st.Schema.Relation(sp.rel)
		if tbl == nil || rel == nil {
			return fmt.Errorf("core: registry references unknown relation %s", sp.rel)
		}
		idCol := idColumn(rel)
		if idCol < 0 {
			return fmt.Errorf("core: relation %s has no ID column", sp.rel)
		}
		var victims []storage.RID
		err := tbl.Heap.Scan(func(rid storage.RID, row []types.Value) error {
			if v := row[idCol]; !v.IsNull() && v.Kind() == types.KindInt && v.Int() > sp.lo && v.Int() <= sp.hi {
				victims = append(victims, rid)
			}
			return nil
		})
		if err != nil {
			return err
		}
		for _, rid := range victims {
			if _, err := tbl.DeleteRID(rid); err != nil {
				return err
			}
		}
	}
	for _, sp := range spans {
		if _, err := reg.DeleteRID(sp.rid); err != nil {
			return err
		}
	}
	return nil
}

// ReplaceDocument swaps a registered document for a new one under the
// same document ID: the old rows are removed, then the new document is
// shredded and registered. The two halves are separate committed
// batches, so a crash between them recovers to the consistent
// removed-but-not-readded state.
func (st *Store) ReplaceDocument(docID int64, doc *xmltree.Document) error {
	if st.loader == nil {
		return fmt.Errorf("core: store holds no documents yet")
	}
	// The two halves are separate MVCC transactions too, mirroring the
	// two committed batches: a reader's snapshot can observe the
	// removed-but-not-readded state, exactly what a crash between the
	// batches recovers to.
	if err := st.RemoveDocument(docID); err != nil {
		return err
	}
	return st.mvccDirect(func() error {
		reg, err := st.ensureDocRegistry()
		if err != nil {
			return err
		}
		return st.addDocumentWithID(reg, docID, doc)
	})
}

// ReplaceXML parses and replaces one document text; see ReplaceDocument.
func (st *Store) ReplaceXML(docID int64, text string) error {
	doc, err := xmltree.Parse(text)
	if err != nil {
		return err
	}
	return st.ReplaceDocument(docID, doc)
}

// idColumn returns the index of a relation's synthetic ID column.
func idColumn(rel *mapping.Relation) int {
	for i, c := range rel.Columns {
		if c.Kind == mapping.KindID {
			return i
		}
	}
	return -1
}

// SpliceFragment replaces the XADT fragment stored in table.column of
// the row whose ID is id with the given fragment texts, re-encoded under
// the store's storage representation (empty fragTexts stores NULL). Each
// fragment's root element must be the one the column maps (col.Path[0]) —
// the same shape the shredder would have produced — so every consumer of
// the column keeps its structural assumptions. On a WAL store the splice
// is one committed batch holding the row's update record.
func (st *Store) SpliceFragment(table, column string, id int64, fragTexts []string) error {
	return st.mvccDirect(func() error { return st.spliceFragmentDirect(table, column, id, fragTexts) })
}

func (st *Store) spliceFragmentDirect(table, column string, id int64, fragTexts []string) error {
	rel := st.Schema.Relation(table)
	if rel == nil {
		return fmt.Errorf("core: unknown relation %s", table)
	}
	var col *mapping.Column
	ci := -1
	for i := range rel.Columns {
		if rel.Columns[i].Name == column {
			col, ci = &rel.Columns[i], i
			break
		}
	}
	if col == nil {
		return fmt.Errorf("core: relation %s has no column %s", table, column)
	}
	if col.Kind != mapping.KindXADT {
		return fmt.Errorf("core: column %s.%s is not an XADT column", table, column)
	}
	want := col.Path[0]
	var frags []*xmltree.Node
	for _, text := range fragTexts {
		doc, err := xmltree.Parse(text)
		if err != nil {
			return fmt.Errorf("core: parsing fragment: %w", err)
		}
		if doc.Root == nil || doc.Root.Name != want {
			return fmt.Errorf("core: fragment root must be <%s> for column %s.%s", want, table, column)
		}
		frags = append(frags, doc.Root)
	}
	val := types.Null
	if len(frags) > 0 {
		if st.cfg.DisableXADTHeaders {
			val = types.NewXADT(xadt.Encode(frags, st.Format).Bytes())
		} else {
			val = types.NewXADT(xadt.EncodeStored(frags, st.Format).Bytes())
		}
	}

	tbl := st.DB.Catalog.Table(table)
	if tbl == nil {
		return fmt.Errorf("core: table %s does not exist yet", table)
	}
	idCol := idColumn(rel)
	if idCol < 0 {
		return fmt.Errorf("core: relation %s has no ID column", table)
	}
	var target *storage.RID
	var oldRow []types.Value
	err := tbl.Heap.Scan(func(rid storage.RID, row []types.Value) error {
		if v := row[idCol]; !v.IsNull() && v.Kind() == types.KindInt && v.Int() == id {
			r := rid
			target, oldRow = &r, row
		}
		return nil
	})
	if err != nil {
		return err
	}
	if target == nil {
		return fmt.Errorf("core: no row with %s = %d in %s", rel.Columns[idCol].Name, id, table)
	}
	newRow := append([]types.Value(nil), oldRow...)
	newRow[ci] = val
	if _, err := tbl.UpdateRID(*target, newRow); err != nil {
		return err
	}
	if st.wal != nil {
		b := st.wal.Begin()
		if err := b.Update(table, *target, newRow); err != nil {
			return err
		}
		return b.Commit()
	}
	return nil
}

// Exec parses and runs one SQL statement. SELECTs execute like Query and
// return their row count; INSERT/UPDATE/DELETE apply the mutation and
// return the affected-row count, committing their redo records as one
// WAL batch on a durable store.
func (st *Store) Exec(query string) (int64, error) {
	stmt, err := sql.ParseStatement(query)
	if err != nil {
		return 0, err
	}
	if _, isSelect := stmt.(*sql.SelectStmt); isSelect {
		if st.DB.TxnMgr != nil {
			// Snapshot-consistent read on a concurrent store: run the
			// SELECT under an implicit read-only session.
			s, err := st.NewSession()
			if err != nil {
				return 0, err
			}
			defer s.Rollback()
			return s.Exec(query)
		}
		return st.DB.ExecStatement(stmt, nil)
	}
	var n int64
	err = st.mvccDirect(func() error {
		if st.wal == nil {
			var e error
			n, e = st.DB.ExecStatement(stmt, nil)
			return e
		}
		b := st.wal.Begin()
		var e error
		n, e = st.DB.ExecStatement(stmt, b)
		if e != nil {
			return e
		}
		return b.Commit()
	})
	return n, err
}

// replayOp re-executes one logged mutation during recovery. The registry
// table is created on demand: a checkpoint taken before the first
// AddDocuments does not hold it, yet the tail may insert into it.
func (st *Store) replayOp(seq uint64, op wal.ScannedOp) error {
	if op.Kind == wal.OpDocRemove {
		if err := st.applyRemoveDocument(op.DocID); err != nil {
			return fmt.Errorf("core: replaying batch %d removal of document %d: %w", seq, op.DocID, err)
		}
		return nil
	}
	tbl := st.DB.Catalog.Table(op.Table)
	if tbl == nil && op.Table == docRegistryTable {
		var err error
		if tbl, err = st.ensureDocRegistry(); err != nil {
			return err
		}
	}
	if tbl == nil {
		return &wal.CorruptError{Reason: fmt.Sprintf("batch %d references unknown table %s", seq, op.Table)}
	}
	var err error
	switch op.Kind {
	case wal.OpInsert:
		err = tbl.Insert(op.Row)
	case wal.OpDelete:
		_, err = tbl.DeleteRID(op.RID)
	case wal.OpUpdate:
		_, err = tbl.UpdateRID(op.RID, op.Row)
	default:
		err = fmt.Errorf("unknown op kind %d", op.Kind)
	}
	if err != nil {
		return fmt.Errorf("core: replaying batch %d into %s: %w", seq, op.Table, err)
	}
	return nil
}
