// Package core ties the reproduction together as a usable library: given
// a DTD and a mapping algorithm it derives the relational or
// object-relational schema, decides the XADT storage representation by
// sampling (§4.1), shreds documents, builds the workload's indexes, and
// answers SQL queries.
package core

import (
	"fmt"

	"repro/internal/dtd"
	"repro/internal/engine"
	"repro/internal/engine/catalog"
	"repro/internal/engine/exec"
	"repro/internal/engine/storage"
	"repro/internal/engine/types"
	"repro/internal/engine/wal"
	"repro/internal/mapping"
	"repro/internal/shred"
	"repro/internal/xadt"
	"repro/internal/xmltree"
)

// Algorithm selects the storage mapping.
type Algorithm string

// The two mapping algorithms the paper compares.
const (
	// Hybrid is the relational baseline of Shanmugasundaram et al.
	Hybrid Algorithm = "hybrid"
	// XORator is the paper's object-relational mapping with XADT
	// attributes.
	XORator Algorithm = "xorator"
)

// Config tunes a Store.
type Config struct {
	// Algorithm picks the mapping; default XORator.
	Algorithm Algorithm
	// CompressionThreshold is the minimum fractional saving required to
	// choose the compressed XADT representation; the paper uses 0.20.
	CompressionThreshold float64
	// SampleDocs bounds how many of the first batch's documents are
	// sampled for the compression decision; default 5.
	SampleDocs int
	// ForceFormat, when non-nil, overrides the sampling decision.
	ForceFormat *xadt.Format
	// DisableXADTHeaders stores seed-era headerless XADT values, for
	// exercising the legacy decode path.
	DisableXADTHeaders bool
	// Engine configures the underlying database.
	Engine engine.Config
}

// Store is a loaded XML store under one mapping.
type Store struct {
	// DB is the underlying database; queries run against it.
	DB *engine.Database
	// DTD is the parsed document type definition.
	DTD *dtd.DTD
	// Simplified is the simplification the mapping consumed.
	Simplified *dtd.SimplifiedDTD
	// Schema is the mapped relational schema.
	Schema *mapping.Schema
	// Format is the XADT storage representation in use.
	Format xadt.Format

	cfg    Config
	loader *shred.Loader

	// Durability state, present only when cfg.Engine.WALDir is set: the
	// write-ahead log writer, the filesystem it goes through, and
	// whether the XADT format decision still needs to be logged with
	// the next committed batch.
	wal           *wal.Writer
	vfs           storage.VFS
	pendingFormat bool
	// recovered marks a store rebuilt by OpenRecovered whose mapped
	// tables already exist (possibly empty, with no format decided yet),
	// so the first Load must resume the loader rather than create one.
	recovered bool
}

// Stats summarizes a store's storage footprint.
type Stats struct {
	Algorithm  Algorithm
	Tables     int
	Rows       int64
	DataBytes  int64
	IndexBytes int64
	Format     xadt.Format
}

// String renders the stats like the paper's Tables 1 and 2.
func (s Stats) String() string {
	return fmt.Sprintf("%-8s tables=%d rows=%d database=%.1fMB indexes=%.1fMB format=%s",
		s.Algorithm, s.Tables, s.Rows,
		float64(s.DataBytes)/(1<<20), float64(s.IndexBytes)/(1<<20), s.Format)
}

// NewStore parses dtdSource, derives the schema for the configured
// algorithm, and prepares an empty database. The XADT storage format is
// decided when the first documents are loaded (or by ForceFormat).
func NewStore(dtdSource string, cfg Config) (*Store, error) {
	if cfg.Algorithm == "" {
		cfg.Algorithm = XORator
	}
	if cfg.CompressionThreshold == 0 {
		cfg.CompressionThreshold = 0.20
	}
	if cfg.SampleDocs == 0 {
		cfg.SampleDocs = 5
	}
	d, err := dtd.Parse(dtdSource)
	if err != nil {
		return nil, err
	}
	s := dtd.Simplify(d)
	var schema *mapping.Schema
	switch cfg.Algorithm {
	case Hybrid:
		schema, err = mapping.Hybrid(s)
	case XORator:
		schema, err = mapping.XORator(s)
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q", cfg.Algorithm)
	}
	if err != nil {
		return nil, err
	}
	st := &Store{
		DB:         engine.Open(cfg.Engine),
		DTD:        d,
		Simplified: s,
		Schema:     schema,
		cfg:        cfg,
	}
	if cfg.Engine.WALDir != "" {
		if err := st.openWAL(); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// openWAL initializes durability for a fresh store: it refuses a WAL
// directory that already holds a store (recover it with OpenRecovered or
// remove it explicitly — silently clobbering a recoverable store would
// defeat the log), creates the log, and writes the initial checkpoint so
// recovery always has a base state.
func (st *Store) openWAL() error {
	st.vfs = st.cfg.Engine.VFS
	if st.vfs == nil {
		st.vfs = storage.OSFS{}
	}
	dir := st.cfg.Engine.WALDir
	if _, err := st.vfs.Stat(checkpointPath(dir)); err == nil {
		return fmt.Errorf("core: WAL dir %s already holds a store; use OpenRecovered or remove it", dir)
	} else if !storage.IsNotExist(err) {
		return err
	}
	w, err := wal.Create(st.vfs, dir, st.cfg.Engine.WALSync)
	if err != nil {
		return err
	}
	st.wal = w
	return st.Checkpoint()
}

// mvccDirect runs a legacy direct mutation. On a single-user store it
// runs fn as-is; on an MVCC store it wraps fn in its own committed
// transaction — the exclusive-latch direct path, where the catalog
// hooks stamp versions and journal conflict keys so concurrent snapshot
// sessions stay isolated from (and conflict-checked against) it.
func (st *Store) mvccDirect(fn func() error) error {
	if st.DB.TxnMgr == nil {
		return fn()
	}
	return st.DB.TxnMgr.RunDirect(func(uint64) error { return fn() })
}

// Load shreds documents into the store. The first call fixes the XADT
// storage representation by sampling the batch (the paper parses "a few
// sample documents" and compresses only if it saves at least the
// threshold).
func (st *Store) Load(docs []*xmltree.Document) error {
	return st.mvccDirect(func() error { return st.loadDirect(docs) })
}

func (st *Store) loadDirect(docs []*xmltree.Document) error {
	if err := st.ensureLoader(docs); err != nil {
		return err
	}
	for _, doc := range docs {
		if st.wal == nil {
			if err := st.loader.LoadDocument(doc); err != nil {
				return err
			}
			continue
		}
		// One document is one WAL batch: its tuples are logged as they
		// are shredded and become durable together at Commit, so
		// recovery never sees half a document.
		b := st.wal.Begin()
		if st.pendingFormat {
			b.SetFormat(byte(st.Format))
		}
		st.loader.OnInsert = b.Insert
		err := st.loader.LoadDocument(doc)
		st.loader.OnInsert = nil
		if err != nil {
			return err
		}
		if err := b.Commit(); err != nil {
			return err
		}
		st.pendingFormat = false
	}
	return nil
}

// ensureLoader creates the loader on first use, fixing the XADT storage
// representation by sampling docs (the paper parses "a few sample
// documents" and compresses only if it saves at least the threshold).
func (st *Store) ensureLoader(docs []*xmltree.Document) error {
	if st.loader != nil {
		return nil
	}
	format := xadt.Raw
	if st.cfg.ForceFormat != nil {
		format = *st.cfg.ForceFormat
	} else if st.cfg.Algorithm == XORator {
		n := st.cfg.SampleDocs
		if n > len(docs) {
			n = len(docs)
		}
		format = shred.ChooseFormat(st.Schema, docs[:n], st.cfg.CompressionThreshold)
	}
	var loader *shred.Loader
	var err error
	if st.recovered {
		// Recovery already created the (empty) mapped tables; attach
		// to them instead of refusing to re-create them.
		loader, err = shred.ResumeLoader(st.DB, st.Schema, format)
	} else {
		loader, err = shred.NewLoader(st.DB, st.Schema, format)
	}
	if err != nil {
		return err
	}
	loader.DisableHeaders = st.cfg.DisableXADTHeaders
	st.loader = loader
	st.Format = format
	if st.wal != nil {
		// The format decision must survive a crash: log it with the
		// next committed batch so a recovered store resumes loading
		// under the same representation.
		st.pendingFormat = true
	}
	return nil
}

// LoadXML parses and loads document texts.
func (st *Store) LoadXML(texts []string) error {
	docs := make([]*xmltree.Document, len(texts))
	for i, text := range texts {
		doc, err := xmltree.Parse(text)
		if err != nil {
			return err
		}
		docs[i] = doc
	}
	return st.Load(docs)
}

// CreateDefaultIndexes builds the indexes the workloads use — the
// stand-in for running the DB2 Index Wizard: B+trees on every ID,
// parentID, parentCODE and childOrder column, plus every string-valued
// column (value, inlined and attribute columns), which the selection
// queries filter on.
func (st *Store) CreateDefaultIndexes() error {
	if st.DB.TxnMgr != nil {
		// Index builds scan heaps and splice shared structures; take the
		// store exclusively so no session commits mid-build.
		return st.DB.TxnMgr.Exclusive(st.createDefaultIndexesLocked)
	}
	return st.createDefaultIndexesLocked()
}

func (st *Store) createDefaultIndexesLocked() error {
	for _, rel := range st.Schema.Relations {
		for _, col := range rel.Columns {
			switch col.Kind {
			case mapping.KindXADT:
				// Fragments get the secondary XADT index (structural paths
				// + inverted keywords) instead of a B+tree on the bytes.
				if t := st.DB.Catalog.Table(rel.Name); t != nil && t.FragIndexOn(col.Name) != nil {
					continue
				}
				if err := st.DB.CreateXADTIndex(rel.Name, col.Name); err != nil {
					return err
				}
				continue
			}
			// Skip indexes that already exist so the call is idempotent —
			// a store recovered from a checkpoint carries that
			// checkpoint's index definitions.
			if t := st.DB.Catalog.Table(rel.Name); t != nil && t.IndexOn(col.Name) != nil {
				continue
			}
			if err := st.DB.CreateIndex(rel.Name, col.Name); err != nil {
				return err
			}
		}
	}
	return nil
}

// RunStats refreshes optimizer statistics (the paper always runs
// runstats before measuring).
func (st *Store) RunStats() error {
	if st.DB.TxnMgr != nil {
		return st.DB.TxnMgr.Exclusive(st.DB.RunStats)
	}
	return st.DB.RunStats()
}

// Query runs a SQL query against the store. On an MVCC store it runs
// under an implicit read-only session, so it sees a consistent snapshot
// even while writers commit concurrently.
func (st *Store) Query(query string) (*engine.Result, error) {
	if st.DB.TxnMgr != nil {
		s, err := st.NewSession()
		if err != nil {
			return nil, err
		}
		defer s.Rollback()
		return s.Query(query)
	}
	return st.DB.Query(query)
}

// JoinCount reports how many joins a query plans to.
func (st *Store) JoinCount(query string) (int, error) {
	return st.DB.JoinCount(query)
}

// SpillStats reports accumulated spill activity of memory-bounded
// queries (EngineConfig.MemBudgetBytes > 0): run files written, bytes
// spilled, intermediate merge passes, and the peak tracked operator
// memory of any query so far.
func (st *Store) SpillStats() exec.SpillStats { return st.DB.SpillStats() }

// Stats reports the storage footprint.
func (st *Store) Stats() Stats {
	var rows int64
	for _, name := range st.DB.Catalog.TableNames() {
		rows += int64(st.DB.Catalog.Table(name).Rows())
	}
	return Stats{
		Algorithm:  st.cfg.Algorithm,
		Tables:     len(st.Schema.Relations),
		Rows:       rows,
		DataBytes:  st.DB.Catalog.TotalDataBytes(),
		IndexBytes: st.DB.Catalog.TotalIndexBytes(),
		Format:     st.Format,
	}
}

// CommittedBatches reports how many WAL batches (= documents) have ever
// been committed, counting batches absorbed into checkpoints; 0 for a
// store without a WAL.
func (st *Store) CommittedBatches() uint64 {
	if st.wal == nil {
		return 0
	}
	return st.wal.LastCommitted()
}

// Close syncs any pending group-committed WAL batches and releases the
// log file. It is a no-op for stores without a WAL.
func (st *Store) Close() error {
	if st.wal == nil {
		return nil
	}
	if st.DB.TxnMgr != nil {
		// The WAL writer is not concurrent-safe; serialize the final sync
		// against in-flight commits.
		return st.DB.TxnMgr.Quiesce(st.wal.Close)
	}
	return st.wal.Close()
}

// Table returns the named table for direct inspection, or nil.
func (st *Store) Table(name string) *catalog.Table {
	return st.DB.Catalog.Table(name)
}

// FragmentText renders a query result value as text, decoding XADT
// fragments into their serialized form and formatting other values with
// their natural rendering.
func FragmentText(v types.Value) (string, error) {
	switch v.Kind() {
	case types.KindNull:
		return "", nil
	case types.KindString:
		return v.Str(), nil
	case types.KindXADT:
		return xadt.FromBytes(v.XADT()).Text()
	default:
		return v.String(), nil
	}
}
