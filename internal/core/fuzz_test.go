package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dtd"
	"repro/internal/dtdgraph"
	"repro/internal/mapping"
	"repro/internal/testutil"
	"repro/internal/xmltree"
)

// randomDTD builds a small random DTD: a tree of elements rooted at e0
// with occasional shared subelements and PCDATA leaves.
func randomDTD(rng *rand.Rand) string {
	n := 4 + rng.Intn(6)
	var sb strings.Builder
	occurs := []string{"", "?", "*", "+"}
	isLeaf := func(i int) bool { return i > n/2 }
	for i := 0; i <= n; i++ {
		name := fmt.Sprintf("e%d", i)
		if isLeaf(i) {
			fmt.Fprintf(&sb, "<!ELEMENT %s (#PCDATA)>\n", name)
			continue
		}
		// Children come from strictly higher indices to keep the DTD
		// acyclic; sharing arises when two parents pick the same child.
		var items []string
		nchildren := 1 + rng.Intn(3)
		for c := 0; c < nchildren; c++ {
			child := i + 1 + rng.Intn(n-i)
			items = append(items, fmt.Sprintf("e%d%s", child, occurs[rng.Intn(len(occurs))]))
		}
		fmt.Fprintf(&sb, "<!ELEMENT %s (%s)>\n", name, strings.Join(items, ", "))
	}
	return sb.String()
}

// randomDoc emits a document whose element usage follows the simplified
// DTD: required children once, optional children sometimes, starred
// children up to three times.
func randomDoc(rng *rand.Rand, s *dtd.SimplifiedDTD, root string) *xmltree.Document {
	var build func(name string, depth int) *xmltree.Node
	build = func(name string, depth int) *xmltree.Node {
		n := xmltree.NewElement(name)
		decl := s.Element(name)
		if decl == nil {
			return n
		}
		if decl.HasPCDATA {
			n.AppendText(fmt.Sprintf("text %d", rng.Intn(1000)))
		}
		if depth > 6 {
			return n
		}
		for _, it := range decl.Items {
			count := 0
			switch it.Occurs {
			case dtd.One:
				count = 1
			case dtd.Opt:
				count = rng.Intn(2)
			default:
				count = rng.Intn(4)
			}
			for i := 0; i < count; i++ {
				n.Append(build(it.Name, depth+1))
			}
		}
		return n
	}
	return &xmltree.Document{Root: build(root, 0)}
}

// witnessedElements computes which element tags a store can account for:
// relation elements, elements covered by an XADT subtree, and inlined
// elements that materialize a value or attribute column.
func witnessedElements(st *Store) map[string]bool {
	g := dtdgraph.Build(st.Simplified)
	out := map[string]bool{}
	for _, rel := range st.Schema.Relations {
		out[rel.Element] = true
		for _, col := range rel.Columns {
			switch col.Kind {
			case mapping.KindXADT:
				root := col.Path[0]
				out[root] = true
				for d := range g.Subtree(root) {
					out[d] = true
				}
			case mapping.KindInlined, mapping.KindInlinedAttr:
				out[col.Path[len(col.Path)-1]] = true
			}
		}
	}
	return out
}

// TestRandomDTDConservation runs the full pipeline — parse, simplify,
// map with both algorithms, shred, recount — over randomized DTDs and
// documents, checking that every element instance survives the mapping.
func TestRandomDTDConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(testutil.Seed(t, 2002)))
	for trial := 0; trial < 25; trial++ {
		src := randomDTD(rng)
		d, err := dtd.Parse(src)
		if err != nil {
			t.Fatalf("trial %d: parse: %v\n%s", trial, err, src)
		}
		simplified := dtd.Simplify(d)
		roots := simplified.Roots()
		if len(roots) == 0 {
			continue
		}
		var docs []*xmltree.Document
		for i := 0; i < 3; i++ {
			docs = append(docs, randomDoc(rng, simplified, roots[0]))
		}
		want := elementCounts(docs)

		for _, alg := range []Algorithm{Hybrid, XORator} {
			st, err := NewStore(src, Config{Algorithm: alg})
			if err != nil {
				t.Fatalf("trial %d %s: NewStore: %v\n%s", trial, alg, err, src)
			}
			if err := st.Load(docs); err != nil {
				t.Fatalf("trial %d %s: Load: %v\n%s", trial, alg, err, src)
			}
			got := storeElementCounts(t, st)
			witnessed := witnessedElements(st)
			for tag, n := range want {
				if !witnessed[tag] {
					// Inlined elements without character data or
					// attributes leave no witness — the one lossy case
					// of these mappings. They must carry no information
					// beyond existence.
					decl := st.Simplified.Element(tag)
					if decl != nil && (decl.HasPCDATA || len(decl.Attrs) > 0) {
						t.Errorf("trial %d %s: informative element %s unwitnessed\n%s",
							trial, alg, tag, src)
					}
					continue
				}
				if got[tag] != n {
					t.Errorf("trial %d %s: element %s = %d, want %d\nDTD:\n%s",
						trial, alg, tag, got[tag], n, src)
				}
			}
		}
	}
}

// TestRandomDTDSchemasAreSane checks structural invariants of both
// mappings over random DTDs: XORator never creates a relation for a leaf,
// both mappings create a relation for the root, and the XORator table set
// is never larger than the Hybrid one.
func TestRandomDTDSchemasAreSane(t *testing.T) {
	rng := rand.New(rand.NewSource(testutil.Seed(t, 77)))
	for trial := 0; trial < 50; trial++ {
		src := randomDTD(rng)
		st, err := NewStore(src, Config{Algorithm: XORator})
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		hy, err := NewStore(src, Config{Algorithm: Hybrid})
		if err != nil {
			t.Fatal(err)
		}
		g := st.Simplified
		for _, rel := range st.Schema.Relations {
			decl := g.Element(rel.Element)
			if decl != nil && len(decl.Items) == 0 {
				t.Errorf("trial %d: XORator made leaf %s a relation\n%s", trial, rel.Element, src)
			}
		}
		roots := g.Roots()
		if len(roots) > 0 && st.Schema.RelationFor(roots[0]) == nil {
			t.Errorf("trial %d: root %s has no XORator relation", trial, roots[0])
		}
		if len(st.Schema.Relations) > len(hy.Schema.Relations) {
			t.Errorf("trial %d: XORator (%d tables) larger than Hybrid (%d)\n%s",
				trial, len(st.Schema.Relations), len(hy.Schema.Relations), src)
		}
	}
}
