package core

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/engine"
	"repro/internal/engine/storage"
	"repro/internal/engine/wal"
	"repro/internal/xadt"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

const goldenDTD = `
<!ELEMENT book (title, chapter+)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT chapter (#PCDATA)>
`

// TestSnapshotHeaderGolden pins the snapshot/checkpoint header format:
// the uvarint length prefix and the JSON header with its durability
// fields (version, format decision, WAL watermark). OpenRecovered reads
// this header from checkpoints written by earlier builds, so a diff
// against testdata/snapshot_header.golden is a compatibility break
// unless the version is bumped and decodeSnapshot keeps accepting the
// old shape; rerun with -update after reviewing.
func TestSnapshotHeaderGolden(t *testing.T) {
	mem := storage.NewMemVFS()
	format := xadt.Compressed
	st, err := NewStore(goldenDTD, Config{
		Algorithm:   XORator,
		ForceFormat: &format,
		Engine:      engine.Config{WALDir: "wal", WALSync: wal.SyncAlways, VFS: mem},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.LoadXML([]string{
		`<book><title>First</title><chapter>one</chapter></book>`,
		`<book><title>Second</title><chapter>two</chapter></book>`,
	}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	hlen, n := binary.Uvarint(buf.Bytes())
	if n <= 0 || int(hlen) > buf.Len()-n {
		t.Fatalf("bad header length prefix (%d, %d)", hlen, n)
	}
	got := fmt.Sprintf("length prefix: %d bytes (uvarint % x)\nheader JSON:\n%s\n",
		hlen, buf.Bytes()[:n], buf.Bytes()[n:n+int(hlen)])

	goldenPath := filepath.Join("testdata", "snapshot_header.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden file: %v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Fatalf("snapshot header differs from %s — existing checkpoints may stop loading.\nIf intentional, rerun with -update.\n--- got ---\n%s\n--- want ---\n%s",
			goldenPath, got, want)
	}
}
