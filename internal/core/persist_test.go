package core

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/datagen"
	"repro/internal/engine"
)

func TestSnapshotRoundTrip(t *testing.T) {
	st := newPlayStore(t, XORator)
	if err := st.CreateDefaultIndexes(); err != nil {
		t.Fatal(err)
	}
	before, err := st.Query(`SELECT speechID FROM speech WHERE findKeyInElm(speech_speaker, 'SPEAKER', 'ROMEO') = 1`)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := OpenSnapshot(&buf, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Format != st.Format {
		t.Errorf("format = %v, want %v", restored.Format, st.Format)
	}
	if len(restored.Schema.Relations) != len(st.Schema.Relations) {
		t.Errorf("relations = %d, want %d", len(restored.Schema.Relations), len(st.Schema.Relations))
	}
	after, err := restored.Query(`SELECT speechID FROM speech WHERE findKeyInElm(speech_speaker, 'SPEAKER', 'ROMEO') = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Rows) != len(before.Rows) {
		t.Fatalf("rows after restore = %d, want %d", len(after.Rows), len(before.Rows))
	}
	// Indexes were rebuilt: an indexed lookup works and stats are fresh.
	if restored.Table("speech").IndexOn("speechID") == nil {
		t.Error("index not rebuilt")
	}
	if !restored.Table("speech").Stats.Valid {
		t.Error("stats not refreshed")
	}
}

func TestSnapshotHybridAgrees(t *testing.T) {
	st := newPlayStore(t, Hybrid)
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := OpenSnapshot(&buf, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	q := `SELECT COUNT(*) FROM line`
	a, err := st.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows[0][0].Int() != b.Rows[0][0].Int() {
		t.Errorf("line counts differ: %v vs %v", a.Rows[0][0], b.Rows[0][0])
	}
}

func TestSnapshotResumeLoading(t *testing.T) {
	st := newPlayStore(t, XORator)
	beforeRows := st.Stats().Rows

	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := OpenSnapshot(&buf, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := datagen.DefaultPlayConfig()
	cfg.Plays = 1
	cfg.Seed = 99
	if err := restored.Load(datagen.GeneratePlays(cfg)); err != nil {
		t.Fatal(err)
	}
	if restored.Stats().Rows <= beforeRows {
		t.Errorf("rows after resume load = %d, want > %d", restored.Stats().Rows, beforeRows)
	}
	// IDs stay unique after the resume.
	res, err := restored.Query(`SELECT COUNT(DISTINCT speechID) FROM speech`)
	if err != nil {
		t.Fatal(err)
	}
	count, err := restored.Query(`SELECT COUNT(*) FROM speech`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != count.Rows[0][0].Int() {
		t.Errorf("duplicate speech IDs after resume: %v distinct of %v",
			res.Rows[0][0], count.Rows[0][0])
	}
}

func TestSnapshotFile(t *testing.T) {
	st := newPlayStore(t, XORator)
	path := filepath.Join(t.TempDir(), "store.xordb")
	if err := st.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	restored, err := OpenSnapshotFile(path, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Stats().Rows != st.Stats().Rows {
		t.Errorf("rows = %d, want %d", restored.Stats().Rows, st.Stats().Rows)
	}
}

func TestSnapshotCorrupt(t *testing.T) {
	st := newPlayStore(t, XORator)
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	cases := [][]byte{
		nil,
		data[:10],
		append([]byte{0xFF, 0xFF}, data...),
	}
	for i, b := range cases {
		if _, err := OpenSnapshot(bytes.NewReader(b), engine.Config{}); err == nil {
			t.Errorf("case %d: corrupt snapshot accepted", i)
		}
	}
}

func TestSnapshotPreservesXADTPayloads(t *testing.T) {
	st := newPlayStore(t, XORator)
	q := `SELECT xadtText(speech_line) FROM speech WHERE speechID = 5`
	a, err := st.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := OpenSnapshot(&buf, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows[0][0].Str() != b.Rows[0][0].Str() {
		t.Error("XADT payload changed across snapshot")
	}
}
