package core

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/engine/storage"
	"repro/internal/engine/wal"
	"repro/internal/xmltree"
)

// addPlayStore builds a store whose documents entered through
// AddDocuments (so they are registered and removable), optionally
// WAL-backed on the given VFS.
func addPlayStore(t *testing.T, alg Algorithm, vfs storage.VFS) (*Store, []int64) {
	t.Helper()
	cfg := Config{Algorithm: alg}
	if vfs != nil {
		cfg.Engine = engine.Config{WALDir: "wal", WALSync: wal.SyncAlways, VFS: vfs}
	}
	st, err := NewStore(corpus.ShakespeareDTD, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := st.AddDocuments(smallPlays(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.RunStats(); err != nil {
		t.Fatal(err)
	}
	return st, ids
}

func countRows(t *testing.T, st *Store, table string) int {
	t.Helper()
	res, err := st.Query("SELECT COUNT(*) FROM " + table)
	if err != nil {
		t.Fatal(err)
	}
	return int(res.Rows[0][0].Int())
}

func TestExecInsertUpdateDelete(t *testing.T) {
	st, _ := addPlayStore(t, XORator, nil)
	plays := countRows(t, st, "play")

	n, err := st.Exec(`INSERT INTO play (playID, play_title) VALUES (-1, 'Synthetic'), (-2, 'Another')`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("insert affected %d rows, want 2", n)
	}
	if got := countRows(t, st, "play"); got != plays+2 {
		t.Fatalf("plays = %d, want %d", got, plays+2)
	}
	// Unlisted columns default to NULL.
	res, err := st.Query(`SELECT play_scndescr FROM play WHERE playID = -1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || !res.Rows[0][0].IsNull() {
		t.Fatalf("inserted row = %v, want single NULL scndescr", res.Rows)
	}

	n, err = st.Exec(`UPDATE play SET play_title = 'Renamed' WHERE playID <= -1`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("update affected %d rows, want 2", n)
	}
	res, err = st.Query(`SELECT COUNT(*) FROM play WHERE play_title = 'Renamed'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("renamed plays = %v, want 2", res.Rows)
	}

	n, err = st.Exec(`DELETE FROM play WHERE play_title = 'Renamed'`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("delete affected %d rows, want 2", n)
	}
	if got := countRows(t, st, "play"); got != plays {
		t.Fatalf("plays = %d, want %d after deleting the synthetics", got, plays)
	}
}

func TestExecErrors(t *testing.T) {
	st, _ := addPlayStore(t, XORator, nil)
	for _, src := range []string{
		`INSERT INTO nosuch (a) VALUES (1)`,
		`INSERT INTO play (nosuch) VALUES (1)`,
		`INSERT INTO play (play_title) VALUES (42)`,        // type mismatch
		`UPDATE play SET playID = 'word' WHERE playID = 1`, // type mismatch
		`UPDATE nosuch SET a = 1`,
		`DELETE FROM nosuch`,
		`UPDATE play SET play_fm = 'raw' WHERE playID = 1`, // XADT column: splice only
	} {
		if _, err := st.Exec(src); err == nil {
			t.Errorf("Exec(%q) succeeded, want error", src)
		}
	}
	// A failed statement must not leave partial effects behind.
	if got := countRows(t, st, "play"); got != 3 {
		t.Fatalf("plays = %d after failed statements, want 3", got)
	}
}

func TestRemoveAndReplaceDocument(t *testing.T) {
	st, ids := addPlayStore(t, XORator, nil)
	before := countRows(t, st, "speech")

	if err := st.RemoveDocument(ids[0]); err != nil {
		t.Fatal(err)
	}
	if got := countRows(t, st, "play"); got != 2 {
		t.Fatalf("plays = %d after removal, want 2", got)
	}
	if got := countRows(t, st, "speech"); got >= before {
		t.Fatalf("speeches = %d after removal, want fewer than %d", got, before)
	}
	if err := st.RemoveDocument(ids[0]); err == nil {
		t.Fatal("removing the same document twice succeeded")
	}
	if err := st.RemoveDocument(9999); err == nil {
		t.Fatal("removing an unknown document succeeded")
	}

	repl := smallPlays(t, 1)[0]
	if err := st.ReplaceXML(ids[1], xmltree.Serialize(repl.Root)); err != nil {
		t.Fatal(err)
	}
	if got := countRows(t, st, "play"); got != 2 {
		t.Fatalf("plays = %d after replacement, want 2", got)
	}
}

func TestSpliceFragment(t *testing.T) {
	st, _ := addPlayStore(t, XORator, nil)
	res, err := st.Query(`SELECT COUNT(*) FROM speech, TABLE(unnest(speech_line, 'LINE')) u WHERE speechID = 1`)
	if err != nil {
		t.Fatal(err)
	}
	before := res.Rows[0][0].Int()

	frags := []string{"<LINE>a spliced line</LINE>", "<LINE>and one more</LINE>"}
	if err := st.SpliceFragment("speech", "speech_line", 1, frags); err != nil {
		t.Fatal(err)
	}
	res, err = st.Query(`SELECT COUNT(*) FROM speech, TABLE(unnest(speech_line, 'LINE')) u WHERE speechID = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != 2 {
		t.Fatalf("lines after splice = %d, want exactly the 2 spliced (had %d)", got, before)
	}
	res, err = st.Query(`SELECT COUNT(*) FROM speech WHERE findKeyInElm(speech_line, 'LINE', 'spliced') = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("spliced keyword not findable: %v", res.Rows)
	}

	// Error cases: unknown table/column, non-XADT column, wrong fragment
	// root, missing row.
	for _, c := range []struct{ table, col string }{
		{"nosuch", "speech_line"},
		{"speech", "nosuch"},
		{"speech", "speech_speaker"},
	} {
		if err := st.SpliceFragment(c.table, c.col, 1, frags); err == nil {
			t.Errorf("SpliceFragment(%s.%s) succeeded, want error", c.table, c.col)
		}
	}
	if err := st.SpliceFragment("speech", "speech_line", 1, []string{"<STAGEDIR>wrong root</STAGEDIR>"}); err == nil {
		t.Error("splice with mismatched fragment root succeeded")
	}
	if err := st.SpliceFragment("speech", "speech_line", 999999, frags); err == nil {
		t.Error("splice on a missing row succeeded")
	}
}

// TestMutationsSurviveRecovery replays every mutation frame kind: a
// store mutated through SQL DML, a splice, and a document removal is
// abandoned (not closed) and reopened from its WAL, and must answer the
// same queries as before the crash.
func TestMutationsSurviveRecovery(t *testing.T) {
	vfs := storage.NewMemVFS()
	st, ids := addPlayStore(t, XORator, vfs)
	if _, err := st.Exec(`INSERT INTO play (playID, play_title) VALUES (-5, 'Recovered Play')`); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Exec(`UPDATE play SET play_title = 'Renamed' WHERE playID = 2`); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Exec(`DELETE FROM speech WHERE speechID = 1`); err != nil {
		t.Fatal(err)
	}
	if err := st.SpliceFragment("speech", "speech_line", 2, []string{"<LINE>durable splice</LINE>"}); err != nil {
		t.Fatal(err)
	}
	if err := st.RemoveDocument(ids[2]); err != nil {
		t.Fatal(err)
	}
	wantPlays := countRows(t, st, "play")
	wantSpeeches := countRows(t, st, "speech")

	// Crash: the handle is abandoned, never closed.
	rec, err := OpenRecovered(Config{Engine: engine.Config{WALDir: "wal", WALSync: wal.SyncAlways, VFS: vfs}})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.RunStats(); err != nil {
		t.Fatal(err)
	}
	if got := countRows(t, rec, "play"); got != wantPlays {
		t.Fatalf("recovered plays = %d, want %d", got, wantPlays)
	}
	if got := countRows(t, rec, "speech"); got != wantSpeeches {
		t.Fatalf("recovered speeches = %d, want %d", got, wantSpeeches)
	}
	res, err := rec.Query(`SELECT COUNT(*) FROM speech WHERE findKeyInElm(speech_line, 'LINE', 'durable') = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("splice lost in recovery: %v", res.Rows)
	}
	res, err = rec.Query(`SELECT play_title FROM play WHERE playID = -5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "Recovered Play" {
		t.Fatalf("synthetic insert lost in recovery: %v", res.Rows)
	}

	// The recovered store accepts further mutations.
	if _, err := rec.Exec(`DELETE FROM play WHERE playID = -5`); err != nil {
		t.Fatalf("mutating the recovered store: %v", err)
	}
}

// TestDocumentIDsDeterministic pins the registry's ID allocation: IDs
// restart from the lowest free slot only after the registry is empty,
// never reusing a live document's ID.
func TestDocumentIDsDeterministic(t *testing.T) {
	st, ids := addPlayStore(t, Hybrid, nil)
	if len(ids) != 3 || ids[0] == ids[1] || ids[1] == ids[2] {
		t.Fatalf("initial ids = %v", ids)
	}
	if err := st.RemoveDocument(ids[1]); err != nil {
		t.Fatal(err)
	}
	more, err := st.AddDocuments(smallPlays(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(more) != 1 || more[0] == ids[0] || more[0] == ids[2] {
		t.Fatalf("new id %v collides with live ids %v", more, ids)
	}
}

func TestExecSelectPassesThrough(t *testing.T) {
	st, _ := addPlayStore(t, XORator, nil)
	n, err := st.Exec(`SELECT COUNT(*) FROM play`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("SELECT through Exec returned %d rows, want 1", n)
	}
}
