package engine

import (
	"io/fs"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/engine/catalog"
	"repro/internal/engine/exec"
	"repro/internal/engine/plan"
	"repro/internal/engine/storage"
	"repro/internal/engine/types"
)

// spillFixtureDB builds big(id, grp, val, pad): enough pages to
// morselize, grp drawn from only 5 values so ORDER BY grp is decided
// almost entirely by tie-breaking.
func spillFixtureDB(t *testing.T) *Database {
	t.Helper()
	db := Open(Config{BufferPoolPages: 256})
	_, err := db.CreateTable("big", []catalog.Column{
		{Name: "id", Type: types.KindInt},
		{Name: "grp", Type: types.KindInt},
		{Name: "val", Type: types.KindInt},
		{Name: "pad", Type: types.KindString},
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl := db.Catalog.Table("big")
	pad := strings.Repeat("x", 24)
	for i := 0; i < 3000; i++ {
		err := tbl.Insert([]types.Value{
			types.NewInt(int64(i)),
			types.NewInt(int64(i % 5)),
			types.NewInt(int64((i * 37) % 101)),
			types.NewString(pad),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := db.RunStats(); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestSortEqualKeyOrderAcrossConfigs is the equal-key regression test:
// a sort key with massive duplication must yield byte-identical row
// order serially, at DOP 4, and under a budget that forces the external
// sort — stability is what lets the differential harness compare
// row-for-row.
func TestSortEqualKeyOrderAcrossConfigs(t *testing.T) {
	db := spillFixtureDB(t)
	const q = `SELECT id, grp FROM big ORDER BY grp`

	db.SetPlannerOptions(plan.Options{DOP: 1})
	ref, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}

	cells := []struct {
		name string
		o    plan.Options
	}{
		{"dop4", plan.Options{DOP: 4, MorselPages: 1, CPUs: 4}},
		{"budget", plan.Options{DOP: 1, MemBudgetBytes: 2048, SpillVFS: storage.NewMemVFS()}},
		{"budget+dop4", plan.Options{DOP: 4, MorselPages: 1, CPUs: 4, MemBudgetBytes: 2048, SpillVFS: storage.NewMemVFS()}},
	}
	for _, c := range cells {
		db.SetPlannerOptions(c.o)
		got, err := db.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !reflect.DeepEqual(got.Rows, ref.Rows) {
			for i := range ref.Rows {
				if !reflect.DeepEqual(got.Rows[i], ref.Rows[i]) {
					t.Fatalf("%s: first divergence at row %d: %v vs %v", c.name, i, got.Rows[i], ref.Rows[i])
				}
			}
			t.Fatalf("%s: rows differ", c.name)
		}
	}
}

// TestConfigBudgetWiring exercises the engine-level surface: a budget
// set in Config flows to every query, spill activity shows up in
// SpillStats, and the on-disk spill directory holds no files once the
// query finishes.
func TestConfigBudgetWiring(t *testing.T) {
	spillDir := t.TempDir()
	db := Open(Config{BufferPoolPages: 256, MemBudgetBytes: 2048, SpillDir: spillDir})
	_, err := db.CreateTable("s", []catalog.Column{
		{Name: "k", Type: types.KindInt},
		{Name: "v", Type: types.KindInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl := db.Catalog.Table("s")
	for i := 0; i < 500; i++ {
		if err := tbl.Insert([]types.Value{types.NewInt(int64((i * 13) % 97)), types.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.RunStats(); err != nil {
		t.Fatal(err)
	}

	res, err := db.Query(`SELECT k, v FROM s ORDER BY k, v`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 500 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	stats := db.SpillStats()
	if stats.Runs == 0 || stats.SpillBytes == 0 {
		t.Fatalf("Config budget did not reach the query: %+v", stats)
	}
	if stats.PeakMemBytes == 0 || stats.PeakMemBytes > 2048+8192 {
		t.Fatalf("peak tracked memory %d outside (0, budget+8KiB]", stats.PeakMemBytes)
	}

	var leftover []string
	err = filepath.WalkDir(spillDir, func(p string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			leftover = append(leftover, p)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(leftover) != 0 {
		t.Fatalf("spill files left after query: %v", leftover)
	}

	db.ResetSpillStats()
	if s := db.SpillStats(); s != (exec.SpillStats{}) {
		t.Fatalf("ResetSpillStats left %+v", s)
	}
}
