package exec

import (
	"sort"

	"repro/internal/engine/expr"
	"repro/internal/engine/types"
)

// Sort emits its input ordered by the key expressions. Without a
// QueryCtx it materializes everything in memory, exactly as the seed
// operator did; with one, it is an external merge sort: the input is
// buffered until the tracked memory budget is hit, each full buffer is
// stable-sorted and written as a length-prefixed run file through the
// query's VFS, runs beyond the merge fan-in are collapsed in extra
// passes, and Next streams a k-way loser-tree merge.
//
// Both paths are stable: the in-memory path uses sort.SliceStable, and
// the external path writes runs in input order and breaks merge ties
// toward the earlier run, which is the same total order. Stability is
// load-bearing — a parallel plan's Gather reassembles rows in exact
// serial order, and the differential harness compares row-for-row.
type Sort struct {
	Child Operator
	Keys  []expr.Expr
	Desc  []bool
	// Ctx enables spilling under its memory budget; nil keeps the
	// unbounded in-memory path.
	Ctx *QueryCtx

	rows    [][]types.Value // in-memory path output
	pos     int
	tracked int64      // bytes held against Ctx.Mem for rows
	runs    []*runFile // external path: sealed runs
	merge   *runMerger // external path: final merge
}

// sortRow pairs a row with its evaluated keys so runs and merges never
// re-evaluate key expressions.
type sortRow struct {
	keys []types.Value
	row  []types.Value
}

// NewSort wraps child with an order-by. desc is parallel to keys.
func NewSort(child Operator, keys []expr.Expr, desc []bool) *Sort {
	return &Sort{Child: child, Keys: keys, Desc: desc}
}

// Schema implements Operator.
func (s *Sort) Schema() *expr.RowSchema { return s.Child.Schema() }

// keyLess compares two evaluated key vectors under the Desc flags.
// Returns -1/0/+1.
func keyCompare(a, b []types.Value, desc []bool) int {
	for j := range desc {
		c := types.Compare(a[j], b[j])
		if c == 0 {
			continue
		}
		if desc[j] {
			return -c
		}
		return c
	}
	return 0
}

// Open consumes the input, spilling sorted runs when over budget.
func (s *Sort) Open() (err error) {
	s.discard()
	defer func() {
		if err != nil {
			s.discard()
		}
	}()
	if err := s.Child.Open(); err != nil {
		return err
	}
	defer s.Child.Close()

	nk := len(s.Keys)
	var buf []sortRow
	var bufBytes int64
	for {
		row, err := s.Child.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		keys := make([]types.Value, nk)
		for j, k := range s.Keys {
			v, err := k.Eval(row)
			if err != nil {
				return err
			}
			keys[j] = v
		}
		sz := rowBytes(row) + rowBytes(keys)
		buf = append(buf, sortRow{keys: keys, row: row})
		bufBytes += sz
		if !s.Ctx.grow(sz) {
			// Over budget: seal the buffer as one sorted run.
			if err := s.spillBuffer(buf); err != nil {
				s.Ctx.release(bufBytes)
				return err
			}
			s.Ctx.release(bufBytes)
			buf, bufBytes = buf[:0], 0
		}
	}

	if len(s.runs) == 0 {
		// Everything fit: plain stable in-memory sort.
		s.sortBuffer(buf)
		s.rows = make([][]types.Value, len(buf))
		for i := range buf {
			s.rows[i] = buf[i].row
		}
		s.pos = 0
		s.tracked = bufBytes
		return nil
	}

	// Spill the tail so the merge sees a uniform set of runs.
	if len(buf) > 0 {
		err := s.spillBuffer(buf)
		s.Ctx.release(bufBytes)
		if err != nil {
			return err
		}
	}
	less := func(a, b []types.Value) bool { return keyCompare(a[:nk], b[:nk], s.Desc) < 0 }
	s.runs, err = collapseRuns(s.Ctx, s.runs, "sort", less)
	if err != nil {
		s.runs = nil
		return err
	}
	s.merge, err = newRunMerger(s.runs, less)
	return err
}

// sortBuffer stable-sorts one buffer by (keys, input order).
func (s *Sort) sortBuffer(buf []sortRow) {
	sort.SliceStable(buf, func(a, b int) bool {
		return keyCompare(buf[a].keys, buf[b].keys, s.Desc) < 0
	})
}

// spillBuffer sorts and writes one buffer as a run of keys++row frames.
func (s *Sort) spillBuffer(buf []sortRow) error {
	s.sortBuffer(buf)
	w, err := s.Ctx.newRun("sort")
	if err != nil {
		return err
	}
	frame := make([]types.Value, 0, len(s.Keys)+8)
	for i := range buf {
		frame = append(frame[:0], buf[i].keys...)
		frame = append(frame, buf[i].row...)
		if err := w.write(frame); err != nil {
			w.abort()
			return err
		}
	}
	run, err := w.finish()
	if err != nil {
		return err
	}
	s.runs = append(s.runs, run)
	return nil
}

// Next implements Operator.
func (s *Sort) Next() ([]types.Value, error) {
	if s.merge != nil {
		row, err := s.merge.next()
		if err != nil || row == nil {
			return nil, err
		}
		return row[len(s.Keys):], nil
	}
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	row := s.rows[s.pos]
	s.pos++
	return row, nil
}

// discard drops all state: materialized rows, merge readers, run files,
// and their tracked memory.
func (s *Sort) discard() {
	s.rows = nil
	s.pos = 0
	if s.merge != nil {
		s.merge.close()
		s.merge = nil
	}
	for _, r := range s.runs {
		r.remove()
	}
	s.runs = nil
	s.Ctx.release(s.tracked)
	s.tracked = 0
}

// Close releases the materialized rows / spill runs. The operator may be
// re-opened afterwards.
func (s *Sort) Close() error {
	s.discard()
	s.Ctx.notePeak()
	return nil
}
