package exec

import (
	"fmt"

	"repro/internal/engine/catalog"
	"repro/internal/engine/expr"
	"repro/internal/engine/mvcc"
	"repro/internal/engine/storage"
	"repro/internal/engine/types"
	"repro/internal/engine/vec"
)

// tableSchema builds the row schema of a table bound under an alias.
func tableSchema(t *catalog.Table, alias string) *expr.RowSchema {
	cols := make([]expr.ColInfo, len(t.Schema.Columns))
	for i, c := range t.Schema.Columns {
		cols[i] = expr.ColInfo{Qualifier: alias, Name: c.Name, Type: c.Type}
	}
	return expr.NewRowSchema(cols...)
}

// SeqScan reads a table front to back. A fused predicate, when set,
// drops rows at the cursor before anything above the scan sees them —
// the destination of the planner's predicate pushdown.
//
// With Vec set (the planner's vectorize pass), the scan decodes whole
// page runs column-major into a pooled batch and runs the predicate as
// a columnar kernel; Next still works through the batch→row shim.
type SeqScan struct {
	Table *catalog.Table
	Alias string
	Pred  expr.Expr // optional, resolved against the scan schema
	Vec   bool
	// View, when set, is a materialized MVCC snapshot: the scan iterates
	// its rows instead of the live heap. View takes precedence over Vec.
	View *mvcc.View
	// Est is the planner's estimated output cardinality (rows surviving
	// the fused predicate); zero when no estimate was made. Advisory
	// only — execution never reads it.
	Est    float64
	schema *expr.RowSchema
	cursor *storage.Cursor
	vpos   int

	batch   *vec.Batch
	scratch expr.VecScratch
	shim    rowShim
}

// NewSeqScan returns a sequential scan of the table under the alias.
func NewSeqScan(t *catalog.Table, alias string) *SeqScan {
	return &SeqScan{Table: t, Alias: alias, schema: tableSchema(t, alias)}
}

// Schema implements Operator.
func (s *SeqScan) Schema() *expr.RowSchema { return s.schema }

// Open implements Operator.
func (s *SeqScan) Open() error {
	if s.View != nil {
		s.vpos = 0
		return nil
	}
	s.cursor = s.Table.Heap.NewCursor()
	s.shim.reset()
	if s.Vec && s.batch == nil {
		s.batch = vec.Get(len(s.schema.Cols))
	}
	return nil
}

// NextBatch implements BatchOperator: it decodes up to one batch of rows
// straight into column arrays and narrows the selection with the fused
// predicate's columnar kernel.
func (s *SeqScan) NextBatch() (*vec.Batch, error) {
	b := s.batch
	n, err := s.cursor.NextBatch(b.Cols, b.Cap())
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	b.NRows, b.Sel = n, nil
	if s.Pred != nil {
		if err := expr.FilterBatch(s.Pred, b, &s.scratch); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// Next implements Operator.
func (s *SeqScan) Next() ([]types.Value, error) {
	if s.View != nil {
		for s.vpos < len(s.View.Rows) {
			row := s.View.Rows[s.vpos].Row
			s.vpos++
			if s.Pred != nil {
				v, err := s.Pred.Eval(row)
				if err != nil {
					return nil, err
				}
				if !v.Truthy() {
					continue
				}
			}
			return row, nil
		}
		return nil, nil
	}
	if s.Vec {
		return s.shim.next(s.NextBatch)
	}
	for {
		_, row, ok, err := s.cursor.Next()
		if err != nil || !ok {
			return nil, err
		}
		if s.Pred != nil {
			v, err := s.Pred.Eval(row)
			if err != nil {
				return nil, err
			}
			if !v.Truthy() {
				continue
			}
		}
		return row, nil
	}
}

// Close implements Operator.
func (s *SeqScan) Close() error {
	s.cursor = nil
	vec.Release(s.batch)
	s.batch = nil
	s.shim.reset()
	return nil
}

// String describes the scan for plan explanations.
func (s *SeqScan) String() string {
	suffix := ""
	if s.Vec {
		suffix = " [vec]"
	}
	if s.Pred != nil {
		return fmt.Sprintf("SeqScan(%s as %s, filter: %s)%s", s.Table.Schema.Table, s.Alias, s.Pred, suffix)
	}
	return fmt.Sprintf("SeqScan(%s as %s)%s", s.Table.Schema.Table, s.Alias, suffix)
}

// IndexScan fetches the rows whose indexed column equals a key.
type IndexScan struct {
	Table *catalog.Table
	Alias string
	Index *catalog.Index
	Key   types.Value
	// View, when set, is a materialized MVCC snapshot: the equality
	// access filters the view on the indexed column instead of probing
	// the shared B+tree, so only snapshot-visible rows surface.
	View *mvcc.View
	// Est is the planner's estimated output cardinality; advisory only.
	Est    float64
	schema *expr.RowSchema
	rids   []storage.RID
	rows   [][]types.Value
	pos    int
}

// NewIndexScan returns an equality index scan.
func NewIndexScan(t *catalog.Table, alias string, idx *catalog.Index, key types.Value) *IndexScan {
	return &IndexScan{Table: t, Alias: alias, Index: idx, Key: key, schema: tableSchema(t, alias)}
}

// Schema implements Operator.
func (s *IndexScan) Schema() *expr.RowSchema { return s.schema }

// Open implements Operator.
func (s *IndexScan) Open() error {
	s.pos = 0
	if s.View != nil {
		s.rows = s.rows[:0]
		ci := s.Index.ColIdx
		for _, vr := range s.View.Rows {
			if types.Equal(vr.Row[ci], s.Key) {
				s.rows = append(s.rows, vr.Row)
			}
		}
		return nil
	}
	s.rids = s.Index.Tree.Lookup(s.Key)
	return nil
}

// Next implements Operator.
func (s *IndexScan) Next() ([]types.Value, error) {
	if s.View != nil {
		if s.pos >= len(s.rows) {
			return nil, nil
		}
		row := s.rows[s.pos]
		s.pos++
		return row, nil
	}
	if s.pos >= len(s.rids) {
		return nil, nil
	}
	row, err := s.Table.Heap.Get(s.rids[s.pos])
	if err != nil {
		return nil, err
	}
	s.pos++
	return row, nil
}

// Close implements Operator.
func (s *IndexScan) Close() error {
	s.rids = nil
	s.rows = nil
	return nil
}

// String describes the scan.
func (s *IndexScan) String() string {
	return fmt.Sprintf("IndexScan(%s as %s on %s = %s)",
		s.Table.Schema.Table, s.Alias, s.Index.Column, s.Key)
}

// ValuesScan produces a fixed in-memory row set; the planner uses it for
// materialized inputs and tests use it as a stub source. With Vec set it
// scatters its rows into column-major batches, which gives tests a
// controllable batch producer.
type ValuesScan struct {
	Rows   [][]types.Value
	Vec    bool
	schema *expr.RowSchema
	pos    int

	batch *vec.Batch
	shim  rowShim
}

// NewValuesScan wraps rows under the given schema.
func NewValuesScan(schema *expr.RowSchema, rows [][]types.Value) *ValuesScan {
	return &ValuesScan{Rows: rows, schema: schema}
}

// Schema implements Operator.
func (s *ValuesScan) Schema() *expr.RowSchema { return s.schema }

// Open implements Operator.
func (s *ValuesScan) Open() error {
	s.pos = 0
	s.shim.reset()
	if s.Vec && s.batch == nil {
		s.batch = vec.Get(len(s.schema.Cols))
	}
	return nil
}

// NextBatch implements BatchOperator.
func (s *ValuesScan) NextBatch() (*vec.Batch, error) {
	if s.pos >= len(s.Rows) {
		return nil, nil
	}
	b := s.batch
	ncols := len(b.Cols)
	n := 0
	for n < b.Cap() && s.pos < len(s.Rows) {
		row := s.Rows[s.pos]
		if len(row) != ncols {
			return nil, fmt.Errorf("exec: values row has %d columns, schema has %d", len(row), ncols)
		}
		for j := range b.Cols {
			b.Cols[j][n] = row[j]
		}
		s.pos++
		n++
	}
	b.NRows, b.Sel = n, nil
	return b, nil
}

// Next implements Operator.
func (s *ValuesScan) Next() ([]types.Value, error) {
	if s.Vec {
		return s.shim.next(s.NextBatch)
	}
	if s.pos >= len(s.Rows) {
		return nil, nil
	}
	row := s.Rows[s.pos]
	s.pos++
	return row, nil
}

// Close implements Operator.
func (s *ValuesScan) Close() error {
	vec.Release(s.batch)
	s.batch = nil
	s.shim.reset()
	return nil
}
