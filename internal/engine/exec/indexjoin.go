package exec

import (
	"fmt"

	"repro/internal/engine/catalog"
	"repro/internal/engine/expr"
	"repro/internal/engine/storage"
	"repro/internal/engine/types"
)

// IndexLoopJoin joins by probing a B+tree index on the inner table with a
// key computed from each outer row — the index-nested-loop access path a
// selective outer side makes profitable.
type IndexLoopJoin struct {
	Left Operator
	// Right is the inner table, probed through Index.
	Right *catalog.Table
	// Alias binds the inner table's columns in the output schema.
	Alias string
	// Index is the inner index; its column is the join key's inner side.
	Index *catalog.Index
	// LeftKey computes the probe key; it is resolved against the left
	// schema (equivalently, the joined schema: left columns keep their
	// positions).
	LeftKey expr.Expr
	// Est is the planner's estimated output cardinality; advisory only.
	Est float64

	schema  *expr.RowSchema
	leftRow []types.Value
	rids    []storage.RID
	pos     int
}

// NewIndexLoopJoin builds the operator.
func NewIndexLoopJoin(left Operator, right *catalog.Table, alias string, idx *catalog.Index, leftKey expr.Expr) *IndexLoopJoin {
	return &IndexLoopJoin{
		Left: left, Right: right, Alias: alias, Index: idx, LeftKey: leftKey,
		schema: expr.Concat(left.Schema(), tableSchema(right, alias)),
	}
}

// Schema implements Operator.
func (j *IndexLoopJoin) Schema() *expr.RowSchema { return j.schema }

// Open implements Operator.
func (j *IndexLoopJoin) Open() error {
	j.leftRow = nil
	j.rids = nil
	j.pos = 0
	return j.Left.Open()
}

// Next implements Operator.
func (j *IndexLoopJoin) Next() ([]types.Value, error) {
	for {
		for j.pos < len(j.rids) {
			inner, err := j.Right.Heap.Get(j.rids[j.pos])
			if err != nil {
				return nil, err
			}
			j.pos++
			return concatRows(j.leftRow, inner), nil
		}
		row, err := j.Left.Next()
		if err != nil || row == nil {
			return nil, err
		}
		key, err := j.LeftKey.Eval(row)
		if err != nil {
			return nil, err
		}
		j.leftRow = row
		if key.IsNull() {
			j.rids = nil
		} else {
			j.rids = j.Index.Tree.Lookup(key)
		}
		j.pos = 0
	}
}

// Close implements Operator.
func (j *IndexLoopJoin) Close() error {
	j.rids = nil
	return j.Left.Close()
}

// String describes the join for plan explanations.
func (j *IndexLoopJoin) String() string {
	return fmt.Sprintf("IndexLoopJoin(%s probes %s.%s)", j.LeftKey, j.Alias, j.Index.Column)
}
