package exec

import (
	"fmt"
	"os"
	"path"
	"sync"
	"sync/atomic"

	"repro/internal/engine/storage"
	"repro/internal/engine/types"
)

// MemTracker is the per-query memory accountant shared by every blocking
// operator of one plan. Workers of a parallel plan share the same
// tracker, so all methods are atomic. A nil tracker is valid and means
// "unlimited": Grow always reports within-budget and Release is a no-op,
// which keeps the non-spilling fast path free of budget plumbing.
type MemTracker struct {
	budget int64
	used   atomic.Int64
	peak   atomic.Int64
}

// NewMemTracker returns a tracker with the given budget in bytes;
// budget <= 0 means unlimited.
func NewMemTracker(budget int64) *MemTracker {
	return &MemTracker{budget: budget}
}

// Grow adds n tracked bytes and reports whether usage is still within
// budget. Callers keep the memory either way — the contract is "grow,
// then spill if over", so peak usage exceeds the budget by at most one
// row (plus the fixed spill I/O buffers, themselves tracked).
func (m *MemTracker) Grow(n int64) bool {
	if m == nil {
		return true
	}
	u := m.used.Add(n)
	for {
		p := m.peak.Load()
		if u <= p || m.peak.CompareAndSwap(p, u) {
			break
		}
	}
	return m.budget <= 0 || u <= m.budget
}

// Release returns n tracked bytes.
func (m *MemTracker) Release(n int64) {
	if m != nil {
		m.used.Add(-n)
	}
}

// Used returns the currently tracked bytes.
func (m *MemTracker) Used() int64 {
	if m == nil {
		return 0
	}
	return m.used.Load()
}

// Peak returns the high-water mark of tracked bytes.
func (m *MemTracker) Peak() int64 {
	if m == nil {
		return 0
	}
	return m.peak.Load()
}

// Budget returns the configured budget (0 = unlimited).
func (m *MemTracker) Budget() int64 {
	if m == nil {
		return 0
	}
	return m.budget
}

// rowBytes is the tracked in-memory cost of one row: a fixed slice
// overhead plus a per-value header and the value's record size. The
// numbers approximate Go heap layout; what matters is that the same
// accounting drives both the spill decision and the reported peak.
func rowBytes(row []types.Value) int64 {
	n := int64(24)
	for _, v := range row {
		n += 16 + int64(v.Size())
	}
	return n
}

// SpillStats aggregates spill activity across queries, the operator
// counterpart of storage.PoolStats.
type SpillStats struct {
	// Runs is the number of spill run files written.
	Runs int64 `json:"runs"`
	// SpillBytes is the total bytes written to run files.
	SpillBytes int64 `json:"spill_bytes"`
	// MergePasses counts intermediate merge passes — runs re-merged into
	// longer runs because the run count exceeded the merge fan-in.
	MergePasses int64 `json:"merge_passes"`
	// PeakMemBytes is the largest per-query peak of tracked operator
	// memory observed so far.
	PeakMemBytes int64 `json:"peak_mem_bytes"`
}

// SpillSink accumulates SpillStats. One sink lives on the engine and is
// shared by all queries; all methods are atomic.
type SpillSink struct {
	runs   atomic.Int64
	bytes  atomic.Int64
	passes atomic.Int64
	peak   atomic.Int64
}

// Stats snapshots the accumulated totals.
func (s *SpillSink) Stats() SpillStats {
	if s == nil {
		return SpillStats{}
	}
	return SpillStats{
		Runs:         s.runs.Load(),
		SpillBytes:   s.bytes.Load(),
		MergePasses:  s.passes.Load(),
		PeakMemBytes: s.peak.Load(),
	}
}

// Reset zeroes the totals (benchmarks isolate per-query deltas with it).
func (s *SpillSink) Reset() {
	if s == nil {
		return
	}
	s.runs.Store(0)
	s.bytes.Store(0)
	s.passes.Store(0)
	s.peak.Store(0)
}

func (s *SpillSink) addRun(bytes int64) {
	if s == nil {
		return
	}
	s.runs.Add(1)
	s.bytes.Add(bytes)
}

func (s *SpillSink) addMergePass() {
	if s == nil {
		return
	}
	s.passes.Add(1)
}

func (s *SpillSink) notePeak(p int64) {
	if s == nil {
		return
	}
	for {
		cur := s.peak.Load()
		if p <= cur || s.peak.CompareAndSwap(cur, p) {
			return
		}
	}
}

// spillDirSeq disambiguates per-query spill directories within one
// process.
var spillDirSeq atomic.Int64

// QueryCtx is the spill context of one query: the shared memory tracker,
// the VFS and per-query temp directory spill runs live in, and the
// registry of created files that backs the error-path cleanup. The
// planner creates one QueryCtx per compiled plan when a memory budget is
// configured and hands it to every blocking operator; a nil *QueryCtx
// selects the unbounded in-memory execution paths.
type QueryCtx struct {
	// Mem is the query's shared memory tracker.
	Mem *MemTracker

	vfs  storage.VFS
	dir  string
	sink *SpillSink

	mu       sync.Mutex
	dirMade  bool
	nextFile int64
	files    map[string]bool
}

// NewQueryCtx builds a spill context. vfs nil means the OS filesystem;
// baseDir empty places per-query directories under os.TempDir(). The
// sink may be nil (stats are then dropped).
func NewQueryCtx(budget int64, vfs storage.VFS, baseDir string, sink *SpillSink) *QueryCtx {
	if vfs == nil {
		vfs = storage.OSFS{}
	}
	if baseDir == "" {
		baseDir = path.Join(os.TempDir(), "xmlstore-spill")
	}
	dir := path.Join(baseDir, fmt.Sprintf("q%d-%d", os.Getpid(), spillDirSeq.Add(1)))
	return &QueryCtx{
		Mem:   NewMemTracker(budget),
		vfs:   vfs,
		dir:   dir,
		sink:  sink,
		files: map[string]bool{},
	}
}

// Dir returns the per-query spill directory (created lazily on first
// spill).
func (q *QueryCtx) Dir() string { return q.dir }

// grow is the nil-safe Grow used by operators that may run without a
// context.
func (q *QueryCtx) grow(n int64) bool {
	if q == nil {
		return true
	}
	return q.Mem.Grow(n)
}

// release is the nil-safe Release.
func (q *QueryCtx) release(n int64) {
	if q != nil {
		q.Mem.Release(n)
	}
}

// notePeak folds the query's peak tracked memory into the sink.
// Operators call it from Close; the max-merge makes it idempotent.
func (q *QueryCtx) notePeak() {
	if q != nil {
		q.sink.notePeak(q.Mem.Peak())
	}
}

// newFileName reserves a fresh spill file name inside the per-query
// directory and records it for cleanup.
func (q *QueryCtx) newFileName(label string) (string, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.dirMade {
		if err := q.vfs.MkdirAll(q.dir); err != nil {
			return "", fmt.Errorf("exec: creating spill dir: %w", err)
		}
		q.dirMade = true
	}
	name := path.Join(q.dir, fmt.Sprintf("%s%d.spill", label, q.nextFile))
	q.nextFile++
	q.files[name] = true
	return name, nil
}

// removeFile deletes one spill file, tolerating prior removal.
func (q *QueryCtx) removeFile(name string) {
	q.mu.Lock()
	tracked := q.files[name]
	delete(q.files, name)
	q.mu.Unlock()
	if tracked {
		_ = q.vfs.Remove(name)
	}
}

// Cleanup removes every spill file still registered — the query-level
// backstop behind the operators' own Close/error-path removal. Errors
// are ignored: a file may already be gone, or the VFS may be a crashed
// FaultVFS.
func (q *QueryCtx) Cleanup() {
	if q == nil {
		return
	}
	q.mu.Lock()
	names := make([]string, 0, len(q.files))
	for name := range q.files {
		names = append(names, name)
	}
	q.files = map[string]bool{}
	q.mu.Unlock()
	for _, name := range names {
		_ = q.vfs.Remove(name)
	}
	q.notePeak()
}
