package exec

import (
	"repro/internal/engine/expr"
	"repro/internal/engine/types"
	"repro/internal/engine/vec"
)

// Filter passes through rows for which the predicate is true. With Vec
// set it narrows each child batch's selection vector with the columnar
// predicate kernels instead of evaluating row by row.
type Filter struct {
	Child Operator
	Pred  expr.Expr
	Vec   bool

	bchild  BatchOperator
	scratch expr.VecScratch
	shim    rowShim
}

// NewFilter wraps child with a predicate.
func NewFilter(child Operator, pred expr.Expr) *Filter {
	return &Filter{Child: child, Pred: pred}
}

// Schema implements Operator.
func (f *Filter) Schema() *expr.RowSchema { return f.Child.Schema() }

// Open implements Operator.
func (f *Filter) Open() error {
	f.shim.reset()
	f.bchild = nil
	if f.Vec {
		f.bchild = f.Child.(BatchOperator)
	}
	return f.Child.Open()
}

// NextBatch implements BatchOperator: the child's batch comes back with
// its selection narrowed in place (possibly to no active rows).
func (f *Filter) NextBatch() (*vec.Batch, error) {
	b, err := f.bchild.NextBatch()
	if err != nil || b == nil {
		return nil, err
	}
	if err := expr.FilterBatch(f.Pred, b, &f.scratch); err != nil {
		return nil, err
	}
	return b, nil
}

// Next implements Operator.
func (f *Filter) Next() ([]types.Value, error) {
	if f.Vec {
		return f.shim.next(f.NextBatch)
	}
	for {
		row, err := f.Child.Next()
		if err != nil || row == nil {
			return nil, err
		}
		v, err := f.Pred.Eval(row)
		if err != nil {
			return nil, err
		}
		if v.Truthy() {
			return row, nil
		}
	}
}

// Close implements Operator.
func (f *Filter) Close() error {
	f.shim.reset()
	return f.Child.Close()
}

// Project evaluates output expressions over each input row. With Vec
// set it works batch-at-a-time: bare column references alias the child
// batch's column slices (zero copy, the common SELECT-list shape), and
// computed expressions evaluate column-wise into the operator's own
// storage; the child's selection carries through unchanged.
type Project struct {
	Child  Operator
	Exprs  []expr.Expr
	Vec    bool
	schema *expr.RowSchema

	bchild  BatchOperator
	out     *vec.Batch       // shell batch; Cols repointed per call
	own     [][]types.Value  // private storage for computed outputs
	scratch expr.VecScratch
	shim    rowShim
}

// NewProject wraps child, producing one output column per expression,
// named by names.
func NewProject(child Operator, exprs []expr.Expr, names []string) *Project {
	cols := make([]expr.ColInfo, len(exprs))
	for i := range exprs {
		cols[i] = expr.ColInfo{Name: names[i]}
	}
	return &Project{Child: child, Exprs: exprs, schema: expr.NewRowSchema(cols...)}
}

// Schema implements Operator.
func (p *Project) Schema() *expr.RowSchema { return p.schema }

// Open implements Operator.
func (p *Project) Open() error {
	p.shim.reset()
	p.bchild = nil
	if p.Vec {
		p.bchild = p.Child.(BatchOperator)
		if p.out == nil {
			p.out = &vec.Batch{Cols: make([][]types.Value, len(p.Exprs))}
			p.own = make([][]types.Value, len(p.Exprs))
		}
	}
	return p.Child.Open()
}

// NextBatch implements BatchOperator. The output batch aliases the
// child's selection vector and, for bare column references, the child's
// column slices; both stay valid until the child's next NextBatch —
// i.e. until our own next call, as the contract requires. The shell
// batch is deliberately not pooled: its Cols point into child (or own)
// storage, never into pool-owned arrays.
func (p *Project) NextBatch() (*vec.Batch, error) {
	cb, err := p.bchild.NextBatch()
	if err != nil || cb == nil {
		return nil, err
	}
	out := p.out
	out.NRows, out.Sel = cb.NRows, cb.Sel
	for i, e := range p.Exprs {
		if c, ok := e.(*expr.Col); ok && c.Idx >= 0 && c.Idx < len(cb.Cols) {
			out.Cols[i] = cb.Cols[c.Idx]
			continue
		}
		if p.own[i] == nil {
			p.own[i] = make([]types.Value, vec.DefaultBatchRows)
		}
		if err := expr.EvalBatch(e, cb, p.own[i][:cb.NRows], &p.scratch); err != nil {
			return nil, err
		}
		out.Cols[i] = p.own[i]
	}
	return out, nil
}

// Next implements Operator.
func (p *Project) Next() ([]types.Value, error) {
	if p.Vec {
		return p.shim.next(p.NextBatch)
	}
	row, err := p.Child.Next()
	if err != nil || row == nil {
		return nil, err
	}
	out := make([]types.Value, len(p.Exprs))
	for i, e := range p.Exprs {
		v, err := e.Eval(row)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Close implements Operator.
func (p *Project) Close() error {
	p.out = nil
	p.own = nil
	p.shim.reset()
	return p.Child.Close()
}

// Limit passes through at most N rows. With Vec set it truncates the
// selection vector of the batch that crosses the bound instead of
// counting rows one at a time.
type Limit struct {
	Child Operator
	N     int64
	Vec   bool
	seen  int64

	bchild BatchOperator
	shim   rowShim
}

// NewLimit wraps child with a row bound.
func NewLimit(child Operator, n int64) *Limit {
	return &Limit{Child: child, N: n}
}

// Schema implements Operator.
func (l *Limit) Schema() *expr.RowSchema { return l.Child.Schema() }

// Open implements Operator.
func (l *Limit) Open() error {
	l.seen = 0
	l.shim.reset()
	l.bchild = nil
	if l.Vec {
		l.bchild = l.Child.(BatchOperator)
	}
	return l.Child.Open()
}

// NextBatch implements BatchOperator.
func (l *Limit) NextBatch() (*vec.Batch, error) {
	if l.seen >= l.N {
		return nil, nil
	}
	b, err := l.bchild.NextBatch()
	if err != nil || b == nil {
		return nil, err
	}
	act := int64(b.Active())
	if l.seen+act <= l.N {
		l.seen += act
		return b, nil
	}
	// The bound falls inside this batch: keep only the first N-seen
	// active rows by truncating (or materializing) the selection.
	take := int(l.N - l.seen)
	if b.Sel == nil {
		sel := b.SelBuf()[:take]
		for i := range sel {
			sel[i] = i
		}
		b.Sel = sel
	} else {
		b.Sel = b.Sel[:take]
	}
	l.seen = l.N
	return b, nil
}

// Next implements Operator.
func (l *Limit) Next() ([]types.Value, error) {
	if l.Vec {
		return l.shim.next(l.NextBatch)
	}
	if l.seen >= l.N {
		return nil, nil
	}
	row, err := l.Child.Next()
	if err != nil || row == nil {
		return nil, err
	}
	l.seen++
	return row, nil
}

// Close implements Operator.
func (l *Limit) Close() error {
	l.shim.reset()
	return l.Child.Close()
}

// Distinct drops duplicate rows (hash-based).
type Distinct struct {
	Child Operator
	seen  map[uint64][][]types.Value
}

// NewDistinct wraps child with duplicate elimination.
func NewDistinct(child Operator) *Distinct {
	return &Distinct{Child: child}
}

// Schema implements Operator.
func (d *Distinct) Schema() *expr.RowSchema { return d.Child.Schema() }

// Open implements Operator.
func (d *Distinct) Open() error {
	d.seen = map[uint64][][]types.Value{}
	return d.Child.Open()
}

// Next implements Operator.
func (d *Distinct) Next() ([]types.Value, error) {
	for {
		row, err := d.Child.Next()
		if err != nil || row == nil {
			return nil, err
		}
		h := hashRow(row)
		dup := false
		for _, prev := range d.seen[h] {
			if rowsEqual(prev, row) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		d.seen[h] = append(d.seen[h], row)
		return row, nil
	}
}

// Close implements Operator.
func (d *Distinct) Close() error {
	d.seen = nil
	return d.Child.Close()
}

func hashRow(row []types.Value) uint64 {
	var h uint64 = 1469598103934665603
	for _, v := range row {
		h ^= types.Hash(v)
		h *= 1099511628211
	}
	return h
}

func rowsEqual(a, b []types.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !types.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}
