package exec

import (
	"repro/internal/engine/expr"
	"repro/internal/engine/types"
)

// Filter passes through rows for which the predicate is true.
type Filter struct {
	Child Operator
	Pred  expr.Expr
}

// NewFilter wraps child with a predicate.
func NewFilter(child Operator, pred expr.Expr) *Filter {
	return &Filter{Child: child, Pred: pred}
}

// Schema implements Operator.
func (f *Filter) Schema() *expr.RowSchema { return f.Child.Schema() }

// Open implements Operator.
func (f *Filter) Open() error { return f.Child.Open() }

// Next implements Operator.
func (f *Filter) Next() ([]types.Value, error) {
	for {
		row, err := f.Child.Next()
		if err != nil || row == nil {
			return nil, err
		}
		v, err := f.Pred.Eval(row)
		if err != nil {
			return nil, err
		}
		if v.Truthy() {
			return row, nil
		}
	}
}

// Close implements Operator.
func (f *Filter) Close() error { return f.Child.Close() }

// Project evaluates output expressions over each input row.
type Project struct {
	Child  Operator
	Exprs  []expr.Expr
	schema *expr.RowSchema
}

// NewProject wraps child, producing one output column per expression,
// named by names.
func NewProject(child Operator, exprs []expr.Expr, names []string) *Project {
	cols := make([]expr.ColInfo, len(exprs))
	for i := range exprs {
		cols[i] = expr.ColInfo{Name: names[i]}
	}
	return &Project{Child: child, Exprs: exprs, schema: expr.NewRowSchema(cols...)}
}

// Schema implements Operator.
func (p *Project) Schema() *expr.RowSchema { return p.schema }

// Open implements Operator.
func (p *Project) Open() error { return p.Child.Open() }

// Next implements Operator.
func (p *Project) Next() ([]types.Value, error) {
	row, err := p.Child.Next()
	if err != nil || row == nil {
		return nil, err
	}
	out := make([]types.Value, len(p.Exprs))
	for i, e := range p.Exprs {
		v, err := e.Eval(row)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Close implements Operator.
func (p *Project) Close() error { return p.Child.Close() }

// Limit passes through at most N rows.
type Limit struct {
	Child Operator
	N     int64
	seen  int64
}

// NewLimit wraps child with a row bound.
func NewLimit(child Operator, n int64) *Limit {
	return &Limit{Child: child, N: n}
}

// Schema implements Operator.
func (l *Limit) Schema() *expr.RowSchema { return l.Child.Schema() }

// Open implements Operator.
func (l *Limit) Open() error {
	l.seen = 0
	return l.Child.Open()
}

// Next implements Operator.
func (l *Limit) Next() ([]types.Value, error) {
	if l.seen >= l.N {
		return nil, nil
	}
	row, err := l.Child.Next()
	if err != nil || row == nil {
		return nil, err
	}
	l.seen++
	return row, nil
}

// Close implements Operator.
func (l *Limit) Close() error { return l.Child.Close() }

// Distinct drops duplicate rows (hash-based).
type Distinct struct {
	Child Operator
	seen  map[uint64][][]types.Value
}

// NewDistinct wraps child with duplicate elimination.
func NewDistinct(child Operator) *Distinct {
	return &Distinct{Child: child}
}

// Schema implements Operator.
func (d *Distinct) Schema() *expr.RowSchema { return d.Child.Schema() }

// Open implements Operator.
func (d *Distinct) Open() error {
	d.seen = map[uint64][][]types.Value{}
	return d.Child.Open()
}

// Next implements Operator.
func (d *Distinct) Next() ([]types.Value, error) {
	for {
		row, err := d.Child.Next()
		if err != nil || row == nil {
			return nil, err
		}
		h := hashRow(row)
		dup := false
		for _, prev := range d.seen[h] {
			if rowsEqual(prev, row) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		d.seen[h] = append(d.seen[h], row)
		return row, nil
	}
}

// Close implements Operator.
func (d *Distinct) Close() error {
	d.seen = nil
	return d.Child.Close()
}

func hashRow(row []types.Value) uint64 {
	var h uint64 = 1469598103934665603
	for _, v := range row {
		h ^= types.Hash(v)
		h *= 1099511628211
	}
	return h
}

func rowsEqual(a, b []types.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !types.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}
