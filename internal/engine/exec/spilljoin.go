package exec

import (
	"repro/internal/engine/types"
)

// graceJoin is the spill mode of HashJoin: a Grace-style partitioned
// hash join. Build and probe rows are hash-partitioned to run files,
// partition pairs are joined one at a time (re-partitioning recursively
// when a skewed build partition still exceeds the budget), and each
// pair's matches are written to an output run tagged with the probe
// row's arrival sequence. Because every row of one key hash lands in the
// same partition, a probe row's matches stay in build-insertion order,
// and the final loser-tree merge by probe sequence reproduces exactly
// the in-memory join's output order — sequences are disjoint across
// partitions, so no tie-break is needed.
type graceJoin struct {
	j   *HashJoin
	ctx *QueryCtx
	out []*runFile // per-partition output runs, each ascending in seq
	m   *runMerger
}

// partitionSet is one level of hash partition writers.
type partitionSet struct {
	ctx     *QueryCtx
	writers [spillPartitions]*runWriter
	label   string
}

func newPartitionSet(ctx *QueryCtx, label string) *partitionSet {
	return &partitionSet{ctx: ctx, label: label}
}

// write routes one frame to its partition, creating the writer lazily.
func (p *partitionSet) write(part int, frame []types.Value) error {
	w := p.writers[part]
	if w == nil {
		var err error
		w, err = p.ctx.newRun(p.label)
		if err != nil {
			return err
		}
		p.writers[part] = w
	}
	return w.write(frame)
}

// finish seals all partitions. Untouched partitions come back as nil.
func (p *partitionSet) finish() ([spillPartitions]*runFile, error) {
	var out [spillPartitions]*runFile
	for i, w := range p.writers {
		if w == nil {
			continue
		}
		run, err := w.finish()
		p.writers[i] = nil
		if err != nil {
			p.abort()
			for _, r := range out {
				if r != nil {
					r.remove()
				}
			}
			return out, err
		}
		out[i] = run
	}
	return out, nil
}

// abort discards all open writers.
func (p *partitionSet) abort() {
	for i, w := range p.writers {
		if w != nil {
			w.abort()
			p.writers[i] = nil
		}
	}
}

// spill drives the whole grace join during HashJoin.Open. buffered holds
// the build rows accumulated before the budget overflowed; their tracked
// bytes are released as they are flushed to partition files.
func (j *HashJoin) spill(buffered [][]types.Value) (err error) {
	g := &graceJoin{j: j, ctx: j.Ctx}
	j.grace = g
	defer func() {
		if err != nil {
			g.discard()
			j.grace = nil
		}
	}()

	// Partition the build side: the buffered prefix, then the rest of the
	// still-open left input, streamed row by row.
	bset := newPartitionSet(j.Ctx, "jbuild")
	routeBuild := func(row []types.Value) error {
		k, err := j.LeftKey.Eval(row)
		if err != nil {
			return err
		}
		if k.IsNull() {
			return nil // NULL keys never join
		}
		return bset.write(partFor(types.Hash(k), 0), row)
	}
	for _, row := range buffered {
		if err := routeBuild(row); err != nil {
			bset.abort()
			return err
		}
		j.Ctx.release(rowBytes(row))
	}
	for {
		row, err := j.Left.Next()
		if err != nil {
			bset.abort()
			return err
		}
		if row == nil {
			break
		}
		if err := routeBuild(row); err != nil {
			bset.abort()
			return err
		}
	}
	builds, err := bset.finish()
	if err != nil {
		return err
	}
	removeAll := func(runs [spillPartitions]*runFile) {
		for _, r := range runs {
			if r != nil {
				r.remove()
			}
		}
	}
	defer removeAll(builds)

	// Partition the probe side, tagging every row with its arrival
	// sequence; that sequence is the global output order.
	if err := j.Right.Open(); err != nil {
		return err
	}
	pset := newPartitionSet(j.Ctx, "jprobe")
	lw := len(j.Left.Schema().Cols)
	var seq int64
	for {
		row, err := j.Right.Next()
		if err != nil {
			pset.abort()
			j.Right.Close()
			return err
		}
		if row == nil {
			break
		}
		s := seq
		seq++
		padded := concatRows(make([]types.Value, lw), row)
		k, err := j.RightKey.Eval(padded)
		if err != nil {
			pset.abort()
			j.Right.Close()
			return err
		}
		if k.IsNull() {
			continue
		}
		frame := append([]types.Value{types.NewInt(s)}, row...)
		if err := pset.write(partFor(types.Hash(k), 0), frame); err != nil {
			pset.abort()
			j.Right.Close()
			return err
		}
	}
	j.Right.Close()
	probes, err := pset.finish()
	if err != nil {
		return err
	}
	defer removeAll(probes)

	// Join partition pairs; each appends output runs to g.out.
	for i := 0; i < spillPartitions; i++ {
		b, p := builds[i], probes[i]
		builds[i], probes[i] = nil, nil
		if err := g.joinPartition(b, p, 0); err != nil {
			return err
		}
	}

	g.out, err = collapseRuns(j.Ctx, g.out, "jout", seqLess)
	if err != nil {
		g.out = nil
		return err
	}
	if len(g.out) > 0 {
		g.m, err = newRunMerger(g.out, seqLess)
		if err != nil {
			return err
		}
	}
	return nil
}

// joinPartition joins one build/probe partition pair. Either side may be
// nil (no rows hashed there). If the build side exceeds the budget it is
// re-partitioned under the next hash-bit window, recursively, up to
// maxRepartitionDepth; a partition of one giant key group cannot shrink
// further and is then joined in memory regardless of budget.
func (g *graceJoin) joinPartition(build, probe *runFile, depth int) error {
	cleanup := func() {
		if build != nil {
			build.remove()
		}
		if probe != nil {
			probe.remove()
		}
	}
	if build == nil || probe == nil {
		cleanup()
		return nil
	}
	j := g.j

	rd, err := build.open()
	if err != nil {
		cleanup()
		return err
	}
	var rows [][]types.Value
	var tracked int64
	overflow := false
	for {
		row, err := rd.next()
		if err != nil {
			rd.close()
			cleanup()
			g.ctx.release(tracked)
			return err
		}
		if row == nil {
			break
		}
		sz := rowBytes(row)
		rows = append(rows, row)
		tracked += sz
		if !g.ctx.grow(sz) && depth < maxRepartitionDepth {
			overflow = true
			break
		}
	}

	if overflow {
		// repartition releases tracked once the buffered rows are back on
		// disk — before the recursive joins, so a sub-partition that fits
		// the budget sees a near-empty tracker instead of inheriting this
		// level's usage and cascading to maxRepartitionDepth.
		return g.repartition(rd, rows, tracked, build, probe, depth)
	}
	rd.close()
	defer g.ctx.release(tracked)
	defer cleanup()

	// Build the partition's hash table in file (= build input) order.
	table := make(map[uint64][][]types.Value, len(rows))
	for _, row := range rows {
		k, err := j.LeftKey.Eval(row)
		if err != nil {
			return err
		}
		table[types.Hash(k)] = append(table[types.Hash(k)], row)
	}

	prd, err := probe.open()
	if err != nil {
		return err
	}
	defer prd.close()
	lw := len(j.Left.Schema().Cols)
	var w *runWriter
	probeErr := func() error {
		for {
			frame, err := prd.next()
			if err != nil {
				return err
			}
			if frame == nil {
				return nil
			}
			seqV, right := frame[0], frame[1:]
			padded := concatRows(make([]types.Value, lw), right)
			k, err := j.RightKey.Eval(padded)
			if err != nil {
				return err
			}
			for _, left := range table[types.Hash(k)] {
				out := concatRows(left, right)
				// Re-check key equality to guard against hash collisions,
				// mirroring the in-memory probe.
				lk, err := j.LeftKey.Eval(out)
				if err != nil {
					return err
				}
				rk, err := j.RightKey.Eval(out)
				if err != nil {
					return err
				}
				if !types.Equal(lk, rk) {
					continue
				}
				if w == nil {
					if w, err = g.ctx.newRun("jout"); err != nil {
						return err
					}
				}
				if err := w.write(append([]types.Value{seqV}, out...)); err != nil {
					return err
				}
			}
		}
	}()
	if probeErr != nil {
		if w != nil {
			w.abort()
		}
		return probeErr
	}
	if w != nil {
		run, err := w.finish()
		if err != nil {
			return err
		}
		g.out = append(g.out, run)
	}
	return nil
}

// repartition splits an over-budget build partition (the buffered prefix
// plus the rest of rd) and its probe partition under the next hash-bit
// window, then joins the sub-pairs. tracked is the buffered rows' memory
// accounting, released as soon as they are routed back to disk.
func (g *graceJoin) repartition(rd *runReader, buffered [][]types.Value, tracked int64, build, probe *runFile, depth int) error {
	j := g.j
	bset := newPartitionSet(g.ctx, "jbuild")
	route := func(row []types.Value) error {
		k, err := j.LeftKey.Eval(row)
		if err != nil {
			return err
		}
		return bset.write(partFor(types.Hash(k), depth+1), row)
	}
	var err error
	for _, row := range buffered {
		if err = route(row); err != nil {
			break
		}
	}
	if err == nil {
		for {
			var row []types.Value
			row, err = rd.next()
			if err != nil || row == nil {
				break
			}
			if err = route(row); err != nil {
				break
			}
		}
	}
	rd.close()
	build.remove()
	g.ctx.release(tracked)
	if err != nil {
		bset.abort()
		probe.remove()
		return err
	}
	subB, err := bset.finish()
	if err != nil {
		probe.remove()
		return err
	}

	prd, err := probe.open()
	if err != nil {
		probe.remove()
		for _, r := range subB {
			if r != nil {
				r.remove()
			}
		}
		return err
	}
	pset := newPartitionSet(g.ctx, "jprobe")
	lw := len(j.Left.Schema().Cols)
	for {
		frame, ferr := prd.next()
		if ferr != nil {
			err = ferr
			break
		}
		if frame == nil {
			break
		}
		padded := concatRows(make([]types.Value, lw), frame[1:])
		k, kerr := j.RightKey.Eval(padded)
		if kerr != nil {
			err = kerr
			break
		}
		if err = pset.write(partFor(types.Hash(k), depth+1), frame); err != nil {
			break
		}
	}
	prd.close()
	probe.remove()
	if err != nil {
		pset.abort()
		for _, r := range subB {
			if r != nil {
				r.remove()
			}
		}
		return err
	}
	subP, err := pset.finish()
	if err != nil {
		for _, r := range subB {
			if r != nil {
				r.remove()
			}
		}
		return err
	}

	for i := 0; i < spillPartitions; i++ {
		b, p := subB[i], subP[i]
		subB[i], subP[i] = nil, nil
		if err := g.joinPartition(b, p, depth+1); err != nil {
			for k := i + 1; k < spillPartitions; k++ {
				if subB[k] != nil {
					subB[k].remove()
				}
				if subP[k] != nil {
					subP[k].remove()
				}
			}
			return err
		}
	}
	return nil
}

// next streams the merged, sequence-ordered output; the leading sequence
// column is stripped.
func (g *graceJoin) next() ([]types.Value, error) {
	if g.m == nil {
		return nil, nil
	}
	row, err := g.m.next()
	if err != nil || row == nil {
		return nil, err
	}
	return row[1:], nil
}

// discard closes the merger and removes all output runs.
func (g *graceJoin) discard() {
	if g.m != nil {
		g.m.close()
		g.m = nil
	}
	for _, r := range g.out {
		r.remove()
	}
	g.out = nil
}
