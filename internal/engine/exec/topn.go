package exec

import (
	"fmt"
	"sort"

	"repro/internal/engine/expr"
	"repro/internal/engine/types"
)

// TopN fuses ORDER BY + LIMIT into one bounded-heap pass: it keeps only
// the N smallest rows under the sort keys, so memory is O(N) regardless
// of input size and no full sort ever happens — the fix for the paper's
// admitted QS6 weakness, where order-access queries pay a whole sort for
// a handful of rows.
//
// Selection is stable: rows are ranked by (keys, arrival order), the
// exact total order of a stable Sort followed by Limit. That also makes
// per-worker partial TopN below a Gather exchange safe — any row in the
// global top N is preceded by fewer than N rows within its own worker's
// stream, so it survives the partial cut, and Gather's morsel-order
// reassembly feeds the final TopN rows in serial arrival order.
type TopN struct {
	Child Operator
	Keys  []expr.Expr
	Desc  []bool
	N     int64

	out [][]types.Value
	pos int
}

// topEntry is one heap slot: evaluated keys plus arrival sequence.
type topEntry struct {
	keys []types.Value
	seq  int64
	row  []types.Value
}

// NewTopN wraps child with a bounded top-N under (keys, desc).
func NewTopN(child Operator, keys []expr.Expr, desc []bool, n int64) *TopN {
	return &TopN{Child: child, Keys: keys, Desc: desc, N: n}
}

// Schema implements Operator.
func (t *TopN) Schema() *expr.RowSchema { return t.Child.Schema() }

// String implements fmt.Stringer for plan explains.
func (t *TopN) String() string { return fmt.Sprintf("TopN(%d)", t.N) }

// entryLess is the stable ranking: keys under Desc, then arrival order.
func (t *TopN) entryLess(a, b *topEntry) bool {
	if c := keyCompare(a.keys, b.keys, t.Desc); c != 0 {
		return c < 0
	}
	return a.seq < b.seq
}

// Open consumes the input, keeping the N best rows in a max-heap (the
// worst survivor at the root, evicted first).
func (t *TopN) Open() error {
	t.out = nil
	t.pos = 0
	if err := t.Child.Open(); err != nil {
		return err
	}
	defer t.Child.Close()
	if t.N <= 0 {
		return nil
	}
	heap := make([]*topEntry, 0, t.N)
	var seq int64
	for {
		row, err := t.Child.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		keys := make([]types.Value, len(t.Keys))
		for j, k := range t.Keys {
			v, err := k.Eval(row)
			if err != nil {
				return err
			}
			keys[j] = v
		}
		e := &topEntry{keys: keys, seq: seq, row: row}
		seq++
		if int64(len(heap)) < t.N {
			heap = append(heap, e)
			siftUp(heap, len(heap)-1, t.entryLess)
			continue
		}
		if t.entryLess(e, heap[0]) {
			heap[0] = e
			siftDown(heap, 0, t.entryLess)
		}
	}
	sort.Slice(heap, func(a, b int) bool { return t.entryLess(heap[a], heap[b]) })
	t.out = make([][]types.Value, len(heap))
	for i, e := range heap {
		t.out[i] = e.row
	}
	return nil
}

// siftUp restores the max-heap property after appending at i.
func siftUp(h []*topEntry, i int, less func(a, b *topEntry) bool) {
	for i > 0 {
		parent := (i - 1) / 2
		if !less(h[parent], h[i]) {
			return
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

// siftDown restores the max-heap property after replacing the root.
func siftDown(h []*topEntry, i int, less func(a, b *topEntry) bool) {
	for {
		largest := i
		if l := 2*i + 1; l < len(h) && less(h[largest], h[l]) {
			largest = l
		}
		if r := 2*i + 2; r < len(h) && less(h[largest], h[r]) {
			largest = r
		}
		if largest == i {
			return
		}
		h[i], h[largest] = h[largest], h[i]
		i = largest
	}
}

// Next implements Operator.
func (t *TopN) Next() ([]types.Value, error) {
	if t.pos >= len(t.out) {
		return nil, nil
	}
	row := t.out[t.pos]
	t.pos++
	return row, nil
}

// Close implements Operator.
func (t *TopN) Close() error {
	t.out = nil
	return nil
}
