package exec

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/engine/catalog"
	"repro/internal/engine/expr"
	"repro/internal/engine/types"
	"repro/internal/engine/vec"
)

// valuesSchema builds a two-column (k int, v int) schema for ValuesScan
// boundary tests.
func valuesSchema() *expr.RowSchema {
	return expr.NewRowSchema(expr.ColInfo{Name: "k"}, expr.ColInfo{Name: "v"})
}

func intRows(n int) [][]types.Value {
	rows := make([][]types.Value, n)
	for i := range rows {
		rows[i] = []types.Value{types.NewInt(int64(i)), types.NewInt(int64(i % 5))}
	}
	return rows
}

func TestHashKeyColsMatchesHashRow(t *testing.T) {
	rows := [][]types.Value{
		{types.NewInt(1), types.NewString("a")},
		{types.NewInt(1), types.NewString("b")},
		{types.Null, types.NewString("a")},
		{types.NewInt(-9), types.Null},
	}
	cols := make([][]types.Value, 2)
	for j := range cols {
		cols[j] = make([]types.Value, len(rows))
		for i, r := range rows {
			cols[j][i] = r[j]
		}
	}
	hashes := make([]uint64, len(rows))
	hashKeyCols(cols, &vec.Batch{NRows: len(rows)}, hashes)
	for i, r := range rows {
		if hashes[i] != hashRow(r) {
			t.Errorf("row %d: hashKeyCols = %d, hashRow = %d", i, hashes[i], hashRow(r))
		}
	}
}

// vecValuesPlan builds scan → filter(v-pred) → limit over rows, with or
// without the vectorized path engaged.
func vecValuesPlan(rows [][]types.Value, pred expr.Expr, limit int64, vecOn bool) Operator {
	scan := NewValuesScan(valuesSchema(), rows)
	scan.Vec = vecOn
	var op Operator = scan
	if pred != nil {
		f := NewFilter(op, pred)
		f.Vec = vecOn
		op = f
	}
	if limit >= 0 {
		l := NewLimit(op, limit)
		l.Vec = vecOn
		op = l
	}
	return op
}

func TestVecBoundaries(t *testing.T) {
	gt := func(n int64) expr.Expr {
		return &expr.Cmp{Op: expr.GT, L: &expr.Col{Idx: 0, Name: "k"}, R: &expr.Const{Val: types.NewInt(n)}}
	}
	cases := []struct {
		name  string
		nrows int
		pred  expr.Expr
		limit int64
	}{
		{"empty-input", 0, nil, -1},
		{"empty-input-limit", 0, nil, 10},
		{"all-filtered", 3000, gt(1 << 50), -1},
		{"limit-1023", 2048, nil, 1023},
		{"limit-1024", 2048, nil, 1024},
		{"limit-1025", 2048, nil, 1025},
		{"limit-on-batch-exact", 1024, nil, 1024},
		{"filtered-limit-crosses-batch", 4096, gt(1000), 1500},
		{"limit-zero", 100, nil, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rows := intRows(tc.nrows)
			base := vec.Outstanding()
			want, err := Drain(vecValuesPlan(rows, tc.pred, tc.limit, false))
			if err != nil {
				t.Fatal(err)
			}
			got, err := Drain(vecValuesPlan(rows, tc.pred, tc.limit, true))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("vectorized output differs: %d vs %d rows", len(got), len(want))
			}
			if vec.Outstanding() != base {
				t.Fatalf("leaked %d batches", vec.Outstanding()-base)
			}
		})
	}
}

func TestVecProjectComputedAndAliased(t *testing.T) {
	rows := intRows(2500)
	build := func(vecOn bool) Operator {
		scan := NewValuesScan(valuesSchema(), rows)
		scan.Vec = vecOn
		// One aliased column, one computed expression: exercises both
		// NextBatch paths.
		cmp := &expr.Cmp{Op: expr.GT, L: &expr.Col{Idx: 0, Name: "k"}, R: &expr.Col{Idx: 1, Name: "v"}}
		p := NewProject(scan, []expr.Expr{&expr.Col{Idx: 1, Name: "v"}, cmp}, []string{"v", "b"})
		p.Vec = vecOn
		return p
	}
	want, err := Drain(build(false))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Drain(build(true))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("projected output differs: %d vs %d rows", len(got), len(want))
	}
}

func TestVecAggregateMatchesRow(t *testing.T) {
	// Interleave NULL arguments so the skip logic is exercised, and use
	// enough rows that group state spans many batches.
	rows := make([][]types.Value, 5000)
	for i := range rows {
		v := types.NewInt(int64(i))
		if i%7 == 0 {
			v = types.Null
		}
		rows[i] = []types.Value{types.NewInt(int64(i % 13)), v}
	}
	build := func(vecOn bool) Operator {
		scan := NewValuesScan(valuesSchema(), rows)
		scan.Vec = vecOn
		arg := &expr.Col{Idx: 1, Name: "v"}
		agg := NewHashAggregate(scan,
			[]expr.Expr{&expr.Col{Idx: 0, Name: "k"}}, []string{"k"},
			[]AggSpec{
				{Kind: AggCount, Name: "cnt"},
				{Kind: AggCount, Arg: arg, Name: "cntv"},
				{Kind: AggSum, Arg: arg, Name: "sum"},
				{Kind: AggMin, Arg: arg, Name: "min"},
				{Kind: AggMax, Arg: arg, Name: "max"},
				{Kind: AggCount, Arg: arg, Distinct: true, Name: "dcnt"},
			})
		agg.Vec = vecOn
		return agg
	}
	want, err := Drain(build(false))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Drain(build(true))
	if err != nil {
		t.Fatal(err)
	}
	// reflect.DeepEqual also checks group emission order: vectorized
	// grouping must preserve first-appearance order.
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("aggregate output differs:\n got %v\nwant %v", got, want)
	}
}

func TestVecEqualKeyOrderStability(t *testing.T) {
	// Many duplicate sort keys: TopN and Sort must break ties by input
	// order identically whether fed by the shim or by rows.
	rows := make([][]types.Value, 4000)
	for i := range rows {
		rows[i] = []types.Value{types.NewInt(int64(i)), types.NewInt(int64(i % 3))}
	}
	key := []expr.Expr{&expr.Col{Idx: 1, Name: "v"}}
	build := func(vecOn bool, topn bool) Operator {
		scan := NewValuesScan(valuesSchema(), rows)
		scan.Vec = vecOn
		if topn {
			return NewTopN(scan, key, []bool{false}, 50)
		}
		return NewSort(scan, key, []bool{false})
	}
	for _, topn := range []bool{true, false} {
		want, err := Drain(build(false, topn))
		if err != nil {
			t.Fatal(err)
		}
		got, err := Drain(build(true, topn))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("topn=%t: equal-key order differs between row and vec feeds", topn)
		}
	}
}

// vecScanPipes is scanPipes with the vectorized flag set on every scan
// and an optional vectorized filter above each.
func vecScanPipes(tbl *catalog.Table, alias string, dop int, pred func(*expr.RowSchema) expr.Expr) []Pipeline {
	pipes := make([]Pipeline, dop)
	for i := range pipes {
		leaf := NewMorselScan(tbl, alias)
		leaf.Vec = true
		root := Operator(leaf)
		if pred != nil {
			f := NewFilter(root, pred(leaf.Schema()))
			f.Vec = true
			root = f
		}
		pipes[i] = Pipeline{Root: root, Leaf: leaf}
	}
	return pipes
}

func TestGatherBatchForwardingMatchesRows(t *testing.T) {
	c := catalog.New(nil)
	tbl := buildTable(t, c, "t", 3000)
	pred := func(sch *expr.RowSchema) expr.Expr {
		i, err := sch.Resolve("t", "val")
		if err != nil {
			t.Fatal(err)
		}
		return &expr.Cmp{Op: expr.GT, L: &expr.Col{Idx: i, Name: "val"}, R: &expr.Const{Val: types.NewInt(4000)}}
	}
	want, err := Drain(NewGather(scanPipes(tbl, "t", 4, func(op Operator) Operator {
		return NewFilter(op, pred(op.Schema()))
	}), 1, nil))
	if err != nil {
		t.Fatal(err)
	}

	base := vec.Outstanding()
	g := NewGather(vecScanPipes(tbl, "t", 4, pred), 1, nil)
	g.Vec = true
	got, err := Drain(g)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("batch-forwarding Gather differs from row Gather: %d vs %d rows", len(got), len(want))
	}
	if vec.Outstanding() != base {
		t.Fatalf("leaked %d batches after drain", vec.Outstanding()-base)
	}
}

func TestGatherBatchEarlyCloseReleasesAll(t *testing.T) {
	c := catalog.New(nil)
	tbl := buildTable(t, c, "t", 5000)
	for round := 0; round < 3; round++ {
		base := vec.Outstanding()
		g := NewGather(vecScanPipes(tbl, "t", 4, nil), 1, nil)
		g.Vec = true
		if err := g.Open(); err != nil {
			t.Fatal(err)
		}
		// Abandon the scan after a handful of rows: Close must release
		// in-flight channel batches, pending out-of-order morsels, and
		// the batch currently being served.
		for i := 0; i < 5*round+1; i++ {
			if _, err := g.Next(); err != nil {
				t.Fatal(err)
			}
		}
		if err := g.Close(); err != nil {
			t.Fatal(err)
		}
		if vec.Outstanding() != base {
			t.Fatalf("round %d: %d batches still outstanding after early Close", round, vec.Outstanding()-base)
		}
	}
}

// The filter benchmarks compare the two predicate evaluation paths over
// the same batch-sized data: per-row Eval against the columnar
// FilterBatch kernel.
func BenchmarkFilterRow(b *testing.B) { benchmarkFilter(b, false) }
func BenchmarkFilterVec(b *testing.B) { benchmarkFilter(b, true) }

func benchmarkFilter(b *testing.B, vecOn bool) {
	const n = vec.DefaultBatchRows
	batch := vec.Get(2)
	defer vec.Release(batch)
	rows := make([][]types.Value, n)
	for i := 0; i < n; i++ {
		batch.Cols[0][i] = types.NewInt(int64(i))
		batch.Cols[1][i] = types.NewInt(int64((i * 7919) % n))
		rows[i] = []types.Value{batch.Cols[0][i], batch.Cols[1][i]}
	}
	batch.NRows = n
	pred := &expr.Cmp{Op: expr.GT, L: &expr.Col{Idx: 1, Name: "v"},
		R: &expr.Const{Val: types.NewInt(n / 2)}}
	var scratch expr.VecScratch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if vecOn {
			batch.Sel = nil
			if err := expr.FilterBatch(pred, batch, &scratch); err != nil {
				b.Fatal(err)
			}
			if k := batch.Active(); k != n/2-1 {
				b.Fatalf("unexpected count %d", k)
			}
		} else {
			k := 0
			for _, r := range rows {
				v, err := pred.Eval(r)
				if err != nil {
					b.Fatal(err)
				}
				if v.Truthy() {
					k++
				}
			}
			if k != n/2-1 {
				b.Fatalf("unexpected count %d", k)
			}
		}
	}
}

func BenchmarkHashRow(b *testing.B) { benchmarkHash(b, false) }
func BenchmarkHashVec(b *testing.B) { benchmarkHash(b, true) }

func benchmarkHash(b *testing.B, vecOn bool) {
	const n = vec.DefaultBatchRows
	cols := [][]types.Value{make([]types.Value, n), make([]types.Value, n)}
	rows := make([][]types.Value, n)
	for i := 0; i < n; i++ {
		cols[0][i] = types.NewInt(int64(i % 64))
		cols[1][i] = types.NewString(fmt.Sprintf("g%d", i%64))
		rows[i] = []types.Value{cols[0][i], cols[1][i]}
	}
	hashes := make([]uint64, n)
	batch := &vec.Batch{NRows: n}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if vecOn {
			hashKeyCols(cols, batch, hashes)
		} else {
			for r := 0; r < n; r++ {
				hashes[r] = hashRow(rows[r])
			}
		}
	}
}
