package exec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/engine/storage"
	"repro/internal/engine/types"
)

// Spill tuning constants. They are deliberately small: partition fan-out
// and I/O buffers are tracked against the query budget, and the smoke
// test asserts peak tracked memory stays within budget ± one 8 KiB page,
// so all fixed buffers of one spill stage must fit inside that slack.
const (
	// spillBufSize is the buffered-I/O size of one run writer or reader.
	spillBufSize = 1024
	// spillPartitions is the hash fan-out of the Grace join and the
	// spilling aggregate.
	spillPartitions = 4
	// mergeFanIn bounds how many runs one merge consumes; more runs
	// trigger intermediate merge passes.
	mergeFanIn = 6
	// maxRepartitionDepth bounds recursive re-partitioning of skewed
	// partitions; beyond it the partition is processed in memory even if
	// over budget (a single over-budget key group is irreducible).
	maxRepartitionDepth = 6
)

// partFor maps a key hash to a partition index at a re-partition depth.
// Each depth consumes a different bit range, so a skewed partition
// re-splits under a fresh view of the same hash.
func partFor(h uint64, depth int) int {
	return int((h >> (2 * uint(depth))) % spillPartitions)
}

// Run-file format (documented in DESIGN.md §5e):
//
//	run   := frame*
//	frame := uvarint(len(record)) || record
//
// where record is storage.EncodeRecord of the frame's row. The row
// layout per frame is operator-specific (sort runs prepend the evaluated
// sort keys, join/aggregate runs prepend a sequence number); the codec
// is self-describing, so readers just decode and slice.

// runFile is one finished, immutable spill run.
type runFile struct {
	ctx   *QueryCtx
	name  string
	rows  int64
	bytes int64
}

func (r *runFile) remove() { r.ctx.removeFile(r.name) }

// runWriter appends frames to a new spill file. Its buffered-I/O memory
// is tracked against the query budget for its lifetime.
type runWriter struct {
	ctx   *QueryCtx
	name  string
	f     storage.File
	bw    *bufio.Writer
	rows  int64
	bytes int64
	len   [binary.MaxVarintLen64]byte
}

// newRun creates a spill file under the per-query directory.
func (q *QueryCtx) newRun(label string) (*runWriter, error) {
	name, err := q.newFileName(label)
	if err != nil {
		return nil, err
	}
	f, err := q.vfs.Create(name)
	if err != nil {
		q.removeFile(name)
		return nil, fmt.Errorf("exec: creating spill run: %w", err)
	}
	q.Mem.Grow(spillBufSize)
	return &runWriter{ctx: q, name: name, f: f, bw: bufio.NewWriterSize(f, spillBufSize)}, nil
}

// write appends one row as a frame.
func (w *runWriter) write(row []types.Value) error {
	rec := storage.EncodeRecord(row)
	n := binary.PutUvarint(w.len[:], uint64(len(rec)))
	if _, err := w.bw.Write(w.len[:n]); err != nil {
		return err
	}
	if _, err := w.bw.Write(rec); err != nil {
		return err
	}
	w.rows++
	w.bytes += int64(n + len(rec))
	return nil
}

// finish flushes and seals the run. On error the partial file is
// removed.
func (w *runWriter) finish() (*runFile, error) {
	err := w.bw.Flush()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.ctx.Mem.Release(spillBufSize)
	if err != nil {
		w.ctx.removeFile(w.name)
		return nil, err
	}
	w.ctx.sink.addRun(w.bytes)
	return &runFile{ctx: w.ctx, name: w.name, rows: w.rows, bytes: w.bytes}, nil
}

// abort discards a run mid-write (error paths).
func (w *runWriter) abort() {
	_ = w.f.Close()
	w.ctx.Mem.Release(spillBufSize)
	w.ctx.removeFile(w.name)
}

// runReader streams frames back out of a sealed run.
type runReader struct {
	ctx *QueryCtx
	f   storage.File
	br  *bufio.Reader
	buf []byte
}

func (r *runFile) open() (*runReader, error) {
	f, err := r.ctx.vfs.Open(r.name)
	if err != nil {
		return nil, fmt.Errorf("exec: opening spill run: %w", err)
	}
	r.ctx.Mem.Grow(spillBufSize)
	return &runReader{ctx: r.ctx, f: f, br: bufio.NewReaderSize(f, spillBufSize)}, nil
}

// next decodes the next frame's row, or returns nil at end of run.
func (r *runReader) next() ([]types.Value, error) {
	ln, err := binary.ReadUvarint(r.br)
	if err == io.EOF {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("exec: reading spill frame: %w", err)
	}
	if uint64(cap(r.buf)) < ln {
		r.buf = make([]byte, ln)
	}
	buf := r.buf[:ln]
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return nil, fmt.Errorf("exec: reading spill frame: %w", err)
	}
	row, err := storage.DecodeRecord(buf)
	if err != nil {
		return nil, fmt.Errorf("exec: decoding spill frame: %w", err)
	}
	return row, nil
}

func (r *runReader) close() {
	_ = r.f.Close()
	r.ctx.Mem.Release(spillBufSize)
}

// rowStream is anything yielding rows until a nil row; run readers and
// nested merges both qualify.
type rowStream interface {
	next() ([]types.Value, error)
}

// loserTree is a k-way tournament merge over row streams. Internal nodes
// hold losers, tree[0] the current winner; advancing the winner replays
// a single leaf-to-root path, so each output row costs O(log k)
// comparisons. Ties break toward the lower stream index, which is how
// the external sort preserves stability: streams are ordered by input
// position, so equal-key rows surface in original order.
type loserTree struct {
	streams []rowStream
	heads   [][]types.Value // current front row per stream; nil = exhausted
	tree    []int           // tree[0] winner, tree[1..k-1] losers
	less    func(a, b []types.Value) bool
}

// newLoserTree primes every stream and builds the tournament. less must
// be a strict weak ordering over rows; index order settles ties.
func newLoserTree(streams []rowStream, less func(a, b []types.Value) bool) (*loserTree, error) {
	k := len(streams)
	t := &loserTree{
		streams: streams,
		heads:   make([][]types.Value, k),
		tree:    make([]int, k),
		less:    less,
	}
	for i := range streams {
		row, err := streams[i].next()
		if err != nil {
			return nil, err
		}
		t.heads[i] = row
	}
	if k == 0 {
		return t, nil
	}
	if k == 1 {
		t.tree[0] = 0
		return t, nil
	}
	// Bottom-up build: winners bubble up, losers stay at internal nodes.
	winners := make([]int, 2*k)
	for i := 0; i < k; i++ {
		winners[k+i] = i
	}
	for n := 2*k - 2; n >= 2; n -= 2 {
		w, l := t.play(winners[n], winners[n+1])
		winners[n/2] = w
		t.tree[n/2] = l
	}
	t.tree[0] = winners[1]
	return t, nil
}

// play returns (winner, loser) between two stream indexes by their
// current heads. Exhausted streams lose to live ones; equal heads and
// two exhausted streams resolve by index.
func (t *loserTree) play(a, b int) (winner, loser int) {
	ra, rb := t.heads[a], t.heads[b]
	switch {
	case ra == nil && rb == nil:
		// both exhausted: keep index order
	case ra == nil:
		return b, a
	case rb == nil:
		return a, b
	case t.less(ra, rb):
		return a, b
	case t.less(rb, ra):
		return b, a
	}
	if a < b {
		return a, b
	}
	return b, a
}

// next pops the smallest head, refills its stream, and replays its path.
func (t *loserTree) next() ([]types.Value, error) {
	if len(t.streams) == 0 {
		return nil, nil
	}
	w := t.tree[0]
	row := t.heads[w]
	if row == nil {
		return nil, nil // all streams exhausted
	}
	nr, err := t.streams[w].next()
	if err != nil {
		return nil, err
	}
	t.heads[w] = nr
	if len(t.streams) == 1 {
		return row, nil
	}
	cur := w
	for n := (len(t.streams) + w) / 2; n >= 1; n /= 2 {
		if win, _ := t.play(cur, t.tree[n]); win != cur {
			cur, t.tree[n] = t.tree[n], cur
		}
	}
	t.tree[0] = cur
	return row, nil
}

// runMerger streams a loser-tree merge over runs and owns the readers.
type runMerger struct {
	tree    *loserTree
	readers []*runReader
}

// newRunMerger opens the runs and builds the tree. On error any opened
// readers are closed.
func newRunMerger(runs []*runFile, less func(a, b []types.Value) bool) (*runMerger, error) {
	m := &runMerger{}
	streams := make([]rowStream, 0, len(runs))
	for _, r := range runs {
		rd, err := r.open()
		if err != nil {
			m.close()
			return nil, err
		}
		m.readers = append(m.readers, rd)
		streams = append(streams, rd)
	}
	tree, err := newLoserTree(streams, less)
	if err != nil {
		m.close()
		return nil, err
	}
	m.tree = tree
	return m, nil
}

func (m *runMerger) next() ([]types.Value, error) { return m.tree.next() }

func (m *runMerger) close() {
	for _, rd := range m.readers {
		rd.close()
	}
	m.readers = nil
}

// collapseRuns merges adjacent groups of runs until at most mergeFanIn
// remain, preserving run order (and therefore merge stability). Each
// round over the data counts as one merge pass. Input runs are removed
// as they are consumed; on error the merged partials are removed too.
func collapseRuns(ctx *QueryCtx, runs []*runFile, label string, less func(a, b []types.Value) bool) ([]*runFile, error) {
	for len(runs) > mergeFanIn {
		ctx.sink.addMergePass()
		next := make([]*runFile, 0, (len(runs)+mergeFanIn-1)/mergeFanIn)
		for i := 0; i < len(runs); i += mergeFanIn {
			end := i + mergeFanIn
			if end > len(runs) {
				end = len(runs)
			}
			merged, err := mergeRunsToFile(ctx, runs[i:end], label, less)
			if err != nil {
				for _, r := range next {
					r.remove()
				}
				for _, r := range runs[i:] {
					r.remove()
				}
				return nil, err
			}
			next = append(next, merged)
		}
		runs = next
	}
	return runs, nil
}

// mergeRunsToFile merges a group of runs into one new run and removes
// the inputs.
func mergeRunsToFile(ctx *QueryCtx, runs []*runFile, label string, less func(a, b []types.Value) bool) (*runFile, error) {
	m, err := newRunMerger(runs, less)
	if err != nil {
		return nil, err
	}
	defer m.close()
	w, err := ctx.newRun(label)
	if err != nil {
		return nil, err
	}
	for {
		row, err := m.next()
		if err != nil {
			w.abort()
			return nil, err
		}
		if row == nil {
			break
		}
		if err := w.write(row); err != nil {
			w.abort()
			return nil, err
		}
	}
	out, err := w.finish()
	if err != nil {
		return nil, err
	}
	for _, r := range runs {
		r.remove()
	}
	return out, nil
}

// seqLess orders rows by an int64 sequence number stored in column 0 —
// the merge order of join output and aggregate result runs.
func seqLess(a, b []types.Value) bool { return a[0].Int() < b[0].Int() }
