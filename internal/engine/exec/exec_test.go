package exec

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/engine/catalog"
	"repro/internal/engine/expr"
	"repro/internal/engine/types"
)

// buildTable creates a table of n rows: (id, grp string, val int).
func buildTable(t *testing.T, c *catalog.Catalog, name string, n int) *catalog.Table {
	t.Helper()
	tbl, err := c.CreateTable(name, []catalog.Column{
		{Name: "id", Type: types.KindInt},
		{Name: "grp", Type: types.KindString},
		{Name: "val", Type: types.KindInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		err := tbl.Insert([]types.Value{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("g%d", i%3)),
			types.NewInt(int64(i * 10)),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func col(schema *expr.RowSchema, q, n string, t *testing.T) *expr.Col {
	t.Helper()
	i, err := schema.Resolve(q, n)
	if err != nil {
		t.Fatalf("resolve %s.%s: %v", q, n, err)
	}
	return &expr.Col{Idx: i, Name: n}
}

func TestSeqScan(t *testing.T) {
	c := catalog.New(nil)
	tbl := buildTable(t, c, "t", 100)
	rows, err := Drain(NewSeqScan(tbl, "t"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 100 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[7][0].Int() != 7 {
		t.Errorf("row 7 = %v", rows[7])
	}
}

func TestSeqScanReopen(t *testing.T) {
	c := catalog.New(nil)
	tbl := buildTable(t, c, "t", 10)
	scan := NewSeqScan(tbl, "t")
	for round := 0; round < 2; round++ {
		rows, err := Drain(scan)
		if err != nil || len(rows) != 10 {
			t.Fatalf("round %d: %d rows, %v", round, len(rows), err)
		}
	}
}

func TestIndexScan(t *testing.T) {
	c := catalog.New(nil)
	tbl := buildTable(t, c, "t", 300)
	if _, err := c.CreateIndex("t", "grp"); err != nil {
		t.Fatal(err)
	}
	idx := tbl.IndexOn("grp")
	rows, err := Drain(NewIndexScan(tbl, "t", idx, types.NewString("g1")))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 100 {
		t.Fatalf("got %d rows, want 100", len(rows))
	}
	for _, r := range rows {
		if r[1].Str() != "g1" {
			t.Fatalf("wrong group: %v", r)
		}
	}
}

func TestFilter(t *testing.T) {
	c := catalog.New(nil)
	tbl := buildTable(t, c, "t", 50)
	scan := NewSeqScan(tbl, "t")
	pred := &expr.Cmp{Op: expr.LT, L: col(scan.Schema(), "t", "id", t), R: &expr.Const{Val: types.NewInt(5)}}
	rows, err := Drain(NewFilter(scan, pred))
	if err != nil || len(rows) != 5 {
		t.Fatalf("got %d rows, %v", len(rows), err)
	}
}

func TestProject(t *testing.T) {
	c := catalog.New(nil)
	tbl := buildTable(t, c, "t", 3)
	scan := NewSeqScan(tbl, "t")
	p := NewProject(scan, []expr.Expr{col(scan.Schema(), "t", "val", t)}, []string{"v"})
	rows, err := Drain(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || len(rows[0]) != 1 || rows[2][0].Int() != 20 {
		t.Fatalf("rows = %v", rows)
	}
	if p.Schema().Cols[0].Name != "v" {
		t.Errorf("schema = %v", p.Schema().Cols)
	}
}

func TestSortAscDesc(t *testing.T) {
	c := catalog.New(nil)
	tbl := buildTable(t, c, "t", 20)
	scan := NewSeqScan(tbl, "t")
	key := col(scan.Schema(), "t", "id", t)
	rows, err := Drain(NewSort(scan, []expr.Expr{key}, []bool{true}))
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].Int() != 19 || rows[19][0].Int() != 0 {
		t.Errorf("desc sort: first=%v last=%v", rows[0][0], rows[19][0])
	}
}

func TestSortMultiKey(t *testing.T) {
	schema := expr.NewRowSchema(expr.ColInfo{Name: "a"}, expr.ColInfo{Name: "b"})
	rows := [][]types.Value{
		{types.NewString("x"), types.NewInt(2)},
		{types.NewString("x"), types.NewInt(1)},
		{types.NewString("a"), types.NewInt(9)},
	}
	s := NewSort(NewValuesScan(schema, rows),
		[]expr.Expr{&expr.Col{Idx: 0, Name: "a"}, &expr.Col{Idx: 1, Name: "b"}},
		[]bool{false, false})
	got, err := Drain(s)
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0].Str() != "a" || got[1][1].Int() != 1 || got[2][1].Int() != 2 {
		t.Errorf("sorted = %v", got)
	}
}

func TestDistinct(t *testing.T) {
	schema := expr.NewRowSchema(expr.ColInfo{Name: "s"})
	rows := [][]types.Value{
		{types.NewString("a")}, {types.NewString("b")},
		{types.NewString("a")}, {types.NewString("a")},
	}
	got, err := Drain(NewDistinct(NewValuesScan(schema, rows)))
	if err != nil || len(got) != 2 {
		t.Fatalf("distinct = %v, %v", got, err)
	}
}

func joinKeys(t *testing.T, j Operator, lq, ln, rq, rn string) (expr.Expr, expr.Expr) {
	t.Helper()
	s := j.Schema()
	return col(s, lq, ln, t), col(s, rq, rn, t)
}

func TestJoinsAgree(t *testing.T) {
	c := catalog.New(nil)
	left := buildTable(t, c, "l", 60)
	right := buildTable(t, c, "r", 45)

	// Equi-join l.id = r.id: expect 45 matches.
	build := func(kind string) Operator {
		ls := NewSeqScan(left, "l")
		rs := NewSeqScan(right, "r")
		joined := expr.Concat(ls.Schema(), rs.Schema())
		lk := col(joined, "l", "id", t)
		rk := col(joined, "r", "id", t)
		switch kind {
		case "hash":
			return NewHashJoin(ls, rs, lk, rk)
		case "merge":
			return NewMergeJoin(ls, rs, lk, rk)
		default:
			return NewNestedLoopJoin(ls, rs, &expr.Cmp{Op: expr.EQ, L: lk, R: rk})
		}
	}
	var results [][][]types.Value
	for _, kind := range []string{"hash", "merge", "nlj"} {
		rows, err := Drain(build(kind))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(rows) != 45 {
			t.Fatalf("%s: %d rows, want 45", kind, len(rows))
		}
		sort.Slice(rows, func(a, b int) bool { return rows[a][0].Int() < rows[b][0].Int() })
		results = append(results, rows)
	}
	for i := range results[0] {
		for _, other := range results[1:] {
			if !rowsEqual(results[0][i], other[i]) {
				t.Fatalf("join algorithms disagree at row %d: %v vs %v", i, results[0][i], other[i])
			}
		}
	}
}

func TestJoinDuplicateKeys(t *testing.T) {
	schema := expr.NewRowSchema(expr.ColInfo{Qualifier: "a", Name: "k"})
	schemaB := expr.NewRowSchema(expr.ColInfo{Qualifier: "b", Name: "k"})
	mk := func(vals ...int64) [][]types.Value {
		var out [][]types.Value
		for _, v := range vals {
			out = append(out, []types.Value{types.NewInt(v)})
		}
		return out
	}
	// 3 x 2 duplicates of key 1 → 6 output rows; plus 1 x 1 of key 2.
	l := NewValuesScan(schema, mk(1, 1, 1, 2))
	r := NewValuesScan(schemaB, mk(1, 1, 2))
	joined := expr.Concat(schema, schemaB)
	lk := col(joined, "a", "k", t)
	rk := col(joined, "b", "k", t)
	for _, j := range []Operator{
		NewHashJoin(l, r, lk, rk),
		NewMergeJoin(l, r, lk, rk),
	} {
		rows, err := Drain(j)
		if err != nil || len(rows) != 7 {
			t.Errorf("%T: %d rows, want 7 (%v)", j, len(rows), err)
		}
	}
}

func TestJoinNullKeysNeverMatch(t *testing.T) {
	schema := expr.NewRowSchema(expr.ColInfo{Qualifier: "a", Name: "k"})
	schemaB := expr.NewRowSchema(expr.ColInfo{Qualifier: "b", Name: "k"})
	l := NewValuesScan(schema, [][]types.Value{{types.Null}, {types.NewInt(1)}})
	r := NewValuesScan(schemaB, [][]types.Value{{types.Null}, {types.NewInt(1)}})
	joined := expr.Concat(schema, schemaB)
	lk := col(joined, "a", "k", t)
	rk := col(joined, "b", "k", t)
	for _, j := range []Operator{
		NewHashJoin(l, r, lk, rk),
		NewMergeJoin(l, r, lk, rk),
	} {
		rows, err := Drain(j)
		if err != nil || len(rows) != 1 {
			t.Errorf("%T: %d rows, want 1 (%v)", j, len(rows), err)
		}
	}
}

func TestCrossProduct(t *testing.T) {
	s := expr.NewRowSchema(expr.ColInfo{Name: "x"})
	l := NewValuesScan(s, [][]types.Value{{types.NewInt(1)}, {types.NewInt(2)}})
	r := NewValuesScan(expr.NewRowSchema(expr.ColInfo{Name: "y"}),
		[][]types.Value{{types.NewInt(10)}, {types.NewInt(20)}, {types.NewInt(30)}})
	rows, err := Drain(NewNestedLoopJoin(l, r, nil))
	if err != nil || len(rows) != 6 {
		t.Fatalf("cross product = %d rows, %v", len(rows), err)
	}
}

func TestTableFuncApply(t *testing.T) {
	schema := expr.NewRowSchema(expr.ColInfo{Qualifier: "t", Name: "n"})
	input := NewValuesScan(schema, [][]types.Value{
		{types.NewInt(2)}, {types.NewInt(0)}, {types.NewInt(3)},
	})
	// repeat(n) emits n rows of n*100.
	repeat := &expr.TableFunc{
		Name: "repeat", Cols: []string{"out"}, Types: []types.Kind{types.KindInt},
		MinArgs: 1, MaxArgs: 1,
		Fn: func(args []types.Value) ([][]types.Value, error) {
			var out [][]types.Value
			for i := int64(0); i < args[0].Int(); i++ {
				out = append(out, []types.Value{types.NewInt(args[0].Int() * 100)})
			}
			return out, nil
		},
	}
	apply := NewTableFuncApply(input, repeat, []expr.Expr{&expr.Col{Idx: 0, Name: "n"}}, "r")
	rows, err := Drain(apply)
	if err != nil {
		t.Fatal(err)
	}
	// n=2 → 2 rows; n=0 → none; n=3 → 3 rows.
	if len(rows) != 5 {
		t.Fatalf("apply = %d rows, want 5", len(rows))
	}
	if rows[0][1].Int() != 200 || rows[4][1].Int() != 300 {
		t.Errorf("rows = %v", rows)
	}
	if got, err := apply.Schema().Resolve("r", "out"); err != nil || got != 1 {
		t.Errorf("schema resolve r.out = %d, %v", got, err)
	}
}

func TestHashAggregateGroups(t *testing.T) {
	c := catalog.New(nil)
	tbl := buildTable(t, c, "t", 30)
	scan := NewSeqScan(tbl, "t")
	g := col(scan.Schema(), "t", "grp", t)
	v := col(scan.Schema(), "t", "val", t)
	agg := NewHashAggregate(scan,
		[]expr.Expr{g}, []string{"grp"},
		[]AggSpec{
			{Kind: AggCount, Name: "n"},
			{Kind: AggSum, Arg: v, Name: "total"},
			{Kind: AggMin, Arg: v, Name: "lo"},
			{Kind: AggMax, Arg: v, Name: "hi"},
		})
	rows, err := Drain(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("groups = %d", len(rows))
	}
	byGrp := map[string][]types.Value{}
	for _, r := range rows {
		byGrp[r[0].Str()] = r
	}
	g0 := byGrp["g0"] // ids 0,3,...,27 → vals 0,30,...,270
	if g0[1].Int() != 10 {
		t.Errorf("count = %v", g0[1])
	}
	if g0[2].Int() != 1350 {
		t.Errorf("sum = %v", g0[2])
	}
	if g0[3].Int() != 0 || g0[4].Int() != 270 {
		t.Errorf("min/max = %v/%v", g0[3], g0[4])
	}
}

func TestHashAggregateDistinctCount(t *testing.T) {
	schema := expr.NewRowSchema(expr.ColInfo{Name: "s"})
	rows := [][]types.Value{
		{types.NewString("a")}, {types.NewString("b")},
		{types.NewString("a")}, {types.Null},
	}
	agg := NewHashAggregate(NewValuesScan(schema, rows), nil, nil,
		[]AggSpec{{Kind: AggCount, Arg: &expr.Col{Idx: 0, Name: "s"}, Distinct: true, Name: "n"}})
	got, err := Drain(agg)
	if err != nil || len(got) != 1 {
		t.Fatalf("agg = %v, %v", got, err)
	}
	// NULLs don't count; distinct over {a, b}.
	if got[0][0].Int() != 2 {
		t.Errorf("count distinct = %v", got[0][0])
	}
}

func TestHashAggregateEmptyInput(t *testing.T) {
	schema := expr.NewRowSchema(expr.ColInfo{Name: "s"})
	agg := NewHashAggregate(NewValuesScan(schema, nil), nil, nil,
		[]AggSpec{{Kind: AggCount, Name: "n"}})
	got, err := Drain(agg)
	if err != nil || len(got) != 1 || got[0][0].Int() != 0 {
		t.Fatalf("COUNT(*) over empty = %v, %v", got, err)
	}
	// With GROUP BY, empty input yields no groups.
	agg2 := NewHashAggregate(NewValuesScan(schema, nil),
		[]expr.Expr{&expr.Col{Idx: 0, Name: "s"}}, []string{"s"},
		[]AggSpec{{Kind: AggCount, Name: "n"}})
	got2, err := Drain(agg2)
	if err != nil || len(got2) != 0 {
		t.Fatalf("grouped empty = %v, %v", got2, err)
	}
}
