package exec

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/engine/catalog"
	"repro/internal/engine/expr"
	"repro/internal/engine/types"
)

// scanPipes builds dop identical MorselScan-rooted pipelines over tbl,
// optionally wrapping each scan with wrap.
func scanPipes(tbl *catalog.Table, alias string, dop int, wrap func(Operator) Operator) []Pipeline {
	pipes := make([]Pipeline, dop)
	for i := range pipes {
		leaf := NewMorselScan(tbl, alias)
		root := Operator(leaf)
		if wrap != nil {
			root = wrap(root)
		}
		pipes[i] = Pipeline{Root: root, Leaf: leaf}
	}
	return pipes
}

func TestGatherMatchesSerialOrder(t *testing.T) {
	c := catalog.New(nil)
	tbl := buildTable(t, c, "t", 3000)
	if tbl.Heap.DataPages() < 4 {
		t.Fatalf("table too small to morselize: %d pages", tbl.Heap.DataPages())
	}
	want, err := Drain(NewSeqScan(tbl, "t"))
	if err != nil {
		t.Fatal(err)
	}
	for _, dop := range []int{1, 2, 4, 7} {
		g := NewGather(scanPipes(tbl, "t", dop, nil), 1, nil)
		got, err := Drain(g)
		if err != nil {
			t.Fatalf("dop=%d: %v", dop, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("dop=%d: parallel scan order differs from serial (%d vs %d rows)",
				dop, len(got), len(want))
		}
	}
}

func TestGatherWithFilterMatchesSerial(t *testing.T) {
	c := catalog.New(nil)
	tbl := buildTable(t, c, "t", 2500)
	scan := NewSeqScan(tbl, "t")
	pred := func(sch *expr.RowSchema) expr.Expr {
		return &expr.Cmp{Op: expr.GT, L: col(sch, "t", "val", t), R: &expr.Const{Val: types.NewInt(5000)}}
	}
	want, err := Drain(NewFilter(scan, pred(scan.Schema())))
	if err != nil {
		t.Fatal(err)
	}
	g := NewGather(scanPipes(tbl, "t", 4, func(op Operator) Operator {
		return NewFilter(op, pred(op.Schema()))
	}), 2, nil)
	got, err := Drain(g)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("filtered parallel scan differs from serial: %d vs %d rows", len(got), len(want))
	}
}

func TestGatherReopen(t *testing.T) {
	c := catalog.New(nil)
	tbl := buildTable(t, c, "t", 1200)
	g := NewGather(scanPipes(tbl, "t", 3, nil), 1, nil)
	var first [][]types.Value
	for round := 0; round < 3; round++ {
		rows, err := Drain(g)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if round == 0 {
			first = rows
		} else if !reflect.DeepEqual(rows, first) {
			t.Fatalf("round %d differs from round 0", round)
		}
	}
	if len(first) != 1200 {
		t.Fatalf("got %d rows", len(first))
	}
}

// failAfter passes through until it has seen n rows, then errors.
type failAfter struct {
	Child Operator
	N     int
	seen  int
}

var errBoom = errors.New("boom")

func (f *failAfter) Schema() *expr.RowSchema { return f.Child.Schema() }
func (f *failAfter) Open() error             { return f.Child.Open() }
func (f *failAfter) Close() error            { return f.Child.Close() }
func (f *failAfter) Next() ([]types.Value, error) {
	row, err := f.Child.Next()
	if err != nil || row == nil {
		return nil, err
	}
	f.seen++
	if f.seen > f.N {
		return nil, errBoom
	}
	return row, nil
}

func TestGatherPropagatesWorkerError(t *testing.T) {
	c := catalog.New(nil)
	tbl := buildTable(t, c, "t", 2000)
	g := NewGather(scanPipes(tbl, "t", 4, func(op Operator) Operator {
		return &failAfter{Child: op, N: 100}
	}), 1, nil)
	_, err := Drain(g)
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want errBoom", err)
	}
	// The gather must still be reusable (and fail again) after an error.
	_, err = Drain(g)
	if !errors.Is(err, errBoom) {
		t.Fatalf("second run err = %v, want errBoom", err)
	}
}

func TestGatherEarlyClose(t *testing.T) {
	c := catalog.New(nil)
	tbl := buildTable(t, c, "t", 2000)
	g := NewGather(scanPipes(tbl, "t", 4, nil), 1, nil)
	if err := g.Open(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := g.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Close(); err != nil { // must not deadlock or leak workers
		t.Fatal(err)
	}
	// Reopen and drain fully.
	rows, err := Drain(g)
	if err != nil || len(rows) != 2000 {
		t.Fatalf("after early close: %d rows, %v", len(rows), err)
	}
}

// opens counts Open calls on a child operator.
type opens struct {
	Child Operator
	n     int
}

func (o *opens) Schema() *expr.RowSchema      { return o.Child.Schema() }
func (o *opens) Open() error                  { o.n++; return o.Child.Open() }
func (o *opens) Next() ([]types.Value, error) { return o.Child.Next() }
func (o *opens) Close() error                 { return o.Child.Close() }

func TestHashBuildBuildsOnceAcrossProbes(t *testing.T) {
	c := catalog.New(nil)
	left := buildTable(t, c, "l", 2000)
	right := buildTable(t, c, "r", 2000)
	if right.Heap.DataPages() < 4 {
		t.Fatalf("probe table too small: %d pages", right.Heap.DataPages())
	}

	lscan := NewSeqScan(left, "l")
	counted := &opens{Child: lscan}
	key := col(lscan.Schema(), "l", "id", t)
	build := &HashBuild{Input: counted, Key: key, BuildDOP: 4}

	pipes := scanPipes(right, "r", 4, nil)
	for i := range pipes {
		probe := pipes[i].Root
		joint := expr.Concat(lscan.Schema(), probe.Schema())
		lk := col(joint, "l", "id", t)
		rk := col(joint, "r", "id", t)
		pipes[i].Root = NewHashProbe(build, probe, lk, rk)
	}
	g := NewGather(pipes, 1, []Resettable{build})

	// Serial reference: HashJoin over the same inputs.
	ls2 := NewSeqScan(left, "l")
	rs2 := NewSeqScan(right, "r")
	joint := expr.Concat(ls2.Schema(), rs2.Schema())
	serial := NewHashJoin(ls2, rs2, col(joint, "l", "id", t), col(joint, "r", "id", t))
	want, err := Drain(serial)
	if err != nil {
		t.Fatal(err)
	}

	got, err := Drain(g)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parallel hash join differs from serial: %d vs %d rows", len(got), len(want))
	}
	if counted.n != 1 {
		t.Errorf("build input opened %d times, want 1 (shared build)", counted.n)
	}

	// Re-open: the Gather resets the build, which rebuilds exactly once.
	got, err = Drain(g)
	if err != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("second run differs: %d rows, %v", len(got), err)
	}
	if counted.n != 2 {
		t.Errorf("build input opened %d times after reopen, want 2", counted.n)
	}
}

func TestNestedLoopJoinMaterializesInnerOnce(t *testing.T) {
	c := catalog.New(nil)
	outer := buildTable(t, c, "o", 50)
	inner := buildTable(t, c, "i", 50)
	oscan := NewSeqScan(outer, "o")
	iscan := NewSeqScan(inner, "i")
	counted := &opens{Child: iscan}
	joint := expr.Concat(oscan.Schema(), iscan.Schema())
	pred := &expr.Cmp{Op: expr.EQ, L: col(joint, "o", "id", t), R: col(joint, "i", "id", t)}
	j := NewNestedLoopJoin(oscan, counted, pred)
	rows, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 50 {
		t.Fatalf("got %d rows, want 50", len(rows))
	}
	if counted.n != 1 {
		t.Errorf("inner side opened %d times, want 1 (materialized once at Open)", counted.n)
	}
}
