package exec

import (
	"repro/internal/engine/types"
)

// This file is the spill half of HashAggregate. Result runs hold frames
// of [firstSeen]++resultRow; within every run the firstSeen tags ascend,
// and tags are globally unique (one per input sequence number), so a
// loser-tree merge by tag reproduces exactly the in-memory operator's
// first-appearance emission order.

// finishSpill turns the frozen in-memory groups plus the raw-row
// partitions into the final merged result stream. groupTracked is the
// tracked memory of the in-memory groups, released as soon as their
// results are written out — so partition aggregation gets the full
// budget back and the query's peak stays ~one budget, not two.
func (h *HashAggregate) finishSpill(order []*groupAgg, parts [spillPartitions]*runFile, groupTracked int64) error {
	removeParts := func() {
		for _, p := range parts {
			if p != nil {
				p.remove()
			}
		}
	}

	// Head run: in-memory groups, already in first-appearance order, and
	// all earlier than any spilled row.
	w, err := h.Ctx.newRun("agg")
	if err != nil {
		h.Ctx.release(groupTracked)
		removeParts()
		return err
	}
	for _, ga := range order {
		frame := append([]types.Value{types.NewInt(ga.firstSeen)}, ga.result(h.Aggs)...)
		if err := w.write(frame); err != nil {
			w.abort()
			h.Ctx.release(groupTracked)
			removeParts()
			return err
		}
	}
	head, err := w.finish()
	h.Ctx.release(groupTracked)
	if err != nil {
		removeParts()
		return err
	}
	h.runs = append(h.runs, head)

	for i, p := range parts {
		if p == nil {
			continue
		}
		parts[i] = nil
		run, err := h.aggregatePartition(p, 0)
		if err != nil {
			for k := i + 1; k < spillPartitions; k++ {
				if parts[k] != nil {
					parts[k].remove()
				}
			}
			return err
		}
		if run != nil {
			h.runs = append(h.runs, run)
		}
	}

	h.runs, err = collapseRuns(h.Ctx, h.runs, "agg", seqLess)
	if err != nil {
		h.runs = nil
		return err
	}
	h.merge, err = newRunMerger(h.runs, seqLess)
	return err
}

// aggregatePartition aggregates one partition of raw [seq]++row frames
// into a single result run ascending in firstSeen. If the partition's
// group state overflows the budget it freezes creation and routes
// new-key rows to sub-partitions under the next hash-bit window,
// recursing; the sub-results merge after this level's groups, which is
// correct because a frozen level's groups were all first seen before any
// row it routed onward (frames arrive in ascending sequence). At
// maxRepartitionDepth the freeze is skipped — an irreducible skewed
// partition aggregates in memory over budget rather than recursing
// forever. The input file is always removed.
func (h *HashAggregate) aggregatePartition(file *runFile, depth int) (out *runFile, err error) {
	rd, err := file.open()
	if err != nil {
		file.remove()
		return nil, err
	}

	groups := map[uint64][]*groupAgg{}
	var order []*groupAgg
	var tracked int64
	var spillTo *partitionSet
	defer func() {
		h.Ctx.release(tracked)
		if err != nil && spillTo != nil {
			spillTo.abort()
		}
	}()

	readErr := func() error {
		for {
			frame, err := rd.next()
			if err != nil {
				return err
			}
			if frame == nil {
				return nil
			}
			seqV, row := frame[0], frame[1:]
			key := make([]types.Value, len(h.GroupBy))
			for i, g := range h.GroupBy {
				v, err := g.Eval(row)
				if err != nil {
					return err
				}
				key[i] = v
			}
			hk := hashRow(key)
			var ga *groupAgg
			for _, cand := range groups[hk] {
				if rowsEqual(cand.key, key) {
					ga = cand
					break
				}
			}
			if ga == nil {
				if spillTo != nil {
					if err := spillTo.write(partFor(hk, depth+1), frame); err != nil {
						return err
					}
					continue
				}
				ga = newGroupAgg(key, len(h.Aggs))
				ga.firstSeen = seqV.Int()
				groups[hk] = append(groups[hk], ga)
				order = append(order, ga)
				sz := groupBytes(key, len(h.Aggs))
				tracked += sz
				if !h.Ctx.grow(sz) && depth < maxRepartitionDepth {
					spillTo = newPartitionSet(h.Ctx, "agg")
				}
			}
			added, err := ga.update(h.Aggs, row)
			if err != nil {
				return err
			}
			if added != 0 {
				tracked += added
				h.Ctx.grow(added)
			}
		}
	}()
	rd.close()
	file.remove()
	if readErr != nil {
		return nil, readErr
	}

	// This level's groups, ascending in firstSeen by construction.
	w, err := h.Ctx.newRun("agg")
	if err != nil {
		return nil, err
	}
	for _, ga := range order {
		frame := append([]types.Value{types.NewInt(ga.firstSeen)}, ga.result(h.Aggs)...)
		if err := w.write(frame); err != nil {
			w.abort()
			return nil, err
		}
	}

	if spillTo == nil {
		return w.finish()
	}

	// Free this level's group state before recursing, then append the
	// merged sub-results (all later than this level's groups).
	h.Ctx.release(tracked)
	tracked = 0
	groups, order = nil, nil
	subs, err := spillTo.finish()
	spillTo = nil
	if err != nil {
		w.abort()
		return nil, err
	}
	var subRuns []*runFile
	removeSubs := func() {
		for _, r := range subRuns {
			r.remove()
		}
	}
	for i, p := range subs {
		if p == nil {
			continue
		}
		subs[i] = nil
		run, err := h.aggregatePartition(p, depth+1)
		if err != nil {
			for k := i + 1; k < spillPartitions; k++ {
				if subs[k] != nil {
					subs[k].remove()
				}
			}
			removeSubs()
			w.abort()
			return nil, err
		}
		if run != nil {
			subRuns = append(subRuns, run)
		}
	}
	m, err := newRunMerger(subRuns, seqLess)
	if err != nil {
		removeSubs()
		w.abort()
		return nil, err
	}
	for {
		frame, err := m.next()
		if err != nil {
			m.close()
			removeSubs()
			w.abort()
			return nil, err
		}
		if frame == nil {
			break
		}
		if err := w.write(frame); err != nil {
			m.close()
			removeSubs()
			w.abort()
			return nil, err
		}
	}
	m.close()
	removeSubs()
	return w.finish()
}
