package exec

import (
	"fmt"

	"repro/internal/engine/catalog"
	"repro/internal/engine/expr"
	"repro/internal/engine/storage"
	"repro/internal/engine/types"
)

// IndexedFragScan fetches the candidate rows an XADT fragment index
// produced for an indexable UDF conjunct, in heap order, and re-verifies
// the full pushed predicate on each fetched row. The index only supplies
// a superset of the matching RIDs (its keyword postings match by
// token-substring, its path postings by element presence), so the
// re-verification is what makes results exact: a lossy or conservative
// index can cost time but can never change the rows. Candidates are
// sorted by (page, slot), which is exactly SeqScan's emission order, so
// an indexed plan returns byte-identical rows to the scan it replaces.
type IndexedFragScan struct {
	Table *catalog.Table
	Alias string
	// RIDs are the candidate rows, sorted in heap order.
	RIDs []storage.RID
	// Pred is the full conjunction of pushed predicates, re-evaluated on
	// every candidate row.
	Pred expr.Expr
	// IndexDesc names the conjuncts the index answered, for EXPLAIN.
	IndexDesc string
	// Est is the planner's estimated output cardinality; advisory only.
	Est    float64
	schema *expr.RowSchema
	pos    int
}

// NewIndexedFragScan returns an indexed fragment scan.
func NewIndexedFragScan(t *catalog.Table, alias string, rids []storage.RID, pred expr.Expr, desc string) *IndexedFragScan {
	return &IndexedFragScan{
		Table: t, Alias: alias, RIDs: rids, Pred: pred, IndexDesc: desc,
		schema: tableSchema(t, alias),
	}
}

// Schema implements Operator.
func (s *IndexedFragScan) Schema() *expr.RowSchema { return s.schema }

// Open implements Operator.
func (s *IndexedFragScan) Open() error {
	s.pos = 0
	return nil
}

// Next implements Operator.
func (s *IndexedFragScan) Next() ([]types.Value, error) {
	for s.pos < len(s.RIDs) {
		row, err := s.Table.Heap.Get(s.RIDs[s.pos])
		if err != nil {
			return nil, err
		}
		s.pos++
		if s.Pred != nil {
			v, err := s.Pred.Eval(row)
			if err != nil {
				return nil, err
			}
			if !v.Truthy() {
				continue
			}
		}
		return row, nil
	}
	return nil, nil
}

// Close implements Operator.
func (s *IndexedFragScan) Close() error {
	s.pos = 0
	return nil
}

// String describes the scan for plan explanations; "[idx]" marks plans
// the XADT index rewrite produced.
func (s *IndexedFragScan) String() string {
	out := fmt.Sprintf("IndexedFragScan(%s as %s [idx: %s], %d candidates",
		s.Table.Schema.Table, s.Alias, s.IndexDesc, len(s.RIDs))
	if s.Pred != nil {
		out += fmt.Sprintf(", verify: %s", s.Pred)
	}
	return out + ")"
}
