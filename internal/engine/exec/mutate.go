package exec

import (
	"fmt"

	"repro/internal/engine/catalog"
	"repro/internal/engine/expr"
	"repro/internal/engine/storage"
	"repro/internal/engine/types"
)

// MutationLog receives one redo record per applied row mutation, in
// apply order. *wal.Batch satisfies it structurally; a nil log runs the
// mutation without durability (in-memory stores, tests).
type MutationLog interface {
	Insert(table string, row []types.Value) error
	Update(table string, rid storage.RID, row []types.Value) error
	Delete(table string, rid storage.RID) error
}

// mutationSchema is the one-row output of every mutation operator: the
// number of rows affected.
func mutationSchema() *expr.RowSchema {
	return expr.NewRowSchema(expr.ColInfo{Name: "count", Type: types.KindInt})
}

// countOp is the shared skeleton of the mutation operators: Open applies
// the whole mutation, Next emits a single affected-row count.
type countOp struct {
	count int64
	done  bool
}

func (c *countOp) Schema() *expr.RowSchema { return mutationSchema() }

func (c *countOp) Next() ([]types.Value, error) {
	if c.done {
		return nil, nil
	}
	c.done = true
	return []types.Value{types.NewInt(c.count)}, nil
}

// Close implements Operator.
func (c *countOp) Close() error { return nil }

// InsertOp appends pre-evaluated rows to a table. The planner has
// already folded the VALUES expressions to constants and null-filled
// missing columns, so Open only validates against the schema (via
// Table.Insert) and logs each row.
type InsertOp struct {
	countOp
	Table *catalog.Table
	Rows  [][]types.Value
	Log   MutationLog
}

// Open implements Operator: it applies the insert.
func (op *InsertOp) Open() error {
	op.count, op.done = 0, false
	for _, row := range op.Rows {
		if err := op.Table.Insert(row); err != nil {
			return err
		}
		if op.Log != nil {
			if err := op.Log.Insert(op.Table.Schema.Table, row); err != nil {
				return err
			}
		}
		op.count++
	}
	return nil
}

// collectMatches gathers the RIDs (and rows) matching the operator's
// predicate, in heap order — phase one of the two-phase mutation
// discipline that avoids the Halloween problem: the row set is fixed
// before any row changes. With an index access path the candidate RIDs
// come from the B+tree (already heap-ordered) and the full predicate is
// re-verified on every fetched row, so index use never changes results.
func collectMatches(t *catalog.Table, idx *catalog.Index, key types.Value, pred expr.Expr) ([]storage.RID, [][]types.Value, error) {
	var rids []storage.RID
	var rows [][]types.Value
	if idx != nil {
		for _, rid := range idx.Tree.Lookup(key) {
			row, err := t.Heap.Get(rid)
			if err != nil {
				return nil, nil, err
			}
			ok, err := matches(pred, row)
			if err != nil {
				return nil, nil, err
			}
			if ok {
				rids = append(rids, rid)
				rows = append(rows, row)
			}
		}
		return rids, rows, nil
	}
	err := t.Heap.Scan(func(rid storage.RID, row []types.Value) error {
		ok, err := matches(pred, row)
		if err != nil {
			return err
		}
		if ok {
			rids = append(rids, rid)
			rows = append(rows, row)
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return rids, rows, nil
}

func matches(pred expr.Expr, row []types.Value) (bool, error) {
	if pred == nil {
		return true, nil
	}
	v, err := pred.Eval(row)
	if err != nil {
		return false, err
	}
	return v.Truthy(), nil
}

// DeleteOp removes the rows matching Pred from a table. Index and Key
// optionally narrow the collect phase to a B+tree equality's candidates;
// Pred is always the complete WHERE predicate.
type DeleteOp struct {
	countOp
	Table *catalog.Table
	Pred  expr.Expr
	Index *catalog.Index
	Key   types.Value
	Log   MutationLog
}

// Open implements Operator: it applies the delete.
func (op *DeleteOp) Open() error {
	op.count, op.done = 0, false
	rids, _, err := collectMatches(op.Table, op.Index, op.Key, op.Pred)
	if err != nil {
		return err
	}
	for _, rid := range rids {
		if _, err := op.Table.DeleteRID(rid); err != nil {
			return err
		}
		if op.Log != nil {
			if err := op.Log.Delete(op.Table.Schema.Table, rid); err != nil {
				return err
			}
		}
		op.count++
	}
	return nil
}

// SetCol is one pre-evaluated column assignment of an UPDATE.
type SetCol struct {
	Idx int
	Val types.Value
}

// UpdateOp rewrites the matching rows with the assignments in Set. The
// logged redo record carries the row's pre-update RID and its full new
// image; replaying it through Table.UpdateRID reproduces any row
// movement deterministically.
type UpdateOp struct {
	countOp
	Table *catalog.Table
	Pred  expr.Expr
	Index *catalog.Index
	Key   types.Value
	Set   []SetCol
	Log   MutationLog
}

// Open implements Operator: it applies the update.
func (op *UpdateOp) Open() error {
	op.count, op.done = 0, false
	// Validate assignments up front so the apply phase cannot fail
	// part-way on a type error.
	for _, s := range op.Set {
		col := op.Table.Schema.Columns[s.Idx]
		if !s.Val.IsNull() && s.Val.Kind() != col.Type {
			return fmt.Errorf("exec: SET %s expects %v, got %v", col.Name, col.Type, s.Val.Kind())
		}
	}
	rids, rows, err := collectMatches(op.Table, op.Index, op.Key, op.Pred)
	if err != nil {
		return err
	}
	for i, rid := range rids {
		row := append([]types.Value(nil), rows[i]...)
		for _, s := range op.Set {
			row[s.Idx] = s.Val
		}
		if _, err := op.Table.UpdateRID(rid, row); err != nil {
			return err
		}
		if op.Log != nil {
			if err := op.Log.Update(op.Table.Schema.Table, rid, row); err != nil {
				return err
			}
		}
		op.count++
	}
	return nil
}
