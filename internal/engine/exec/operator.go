// Package exec implements the physical operators of the engine as Volcano
// iterators: sequential and index scans, filter, project, nested-loop /
// hash / sort-merge joins, sort, distinct, hash aggregation, and the
// lateral table-function apply that powers the unnest UDF.
package exec

import (
	"repro/internal/engine/expr"
	"repro/internal/engine/types"
)

// Operator is a pull-based physical operator.
type Operator interface {
	// Schema describes the rows the operator produces.
	Schema() *expr.RowSchema
	// Open prepares the operator; it must be called before Next.
	Open() error
	// Next returns the next row, or nil at end of stream.
	Next() ([]types.Value, error)
	// Close releases resources. An operator may be re-opened after Close.
	Close() error
}

// Drain runs an operator to completion and collects its rows.
func Drain(op Operator) ([][]types.Value, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out [][]types.Value
	for {
		row, err := op.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			return out, nil
		}
		out = append(out, row)
	}
}

// concatRows builds a joined output row.
func concatRows(l, r []types.Value) []types.Value {
	out := make([]types.Value, 0, len(l)+len(r))
	out = append(out, l...)
	out = append(out, r...)
	return out
}
