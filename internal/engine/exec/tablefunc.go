package exec

import (
	"repro/internal/engine/expr"
	"repro/internal/engine/types"
)

// TableFuncApply is the lateral apply that implements TABLE(f(args))
// items in FROM: for every input row it evaluates the argument
// expressions (which may reference the input's columns — the correlation
// the paper's unnest query relies on), invokes the table function, and
// emits the input row concatenated with each output row.
type TableFuncApply struct {
	Child Operator
	Func  *expr.TableFunc
	Args  []expr.Expr // resolved against the child's schema
	Alias string
	// Filter, when set by the pushdown rule, is a predicate over the
	// apply's output schema evaluated before each joined row is
	// materialized: rejected combinations never allocate an output row.
	Filter expr.Expr
	schema *expr.RowSchema

	childRow []types.Value
	outRows  [][]types.Value
	pos      int
	scratch  []types.Value
}

// NewTableFuncApply wraps child with a lateral table-function invocation
// bound under alias.
func NewTableFuncApply(child Operator, fn *expr.TableFunc, args []expr.Expr, alias string) *TableFuncApply {
	cols := make([]expr.ColInfo, len(fn.Cols))
	for i, name := range fn.Cols {
		cols[i] = expr.ColInfo{Qualifier: alias, Name: name, Type: fn.Types[i]}
	}
	return &TableFuncApply{
		Child: child, Func: fn, Args: args, Alias: alias,
		schema: expr.Concat(child.Schema(), expr.NewRowSchema(cols...)),
	}
}

// Schema implements Operator.
func (t *TableFuncApply) Schema() *expr.RowSchema { return t.schema }

// Open implements Operator.
func (t *TableFuncApply) Open() error {
	t.childRow = nil
	t.outRows = nil
	t.pos = 0
	return t.Child.Open()
}

// Next implements Operator.
func (t *TableFuncApply) Next() ([]types.Value, error) {
	for {
		if t.pos < len(t.outRows) {
			outRow := t.outRows[t.pos]
			t.pos++
			if t.Filter != nil {
				// Evaluate over a reused scratch row so rejected
				// combinations cost no allocation.
				t.scratch = append(append(t.scratch[:0], t.childRow...), outRow...)
				v, err := t.Filter.Eval(t.scratch)
				if err != nil {
					return nil, err
				}
				if !v.Truthy() {
					continue
				}
			}
			return concatRows(t.childRow, outRow), nil
		}
		row, err := t.Child.Next()
		if err != nil || row == nil {
			return nil, err
		}
		args := make([]types.Value, len(t.Args))
		for i, a := range t.Args {
			v, err := a.Eval(row)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		outs, err := t.Func.Fn(args)
		if err != nil {
			return nil, err
		}
		t.childRow = row
		t.outRows = outs
		t.pos = 0
	}
}

// Close implements Operator.
func (t *TableFuncApply) Close() error {
	t.outRows = nil
	return t.Child.Close()
}
