package exec

import (
	"sort"

	"repro/internal/engine/expr"
	"repro/internal/engine/types"
)

// NestedLoopJoin joins by evaluating a predicate over every pair. The
// right input is materialized once. A nil predicate yields the cross
// product — which the lateral table-function apply and disconnected FROM
// lists need.
type NestedLoopJoin struct {
	Left, Right Operator
	Pred        expr.Expr // may be nil (cross product)
	// Est is the planner's estimated output cardinality; advisory only.
	Est    float64
	schema *expr.RowSchema
	rightRows   [][]types.Value
	leftRow     []types.Value
	rpos        int
}

// NewNestedLoopJoin joins left and right on pred.
func NewNestedLoopJoin(left, right Operator, pred expr.Expr) *NestedLoopJoin {
	return &NestedLoopJoin{
		Left: left, Right: right, Pred: pred,
		schema: expr.Concat(left.Schema(), right.Schema()),
	}
}

// Schema implements Operator.
func (j *NestedLoopJoin) Schema() *expr.RowSchema { return j.schema }

// Open materializes the right side.
func (j *NestedLoopJoin) Open() error {
	rows, err := Drain(j.Right)
	if err != nil {
		return err
	}
	j.rightRows = rows
	j.leftRow = nil
	j.rpos = 0
	return j.Left.Open()
}

// Next implements Operator.
func (j *NestedLoopJoin) Next() ([]types.Value, error) {
	for {
		if j.leftRow == nil {
			row, err := j.Left.Next()
			if err != nil || row == nil {
				return nil, err
			}
			j.leftRow = row
			j.rpos = 0
		}
		for j.rpos < len(j.rightRows) {
			right := j.rightRows[j.rpos]
			j.rpos++
			out := concatRows(j.leftRow, right)
			if j.Pred == nil {
				return out, nil
			}
			v, err := j.Pred.Eval(out)
			if err != nil {
				return nil, err
			}
			if v.Truthy() {
				return out, nil
			}
		}
		j.leftRow = nil
	}
}

// Close implements Operator.
func (j *NestedLoopJoin) Close() error {
	j.rightRows = nil
	return j.Left.Close()
}

// HashJoin is an equi-join: it builds a hash table on the left input's
// key and probes with the right input. With a QueryCtx whose budget the
// build side exceeds, it switches to a Grace-style partitioned join
// (see graceJoin in spilljoin.go) with byte-identical output order.
//
// Both key expressions must be resolved against the concatenated
// (left ++ right) schema; a left key therefore has column indices within
// the left width and can be evaluated on a bare left row.
type HashJoin struct {
	Left, Right       Operator
	LeftKey, RightKey expr.Expr
	// Ctx enables Grace spilling under its memory budget; nil keeps the
	// unbounded in-memory build.
	Ctx *QueryCtx
	// Est is the planner's estimated output cardinality; advisory only.
	Est float64

	schema    *expr.RowSchema
	table     map[uint64][][]types.Value
	probeRow  []types.Value
	matches   [][]types.Value
	mpos      int
	tracked   int64
	rightOpen bool
	grace     *graceJoin
}

// NewHashJoin joins left and right where leftKey = rightKey.
func NewHashJoin(left, right Operator, leftKey, rightKey expr.Expr) *HashJoin {
	return &HashJoin{
		Left: left, Right: right, LeftKey: leftKey, RightKey: rightKey,
		schema: expr.Concat(left.Schema(), right.Schema()),
	}
}

// Schema implements Operator.
func (j *HashJoin) Schema() *expr.RowSchema { return j.schema }

// Open builds the hash table from the left input, or runs the whole
// partitioned join when the build side overflows the budget.
func (j *HashJoin) Open() error {
	j.discard()
	if err := j.Left.Open(); err != nil {
		return err
	}
	var rows [][]types.Value
	var tracked int64
	for {
		row, err := j.Left.Next()
		if err != nil {
			j.Left.Close()
			j.Ctx.release(tracked)
			return err
		}
		if row == nil {
			break
		}
		sz := rowBytes(row)
		rows = append(rows, row)
		tracked += sz
		if !j.Ctx.grow(sz) {
			// Build side over budget: hand everything to the Grace join,
			// which drains the still-open left input into partitions
			// (releasing the buffered rows' memory as it flushes them)
			// and consumes the right side entirely during Open.
			err := j.spill(rows)
			j.Left.Close()
			return err
		}
	}
	j.Left.Close()
	j.tracked = tracked
	j.table = make(map[uint64][][]types.Value, len(rows))
	for _, row := range rows {
		k, err := j.LeftKey.Eval(row)
		if err != nil {
			j.discard()
			return err
		}
		if k.IsNull() {
			continue // NULL keys never join
		}
		h := types.Hash(k)
		j.table[h] = append(j.table[h], row)
	}
	j.probeRow = nil
	j.matches = nil
	j.mpos = 0
	if err := j.Right.Open(); err != nil {
		j.discard()
		return err
	}
	j.rightOpen = true
	return nil
}

// Next implements Operator.
func (j *HashJoin) Next() ([]types.Value, error) {
	if j.grace != nil {
		return j.grace.next()
	}
	for {
		for j.mpos < len(j.matches) {
			left := j.matches[j.mpos]
			j.mpos++
			out := concatRows(left, j.probeRow)
			// Re-check key equality to guard against hash collisions.
			lk, err := j.LeftKey.Eval(out)
			if err != nil {
				return nil, err
			}
			rk, err := j.RightKey.Eval(out)
			if err != nil {
				return nil, err
			}
			if types.Equal(lk, rk) {
				return out, nil
			}
		}
		row, err := j.Right.Next()
		if err != nil || row == nil {
			return nil, err
		}
		j.probeRow = row
		// The right key is resolved against the joined schema; build a
		// padded row for evaluation.
		padded := concatRows(make([]types.Value, leftWidth(j)), row)
		k, err := j.RightKey.Eval(padded)
		if err != nil {
			return nil, err
		}
		if k.IsNull() {
			j.matches = nil
			j.mpos = 0
			continue
		}
		j.matches = j.table[types.Hash(k)]
		j.mpos = 0
	}
}

func leftWidth(j *HashJoin) int { return len(j.Left.Schema().Cols) }

// discard drops the hash table / grace state and their tracked memory.
func (j *HashJoin) discard() {
	j.table = nil
	j.matches = nil
	j.probeRow = nil
	j.mpos = 0
	j.Ctx.release(j.tracked)
	j.tracked = 0
	if j.grace != nil {
		j.grace.discard()
		j.grace = nil
	}
}

// Close implements Operator.
func (j *HashJoin) Close() error {
	j.discard()
	j.Ctx.notePeak()
	if j.rightOpen {
		j.rightOpen = false
		return j.Right.Close()
	}
	return nil
}

// MergeJoin is an equi-join that sorts both inputs on their keys and
// merges matching groups — the O(n log n) alternative the paper contrasts
// with nested loops. Key expressions follow the HashJoin convention: both
// are resolved against the concatenated schema.
type MergeJoin struct {
	Left, Right       Operator
	LeftKey, RightKey expr.Expr
	// Est is the planner's estimated output cardinality; advisory only.
	Est    float64
	schema *expr.RowSchema
	out    [][]types.Value
	pos    int
}

// NewMergeJoin joins left and right where leftKey = rightKey.
func NewMergeJoin(left, right Operator, leftKey, rightKey expr.Expr) *MergeJoin {
	return &MergeJoin{
		Left: left, Right: right, LeftKey: leftKey, RightKey: rightKey,
		schema: expr.Concat(left.Schema(), right.Schema()),
	}
}

// Schema implements Operator.
func (j *MergeJoin) Schema() *expr.RowSchema { return j.schema }

// keyedRows evaluates a key over rows and returns them sorted by key,
// NULL keys removed.
func keyedRows(rows [][]types.Value, key func([]types.Value) (types.Value, error)) ([][]types.Value, []types.Value, error) {
	type pair struct {
		row []types.Value
		key types.Value
	}
	pairs := make([]pair, 0, len(rows))
	for _, row := range rows {
		k, err := key(row)
		if err != nil {
			return nil, nil, err
		}
		if k.IsNull() {
			continue
		}
		pairs = append(pairs, pair{row: row, key: k})
	}
	sort.SliceStable(pairs, func(a, b int) bool {
		return types.Compare(pairs[a].key, pairs[b].key) < 0
	})
	outRows := make([][]types.Value, len(pairs))
	outKeys := make([]types.Value, len(pairs))
	for i, p := range pairs {
		outRows[i] = p.row
		outKeys[i] = p.key
	}
	return outRows, outKeys, nil
}

// Open materializes, sorts, and merges both inputs.
func (j *MergeJoin) Open() error {
	leftRows, err := Drain(j.Left)
	if err != nil {
		return err
	}
	rightRows, err := Drain(j.Right)
	if err != nil {
		return err
	}
	lw := len(j.Left.Schema().Cols)
	ls, lk, err := keyedRows(leftRows, func(r []types.Value) (types.Value, error) {
		return j.LeftKey.Eval(r)
	})
	if err != nil {
		return err
	}
	rs, rk, err := keyedRows(rightRows, func(r []types.Value) (types.Value, error) {
		return j.RightKey.Eval(concatRows(make([]types.Value, lw), r))
	})
	if err != nil {
		return err
	}
	j.out = nil
	li, ri := 0, 0
	for li < len(ls) && ri < len(rs) {
		c := types.Compare(lk[li], rk[ri])
		switch {
		case c < 0:
			li++
		case c > 0:
			ri++
		default:
			// Emit the full group cross product.
			lEnd := li
			for lEnd < len(ls) && types.Equal(lk[lEnd], lk[li]) {
				lEnd++
			}
			rEnd := ri
			for rEnd < len(rs) && types.Equal(rk[rEnd], rk[ri]) {
				rEnd++
			}
			for a := li; a < lEnd; a++ {
				for b := ri; b < rEnd; b++ {
					j.out = append(j.out, concatRows(ls[a], rs[b]))
				}
			}
			li, ri = lEnd, rEnd
		}
	}
	j.pos = 0
	return nil
}

// Next implements Operator.
func (j *MergeJoin) Next() ([]types.Value, error) {
	if j.pos >= len(j.out) {
		return nil, nil
	}
	row := j.out[j.pos]
	j.pos++
	return row, nil
}

// Close implements Operator.
func (j *MergeJoin) Close() error {
	j.out = nil
	return nil
}
