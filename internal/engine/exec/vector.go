// Batch-at-a-time execution support: the BatchOperator contract, the
// batch→row adapter shim that keeps every vectorized operator usable
// from the row-at-a-time Operator interface, and the inline FNV-1a hash
// kernel that hashes whole key columns per batch.
//
// The planner (plan.vectorize) flips the Vec flag on operators whose
// subtree can produce batches; everything else — row-only operators such
// as TableFuncApply, the spill paths, sorts — consumes vectorized
// children through the shim, so the refactor needs no parallel operator
// tree and plans keep their seed shapes.
package exec

import (
	"repro/internal/engine/types"
	"repro/internal/engine/vec"
)

// BatchOperator is an Operator that can also produce whole row batches.
// For one Open, a consumer uses either Next or NextBatch, never both.
// The returned batch is owned by the producer and valid only until the
// next NextBatch or Close call; a nil batch means end of stream. A
// returned batch may have no active rows.
type BatchOperator interface {
	Operator
	NextBatch() (*vec.Batch, error)
}

// rowShim adapts a batch producer to row-at-a-time Next: it gathers one
// active row per call from the producer's current batch, advancing to
// the next batch as needed. Each returned row is freshly allocated and
// caller-owned, matching row-engine semantics.
type rowShim struct {
	b   *vec.Batch
	pos int
}

func (s *rowShim) reset() { s.b, s.pos = nil, 0 }

func (s *rowShim) next(src func() (*vec.Batch, error)) ([]types.Value, error) {
	for {
		if s.b != nil && s.pos < s.b.Active() {
			row := s.b.Row(s.pos, nil)
			s.pos++
			return row, nil
		}
		b, err := src()
		if err != nil {
			return nil, err
		}
		if b == nil {
			s.b = nil
			return nil, nil
		}
		s.b, s.pos = b, 0
	}
}

// hashKeyCols computes hashRow over pre-evaluated key columns for every
// active row of the batch, writing the combined hash for physical row i
// into hashes[i]. It is bit-identical to hashRow over the gathered key.
func hashKeyCols(keyCols [][]types.Value, b *vec.Batch, hashes []uint64) {
	if b.Sel == nil {
		for i := 0; i < b.NRows; i++ {
			var h uint64 = 1469598103934665603
			for _, kc := range keyCols {
				h ^= types.Hash(kc[i])
				h *= 1099511628211
			}
			hashes[i] = h
		}
		return
	}
	for _, i := range b.Sel {
		var h uint64 = 1469598103934665603
		for _, kc := range keyCols {
			h ^= types.Hash(kc[i])
			h *= 1099511628211
		}
		hashes[i] = h
	}
}

// batchCapable reports whether op produces batches when asked: it
// implements BatchOperator and its Vec flag is on.
func batchCapable(op Operator) bool {
	switch n := op.(type) {
	case *SeqScan:
		return n.Vec
	case *MorselScan:
		return n.Vec
	case *ValuesScan:
		return n.Vec
	case *Filter:
		return n.Vec
	case *Project:
		return n.Vec
	case *Limit:
		return n.Vec
	case *Gather:
		return n.Vec
	}
	return false
}
