// Parallel (intra-query) execution: a morsel-driven scan, the
// Gather exchange operator that fans a pipeline out across workers, and
// a shared hash-join build.
//
// Design: the planner clones a scan-rooted pipeline once per worker
// (expressions are cloned with expr.Clone so per-instance state is never
// shared) and roots every clone at a MorselScan. At runtime the Gather's
// workers pull page-range morsels from one atomic MorselSource, run
// their pipeline over each morsel, and post the resulting row batch
// tagged with the morsel's sequence number. Gather reassembles batches
// in sequence order, so a parallel plan emits rows in exactly the order
// the serial plan would — parallelism is observable only as speed.
package exec

import (
	"fmt"
	"sync"

	"repro/internal/engine/catalog"
	"repro/internal/engine/expr"
	"repro/internal/engine/storage"
	"repro/internal/engine/types"
	"repro/internal/engine/vec"
)

// MorselScan reads one page range of a table at a time. It is the leaf
// of a parallel pipeline: the owning Gather re-targets it with SetRange
// for every morsel its worker claims. A fused predicate (the parallel
// twin of SeqScan.Pred) runs inside the worker, so pushed-down filters
// parallelize across morsels. With Vec set it decodes page runs
// column-major into a pooled batch, exactly like SeqScan.
type MorselScan struct {
	Table  *catalog.Table
	Alias  string
	Pred expr.Expr // optional, resolved against the scan schema
	Vec  bool
	// Est is the planner's estimated output cardinality for the whole
	// scan (copied from the SeqScan it replaces); advisory only.
	Est    float64
	schema *expr.RowSchema
	lo, hi int
	cursor *storage.Cursor

	batch   *vec.Batch
	scratch expr.VecScratch
	shim    rowShim
}

// NewMorselScan returns a morsel-ranged scan of the table under the
// alias. The range is empty until SetRange.
func NewMorselScan(t *catalog.Table, alias string) *MorselScan {
	return &MorselScan{Table: t, Alias: alias, schema: tableSchema(t, alias)}
}

// SetRange targets the scan at pages [lo, hi) for the next Open.
func (s *MorselScan) SetRange(lo, hi int) { s.lo, s.hi = lo, hi }

// Schema implements Operator.
func (s *MorselScan) Schema() *expr.RowSchema { return s.schema }

// Open implements Operator.
func (s *MorselScan) Open() error {
	s.cursor = s.Table.Heap.NewRangeCursor(s.lo, s.hi)
	s.shim.reset()
	if s.Vec && s.batch == nil {
		s.batch = vec.Get(len(s.schema.Cols))
	}
	return nil
}

// NextBatch implements BatchOperator.
func (s *MorselScan) NextBatch() (*vec.Batch, error) {
	b := s.batch
	n, err := s.cursor.NextBatch(b.Cols, b.Cap())
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	b.NRows, b.Sel = n, nil
	if s.Pred != nil {
		if err := expr.FilterBatch(s.Pred, b, &s.scratch); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// Next implements Operator.
func (s *MorselScan) Next() ([]types.Value, error) {
	if s.Vec {
		return s.shim.next(s.NextBatch)
	}
	for {
		_, row, ok, err := s.cursor.Next()
		if err != nil || !ok {
			return nil, err
		}
		if s.Pred != nil {
			v, err := s.Pred.Eval(row)
			if err != nil {
				return nil, err
			}
			if !v.Truthy() {
				continue
			}
		}
		return row, nil
	}
}

// Close implements Operator.
func (s *MorselScan) Close() error {
	s.cursor = nil
	vec.Release(s.batch)
	s.batch = nil
	s.shim.reset()
	return nil
}

// String describes the scan for plan explanations.
func (s *MorselScan) String() string {
	suffix := ""
	if s.Vec {
		suffix = " [vec]"
	}
	if s.Pred != nil {
		return fmt.Sprintf("MorselScan(%s as %s, filter: %s)%s", s.Table.Schema.Table, s.Alias, s.Pred, suffix)
	}
	return fmt.Sprintf("MorselScan(%s as %s)%s", s.Table.Schema.Table, s.Alias, suffix)
}

// Pipeline is one worker's copy of a parallelized plan fragment: the
// cloned operator chain and the MorselScan at its leaf.
type Pipeline struct {
	Root Operator
	Leaf *MorselScan
}

// Resettable is per-execution shared state (e.g. a shared hash-join
// build) that a Gather resets when it is re-opened.
type Resettable interface{ Reset() }

// morselBatch is the fully evaluated output of one morsel: rows when the
// pipeline ran row-at-a-time, pooled column batches when it ran
// vectorized. The batches are owned by whoever holds the morselBatch and
// must be released exactly once.
type morselBatch struct {
	seq     int
	rows    [][]types.Value
	batches []*vec.Batch
	err     error
}

// releaseBatches returns every batch of a morsel to the pool.
func releaseBatches(bs []*vec.Batch) {
	for _, b := range bs {
		vec.Release(b)
	}
}

// drainBatches runs a batch-capable pipeline to completion over its
// current morsel, compacting each produced batch into a pooled copy that
// can cross the worker→Gather channel. On error no batches are returned
// (partial output is released).
func drainBatches(op Operator) ([]*vec.Batch, error) {
	bop := op.(BatchOperator)
	if err := op.Open(); err != nil {
		return nil, err
	}
	var out []*vec.Batch
	fail := func(err error) ([]*vec.Batch, error) {
		op.Close()
		releaseBatches(out)
		return nil, err
	}
	for {
		b, err := bop.NextBatch()
		if err != nil {
			return fail(err)
		}
		if b == nil {
			break
		}
		if b.Active() == 0 {
			continue
		}
		nb := vec.Get(len(b.Cols))
		vec.CompactInto(nb, b)
		out = append(out, nb)
	}
	if err := op.Close(); err != nil {
		releaseBatches(out)
		return nil, err
	}
	return out, nil
}

// DisableGatherReorder, when true, makes every Gather serve batches in
// arrival order instead of morsel-sequence order — deliberately breaking
// the ordering contract documented below. It exists only so the
// differential harness (internal/difftest, repro -sabotage) can prove it
// detects a corrupted configuration; never enable it outside tests.
var DisableGatherReorder = false

// Gather is the exchange operator: it runs N worker pipelines over a
// shared MorselSource and merges their output back into one pull-based
// stream, preserving Operator semantics so operators above it compose
// unchanged. Output order is the serial scan order (batches are
// reassembled by morsel sequence), so plans behave identically at every
// degree of parallelism.
type Gather struct {
	Pipes []Pipeline
	// MorselPages overrides the pages-per-morsel unit; 0 uses
	// storage.DefaultMorselPages.
	MorselPages int
	// Shared is per-execution state reused by all workers (hash builds,
	// materialized join inners); it is reset on every Open.
	Shared []Resettable
	// Vec makes the workers drain their pipelines batch-at-a-time and
	// Gather forward whole batches; set by the planner only when every
	// pipeline root is batch-capable.
	Vec bool

	schema *expr.RowSchema

	src     *storage.MorselSource
	ch      chan morselBatch
	cancel  chan struct{}
	pending map[int]morselBatch
	nextSeq int
	cur     [][]types.Value
	pos     int
	err     error
	drained bool

	curBatches []*vec.Batch
	bpos       int
	shim       rowShim
}

// NewGather builds the exchange over worker pipelines. All pipelines
// must be clones of the same fragment (identical schemas, same scanned
// table).
func NewGather(pipes []Pipeline, morselPages int, shared []Resettable) *Gather {
	if len(pipes) == 0 {
		panic("exec: Gather needs at least one pipeline")
	}
	return &Gather{
		Pipes:       pipes,
		MorselPages: morselPages,
		Shared:      shared,
		schema:      pipes[0].Root.Schema(),
	}
}

// DOP returns the gather's degree of parallelism.
func (g *Gather) DOP() int { return len(g.Pipes) }

// Schema implements Operator.
func (g *Gather) Schema() *expr.RowSchema { return g.schema }

// Open starts the worker pool.
func (g *Gather) Open() error {
	for _, s := range g.Shared {
		s.Reset()
	}
	heap := g.Pipes[0].Leaf.Table.Heap
	g.src = storage.NewMorselSource(heap.DataPages(), g.MorselPages)
	g.ch = make(chan morselBatch, 2*len(g.Pipes))
	g.cancel = make(chan struct{})
	g.pending = make(map[int]morselBatch)
	g.nextSeq, g.cur, g.pos = 0, nil, 0
	g.curBatches, g.bpos = nil, 0
	g.shim.reset()
	g.err = nil
	g.drained = false

	var wg sync.WaitGroup
	for _, p := range g.Pipes {
		wg.Add(1)
		go g.worker(p, &wg)
	}
	ch := g.ch
	go func() {
		wg.Wait()
		close(ch)
	}()
	return nil
}

// worker claims morsels until the source runs dry, running the pipeline
// over each and posting the batch.
func (g *Gather) worker(p Pipeline, wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		m, ok := g.src.Next()
		if !ok {
			return
		}
		p.Leaf.SetRange(m.Lo, m.Hi)
		var (
			rows    [][]types.Value
			batches []*vec.Batch
			err     error
		)
		if g.Vec {
			batches, err = drainBatches(p.Root)
		} else {
			rows, err = Drain(p.Root)
		}
		if err != nil {
			// Stop handing out work; in-flight morsels on other workers
			// finish so every claimed sequence number gets a batch.
			g.src.Abort()
		}
		select {
		case g.ch <- morselBatch{seq: m.Seq, rows: rows, batches: batches, err: err}:
		case <-g.cancel:
			releaseBatches(batches)
			return
		}
		if err != nil {
			return
		}
	}
}

// Next implements Operator: it serves rows from the current batch and
// otherwise advances to the next batch in morsel order. A vectorized
// Gather serves rows through the batch→row shim instead.
func (g *Gather) Next() ([]types.Value, error) {
	if g.Vec {
		return g.shim.next(g.NextBatch)
	}
	for {
		if g.err != nil {
			return nil, g.err
		}
		if g.pos < len(g.cur) {
			row := g.cur[g.pos]
			g.pos++
			return row, nil
		}
		if b, ok := g.takePending(); ok {
			if b.err != nil {
				g.err = b.err
				return nil, g.err
			}
			g.cur, g.pos = b.rows, 0
			g.nextSeq++
			continue
		}
		if g.drained {
			// Channel closed and the next sequence never arrived: either
			// the scan is complete, or a worker failed on an earlier
			// morsel (its error batch was consumed above), or it exited
			// on cancel. Surface any straggler error; otherwise EOF.
			for _, b := range g.pending {
				if b.err != nil {
					g.err = b.err
					return nil, g.err
				}
			}
			return nil, nil
		}
		b, ok := <-g.ch
		if !ok {
			g.drained = true
			continue
		}
		g.pending[b.seq] = b
	}
}

// NextBatch implements BatchOperator: it hands out the queued batches of
// each morsel in sequence order. The batch returned by the previous call
// is released here, honouring the valid-until-next-call contract.
func (g *Gather) NextBatch() (*vec.Batch, error) {
	if g.bpos > 0 {
		vec.Release(g.curBatches[g.bpos-1])
		g.curBatches[g.bpos-1] = nil
	}
	for {
		if g.err != nil {
			return nil, g.err
		}
		if g.bpos < len(g.curBatches) {
			b := g.curBatches[g.bpos]
			g.bpos++
			return b, nil
		}
		g.curBatches, g.bpos = nil, 0
		if b, ok := g.takePending(); ok {
			if b.err != nil {
				releaseBatches(b.batches)
				g.err = b.err
				return nil, g.err
			}
			g.curBatches = b.batches
			g.nextSeq++
			continue
		}
		if g.drained {
			for _, b := range g.pending {
				if b.err != nil {
					g.err = b.err
					return nil, g.err
				}
			}
			return nil, nil
		}
		b, ok := <-g.ch
		if !ok {
			g.drained = true
			continue
		}
		g.pending[b.seq] = b
	}
}

// takePending removes and returns the next batch to serve: the batch for
// nextSeq normally, or any pending batch when DisableGatherReorder is on.
func (g *Gather) takePending() (morselBatch, bool) {
	if DisableGatherReorder {
		for seq, b := range g.pending {
			delete(g.pending, seq)
			return b, true
		}
		return morselBatch{}, false
	}
	b, ok := g.pending[g.nextSeq]
	if ok {
		delete(g.pending, g.nextSeq)
	}
	return b, ok
}

// Close stops the workers and releases batches. Workers finish their
// in-flight morsel; subsequent sends land in the closed-over channel
// drain below, and no new morsels are claimed. Every pooled batch still
// queued — in the channel, the pending map, or the current morsel — goes
// back to the pool here.
func (g *Gather) Close() error {
	if g.cancel != nil {
		g.src.Abort()
		close(g.cancel)
		for b := range g.ch { // unblock senders until the closer closes ch
			releaseBatches(b.batches)
		}
		g.cancel = nil
	}
	for _, b := range g.pending {
		releaseBatches(b.batches)
	}
	g.pending = nil
	g.cur = nil
	releaseBatches(g.curBatches) // already-released slots are nil
	g.curBatches, g.bpos = nil, 0
	g.shim.reset()
	return nil
}

// String describes the exchange for plan explanations.
func (g *Gather) String() string {
	if g.Vec {
		return fmt.Sprintf("Gather(dop=%d) [vec]", len(g.Pipes))
	}
	return fmt.Sprintf("Gather(dop=%d)", len(g.Pipes))
}

// HashBuild is the once-per-execution build side of a parallelized hash
// join, shared by every worker's HashProbe. The first Table() call
// drains the build input and assembles the hash table — hashing the
// build keys across BuildDOP goroutines — and later calls return the
// same table, so N probe workers pay for one build.
type HashBuild struct {
	// Input produces the build rows; it may itself contain a Gather.
	Input Operator
	// Key computes the join key over a build row.
	Key expr.Expr
	// BuildDOP bounds the key-hashing workers (1 = serial build).
	BuildDOP int

	mu    sync.Mutex
	built bool
	table map[uint64][][]types.Value
	err   error
}

// Reset discards the built table so the next Table() call rebuilds —
// called by the owning Gather when the plan is re-opened.
func (b *HashBuild) Reset() {
	b.mu.Lock()
	b.built = false
	b.table = nil
	b.err = nil
	b.mu.Unlock()
}

// Table returns the hash table, building it on first call. Safe for
// concurrent use; losers of the race block until the build completes.
func (b *HashBuild) Table() (map[uint64][][]types.Value, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.built {
		b.table, b.err = b.build()
		b.built = true
	}
	return b.table, b.err
}

// parallelBuildThreshold is the minimum build cardinality for which
// fanning the key hashing out is worth the goroutine handoff.
const parallelBuildThreshold = 1024

// build drains the input and hashes the keys, in parallel when the
// build side is large enough. Insertion order into the table matches the
// serial HashJoin build exactly, so probe match order is identical.
func (b *HashBuild) build() (map[uint64][][]types.Value, error) {
	rows, err := Drain(b.Input)
	if err != nil {
		return nil, err
	}
	hashes := make([]uint64, len(rows))
	keep := make([]bool, len(rows))
	dop := b.BuildDOP
	if dop > len(rows)/parallelBuildThreshold {
		dop = len(rows) / parallelBuildThreshold
	}
	if dop < 1 {
		dop = 1
	}
	if dop == 1 {
		if err := hashKeys(b.Key, rows, hashes, keep); err != nil {
			return nil, err
		}
	} else {
		errs := make([]error, dop)
		var wg sync.WaitGroup
		chunk := (len(rows) + dop - 1) / dop
		for w := 0; w < dop; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > len(rows) {
				hi = len(rows)
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				errs[w] = hashKeys(expr.Clone(b.Key), rows[lo:hi], hashes[lo:hi], keep[lo:hi])
			}(w, lo, hi)
		}
		wg.Wait()
		for _, e := range errs {
			if e != nil {
				return nil, e
			}
		}
	}
	table := make(map[uint64][][]types.Value, len(rows))
	for i, row := range rows {
		if keep[i] {
			table[hashes[i]] = append(table[hashes[i]], row)
		}
	}
	return table, nil
}

// hashKeys evaluates key over each row, recording the hash and whether
// the row participates (NULL keys never join).
func hashKeys(key expr.Expr, rows [][]types.Value, hashes []uint64, keep []bool) error {
	for i, row := range rows {
		k, err := key.Eval(row)
		if err != nil {
			return err
		}
		if k.IsNull() {
			continue
		}
		hashes[i] = types.Hash(k)
		keep[i] = true
	}
	return nil
}

// HashProbe is the per-worker probe side of a parallelized hash join:
// it streams its (cloned) probe input against the shared HashBuild. Its
// semantics mirror HashJoin exactly — including the collision re-check
// of the key equality on the joined row.
type HashProbe struct {
	Build             *HashBuild
	Right             Operator
	LeftKey, RightKey expr.Expr
	// LeftWidth is the column count of the build schema; probe keys are
	// resolved against the concatenated (build ++ probe) schema.
	LeftWidth int

	schema   *expr.RowSchema
	table    map[uint64][][]types.Value
	probeRow []types.Value
	matches  [][]types.Value
	mpos     int
}

// NewHashProbe builds the probe operator over a shared build.
func NewHashProbe(build *HashBuild, right Operator, leftKey, rightKey expr.Expr) *HashProbe {
	return &HashProbe{
		Build: build, Right: right, LeftKey: leftKey, RightKey: rightKey,
		LeftWidth: len(build.Input.Schema().Cols),
		schema:    expr.Concat(build.Input.Schema(), right.Schema()),
	}
}

// Schema implements Operator.
func (j *HashProbe) Schema() *expr.RowSchema { return j.schema }

// Open fetches the shared table (building it if this worker is first)
// and opens the probe input.
func (j *HashProbe) Open() error {
	table, err := j.Build.Table()
	if err != nil {
		return err
	}
	j.table = table
	j.probeRow = nil
	j.matches = nil
	j.mpos = 0
	return j.Right.Open()
}

// Next implements Operator.
func (j *HashProbe) Next() ([]types.Value, error) {
	for {
		for j.mpos < len(j.matches) {
			left := j.matches[j.mpos]
			j.mpos++
			out := concatRows(left, j.probeRow)
			// Re-check key equality to guard against hash collisions.
			lk, err := j.LeftKey.Eval(out)
			if err != nil {
				return nil, err
			}
			rk, err := j.RightKey.Eval(out)
			if err != nil {
				return nil, err
			}
			if types.Equal(lk, rk) {
				return out, nil
			}
		}
		row, err := j.Right.Next()
		if err != nil || row == nil {
			return nil, err
		}
		j.probeRow = row
		padded := concatRows(make([]types.Value, j.LeftWidth), row)
		k, err := j.RightKey.Eval(padded)
		if err != nil {
			return nil, err
		}
		if k.IsNull() {
			j.matches = nil
			j.mpos = 0
			continue
		}
		j.matches = j.table[types.Hash(k)]
		j.mpos = 0
	}
}

// Close implements Operator.
func (j *HashProbe) Close() error {
	j.table = nil
	j.matches = nil
	return j.Right.Close()
}

// String describes the probe for plan explanations.
func (j *HashProbe) String() string {
	return fmt.Sprintf("HashProbe(%s = %s)", j.LeftKey, j.RightKey)
}
