package exec

import (
	"fmt"

	"repro/internal/engine/expr"
	"repro/internal/engine/types"
)

// AggKind enumerates the aggregate functions of the executor.
type AggKind int

// Aggregate kinds.
const (
	AggCount AggKind = iota
	AggSum
	AggMin
	AggMax
)

// AggSpec describes one aggregate output of a HashAggregate.
type AggSpec struct {
	Kind AggKind
	// Arg is the aggregated expression; nil means COUNT(*).
	Arg expr.Expr
	// Distinct restricts the aggregate to distinct argument values.
	Distinct bool
	// Name is the output column name.
	Name string
}

// HashAggregate groups its input by the group expressions and computes
// the aggregate specs per group. Its output schema is the group columns
// followed by the aggregate columns. With no group expressions it
// produces exactly one row (the implicit single group), even on empty
// input.
type HashAggregate struct {
	Child      Operator
	GroupBy    []expr.Expr
	GroupNames []string
	Aggs       []AggSpec
	schema     *expr.RowSchema

	out [][]types.Value
	pos int
}

type aggState struct {
	groupKey []types.Value
	count    int64
	sum      int64
	min, max types.Value
	seen     map[uint64][]types.Value // distinct tracking
	present  bool                     // any input row reached this state
}

// NewHashAggregate builds an aggregation operator.
func NewHashAggregate(child Operator, groupBy []expr.Expr, groupNames []string, aggs []AggSpec) *HashAggregate {
	cols := make([]expr.ColInfo, 0, len(groupBy)+len(aggs))
	for _, n := range groupNames {
		cols = append(cols, expr.ColInfo{Name: n})
	}
	for _, a := range aggs {
		cols = append(cols, expr.ColInfo{Name: a.Name})
	}
	return &HashAggregate{
		Child: child, GroupBy: groupBy, GroupNames: groupNames, Aggs: aggs,
		schema: expr.NewRowSchema(cols...),
	}
}

// Schema implements Operator.
func (h *HashAggregate) Schema() *expr.RowSchema { return h.schema }

// Open consumes the input and materializes the aggregated groups.
func (h *HashAggregate) Open() error {
	if err := h.Child.Open(); err != nil {
		return err
	}
	defer h.Child.Close()

	groups := map[uint64][]*groupAgg{}
	var order []*groupAgg
	for {
		row, err := h.Child.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		key := make([]types.Value, len(h.GroupBy))
		for i, g := range h.GroupBy {
			v, err := g.Eval(row)
			if err != nil {
				return err
			}
			key[i] = v
		}
		hk := hashRow(key)
		var ga *groupAgg
		for _, cand := range groups[hk] {
			if rowsEqual(cand.key, key) {
				ga = cand
				break
			}
		}
		if ga == nil {
			ga = newGroupAgg(key, len(h.Aggs))
			groups[hk] = append(groups[hk], ga)
			order = append(order, ga)
		}
		if err := ga.update(h.Aggs, row); err != nil {
			return err
		}
	}
	if len(h.GroupBy) == 0 && len(order) == 0 {
		// Implicit single group over empty input.
		order = append(order, newGroupAgg(nil, len(h.Aggs)))
	}
	h.out = make([][]types.Value, 0, len(order))
	for _, ga := range order {
		h.out = append(h.out, ga.result(h.Aggs))
	}
	h.pos = 0
	return nil
}

type groupAgg struct {
	key    []types.Value
	states []aggState
}

func newGroupAgg(key []types.Value, naggs int) *groupAgg {
	ga := &groupAgg{key: key, states: make([]aggState, naggs)}
	for i := range ga.states {
		ga.states[i].min = types.Null
		ga.states[i].max = types.Null
	}
	return ga
}

func (ga *groupAgg) update(aggs []AggSpec, row []types.Value) error {
	for i, spec := range aggs {
		st := &ga.states[i]
		var v types.Value
		if spec.Arg != nil {
			var err error
			v, err = spec.Arg.Eval(row)
			if err != nil {
				return err
			}
			if v.IsNull() {
				continue // aggregates skip NULLs
			}
		}
		if spec.Distinct {
			if st.seen == nil {
				st.seen = map[uint64][]types.Value{}
			}
			hv := types.Hash(v)
			dup := false
			for _, prev := range st.seen[hv] {
				if types.Equal(prev, v) {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			st.seen[hv] = append(st.seen[hv], v)
		}
		st.present = true
		switch spec.Kind {
		case AggCount:
			st.count++
		case AggSum:
			if v.Kind() != types.KindInt {
				return fmt.Errorf("exec: SUM over non-integer %v", v.Kind())
			}
			st.sum += v.Int()
		case AggMin:
			if st.min.IsNull() || types.Compare(v, st.min) < 0 {
				st.min = v
			}
		case AggMax:
			if st.max.IsNull() || types.Compare(v, st.max) > 0 {
				st.max = v
			}
		}
	}
	return nil
}

func (ga *groupAgg) result(aggs []AggSpec) []types.Value {
	out := make([]types.Value, 0, len(ga.key)+len(aggs))
	out = append(out, ga.key...)
	for i, spec := range aggs {
		st := &ga.states[i]
		switch spec.Kind {
		case AggCount:
			out = append(out, types.NewInt(st.count))
		case AggSum:
			if !st.present {
				out = append(out, types.Null)
			} else {
				out = append(out, types.NewInt(st.sum))
			}
		case AggMin:
			out = append(out, st.min)
		case AggMax:
			out = append(out, st.max)
		}
	}
	return out
}

// Next implements Operator.
func (h *HashAggregate) Next() ([]types.Value, error) {
	if h.pos >= len(h.out) {
		return nil, nil
	}
	row := h.out[h.pos]
	h.pos++
	return row, nil
}

// Close implements Operator.
func (h *HashAggregate) Close() error {
	h.out = nil
	return nil
}
