package exec

import (
	"fmt"

	"repro/internal/engine/expr"
	"repro/internal/engine/types"
	"repro/internal/engine/vec"
)

// AggKind enumerates the aggregate functions of the executor.
type AggKind int

// Aggregate kinds.
const (
	AggCount AggKind = iota
	AggSum
	AggMin
	AggMax
)

// AggSpec describes one aggregate output of a HashAggregate.
type AggSpec struct {
	Kind AggKind
	// Arg is the aggregated expression; nil means COUNT(*).
	Arg expr.Expr
	// Distinct restricts the aggregate to distinct argument values.
	Distinct bool
	// Name is the output column name.
	Name string
}

// HashAggregate groups its input by the group expressions and computes
// the aggregate specs per group. Its output schema is the group columns
// followed by the aggregate columns. With no group expressions it
// produces exactly one row (the implicit single group), even on empty
// input.
//
// Groups are emitted in first-appearance order. With a QueryCtx, group
// state is tracked against the memory budget; on overflow, group
// creation freezes — rows matching an existing in-memory group keep
// absorbing, rows introducing new keys are hash-partitioned to spill
// runs and aggregated per partition afterwards (see spillagg.go). Every
// group therefore lives entirely in memory or entirely in one partition
// chain, which keeps DISTINCT aggregates exact, and first-seen sequence
// tags restore the exact in-memory emission order.
type HashAggregate struct {
	Child      Operator
	GroupBy    []expr.Expr
	GroupNames []string
	Aggs       []AggSpec
	// Ctx enables spilling under its memory budget; nil keeps the
	// unbounded in-memory path.
	Ctx *QueryCtx
	// Vec consumes the child batch-at-a-time: group keys and aggregate
	// arguments are evaluated column-wise and hashed with the batch hash
	// kernel. Only the unbounded in-memory path vectorizes — the planner
	// sets Vec only when Ctx is nil and the child produces batches.
	Vec bool

	schema *expr.RowSchema

	out     [][]types.Value
	pos     int
	tracked int64
	merge   *runMerger
	runs    []*runFile
}

type aggState struct {
	groupKey []types.Value
	count    int64
	sum      int64
	min, max types.Value
	seen     map[uint64][]types.Value // distinct tracking
	present  bool                     // any input row reached this state
}

// NewHashAggregate builds an aggregation operator.
func NewHashAggregate(child Operator, groupBy []expr.Expr, groupNames []string, aggs []AggSpec) *HashAggregate {
	cols := make([]expr.ColInfo, 0, len(groupBy)+len(aggs))
	for _, n := range groupNames {
		cols = append(cols, expr.ColInfo{Name: n})
	}
	for _, a := range aggs {
		cols = append(cols, expr.ColInfo{Name: a.Name})
	}
	return &HashAggregate{
		Child: child, GroupBy: groupBy, GroupNames: groupNames, Aggs: aggs,
		schema: expr.NewRowSchema(cols...),
	}
}

// Schema implements Operator.
func (h *HashAggregate) Schema() *expr.RowSchema { return h.schema }

// Open consumes the input and materializes the aggregated groups,
// spilling new-key rows to partitions when group state overflows the
// budget.
func (h *HashAggregate) Open() (err error) {
	if h.Vec && h.Ctx == nil && batchCapable(h.Child) {
		return h.openVec()
	}
	h.discard()
	defer func() {
		if err != nil {
			h.discard()
		}
	}()
	if err := h.Child.Open(); err != nil {
		return err
	}
	defer h.Child.Close()

	groups := map[uint64][]*groupAgg{}
	var order []*groupAgg
	var groupTracked int64
	var spillTo *partitionSet // non-nil once group creation froze
	var seq int64
	for {
		row, err := h.Child.Next()
		if err != nil {
			if spillTo != nil {
				spillTo.abort()
			}
			h.Ctx.release(groupTracked)
			return err
		}
		if row == nil {
			break
		}
		s := seq
		seq++
		key := make([]types.Value, len(h.GroupBy))
		for i, g := range h.GroupBy {
			v, err := g.Eval(row)
			if err != nil {
				if spillTo != nil {
					spillTo.abort()
				}
				h.Ctx.release(groupTracked)
				return err
			}
			key[i] = v
		}
		hk := hashRow(key)
		var ga *groupAgg
		for _, cand := range groups[hk] {
			if rowsEqual(cand.key, key) {
				ga = cand
				break
			}
		}
		if ga == nil {
			if spillTo != nil {
				// Group creation is frozen: spill the raw row, tagged
				// with its sequence, to the key's partition.
				frame := append([]types.Value{types.NewInt(s)}, row...)
				if err := spillTo.write(partFor(hk, 0), frame); err != nil {
					spillTo.abort()
					h.Ctx.release(groupTracked)
					return err
				}
				continue
			}
			ga = newGroupAgg(key, len(h.Aggs))
			ga.firstSeen = s
			groups[hk] = append(groups[hk], ga)
			order = append(order, ga)
			sz := groupBytes(key, len(h.Aggs))
			groupTracked += sz
			if !h.Ctx.grow(sz) {
				spillTo = newPartitionSet(h.Ctx, "agg")
			}
		}
		added, err := ga.update(h.Aggs, row)
		if err != nil {
			if spillTo != nil {
				spillTo.abort()
			}
			h.Ctx.release(groupTracked)
			return err
		}
		if added != 0 {
			groupTracked += added
			h.Ctx.grow(added)
		}
	}
	if len(h.GroupBy) == 0 && len(order) == 0 {
		// Implicit single group over empty input.
		order = append(order, newGroupAgg(nil, len(h.Aggs)))
	}

	if spillTo == nil {
		h.out = make([][]types.Value, 0, len(order))
		for _, ga := range order {
			h.out = append(h.out, ga.result(h.Aggs))
		}
		h.pos = 0
		h.tracked = groupTracked
		return nil
	}

	// Spill mode: stream the in-memory groups' results to a head run
	// (their firstSeen tags all precede every spilled row's sequence),
	// aggregate each partition into its own ascending result run, and
	// merge everything back by first appearance.
	parts, err := spillTo.finish()
	if err != nil {
		h.Ctx.release(groupTracked)
		return err
	}
	return h.finishSpill(order, parts, groupTracked)
}

// openVec is the batch-at-a-time consume loop of the unbounded in-memory
// path: per child batch, group keys and aggregate arguments are
// evaluated column-wise, keys are hashed with the batch hash kernel
// (bit-identical to hashRow, so bucket layout matches the row path), and
// each active row folds into its group via the shared updateOne core.
// Group emission order is first appearance, exactly as in Open.
func (h *HashAggregate) openVec() (err error) {
	h.discard()
	defer func() {
		if err != nil {
			h.discard()
		}
	}()
	if err := h.Child.Open(); err != nil {
		return err
	}
	defer h.Child.Close()

	bchild := h.Child.(BatchOperator)
	groups := map[uint64][]*groupAgg{}
	var order []*groupAgg
	var scratch expr.VecScratch
	nkeys := len(h.GroupBy)
	keyCols := make([][]types.Value, nkeys)
	for i := range keyCols {
		keyCols[i] = make([]types.Value, vec.DefaultBatchRows)
	}
	argCols := make([][]types.Value, len(h.Aggs))
	for i, spec := range h.Aggs {
		if spec.Arg != nil {
			argCols[i] = make([]types.Value, vec.DefaultBatchRows)
		}
	}
	hashes := make([]uint64, vec.DefaultBatchRows)
	var seq int64
	for {
		b, err := bchild.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		if b.Active() == 0 {
			continue
		}
		for i, g := range h.GroupBy {
			if err := expr.EvalBatch(g, b, keyCols[i], &scratch); err != nil {
				return err
			}
		}
		hashKeyCols(keyCols, b, hashes)
		for i, spec := range h.Aggs {
			if spec.Arg != nil {
				if err := expr.EvalBatch(spec.Arg, b, argCols[i], &scratch); err != nil {
					return err
				}
			}
		}
		na := b.Active()
		for o := 0; o < na; o++ {
			r := b.RowIdx(o)
			hk := hashes[r]
			var ga *groupAgg
			for _, cand := range groups[hk] {
				if keyColsEqual(cand.key, keyCols, r) {
					ga = cand
					break
				}
			}
			if ga == nil {
				key := make([]types.Value, nkeys)
				for i := range keyCols {
					key[i] = keyCols[i][r]
				}
				ga = newGroupAgg(key, len(h.Aggs))
				ga.firstSeen = seq
				groups[hk] = append(groups[hk], ga)
				order = append(order, ga)
			}
			seq++
			if err := ga.updateCols(h.Aggs, argCols, r); err != nil {
				return err
			}
		}
	}
	if len(h.GroupBy) == 0 && len(order) == 0 {
		// Implicit single group over empty input.
		order = append(order, newGroupAgg(nil, len(h.Aggs)))
	}
	h.out = make([][]types.Value, 0, len(order))
	for _, ga := range order {
		h.out = append(h.out, ga.result(h.Aggs))
	}
	h.pos = 0
	return nil
}

// keyColsEqual reports whether the materialized group key equals the key
// columns at physical row r, with rowsEqual semantics.
func keyColsEqual(key []types.Value, keyCols [][]types.Value, r int) bool {
	for i := range key {
		if !types.Equal(key[i], keyCols[i][r]) {
			return false
		}
	}
	return true
}

type groupAgg struct {
	key       []types.Value
	firstSeen int64
	states    []aggState
}

// groupBytes is the tracked cost of one group's key and aggregate
// states.
func groupBytes(key []types.Value, naggs int) int64 {
	return rowBytes(key) + 64 + 48*int64(naggs)
}

func newGroupAgg(key []types.Value, naggs int) *groupAgg {
	ga := &groupAgg{key: key, states: make([]aggState, naggs)}
	for i := range ga.states {
		ga.states[i].min = types.Null
		ga.states[i].max = types.Null
	}
	return ga
}

// update folds one row into the group. It returns the tracked bytes the
// group grew by (distinct-value sets are the only unbounded state).
func (ga *groupAgg) update(aggs []AggSpec, row []types.Value) (int64, error) {
	var added int64
	for i, spec := range aggs {
		var v types.Value
		hasArg := spec.Arg != nil
		if hasArg {
			var err error
			v, err = spec.Arg.Eval(row)
			if err != nil {
				return added, err
			}
		}
		d, err := ga.states[i].updateOne(spec, v, hasArg)
		added += d
		if err != nil {
			return added, err
		}
	}
	return added, nil
}

// updateCols folds physical row r into the group, reading pre-evaluated
// aggregate arguments from argCols — the batch twin of update. Memory is
// not tracked; the vectorized path never runs under a budget.
func (ga *groupAgg) updateCols(aggs []AggSpec, argCols [][]types.Value, r int) error {
	for i, spec := range aggs {
		var v types.Value
		hasArg := spec.Arg != nil
		if hasArg {
			v = argCols[i][r]
		}
		if _, err := ga.states[i].updateOne(spec, v, hasArg); err != nil {
			return err
		}
	}
	return nil
}

// updateOne folds one argument value into a single aggregate state — the
// shared core of the row and batch paths. v is meaningful only when
// hasArg is true (COUNT(*) has no argument). It returns the tracked
// bytes the state grew by.
func (st *aggState) updateOne(spec AggSpec, v types.Value, hasArg bool) (int64, error) {
	if hasArg && v.IsNull() {
		return 0, nil // aggregates skip NULLs
	}
	var added int64
	if spec.Distinct {
		if st.seen == nil {
			st.seen = map[uint64][]types.Value{}
		}
		hv := types.Hash(v)
		for _, prev := range st.seen[hv] {
			if types.Equal(prev, v) {
				return added, nil
			}
		}
		st.seen[hv] = append(st.seen[hv], v)
		added += 32 + int64(v.Size())
	}
	st.present = true
	switch spec.Kind {
	case AggCount:
		st.count++
	case AggSum:
		if v.Kind() != types.KindInt {
			return added, fmt.Errorf("exec: SUM over non-integer %v", v.Kind())
		}
		st.sum += v.Int()
	case AggMin:
		if st.min.IsNull() || types.Compare(v, st.min) < 0 {
			st.min = v
		}
	case AggMax:
		if st.max.IsNull() || types.Compare(v, st.max) > 0 {
			st.max = v
		}
	}
	return added, nil
}

func (ga *groupAgg) result(aggs []AggSpec) []types.Value {
	out := make([]types.Value, 0, len(ga.key)+len(aggs))
	out = append(out, ga.key...)
	for i, spec := range aggs {
		st := &ga.states[i]
		switch spec.Kind {
		case AggCount:
			out = append(out, types.NewInt(st.count))
		case AggSum:
			if !st.present {
				out = append(out, types.Null)
			} else {
				out = append(out, types.NewInt(st.sum))
			}
		case AggMin:
			out = append(out, st.min)
		case AggMax:
			out = append(out, st.max)
		}
	}
	return out
}

// Next implements Operator.
func (h *HashAggregate) Next() ([]types.Value, error) {
	if h.merge != nil {
		row, err := h.merge.next()
		if err != nil || row == nil {
			return nil, err
		}
		return row[1:], nil // strip the firstSeen tag
	}
	if h.pos >= len(h.out) {
		return nil, nil
	}
	row := h.out[h.pos]
	h.pos++
	return row, nil
}

// discard drops materialized output, spill runs, and tracked memory.
func (h *HashAggregate) discard() {
	h.out = nil
	h.pos = 0
	if h.merge != nil {
		h.merge.close()
		h.merge = nil
	}
	for _, r := range h.runs {
		r.remove()
	}
	h.runs = nil
	h.Ctx.release(h.tracked)
	h.tracked = 0
}

// Close implements Operator.
func (h *HashAggregate) Close() error {
	h.discard()
	h.Ctx.notePeak()
	return nil
}
