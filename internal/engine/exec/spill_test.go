package exec

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/engine/expr"
	"repro/internal/engine/storage"
	"repro/internal/engine/types"
)

// spillCtx builds a QueryCtx over an in-memory VFS with its own sink,
// so every test observes exactly its own spill activity.
func spillCtx(budget int64) (*QueryCtx, *SpillSink, *storage.MemVFS) {
	fs := storage.NewMemVFS()
	sink := &SpillSink{}
	return NewQueryCtx(budget, fs, "spill", sink), sink, fs
}

// spillFiles lists the *.spill files currently present in fs.
func spillFiles(fs *storage.MemVFS) []string {
	var out []string
	for _, n := range fs.Names() {
		if strings.HasSuffix(n, ".spill") {
			out = append(out, n)
		}
	}
	return out
}

// sortInput builds n rows (id, val, pad) with val cycling through mod
// distinct values — duplicate sort keys whose id column exposes any
// instability.
func sortInput(n, mod int) (*expr.RowSchema, [][]types.Value) {
	schema := expr.NewRowSchema(
		expr.ColInfo{Name: "id"}, expr.ColInfo{Name: "val"}, expr.ColInfo{Name: "pad"})
	rows := make([][]types.Value, n)
	for i := 0; i < n; i++ {
		rows[i] = []types.Value{
			types.NewInt(int64(i)),
			types.NewInt(int64((i * 7) % mod)),
			types.NewString(fmt.Sprintf("pad-%04d", i)),
		}
	}
	return schema, rows
}

// externalSort drains a budgeted Sort over rows and asserts no spill
// files leak past Close.
func externalSort(t *testing.T, budget int64, schema *expr.RowSchema, rows [][]types.Value) ([][]types.Value, SpillStats) {
	t.Helper()
	ctx, sink, fs := spillCtx(budget)
	s := NewSort(NewValuesScan(schema, rows),
		[]expr.Expr{&expr.Col{Idx: 1, Name: "val"}}, []bool{false})
	s.Ctx = ctx
	got, err := Drain(s)
	if err != nil {
		t.Fatalf("external sort (budget %d): %v", budget, err)
	}
	if leaked := spillFiles(fs); len(leaked) != 0 {
		t.Fatalf("spill files leaked after Close: %v", leaked)
	}
	if used := ctx.Mem.Used(); used != 0 {
		t.Fatalf("tracked memory leaked after Close: %d bytes", used)
	}
	return got, sink.Stats()
}

func TestExternalSortMatchesInMemory(t *testing.T) {
	schema, rows := sortInput(500, 17)
	ref := NewSort(NewValuesScan(schema, rows),
		[]expr.Expr{&expr.Col{Idx: 1, Name: "val"}}, []bool{false})
	want, err := Drain(ref)
	if err != nil {
		t.Fatal(err)
	}
	// Budget 1: every row overflows, one run per row, forcing multiple
	// intermediate merge passes (500 runs at fan-in 6).
	got, stats := externalSort(t, 1, schema, rows)
	if stats.Runs == 0 || stats.MergePasses < 1 {
		t.Fatalf("expected spill runs and merge passes, got %+v", stats)
	}
	if len(got) != len(want) {
		t.Fatalf("row counts differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if !rowsEqual(got[i], want[i]) {
			t.Fatalf("row %d differs (stability broken): %v vs %v", i, got[i], want[i])
		}
	}
}

func TestExternalSortEmptyInput(t *testing.T) {
	schema, _ := sortInput(0, 1)
	got, stats := externalSort(t, 1, schema, nil)
	if len(got) != 0 {
		t.Fatalf("empty input produced %d rows", len(got))
	}
	if stats.Runs != 0 {
		t.Fatalf("empty input wrote %d runs", stats.Runs)
	}
}

// trackedSortBytes mirrors Sort.Open's accounting: per row, the row
// itself plus its evaluated key vector.
func trackedSortBytes(rows [][]types.Value) int64 {
	var total int64
	for _, r := range rows {
		total += rowBytes(r) + rowBytes([]types.Value{r[1]})
	}
	return total
}

func TestExternalSortExactBudgetStaysInMemory(t *testing.T) {
	schema, rows := sortInput(40, 7)
	// The budget contract is "grow, then spill if over": an input that
	// lands exactly on the budget never overflows it.
	got, stats := externalSort(t, trackedSortBytes(rows), schema, rows)
	if stats.Runs != 0 {
		t.Fatalf("exactly-budget input spilled %d runs", stats.Runs)
	}
	if len(got) != len(rows) {
		t.Fatalf("got %d rows, want %d", len(got), len(rows))
	}
}

func TestExternalSortSingleRun(t *testing.T) {
	schema, rows := sortInput(40, 7)
	// One byte under the total: the overflow fires on the last row, the
	// whole input seals as a single run, and Next merges k=1 streams.
	got, stats := externalSort(t, trackedSortBytes(rows)-1, schema, rows)
	if stats.Runs != 1 {
		t.Fatalf("want exactly 1 run, got %d", stats.Runs)
	}
	if stats.MergePasses != 0 {
		t.Fatalf("single run needed %d merge passes", stats.MergePasses)
	}
	ref := NewSort(NewValuesScan(schema, rows),
		[]expr.Expr{&expr.Col{Idx: 1, Name: "val"}}, []bool{false})
	want, err := Drain(ref)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !rowsEqual(got[i], want[i]) {
			t.Fatalf("row %d differs: %v vs %v", i, got[i], want[i])
		}
	}
}

// sliceStream adapts a row slice to the merge's rowStream interface.
type sliceStream struct {
	rows [][]types.Value
	pos  int
}

func (s *sliceStream) next() ([]types.Value, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, nil
}

func intStream(vals ...int64) rowStream {
	rows := make([][]types.Value, len(vals))
	for i, v := range vals {
		rows[i] = []types.Value{types.NewInt(v)}
	}
	return &sliceStream{rows: rows}
}

func drainTree(t *testing.T, lt *loserTree) []int64 {
	t.Helper()
	var out []int64
	for {
		row, err := lt.next()
		if err != nil {
			t.Fatal(err)
		}
		if row == nil {
			return out
		}
		out = append(out, row[0].Int())
	}
}

func TestLoserTreeBoundaries(t *testing.T) {
	less := func(a, b []types.Value) bool { return a[0].Int() < b[0].Int() }

	empty, err := newLoserTree(nil, less)
	if err != nil {
		t.Fatal(err)
	}
	if got := drainTree(t, empty); len(got) != 0 {
		t.Fatalf("zero streams yielded %v", got)
	}

	one, err := newLoserTree([]rowStream{intStream(3, 1, 2)}, less)
	if err != nil {
		t.Fatal(err)
	}
	// A single stream passes through untouched (already run-sorted by
	// the caller's contract; the tree must not reorder or drop).
	if got := drainTree(t, one); fmt.Sprint(got) != "[3 1 2]" {
		t.Fatalf("single stream = %v", got)
	}

	many, err := newLoserTree([]rowStream{
		intStream(1, 4, 7), intStream(2, 5, 8), intStream(), intStream(3, 6, 9),
	}, less)
	if err != nil {
		t.Fatal(err)
	}
	if got := drainTree(t, many); fmt.Sprint(got) != "[1 2 3 4 5 6 7 8 9]" {
		t.Fatalf("4-way merge = %v", got)
	}
}

func TestLoserTreeTieBreaksTowardLowerStream(t *testing.T) {
	// Rows are (key, origin): equal keys must surface in stream order —
	// the property external-sort stability rests on.
	mk := func(origin int64, keys ...int64) rowStream {
		rows := make([][]types.Value, len(keys))
		for i, k := range keys {
			rows[i] = []types.Value{types.NewInt(k), types.NewInt(origin)}
		}
		return &sliceStream{rows: rows}
	}
	lt, err := newLoserTree([]rowStream{mk(0, 5, 5), mk(1, 5, 5), mk(2, 5)},
		func(a, b []types.Value) bool { return a[0].Int() < b[0].Int() })
	if err != nil {
		t.Fatal(err)
	}
	var origins []int64
	for {
		row, err := lt.next()
		if err != nil {
			t.Fatal(err)
		}
		if row == nil {
			break
		}
		origins = append(origins, row[1].Int())
	}
	if fmt.Sprint(origins) != "[0 0 1 1 2]" {
		t.Fatalf("tie-break order = %v, want streams in index order", origins)
	}
}

func TestSpillCrashMidRunWriteLeavesNoTempFiles(t *testing.T) {
	schema, rows := sortInput(60, 5)
	runOnce := func(fault *storage.FaultVFS) error {
		sink := &SpillSink{}
		ctx := NewQueryCtx(1, fault, "spill", sink)
		s := NewSort(NewValuesScan(schema, rows),
			[]expr.Expr{&expr.Col{Idx: 1, Name: "val"}}, []bool{false})
		s.Ctx = ctx
		_, err := Drain(s)
		return err
	}

	// Capture the I/O schedule with faults disabled, then fail each
	// write in turn as a transient error (ENOSPC-style): the query must
	// error out and leave the inner filesystem free of spill files.
	probe := &storage.FaultVFS{Inner: storage.NewMemVFS()}
	if err := runOnce(probe); err != nil {
		t.Fatal(err)
	}
	var writeOps []int
	for i, kind := range probe.OpKinds() {
		if kind == "write" {
			writeOps = append(writeOps, i+1)
		}
	}
	if len(writeOps) == 0 {
		t.Fatal("schedule recorded no writes; spill never happened")
	}
	for _, op := range writeOps {
		inner := storage.NewMemVFS()
		err := runOnce(&storage.FaultVFS{Inner: inner, FailAtOp: op, Transient: true})
		if !errors.Is(err, storage.ErrCrashed) {
			t.Fatalf("fault at op %d: err = %v, want ErrCrashed", op, err)
		}
		if leaked := spillFiles(inner); len(leaked) != 0 {
			t.Fatalf("fault at op %d leaked spill files: %v", op, leaked)
		}
	}

	// Crash-stop at the first write: the error still surfaces (cleanup
	// cannot be asserted — the simulated process is dead).
	err := runOnce(&storage.FaultVFS{Inner: storage.NewMemVFS(), FailAtOp: writeOps[0]})
	if !errors.Is(err, storage.ErrCrashed) {
		t.Fatalf("crash-stop err = %v, want ErrCrashed", err)
	}
}

// errAfter yields n generated rows, then fails — a mid-query execution
// error after spilling has already begun.
type errAfter struct {
	schema *expr.RowSchema
	n      int
	pos    int
}

func (e *errAfter) Schema() *expr.RowSchema { return e.schema }
func (e *errAfter) Open() error             { e.pos = 0; return nil }
func (e *errAfter) Close() error            { return nil }
func (e *errAfter) Next() ([]types.Value, error) {
	if e.pos >= e.n {
		return nil, errors.New("synthetic mid-query failure")
	}
	e.pos++
	return []types.Value{types.NewInt(int64(e.pos % 7)), types.NewInt(int64(e.pos))}, nil
}

func TestFailedQueryLeavesSpillDirEmpty(t *testing.T) {
	ctx, sink, fs := spillCtx(1)
	s := NewSort(&errAfter{
		schema: expr.NewRowSchema(expr.ColInfo{Name: "k"}, expr.ColInfo{Name: "v"}),
		n:      50,
	}, []expr.Expr{&expr.Col{Idx: 0, Name: "k"}}, []bool{false})
	s.Ctx = ctx
	if _, err := Drain(s); err == nil {
		t.Fatal("expected the child's error to surface")
	}
	if sink.Stats().Runs == 0 {
		t.Fatal("failure happened before any spill; test proves nothing")
	}
	if leaked := spillFiles(fs); len(leaked) != 0 {
		t.Fatalf("failed query left spill files: %v", leaked)
	}
	ctx.Cleanup() // backstop must be a no-op here
	if used := ctx.Mem.Used(); used != 0 {
		t.Fatalf("failed query leaked %d tracked bytes", used)
	}
}

// joinInput builds two scans sharing key space: left has heavy skew on
// key 1 (forces recursive re-partitioning under budget), right has a few
// matches per key.
func joinInput() (Operator, Operator, *expr.RowSchema) {
	ls := expr.NewRowSchema(expr.ColInfo{Qualifier: "a", Name: "k"}, expr.ColInfo{Qualifier: "a", Name: "x"})
	rs := expr.NewRowSchema(expr.ColInfo{Qualifier: "b", Name: "k"}, expr.ColInfo{Qualifier: "b", Name: "y"})
	var lrows, rrows [][]types.Value
	for i := 0; i < 240; i++ {
		key := int64(1) // skew: most of the build side is one key
		if i%4 == 0 {
			key = int64(i % 23)
		}
		lrows = append(lrows, []types.Value{types.NewInt(key), types.NewInt(int64(i))})
	}
	for i := 0; i < 30; i++ {
		rrows = append(rrows, []types.Value{types.NewInt(int64(i % 23)), types.NewInt(int64(i * 100))})
	}
	return NewValuesScan(ls, lrows), NewValuesScan(rs, rrows), expr.Concat(ls, rs)
}

func TestGraceJoinMatchesInMemory(t *testing.T) {
	l, r, joined := joinInput()
	lk := &expr.Col{Idx: mustResolve(t, joined, "a", "k"), Name: "k"}
	rk := &expr.Col{Idx: mustResolve(t, joined, "b", "k"), Name: "k"}

	want, err := Drain(NewHashJoin(l, r, lk, rk))
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("fixture produced no join matches")
	}

	ctx, sink, fs := spillCtx(64)
	hj := NewHashJoin(l, r, lk, rk)
	hj.Ctx = ctx
	got, err := Drain(hj)
	if err != nil {
		t.Fatal(err)
	}
	if sink.Stats().Runs == 0 {
		t.Fatal("budget 64 bytes did not force the join to spill")
	}
	if len(got) != len(want) {
		t.Fatalf("row counts differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if !rowsEqual(got[i], want[i]) {
			t.Fatalf("row %d differs: %v vs %v", i, got[i], want[i])
		}
	}
	if leaked := spillFiles(fs); len(leaked) != 0 {
		t.Fatalf("grace join leaked spill files: %v", leaked)
	}
}

func mustResolve(t *testing.T, s *expr.RowSchema, q, n string) int {
	t.Helper()
	i, err := s.Resolve(q, n)
	if err != nil {
		t.Fatalf("resolve %s.%s: %v", q, n, err)
	}
	return i
}

func TestSpillAggregateMatchesInMemory(t *testing.T) {
	schema := expr.NewRowSchema(expr.ColInfo{Name: "g"}, expr.ColInfo{Name: "v"})
	var rows [][]types.Value
	for i := 0; i < 400; i++ {
		rows = append(rows, []types.Value{
			types.NewInt(int64(i % 97)),
			types.NewInt(int64(i % 5)), // repeats within groups exercise DISTINCT
		})
	}
	groups := []expr.Expr{&expr.Col{Idx: 0, Name: "g"}}
	aggs := []AggSpec{
		{Kind: AggCount, Name: "n"},
		{Kind: AggSum, Arg: &expr.Col{Idx: 1, Name: "v"}, Name: "total"},
		{Kind: AggCount, Arg: &expr.Col{Idx: 1, Name: "v"}, Distinct: true, Name: "nd"},
	}

	want, err := Drain(NewHashAggregate(NewValuesScan(schema, rows), groups, []string{"g"}, aggs))
	if err != nil {
		t.Fatal(err)
	}

	ctx, sink, fs := spillCtx(256)
	agg := NewHashAggregate(NewValuesScan(schema, rows), groups, []string{"g"}, aggs)
	agg.Ctx = ctx
	got, err := Drain(agg)
	if err != nil {
		t.Fatal(err)
	}
	if sink.Stats().Runs == 0 {
		t.Fatal("budget 256 bytes did not force the aggregate to spill")
	}
	if len(got) != len(want) {
		t.Fatalf("group counts differ: %d vs %d", len(got), len(want))
	}
	// First-appearance emission order must match the in-memory operator.
	for i := range want {
		if !rowsEqual(got[i], want[i]) {
			t.Fatalf("group %d differs: %v vs %v", i, got[i], want[i])
		}
	}
	if leaked := spillFiles(fs); len(leaked) != 0 {
		t.Fatalf("spilling aggregate leaked files: %v", leaked)
	}
}

func TestTopNEquivalentToSortLimit(t *testing.T) {
	schema, rows := sortInput(200, 11) // heavy key duplication: ties decided by arrival order
	keys := func() []expr.Expr { return []expr.Expr{&expr.Col{Idx: 1, Name: "val"}} }
	for _, n := range []int64{0, 1, 10, 200, 500} {
		for _, desc := range []bool{false, true} {
			want, err := Drain(NewLimit(
				NewSort(NewValuesScan(schema, rows), keys(), []bool{desc}), n))
			if err != nil {
				t.Fatal(err)
			}
			got, err := Drain(NewTopN(NewValuesScan(schema, rows), keys(), []bool{desc}, n))
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("n=%d desc=%t: %d rows vs %d", n, desc, len(got), len(want))
			}
			for i := range want {
				if !rowsEqual(got[i], want[i]) {
					t.Fatalf("n=%d desc=%t row %d: %v vs %v", n, desc, i, got[i], want[i])
				}
			}
		}
	}
}
