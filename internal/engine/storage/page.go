package storage

import (
	"encoding/binary"
	"errors"
)

// PageSize is the fixed page size; the paper's DB2 configuration used 8 KiB
// pages.
const PageSize = 8192

const (
	pageHeaderSize = 4 // nslots u16 | freeStart u16
	slotSize       = 4 // offset u16 | length u16
)

// page is a slotted heap page. Records grow from the header forward; the
// slot directory grows from the end backward.
type page struct {
	data [PageSize]byte
}

func newPage() *page {
	p := &page{}
	p.setFreeStart(pageHeaderSize)
	return p
}

func (p *page) nslots() int     { return int(binary.LittleEndian.Uint16(p.data[0:2])) }
func (p *page) setNSlots(n int) { binary.LittleEndian.PutUint16(p.data[0:2], uint16(n)) }
func (p *page) freeStart() int  { return int(binary.LittleEndian.Uint16(p.data[2:4])) }
func (p *page) setFreeStart(n int) {
	binary.LittleEndian.PutUint16(p.data[2:4], uint16(n))
}

func (p *page) slotPos(i int) int { return PageSize - (i+1)*slotSize }

func (p *page) slot(i int) (off, ln int) {
	pos := p.slotPos(i)
	return int(binary.LittleEndian.Uint16(p.data[pos : pos+2])),
		int(binary.LittleEndian.Uint16(p.data[pos+2 : pos+4]))
}

func (p *page) setSlot(i, off, ln int) {
	pos := p.slotPos(i)
	binary.LittleEndian.PutUint16(p.data[pos:pos+2], uint16(off))
	binary.LittleEndian.PutUint16(p.data[pos+2:pos+4], uint16(ln))
}

// freeSpace returns the bytes available for one more record plus its slot.
func (p *page) freeSpace() int {
	return PageSize - p.freeStart() - (p.nslots()+1)*slotSize
}

// insert stores a record and returns its slot number, or false if the page
// lacks room.
func (p *page) insert(rec []byte) (int, bool) {
	if len(rec) > p.freeSpace() {
		return 0, false
	}
	off := p.freeStart()
	copy(p.data[off:], rec)
	slot := p.nslots()
	p.setSlot(slot, off, len(rec))
	p.setNSlots(slot + 1)
	p.setFreeStart(off + len(rec))
	return slot, true
}

// read returns the record bytes in the given slot.
func (p *page) read(slot int) ([]byte, error) {
	if slot < 0 || slot >= p.nslots() {
		return nil, errors.New("storage: slot out of range")
	}
	off, ln := p.slot(slot)
	if ln == 0 {
		return nil, errors.New("storage: slot is deleted")
	}
	return p.data[off : off+ln], nil
}

// slotLive reports whether slot i holds a live record. Deleted slots keep
// their directory entry (so later slot numbers — and thus RIDs — stay
// stable) but have their length zeroed; live records are never empty (a
// record is at least a tag byte plus a column count).
func (p *page) slotLive(i int) bool {
	_, ln := p.slot(i)
	return ln > 0
}

// kill tombstones slot i. The record bytes stay in place and are
// reclaimed only when the whole page empties and resets.
func (p *page) kill(i int) {
	off, _ := p.slot(i)
	p.setSlot(i, off, 0)
}

// liveSlots counts the live records on the page.
func (p *page) liveSlots() int {
	n := 0
	for i := 0; i < p.nslots(); i++ {
		if p.slotLive(i) {
			n++
		}
	}
	return n
}

// shrinkSlot rewrites slot i in place with a shorter record. The caller
// guarantees len(rec) fits the slot's current extent.
func (p *page) shrinkSlot(i int, rec []byte) {
	off, _ := p.slot(i)
	copy(p.data[off:], rec)
	p.setSlot(i, off, len(rec))
}

// reset returns a fully-dead page to factory-fresh state so inserts can
// reuse it. Zeroing the whole image keeps reset pages byte-identical no
// matter what history emptied them, which snapshot comparisons rely on.
func (p *page) reset() {
	p.data = [PageSize]byte{}
	p.setFreeStart(pageHeaderSize)
}

// MaxInlineRecord is the largest record that fits in a fresh page; larger
// records spill into overflow storage (and, under the WAL, are logged as
// overflow-blob frames).
const MaxInlineRecord = PageSize - pageHeaderSize - slotSize
