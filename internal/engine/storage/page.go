package storage

import (
	"encoding/binary"
	"errors"
)

// PageSize is the fixed page size; the paper's DB2 configuration used 8 KiB
// pages.
const PageSize = 8192

const (
	pageHeaderSize = 4 // nslots u16 | freeStart u16
	slotSize       = 4 // offset u16 | length u16
)

// page is a slotted heap page. Records grow from the header forward; the
// slot directory grows from the end backward.
type page struct {
	data [PageSize]byte
}

func newPage() *page {
	p := &page{}
	p.setFreeStart(pageHeaderSize)
	return p
}

func (p *page) nslots() int     { return int(binary.LittleEndian.Uint16(p.data[0:2])) }
func (p *page) setNSlots(n int) { binary.LittleEndian.PutUint16(p.data[0:2], uint16(n)) }
func (p *page) freeStart() int  { return int(binary.LittleEndian.Uint16(p.data[2:4])) }
func (p *page) setFreeStart(n int) {
	binary.LittleEndian.PutUint16(p.data[2:4], uint16(n))
}

func (p *page) slotPos(i int) int { return PageSize - (i+1)*slotSize }

func (p *page) slot(i int) (off, ln int) {
	pos := p.slotPos(i)
	return int(binary.LittleEndian.Uint16(p.data[pos : pos+2])),
		int(binary.LittleEndian.Uint16(p.data[pos+2 : pos+4]))
}

func (p *page) setSlot(i, off, ln int) {
	pos := p.slotPos(i)
	binary.LittleEndian.PutUint16(p.data[pos:pos+2], uint16(off))
	binary.LittleEndian.PutUint16(p.data[pos+2:pos+4], uint16(ln))
}

// freeSpace returns the bytes available for one more record plus its slot.
func (p *page) freeSpace() int {
	return PageSize - p.freeStart() - (p.nslots()+1)*slotSize
}

// insert stores a record and returns its slot number, or false if the page
// lacks room.
func (p *page) insert(rec []byte) (int, bool) {
	if len(rec) > p.freeSpace() {
		return 0, false
	}
	off := p.freeStart()
	copy(p.data[off:], rec)
	slot := p.nslots()
	p.setSlot(slot, off, len(rec))
	p.setNSlots(slot + 1)
	p.setFreeStart(off + len(rec))
	return slot, true
}

// read returns the record bytes in the given slot.
func (p *page) read(slot int) ([]byte, error) {
	if slot < 0 || slot >= p.nslots() {
		return nil, errors.New("storage: slot out of range")
	}
	off, ln := p.slot(slot)
	return p.data[off : off+ln], nil
}

// MaxInlineRecord is the largest record that fits in a fresh page; larger
// records spill into overflow storage (and, under the WAL, are logged as
// overflow-blob frames).
const MaxInlineRecord = PageSize - pageHeaderSize - slotSize
