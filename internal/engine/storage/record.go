// Package storage implements the physical layer of the engine: a
// self-describing record codec, slotted 8 KiB heap pages with overflow
// chains for records larger than a page (XADT fragments routinely are),
// heap files, and an LRU buffer-pool accountant. Database and index sizes
// reported in the experiments come from this package's page accounting.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/engine/types"
)

// Record format tags.
const (
	tagInline   = 0x01
	tagOverflow = 0x02
)

// Value kind tags inside a record.
const (
	vNull   = 0
	vInt    = 1
	vString = 2
	vXADT   = 3
	vBool   = 4
)

// EncodeRecord serializes a row into the self-describing record format.
func EncodeRecord(row []types.Value) []byte {
	size := 1 + binary.MaxVarintLen32
	for _, v := range row {
		size += v.Size()
	}
	buf := make([]byte, 0, size)
	buf = append(buf, tagInline)
	buf = binary.AppendUvarint(buf, uint64(len(row)))
	for _, v := range row {
		switch v.Kind() {
		case types.KindNull:
			buf = append(buf, vNull)
		case types.KindInt:
			buf = append(buf, vInt)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v.Int()))
		case types.KindString:
			buf = append(buf, vString)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.Str())))
			buf = append(buf, v.Str()...)
		case types.KindXADT:
			buf = append(buf, vXADT)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.XADT())))
			buf = append(buf, v.XADT()...)
		case types.KindBool:
			buf = append(buf, vBool)
			if v.Bool() {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		}
	}
	return buf
}

// DecodeRecordCols deserializes a record produced by EncodeRecord
// directly into column arrays: value j lands in cols[j][row]. Unlike
// DecodeRecord it allocates no per-row slice, which is what makes the
// batch decode path worth having. The record's column count must match
// len(cols) — heap rows of one table are uniform by construction.
func DecodeRecordCols(buf []byte, cols [][]types.Value, row int) error {
	if len(buf) == 0 || buf[0] != tagInline {
		return errors.New("storage: not an inline record")
	}
	pos := 1
	ncols, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return errors.New("storage: corrupt record header")
	}
	if ncols != uint64(len(cols)) {
		return fmt.Errorf("storage: record has %d columns, batch expects %d", ncols, len(cols))
	}
	pos += n
	for j := 0; j < len(cols); j++ {
		if pos >= len(buf) {
			return errors.New("storage: truncated record")
		}
		kind := buf[pos]
		pos++
		switch kind {
		case vNull:
			cols[j][row] = types.Null
		case vInt:
			if pos+8 > len(buf) {
				return errors.New("storage: truncated int")
			}
			cols[j][row] = types.NewInt(int64(binary.LittleEndian.Uint64(buf[pos:])))
			pos += 8
		case vString, vXADT:
			if pos+4 > len(buf) {
				return errors.New("storage: truncated length")
			}
			ln := int(binary.LittleEndian.Uint32(buf[pos:]))
			pos += 4
			if pos+ln > len(buf) {
				return errors.New("storage: truncated payload")
			}
			payload := buf[pos : pos+ln]
			pos += ln
			if kind == vString {
				cols[j][row] = types.NewString(string(payload))
			} else {
				b := make([]byte, ln)
				copy(b, payload)
				cols[j][row] = types.NewXADT(b)
			}
		case vBool:
			if pos >= len(buf) {
				return errors.New("storage: truncated bool")
			}
			cols[j][row] = types.NewBool(buf[pos] != 0)
			pos++
		default:
			return fmt.Errorf("storage: unknown value tag %d", kind)
		}
	}
	return nil
}

// DecodeRecord deserializes a record produced by EncodeRecord.
func DecodeRecord(buf []byte) ([]types.Value, error) {
	if len(buf) == 0 || buf[0] != tagInline {
		return nil, errors.New("storage: not an inline record")
	}
	pos := 1
	ncols, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return nil, errors.New("storage: corrupt record header")
	}
	// Every value occupies at least one byte, so a count beyond the
	// remaining buffer is damage — reject before sizing the row slice.
	if ncols > uint64(len(buf)) {
		return nil, errors.New("storage: implausible record column count")
	}
	pos += n
	row := make([]types.Value, 0, ncols)
	for i := uint64(0); i < ncols; i++ {
		if pos >= len(buf) {
			return nil, errors.New("storage: truncated record")
		}
		kind := buf[pos]
		pos++
		switch kind {
		case vNull:
			row = append(row, types.Null)
		case vInt:
			if pos+8 > len(buf) {
				return nil, errors.New("storage: truncated int")
			}
			row = append(row, types.NewInt(int64(binary.LittleEndian.Uint64(buf[pos:]))))
			pos += 8
		case vString, vXADT:
			if pos+4 > len(buf) {
				return nil, errors.New("storage: truncated length")
			}
			ln := int(binary.LittleEndian.Uint32(buf[pos:]))
			pos += 4
			if pos+ln > len(buf) {
				return nil, errors.New("storage: truncated payload")
			}
			payload := buf[pos : pos+ln]
			pos += ln
			if kind == vString {
				row = append(row, types.NewString(string(payload)))
			} else {
				b := make([]byte, ln)
				copy(b, payload)
				row = append(row, types.NewXADT(b))
			}
		case vBool:
			if pos >= len(buf) {
				return nil, errors.New("storage: truncated bool")
			}
			row = append(row, types.NewBool(buf[pos] != 0))
			pos++
		default:
			return nil, fmt.Errorf("storage: unknown value tag %d", kind)
		}
	}
	return row, nil
}
