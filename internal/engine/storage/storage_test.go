package storage

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/engine/types"
)

func TestRecordRoundTrip(t *testing.T) {
	row := []types.Value{
		types.NewInt(42),
		types.NewString("hello"),
		types.Null,
		types.NewXADT([]byte("<a>frag</a>")),
		types.NewBool(true),
		types.NewInt(-7),
	}
	got, err := DecodeRecord(EncodeRecord(row))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(row) {
		t.Fatalf("got %d values, want %d", len(got), len(row))
	}
	for i := range row {
		if !types.Equal(got[i], row[i]) {
			t.Errorf("value %d = %v, want %v", i, got[i], row[i])
		}
	}
}

func TestRecordRoundTripProperty(t *testing.T) {
	f := func(i int64, s string, b bool) bool {
		row := []types.Value{types.NewInt(i), types.NewString(s), types.NewBool(b), types.Null}
		got, err := DecodeRecord(EncodeRecord(row))
		if err != nil || len(got) != 4 {
			return false
		}
		for j := range row {
			if !types.Equal(got[j], row[j]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeCorruptRecords(t *testing.T) {
	row := []types.Value{types.NewString("abcdef")}
	good := EncodeRecord(row)
	cases := [][]byte{
		nil,
		{0x99},
		good[:3],
		good[:len(good)-2],
	}
	for i, b := range cases {
		if _, err := DecodeRecord(b); err == nil {
			t.Errorf("case %d decoded corrupt record", i)
		}
	}
}

func TestPageInsertRead(t *testing.T) {
	p := newPage()
	recs := [][]byte{[]byte("one"), []byte("twotwo"), []byte("three33")}
	for i, r := range recs {
		slot, ok := p.insert(r)
		if !ok || slot != i {
			t.Fatalf("insert %d: slot=%d ok=%v", i, slot, ok)
		}
	}
	for i, r := range recs {
		got, err := p.read(i)
		if err != nil || string(got) != string(r) {
			t.Errorf("read %d = %q, %v", i, got, err)
		}
	}
	if _, err := p.read(99); err == nil {
		t.Error("read out of range should fail")
	}
}

func TestPageFillsUp(t *testing.T) {
	p := newPage()
	rec := make([]byte, 1000)
	count := 0
	for {
		if _, ok := p.insert(rec); !ok {
			break
		}
		count++
	}
	// 8192 bytes, 4 header, 1000+4 per record → 8 records.
	if count != 8 {
		t.Errorf("fit %d records, want 8", count)
	}
	if p.freeSpace() >= 1000 {
		t.Errorf("freeSpace = %d after fill", p.freeSpace())
	}
}

func TestHeapFileInsertScan(t *testing.T) {
	h := NewHeapFile(nil)
	const n = 5000
	var rids []RID
	for i := 0; i < n; i++ {
		rid := h.Insert([]types.Value{types.NewInt(int64(i)), types.NewString(strings.Repeat("x", i%50))})
		rids = append(rids, rid)
	}
	if h.Rows() != n {
		t.Fatalf("Rows = %d", h.Rows())
	}
	if h.PageCount() < 2 {
		t.Errorf("expected multiple pages, got %d", h.PageCount())
	}
	// Scan preserves insertion order.
	i := 0
	err := h.Scan(func(rid RID, row []types.Value) error {
		if row[0].Int() != int64(i) {
			t.Fatalf("row %d out of order: %v", i, row[0])
		}
		if rid != rids[i] {
			t.Fatalf("rid %d = %v, want %v", i, rid, rids[i])
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != n {
		t.Fatalf("scanned %d rows", i)
	}
	// Random access.
	row, err := h.Get(rids[1234])
	if err != nil || row[0].Int() != 1234 {
		t.Errorf("Get = %v, %v", row, err)
	}
}

func TestHeapFileOverflowRecords(t *testing.T) {
	h := NewHeapFile(nil)
	big := types.NewXADT([]byte(strings.Repeat("<LINE>text</LINE>", 2000))) // ~34 KB
	h.Insert([]types.Value{types.NewInt(1), types.NewString("small")})
	ridBig := h.Insert([]types.Value{types.NewInt(2), big})
	h.Insert([]types.Value{types.NewInt(3), types.NewString("after")})

	row, err := h.Get(ridBig)
	if err != nil {
		t.Fatal(err)
	}
	if string(row[1].XADT()) != string(big.XADT()) {
		t.Error("overflow record corrupted")
	}
	// Scan order includes the big record in place.
	var ids []int64
	h.Scan(func(_ RID, row []types.Value) error {
		ids = append(ids, row[0].Int())
		return nil
	})
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 2 || ids[2] != 3 {
		t.Errorf("scan order = %v", ids)
	}
	// Page accounting includes overflow pages: 34KB is 5 pages.
	if h.PageCount() < 5 {
		t.Errorf("PageCount = %d, want >= 5 with overflow", h.PageCount())
	}
}

func TestHeapFileGetErrors(t *testing.T) {
	h := NewHeapFile(nil)
	h.Insert([]types.Value{types.NewInt(1)})
	if _, err := h.Get(RID{Page: 9, Slot: 0}); err == nil {
		t.Error("bad page should error")
	}
	if _, err := h.Get(RID{Page: 0, Slot: 5}); err == nil {
		t.Error("bad slot should error")
	}
}

func TestBufferPoolLRU(t *testing.T) {
	h := &HeapFile{}
	b := NewBufferPool(2)
	p := func(n int) PageID { return PageID{File: h, Page: n} }
	b.Touch(p(1)) // miss
	b.Touch(p(1)) // hit
	b.Touch(p(2)) // miss
	b.Touch(p(1)) // hit
	b.Touch(p(3)) // miss, evicts 2
	b.Touch(p(2)) // miss again
	st := b.Stats()
	if st.Hits != 2 || st.Misses != 4 {
		t.Errorf("hits=%d misses=%d, want 2/4", st.Hits, st.Misses)
	}
	b.Reset()
	st = b.Stats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Error("Reset did not clear counters")
	}
}

func TestBufferPoolDisabled(t *testing.T) {
	b := NewBufferPool(0)
	for i := 0; i < 3; i++ {
		b.Touch(PageID{Page: 1})
	}
	st := b.Stats()
	if st.Hits != 0 || st.Misses != 3 {
		t.Errorf("disabled pool: hits=%d misses=%d", st.Hits, st.Misses)
	}
}

func TestHeapFileWithPoolCountsScans(t *testing.T) {
	pool := NewBufferPool(1024)
	h := NewHeapFile(pool)
	for i := 0; i < 2000; i++ {
		h.Insert([]types.Value{types.NewInt(int64(i)), types.NewString(strings.Repeat("y", 40))})
	}
	h.Scan(func(RID, []types.Value) error { return nil })
	first := pool.Stats().Misses
	if first == 0 {
		t.Error("scan should touch pages")
	}
	h.Scan(func(RID, []types.Value) error { return nil })
	if hits := pool.Stats().Hits; hits < first {
		t.Errorf("second scan should hit cached pages: hits=%d", hits)
	}
}

func TestDataBytesPageGranular(t *testing.T) {
	h := NewHeapFile(nil)
	h.Insert([]types.Value{types.NewInt(1)})
	if h.DataBytes() != PageSize {
		t.Errorf("DataBytes = %d, want one page", h.DataBytes())
	}
}

// TestHeapFileFreePageReuse pins the DELETE/INSERT churn contract: pages
// emptied by deletes reset and are reused by later inserts, so the file
// size stays bounded no matter how long the churn runs. Without reuse
// the page count would grow by roughly one page per generation.
func TestHeapFileFreePageReuse(t *testing.T) {
	h := NewHeapFile(nil)
	mkRow := func(gen, i int) []types.Value {
		return []types.Value{types.NewInt(int64(gen*1000 + i)), types.NewString(strings.Repeat("x", 100))}
	}
	const perGen = 200 // ~100-byte records: a few pages per generation
	var rids []RID
	for i := 0; i < perGen; i++ {
		rids = append(rids, h.Insert(mkRow(0, i)))
	}
	basePages := h.PageCount()
	if basePages < 2 {
		t.Fatalf("generation spans %d pages, want several", basePages)
	}
	for gen := 1; gen <= 20; gen++ {
		for _, rid := range rids {
			if err := h.Delete(rid); err != nil {
				t.Fatalf("gen %d: delete %v: %v", gen, rid, err)
			}
		}
		if h.Rows() != 0 {
			t.Fatalf("gen %d: %d rows survive a full delete", gen, h.Rows())
		}
		if h.FreePages() == 0 {
			t.Fatalf("gen %d: full delete freed no pages", gen)
		}
		rids = rids[:0]
		for i := 0; i < perGen; i++ {
			rids = append(rids, h.Insert(mkRow(gen, i)))
		}
	}
	// One extra page of slack: a generation may straddle a page boundary
	// differently than the first did, but growth must not compound.
	if got := h.PageCount(); got > basePages+1 {
		t.Fatalf("20 delete/insert generations grew the file from %d to %d pages — freed pages are not reused",
			basePages, got)
	}
	// The surviving generation must read back intact off the reused pages.
	seen := 0
	err := h.Scan(func(_ RID, row []types.Value) error {
		if row[0].Int()/1000 != 20 {
			t.Fatalf("stale row %v survived the churn", row[0])
		}
		seen++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != perGen {
		t.Fatalf("scan saw %d rows, want %d", seen, perGen)
	}
}

// TestHeapFileOverflowReuse is the same contract for oversized records:
// overflow directory entries freed by deletes are reused, so overflow
// storage stays bounded under churn too.
func TestHeapFileOverflowReuse(t *testing.T) {
	h := NewHeapFile(nil)
	big := func(gen int) []types.Value {
		return []types.Value{types.NewInt(int64(gen)), types.NewString(strings.Repeat("y", MaxInlineRecord+64))}
	}
	var rids []RID
	for i := 0; i < 8; i++ {
		rids = append(rids, h.Insert(big(0)))
	}
	baseOverflow := len(h.overflow)
	for gen := 1; gen <= 10; gen++ {
		for _, rid := range rids {
			if err := h.Delete(rid); err != nil {
				t.Fatal(err)
			}
		}
		rids = rids[:0]
		for i := 0; i < 8; i++ {
			rids = append(rids, h.Insert(big(gen)))
		}
	}
	if got := len(h.overflow); got != baseOverflow {
		t.Fatalf("overflow directory grew from %d to %d entries under churn", baseOverflow, got)
	}
}
