package storage

import (
	"container/list"
	"sync"
)

// PageID identifies a page across heap files for buffer accounting.
type PageID struct {
	File *HeapFile
	Page int
}

// BufferPool is an LRU accountant over page accesses. All pages live in
// memory; the pool exists to report the hit ratio a given memory budget
// would achieve, which the experiment harness surfaces alongside timings.
// It is safe for concurrent use: read-only queries may run in parallel.
type BufferPool struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List
	index    map[PageID]*list.Element
	hits     int64
	misses   int64
}

// NewBufferPool returns a pool that tracks up to capacity resident pages.
// Capacity zero disables tracking (every access is a miss).
func NewBufferPool(capacity int) *BufferPool {
	return &BufferPool{
		capacity: capacity,
		lru:      list.New(),
		index:    map[PageID]*list.Element{},
	}
}

// Touch records an access to the page, updating hit/miss counters and
// recency.
func (b *BufferPool) Touch(id PageID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.capacity <= 0 {
		b.misses++
		return
	}
	if el, ok := b.index[id]; ok {
		b.hits++
		b.lru.MoveToFront(el)
		return
	}
	b.misses++
	el := b.lru.PushFront(id)
	b.index[id] = el
	if b.lru.Len() > b.capacity {
		oldest := b.lru.Back()
		b.lru.Remove(oldest)
		delete(b.index, oldest.Value.(PageID))
	}
}

// Stats returns cumulative hit and miss counts.
func (b *BufferPool) Stats() (hits, misses int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.hits, b.misses
}

// Reset clears counters and residency.
func (b *BufferPool) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.hits, b.misses = 0, 0
	b.lru.Init()
	b.index = map[PageID]*list.Element{}
}
