package storage

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// PageID identifies a page across heap files for buffer accounting.
type PageID struct {
	File *HeapFile
	Page int
}

// PoolStats is a point-in-time snapshot of the pool's counters.
type PoolStats struct {
	Hits   int64
	Misses int64
}

// Total returns the number of accesses the snapshot covers.
func (s PoolStats) Total() int64 { return s.Hits + s.Misses }

// HitRatio returns Hits/Total, or 0 when the pool saw no accesses.
func (s PoolStats) HitRatio() float64 {
	if t := s.Total(); t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// poolShardCount is the number of independently locked LRU shards a
// large pool is split into. Page IDs hash onto shards, so parallel scans
// of different page ranges rarely contend on the same lock.
const poolShardCount = 16

// poolShard is one independently locked slice of the residency set.
type poolShard struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List
	index    map[PageID]*list.Element
}

// BufferPool is an LRU accountant over page accesses. All pages live in
// memory; the pool exists to report the hit ratio a given memory budget
// would achieve, which the experiment harness surfaces alongside timings.
//
// It is safe for concurrent use and built not to serialize parallel
// scans: hit/miss counters are atomics and the residency set is split
// into hash-partitioned shards with independent locks. Small pools
// (capacity <= 64 pages) keep a single shard so their eviction order
// stays exactly LRU, which the accounting tests rely on.
type BufferPool struct {
	capacity int
	shards   []*poolShard
	hits     atomic.Int64
	misses   atomic.Int64
}

// NewBufferPool returns a pool that tracks up to capacity resident pages.
// Capacity zero disables tracking (every access is a miss).
func NewBufferPool(capacity int) *BufferPool {
	nshards := 1
	if capacity > 64 {
		nshards = poolShardCount
	}
	b := &BufferPool{capacity: capacity, shards: make([]*poolShard, nshards)}
	per := capacity / nshards
	extra := capacity % nshards
	for i := range b.shards {
		c := per
		if i < extra {
			c++
		}
		b.shards[i] = &poolShard{
			capacity: c,
			lru:      list.New(),
			index:    map[PageID]*list.Element{},
		}
	}
	return b
}

// shardFor hashes a page ID onto its shard.
func (b *BufferPool) shardFor(id PageID) *poolShard {
	if len(b.shards) == 1 {
		return b.shards[0]
	}
	// FNV-1a over the file identity and page number.
	h := uint64(14695981039346656037)
	if id.File != nil {
		h ^= id.File.id
	}
	h *= 1099511628211
	h ^= uint64(uint(id.Page))
	h *= 1099511628211
	return b.shards[h%uint64(len(b.shards))]
}

// Touch records an access to the page, updating hit/miss counters and
// recency.
func (b *BufferPool) Touch(id PageID) {
	if b.capacity <= 0 {
		b.misses.Add(1)
		return
	}
	s := b.shardFor(id)
	s.mu.Lock()
	if el, ok := s.index[id]; ok {
		s.lru.MoveToFront(el)
		s.mu.Unlock()
		b.hits.Add(1)
		return
	}
	el := s.lru.PushFront(id)
	s.index[id] = el
	if s.lru.Len() > s.capacity {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.index, oldest.Value.(PageID))
	}
	s.mu.Unlock()
	b.misses.Add(1)
}

// Forget drops a page from the residency set without touching the
// hit/miss counters. Heap files call it when a page empties and resets,
// so stale residency never counts a reused page as a hit.
func (b *BufferPool) Forget(id PageID) {
	if b.capacity <= 0 {
		return
	}
	s := b.shardFor(id)
	s.mu.Lock()
	if el, ok := s.index[id]; ok {
		s.lru.Remove(el)
		delete(s.index, id)
	}
	s.mu.Unlock()
}

// Stats returns a snapshot of the cumulative hit and miss counts. The
// two counters are read independently, so a snapshot taken during
// concurrent Touch traffic is approximate by at most the in-flight
// accesses.
func (b *BufferPool) Stats() PoolStats {
	return PoolStats{Hits: b.hits.Load(), Misses: b.misses.Load()}
}

// Resident returns the number of pages currently tracked as resident.
func (b *BufferPool) Resident() int {
	n := 0
	for _, s := range b.shards {
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}

// Reset clears counters and residency. It is safe to call concurrently
// with Touch: counters are atomically zeroed first, then each shard is
// cleared under its own lock, so the pool converges to an empty state
// without torn reads (accesses racing the reset are counted against the
// fresh epoch).
func (b *BufferPool) Reset() {
	b.hits.Store(0)
	b.misses.Store(0)
	for _, s := range b.shards {
		s.mu.Lock()
		s.lru.Init()
		s.index = map[PageID]*list.Element{}
		s.mu.Unlock()
	}
}
