package storage

import (
	"sync"
	"testing"

	"repro/internal/engine/types"
)

func TestMorselSourceCoversAllPages(t *testing.T) {
	src := NewMorselSource(37, 4)
	if src.Count() != 10 {
		t.Errorf("Count = %d, want 10", src.Count())
	}
	covered := make([]bool, 37)
	for {
		m, ok := src.Next()
		if !ok {
			break
		}
		for p := m.Lo; p < m.Hi; p++ {
			if covered[p] {
				t.Fatalf("page %d handed out twice", p)
			}
			covered[p] = true
		}
	}
	for p, c := range covered {
		if !c {
			t.Fatalf("page %d never handed out", p)
		}
	}
}

func TestMorselSourceConcurrentClaims(t *testing.T) {
	src := NewMorselSource(1000, 1)
	var mu sync.Mutex
	seen := map[int]bool{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				m, ok := src.Next()
				if !ok {
					return
				}
				mu.Lock()
				if seen[m.Seq] {
					t.Errorf("morsel %d claimed twice", m.Seq)
				}
				seen[m.Seq] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != 1000 {
		t.Errorf("claimed %d morsels, want 1000", len(seen))
	}
}

func TestMorselSourceAbort(t *testing.T) {
	src := NewMorselSource(100, 1)
	if _, ok := src.Next(); !ok {
		t.Fatal("first claim failed")
	}
	src.Abort()
	if _, ok := src.Next(); ok {
		t.Error("claim after Abort succeeded")
	}
}

// TestBufferPoolConcurrentTouch hammers a sharded pool from many
// goroutines; the race detector verifies the sharding, and the counters
// must account for every touch.
func TestBufferPoolConcurrentTouch(t *testing.T) {
	h := NewHeapFile(nil)
	b := NewBufferPool(4096) // > 64 pages ⇒ sharded
	const workers, touches = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < touches; i++ {
				b.Touch(PageID{File: h, Page: (w*31 + i) % 512})
			}
		}(w)
	}
	wg.Wait()
	if got := b.Stats().Total(); got != workers*touches {
		t.Errorf("hits+misses = %d, want %d", got, workers*touches)
	}
	b.Reset()
	if b.Stats().Total() != 0 {
		t.Error("Reset left counters behind")
	}
}

func TestBufferPoolShardedCapacity(t *testing.T) {
	h := NewHeapFile(nil)
	b := NewBufferPool(4096)
	// Touch more distinct pages than capacity; residency must respect it.
	for i := 0; i < 10000; i++ {
		b.Touch(PageID{File: h, Page: i})
	}
	if r := b.Resident(); r > 4096 {
		t.Errorf("resident = %d pages, exceeds capacity 4096", r)
	}
}

func TestRangeCursor(t *testing.T) {
	h := NewHeapFile(nil)
	for i := 0; i < 3000; i++ {
		h.Insert([]types.Value{types.NewInt(int64(i))})
	}
	pages := h.DataPages()
	if pages < 3 {
		t.Fatalf("need ≥3 pages, got %d", pages)
	}
	// Ranged cursors over a partition of the pages must reproduce the
	// full scan exactly, in order.
	var got []int64
	mid := pages / 2
	for _, r := range [][2]int{{0, mid}, {mid, pages}} {
		cur := h.NewRangeCursor(r[0], r[1])
		for {
			_, row, ok, err := cur.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			got = append(got, row[0].Int())
		}
	}
	if len(got) != 3000 {
		t.Fatalf("ranged cursors yielded %d rows, want 3000", len(got))
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("row %d = %d, out of order", i, v)
		}
	}
	// Out-of-bounds ranges clamp rather than panic.
	cur := h.NewRangeCursor(-5, pages+100)
	n := 0
	for {
		_, _, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 3000 {
		t.Errorf("clamped cursor yielded %d rows, want 3000", n)
	}
}

func TestHeapFileConcurrentScans(t *testing.T) {
	pool := NewBufferPool(256)
	h := NewHeapFile(pool)
	for i := 0; i < 2000; i++ {
		h.Insert([]types.Value{types.NewInt(int64(i))})
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 0
			err := h.Scan(func(RID, []types.Value) error { n++; return nil })
			if err != nil || n != 2000 {
				t.Errorf("concurrent scan: %d rows, %v", n, err)
			}
		}()
	}
	wg.Wait()
}
