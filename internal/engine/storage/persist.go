package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Serialize writes the heap file's pages and overflow blobs to w in a
// stable binary format readable by DeserializeHeapFile.
func (h *HeapFile) Serialize(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := writeUvarint(bw, uint64(len(h.pages))); err != nil {
		return err
	}
	for _, p := range h.pages {
		if _, err := bw.Write(p.data[:]); err != nil {
			return err
		}
	}
	if err := writeUvarint(bw, uint64(len(h.overflow))); err != nil {
		return err
	}
	for _, blob := range h.overflow {
		if err := writeUvarint(bw, uint64(len(blob))); err != nil {
			return err
		}
		if _, err := bw.Write(blob); err != nil {
			return err
		}
	}
	// Free-page list: mutation replay positions rows by the same placement
	// rules that produced them, so the open list must survive a snapshot
	// round-trip exactly.
	if err := writeUvarint(bw, uint64(len(h.open))); err != nil {
		return err
	}
	for _, pg := range h.open {
		if err := writeUvarint(bw, uint64(pg)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DeserializeHeapFile reads a heap file written by Serialize. Row counts
// are recomputed from the page slot directories.
func DeserializeHeapFile(r io.Reader, pool *BufferPool) (*HeapFile, error) {
	br := asByteReader(r)
	npages, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("storage: reading page count: %w", err)
	}
	h := NewHeapFile(pool)
	for i := uint64(0); i < npages; i++ {
		p := newPage()
		if _, err := io.ReadFull(br, p.data[:]); err != nil {
			return nil, fmt.Errorf("storage: reading page %d: %w", i, err)
		}
		h.pages = append(h.pages, p)
		h.rows += p.liveSlots()
	}
	nover, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("storage: reading overflow count: %w", err)
	}
	for i := uint64(0); i < nover; i++ {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if n > 1<<31 {
			return nil, errors.New("storage: implausible overflow blob size")
		}
		blob := make([]byte, n)
		if _, err := io.ReadFull(br, blob); err != nil {
			return nil, err
		}
		h.overflow = append(h.overflow, blob)
		// Freed overflow entries serialize as zero-length blobs; live
		// oversized records are always longer than a page, so emptiness
		// is unambiguous. Appending in directory order keeps ovFree
		// sorted ascending, matching the in-memory free discipline.
		if n == 0 {
			h.overflow[len(h.overflow)-1] = nil
			h.ovFree = append(h.ovFree, int(len(h.overflow)-1))
		}
	}
	nopen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("storage: reading open-page list: %w", err)
	}
	for i := uint64(0); i < nopen; i++ {
		pg, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if pg >= npages {
			return nil, errors.New("storage: open page out of range")
		}
		h.open = append(h.open, int32(pg))
	}
	return h, nil
}

func writeUvarint(w io.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

// asByteReader adapts r for binary.ReadUvarint without double-buffering
// bufio readers.
func asByteReader(r io.Reader) interface {
	io.Reader
	io.ByteReader
} {
	if br, ok := r.(interface {
		io.Reader
		io.ByteReader
	}); ok {
		return br
	}
	return bufio.NewReader(r)
}
