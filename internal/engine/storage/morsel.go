package storage

import "sync/atomic"

// Morsel is one unit of parallel scan work: a contiguous page range of a
// heap file plus its position in the file's page order. Sequence numbers
// let the consumer reassemble worker output in scan order, so a parallel
// scan emits rows in exactly the order a serial scan would.
type Morsel struct {
	Seq    int // 0-based position of this morsel in page order
	Lo, Hi int // page range [Lo, Hi)
}

// DefaultMorselPages is the page count of one morsel. It is small enough
// that a table of a few hundred pages load-balances across workers, and
// large enough that the per-morsel dispatch cost (one atomic increment,
// one pipeline re-open) is noise against decoding the pages.
const DefaultMorselPages = 16

// MorselSource hands out the morsels of one heap scan to a pool of
// workers. It is a single atomic counter — the contention-free heart of
// the morsel-driven scan: workers that finish early simply pull the next
// morsel, so skew in per-page predicate cost balances itself.
type MorselSource struct {
	pages       int
	morselPages int
	next        atomic.Int64
	aborted     atomic.Bool
}

// NewMorselSource splits a pages-long file into morsels of morselPages
// pages (DefaultMorselPages when <= 0).
func NewMorselSource(pages, morselPages int) *MorselSource {
	if morselPages <= 0 {
		morselPages = DefaultMorselPages
	}
	return &MorselSource{pages: pages, morselPages: morselPages}
}

// Count returns the total number of morsels the source will hand out.
func (s *MorselSource) Count() int {
	if s.pages <= 0 {
		return 0
	}
	return (s.pages + s.morselPages - 1) / s.morselPages
}

// Next claims the next morsel. ok is false when the scan is exhausted or
// aborted.
func (s *MorselSource) Next() (Morsel, bool) {
	if s.aborted.Load() {
		return Morsel{}, false
	}
	seq := int(s.next.Add(1)) - 1
	lo := seq * s.morselPages
	if lo >= s.pages {
		return Morsel{}, false
	}
	hi := lo + s.morselPages
	if hi > s.pages {
		hi = s.pages
	}
	return Morsel{Seq: seq, Lo: lo, Hi: hi}, true
}

// Abort stops the source from handing out further morsels; workers drain
// out after their current morsel. Used for error propagation and early
// termination (LIMIT above a parallel scan).
func (s *MorselSource) Abort() { s.aborted.Store(true) }
