package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/engine/types"
)

// RID identifies a record by page number and slot within the page.
type RID struct {
	Page int32
	Slot int32
}

// String renders the RID for diagnostics.
func (r RID) String() string { return fmt.Sprintf("(%d,%d)", r.Page, r.Slot) }

// heapFileIDs hands out unique identities for buffer-pool shard hashing.
var heapFileIDs atomic.Uint64

// HeapFile is a heap of records in slotted pages. Records larger than a
// page spill into dedicated overflow storage, referenced by an in-page
// stub so scan order is preserved. Deletes tombstone their slot (RIDs of
// surviving rows never move); a page whose records are all dead resets
// and joins the open list, where inserts reuse it lowest-page-first
// before the file grows. Updates rewrite in place when the new record
// fits the old slot and otherwise move the row (delete + reinsert).
// Every placement decision is a pure function of the operation sequence,
// so WAL replay reproduces the exact same layout.
//
// Concurrency: any number of readers (Get, Scan, cursors) may run in
// parallel — the parallel executor scans one heap from many goroutines.
// The mutex guards the page directory and overflow directory so readers
// always observe a consistent prefix; cursors snapshot the directory once
// at creation. Mutations take the write lock; the engine serializes
// mutation statements against queries, keeping its load-then-query
// discipline within a statement.
type HeapFile struct {
	mu       sync.RWMutex
	id       uint64
	pages    []*page
	overflow [][]byte
	rows     int
	pool     *BufferPool
	// open lists pages that were emptied by deletes and reset, sorted
	// ascending; inserts fill them lowest-first before appending. A page
	// leaves the list when its free space can no longer hold a record.
	open []int32
	// ovFree lists freed overflow directory entries, sorted ascending;
	// oversized inserts reuse the lowest before appending.
	ovFree []int
}

// NewHeapFile returns an empty heap file. The buffer pool is optional; if
// present, page reads are accounted against it.
func NewHeapFile(pool *BufferPool) *HeapFile {
	return &HeapFile{pool: pool, id: heapFileIDs.Add(1)}
}

// Insert stores a row and returns its RID.
func (h *HeapFile) Insert(row []types.Value) RID {
	rec := EncodeRecord(row)
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.insertLocked(rec)
}

// insertLocked places an encoded record: oversized records go to overflow
// (reusing the lowest freed entry first), the in-page record or stub goes
// to the lowest open page that fits it, then the last page, then a fresh
// page. Callers hold h.mu.
func (h *HeapFile) insertLocked(rec []byte) RID {
	if len(rec) > MaxInlineRecord {
		idx := h.allocOverflow(rec)
		stub := make([]byte, 1, 1+binary.MaxVarintLen64)
		stub[0] = tagOverflow
		stub = binary.AppendUvarint(stub, uint64(idx))
		rec = stub
	}
	if pageNo, ok := h.openFit(len(rec)); ok {
		slot, _ := h.pages[pageNo].insert(rec)
		h.pruneOpen(pageNo)
		h.rows++
		return RID{Page: int32(pageNo), Slot: int32(slot)}
	}
	if len(h.pages) == 0 || !h.fitsLast(rec) {
		h.pages = append(h.pages, newPage())
	}
	pageNo := len(h.pages) - 1
	slot, ok := h.pages[pageNo].insert(rec)
	if !ok {
		// A fresh page always fits a stub or inline record by
		// construction.
		panic("storage: record insert failed on fresh page")
	}
	h.rows++
	return RID{Page: int32(pageNo), Slot: int32(slot)}
}

func (h *HeapFile) fitsLast(rec []byte) bool {
	return len(rec) <= h.pages[len(h.pages)-1].freeSpace()
}

// allocOverflow stores an oversized record, reusing the lowest freed
// directory entry so overflow storage stays bounded under churn.
func (h *HeapFile) allocOverflow(rec []byte) int {
	if len(h.ovFree) > 0 {
		idx := h.ovFree[0]
		h.ovFree = h.ovFree[1:]
		h.overflow[idx] = rec
		return idx
	}
	h.overflow = append(h.overflow, rec)
	return len(h.overflow) - 1
}

// minSlotRecord is the smallest useful record (a tag byte plus a column
// count); an open page with less free space than this can never take
// another insert and leaves the open list.
const minSlotRecord = 2

// openFit returns the lowest open page with room for an n-byte record.
func (h *HeapFile) openFit(n int) (int, bool) {
	for _, pg := range h.open {
		if h.pages[pg].freeSpace() >= n {
			return int(pg), true
		}
	}
	return 0, false
}

// pruneOpen drops pageNo from the open list once it is effectively full.
func (h *HeapFile) pruneOpen(pageNo int) {
	if h.pages[pageNo].freeSpace() >= minSlotRecord {
		return
	}
	for i, pg := range h.open {
		if int(pg) == pageNo {
			h.open = append(h.open[:i], h.open[i+1:]...)
			return
		}
	}
}

// addOpen registers a reset page for reuse, keeping the list sorted.
func (h *HeapFile) addOpen(pageNo int) {
	for i, pg := range h.open {
		if int(pg) == pageNo {
			return
		}
		if int(pg) > pageNo {
			h.open = append(h.open, 0)
			copy(h.open[i+1:], h.open[i:])
			h.open[i] = int32(pageNo)
			return
		}
	}
	h.open = append(h.open, int32(pageNo))
}

// freeOverflowLocked releases an overflow entry, keeping ovFree sorted.
func (h *HeapFile) freeOverflowLocked(idx int) {
	h.overflow[idx] = nil
	for i, v := range h.ovFree {
		if v == idx {
			return
		}
		if v > idx {
			h.ovFree = append(h.ovFree, 0)
			copy(h.ovFree[i+1:], h.ovFree[i:])
			h.ovFree[i] = idx
			return
		}
	}
	h.ovFree = append(h.ovFree, idx)
}

// Delete tombstones the row at rid. A page whose last live record is
// deleted resets to factory state and becomes reusable by inserts; its
// buffer-pool residency is dropped.
func (h *HeapFile) Delete(rid RID) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.deleteLocked(rid)
}

func (h *HeapFile) deleteLocked(rid RID) error {
	if int(rid.Page) >= len(h.pages) {
		return errors.New("storage: page out of range")
	}
	p := h.pages[rid.Page]
	rec, err := p.read(int(rid.Slot))
	if err != nil {
		return err
	}
	if len(rec) > 0 && rec[0] == tagOverflow {
		idx, n := binary.Uvarint(rec[1:])
		if n <= 0 || idx >= uint64(len(h.overflow)) {
			return errors.New("storage: corrupt overflow stub")
		}
		h.freeOverflowLocked(int(idx))
	}
	p.kill(int(rid.Slot))
	h.rows--
	if p.liveSlots() == 0 {
		p.reset()
		h.addOpen(int(rid.Page))
		if h.pool != nil {
			h.pool.Forget(PageID{File: h, Page: int(rid.Page)})
		}
	}
	return nil
}

// Update replaces the row at rid and returns the row's RID afterwards:
// the same RID when the new record fits in place (including an oversized
// record reusing its overflow entry), or a fresh one when the row had to
// move. Movement follows the exact insert placement rules, so replaying
// the same update sequence reproduces the same layout.
func (h *HeapFile) Update(rid RID, row []types.Value) (RID, error) {
	rec := EncodeRecord(row)
	h.mu.Lock()
	defer h.mu.Unlock()
	if int(rid.Page) >= len(h.pages) {
		return RID{}, errors.New("storage: page out of range")
	}
	p := h.pages[rid.Page]
	cur, err := p.read(int(rid.Slot))
	if err != nil {
		return RID{}, err
	}
	if len(cur) > 0 && cur[0] == tagOverflow {
		idx, n := binary.Uvarint(cur[1:])
		if n <= 0 || idx >= uint64(len(h.overflow)) {
			return RID{}, errors.New("storage: corrupt overflow stub")
		}
		if len(rec) > MaxInlineRecord {
			// Oversized before and after: swap the blob, keep the stub.
			h.overflow[idx] = rec
			return rid, nil
		}
		h.freeOverflowLocked(int(idx))
		if len(rec) <= len(cur) {
			p.shrinkSlot(int(rid.Slot), rec)
			return rid, nil
		}
	} else if len(rec) <= MaxInlineRecord && len(rec) <= len(cur) {
		p.shrinkSlot(int(rid.Slot), rec)
		return rid, nil
	}
	// The new record does not fit the old slot: move the row.
	p.kill(int(rid.Slot))
	h.rows--
	if p.liveSlots() == 0 {
		p.reset()
		h.addOpen(int(rid.Page))
		if h.pool != nil {
			h.pool.Forget(PageID{File: h, Page: int(rid.Page)})
		}
	}
	return h.insertLocked(rec), nil
}

// FreePages returns the number of reset pages currently awaiting reuse.
func (h *HeapFile) FreePages() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.open)
}

// pageSnapshot returns the current page directory. The slice itself is
// never mutated in place (Insert only appends); page contents can change
// under mutation statements, but the engine serializes those against
// queries, so snapshot holders read stable pages.
func (h *HeapFile) pageSnapshot() []*page {
	h.mu.RLock()
	ps := h.pages
	h.mu.RUnlock()
	return ps
}

// Get fetches the row at rid.
func (h *HeapFile) Get(rid RID) ([]types.Value, error) {
	pages := h.pageSnapshot()
	if int(rid.Page) >= len(pages) {
		return nil, errors.New("storage: page out of range")
	}
	if h.pool != nil {
		h.pool.Touch(PageID{File: h, Page: int(rid.Page)})
	}
	rec, err := pages[rid.Page].read(int(rid.Slot))
	if err != nil {
		return nil, err
	}
	return h.decode(rec)
}

func (h *HeapFile) decode(rec []byte) ([]types.Value, error) {
	if len(rec) > 0 && rec[0] == tagOverflow {
		idx, n := binary.Uvarint(rec[1:])
		h.mu.RLock()
		overflow := h.overflow
		h.mu.RUnlock()
		if n <= 0 || idx >= uint64(len(overflow)) {
			return nil, errors.New("storage: corrupt overflow stub")
		}
		if h.pool != nil {
			// Overflow records occupy their own page run; count one
			// logical access per overflow page.
			for i := 0; i < pagesFor(len(overflow[idx])); i++ {
				h.pool.Touch(PageID{File: h, Page: -1 - int(idx)*1024 - i})
			}
		}
		rec = overflow[idx]
	}
	return DecodeRecord(rec)
}

// Scan visits every row in insertion order. The callback's row slice is
// freshly decoded and owned by the callee. Returning an error stops the
// scan and propagates the error.
func (h *HeapFile) Scan(fn func(RID, []types.Value) error) error {
	for pi, p := range h.pageSnapshot() {
		if h.pool != nil {
			h.pool.Touch(PageID{File: h, Page: pi})
		}
		for si := 0; si < p.nslots(); si++ {
			if !p.slotLive(si) {
				continue
			}
			rec, err := p.read(si)
			if err != nil {
				return err
			}
			row, err := h.decode(rec)
			if err != nil {
				return err
			}
			if err := fn(RID{Page: int32(pi), Slot: int32(si)}, row); err != nil {
				return err
			}
		}
	}
	return nil
}

// Rows returns the number of stored rows.
func (h *HeapFile) Rows() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.rows
}

// DataPages returns the number of data pages (excluding overflow runs) —
// the page range a full scan covers, which the parallel executor splits
// into morsels.
func (h *HeapFile) DataPages() int { return len(h.pageSnapshot()) }

// Cursor iterates a contiguous page range of the heap file in insertion
// order, pull-style, for the executor's iterator model. It works over a
// snapshot of the page directory, so concurrent cursors over the same
// file never interfere.
type Cursor struct {
	h     *HeapFile
	pages []*page // snapshot of the covered range
	base  int     // page number of pages[0]
	i     int     // index into pages
	slot  int
}

// NewCursor returns a cursor over the whole file, positioned before the
// first row.
func (h *HeapFile) NewCursor() *Cursor {
	return h.NewRangeCursor(0, h.DataPages())
}

// NewRangeCursor returns a cursor over pages [lo, hi), clamped to the
// file's current extent — the access path of one morsel of a parallel
// scan.
func (h *HeapFile) NewRangeCursor(lo, hi int) *Cursor {
	pages := h.pageSnapshot()
	if lo < 0 {
		lo = 0
	}
	if hi > len(pages) {
		hi = len(pages)
	}
	if lo > hi {
		lo = hi
	}
	return &Cursor{h: h, pages: pages[lo:hi], base: lo}
}

// Next returns the next row and its RID, or ok=false at the end.
func (c *Cursor) Next() (RID, []types.Value, bool, error) {
	for c.i < len(c.pages) {
		p := c.pages[c.i]
		if c.slot >= p.nslots() {
			c.i++
			c.slot = 0
			continue
		}
		if c.slot == 0 && c.h.pool != nil {
			c.h.pool.Touch(PageID{File: c.h, Page: c.base + c.i})
		}
		if !p.slotLive(c.slot) {
			c.slot++
			continue
		}
		rec, err := p.read(c.slot)
		if err != nil {
			return RID{}, nil, false, err
		}
		row, err := c.h.decode(rec)
		if err != nil {
			return RID{}, nil, false, err
		}
		rid := RID{Page: int32(c.base + c.i), Slot: int32(c.slot)}
		c.slot++
		return rid, row, true, nil
	}
	return RID{}, nil, false, nil
}

// decodeInto decodes one record into column arrays at row, resolving
// overflow stubs exactly like decode (including the logical buffer-pool
// touches for overflow page runs).
func (h *HeapFile) decodeInto(rec []byte, cols [][]types.Value, row int) error {
	if len(rec) > 0 && rec[0] == tagOverflow {
		idx, n := binary.Uvarint(rec[1:])
		h.mu.RLock()
		overflow := h.overflow
		h.mu.RUnlock()
		if n <= 0 || idx >= uint64(len(overflow)) {
			return errors.New("storage: corrupt overflow stub")
		}
		if h.pool != nil {
			for i := 0; i < pagesFor(len(overflow[idx])); i++ {
				h.pool.Touch(PageID{File: h, Page: -1 - int(idx)*1024 - i})
			}
		}
		rec = overflow[idx]
	}
	return DecodeRecordCols(rec, cols, row)
}

// NextBatch decodes up to max rows into the column arrays cols — the
// batch access path of vectorized scans. cols must hold one slice per
// table column, each at least max long; rows land in cols[j][0:n] in
// cursor order. It returns the number of rows decoded; 0 means the page
// range is exhausted. Buffer-pool accounting is identical to Next
// (one Touch per page entered).
func (c *Cursor) NextBatch(cols [][]types.Value, max int) (int, error) {
	n := 0
	for n < max && c.i < len(c.pages) {
		p := c.pages[c.i]
		if c.slot >= p.nslots() {
			c.i++
			c.slot = 0
			continue
		}
		if c.slot == 0 && c.h.pool != nil {
			c.h.pool.Touch(PageID{File: c.h, Page: c.base + c.i})
		}
		if !p.slotLive(c.slot) {
			c.slot++
			continue
		}
		rec, err := p.read(c.slot)
		if err != nil {
			return n, err
		}
		if err := c.h.decodeInto(rec, cols, n); err != nil {
			return n, err
		}
		c.slot++
		n++
	}
	return n, nil
}

// PageCount returns the number of pages the file occupies, counting
// overflow storage in page units.
func (h *HeapFile) PageCount() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	n := len(h.pages)
	for _, o := range h.overflow {
		n += pagesFor(len(o))
	}
	return n
}

// DataBytes returns the storage footprint in bytes (page-granular).
func (h *HeapFile) DataBytes() int64 { return int64(h.PageCount()) * PageSize }

func pagesFor(n int) int { return (n + PageSize - 1) / PageSize }
