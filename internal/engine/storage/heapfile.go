package storage

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/engine/types"
)

// RID identifies a record by page number and slot within the page.
type RID struct {
	Page int32
	Slot int32
}

// String renders the RID for diagnostics.
func (r RID) String() string { return fmt.Sprintf("(%d,%d)", r.Page, r.Slot) }

// HeapFile is an append-only heap of records in slotted pages. Records
// larger than a page spill into dedicated overflow storage, referenced by
// an in-page stub so scan order is preserved. The workload of the paper is
// load-then-query, so deletion and in-place update are intentionally not
// provided.
type HeapFile struct {
	pages    []*page
	overflow [][]byte
	rows     int
	pool     *BufferPool
}

// NewHeapFile returns an empty heap file. The buffer pool is optional; if
// present, page reads are accounted against it.
func NewHeapFile(pool *BufferPool) *HeapFile {
	return &HeapFile{pool: pool}
}

// Insert appends a row and returns its RID.
func (h *HeapFile) Insert(row []types.Value) RID {
	rec := EncodeRecord(row)
	if len(rec) > maxInlineRecord {
		idx := len(h.overflow)
		h.overflow = append(h.overflow, rec)
		stub := make([]byte, 1, 1+binary.MaxVarintLen64)
		stub[0] = tagOverflow
		stub = binary.AppendUvarint(stub, uint64(idx))
		rec = stub
	}
	if len(h.pages) == 0 || !h.fitsLast(rec) {
		h.pages = append(h.pages, newPage())
	}
	pageNo := len(h.pages) - 1
	slot, ok := h.pages[pageNo].insert(rec)
	if !ok {
		// A fresh page always fits a stub or inline record by
		// construction.
		panic("storage: record insert failed on fresh page")
	}
	h.rows++
	return RID{Page: int32(pageNo), Slot: int32(slot)}
}

func (h *HeapFile) fitsLast(rec []byte) bool {
	return len(rec) <= h.pages[len(h.pages)-1].freeSpace()
}

// Get fetches the row at rid.
func (h *HeapFile) Get(rid RID) ([]types.Value, error) {
	if int(rid.Page) >= len(h.pages) {
		return nil, errors.New("storage: page out of range")
	}
	if h.pool != nil {
		h.pool.Touch(PageID{File: h, Page: int(rid.Page)})
	}
	rec, err := h.pages[rid.Page].read(int(rid.Slot))
	if err != nil {
		return nil, err
	}
	return h.decode(rec)
}

func (h *HeapFile) decode(rec []byte) ([]types.Value, error) {
	if len(rec) > 0 && rec[0] == tagOverflow {
		idx, n := binary.Uvarint(rec[1:])
		if n <= 0 || idx >= uint64(len(h.overflow)) {
			return nil, errors.New("storage: corrupt overflow stub")
		}
		if h.pool != nil {
			// Overflow records occupy their own page run; count one
			// logical access per overflow page.
			for i := 0; i < pagesFor(len(h.overflow[idx])); i++ {
				h.pool.Touch(PageID{File: h, Page: -1 - int(idx)*1024 - i})
			}
		}
		rec = h.overflow[idx]
	}
	return DecodeRecord(rec)
}

// Scan visits every row in insertion order. The callback's row slice is
// freshly decoded and owned by the callee. Returning an error stops the
// scan and propagates the error.
func (h *HeapFile) Scan(fn func(RID, []types.Value) error) error {
	for pi, p := range h.pages {
		if h.pool != nil {
			h.pool.Touch(PageID{File: h, Page: pi})
		}
		for si := 0; si < p.nslots(); si++ {
			rec, err := p.read(si)
			if err != nil {
				return err
			}
			row, err := h.decode(rec)
			if err != nil {
				return err
			}
			if err := fn(RID{Page: int32(pi), Slot: int32(si)}, row); err != nil {
				return err
			}
		}
	}
	return nil
}

// Rows returns the number of stored rows.
func (h *HeapFile) Rows() int { return h.rows }

// Cursor iterates the heap file in insertion order, pull-style, for the
// executor's iterator model.
type Cursor struct {
	h    *HeapFile
	page int
	slot int
}

// NewCursor returns a cursor positioned before the first row.
func (h *HeapFile) NewCursor() *Cursor {
	return &Cursor{h: h}
}

// Next returns the next row and its RID, or ok=false at the end.
func (c *Cursor) Next() (RID, []types.Value, bool, error) {
	for c.page < len(c.h.pages) {
		p := c.h.pages[c.page]
		if c.slot >= p.nslots() {
			c.page++
			c.slot = 0
			continue
		}
		if c.slot == 0 && c.h.pool != nil {
			c.h.pool.Touch(PageID{File: c.h, Page: c.page})
		}
		rec, err := p.read(c.slot)
		if err != nil {
			return RID{}, nil, false, err
		}
		row, err := c.h.decode(rec)
		if err != nil {
			return RID{}, nil, false, err
		}
		rid := RID{Page: int32(c.page), Slot: int32(c.slot)}
		c.slot++
		return rid, row, true, nil
	}
	return RID{}, nil, false, nil
}

// PageCount returns the number of pages the file occupies, counting
// overflow storage in page units.
func (h *HeapFile) PageCount() int {
	n := len(h.pages)
	for _, o := range h.overflow {
		n += pagesFor(len(o))
	}
	return n
}

// DataBytes returns the storage footprint in bytes (page-granular).
func (h *HeapFile) DataBytes() int64 { return int64(h.PageCount()) * PageSize }

func pagesFor(n int) int { return (n + PageSize - 1) / PageSize }
