package storage

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path"
	"sort"
	"sync"
)

// VFS abstracts the filesystem operations the durability layer performs
// (write-ahead log and checkpoint files). Production code uses OSFS; tests
// drive every recovery path deterministically through MemVFS wrapped in a
// FaultVFS, without killing the process. Paths are slash-separated.
type VFS interface {
	// Create opens name for writing, creating it and truncating any
	// existing content.
	Create(name string) (File, error)
	// Open opens an existing file for reading and writing; the error
	// wraps fs.ErrNotExist when the file is missing.
	Open(name string) (File, error)
	// Remove deletes a file.
	Remove(name string) error
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(dir string) error
	// Stat returns the size of name; the error wraps fs.ErrNotExist when
	// the file is missing.
	Stat(name string) (int64, error)
}

// File is an open file of a VFS.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// Sync makes previously written data durable.
	Sync() error
	// Truncate cuts the file to size bytes.
	Truncate(size int64) error
}

// OSFS is the passthrough VFS over the operating system's filesystem.
type OSFS struct{}

// Create implements VFS.
func (OSFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

// Open implements VFS.
func (OSFS) Open(name string) (File, error) { return os.OpenFile(name, os.O_RDWR, 0) }

// Remove implements VFS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// Rename implements VFS.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// MkdirAll implements VFS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Stat implements VFS.
func (OSFS) Stat(name string) (int64, error) {
	fi, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// MemVFS is an in-memory VFS. It is safe for concurrent use and survives
// across FaultVFS crash points: a simulated crash discards the faulting
// wrapper, and recovery reopens the same MemVFS to see exactly the bytes
// that were written before the crash.
type MemVFS struct {
	mu    sync.Mutex
	files map[string]*memData
	dirs  map[string]bool
}

type memData struct {
	b []byte
}

// NewMemVFS returns an empty in-memory filesystem.
func NewMemVFS() *MemVFS {
	return &MemVFS{files: map[string]*memData{}, dirs: map[string]bool{"": true, ".": true}}
}

// Create implements VFS.
func (v *MemVFS) Create(name string) (File, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	d := &memData{}
	v.files[path.Clean(name)] = d
	return &memFile{vfs: v, data: d}, nil
}

// Open implements VFS.
func (v *MemVFS) Open(name string) (File, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	d, ok := v.files[path.Clean(name)]
	if !ok {
		return nil, fmt.Errorf("memvfs: open %s: %w", name, fs.ErrNotExist)
	}
	return &memFile{vfs: v, data: d}, nil
}

// Remove implements VFS.
func (v *MemVFS) Remove(name string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	name = path.Clean(name)
	if _, ok := v.files[name]; !ok {
		return fmt.Errorf("memvfs: remove %s: %w", name, fs.ErrNotExist)
	}
	delete(v.files, name)
	return nil
}

// Rename implements VFS.
func (v *MemVFS) Rename(oldpath, newpath string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	d, ok := v.files[path.Clean(oldpath)]
	if !ok {
		return fmt.Errorf("memvfs: rename %s: %w", oldpath, fs.ErrNotExist)
	}
	delete(v.files, path.Clean(oldpath))
	v.files[path.Clean(newpath)] = d
	return nil
}

// MkdirAll implements VFS.
func (v *MemVFS) MkdirAll(dir string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.dirs[path.Clean(dir)] = true
	return nil
}

// Stat implements VFS.
func (v *MemVFS) Stat(name string) (int64, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	d, ok := v.files[path.Clean(name)]
	if !ok {
		return 0, fmt.Errorf("memvfs: stat %s: %w", name, fs.ErrNotExist)
	}
	return int64(len(d.b)), nil
}

// Names returns the stored file names, sorted, for diagnostics.
func (v *MemVFS) Names() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]string, 0, len(v.files))
	for name := range v.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

type memFile struct {
	vfs  *MemVFS
	data *memData
	pos  int64
}

func (f *memFile) Read(p []byte) (int, error) {
	f.vfs.mu.Lock()
	defer f.vfs.mu.Unlock()
	if f.pos >= int64(len(f.data.b)) {
		return 0, io.EOF
	}
	n := copy(p, f.data.b[f.pos:])
	f.pos += int64(n)
	return n, nil
}

func (f *memFile) Write(p []byte) (int, error) {
	f.vfs.mu.Lock()
	defer f.vfs.mu.Unlock()
	end := f.pos + int64(len(p))
	if end > int64(len(f.data.b)) {
		grown := make([]byte, end)
		copy(grown, f.data.b)
		f.data.b = grown
	}
	copy(f.data.b[f.pos:end], p)
	f.pos = end
	return len(p), nil
}

func (f *memFile) Seek(offset int64, whence int) (int64, error) {
	f.vfs.mu.Lock()
	defer f.vfs.mu.Unlock()
	switch whence {
	case io.SeekStart:
		f.pos = offset
	case io.SeekCurrent:
		f.pos += offset
	case io.SeekEnd:
		f.pos = int64(len(f.data.b)) + offset
	default:
		return 0, errors.New("memvfs: bad whence")
	}
	if f.pos < 0 {
		f.pos = 0
		return 0, errors.New("memvfs: negative seek")
	}
	return f.pos, nil
}

func (f *memFile) Close() error { return nil }
func (f *memFile) Sync() error  { return nil }

func (f *memFile) Truncate(size int64) error {
	f.vfs.mu.Lock()
	defer f.vfs.mu.Unlock()
	if size < 0 {
		return errors.New("memvfs: negative truncate")
	}
	if size <= int64(len(f.data.b)) {
		f.data.b = f.data.b[:size]
	} else {
		grown := make([]byte, size)
		copy(grown, f.data.b)
		f.data.b = grown
	}
	return nil
}

// ErrCrashed is returned by every FaultVFS operation at and after the
// injected crash point: the simulated process is dead, so no further
// mutation reaches the underlying filesystem.
var ErrCrashed = errors.New("storage: simulated crash")

// FaultVFS wraps a VFS with a deterministic fault schedule. Every
// mutating operation (create, write, sync, truncate, rename, remove,
// mkdir) increments a global counter; the operation whose 1-based index
// equals FailAtOp fails, and every later operation fails too (crash-stop
// semantics — the process never gets to issue more I/O). If the failing
// operation is a write and Torn is set, a prefix of the buffer reaches
// the underlying file first, modeling a torn write.
//
// Running a workload once with FailAtOp 0 and reading OpCount/OpKinds
// yields the complete crash-point schedule; rerunning it once per index
// enumerates every reachable crash state.
//
// Transient switches the schedule from crash-stop to single-fault: only
// the FailAtOp-th operation fails and later I/O proceeds normally. That
// models a recoverable I/O error (ENOSPC, EIO) rather than a dead
// process, and lets error-path cleanup — e.g. a spilling operator
// removing its partial run files — be asserted against the inner VFS.
type FaultVFS struct {
	Inner VFS
	// FailAtOp is the 1-based index of the first operation to fail; 0
	// disables fault injection.
	FailAtOp int
	// Torn makes the failing write persist the first half of its buffer.
	Torn bool
	// Transient fails only the FailAtOp-th operation instead of that one
	// and every later one.
	Transient bool

	mu      sync.Mutex
	ops     int
	kinds   []string
	crashed bool
}

// OpCount returns the number of mutating operations attempted so far.
func (v *FaultVFS) OpCount() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.ops
}

// OpKinds returns the kind of each mutating operation attempted so far
// ("write", "sync", ...), indexed by operation number minus one.
func (v *FaultVFS) OpKinds() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	return append([]string(nil), v.kinds...)
}

// Crashed reports whether the fault has triggered.
func (v *FaultVFS) Crashed() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.crashed
}

// step records one mutating operation and reports whether it must fail;
// the second result is true when this operation is the crash point itself
// (eligible for a torn prefix).
func (v *FaultVFS) step(kind string) (fail, atPoint bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.ops++
	v.kinds = append(v.kinds, kind)
	if v.crashed {
		return true, false
	}
	if v.FailAtOp > 0 && v.ops >= v.FailAtOp {
		if v.Transient {
			// Single-fault mode: this operation fails, the process lives
			// on, and no later operation is scheduled to fail.
			if v.ops == v.FailAtOp {
				return true, true
			}
			return false, false
		}
		v.crashed = true
		return true, true
	}
	return false, false
}

// Create implements VFS.
func (v *FaultVFS) Create(name string) (File, error) {
	if fail, _ := v.step("create"); fail {
		return nil, fmt.Errorf("create %s: %w", name, ErrCrashed)
	}
	f, err := v.Inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{vfs: v, inner: f, name: name}, nil
}

// Open implements VFS. Opening is read-side and never counts as a
// mutating operation, but a crashed VFS refuses it anyway.
func (v *FaultVFS) Open(name string) (File, error) {
	if v.Crashed() {
		return nil, fmt.Errorf("open %s: %w", name, ErrCrashed)
	}
	f, err := v.Inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{vfs: v, inner: f, name: name}, nil
}

// Remove implements VFS.
func (v *FaultVFS) Remove(name string) error {
	if fail, _ := v.step("remove"); fail {
		return fmt.Errorf("remove %s: %w", name, ErrCrashed)
	}
	return v.Inner.Remove(name)
}

// Rename implements VFS.
func (v *FaultVFS) Rename(oldpath, newpath string) error {
	if fail, _ := v.step("rename"); fail {
		return fmt.Errorf("rename %s: %w", oldpath, ErrCrashed)
	}
	return v.Inner.Rename(oldpath, newpath)
}

// MkdirAll implements VFS.
func (v *FaultVFS) MkdirAll(dir string) error {
	if fail, _ := v.step("mkdir"); fail {
		return fmt.Errorf("mkdir %s: %w", dir, ErrCrashed)
	}
	return v.Inner.MkdirAll(dir)
}

// Stat implements VFS.
func (v *FaultVFS) Stat(name string) (int64, error) {
	if v.Crashed() {
		return 0, fmt.Errorf("stat %s: %w", name, ErrCrashed)
	}
	return v.Inner.Stat(name)
}

type faultFile struct {
	vfs   *FaultVFS
	inner File
	name  string
}

func (f *faultFile) Read(p []byte) (int, error) {
	if f.vfs.Crashed() {
		return 0, ErrCrashed
	}
	return f.inner.Read(p)
}

func (f *faultFile) Write(p []byte) (int, error) {
	fail, atPoint := f.vfs.step("write")
	if fail {
		if atPoint && f.vfs.Torn && len(p) >= 2 {
			// Torn write: half the buffer reaches the disk before the
			// crash.
			if n, err := f.inner.Write(p[:len(p)/2]); err != nil {
				return n, err
			}
		}
		return 0, fmt.Errorf("write %s: %w", f.name, ErrCrashed)
	}
	return f.inner.Write(p)
}

func (f *faultFile) Seek(offset int64, whence int) (int64, error) {
	if f.vfs.Crashed() {
		return 0, ErrCrashed
	}
	return f.inner.Seek(offset, whence)
}

func (f *faultFile) Close() error {
	// Closing is not a mutating operation; a crashed process's
	// descriptors are closed by the kernel regardless.
	return f.inner.Close()
}

func (f *faultFile) Sync() error {
	if fail, _ := f.vfs.step("sync"); fail {
		return fmt.Errorf("sync %s: %w", f.name, ErrCrashed)
	}
	return f.inner.Sync()
}

func (f *faultFile) Truncate(size int64) error {
	if fail, _ := f.vfs.step("truncate"); fail {
		return fmt.Errorf("truncate %s: %w", f.name, ErrCrashed)
	}
	return f.inner.Truncate(size)
}

// IsNotExist reports whether err means a VFS file was missing.
func IsNotExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }
