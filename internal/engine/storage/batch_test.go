package storage

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/engine/types"
)

func TestDecodeRecordCols(t *testing.T) {
	row := []types.Value{
		types.NewInt(42),
		types.NewString("hello"),
		types.Null,
		types.NewXADT([]byte("<a>frag</a>")),
		types.NewBool(true),
	}
	cols := make([][]types.Value, len(row))
	for j := range cols {
		cols[j] = make([]types.Value, 4)
	}
	if err := DecodeRecordCols(EncodeRecord(row), cols, 2); err != nil {
		t.Fatal(err)
	}
	for j := range row {
		if !types.Equal(cols[j][2], row[j]) {
			t.Errorf("column %d = %v, want %v", j, cols[j][2], row[j])
		}
	}
	// Arity mismatch must fail loudly, not silently truncate.
	if err := DecodeRecordCols(EncodeRecord(row), cols[:3], 0); err == nil {
		t.Fatal("arity mismatch not detected")
	}
}

func TestCursorNextBatchMatchesNext(t *testing.T) {
	h := NewHeapFile(nil)
	const n = 3000
	// Mix in an overflow row so NextBatch exercises stub resolution.
	big := types.NewString(strings.Repeat("x", MaxInlineRecord+10))
	for i := 0; i < n; i++ {
		v := types.NewString(fmt.Sprintf("s%d", i))
		if i == 1234 {
			v = big
		}
		h.Insert([]types.Value{types.NewInt(int64(i)), v})
	}

	var rowwise [][]types.Value
	cur := h.NewCursor()
	for {
		_, row, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		rowwise = append(rowwise, row)
	}

	cols := [][]types.Value{make([]types.Value, 100), make([]types.Value, 100)}
	bc := h.NewCursor()
	got := 0
	for {
		// Deliberately small batches so page boundaries land mid-batch.
		k, err := bc.NextBatch(cols, 100)
		if err != nil {
			t.Fatal(err)
		}
		if k == 0 {
			break
		}
		for i := 0; i < k; i++ {
			if got+i >= len(rowwise) {
				t.Fatalf("batch cursor produced more than %d rows", len(rowwise))
			}
			for j := range cols {
				if !types.Equal(cols[j][i], rowwise[got+i][j]) {
					t.Fatalf("row %d col %d = %v, want %v", got+i, j, cols[j][i], rowwise[got+i][j])
				}
			}
		}
		got += k
	}
	if got != n {
		t.Fatalf("batch cursor produced %d rows, want %d", got, n)
	}
}

func TestCursorNextBatchTouchAccounting(t *testing.T) {
	bp := NewBufferPool(64)
	h := NewHeapFile(bp)
	for i := 0; i < 2000; i++ {
		h.Insert([]types.Value{types.NewInt(int64(i))})
	}

	rowCur := h.NewCursor()
	for {
		_, _, ok, err := rowCur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	rowStats := bp.Stats()

	bp2 := NewBufferPool(64)
	h2 := NewHeapFile(bp2)
	for i := 0; i < 2000; i++ {
		h2.Insert([]types.Value{types.NewInt(int64(i))})
	}
	cols := [][]types.Value{make([]types.Value, 512)}
	bc := h2.NewCursor()
	for {
		k, err := bc.NextBatch(cols, 512)
		if err != nil {
			t.Fatal(err)
		}
		if k == 0 {
			break
		}
	}
	batchStats := bp2.Stats()
	if rowStats != batchStats {
		t.Fatalf("buffer-pool accounting diverged: row %+v vs batch %+v", rowStats, batchStats)
	}
}
