package engine

import (
	"fmt"

	"repro/internal/engine/catalog"
	"repro/internal/engine/exec"
	"repro/internal/engine/expr"
	"repro/internal/engine/mvcc"
	"repro/internal/engine/plan"
	"repro/internal/engine/sql"
	"repro/internal/engine/storage"
	"repro/internal/engine/types"
)

// Session is one transaction's execution context under MVCC snapshot
// isolation. Queries and DML run against the snapshot the session began
// on, plus the session's own uncommitted writes (read-own-writes via a
// per-table overlay). Mutations are recorded as an op list and replayed
// against the shared catalog only at Commit, after first-committer-wins
// conflict detection; Rollback discards them without touching shared
// state. Sessions are not safe for use from multiple goroutines; open
// one session per goroutine instead.
type Session struct {
	db      *Database
	txn     *mvcc.Txn
	planner *plan.Planner
	ops     []mvcc.Op
	overlay map[string]*tableOverlay
	nins    int
	closed  bool
}

// tableOverlay is one table's uncommitted session writes, layered over
// the materialized snapshot view. Keys are view RIDs (pseudo RIDs for
// the session's own inserts).
type tableOverlay struct {
	deleted  map[storage.RID]bool
	updated  map[storage.RID][]types.Value
	inserted []mvcc.VRow
}

// Begin opens a snapshot session. The database must have been opened
// with Config.MVCC (or EnableMVCC called).
func (db *Database) Begin() (*Session, error) {
	if db.TxnMgr == nil {
		return nil, fmt.Errorf("engine: Begin requires Config.MVCC")
	}
	s := &Session{
		db:      db,
		txn:     db.TxnMgr.Begin(),
		overlay: make(map[string]*tableOverlay),
	}
	// Sessions plan serial row-at-a-time trees over materialized views:
	// morsel parallelism, vectorized page decoding, fragment-index
	// probes, and index nested loops all walk shared physical structures
	// that a snapshot cannot trust, so the Views provider gates them off.
	opts := db.planner.Opts
	opts.DOP = 1
	opts.DisableVectorized = true
	opts.Views = s
	s.planner = &plan.Planner{Cat: db.planner.Cat, Reg: db.planner.Reg, Opts: opts, Spill: db.planner.Spill}
	return s, nil
}

// Snapshot returns the session's snapshot timestamp.
func (s *Session) Snapshot() uint64 { return s.txn.Snapshot() }

// Ops returns the mutation ops recorded so far, in execution order.
func (s *Session) Ops() []mvcc.Op { return s.ops }

// Append records an op without overlay bookkeeping; core's document ops
// use it together with OverlayDelete/OverlayUpdate and Touch.
func (s *Session) Append(op mvcc.Op) { s.ops = append(s.ops, op) }

// Touch registers a write-write conflict key for commit-time detection.
func (s *Session) Touch(key string) { s.txn.Touch(key) }

// TouchRow registers the conflict key of a view row; pseudo RIDs (the
// session's own inserts) carry no key — nothing committed can conflict
// with a row nobody else has seen.
func (s *Session) TouchRow(table string, rid storage.RID) {
	if !mvcc.IsPseudo(rid) {
		s.txn.Touch(mvcc.RowKey(table, rid))
	}
}

// NextPseudoRID hands out the next pseudo RID for a session-local
// insert.
func (s *Session) NextPseudoRID() storage.RID {
	rid := mvcc.PseudoRID(s.nins)
	s.nins++
	return rid
}

// OverlayInsert layers an uncommitted insert over the snapshot view.
func (s *Session) OverlayInsert(table string, rid storage.RID, row []types.Value) {
	ov := s.tableOverlay(table)
	ov.inserted = append(ov.inserted, mvcc.VRow{RID: rid, Row: row})
}

// OverlayDelete hides a view row from the session's later reads.
func (s *Session) OverlayDelete(table string, rid storage.RID) {
	s.tableOverlay(table).deleted[rid] = true
}

// OverlayUpdate replaces a view row's image in the session's later
// reads.
func (s *Session) OverlayUpdate(table string, rid storage.RID, row []types.Value) {
	s.tableOverlay(table).updated[rid] = row
}

func (s *Session) tableOverlay(table string) *tableOverlay {
	ov := s.overlay[table]
	if ov == nil {
		ov = &tableOverlay{
			deleted: make(map[storage.RID]bool),
			updated: make(map[storage.RID][]types.Value),
		}
		s.overlay[table] = ov
	}
	return ov
}

// TableView implements plan.ViewProvider: the table's rows as of the
// session's snapshot, with the session's own uncommitted writes applied.
// Base rows come out in RID order (heap-scan order), the session's own
// inserts after them in execution order.
func (s *Session) TableView(table string) (*mvcc.View, error) {
	if s.closed {
		return nil, fmt.Errorf("engine: session is closed")
	}
	t := s.db.Catalog.Table(table)
	if t == nil {
		return nil, fmt.Errorf("engine: unknown table %q", table)
	}
	base, err := s.db.TxnMgr.Materialize(t.V, s.txn.Snapshot(), t.Heap.Scan)
	if err != nil {
		return nil, err
	}
	ov := s.overlay[table]
	if ov == nil {
		return base, nil
	}
	out := make([]mvcc.VRow, 0, len(base.Rows)+len(ov.inserted))
	apply := func(vr mvcc.VRow) {
		if ov.deleted[vr.RID] {
			return
		}
		if row, ok := ov.updated[vr.RID]; ok {
			vr.Row = row
		}
		out = append(out, vr)
	}
	for _, vr := range base.Rows {
		apply(vr)
	}
	for _, vr := range ov.inserted {
		apply(vr)
	}
	return &mvcc.View{Rows: out}, nil
}

// Query compiles and runs a SELECT under the session snapshot.
func (s *Session) Query(query string) (*Result, error) {
	if s.closed {
		return nil, fmt.Errorf("engine: session is closed")
	}
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	op, err := s.planner.Plan(stmt)
	if err != nil {
		return nil, err
	}
	rows, err := exec.Drain(op)
	if err != nil {
		return nil, fmt.Errorf("engine: executing %q: %w", query, err)
	}
	return &Result{Cols: op.Schema().Names(), Rows: rows}, nil
}

// Exec runs any statement under the session. SELECTs return their row
// count; DML is validated and recorded against the session's view —
// visible to this session immediately, applied to shared state only at
// Commit — and returns the affected-row count. A statement that errors
// records nothing.
func (s *Session) Exec(query string) (int64, error) {
	if s.closed {
		return 0, fmt.Errorf("engine: session is closed")
	}
	stmt, err := sql.ParseStatement(query)
	if err != nil {
		return 0, err
	}
	if _, ok := stmt.(*sql.SelectStmt); ok {
		res, err := s.Query(query)
		if err != nil {
			return 0, err
		}
		return int64(len(res.Rows)), nil
	}
	op, err := s.planner.PlanStatement(stmt, nil)
	if err != nil {
		return 0, err
	}
	switch m := op.(type) {
	case *exec.InsertOp:
		return s.execInsert(m)
	case *exec.DeleteOp:
		return s.execDelete(m)
	case *exec.UpdateOp:
		return s.execUpdate(m)
	default:
		return 0, fmt.Errorf("engine: unsupported statement in session")
	}
}

func (s *Session) execInsert(m *exec.InsertOp) (int64, error) {
	table := m.Table.Schema.Table
	for _, row := range m.Rows {
		if err := m.Table.ValidateRow(row); err != nil {
			return 0, err
		}
	}
	for _, row := range m.Rows {
		rid := s.NextPseudoRID()
		s.Append(mvcc.Op{Kind: mvcc.OpRowInsert, Table: table, RID: rid, Row: row})
		s.OverlayInsert(table, rid, row)
	}
	return int64(len(m.Rows)), nil
}

func (s *Session) execDelete(m *exec.DeleteOp) (int64, error) {
	table := m.Table.Schema.Table
	victims, err := s.matchView(table, m.Index, m.Key, m.Pred)
	if err != nil {
		return 0, err
	}
	for _, vr := range victims {
		s.Append(mvcc.Op{Kind: mvcc.OpRowDelete, Table: table, RID: vr.RID})
		s.OverlayDelete(table, vr.RID)
		s.TouchRow(table, vr.RID)
	}
	return int64(len(victims)), nil
}

func (s *Session) execUpdate(m *exec.UpdateOp) (int64, error) {
	table := m.Table.Schema.Table
	for _, set := range m.Set {
		col := m.Table.Schema.Columns[set.Idx]
		if !set.Val.IsNull() && set.Val.Kind() != col.Type {
			return 0, fmt.Errorf("exec: SET %s expects %v, got %v", col.Name, col.Type, set.Val.Kind())
		}
	}
	victims, err := s.matchView(table, m.Index, m.Key, m.Pred)
	if err != nil {
		return 0, err
	}
	for _, vr := range victims {
		row := append([]types.Value(nil), vr.Row...)
		for _, set := range m.Set {
			row[set.Idx] = set.Val
		}
		s.Append(mvcc.Op{Kind: mvcc.OpRowUpdate, Table: table, RID: vr.RID, Row: row})
		s.OverlayUpdate(table, vr.RID, row)
		s.TouchRow(table, vr.RID)
	}
	return int64(len(victims)), nil
}

// matchView fixes a DML statement's victim set against the session view
// before any op is recorded — the same two-phase discipline as the
// direct operators. A B+tree access path narrows by filtering the view
// on the indexed column (snapshot-safe index visibility); the full
// predicate is always re-verified.
func (s *Session) matchView(table string, idx *catalog.Index, key types.Value, pred expr.Expr) ([]mvcc.VRow, error) {
	view, err := s.TableView(table)
	if err != nil {
		return nil, err
	}
	var out []mvcc.VRow
	for _, vr := range view.Rows {
		if idx != nil && !types.Equal(vr.Row[idx.ColIdx], key) {
			continue
		}
		ok, err := truthy(pred, vr.Row)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, vr)
		}
	}
	return out, nil
}

func truthy(pred expr.Expr, row []types.Value) (bool, error) {
	if pred == nil {
		return true, nil
	}
	v, err := pred.Eval(row)
	if err != nil {
		return false, err
	}
	return v.Truthy(), nil
}

// ApplyOps replays recorded row ops against the live catalog, writing
// redo records to log. Document ops carry loader state the engine does
// not own; the store layer applies those itself.
func (db *Database) ApplyOps(ops []mvcc.Op, log exec.MutationLog) error {
	a := db.NewApplier(log)
	for _, op := range ops {
		if op.Kind == mvcc.OpDocAdd {
			return fmt.Errorf("engine: ApplyOps cannot apply document ops")
		}
		if err := a.Apply(op); err != nil {
			return err
		}
	}
	return nil
}

// CommitWith runs the full commit protocol with a caller-supplied apply
// function (the store layer wires WAL batching and document loading
// through it). On a conflict the transaction is rolled back and the
// error wraps mvcc.ErrConflict. The session is closed either way.
func (s *Session) CommitWith(apply func(commitTS uint64) error) error {
	if s.closed {
		return fmt.Errorf("engine: session is closed")
	}
	s.closed = true
	if len(s.ops) == 0 {
		apply = nil // read-only: release the snapshot, burn no timestamp
	}
	return s.txn.Commit(apply)
}

// Commit applies the session's recorded DML and makes it durable...
// at this layer, without a WAL: pure-engine sessions commit in memory.
// Stores opened with a WALDir commit through core's session wrapper,
// which logs one batch per transaction.
func (s *Session) Commit() error {
	return s.CommitWith(func(uint64) error {
		return s.db.ApplyOps(s.ops, nil)
	})
}

// Rollback discards the session's uncommitted work and releases its
// snapshot. Safe to call after Commit or twice; extra calls are no-ops.
func (s *Session) Rollback() {
	s.closed = true
	s.txn.Rollback()
}
