// Package vec defines the unit of batch-at-a-time execution: a
// column-major row batch with a selection vector, plus a sync.Pool-backed
// buffer cycle so steady-state execution allocates no batches at all.
//
// Ownership contract: a batch returned by an operator's NextBatch is
// owned by that operator and valid only until its next NextBatch or
// Close call (the bufio model). Batches that outlive that window — the
// Gather exchange queues them across goroutines — are compacted copies
// taken from this pool and released back once consumed.
package vec

import (
	"sync"
	"sync/atomic"

	"repro/internal/engine/types"
)

// DefaultBatchRows is the physical capacity of one batch. Large enough
// to amortize per-batch overheads (virtual calls, channel sends) over
// ~1K rows, small enough that a batch of a few columns stays cache- and
// pool-friendly.
const DefaultBatchRows = 1024

// Batch is a column-major slice of rows. Cols[j][i] is column j of
// physical row i; NRows physical rows are populated. Sel, when non-nil,
// lists the active physical row indices in output order — filtering
// narrows Sel instead of moving data. A nil Sel means all NRows rows are
// active.
type Batch struct {
	Cols  [][]types.Value
	Sel   []int
	NRows int

	selbuf []int
}

// Active returns the number of active rows.
func (b *Batch) Active() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.NRows
}

// RowIdx maps an active-row ordinal to its physical row index.
func (b *Batch) RowIdx(i int) int {
	if b.Sel != nil {
		return b.Sel[i]
	}
	return i
}

// SelBuf returns the batch's private selection buffer, sized for Cap
// rows. Filter kernels narrow into it and assign the result to Sel;
// because narrowing only ever writes position k after reading a
// position >= k, in-place re-narrowing of an existing Sel backed by the
// same buffer is safe.
func (b *Batch) SelBuf() []int {
	if cap(b.selbuf) < cap(b.Cols[0]) {
		b.selbuf = make([]int, cap(b.Cols[0]))
	}
	return b.selbuf[:cap(b.selbuf)]
}

// Cap returns the physical row capacity of the batch.
func (b *Batch) Cap() int {
	if len(b.Cols) == 0 {
		return 0
	}
	return cap(b.Cols[0])
}

// Row gathers the active row at ordinal i into dst (allocating when dst
// is too small) and returns it. Used by batch→row adapter shims.
func (b *Batch) Row(i int, dst []types.Value) []types.Value {
	r := b.RowIdx(i)
	if cap(dst) < len(b.Cols) {
		dst = make([]types.Value, len(b.Cols))
	}
	dst = dst[:len(b.Cols)]
	for j, col := range b.Cols {
		dst[j] = col[r]
	}
	return dst
}

// pool recycles batches. All pooled batches have DefaultBatchRows
// capacity; Get reshapes the column count in place.
var pool = sync.Pool{New: func() any { return &Batch{} }}

// outstanding counts batches taken from the pool and not yet released —
// the leak-check counter tests assert returns to zero.
var outstanding atomic.Int64

// Outstanding returns the number of pooled batches currently checked
// out. It is zero whenever no query is mid-execution; tests use it to
// prove the exchange and operator Close paths leak nothing.
func Outstanding() int64 { return outstanding.Load() }

// Get checks a batch with ncols columns of DefaultBatchRows capacity out
// of the pool. The contents are unspecified; NRows and Sel are reset.
func Get(ncols int) *Batch {
	b := pool.Get().(*Batch)
	if cap(b.Cols) < ncols {
		b.Cols = make([][]types.Value, ncols)
	}
	b.Cols = b.Cols[:ncols]
	for j := range b.Cols {
		if cap(b.Cols[j]) < DefaultBatchRows {
			b.Cols[j] = make([]types.Value, DefaultBatchRows)
		}
		b.Cols[j] = b.Cols[j][:DefaultBatchRows]
	}
	b.NRows = 0
	b.Sel = nil
	outstanding.Add(1)
	return b
}

// Release returns a batch obtained from Get to the pool. The caller must
// not touch the batch afterwards. Release(nil) is a no-op.
func Release(b *Batch) {
	if b == nil {
		return
	}
	b.Sel = nil
	b.NRows = 0
	outstanding.Add(-1)
	pool.Put(b)
}

// CompactInto copies the active rows of src into dst (which must have
// the same column count and sufficient capacity), producing a dense
// batch with a nil selection. Used to snapshot a producer-owned batch
// before it crosses an ownership boundary.
func CompactInto(dst, src *Batch) {
	n := src.Active()
	for j := range dst.Cols {
		dj, sj := dst.Cols[j][:n], src.Cols[j]
		if src.Sel == nil {
			copy(dj, sj[:n])
		} else {
			for i, r := range src.Sel {
				dj[i] = sj[r]
			}
		}
		dst.Cols[j] = dj
	}
	dst.NRows = n
	dst.Sel = nil
}
