package vec

import (
	"testing"

	"repro/internal/engine/types"
)

func fillBatch(b *Batch, n int) {
	for j := range b.Cols {
		for i := 0; i < n; i++ {
			b.Cols[j][i] = types.NewInt(int64(100*j + i))
		}
	}
	b.NRows = n
	b.Sel = nil
}

func TestBatchActiveAndRowIdx(t *testing.T) {
	b := Get(2)
	defer Release(b)
	fillBatch(b, 5)
	if b.Active() != 5 {
		t.Fatalf("Active = %d, want 5", b.Active())
	}
	if b.RowIdx(3) != 3 {
		t.Fatalf("RowIdx(3) = %d without Sel", b.RowIdx(3))
	}
	b.Sel = []int{1, 4}
	if b.Active() != 2 || b.RowIdx(1) != 4 {
		t.Fatalf("Active/RowIdx with Sel = %d/%d", b.Active(), b.RowIdx(1))
	}
	row := b.Row(1, nil)
	if row[0].Int() != 4 || row[1].Int() != 104 {
		t.Fatalf("Row(1) = %v", row)
	}
}

func TestPoolOutstandingBalance(t *testing.T) {
	base := Outstanding()
	a := Get(3)
	b := Get(1)
	if got := Outstanding(); got != base+2 {
		t.Fatalf("Outstanding = %d, want %d", got, base+2)
	}
	if len(a.Cols) != 3 || len(b.Cols) != 1 {
		t.Fatalf("column counts %d/%d", len(a.Cols), len(b.Cols))
	}
	for _, c := range append(a.Cols, b.Cols...) {
		if len(c) != DefaultBatchRows {
			t.Fatalf("column capacity %d, want %d", len(c), DefaultBatchRows)
		}
	}
	Release(a)
	Release(b)
	Release(nil) // no-op
	if got := Outstanding(); got != base {
		t.Fatalf("Outstanding after release = %d, want %d", got, base)
	}
	// A recycled batch must come back reshaped and reset.
	c := Get(2)
	defer Release(c)
	if len(c.Cols) != 2 || c.NRows != 0 || c.Sel != nil {
		t.Fatalf("recycled batch not reset: cols=%d nrows=%d sel=%v", len(c.Cols), c.NRows, c.Sel)
	}
}

func TestCompactInto(t *testing.T) {
	src := Get(2)
	dst := Get(2)
	defer Release(src)
	defer Release(dst)
	fillBatch(src, 6)

	// Dense source: a straight copy.
	CompactInto(dst, src)
	if dst.NRows != 6 || dst.Sel != nil || dst.Cols[1][5].Int() != 105 {
		t.Fatalf("dense compact: nrows=%d sel=%v last=%v", dst.NRows, dst.Sel, dst.Cols[1][5])
	}

	// Selective source: gather in selection order, nil out Sel.
	src.Sel = []int{5, 0, 2}
	CompactInto(dst, src)
	if dst.NRows != 3 || dst.Sel != nil {
		t.Fatalf("selective compact: nrows=%d sel=%v", dst.NRows, dst.Sel)
	}
	want := []int64{5, 0, 2}
	for i, w := range want {
		if dst.Cols[0][i].Int() != w {
			t.Fatalf("compacted row %d = %v, want %d", i, dst.Cols[0][i], w)
		}
	}
}

func TestSelBufSizedToCapacity(t *testing.T) {
	b := Get(1)
	defer Release(b)
	fillBatch(b, 4)
	sel := b.SelBuf()
	if len(sel) != DefaultBatchRows {
		t.Fatalf("SelBuf len = %d, want %d", len(sel), DefaultBatchRows)
	}
	// Narrowing in place: write positions only after reading them.
	b.Sel = sel[:3]
	copy(b.Sel, []int{0, 2, 3})
	again := b.SelBuf()
	if &again[0] != &sel[0] {
		t.Fatal("SelBuf reallocated despite sufficient capacity")
	}
}
