package xindex

import (
	"strings"
	"testing"
)

// FuzzPostingCodec drives the delta/skip codec with arbitrary gap
// sequences: append must round-trip exactly, SeekGE must agree with a
// linear reference walk from any starting point, and intersecting the
// two halves of the sequence must match a map-based reference.
func FuzzPostingCodec(f *testing.F) {
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{0})
	f.Add(make([]byte, 3*SkipInterval))
	f.Add([]byte{255, 255, 0, 0, 1, 128, 7})
	f.Fuzz(func(t *testing.T, gaps []byte) {
		vals := make([]uint64, 0, len(gaps))
		p := &PostingList{}
		cur := uint64(0)
		for _, g := range gaps {
			cur += uint64(g) + 1 // strictly increasing
			vals = append(vals, cur)
			if !p.Append(cur) {
				t.Fatalf("Append(%d) rejected an increasing value", cur)
			}
		}
		if p.Len() != len(vals) {
			t.Fatalf("Len = %d, want %d", p.Len(), len(vals))
		}
		got := p.Values()
		for i, v := range got {
			if v != vals[i] {
				t.Fatalf("Values[%d] = %d, want %d", i, v, vals[i])
			}
		}
		// SeekGE from a fresh iterator for a spread of targets, including
		// exact hits, gap interiors, zero, and past-the-end.
		targets := []uint64{0, cur, cur + 1}
		for i := 0; i < len(vals); i += 1 + len(vals)/8 {
			targets = append(targets, vals[i], vals[i]+1)
		}
		for _, target := range targets {
			it := p.Iterator()
			g, ok := it.SeekGE(target)
			w, wok := refSeekGE(vals, target)
			if ok != wok || (ok && g != w) {
				t.Fatalf("SeekGE(%d) = %d,%v want %d,%v", target, g, ok, w, wok)
			}
		}
		// Resumed seeks must never move backwards.
		it := p.Iterator()
		prev := uint64(0)
		for _, target := range targets {
			if target < prev {
				target = prev
			}
			g, ok := it.SeekGE(target)
			if !ok {
				break
			}
			if g < prev {
				t.Fatalf("SeekGE went backwards: %d after %d", g, prev)
			}
			prev = g
		}
		// Intersect the halves against a reference set intersection.
		a, b := &PostingList{}, &PostingList{}
		inA := map[uint64]bool{}
		for i, v := range vals {
			if i%2 == 0 || i%3 == 0 {
				a.Append(v)
				inA[v] = true
			}
			if i%2 == 1 || i%3 == 0 {
				b.Append(v)
			}
		}
		var want []uint64
		for _, v := range b.Values() {
			if inA[v] {
				want = append(want, v)
			}
		}
		gotI := Intersect([]*PostingList{a, b})
		if len(gotI) != len(want) {
			t.Fatalf("Intersect len = %d, want %d", len(gotI), len(want))
		}
		for i := range want {
			if gotI[i] != want[i] {
				t.Fatalf("Intersect[%d] = %d, want %d", i, gotI[i], want[i])
			}
		}
	})
}

// FuzzTokenizeSuperset checks the property the keyword index's
// correctness rests on: if key occurs as a substring of text, then every
// token of the key must be a substring of some token of the text — so
// unioning postings of dictionary terms that contain a key token can
// never miss a truly matching row.
func FuzzTokenizeSuperset(f *testing.F) {
	f.Add("O Romeo, Romeo! wherefore art thou", "Romeo")
	f.Add("soft, what light through yonder window", "what light")
	f.Add("a1b2c3", "1b2")
	f.Add("  spaced   out  ", " ")
	f.Add("Ünïcodé über alles", "über")
	f.Add("", "")
	f.Fuzz(func(t *testing.T, text, key string) {
		ttoks := Tokenize(text)
		for _, tok := range ttoks {
			if tok == "" {
				t.Fatal("Tokenize produced an empty token")
			}
			if !strings.Contains(text, tok) {
				t.Fatalf("token %q not a substring of its text", tok)
			}
		}
		set := TokenSet(text)
		seen := map[string]bool{}
		for _, tok := range set {
			if seen[tok] {
				t.Fatalf("TokenSet repeated %q", tok)
			}
			seen[tok] = true
		}
		if !strings.Contains(text, key) {
			return
		}
		for _, ktok := range Tokenize(key) {
			found := false
			for _, ttok := range ttoks {
				if strings.Contains(ttok, ktok) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("text contains key %q but key token %q is in no text token %v", key, ktok, ttoks)
			}
		}
	})
}
