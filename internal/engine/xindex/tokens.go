// Package xindex provides the secondary index structures over stored
// XADT columns: a structural path index (element path → RID postings,
// kept in the engine's B+tree) and an inverted keyword index over
// fragment text (tokenizer + delta-encoded posting lists with skip-based
// intersection). Both feed the planner's IndexedFragScan rewrite; both
// are strictly candidate-generating — the scan re-verifies the original
// predicate on every fetched row, so the index only has to guarantee a
// superset of the matching rows, never the exact set.
package xindex

import "unicode"

// Tokenize splits s into its maximal runs of letters and digits. The
// tokens of a string are exactly the word-shaped islands the XADT
// substring predicates can land on, which gives the keyword index its
// superset guarantee: if strings.Contains(text, key) holds, then every
// token of key is a substring of some token of text — a key token is a
// maximal word run inside key, and wherever key occurs in text that run
// sits inside text's maximal word run covering the same positions.
func Tokenize(s string) []string {
	var out []string
	start := -1
	for i, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			out = append(out, s[start:i])
			start = -1
		}
	}
	if start >= 0 {
		out = append(out, s[start:])
	}
	return out
}

// TokenSet returns the distinct tokens of s.
func TokenSet(s string) []string {
	toks := Tokenize(s)
	seen := make(map[string]bool, len(toks))
	out := toks[:0]
	for _, t := range toks {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}
