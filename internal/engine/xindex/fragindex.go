package xindex

import (
	"strings"
	"sync"

	"repro/internal/engine/storage"
	"repro/internal/engine/types"
	"repro/internal/xadt"
	"repro/internal/xmltree"
)

// FragmentIndex is the combined secondary index over one stored XADT
// column: a structural path index plus an inverted keyword index, built
// row by row as tuples are inserted (or backfilled from the heap). It
// tracks how many heap rows it has absorbed so the planner can detect a
// stale index — an index that has not seen every row is never consulted,
// and a row whose fragment fails to decode invalidates the whole index
// rather than silently dropping postings. Lookups only ever produce
// candidate supersets; IndexedFragScan re-verifies the real predicate.
type FragmentIndex struct {
	mu     sync.RWMutex
	table  string
	column string
	colIdx int

	path *PathIndex
	kw   *KeywordIndex

	rows    int
	invalid bool
}

// NewFragmentIndex returns an empty index over table.column at colIdx.
func NewFragmentIndex(table, column string, colIdx int) *FragmentIndex {
	return &FragmentIndex{
		table: table, column: column, colIdx: colIdx,
		path: NewPathIndex(), kw: NewKeywordIndex(),
	}
}

// Table returns the owning table name.
func (fi *FragmentIndex) Table() string { return fi.table }

// Column returns the indexed column name.
func (fi *FragmentIndex) Column() string { return fi.column }

// ColumnIndex returns the indexed column's position in the row.
func (fi *FragmentIndex) ColumnIndex() int { return fi.colIdx }

// Rows reports how many heap rows the index has absorbed.
func (fi *FragmentIndex) Rows() int {
	fi.mu.RLock()
	defer fi.mu.RUnlock()
	return fi.rows
}

// Valid reports whether the index is usable; it turns false permanently
// once any row fails to index (the staleness/fallback contract: a broken
// index is never consulted, the planner falls back to scans).
func (fi *FragmentIndex) Valid() bool {
	fi.mu.RLock()
	defer fi.mu.RUnlock()
	return !fi.invalid
}

// Invalidate marks the index unusable; the planner will fall back to
// sequential scans until it is rebuilt.
func (fi *FragmentIndex) Invalidate() {
	fi.mu.Lock()
	fi.invalid = true
	fi.mu.Unlock()
}

// SizeBytes reports the combined index footprint.
func (fi *FragmentIndex) SizeBytes() int64 {
	fi.mu.RLock()
	defer fi.mu.RUnlock()
	return fi.path.SizeBytes() + fi.kw.SizeBytes()
}

// AddRow absorbs one inserted heap row. Every row counts toward
// coverage, including NULL fragments (which simply contribute no
// postings). Rows must arrive in heap (RID) order; a decode failure or
// an out-of-order RID invalidates the index instead of erroring the
// insert — correctness comes from the planner's fallback, not from
// aborting loads.
func (fi *FragmentIndex) AddRow(rid storage.RID, v types.Value) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.rows++
	if fi.invalid || v.IsNull() {
		return
	}
	if v.Kind() != types.KindXADT {
		fi.invalid = true
		return
	}
	nodes, err := xadt.FromBytes(v.XADT()).Nodes()
	if err != nil {
		fi.invalid = true
		return
	}
	if !fi.addNodes(rid, nodes) {
		fi.invalid = true
	}
}

// addNodes indexes one decoded fragment under fi.mu.
func (fi *FragmentIndex) addNodes(rid storage.RID, nodes []*xmltree.Node) bool {
	// Keyword postings over the concatenated character data in document
	// order — the same concatenation InnerText performs, so any
	// element's inner text is a contiguous substring of it and the
	// tokenizer's superset guarantee carries through.
	var sb strings.Builder
	for _, n := range nodes {
		sb.WriteString(n.InnerText())
	}
	if !fi.kw.Add(ridKey(rid), TokenSet(sb.String())) {
		return false
	}
	// Structural postings: each distinct root-to-element path, once per
	// row no matter how often the document repeats it.
	seen := map[string]bool{}
	var walk func(n *xmltree.Node, prefix string)
	walk = func(n *xmltree.Node, prefix string) {
		if !n.IsElement() {
			return
		}
		p := n.Name
		if prefix != "" {
			p = prefix + "/" + n.Name
		}
		if !seen[p] {
			seen[p] = true
			fi.path.Add(rid, p)
		}
		for _, c := range n.Children {
			walk(c, p)
		}
	}
	for _, n := range nodes {
		walk(n, "")
	}
	return true
}

// LookupFindKey answers a findKeyInElm(col, elm, key) = 1 conjunct with
// a candidate RID set: rows containing an element named elm (path index)
// intersected with rows whose text can contain key (keyword index),
// sorted in heap order. ok is false when the index cannot answer — it is
// invalid, or both the element name is empty and the key has no
// word-shaped tokens to look up.
func (fi *FragmentIndex) LookupFindKey(elm, key string) (rids []storage.RID, ok bool) {
	fi.mu.RLock()
	defer fi.mu.RUnlock()
	if fi.invalid {
		return nil, false
	}
	tokens := TokenSet(key)
	if elm == "" && len(tokens) == 0 {
		return nil, false
	}
	var acc []uint64
	have := false
	if elm != "" {
		acc = fi.path.LookupName(elm)
		have = true
	}
	if len(tokens) > 0 {
		kw, kok := fi.kw.Candidates(tokens)
		if kok {
			if have {
				acc = IntersectSorted(acc, kw)
			} else {
				acc = kw
			}
			have = true
		}
	}
	if !have {
		return nil, false
	}
	out := make([]storage.RID, len(acc))
	for i, k := range acc {
		out[i] = keyRID(k)
	}
	return out, true
}
