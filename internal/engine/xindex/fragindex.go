package xindex

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/engine/storage"
	"repro/internal/engine/types"
	"repro/internal/xadt"
	"repro/internal/xmltree"
)

// FragmentIndex is the combined secondary index over one stored XADT
// column: a structural path index plus an inverted keyword index, built
// row by row as tuples are inserted (or backfilled from the heap). It
// tracks how many heap rows it has absorbed so the planner can detect a
// stale index — an index that has not seen every row is never consulted,
// and a row whose fragment fails to decode invalidates the whole index
// rather than silently dropping postings. Lookups only ever produce
// candidate supersets; IndexedFragScan re-verifies the real predicate.
type FragmentIndex struct {
	mu     sync.RWMutex
	table  string
	column string
	colIdx int

	path *PathIndex
	kw   *KeywordIndex

	rows    int
	invalid bool

	// Mutation bookkeeping. The delta-coded posting lists are append-only,
	// so deletes tombstone (dead) and out-of-order inserts — page reuse
	// hands out RIDs below maxKey — side-track into an overlay of rows the
	// postings do not cover. Lookups subtract dead keys and union overlay
	// keys: still a candidate superset, so results never change, only
	// lookup cost. The catalog rebuilds the index once the backlog grows.
	maxKey  uint64
	anyKey  bool
	dead    map[uint64]bool
	overlay map[uint64]bool
}

// NewFragmentIndex returns an empty index over table.column at colIdx.
func NewFragmentIndex(table, column string, colIdx int) *FragmentIndex {
	return &FragmentIndex{
		table: table, column: column, colIdx: colIdx,
		path: NewPathIndex(), kw: NewKeywordIndex(),
	}
}

// Table returns the owning table name.
func (fi *FragmentIndex) Table() string { return fi.table }

// Column returns the indexed column name.
func (fi *FragmentIndex) Column() string { return fi.column }

// ColumnIndex returns the indexed column's position in the row.
func (fi *FragmentIndex) ColumnIndex() int { return fi.colIdx }

// Rows reports how many heap rows the index has absorbed.
func (fi *FragmentIndex) Rows() int {
	fi.mu.RLock()
	defer fi.mu.RUnlock()
	return fi.rows
}

// Valid reports whether the index is usable; it turns false permanently
// once any row fails to index (the staleness/fallback contract: a broken
// index is never consulted, the planner falls back to scans).
func (fi *FragmentIndex) Valid() bool {
	fi.mu.RLock()
	defer fi.mu.RUnlock()
	return !fi.invalid
}

// Invalidate marks the index unusable; the planner will fall back to
// sequential scans until it is rebuilt.
func (fi *FragmentIndex) Invalidate() {
	fi.mu.Lock()
	fi.invalid = true
	fi.mu.Unlock()
}

// SizeBytes reports the combined index footprint.
func (fi *FragmentIndex) SizeBytes() int64 {
	fi.mu.RLock()
	defer fi.mu.RUnlock()
	return fi.path.SizeBytes() + fi.kw.SizeBytes()
}

// AddRow absorbs one inserted heap row. Every row counts toward
// coverage, including NULL fragments (which simply contribute no
// postings). Rows at RIDs past every posting extend the main indexes; a
// row at a reused (lower) RID lands in the overlay instead, since the
// delta-coded postings are append-only. A decode failure on the main
// path invalidates the index instead of erroring the insert —
// correctness comes from the planner's fallback, not from aborting
// loads.
func (fi *FragmentIndex) AddRow(rid storage.RID, v types.Value) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.rows++
	if fi.invalid {
		return
	}
	key := ridKey(rid)
	if fi.anyKey && key <= fi.maxKey {
		// Reused RID: postings cannot take it. Track it in the overlay;
		// a tombstone for the RID's previous occupant no longer applies.
		delete(fi.dead, key)
		if fi.overlay == nil {
			fi.overlay = map[uint64]bool{}
		}
		fi.overlay[key] = true
		return
	}
	fi.maxKey, fi.anyKey = key, true
	if v.IsNull() {
		return
	}
	if v.Kind() != types.KindXADT {
		fi.invalid = true
		return
	}
	nodes, err := xadt.FromBytes(v.XADT()).Nodes()
	if err != nil {
		fi.invalid = true
		return
	}
	if !fi.addNodes(rid, nodes) {
		fi.invalid = true
	}
}

// DeleteRow records the removal of the heap row at rid: the key leaves
// the overlay and is tombstoned. The tombstone is unconditional — a key
// can cycle postings → dead → overlay (RID reuse) → deleted again, and
// dropping only the overlay entry would resurrect the original postings
// occupant. Tombstoning a key the postings never held is harmless: dead
// keys only subtract from posting results.
func (fi *FragmentIndex) DeleteRow(rid storage.RID) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.rows--
	if fi.invalid {
		return
	}
	key := ridKey(rid)
	delete(fi.overlay, key)
	if fi.dead == nil {
		fi.dead = map[uint64]bool{}
	}
	fi.dead[key] = true
}

// Backlog reports how many keys lookups must patch over (tombstones plus
// overlay rows); the catalog rebuilds the index when this grows past its
// threshold.
func (fi *FragmentIndex) Backlog() int {
	fi.mu.RLock()
	defer fi.mu.RUnlock()
	return len(fi.dead) + len(fi.overlay)
}

// addNodes indexes one decoded fragment under fi.mu.
func (fi *FragmentIndex) addNodes(rid storage.RID, nodes []*xmltree.Node) bool {
	// Keyword postings over the concatenated character data in document
	// order — the same concatenation InnerText performs, so any
	// element's inner text is a contiguous substring of it and the
	// tokenizer's superset guarantee carries through.
	var sb strings.Builder
	for _, n := range nodes {
		sb.WriteString(n.InnerText())
	}
	if !fi.kw.Add(ridKey(rid), TokenSet(sb.String())) {
		return false
	}
	// Structural postings: each distinct root-to-element path, once per
	// row no matter how often the document repeats it.
	seen := map[string]bool{}
	var walk func(n *xmltree.Node, prefix string)
	walk = func(n *xmltree.Node, prefix string) {
		if !n.IsElement() {
			return
		}
		p := n.Name
		if prefix != "" {
			p = prefix + "/" + n.Name
		}
		if !seen[p] {
			seen[p] = true
			fi.path.Add(rid, p)
		}
		for _, c := range n.Children {
			walk(c, p)
		}
	}
	for _, n := range nodes {
		walk(n, "")
	}
	return true
}

// LookupFindKey answers a findKeyInElm(col, elm, key) = 1 conjunct with
// a candidate RID set: rows containing an element named elm (path index)
// intersected with rows whose text can contain key (keyword index),
// sorted in heap order. ok is false when the index cannot answer — it is
// invalid, or both the element name is empty and the key has no
// word-shaped tokens to look up.
func (fi *FragmentIndex) LookupFindKey(elm, key string) (rids []storage.RID, ok bool) {
	fi.mu.RLock()
	defer fi.mu.RUnlock()
	if fi.invalid {
		return nil, false
	}
	tokens := TokenSet(key)
	if elm == "" && len(tokens) == 0 {
		return nil, false
	}
	var acc []uint64
	have := false
	if elm != "" {
		acc = fi.path.LookupName(elm)
		have = true
	}
	if len(tokens) > 0 {
		kw, kok := fi.kw.Candidates(tokens)
		if kok {
			if have {
				acc = IntersectSorted(acc, kw)
			} else {
				acc = kw
			}
			have = true
		}
	}
	if !have {
		return nil, false
	}
	// Patch mutations over the append-only postings: drop tombstoned
	// keys, then union in every overlay row. Overlay rows join
	// unconditionally — their fragments were never decoded, so they are
	// candidates by definition and the scan's re-verification decides.
	if len(fi.dead) > 0 {
		kept := acc[:0]
		for _, k := range acc {
			if !fi.dead[k] {
				kept = append(kept, k)
			}
		}
		acc = kept
	}
	if len(fi.overlay) > 0 {
		inAcc := make(map[uint64]bool, len(acc))
		for _, k := range acc {
			inAcc[k] = true
		}
		for k := range fi.overlay {
			if !inAcc[k] {
				acc = append(acc, k)
			}
		}
		sort.Slice(acc, func(i, j int) bool { return acc[i] < acc[j] })
	}
	out := make([]storage.RID, len(acc))
	for i, k := range acc {
		out[i] = keyRID(k)
	}
	return out, true
}
