package xindex

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/engine/storage"
	"repro/internal/engine/types"
	"repro/internal/xadt"
	"repro/internal/xmltree"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"   ", nil},
		{"hello", []string{"hello"}},
		{"hello world", []string{"hello", "world"}},
		{"don't stop", []string{"don", "t", "stop"}},
		{"ACT1scene2", []string{"ACT1scene2"}},
		{"a-b_c", []string{"a", "b", "c"}},
		{"Ünïcodé über", []string{"Ünïcodé", "über"}},
		{"42 4two", []string{"42", "4two"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenSetDedups(t *testing.T) {
	got := TokenSet("love love LOVE love")
	if !reflect.DeepEqual(got, []string{"love", "LOVE"}) {
		t.Errorf("TokenSet = %v", got)
	}
}

func TestPostingListEmpty(t *testing.T) {
	p := &PostingList{}
	if p.Len() != 0 {
		t.Fatalf("empty Len = %d", p.Len())
	}
	if vs := p.Values(); len(vs) != 0 {
		t.Fatalf("empty Values = %v", vs)
	}
	it := p.Iterator()
	if _, ok := it.Next(); ok {
		t.Fatal("empty iterator yielded a value")
	}
	if got := Intersect([]*PostingList{p, p}); len(got) != 0 {
		t.Fatalf("empty intersect = %v", got)
	}
}

func TestPostingListSingle(t *testing.T) {
	p := &PostingList{}
	if !p.Append(7) {
		t.Fatal("Append failed")
	}
	if got := p.Values(); !reflect.DeepEqual(got, []uint64{7}) {
		t.Fatalf("Values = %v", got)
	}
	it := p.Iterator()
	if v, ok := it.SeekGE(7); !ok || v != 7 {
		t.Fatalf("SeekGE(7) = %d,%v", v, ok)
	}
	it = p.Iterator()
	if _, ok := it.SeekGE(8); ok {
		t.Fatal("SeekGE(8) found a value past the end")
	}
}

func TestPostingListRejectsNonIncreasing(t *testing.T) {
	p := &PostingList{}
	p.Append(5)
	if p.Append(5) {
		t.Fatal("accepted a duplicate")
	}
	if p.Append(4) {
		t.Fatal("accepted a regression")
	}
	if p.Len() != 1 {
		t.Fatalf("Len = %d after rejected appends", p.Len())
	}
}

// TestPostingListSkipBoundaries exercises lists whose lengths straddle
// the skip interval, seeking to values at and around every block edge.
func TestPostingListSkipBoundaries(t *testing.T) {
	for _, n := range []int{SkipInterval - 1, SkipInterval, SkipInterval + 1, 2 * SkipInterval, 2*SkipInterval + 1} {
		vals := make([]uint64, n)
		p := &PostingList{}
		for i := 0; i < n; i++ {
			vals[i] = uint64(3*i + 1) // stride 3 so gaps exist to seek into
			if !p.Append(vals[i]) {
				t.Fatalf("n=%d: Append(%d) failed", n, vals[i])
			}
		}
		if got := p.Values(); !reflect.DeepEqual(got, vals) {
			t.Fatalf("n=%d: roundtrip mismatch", n)
		}
		for _, target := range []uint64{0, 1, 2, vals[n/2], vals[n/2] + 1, vals[n-1], vals[n-1] + 1} {
			it := p.Iterator()
			got, ok := it.SeekGE(target)
			want, wok := refSeekGE(vals, target)
			if ok != wok || (ok && got != want) {
				t.Fatalf("n=%d: SeekGE(%d) = %d,%v want %d,%v", n, target, got, ok, want, wok)
			}
		}
	}
}

func refSeekGE(vals []uint64, target uint64) (uint64, bool) {
	for _, v := range vals {
		if v >= target {
			return v, true
		}
	}
	return 0, false
}

// TestIntersectAcrossBlocks intersects lists sized around the skip
// interval so the skip-based SeekGE crosses block boundaries mid-walk.
func TestIntersectAcrossBlocks(t *testing.T) {
	a, b := &PostingList{}, &PostingList{}
	var want []uint64
	for i := uint64(0); i < uint64(3*SkipInterval); i++ {
		a.Append(2 * i)           // evens
		b.Append(3 * i)           // multiples of 3
		if 3*i%2 == 0 && 3*i < 2*uint64(3*SkipInterval) {
			want = append(want, 3*i) // multiples of 6 within a's range
		}
	}
	got := Intersect([]*PostingList{a, b})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Intersect = %v..., want %v...", head(got), head(want))
	}
}

func head(v []uint64) []uint64 {
	if len(v) > 8 {
		return v[:8]
	}
	return v
}

func TestKeywordCandidatesSubstringTerms(t *testing.T) {
	kw := NewKeywordIndex()
	kw.Add(1, []string{"STAGEDIR", "Rising"})
	kw.Add(2, []string{"uprising", "noise"})
	kw.Add(3, []string{"quiet"})
	// "Rising" must match both the exact term and "upRising"? No —
	// matching is case-sensitive substring: "Rising" ⊄ "uprising", but
	// "rising" ⊂ "uprising". Candidates("rising") should hit row 2 only.
	got, ok := kw.Candidates([]string{"rising"})
	if !ok || !reflect.DeepEqual(got, []uint64{2}) {
		t.Fatalf("Candidates(rising) = %v,%v", got, ok)
	}
	got, ok = kw.Candidates([]string{"Rising"})
	if !ok || !reflect.DeepEqual(got, []uint64{1}) {
		t.Fatalf("Candidates(Rising) = %v,%v", got, ok)
	}
	// A token matching no dictionary term is a definitive empty set.
	got, ok = kw.Candidates([]string{"zzz"})
	if !ok || got == nil || len(got) != 0 {
		t.Fatalf("Candidates(zzz) = %v,%v", got, ok)
	}
	// Empty token list: cannot answer.
	if _, ok := kw.Candidates(nil); ok {
		t.Fatal("Candidates(nil) claimed to answer")
	}
}

func rid(page, slot int32) storage.RID { return storage.RID{Page: page, Slot: slot} }

func fragValue(t *testing.T, xml string) types.Value {
	t.Helper()
	nodes, err := xmltree.ParseFragment(xml)
	if err != nil {
		t.Fatal(err)
	}
	return types.NewXADT(xadt.EncodeStored(nodes, xadt.Raw).Bytes())
}

// TestDuplicatePathsOneDocument: a document repeating the same path many
// times must contribute each path posting once per row, keeping the
// structural postings strictly increasing and Append from failing.
func TestDuplicatePathsOneDocument(t *testing.T) {
	fi := NewFragmentIndex("speech", "speech_line", 0)
	fi.AddRow(rid(0, 0), fragValue(t,
		`<LINE>one</LINE><LINE>two</LINE><LINE><STAGEDIR>Rising</STAGEDIR></LINE><LINE>four</LINE>`))
	fi.AddRow(rid(0, 1), fragValue(t, `<LINE>five</LINE><LINE>six</LINE>`))
	if !fi.Valid() {
		t.Fatal("index invalidated by duplicate paths")
	}
	rids, ok := fi.LookupFindKey("LINE", "")
	if !ok || len(rids) != 2 {
		t.Fatalf("LookupFindKey(LINE) = %v,%v", rids, ok)
	}
	rids, ok = fi.LookupFindKey("STAGEDIR", "")
	if !ok || !reflect.DeepEqual(rids, []storage.RID{rid(0, 0)}) {
		t.Fatalf("LookupFindKey(STAGEDIR) = %v,%v", rids, ok)
	}
}

// TestLookupSuperset: every row whose fragment text contains the key
// must appear in the candidate set (the index may over-approximate but
// never under-approximate).
func TestLookupSuperset(t *testing.T) {
	frags := []string{
		`<LINE>O Romeo, Romeo! wherefore art thou Romeo?</LINE>`,
		`<LINE>my only love sprung from my only hate</LINE>`,
		`<LINE><STAGEDIR>Rising slowly</STAGEDIR>soft, what light</LINE>`,
		`<LINE>It is the east</LINE><LINE>and Juliet is the sun</LINE>`,
	}
	fi := NewFragmentIndex("speech", "speech_line", 0)
	texts := make([]string, len(frags))
	for i, f := range frags {
		nodes, err := xmltree.ParseFragment(f)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, n := range nodes {
			sb.WriteString(n.InnerText())
		}
		texts[i] = sb.String()
		fi.AddRow(rid(0, int32(i)), fragValue(t, f))
	}
	for _, key := range []string{"Romeo", "love", "Rising", "the", "light", "Juliet is", "o Romeo", "absent"} {
		cands, ok := fi.LookupFindKey("", key)
		if !ok {
			t.Fatalf("LookupFindKey(%q) could not answer", key)
		}
		in := map[storage.RID]bool{}
		for _, r := range cands {
			in[r] = true
		}
		for i, text := range texts {
			if strings.Contains(text, key) && !in[rid(0, int32(i))] {
				t.Errorf("key %q: row %d contains it but is missing from candidates", key, i)
			}
		}
	}
}

// TestLookupDegenerate: empty element and no word-shaped tokens means
// the index cannot answer and must say so.
func TestLookupDegenerate(t *testing.T) {
	fi := NewFragmentIndex("speech", "speech_line", 0)
	fi.AddRow(rid(0, 0), fragValue(t, `<LINE>text</LINE>`))
	if _, ok := fi.LookupFindKey("", ""); ok {
		t.Fatal("answered an unanswerable probe")
	}
	if _, ok := fi.LookupFindKey("", "!!!"); ok {
		t.Fatal("answered a punctuation-only key")
	}
}

// TestNullAndInvalidRows: NULLs count toward coverage without postings;
// an undecodable fragment invalidates the index permanently.
func TestNullAndInvalidRows(t *testing.T) {
	fi := NewFragmentIndex("speech", "speech_line", 0)
	fi.AddRow(rid(0, 0), types.Null)
	fi.AddRow(rid(0, 1), fragValue(t, `<LINE>ok</LINE>`))
	if fi.Rows() != 2 || !fi.Valid() {
		t.Fatalf("Rows=%d Valid=%v after NULL", fi.Rows(), fi.Valid())
	}
	fi.AddRow(rid(0, 2), types.NewXADT([]byte{byte(xadt.Compressed), 0xff, 0xff, 0xff}))
	if fi.Valid() {
		t.Fatal("still valid after an undecodable fragment")
	}
	if _, ok := fi.LookupFindKey("LINE", ""); ok {
		t.Fatal("invalid index answered a lookup")
	}
}

func TestPathIndexLookupName(t *testing.T) {
	p := NewPathIndex()
	p.Add(rid(0, 1), "SPEECH/LINE")
	p.Add(rid(0, 0), "SPEECH/LINE/STAGEDIR")
	p.Add(rid(0, 1), "SPEECH/SPEAKER")
	got := p.LookupName("LINE")
	if !reflect.DeepEqual(got, []uint64{ridKey(rid(0, 0)), ridKey(rid(0, 1))}) {
		t.Fatalf("LookupName(LINE) = %v", got)
	}
	if got := p.LookupName("SPEAKER"); !reflect.DeepEqual(got, []uint64{ridKey(rid(0, 1))}) {
		t.Fatalf("LookupName(SPEAKER) = %v", got)
	}
	if got := p.LookupName("NOPE"); len(got) != 0 {
		t.Fatalf("LookupName(NOPE) = %v", got)
	}
}

func TestRIDKeyOrder(t *testing.T) {
	rids := []storage.RID{
		{Page: 0, Slot: 0}, {Page: 0, Slot: 1}, {Page: 0, Slot: 1000},
		{Page: 1, Slot: 0}, {Page: 2, Slot: 5}, {Page: 1000, Slot: 0},
	}
	for i := 1; i < len(rids); i++ {
		a, b := ridKey(rids[i-1]), ridKey(rids[i])
		if a >= b {
			t.Fatalf("ridKey not monotone: %v=%d >= %v=%d", rids[i-1], a, rids[i], b)
		}
		if keyRID(b) != rids[i] {
			t.Fatalf("keyRID(ridKey(%v)) = %v", rids[i], keyRID(b))
		}
	}
}

// TestDeleteAfterRIDReuseStaysDead covers the postings → dead → overlay
// → dead cycle: a row indexed in the postings is deleted, its RID is
// reused by a new row (overlay), and that row is deleted too. The
// second delete must tombstone the key — merely dropping the overlay
// entry would resurrect the original postings occupant as a candidate
// pointing at a freed heap slot.
func TestDeleteAfterRIDReuseStaysDead(t *testing.T) {
	fi := NewFragmentIndex("speech", "speech_line", 0)
	fi.AddRow(rid(0, 0), fragValue(t, `<LINE>Romeo</LINE>`))
	fi.AddRow(rid(0, 1), fragValue(t, `<LINE>Juliet</LINE>`))
	fi.DeleteRow(rid(0, 0))
	fi.AddRow(rid(0, 0), fragValue(t, `<LINE>Tybalt</LINE>`)) // reused RID: overlay
	fi.DeleteRow(rid(0, 0))                                   // must stay dead
	cands, ok := fi.LookupFindKey("LINE", "Romeo")
	if !ok {
		t.Fatal("lookup could not answer")
	}
	for _, r := range cands {
		if r == rid(0, 0) {
			t.Fatalf("deleted RID %v resurrected as a candidate: %v", r, cands)
		}
	}
	if got := fi.Rows(); got != 1 {
		t.Fatalf("Rows() = %d, want 1", got)
	}
}
