package xindex

import "strings"

// KeywordIndex is the inverted index over fragment text: each distinct
// token of a row's concatenated character data gets the row's posting
// appended to its term list. Because the XADT predicates match by
// substring (strings.Contains), a query key is answered by taking, per
// key token, the union of the postings of every dictionary term that
// contains the token as a substring, then intersecting those unions —
// a guaranteed superset of the rows whose text contains the key.
type KeywordIndex struct {
	terms map[string]*PostingList
}

// NewKeywordIndex returns an empty index.
func NewKeywordIndex() *KeywordIndex {
	return &KeywordIndex{terms: map[string]*PostingList{}}
}

// Terms reports the dictionary size.
func (k *KeywordIndex) Terms() int { return len(k.terms) }

// SizeBytes reports the posting footprint plus dictionary strings.
func (k *KeywordIndex) SizeBytes() int64 {
	var n int64
	for t, pl := range k.terms {
		n += int64(len(t)) + pl.SizeBytes()
	}
	return n
}

// Add appends rid to the posting list of each token. Tokens must be
// deduplicated per row and rids must arrive in increasing order; it
// reports false if an append would break posting order.
func (k *KeywordIndex) Add(rid uint64, tokens []string) bool {
	for _, t := range tokens {
		pl := k.terms[t]
		if pl == nil {
			pl = &PostingList{}
			k.terms[t] = pl
		}
		if !pl.Append(rid) {
			return false
		}
	}
	return true
}

// Candidates returns the sorted posting union-intersection for the key
// tokens: rows where every token is a substring of at least one of the
// row's terms. ok is false when tokens is empty (nothing to index on).
// An empty (non-nil) result means no row can match.
func (k *KeywordIndex) Candidates(tokens []string) (rids []uint64, ok bool) {
	if len(tokens) == 0 {
		return nil, false
	}
	var acc []uint64
	for i, tok := range tokens {
		var lists []*PostingList
		for term, pl := range k.terms {
			if strings.Contains(term, tok) {
				lists = append(lists, pl)
			}
		}
		if len(lists) == 0 {
			return []uint64{}, true
		}
		u := Union(lists)
		if i == 0 {
			acc = u
		} else {
			acc = IntersectSorted(acc, u)
		}
		if len(acc) == 0 {
			return []uint64{}, true
		}
	}
	return acc, true
}
