package xindex

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/engine/storage"
)

// SkipInterval is the posting count of one skip block: every
// SkipInterval-th posting starts a new block whose absolute value and
// byte offset are kept in the skip table, so SeekGE can jump over whole
// blocks instead of decoding every delta.
const SkipInterval = 64

// ridKey packs a heap RID into an integer that sorts exactly like heap
// scan order (page-major, then slot), so sorted posting lists enumerate
// candidate rows in SeqScan order.
func ridKey(r storage.RID) uint64 {
	return uint64(uint32(r.Page))<<32 | uint64(uint32(r.Slot))
}

// keyRID is the inverse of ridKey.
func keyRID(k uint64) storage.RID {
	return storage.RID{Page: int32(k >> 32), Slot: int32(uint32(k))}
}

// skipEntry indexes the start of one block: First is the block's first
// posting value, Prev the value immediately before the block (the delta
// base), Off the byte offset of the block in data, and N the number of
// postings before the block.
type skipEntry struct {
	First uint64
	Prev  uint64
	Off   int
	N     int
}

// PostingList is a strictly increasing sequence of uint64 posting values
// stored as delta uvarints with a skip table. Appends must be in
// increasing order (heap RIDs arrive that way); duplicates are rejected.
type PostingList struct {
	data  []byte
	skips []skipEntry
	n     int
	last  uint64
}

// Len returns the number of postings.
func (p *PostingList) Len() int { return p.n }

// SizeBytes reports the encoded footprint including the skip table.
func (p *PostingList) SizeBytes() int64 {
	return int64(len(p.data)) + int64(len(p.skips))*32
}

// Append adds v to the list. It reports false (and leaves the list
// unchanged) when v does not extend the strictly increasing sequence.
func (p *PostingList) Append(v uint64) bool {
	if p.n > 0 && v <= p.last {
		return false
	}
	if p.n%SkipInterval == 0 {
		p.skips = append(p.skips, skipEntry{First: v, Prev: p.last, Off: len(p.data), N: p.n})
	}
	var buf [binary.MaxVarintLen64]byte
	m := binary.PutUvarint(buf[:], v-p.last)
	p.data = append(p.data, buf[:m]...)
	p.last = v
	p.n++
	return true
}

// Iterator returns a fresh iterator positioned before the first posting.
type Iterator struct {
	p    *PostingList
	off  int
	prev uint64
	idx  int
	cur  uint64
	ok   bool
}

// Iterator returns an iterator over the list.
func (p *PostingList) Iterator() *Iterator {
	return &Iterator{p: p}
}

// Next advances to the following posting, reporting false at the end.
func (it *Iterator) Next() (uint64, bool) {
	if it.idx >= it.p.n {
		it.ok = false
		return 0, false
	}
	d, m := binary.Uvarint(it.p.data[it.off:])
	if m <= 0 {
		it.ok = false
		return 0, false
	}
	it.off += m
	it.prev += d
	it.idx++
	it.cur, it.ok = it.prev, true
	return it.cur, true
}

// SeekGE advances to the first posting >= v, using the skip table to
// jump forward when the target lies beyond the current block. It never
// moves backwards: if the current posting already satisfies v it is
// returned again.
func (it *Iterator) SeekGE(v uint64) (uint64, bool) {
	if it.ok && it.cur >= v {
		return it.cur, true
	}
	// Find the last block whose first posting is <= v; only jump if it
	// starts beyond the current position.
	skips := it.p.skips
	lo := sort.Search(len(skips), func(i int) bool { return skips[i].First > v })
	if lo > 0 {
		s := skips[lo-1]
		if s.N > it.idx {
			it.off, it.prev, it.idx = s.Off, s.Prev, s.N
		}
	}
	for {
		cur, ok := it.Next()
		if !ok {
			return 0, false
		}
		if cur >= v {
			return cur, true
		}
	}
}

// Values decodes the whole list.
func (p *PostingList) Values() []uint64 {
	out := make([]uint64, 0, p.n)
	it := p.Iterator()
	for {
		v, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// Intersect returns the values present in every list, using the
// smallest list as the driver and skip-based seeks on the rest. A nil
// or empty input yields nil.
func Intersect(lists []*PostingList) []uint64 {
	if len(lists) == 0 {
		return nil
	}
	driver := 0
	for i, l := range lists {
		if l.Len() < lists[driver].Len() {
			driver = i
		}
	}
	if lists[driver].Len() == 0 {
		return nil
	}
	its := make([]*Iterator, len(lists))
	for i, l := range lists {
		its[i] = l.Iterator()
	}
	var out []uint64
	dit := its[driver]
outer:
	for {
		v, ok := dit.Next()
		if !ok {
			return out
		}
		for i, it := range its {
			if i == driver {
				continue
			}
			got, ok := it.SeekGE(v)
			if !ok {
				return out
			}
			if got != v {
				continue outer
			}
		}
		out = append(out, v)
	}
}

// Union merges the lists into one sorted, deduplicated value slice.
func Union(lists []*PostingList) []uint64 {
	total := 0
	for _, l := range lists {
		total += l.Len()
	}
	all := make([]uint64, 0, total)
	for _, l := range lists {
		all = append(all, l.Values()...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return dedupSorted(all)
}

func dedupSorted(vals []uint64) []uint64 {
	out := vals[:0]
	for i, v := range vals {
		if i == 0 || v != vals[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// IntersectSorted intersects two sorted deduplicated slices.
func IntersectSorted(a, b []uint64) []uint64 {
	var out []uint64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// String renders diagnostics.
func (p *PostingList) String() string {
	return fmt.Sprintf("postings(n=%d, %dB, %d skips)", p.n, len(p.data), len(p.skips))
}
