package xindex

import (
	"sort"
	"strings"

	"repro/internal/engine/index"
	"repro/internal/engine/storage"
	"repro/internal/engine/types"
)

// PathIndex is the structural index: every distinct root-to-element path
// of a stored fragment ("SPEECH/LINE/STAGEDIR") maps to the postings of
// the rows containing it. Paths live in the engine's B+tree keyed by the
// path string, so the per-path RID lists come back in insertion (= heap)
// order; the small distinct-path dictionary is kept alongside for
// segment-membership lookups.
type PathIndex struct {
	tree  *index.BTree
	paths map[string][]string // path → its element-name segments
}

// NewPathIndex returns an empty index.
func NewPathIndex() *PathIndex {
	return &PathIndex{tree: index.New(), paths: map[string][]string{}}
}

// Paths reports the distinct path count.
func (p *PathIndex) Paths() int { return len(p.paths) }

// SizeBytes reports the B+tree footprint.
func (p *PathIndex) SizeBytes() int64 { return p.tree.SizeBytes() }

// Add records that the row at rid contains path. Callers deduplicate
// paths per row (a document may repeat a path many times).
func (p *PathIndex) Add(rid storage.RID, path string) {
	if _, ok := p.paths[path]; !ok {
		p.paths[path] = strings.Split(path, "/")
	}
	p.tree.Insert(types.NewString(path), rid)
}

// LookupName returns the sorted, deduplicated posting keys of the rows
// whose fragments contain an element with the given name at any depth,
// by unioning the postings of every dictionary path with that segment.
func (p *PathIndex) LookupName(name string) []uint64 {
	var all []uint64
	for path, segs := range p.paths {
		if !containsSeg(segs, name) {
			continue
		}
		for _, rid := range p.tree.Lookup(types.NewString(path)) {
			all = append(all, ridKey(rid))
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return dedupSorted(all)
}

func containsSeg(segs []string, name string) bool {
	for _, s := range segs {
		if s == name {
			return true
		}
	}
	return false
}
