package catalog

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strings"

	"repro/internal/engine/storage"
	"repro/internal/engine/types"
)

// snapshotMagic identifies a catalog snapshot stream. Format v3 appends
// a per-table statistics block after each heap; Load still accepts v2
// snapshots (statistics are recomputed, the pre-v3 behaviour).
const (
	snapshotMagic   = "XORCAT03"
	snapshotMagicV2 = "XORCAT02"
)

// xadtIndexPrefix marks an entry of the per-table index list as an XADT
// fragment-index definition rather than a B+tree column index. "!" is
// not a legal XML name character, so the prefix can never collide with a
// real column name; snapshots without fragment indexes stay byte-for-
// byte identical to the prior format.
const xadtIndexPrefix = "xadt!"

// Save writes the catalog — schemas, heap data, and index definitions —
// to w. Index trees are not serialized; Load rebuilds them, which is
// cheaper than writing them out and keeps the format simple.
func (c *Catalog) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	if err := writeUvarint(bw, uint64(len(c.order))); err != nil {
		return err
	}
	for _, name := range c.order {
		t := c.tables[name]
		if err := writeString(bw, name); err != nil {
			return err
		}
		if err := writeUvarint(bw, uint64(len(t.Schema.Columns))); err != nil {
			return err
		}
		for _, col := range t.Schema.Columns {
			if err := writeString(bw, col.Name); err != nil {
				return err
			}
			if err := writeUvarint(bw, uint64(col.Type)); err != nil {
				return err
			}
		}
		if err := writeUvarint(bw, uint64(len(t.Indexes)+len(t.FragIndexes))); err != nil {
			return err
		}
		for _, idx := range t.Indexes {
			if err := writeString(bw, idx.Column); err != nil {
				return err
			}
		}
		// Fragment indexes persist as definitions only, like the B+tree
		// indexes: Load rebuilds the postings from the heap, and WAL
		// replay after a checkpoint keeps them current through Insert.
		for _, fi := range t.FragIndexes {
			if err := writeString(bw, xadtIndexPrefix+fi.Column()); err != nil {
				return err
			}
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		if err := t.Heap.Serialize(w); err != nil {
			return err
		}
		bw.Reset(w)
		// Statistics block: a length-prefixed EncodeStats blob, or length
		// 0 when the table was never analyzed. The snapshot carries the
		// live modification delta so staleness survives a save/load cycle.
		snap := t.StatsSnapshot()
		var enc []byte
		if snap.Valid {
			enc = EncodeStats(&snap)
		}
		if err := writeUvarint(bw, uint64(len(enc))); err != nil {
			return err
		}
		if _, err := bw.Write(enc); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a snapshot written by Save into a fresh catalog, rebuilding
// indexes and statistics.
func Load(r io.Reader, pool *storage.BufferPool) (*Catalog, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("catalog: reading magic: %w", err)
	}
	if string(magic) != snapshotMagic && string(magic) != snapshotMagicV2 {
		return nil, fmt.Errorf("catalog: bad snapshot magic %q", magic)
	}
	hasStats := string(magic) == snapshotMagic
	c := New(pool)
	ntables, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < ntables; i++ {
		name, err := readString(br)
		if err != nil {
			return nil, err
		}
		ncols, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		cols := make([]Column, ncols)
		for j := range cols {
			cname, err := readString(br)
			if err != nil {
				return nil, err
			}
			kind, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			cols[j] = Column{Name: cname, Type: types.Kind(kind)}
		}
		nidx, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		idxCols := make([]string, nidx)
		for j := range idxCols {
			if idxCols[j], err = readString(br); err != nil {
				return nil, err
			}
		}
		tbl, err := c.CreateTable(name, cols)
		if err != nil {
			return nil, err
		}
		heap, err := storage.DeserializeHeapFile(br, pool)
		if err != nil {
			return nil, fmt.Errorf("catalog: table %s heap: %w", name, err)
		}
		tbl.Heap = heap
		for _, col := range idxCols {
			if frag, ok := strings.CutPrefix(col, xadtIndexPrefix); ok {
				if _, err := c.CreateXADTIndex(name, frag); err != nil {
					return nil, err
				}
				continue
			}
			if _, err := c.CreateIndex(name, col); err != nil {
				return nil, err
			}
		}
		restored := false
		if hasStats {
			n, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("catalog: table %s stats length: %w", name, err)
			}
			if n > 1<<26 {
				return nil, fmt.Errorf("catalog: implausible stats length %d", n)
			}
			if n > 0 {
				blob := make([]byte, n)
				if _, err := io.ReadFull(br, blob); err != nil {
					return nil, fmt.Errorf("catalog: table %s stats: %w", name, err)
				}
				stats, err := DecodeStats(blob)
				if err != nil {
					return nil, fmt.Errorf("catalog: table %s stats: %w", name, err)
				}
				// Restore the staleness clock: the table resumes with the
				// persisted modification delta, so stats that were stale
				// before the save stay stale after the load.
				tbl.mu.Lock()
				tbl.mods = stats.ModsSince
				stats.ModsSince = 0
				stats.modsAt = 0
				tbl.Stats = *stats
				tbl.mu.Unlock()
				restored = true
			}
		}
		if !restored {
			if err := c.RunStats(name); err != nil {
				return nil, err
			}
		}
	}
	return c, nil
}

func writeUvarint(w io.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeString(w io.Writer, s string) error {
	if err := writeUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("catalog: implausible string length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}
