package catalog

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/engine/types"
)

func newTestTable(t *testing.T) (*Catalog, *Table) {
	t.Helper()
	c := New(nil)
	tbl, err := c.CreateTable("speech", []Column{
		{Name: "speechID", Type: types.KindInt},
		{Name: "speaker", Type: types.KindString},
		{Name: "line", Type: types.KindXADT},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, tbl
}

func TestCreateTableAndInsert(t *testing.T) {
	_, tbl := newTestTable(t)
	err := tbl.Insert([]types.Value{
		types.NewInt(1), types.NewString("HAMLET"), types.NewXADT([]byte("<LINE>hi</LINE>")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 1 {
		t.Errorf("Rows = %d", tbl.Rows())
	}
}

func TestInsertValidation(t *testing.T) {
	_, tbl := newTestTable(t)
	if err := tbl.Insert([]types.Value{types.NewInt(1)}); err == nil {
		t.Error("wrong arity should fail")
	}
	if err := tbl.Insert([]types.Value{
		types.NewString("x"), types.NewString("y"), types.Null,
	}); err == nil {
		t.Error("wrong type should fail")
	}
	// NULLs are allowed in any column.
	if err := tbl.Insert([]types.Value{types.NewInt(1), types.Null, types.Null}); err != nil {
		t.Errorf("nulls rejected: %v", err)
	}
}

func TestCreateTableErrors(t *testing.T) {
	c, _ := newTestTable(t)
	if _, err := c.CreateTable("speech", nil); err == nil {
		t.Error("duplicate table should fail")
	}
	if _, err := c.CreateTable("bad", []Column{
		{Name: "x", Type: types.KindInt}, {Name: "x", Type: types.KindInt},
	}); err == nil {
		t.Error("duplicate column should fail")
	}
}

func TestIndexMaintenance(t *testing.T) {
	c, tbl := newTestTable(t)
	// Backfill path: rows exist before the index.
	for i := 0; i < 100; i++ {
		tbl.Insert([]types.Value{
			types.NewInt(int64(i)), types.NewString(fmt.Sprintf("S%d", i%10)), types.Null,
		})
	}
	idx, err := c.CreateIndex("speech", "speaker")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(idx.Tree.Lookup(types.NewString("S3"))); got != 10 {
		t.Errorf("backfilled lookup = %d, want 10", got)
	}
	// Forward maintenance: inserts after the index.
	tbl.Insert([]types.Value{types.NewInt(100), types.NewString("S3"), types.Null})
	if got := len(idx.Tree.Lookup(types.NewString("S3"))); got != 11 {
		t.Errorf("maintained lookup = %d, want 11", got)
	}
}

func TestCreateIndexErrors(t *testing.T) {
	c, _ := newTestTable(t)
	if _, err := c.CreateIndex("ghost", "x"); err == nil {
		t.Error("missing table should fail")
	}
	if _, err := c.CreateIndex("speech", "ghost"); err == nil {
		t.Error("missing column should fail")
	}
	if _, err := c.CreateIndex("speech", "speaker"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateIndex("speech", "speaker"); err == nil {
		t.Error("duplicate index should fail")
	}
}

func TestRunStats(t *testing.T) {
	c, tbl := newTestTable(t)
	for i := 0; i < 50; i++ {
		tbl.Insert([]types.Value{
			types.NewInt(int64(i)), types.NewString(fmt.Sprintf("S%d", i%5)), types.Null,
		})
	}
	if tbl.Stats.Valid {
		t.Error("stats should be invalid before RunStats")
	}
	if err := c.RunStats("speech"); err != nil {
		t.Fatal(err)
	}
	if !tbl.Stats.Valid || tbl.Stats.Rows != 50 {
		t.Errorf("stats = %+v", tbl.Stats)
	}
	if got := tbl.Stats.Distinct["speaker"]; got != 5 {
		t.Errorf("distinct speakers = %d, want 5", got)
	}
	if got := tbl.Stats.Distinct["speechID"]; got != 50 {
		t.Errorf("distinct ids = %d, want 50", got)
	}
	// Inserting no longer invalidates outright: the modification counter
	// advances and StaleRatio reflects the drift.
	tbl.Insert([]types.Value{types.NewInt(51), types.Null, types.Null})
	snap := tbl.StatsSnapshot()
	if !snap.Valid {
		t.Error("one insert should not invalidate stats")
	}
	if snap.ModsSince != 1 {
		t.Errorf("ModsSince = %d, want 1", snap.ModsSince)
	}
	if r := snap.StaleRatio(); r <= 0 || r > DefaultStaleRatio {
		t.Errorf("StaleRatio = %v, want small but positive", r)
	}
	// Enough DML pushes the ratio past the planner's trust threshold.
	tbl.AdvanceMods(int64(float64(snap.Rows)*DefaultStaleRatio) + 1)
	if snap = tbl.StatsSnapshot(); snap.StaleRatio() <= DefaultStaleRatio {
		t.Errorf("StaleRatio = %v, want past %v", snap.StaleRatio(), DefaultStaleRatio)
	}
	if snap.Fresh() {
		t.Error("stale stats should not report Fresh")
	}
}

func TestSizeAccounting(t *testing.T) {
	c, tbl := newTestTable(t)
	for i := 0; i < 2000; i++ {
		tbl.Insert([]types.Value{
			types.NewInt(int64(i)), types.NewString(strings.Repeat("a", 100)), types.Null,
		})
	}
	c.CreateIndex("speech", "speechID")
	if tbl.DataBytes() <= 0 || tbl.IndexBytes() <= 0 {
		t.Errorf("sizes: data=%d index=%d", tbl.DataBytes(), tbl.IndexBytes())
	}
	if c.TotalDataBytes() != tbl.DataBytes() || c.TotalIndexBytes() != tbl.IndexBytes() {
		t.Error("catalog totals disagree with table")
	}
}

func TestDescribeAndNames(t *testing.T) {
	c, _ := newTestTable(t)
	c.CreateTable("act", []Column{{Name: "actID", Type: types.KindInt}})
	names := c.TableNames()
	if len(names) != 2 || names[0] != "speech" || names[1] != "act" {
		t.Errorf("TableNames = %v", names)
	}
	d := c.Describe()
	if !strings.Contains(d, "speech") || !strings.Contains(d, "act") {
		t.Errorf("Describe = %q", d)
	}
}

func TestRunStatsAll(t *testing.T) {
	c, tbl := newTestTable(t)
	tbl.Insert([]types.Value{types.NewInt(1), types.Null, types.Null})
	if err := c.RunStatsAll(); err != nil {
		t.Fatal(err)
	}
	if !tbl.Stats.Valid {
		t.Error("RunStatsAll did not refresh")
	}
	if err := c.RunStats("ghost"); err == nil {
		t.Error("missing table should fail")
	}
}
