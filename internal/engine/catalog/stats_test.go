package catalog

import (
	"bytes"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/engine/types"
)

var update = flag.Bool("update", false, "rewrite golden files")

// statsFixture builds a deterministic Stats by analyzing a small table:
// a unique int column, a skewed 5-value string column, and an all-null
// column. Everything downstream of RunStats (sampling stride, bucket
// boundaries, encoding order) is deterministic, so the encoded bytes
// can be pinned by a golden file.
func statsFixture(t *testing.T) *Stats {
	t.Helper()
	c, tbl := newTestTable(t)
	for i := 0; i < 200; i++ {
		tbl.Insert([]types.Value{
			types.NewInt(int64(i * 3)),
			types.NewString(fmt.Sprintf("S%d", i%5)),
			types.Null,
		})
	}
	if err := c.RunStats("speech"); err != nil {
		t.Fatal(err)
	}
	return &tbl.Stats
}

func TestHistogramFracBelow(t *testing.T) {
	s := statsFixture(t)
	h := s.Cols["speechID"].Hist
	if h == nil {
		t.Fatal("no histogram for speechID")
	}
	// Values 0,3,...,597: FracBelow must be ~v/600, monotone, and clamped.
	if got := h.FracBelow(types.NewInt(-5)); got != 0 {
		t.Errorf("FracBelow(-5) = %v, want 0", got)
	}
	if got := h.FracBelow(types.NewInt(10_000)); got != 1 {
		t.Errorf("FracBelow(10000) = %v, want 1", got)
	}
	prev := -1.0
	for v := int64(0); v <= 600; v += 50 {
		got := h.FracBelow(types.NewInt(v))
		want := float64(v) / 600
		if got < prev {
			t.Errorf("FracBelow not monotone at %d: %v < %v", v, got, prev)
		}
		if diff := got - want; diff < -0.1 || diff > 0.1 {
			t.Errorf("FracBelow(%d) = %v, want ~%v", v, got, want)
		}
		prev = got
	}
	// Heavy duplicates: the 5-value string column still gets a histogram
	// whose buckets cover all rows.
	sh := s.Cols["speaker"].Hist
	if sh == nil {
		t.Fatal("no histogram for speaker")
	}
	total := 0
	for _, c := range sh.Counts {
		total += c
	}
	if total < 190 || total > 210 {
		t.Errorf("speaker histogram covers %d rows, want ~200", total)
	}
}

func TestStatsCodecRoundTrip(t *testing.T) {
	s := statsFixture(t)
	blob := EncodeStats(s)
	back, err := DecodeStats(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows != s.Rows || back.Pages != s.Pages || back.ModsSince != s.ModsSince {
		t.Errorf("header mismatch: %+v vs %+v", back, s)
	}
	for name, cs := range s.Cols {
		got, ok := back.Cols[name]
		if !ok {
			t.Fatalf("column %q lost in round trip", name)
		}
		if got.Distinct != cs.Distinct {
			t.Errorf("%s: distinct %d vs %d", name, got.Distinct, cs.Distinct)
		}
		if diff := got.NullFrac - cs.NullFrac; diff < -1e-6 || diff > 1e-6 {
			t.Errorf("%s: null frac %v vs %v", name, got.NullFrac, cs.NullFrac)
		}
		if (got.Hist == nil) != (cs.Hist == nil) {
			t.Fatalf("%s: histogram presence changed", name)
		}
		if cs.Hist != nil && !reflect.DeepEqual(got.Hist, cs.Hist) {
			t.Errorf("%s: histogram changed in round trip", name)
		}
	}
	// Determinism: encoding the decoded form reproduces the bytes.
	if !bytes.Equal(EncodeStats(back), blob) {
		t.Error("re-encoding decoded stats produced different bytes")
	}
}

// TestStatsEncodingGolden pins the persisted statistics encoding: any
// byte-level change to the codec (new fields, reordered sections,
// varint width changes) shows up as a golden diff and must bump the
// format version instead of silently breaking old snapshots. Refresh
// with go test ./internal/engine/catalog/ -run Golden -update.
func TestStatsEncodingGolden(t *testing.T) {
	blob := EncodeStats(statsFixture(t))
	dump := hex.Dump(blob)
	path := filepath.Join("testdata", "stats.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(dump), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if string(want) != dump {
		t.Errorf("stats encoding drifted from %s (rerun with -update if intended)\ngot:\n%s", path, dump)
	}
}

// FuzzStatsCodec feeds arbitrary bytes to DecodeStats: it must reject
// garbage with an error, never panic or over-allocate, and any blob it
// does accept must re-encode and re-decode to the same statistics.
func FuzzStatsCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("XSTATS01"))
	f.Add([]byte("XSTATS99garbage"))
	var seedTbl *Stats
	{
		c := New(nil)
		tbl, err := c.CreateTable("t", []Column{
			{Name: "a", Type: types.KindInt},
			{Name: "b", Type: types.KindString},
		})
		if err != nil {
			f.Fatal(err)
		}
		for i := 0; i < 64; i++ {
			tbl.Insert([]types.Value{
				types.NewInt(int64(i % 7)), types.NewString(fmt.Sprintf("v%d", i%3)),
			})
		}
		if err := c.RunStats("t"); err != nil {
			f.Fatal(err)
		}
		seedTbl = &tbl.Stats
	}
	f.Add(EncodeStats(seedTbl))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeStats(data)
		if err != nil {
			return
		}
		blob := EncodeStats(s)
		back, err := DecodeStats(blob)
		if err != nil {
			t.Fatalf("re-decode of accepted blob failed: %v", err)
		}
		if !bytes.Equal(EncodeStats(back), blob) {
			t.Fatal("encode/decode/encode not a fixed point")
		}
	})
}
