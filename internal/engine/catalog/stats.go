// Statistics collection: equi-depth histograms, hybrid exact/HLL
// distinct sketches, null fractions, and element-path frequencies for
// XADT columns. RunStats builds these in one heap scan; the planner's
// cost model consumes them through StatsSnapshot. The binary codec at
// the bottom persists them inside catalog snapshots (format v3) so
// loaded stores keep their statistics without a rescan.
package catalog

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"

	"repro/internal/engine/types"
	"repro/internal/xadt"
	"repro/internal/xmltree"
)

const (
	// statsMaxSample caps per-column histogram samples: RunStats strides
	// the heap so at most this many values feed each histogram.
	statsMaxSample = 4096
	// statsHistBuckets is the equi-depth bucket budget per histogram.
	statsHistBuckets = 32
	// statsExactDistinct is the exact-counting ceiling: below it a
	// column's distinct count is exact, above it the counter degrades to
	// an HLL-style register sketch.
	statsExactDistinct = 4096
	// hllPrecision/hllRegisters size the sketch: 2^8 registers of the
	// max leading-zero rank, the standard HyperLogLog layout.
	hllPrecision = 8
	hllRegisters = 1 << hllPrecision
	// statsMaxPaths caps the element-path frequency table per XADT
	// column (top names by estimated count).
	statsMaxPaths = 64
	// DefaultStaleRatio is the modification fraction past which the
	// planner distrusts statistics: once DML has touched more than this
	// fraction of the rows counted at the last RunStats, estimates fall
	// back to live row counts and default selectivities (and the
	// auto-refresh path reruns RunStats on non-MVCC catalogs).
	DefaultStaleRatio = 0.3
)

// ColStats are the per-column statistics RunStats computes.
type ColStats struct {
	// Distinct is the (possibly sketch-estimated) distinct value count.
	Distinct int
	// NullFrac is the fraction of rows with a NULL in this column.
	NullFrac float64
	// Hist is an equi-depth histogram over non-null values; nil for
	// XADT columns and columns with no sampled values.
	Hist *Histogram
	// PathFreq estimates, for XADT columns, how many times each element
	// name occurs across the column's fragments (scaled from the sampled
	// rows, capped at statsMaxPaths entries). Nil for scalar columns.
	PathFreq map[string]int
	// Sketch holds the HLL registers when the distinct counter degraded
	// to a sketch; nil while counting stayed exact. Persisted so future
	// incremental refreshes could merge rather than rescan.
	Sketch []uint8
}

// Histogram is an equi-depth histogram: Bounds[i] is the inclusive
// upper bound of bucket i, Counts[i] the estimated rows in it, and Min
// the smallest sampled value (the lower bound of bucket 0).
type Histogram struct {
	Kind   types.Kind
	Min    types.Value
	Bounds []types.Value
	Counts []int
	// Total is the non-null row count the buckets were scaled to.
	Total int
}

// FracBelow estimates the fraction of non-null values strictly less
// than v, interpolating linearly inside integer buckets and taking the
// half-bucket for strings (boundary samples only order them).
func (h *Histogram) FracBelow(v types.Value) float64 {
	if h == nil || h.Total <= 0 || len(h.Bounds) == 0 {
		return 0.5
	}
	if types.Compare(v, h.Min) <= 0 {
		return 0
	}
	cum := 0.0
	lo := h.Min
	for i, bound := range h.Bounds {
		if types.Compare(bound, v) < 0 {
			cum += float64(h.Counts[i])
			lo = bound
			continue
		}
		frac := 0.5
		if h.Kind == types.KindInt {
			span := float64(bound.Int() - lo.Int())
			if span > 0 {
				frac = float64(v.Int()-lo.Int()) / span
			} else {
				frac = 1
			}
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
		}
		cum += frac * float64(h.Counts[i])
		return cum / float64(h.Total)
	}
	return 1
}

// distinctCounter counts distinct value hashes exactly until
// statsExactDistinct, then converts to an HLL register sketch.
type distinctCounter struct {
	exact map[uint64]struct{}
	regs  []uint8
}

func newDistinctCounter() *distinctCounter {
	return &distinctCounter{exact: make(map[uint64]struct{})}
}

func (d *distinctCounter) add(h uint64) {
	if d.regs == nil {
		d.exact[h] = struct{}{}
		if len(d.exact) <= statsExactDistinct {
			return
		}
		d.regs = make([]uint8, hllRegisters)
		for x := range d.exact {
			d.observe(x)
		}
		d.exact = nil
		return
	}
	d.observe(h)
}

func (d *distinctCounter) observe(h uint64) {
	j := h >> (64 - hllPrecision)
	rank := uint8(bits.LeadingZeros64(h<<hllPrecision)) + 1
	if max := uint8(64 - hllPrecision + 1); rank > max {
		rank = max
	}
	if rank > d.regs[j] {
		d.regs[j] = rank
	}
}

func (d *distinctCounter) estimate() int {
	if d.regs == nil {
		return len(d.exact)
	}
	return hllEstimate(d.regs)
}

// hllEstimate is the standard HyperLogLog estimator with the
// small-range linear-counting correction.
func hllEstimate(regs []uint8) int {
	m := float64(len(regs))
	sum := 0.0
	zeros := 0
	for _, r := range regs {
		sum += math.Exp2(-float64(r))
		if r == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/m)
	est := alpha * m * m / sum
	if est <= 2.5*m && zeros > 0 {
		est = m * math.Log(m/float64(zeros))
	}
	if est < 1 {
		est = 1
	}
	return int(est + 0.5)
}

// buildHistogram makes an equi-depth histogram from a sorted-on-entry
// or unsorted sample, scaling bucket counts to totalNonNull rows.
func buildHistogram(kind types.Kind, sample []types.Value, totalNonNull int) *Histogram {
	if len(sample) == 0 || totalNonNull <= 0 {
		return nil
	}
	sorted := append([]types.Value(nil), sample...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return types.Compare(sorted[i], sorted[j]) < 0
	})
	nb := statsHistBuckets
	if nb > len(sorted) {
		nb = len(sorted)
	}
	h := &Histogram{Kind: kind, Min: sorted[0], Total: totalNonNull}
	scale := float64(totalNonNull) / float64(len(sorted))
	prev := 0
	for b := 1; b <= nb; b++ {
		hi := b * len(sorted) / nb
		if hi <= prev {
			continue
		}
		bound := sorted[hi-1]
		count := int(float64(hi-prev)*scale + 0.5)
		// Merge buckets that share an upper bound (heavy duplicates).
		if n := len(h.Bounds); n > 0 && types.Compare(h.Bounds[n-1], bound) == 0 {
			h.Counts[n-1] += count
		} else {
			h.Bounds = append(h.Bounds, bound)
			h.Counts = append(h.Counts, count)
		}
		prev = hi
	}
	return h
}

// countElementNames decodes one XADT fragment and tallies its element
// names into freq. Decode failures are ignored — statistics must never
// fail a scan.
func countElementNames(v types.Value, freq map[string]int) {
	nodes, err := xadt.FromBytes(v.XADT()).Nodes()
	if err != nil {
		return
	}
	var walk func(n *xmltree.Node)
	walk = func(n *xmltree.Node) {
		if !n.IsElement() {
			return
		}
		freq[n.Name]++
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, n := range nodes {
		walk(n)
	}
}

// capPathFreq keeps the statsMaxPaths highest-count entries,
// deterministically (count desc, then name asc).
func capPathFreq(freq map[string]int) map[string]int {
	if len(freq) == 0 {
		return nil
	}
	if len(freq) <= statsMaxPaths {
		return freq
	}
	type kv struct {
		name  string
		count int
	}
	all := make([]kv, 0, len(freq))
	for k, v := range freq {
		all = append(all, kv{k, v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].name < all[j].name
	})
	out := make(map[string]int, statsMaxPaths)
	for _, e := range all[:statsMaxPaths] {
		out[e.name] = e.count
	}
	return out
}

// StaleRatio reports how much DML the table has absorbed since this
// Stats was computed, as a fraction of the row count it measured.
// Invalid statistics are infinitely stale. StatsSnapshot fills the
// modification delta; a Stats read directly off a Table reports 0.
func (s *Stats) StaleRatio() float64 {
	if s == nil || !s.Valid {
		return math.Inf(1)
	}
	if s.ModsSince <= 0 {
		return 0
	}
	rows := s.Rows
	if rows < 1 {
		rows = 1
	}
	return float64(s.ModsSince) / float64(rows)
}

// Fresh reports whether the statistics are valid and within the
// staleness budget — the planner's precondition for trusting them.
func (s *Stats) Fresh() bool {
	return s != nil && s.Valid && s.StaleRatio() <= DefaultStaleRatio
}

// Col returns the per-column statistics, or a zero value.
func (s *Stats) Col(name string) (ColStats, bool) {
	if s == nil || !s.Valid || s.Cols == nil {
		return ColStats{}, false
	}
	cs, ok := s.Cols[name]
	return cs, ok
}

// ---- binary codec -------------------------------------------------------

// statsMagic versions the standalone statistics encoding (also embedded
// in catalog snapshots from format v3 on).
const statsMagic = "XSTATS01"

// nullFracScale fixes the null-fraction fixed-point denominator.
const nullFracScale = 1 << 30

// EncodeStats serializes per-table statistics deterministically
// (columns and path names sorted).
func EncodeStats(s *Stats) []byte {
	var buf bytes.Buffer
	buf.WriteString(statsMagic)
	writeUvarint(&buf, uint64(s.Rows))
	writeUvarint(&buf, uint64(s.Pages))
	writeUvarint(&buf, uint64(s.ModsSince))
	names := make([]string, 0, len(s.Cols))
	for n := range s.Cols {
		names = append(names, n)
	}
	sort.Strings(names)
	writeUvarint(&buf, uint64(len(names)))
	for _, n := range names {
		cs := s.Cols[n]
		writeString(&buf, n)
		writeUvarint(&buf, uint64(cs.Distinct))
		writeUvarint(&buf, uint64(cs.NullFrac*nullFracScale+0.5))
		if cs.Hist == nil {
			buf.WriteByte(0)
		} else {
			buf.WriteByte(1)
			writeUvarint(&buf, uint64(cs.Hist.Kind))
			encodeStatValue(&buf, cs.Hist.Min)
			writeUvarint(&buf, uint64(len(cs.Hist.Bounds)))
			for i, b := range cs.Hist.Bounds {
				encodeStatValue(&buf, b)
				writeUvarint(&buf, uint64(cs.Hist.Counts[i]))
			}
			writeUvarint(&buf, uint64(cs.Hist.Total))
		}
		paths := make([]string, 0, len(cs.PathFreq))
		for p := range cs.PathFreq {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		writeUvarint(&buf, uint64(len(paths)))
		for _, p := range paths {
			writeString(&buf, p)
			writeUvarint(&buf, uint64(cs.PathFreq[p]))
		}
		writeUvarint(&buf, uint64(len(cs.Sketch)))
		buf.Write(cs.Sketch)
	}
	return buf.Bytes()
}

// DecodeStats parses an EncodeStats blob, rejecting corrupt or
// implausible input with an error (never a panic).
func DecodeStats(b []byte) (*Stats, error) {
	br := bufio.NewReader(bytes.NewReader(b))
	magic := make([]byte, len(statsMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("stats: magic: %w", err)
	}
	if string(magic) != statsMagic {
		return nil, fmt.Errorf("stats: bad magic %q", magic)
	}
	rows, err := readBoundedUvarint(br, 1<<40)
	if err != nil {
		return nil, err
	}
	pages, err := readBoundedUvarint(br, 1<<40)
	if err != nil {
		return nil, err
	}
	mods, err := readBoundedUvarint(br, 1<<40)
	if err != nil {
		return nil, err
	}
	ncols, err := readBoundedUvarint(br, 4096)
	if err != nil {
		return nil, err
	}
	s := &Stats{
		Rows: int(rows), Pages: int(pages), ModsSince: int64(mods),
		Distinct: map[string]int{}, Cols: map[string]ColStats{}, Valid: true,
	}
	for i := uint64(0); i < ncols; i++ {
		name, err := readString(br)
		if err != nil {
			return nil, err
		}
		distinct, err := readBoundedUvarint(br, 1<<40)
		if err != nil {
			return nil, err
		}
		nf, err := readBoundedUvarint(br, nullFracScale)
		if err != nil {
			return nil, err
		}
		cs := ColStats{Distinct: int(distinct), NullFrac: float64(nf) / nullFracScale}
		hasHist, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		switch hasHist {
		case 0:
		case 1:
			kind, err := readBoundedUvarint(br, 16)
			if err != nil {
				return nil, err
			}
			min, err := decodeStatValue(br)
			if err != nil {
				return nil, err
			}
			nb, err := readBoundedUvarint(br, 1024)
			if err != nil {
				return nil, err
			}
			h := &Histogram{Kind: types.Kind(kind), Min: min}
			for j := uint64(0); j < nb; j++ {
				bound, err := decodeStatValue(br)
				if err != nil {
					return nil, err
				}
				count, err := readBoundedUvarint(br, 1<<40)
				if err != nil {
					return nil, err
				}
				h.Bounds = append(h.Bounds, bound)
				h.Counts = append(h.Counts, int(count))
			}
			total, err := readBoundedUvarint(br, 1<<40)
			if err != nil {
				return nil, err
			}
			h.Total = int(total)
			cs.Hist = h
		default:
			return nil, fmt.Errorf("stats: bad histogram flag %d", hasHist)
		}
		npaths, err := readBoundedUvarint(br, 4096)
		if err != nil {
			return nil, err
		}
		if npaths > 0 {
			cs.PathFreq = make(map[string]int, npaths)
			for j := uint64(0); j < npaths; j++ {
				p, err := readString(br)
				if err != nil {
					return nil, err
				}
				count, err := readBoundedUvarint(br, 1<<40)
				if err != nil {
					return nil, err
				}
				cs.PathFreq[p] = int(count)
			}
		}
		nsketch, err := readBoundedUvarint(br, 1<<16)
		if err != nil {
			return nil, err
		}
		if nsketch > 0 {
			cs.Sketch = make([]uint8, nsketch)
			if _, err := io.ReadFull(br, cs.Sketch); err != nil {
				return nil, err
			}
		}
		s.Cols[name] = cs
		s.Distinct[name] = cs.Distinct
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("stats: trailing bytes")
	}
	return s, nil
}

func encodeStatValue(buf *bytes.Buffer, v types.Value) {
	switch v.Kind() {
	case types.KindInt:
		buf.WriteByte(1)
		var tmp [binary.MaxVarintLen64]byte
		n := binary.PutVarint(tmp[:], v.Int())
		buf.Write(tmp[:n])
	case types.KindString:
		buf.WriteByte(2)
		writeString(buf, v.Str())
	default:
		buf.WriteByte(0)
	}
}

func decodeStatValue(br *bufio.Reader) (types.Value, error) {
	tag, err := br.ReadByte()
	if err != nil {
		return types.Null, err
	}
	switch tag {
	case 0:
		return types.Null, nil
	case 1:
		i, err := binary.ReadVarint(br)
		if err != nil {
			return types.Null, err
		}
		return types.NewInt(i), nil
	case 2:
		s, err := readString(br)
		if err != nil {
			return types.Null, err
		}
		return types.NewString(s), nil
	default:
		return types.Null, fmt.Errorf("stats: bad value tag %d", tag)
	}
}

func readBoundedUvarint(br *bufio.Reader, max uint64) (uint64, error) {
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, err
	}
	if v > max {
		return 0, fmt.Errorf("stats: implausible count %d", v)
	}
	return v, nil
}
