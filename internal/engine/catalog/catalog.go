// Package catalog manages the engine's tables: schemas, heap files,
// secondary indexes, and optimizer statistics (the engine's equivalent of
// DB2's runstats, which the paper runs before every measurement).
package catalog

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/engine/index"
	"repro/internal/engine/mvcc"
	"repro/internal/engine/storage"
	"repro/internal/engine/types"
	"repro/internal/engine/xindex"
)

// Column is one column of a table schema.
type Column struct {
	Name string
	Type types.Kind
}

// Schema is an ordered list of columns.
type Schema struct {
	Table   string
	Columns []Column
}

// ColIndex returns the position of the named column, or -1.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Index is a secondary B+tree index over one column.
type Index struct {
	Name   string
	Column string
	ColIdx int
	Tree   *index.BTree
}

// Stats are per-table optimizer statistics computed by RunStats.
type Stats struct {
	// Rows is the table cardinality at the last RunStats.
	Rows int
	// Pages is the heap data-page count at the last RunStats.
	Pages int
	// Distinct maps column names to their number of distinct values
	// (kept alongside Cols for callers that only need cardinalities).
	Distinct map[string]int
	// Cols holds the full per-column statistics: distinct counts, null
	// fractions, histograms, and XADT element-path frequencies.
	Cols map[string]ColStats
	// Valid reports whether RunStats has run since the last load.
	Valid bool
	// ModsSince counts DML operations applied to the table after this
	// Stats was computed. StatsSnapshot fills it from the table's
	// modification counter; StaleRatio interprets it.
	ModsSince int64
	// modsAt is the table's modification counter value when RunStats
	// ran; the delta to the live counter yields ModsSince.
	modsAt int64
}

// DistinctOr returns the distinct count for a column, or def when stats
// are missing.
func (s *Stats) DistinctOr(col string, def int) int {
	if s == nil || !s.Valid {
		return def
	}
	if d, ok := s.Distinct[col]; ok {
		return d
	}
	return def
}

// Table is a stored table: schema, heap file, indexes, statistics.
// The mutex guards Indexes and Stats against concurrent readers (parallel
// query workers consult both); direct field access remains safe for
// single-threaded code such as loaders and tests.
type Table struct {
	Schema  *Schema
	Heap    *storage.HeapFile
	Indexes []*Index
	// FragIndexes are the secondary XADT indexes (path + keyword
	// postings) over this table's fragment columns; Insert keeps them
	// current so they are never stale while they remain valid.
	FragIndexes []*xindex.FragmentIndex
	Stats       Stats
	// V is the MVCC version sidecar, attached when the database enables
	// snapshot isolation; nil tables are unversioned and behave exactly
	// as before.
	V *mvcc.TableVersions

	mu sync.RWMutex
	// mods counts DML operations (insert/delete/update) since the table
	// was created or loaded. Statistics record the counter at RunStats
	// time; the delta measures staleness instead of a blunt
	// invalidate-on-any-write bit. Guarded by mu.
	mods int64
}

// ValidateRow checks a row's arity and column types against the schema —
// the same check Insert and UpdateRID apply — so deferred-write paths
// (MVCC sessions) can surface type errors at statement time instead of
// at commit.
func (t *Table) ValidateRow(row []types.Value) error {
	if len(row) != len(t.Schema.Columns) {
		return fmt.Errorf("catalog: table %s expects %d columns, got %d",
			t.Schema.Table, len(t.Schema.Columns), len(row))
	}
	for i, v := range row {
		if v.IsNull() {
			continue
		}
		if v.Kind() != t.Schema.Columns[i].Type {
			return fmt.Errorf("catalog: table %s column %s expects %v, got %v",
				t.Schema.Table, t.Schema.Columns[i].Name, t.Schema.Columns[i].Type, v.Kind())
		}
	}
	return nil
}

// Insert validates and stores a row, maintaining all indexes.
func (t *Table) Insert(row []types.Value) error {
	_, err := t.InsertRID(row)
	return err
}

// InsertRID is Insert returning the RID the heap assigned, which the
// MVCC commit path needs to resolve a transaction's pseudo-RIDs.
func (t *Table) InsertRID(row []types.Value) (storage.RID, error) {
	if err := t.ValidateRow(row); err != nil {
		return storage.RID{}, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rid := t.Heap.Insert(row)
	for _, idx := range t.Indexes {
		idx.Tree.Insert(row[idx.ColIdx], rid)
	}
	for _, fi := range t.FragIndexes {
		fi.AddRow(rid, row[fi.ColumnIndex()])
	}
	if t.V != nil {
		t.V.NoteInsert(rid)
	}
	t.mods++
	return rid, nil
}

// fragRebuildBacklog is the tombstone+overlay count at which a fragment
// index is rebuilt from the heap instead of patched at lookup time. The
// rebuild changes only lookup cost, never results, so replaying the same
// history on another store need not rebuild at the same points.
const fragRebuildBacklog = 128

// DeleteRID removes the row at rid, maintaining all indexes. It returns
// the deleted row so callers (mutation operators, WAL redo) can log or
// cross-check it.
func (t *Table) DeleteRID(rid storage.RID) ([]types.Value, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	row, err := t.Heap.Get(rid)
	if err != nil {
		return nil, fmt.Errorf("catalog: delete from %s at %v: %w", t.Schema.Table, rid, err)
	}
	if err := t.Heap.Delete(rid); err != nil {
		return nil, err
	}
	for _, idx := range t.Indexes {
		idx.Tree.Delete(row[idx.ColIdx], rid)
	}
	for _, fi := range t.FragIndexes {
		fi.DeleteRow(rid)
	}
	if t.V != nil {
		t.V.NoteDelete(rid, row)
	}
	t.maybeRebuildFragLocked()
	t.mods++
	return row, nil
}

// UpdateRID replaces the row at rid, maintaining all indexes, and
// returns the row's RID afterwards (a new one if the record had to
// move).
func (t *Table) UpdateRID(rid storage.RID, row []types.Value) (storage.RID, error) {
	if err := t.ValidateRow(row); err != nil {
		return storage.RID{}, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old, err := t.Heap.Get(rid)
	if err != nil {
		return storage.RID{}, fmt.Errorf("catalog: update %s at %v: %w", t.Schema.Table, rid, err)
	}
	newRID, err := t.Heap.Update(rid, row)
	if err != nil {
		return storage.RID{}, err
	}
	for _, idx := range t.Indexes {
		idx.Tree.Delete(old[idx.ColIdx], rid)
		idx.Tree.Insert(row[idx.ColIdx], newRID)
	}
	for _, fi := range t.FragIndexes {
		fi.DeleteRow(rid)
		fi.AddRow(newRID, row[fi.ColumnIndex()])
	}
	if t.V != nil {
		t.V.NoteUpdate(rid, old, newRID)
	}
	t.maybeRebuildFragLocked()
	t.mods++
	return newRID, nil
}

// maybeRebuildFragLocked rebuilds any fragment index whose mutation
// backlog has grown past the threshold. Called with t.mu held; the heap
// has its own lock, so the backfill scan is safe here.
func (t *Table) maybeRebuildFragLocked() {
	for i, fi := range t.FragIndexes {
		if fi.Backlog() < fragRebuildBacklog {
			continue
		}
		fresh := xindex.NewFragmentIndex(fi.Table(), fi.Column(), fi.ColumnIndex())
		ci := fi.ColumnIndex()
		err := t.Heap.Scan(func(rid storage.RID, row []types.Value) error {
			fresh.AddRow(rid, row[ci])
			return nil
		})
		if err != nil {
			fresh.Invalidate()
		}
		t.FragIndexes[i] = fresh
	}
}

// IndexOn returns the index over the named column, or nil.
func (t *Table) IndexOn(column string) *Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, idx := range t.Indexes {
		if idx.Column == column {
			return idx
		}
	}
	return nil
}

// FragIndexOn returns the XADT fragment index over the named column, or
// nil.
func (t *Table) FragIndexOn(column string) *xindex.FragmentIndex {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, fi := range t.FragIndexes {
		if fi.Column() == column {
			return fi
		}
	}
	return nil
}

// StatsSnapshot returns a copy of the table's optimizer statistics that
// is safe to read while other goroutines insert rows or run RunStats.
// The Distinct/Cols maps are shared with the live Stats but both treat
// them as immutable once published (RunStats installs fresh maps). The
// copy's ModsSince is filled from the live modification counter, so
// StaleRatio on the snapshot reflects DML since the last RunStats.
func (t *Table) StatsSnapshot() Stats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s := t.Stats
	s.ModsSince = t.mods - s.modsAt
	return s
}

// AdvanceMods bumps the table's modification counter without changing
// any data — a staleness hook for tests and the differential harness,
// which need "stats aged by n DML operations" without churning rows.
func (t *Table) AdvanceMods(n int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.mods += n
}

// Rows returns the current cardinality.
func (t *Table) Rows() int { return t.Heap.Rows() }

// DataBytes returns the heap footprint in bytes.
func (t *Table) DataBytes() int64 { return t.Heap.DataBytes() }

// IndexBytes returns the total footprint of the table's indexes.
func (t *Table) IndexBytes() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var n int64
	for _, idx := range t.Indexes {
		n += idx.Tree.SizeBytes()
	}
	for _, fi := range t.FragIndexes {
		n += fi.SizeBytes()
	}
	return n
}

// Catalog is the set of tables in a database. The mutex guards the
// table registry so concurrent queries can resolve tables while DDL
// (CreateTable/CreateIndex) proceeds on another goroutine.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
	order  []string
	pool   *storage.BufferPool
	mgr    *mvcc.TxnManager
}

// SetMVCC attaches a transaction manager: every existing table gets a
// version sidecar (all current rows count as born at time 0) and tables
// created from now on are versioned at birth.
func (c *Catalog) SetMVCC(mgr *mvcc.TxnManager) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mgr = mgr
	for _, name := range c.order {
		t := c.tables[name]
		if t.V == nil {
			t.V = mgr.Register(name)
		}
	}
}

// New returns an empty catalog. The buffer pool may be nil.
func New(pool *storage.BufferPool) *Catalog {
	return &Catalog{tables: map[string]*Table{}, pool: pool}
}

// CreateTable registers a new table.
func (c *Catalog) CreateTable(name string, cols []Column) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.tables[name]; exists {
		return nil, fmt.Errorf("catalog: table %s already exists", name)
	}
	seen := map[string]bool{}
	for _, col := range cols {
		if seen[col.Name] {
			return nil, fmt.Errorf("catalog: table %s has duplicate column %s", name, col.Name)
		}
		seen[col.Name] = true
	}
	t := &Table{
		Schema: &Schema{Table: name, Columns: append([]Column(nil), cols...)},
		Heap:   storage.NewHeapFile(c.pool),
	}
	if c.mgr != nil {
		t.V = c.mgr.Register(name)
	}
	c.tables[name] = t
	c.order = append(c.order, name)
	return t, nil
}

// Table returns the named table, or nil.
func (c *Catalog) Table(name string) *Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tables[name]
}

// TableNames returns table names in creation order.
func (c *Catalog) TableNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]string(nil), c.order...)
}

// CreateIndex builds a B+tree index over one column of a table,
// backfilling existing rows.
func (c *Catalog) CreateIndex(table, column string) (*Index, error) {
	t := c.Table(table)
	if t == nil {
		return nil, fmt.Errorf("catalog: no table %s", table)
	}
	ci := t.Schema.ColIndex(column)
	if ci < 0 {
		return nil, fmt.Errorf("catalog: table %s has no column %s", table, column)
	}
	if t.IndexOn(column) != nil {
		return nil, fmt.Errorf("catalog: index on %s.%s already exists", table, column)
	}
	idx := &Index{
		Name:   fmt.Sprintf("idx_%s_%s", table, column),
		Column: column,
		ColIdx: ci,
		Tree:   index.New(),
	}
	err := t.Heap.Scan(func(rid storage.RID, row []types.Value) error {
		idx.Tree.Insert(row[ci], rid)
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	t.Indexes = append(t.Indexes, idx)
	t.mu.Unlock()
	return idx, nil
}

// CreateXADTIndex builds the path + keyword fragment index over one XADT
// column, backfilling existing rows in heap order. Inserts maintain it
// from then on; a row that fails to index invalidates it (the planner
// then falls back to scans) rather than failing the load.
func (c *Catalog) CreateXADTIndex(table, column string) (*xindex.FragmentIndex, error) {
	t := c.Table(table)
	if t == nil {
		return nil, fmt.Errorf("catalog: no table %s", table)
	}
	ci := t.Schema.ColIndex(column)
	if ci < 0 {
		return nil, fmt.Errorf("catalog: table %s has no column %s", table, column)
	}
	if t.Schema.Columns[ci].Type != types.KindXADT {
		return nil, fmt.Errorf("catalog: column %s.%s is not an XADT column", table, column)
	}
	if t.FragIndexOn(column) != nil {
		return nil, fmt.Errorf("catalog: XADT index on %s.%s already exists", table, column)
	}
	fi := xindex.NewFragmentIndex(table, column, ci)
	err := t.Heap.Scan(func(rid storage.RID, row []types.Value) error {
		fi.AddRow(rid, row[ci])
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	t.FragIndexes = append(t.FragIndexes, fi)
	t.mu.Unlock()
	return fi, nil
}

// RunStats recomputes optimizer statistics for one table — the analogue
// of DB2's runstats command. One heap scan collects, per column: a
// distinct count (exact below statsExactDistinct, HLL sketch above), the
// null fraction, an equi-depth histogram over a stride-sampled subset of
// int/string values, and — for XADT columns — element-name frequencies
// from the sampled fragments. The stride is fixed from the pre-scan row
// count, so identical heaps always produce identical statistics.
func (c *Catalog) RunStats(table string) error {
	t := c.Table(table)
	if t == nil {
		return fmt.Errorf("catalog: no table %s", table)
	}
	ncols := len(t.Schema.Columns)
	counters := make([]*distinctCounter, ncols)
	nulls := make([]int, ncols)
	samples := make([][]types.Value, ncols)
	pathFreqs := make([]map[string]int, ncols)
	for i := range counters {
		counters[i] = newDistinctCounter()
		if t.Schema.Columns[i].Type == types.KindXADT {
			pathFreqs[i] = map[string]int{}
		}
	}
	stride := t.Heap.Rows() / statsMaxSample
	if stride < 1 {
		stride = 1
	}
	rows := 0
	err := t.Heap.Scan(func(_ storage.RID, row []types.Value) error {
		sampled := rows%stride == 0
		rows++
		for i, v := range row {
			if v.IsNull() {
				nulls[i]++
				continue
			}
			counters[i].add(types.Hash(v))
			if !sampled {
				continue
			}
			switch v.Kind() {
			case types.KindInt, types.KindString:
				samples[i] = append(samples[i], v)
			case types.KindXADT:
				countElementNames(v, pathFreqs[i])
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	stats := Stats{
		Rows: rows, Pages: t.Heap.DataPages(),
		Distinct: map[string]int{}, Cols: map[string]ColStats{}, Valid: true,
	}
	for i, col := range t.Schema.Columns {
		cs := ColStats{Distinct: counters[i].estimate(), Sketch: counters[i].regs}
		if rows > 0 {
			cs.NullFrac = float64(nulls[i]) / float64(rows)
		}
		cs.Hist = buildHistogram(col.Type, samples[i], rows-nulls[i])
		if len(pathFreqs[i]) > 0 {
			// Scale sampled occurrence counts back to the full table.
			scaled := make(map[string]int, len(pathFreqs[i]))
			for name, n := range pathFreqs[i] {
				scaled[name] = n * stride
			}
			cs.PathFreq = capPathFreq(scaled)
		}
		stats.Distinct[col.Name] = cs.Distinct
		stats.Cols[col.Name] = cs
	}
	t.mu.Lock()
	stats.modsAt = t.mods
	t.Stats = stats
	t.mu.Unlock()
	return nil
}

// InvalidateStats marks every table's statistics invalid, as if the
// store had been freshly loaded without a RunStats. The differential
// harness uses it for its stats-off cells; RunStats restores them.
func (c *Catalog) InvalidateStats() {
	for _, name := range c.TableNames() {
		t := c.Table(name)
		t.mu.Lock()
		t.Stats.Valid = false
		t.mu.Unlock()
	}
}

// MaybeRefreshStats reruns RunStats when the table's statistics are
// valid but stale past DefaultStaleRatio. It is a no-op on MVCC
// catalogs (a rescan there must be wrapped in an exclusive transaction
// by the caller) and on tables never analyzed (opting into statistics
// stays explicit via RunStats).
func (c *Catalog) MaybeRefreshStats(table string) error {
	c.mu.RLock()
	mgr := c.mgr
	c.mu.RUnlock()
	if mgr != nil {
		return nil
	}
	t := c.Table(table)
	if t == nil {
		return fmt.Errorf("catalog: no table %s", table)
	}
	s := t.StatsSnapshot()
	if !s.Valid || s.StaleRatio() <= DefaultStaleRatio {
		return nil
	}
	return c.RunStats(table)
}

// RunStatsAll runs statistics over every table.
func (c *Catalog) RunStatsAll() error {
	for _, name := range c.TableNames() {
		if err := c.RunStats(name); err != nil {
			return err
		}
	}
	return nil
}

// TotalDataBytes sums table heap footprints.
func (c *Catalog) TotalDataBytes() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var n int64
	for _, t := range c.tables {
		n += t.DataBytes()
	}
	return n
}

// TotalIndexBytes sums index footprints.
func (c *Catalog) TotalIndexBytes() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var n int64
	for _, t := range c.tables {
		n += t.IndexBytes()
	}
	return n
}

// Describe renders the catalog for diagnostics: tables, columns, indexes,
// row counts, sorted by table name.
func (c *Catalog) Describe() string {
	names := c.TableNames()
	sort.Strings(names)
	out := ""
	for _, name := range names {
		t := c.Table(name)
		out += fmt.Sprintf("%s: %d rows, %d cols, %d indexes, %d data bytes\n",
			name, t.Rows(), len(t.Schema.Columns), len(t.Indexes), t.DataBytes())
	}
	return out
}
