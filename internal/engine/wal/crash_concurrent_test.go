package wal_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/difftest"
	"repro/internal/engine"
	"repro/internal/engine/storage"
	"repro/internal/shred"
	"repro/internal/xmltree"
)

// The concurrent crash matrix kills an MVCC store at every mutating
// filesystem operation of a multi-transaction interleaving: sessions A
// and B record ops concurrently and commit in A-then-B order, a direct
// autocommit op and a remove+add transaction follow, and session C stays
// in flight — it records an insert but never commits, so no trace of it
// may survive any crash. Each committed transaction is exactly one WAL
// batch, so the recovered batch count identifies the committed prefix of
// the transaction timeline, and recovery must reproduce the twin store
// that applied exactly that prefix.

// mutator is the store-level mutation vocabulary a transaction effect
// uses; *core.Store satisfies it directly (autocommit), sessionStore
// routes it through one snapshot session.
type mutator interface {
	Exec(stmt string) (int64, error)
	AddDocuments(docs []*xmltree.Document) ([]int64, error)
	RemoveDocument(docID int64) error
	SpliceFragment(table, column string, id int64, fragTexts []string) error
}

// concurrentTxn is one committed transaction of the timeline, expressed
// as its serial-equivalent effect so the same list can drive both the
// session timeline and the unlogged twin.
type concurrentTxn func(mutator) error

// concurrentTxns returns the committed transactions in commit order.
func concurrentTxns(cfg crashConfig, docs []*xmltree.Document) []concurrentTxn {
	addOne := func(i int) concurrentTxn {
		return func(st mutator) error {
			_, err := st.AddDocuments(docs[i : i+1])
			return err
		}
	}
	exec := func(stmt string) concurrentTxn {
		return func(st mutator) error {
			_, err := st.Exec(stmt)
			return err
		}
	}
	txnA := func(st mutator) error {
		if _, err := st.Exec(`UPDATE play SET play_title = 'renamed' WHERE playID = 1`); err != nil {
			return err
		}
		if cfg.alg == core.XORator {
			return st.SpliceFragment("speech", "speech_line", 2,
				[]string{"<LINE>spliced concurrently</LINE>"})
		}
		return nil
	}
	txnB := func(st mutator) error {
		if _, err := st.Exec(`DELETE FROM speech WHERE speechID = 1`); err != nil {
			return err
		}
		_, err := st.Exec(`INSERT INTO play (playID, play_title) VALUES (-1, 'synthetic')`)
		return err
	}
	txnRemoveAdd := func(st mutator) error {
		if err := st.RemoveDocument(1); err != nil {
			return err
		}
		_, err := st.AddDocuments(docs[2:3])
		return err
	}
	return []concurrentTxn{
		addOne(0),
		addOne(1),
		txnA,
		txnB,
		txnRemoveAdd,
		exec(`UPDATE act SET act_title = 'Act Redux' WHERE actID >= 1 AND actID <= 2`),
	}
}

// inSession wraps a transaction's effect in one snapshot session, so its
// statements record against a frozen view and commit as one WAL batch.
func inSession(st *core.Store, fn concurrentTxn) error {
	s, err := st.NewSession()
	if err != nil {
		return err
	}
	if err := fn(&sessionStore{s: s}); err != nil {
		s.Rollback()
		return err
	}
	return s.Commit()
}

// sessionStore adapts a Session to the mutator vocabulary.
type sessionStore struct {
	s *core.Session
}

func (w *sessionStore) Exec(stmt string) (int64, error) { return w.s.Exec(stmt) }
func (w *sessionStore) AddDocuments(docs []*xmltree.Document) ([]int64, error) {
	return nil, w.s.AddDocuments(docs)
}
func (w *sessionStore) RemoveDocument(id int64) error { return w.s.RemoveDocument(id) }
func (w *sessionStore) SpliceFragment(table, col string, id int64, frags []string) error {
	return w.s.SpliceFragment(table, col, id, frags)
}

// runConcurrentTimeline executes the interleaved session workload on
// vfs. Sessions A and B are open simultaneously with their ops recorded
// interleaved; session C records an insert and is still uncommitted when
// the store closes (or the injected crash hits).
func runConcurrentTimeline(vfs storage.VFS, cfg crashConfig, docs []*xmltree.Document) error {
	format := cfg.format
	st, err := core.NewStore(corpus.ShakespeareDTD, core.Config{
		Algorithm:          cfg.alg,
		DisableXADTHeaders: cfg.legacy,
		ForceFormat:        &format,
		Engine:             engine.Config{MVCC: true, WALDir: "wal", WALSync: cfg.sync, VFS: vfs},
	})
	if err != nil {
		return err
	}
	txns := concurrentTxns(cfg, docs)

	// Transactions 1 and 2: single-doc loads, each its own session.
	if err := inSession(st, txns[0]); err != nil {
		return err
	}
	if err := inSession(st, txns[1]); err != nil {
		return err
	}

	// Transactions 3 and 4 interleave: both sessions (plus the in-flight
	// C) are open at once; ops record against their own snapshots before
	// either commits. A commits first, then a checkpoint runs while B
	// and C are still open, then B commits.
	sa, err := st.NewSession()
	if err != nil {
		return err
	}
	sb, err := st.NewSession()
	if err != nil {
		return err
	}
	sc, err := st.NewSession()
	if err != nil {
		return err
	}
	wa := &sessionStore{s: sa}
	wb := &sessionStore{s: sb}
	if _, err := sc.Exec(`INSERT INTO play (playID, play_title) VALUES (-99, 'ghost')`); err != nil {
		return err
	}
	if err := txns[2](wa); err != nil {
		sa.Rollback()
		return err
	}
	if err := txns[3](wb); err != nil {
		sb.Rollback()
		return err
	}
	if err := sa.Commit(); err != nil {
		return err
	}
	if err := st.Checkpoint(); err != nil {
		return err
	}
	if err := sb.Commit(); err != nil {
		return err
	}

	// Transaction 5: remove + add in one session. Transaction 6: a
	// direct autocommit statement. Session C never commits.
	if err := inSession(st, txns[4]); err != nil {
		return err
	}
	if err := txns[5](st); err != nil {
		return err
	}
	return st.Close()
}

func TestCrashMatrixConcurrent(t *testing.T) {
	docs := crashDocs(t)
	for _, cfg := range crashConfigs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			t.Parallel()
			txns := concurrentTxns(cfg, docs)

			counter := &storage.FaultVFS{Inner: storage.NewMemVFS()}
			if err := runConcurrentTimeline(counter, cfg, docs); err != nil {
				t.Fatalf("fault-free timeline: %v", err)
			}
			kinds := counter.OpKinds()
			firstCheckpoint := 0
			for i, k := range kinds {
				if k == "rename" {
					firstCheckpoint = i + 1
					break
				}
			}
			if firstCheckpoint == 0 {
				t.Fatal("timeline performed no checkpoint rename")
			}

			// twin(n) applied the first n committed transactions, in
			// commit order, on a plain unlogged single-user store.
			twins := map[int]*core.Store{}
			twin := func(n int) *core.Store {
				if tw, ok := twins[n]; ok {
					return tw
				}
				format := cfg.format
				tw, err := core.NewStore(corpus.ShakespeareDTD, core.Config{
					Algorithm:          cfg.alg,
					DisableXADTHeaders: cfg.legacy,
					ForceFormat:        &format,
				})
				if err != nil {
					t.Fatalf("twin store: %v", err)
				}
				if n == 0 {
					if err := shred.EnsureTables(tw.DB, tw.Schema); err != nil {
						t.Fatalf("twin tables: %v", err)
					}
				}
				for i := 0; i < n; i++ {
					if err := txns[i](tw); err != nil {
						t.Fatalf("twin txn %d: %v", i, err)
					}
				}
				twins[n] = tw
				return tw
			}

			points := 0
			for op := 1; op <= len(kinds); op++ {
				variants := []bool{false}
				if kinds[op-1] == "write" {
					variants = append(variants, true)
				}
				for _, torn := range variants {
					name := fmt.Sprintf("op%03d-%s", op, kinds[op-1])
					if torn {
						name += "-torn"
					}
					points++

					mem := storage.NewMemVFS()
					fv := &storage.FaultVFS{Inner: mem, FailAtOp: op, Torn: torn}
					err := runConcurrentTimeline(fv, cfg, docs)
					if err == nil {
						t.Fatalf("%s: timeline survived its injected fault", name)
					}
					if !errors.Is(err, storage.ErrCrashed) {
						t.Fatalf("%s: timeline failed outside the fault: %v", name, err)
					}

					format := cfg.format
					rec, err := core.OpenRecovered(core.Config{
						ForceFormat: &format,
						Engine:      engine.Config{MVCC: true, WALDir: "wal", WALSync: cfg.sync, VFS: mem},
					})
					if err != nil {
						if errors.Is(err, core.ErrNoCheckpoint) && op <= firstCheckpoint {
							continue
						}
						t.Fatalf("%s: recovery failed: %v", name, err)
					}
					committed := int(rec.CommittedBatches())
					if committed > len(txns) {
						t.Fatalf("%s: recovered %d batches from %d transactions", name, committed, len(txns))
					}
					// The in-flight transaction must have vanished: it
					// never reached the WAL.
					res, err := rec.Query(`SELECT COUNT(*) FROM play WHERE playID = -99`)
					if err != nil {
						t.Fatalf("%s: querying recovered store: %v", name, err)
					}
					if res.Rows[0][0].Int() != 0 {
						t.Fatalf("%s: in-flight transaction survived the crash", name)
					}
					if err := difftest.CompareStores(rec, twin(committed)); err != nil {
						t.Fatalf("%s: recovered store differs from %d-txn twin: %v", name, committed, err)
					}

					// Resume the uncommitted suffix directly and land in
					// the never-crashed state.
					for i := committed; i < len(txns); i++ {
						if err := txns[i](rec); err != nil {
							t.Fatalf("%s: resuming txn %d after recovery: %v", name, i, err)
						}
					}
					if err := difftest.CompareStores(rec, twin(len(txns))); err != nil {
						t.Fatalf("%s: resumed store differs from full twin: %v", name, err)
					}
					if err := rec.Close(); err != nil {
						t.Fatalf("%s: closing recovered store: %v", name, err)
					}
				}
			}
			t.Logf("%s: %d crash points over %d operations recovered cleanly", cfg.name, points, len(kinds))
		})
	}
}
