package wal

import (
	"errors"
	"io"
	"path"
	"strings"
	"testing"

	"repro/internal/engine/storage"
)

// buildLog writes a representative log through the real Writer: three
// committed batches carrying a format frame, inline inserts, and an
// overflow blob, plus one abandoned (uncommitted) insert at the tail.
func buildLog(tb testing.TB) []byte {
	tb.Helper()
	vfs := storage.NewMemVFS()
	w, err := Create(vfs, "wal", SyncOff)
	if err != nil {
		tb.Fatal(err)
	}
	b := w.Begin()
	b.SetFormat(1)
	if err := b.Insert("play", row(1, "Hamlet", nil)); err != nil {
		tb.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		tb.Fatal(err)
	}
	b = w.Begin()
	if err := b.Insert("line", row(2, strings.Repeat("o", storage.MaxInlineRecord+8))); err != nil {
		tb.Fatal(err)
	}
	if err := b.Insert("line", row(3, "short")); err != nil {
		tb.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		tb.Fatal(err)
	}
	b = w.Begin()
	if err := b.Commit(); err != nil { // an empty batch is legal
		tb.Fatal(err)
	}
	b = w.Begin()
	if err := b.Insert("play", row(4, "uncommitted")); err != nil {
		tb.Fatal(err)
	}
	_ = b // abandoned: never committed
	f, err := vfs.Open(path.Join("wal", FileName))
	if err != nil {
		tb.Fatal(err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzWALReplay pins the recovery scanner's contract on arbitrary bytes:
// it never panics, and it either returns a clean committed prefix or a
// typed *CorruptError — nothing in between. When it accepts a prefix,
// rescanning exactly that prefix must reproduce the same batches with no
// torn tail, which is what makes Resume's truncate-at-ValidEnd sound.
func FuzzWALReplay(f *testing.F) {
	valid := buildLog(f)
	f.Add(valid)
	for _, n := range []int{0, 3, len(Magic), len(Magic) + 1, len(Magic) + 7, len(valid) / 2, len(valid) - 3} {
		if n <= len(valid) {
			f.Add(valid[:n])
		}
	}
	flipped := append([]byte(nil), valid...)
	flipped[len(Magic)+2] ^= 0x40
	f.Add(flipped)
	f.Add([]byte("XORWAL99"))
	f.Add(append([]byte(Magic), 0x04, 0x01, 0x00, 0xde, 0xad, 0xbe, 0xef))

	f.Fuzz(func(t *testing.T, data []byte) {
		tail, err := ScanBytes(data)
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("error is not a *CorruptError: %v", err)
			}
			if ce.Offset < 0 || ce.Offset > int64(len(data)) {
				t.Fatalf("corrupt offset %d outside data of %d bytes", ce.Offset, len(data))
			}
			return
		}
		if tail.ValidEnd < 0 || tail.ValidEnd > int64(len(data)) {
			t.Fatalf("ValidEnd %d outside data of %d bytes", tail.ValidEnd, len(data))
		}
		var last uint64
		for _, b := range tail.Batches {
			if b.Seq <= last {
				t.Fatalf("batch sequences not increasing: %d after %d", b.Seq, last)
			}
			last = b.Seq
		}
		if last != tail.LastSeq {
			t.Fatalf("LastSeq %d does not match final batch %d", tail.LastSeq, last)
		}

		// Prefix stability: the accepted prefix must rescan to the same
		// committed state with nothing torn.
		again, err := ScanBytes(data[:tail.ValidEnd])
		if err != nil {
			t.Fatalf("accepted prefix fails rescan: %v", err)
		}
		if again.Torn {
			t.Fatal("accepted prefix rescans as torn")
		}
		if len(again.Batches) != len(tail.Batches) || again.LastSeq != tail.LastSeq {
			t.Fatalf("prefix rescan: %d batches last %d, want %d batches last %d",
				len(again.Batches), again.LastSeq, len(tail.Batches), tail.LastSeq)
		}
		if again.ValidEnd != tail.ValidEnd {
			t.Fatalf("prefix rescan ValidEnd %d, want %d", again.ValidEnd, tail.ValidEnd)
		}
	})
}

// buildMutationLog writes a log exercising the full mutation frame
// vocabulary through the real Writer: committed batches carrying
// deletes, in-place and moving updates (including an overflow payload),
// a whole-document removal, and an abandoned mutation batch at the
// tail.
func buildMutationLog(tb testing.TB) []byte {
	tb.Helper()
	vfs := storage.NewMemVFS()
	w, err := Create(vfs, "wal", SyncOff)
	if err != nil {
		tb.Fatal(err)
	}
	b := w.Begin()
	b.SetFormat(1)
	if err := b.Insert("play", row(1, "Hamlet", nil)); err != nil {
		tb.Fatal(err)
	}
	if err := b.Insert("speech", row(1, "to be or not to be")); err != nil {
		tb.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		tb.Fatal(err)
	}
	b = w.Begin()
	if err := b.Update("play", storage.RID{Page: 0, Slot: 0}, row(1, "The Tragedy of Hamlet", nil)); err != nil {
		tb.Fatal(err)
	}
	if err := b.Update("speech", storage.RID{Page: 0, Slot: 0},
		row(1, strings.Repeat("words ", storage.MaxInlineRecord/5))); err != nil {
		tb.Fatal(err)
	}
	if err := b.Delete("speech", storage.RID{Page: 3, Slot: 9}); err != nil {
		tb.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		tb.Fatal(err)
	}
	b = w.Begin()
	if err := b.RemoveDoc(1); err != nil {
		tb.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		tb.Fatal(err)
	}
	b = w.Begin()
	if err := b.Delete("play", storage.RID{Page: 0, Slot: 0}); err != nil {
		tb.Fatal(err)
	}
	if err := b.RemoveDoc(7); err != nil {
		tb.Fatal(err)
	}
	_ = b // abandoned: never committed
	f, err := vfs.Open(path.Join("wal", FileName))
	if err != nil {
		tb.Fatal(err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzMutationReplay pins the same recovery-scanner contract as
// FuzzWALReplay on logs built from the mutation frame vocabulary
// (delete, update, docremove): arbitrary corruption of such a log must
// never panic and never surface an uncommitted mutation suffix — the
// scanner returns a clean committed prefix or a typed *CorruptError,
// and the accepted prefix is rescan-stable.
func FuzzMutationReplay(f *testing.F) {
	valid := buildMutationLog(f)
	f.Add(valid)
	for _, n := range []int{0, len(Magic), len(Magic) + 5, len(valid) / 3, len(valid) / 2, len(valid) - 1} {
		if n <= len(valid) {
			f.Add(valid[:n])
		}
	}
	for _, off := range []int{len(Magic) + 1, len(valid) / 2, len(valid) - 2} {
		flipped := append([]byte(nil), valid...)
		flipped[off] ^= 0x10
		f.Add(flipped)
	}
	// A lone delete frame with no commit, and a docremove with a huge
	// declared length.
	f.Add(append([]byte(Magic), 0x05, 0x03, 'x', 'y', 'z'))
	f.Add(append([]byte(Magic), 0x07, 0xff, 0xff, 0xff, 0x7f))

	f.Fuzz(func(t *testing.T, data []byte) {
		tail, err := ScanBytes(data)
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("error is not a *CorruptError: %v", err)
			}
			if ce.Offset < 0 || ce.Offset > int64(len(data)) {
				t.Fatalf("corrupt offset %d outside data of %d bytes", ce.Offset, len(data))
			}
			return
		}
		if tail.ValidEnd < 0 || tail.ValidEnd > int64(len(data)) {
			t.Fatalf("ValidEnd %d outside data of %d bytes", tail.ValidEnd, len(data))
		}
		var last uint64
		for _, b := range tail.Batches {
			if b.Seq <= last {
				t.Fatalf("batch sequences not increasing: %d after %d", b.Seq, last)
			}
			last = b.Seq
			for _, op := range b.Ops {
				switch op.Kind {
				case OpInsert, OpDelete, OpUpdate, OpDocRemove:
				default:
					t.Fatalf("committed batch %d carries unknown op kind %v", b.Seq, op.Kind)
				}
			}
		}
		if last != tail.LastSeq {
			t.Fatalf("LastSeq %d does not match final batch %d", tail.LastSeq, last)
		}
		again, err := ScanBytes(data[:tail.ValidEnd])
		if err != nil {
			t.Fatalf("accepted prefix fails rescan: %v", err)
		}
		if again.Torn {
			t.Fatal("accepted prefix rescans as torn")
		}
		if len(again.Batches) != len(tail.Batches) || again.LastSeq != tail.LastSeq {
			t.Fatalf("prefix rescan: %d batches last %d, want %d batches last %d",
				len(again.Batches), again.LastSeq, len(tail.Batches), tail.LastSeq)
		}
		if again.ValidEnd != tail.ValidEnd {
			t.Fatalf("prefix rescan ValidEnd %d, want %d", again.ValidEnd, tail.ValidEnd)
		}
	})
}
