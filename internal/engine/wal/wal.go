// Package wal implements the engine's record-level write-ahead log: a
// single append-only file of length- and CRC32-framed entries, delimited
// into batches by commit frames. One batch corresponds to one loaded
// document, so recovery replays exactly the committed-prefix of the load.
// All file I/O goes through storage.VFS, which lets tests drive every
// crash point deterministically with a fault-injecting filesystem.
//
// On-disk layout (pinned by the golden-format test):
//
//	file  := magic frame*
//	magic := "XORWAL01"
//	frame := type(1) | payloadLen(uvarint) | payload | crc32(4, LE)
//
// The CRC is IEEE CRC-32 over the type byte, the length bytes, and the
// payload. Frame types:
//
//	0x01 insert : uvarint(len(table)) | table | record  (record ≤ storage.MaxInlineRecord)
//	0x02 blob   : same payload, record > storage.MaxInlineRecord (heap overflow blob)
//	0x03 format : 1 byte XADT storage format (logged when the loader fixes it)
//	0x04 commit : uvarint(batch sequence number, strictly increasing)
//	0x05 delete : uvarint(len(table)) | table | uvarint(page) | uvarint(slot)
//	0x06 update : uvarint(len(table)) | table | uvarint(page) | uvarint(slot) | record (any size)
//	0x07 docrm  : uvarint(document id) — logical doc removal, re-executed on replay
//
// Delete and update frames address rows by RID, which is sound because
// snapshots persist raw page images and free lists verbatim and every
// heap placement decision is a pure function of the op sequence: replay
// onto the checkpoint state lands each op on exactly the row it was
// logged against.
//
// A batch is durable iff its commit frame is intact; replay applies only
// complete batches and treats a torn or CRC-corrupt tail as the crash
// point, truncating it on resume.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"path"

	"repro/internal/engine/storage"
	"repro/internal/engine/types"
)

// Magic identifies a WAL file and pins its format version.
const Magic = "XORWAL01"

// Frame types.
const (
	frameInsert    byte = 0x01
	frameBlob      byte = 0x02
	frameFormat    byte = 0x03
	frameCommit    byte = 0x04
	frameDelete    byte = 0x05
	frameUpdate    byte = 0x06
	frameDocRemove byte = 0x07
)

// FileName is the log file inside the WAL directory.
const FileName = "wal.log"

// SyncPolicy selects when the log is fsynced.
type SyncPolicy int

const (
	// SyncAlways syncs at every batch commit — every committed document
	// survives an OS crash. The zero value, because it is the safest.
	SyncAlways SyncPolicy = iota
	// SyncBatch group-commits: the log is synced every GroupSize commits
	// and on Close/Reset, trading a bounded window of committed batches
	// for load throughput.
	SyncBatch
	// SyncOff never syncs explicitly; durability degrades to whatever
	// the OS flushes, but process-crash recovery is unaffected.
	SyncOff
)

// String renders the policy as its config spelling.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncBatch:
		return "batch"
	case SyncOff:
		return "off"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy parses "always", "batch", or "off".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "batch":
		return SyncBatch, nil
	case "off":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always, batch, or off)", s)
}

// DefaultGroupSize is the commits-per-sync interval of SyncBatch.
const DefaultGroupSize = 8

// Writer appends batches to the log. It is not safe for concurrent use;
// the engine's load path is single-threaded by design.
type Writer struct {
	vfs    storage.VFS
	f      storage.File
	policy SyncPolicy
	// GroupSize is the commits-per-sync interval under SyncBatch;
	// defaults to DefaultGroupSize.
	GroupSize int

	seq       uint64 // last committed batch sequence number
	sinceSync int
	broken    error // first write/sync failure; the writer refuses further work
}

// Create initializes a fresh log in dir (creating the directory),
// truncating any existing log file.
func Create(vfs storage.VFS, dir string, policy SyncPolicy) (*Writer, error) {
	if err := vfs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: creating dir: %w", err)
	}
	f, err := vfs.Create(path.Join(dir, FileName))
	if err != nil {
		return nil, fmt.Errorf("wal: creating log: %w", err)
	}
	w := &Writer{vfs: vfs, f: f, policy: policy, GroupSize: DefaultGroupSize}
	if _, err := f.Write([]byte(Magic)); err != nil {
		return nil, fmt.Errorf("wal: writing magic: %w", err)
	}
	if err := w.maybeSync(true); err != nil {
		return nil, err
	}
	return w, nil
}

// Resume reopens the log for appending after recovery: the file is
// truncated at validEnd (discarding any torn tail the scan stopped at)
// and the writer continues from sequence number lastSeq. If the log is
// missing or its magic itself was torn, a fresh log is created.
func Resume(vfs storage.VFS, dir string, policy SyncPolicy, lastSeq uint64, validEnd int64) (*Writer, error) {
	if validEnd < int64(len(Magic)) {
		w, err := Create(vfs, dir, policy)
		if err != nil {
			return nil, err
		}
		w.seq = lastSeq
		return w, nil
	}
	f, err := vfs.Open(path.Join(dir, FileName))
	if err != nil {
		return nil, fmt.Errorf("wal: reopening log: %w", err)
	}
	if err := f.Truncate(validEnd); err != nil {
		return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
	}
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		return nil, err
	}
	w := &Writer{vfs: vfs, f: f, policy: policy, GroupSize: DefaultGroupSize, seq: lastSeq}
	if err := w.maybeSync(true); err != nil {
		return nil, err
	}
	return w, nil
}

// LastCommitted returns the sequence number of the last committed batch
// (equivalently: the number of batches ever committed, since numbering is
// dense from 1 and survives checkpoints).
func (w *Writer) LastCommitted() uint64 { return w.seq }

// Reset truncates the log to empty after a checkpoint. The sequence
// counter is retained: post-checkpoint batches continue the numbering, so
// a stale log left by a crash between checkpoint publication and Reset is
// skipped by the snapshot's last-batch watermark instead of replaying
// twice.
func (w *Writer) Reset() error {
	if w.broken != nil {
		return w.broken
	}
	if err := w.f.Truncate(0); err != nil {
		return w.fail(fmt.Errorf("wal: reset truncate: %w", err))
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return w.fail(err)
	}
	if _, err := w.f.Write([]byte(Magic)); err != nil {
		return w.fail(fmt.Errorf("wal: reset magic: %w", err))
	}
	w.sinceSync = 0
	return w.maybeSync(true)
}

// Close syncs pending commits and closes the log file.
func (w *Writer) Close() error {
	if w.broken != nil {
		w.f.Close()
		return w.broken
	}
	if err := w.maybeSync(true); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

func (w *Writer) fail(err error) error {
	if w.broken == nil {
		w.broken = err
	}
	return err
}

// maybeSync syncs according to the policy; force overrides the group
// interval (used at magic writes, resets, and Close).
func (w *Writer) maybeSync(force bool) error {
	if w.policy == SyncOff {
		return nil
	}
	if !force && w.policy == SyncBatch {
		w.sinceSync++
		gs := w.GroupSize
		if gs <= 0 {
			gs = DefaultGroupSize
		}
		if w.sinceSync < gs {
			return nil
		}
	}
	w.sinceSync = 0
	if err := w.f.Sync(); err != nil {
		return w.fail(fmt.Errorf("wal: sync: %w", err))
	}
	return nil
}

// Batch accumulates the frames of one document load. Frames are buffered
// in memory and reach the file only at Commit, so an abandoned batch
// leaves no trace in the log.
type Batch struct {
	w      *Writer
	frames [][]byte
}

// Begin starts a new batch.
func (w *Writer) Begin() *Batch { return &Batch{w: w} }

// SetFormat logs the XADT storage-format decision as part of this batch.
// The loader calls it on the first batch after sampling fixes the format,
// so recovery restores the same representation for resumed loads.
func (b *Batch) SetFormat(format byte) {
	b.frames = append(b.frames, appendFrame(nil, frameFormat, []byte{format}))
}

// Insert logs one row insert. Rows whose encoded record exceeds the
// inline page capacity are framed as overflow blobs, mirroring the heap
// file's inline/overflow split.
func (b *Batch) Insert(table string, row []types.Value) error {
	rec := storage.EncodeRecord(row)
	payload := make([]byte, 0, binary.MaxVarintLen64+len(table)+len(rec))
	payload = binary.AppendUvarint(payload, uint64(len(table)))
	payload = append(payload, table...)
	payload = append(payload, rec...)
	typ := frameInsert
	if len(rec) > storage.MaxInlineRecord {
		typ = frameBlob
	}
	b.frames = append(b.frames, appendFrame(nil, typ, payload))
	return nil
}

// Delete logs one row deletion, addressed by the row's RID at apply
// time.
func (b *Batch) Delete(table string, rid storage.RID) error {
	payload := make([]byte, 0, binary.MaxVarintLen64+len(table)+2*binary.MaxVarintLen32)
	payload = binary.AppendUvarint(payload, uint64(len(table)))
	payload = append(payload, table...)
	payload = binary.AppendUvarint(payload, uint64(uint32(rid.Page)))
	payload = binary.AppendUvarint(payload, uint64(uint32(rid.Slot)))
	b.frames = append(b.frames, appendFrame(nil, frameDelete, payload))
	return nil
}

// Update logs one row rewrite: the row's pre-update RID and its full new
// image. Replay re-executes the rewrite, reproducing any row movement.
func (b *Batch) Update(table string, rid storage.RID, row []types.Value) error {
	rec := storage.EncodeRecord(row)
	payload := make([]byte, 0, binary.MaxVarintLen64+len(table)+2*binary.MaxVarintLen32+len(rec))
	payload = binary.AppendUvarint(payload, uint64(len(table)))
	payload = append(payload, table...)
	payload = binary.AppendUvarint(payload, uint64(uint32(rid.Page)))
	payload = binary.AppendUvarint(payload, uint64(uint32(rid.Slot)))
	payload = append(payload, rec...)
	b.frames = append(b.frames, appendFrame(nil, frameUpdate, payload))
	return nil
}

// RemoveDoc logs a whole-document removal as a single logical redo
// record; replay re-executes the deterministic removal procedure.
func (b *Batch) RemoveDoc(docID int64) error {
	b.frames = append(b.frames, appendFrame(nil, frameDocRemove, binary.AppendUvarint(nil, uint64(docID))))
	return nil
}

// Commit writes the batch's frames followed by its commit frame and syncs
// per the writer's policy. After a successful Commit the batch's rows are
// replayed by recovery; before it, they are invisible.
func (b *Batch) Commit() error {
	w := b.w
	if w.broken != nil {
		return w.broken
	}
	seq := w.seq + 1
	commit := binary.AppendUvarint(nil, seq)
	frames := append(b.frames, appendFrame(nil, frameCommit, commit))
	for _, fr := range frames {
		if _, err := w.f.Write(fr); err != nil {
			return w.fail(fmt.Errorf("wal: commit write: %w", err))
		}
	}
	if err := w.maybeSync(false); err != nil {
		return err
	}
	w.seq = seq
	b.frames = nil
	return nil
}

// appendFrame encodes one frame onto dst.
func appendFrame(dst []byte, typ byte, payload []byte) []byte {
	start := len(dst)
	dst = append(dst, typ)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	sum := crc32.ChecksumIEEE(dst[start:])
	return binary.LittleEndian.AppendUint32(dst, sum)
}
