package wal_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/difftest"
	"repro/internal/engine"
	"repro/internal/engine/storage"
	"repro/internal/engine/wal"
	"repro/internal/shred"
	"repro/internal/xadt"
	"repro/internal/xmltree"
)

// The crash matrix runs one fixed load-and-checkpoint timeline per store
// configuration, first fault-free to enumerate every mutating filesystem
// operation, then once per operation with a crash injected there (plus a
// torn-write variant for write operations). After each simulated crash,
// OpenRecovered must yield exactly the committed-prefix store — compared
// byte-for-byte against an uninterrupted twin loaded with the same
// number of documents — and resuming the load from that prefix must
// reach the same state as a store that never crashed.

// crashConfig is one store configuration of the matrix: mapping
// algorithm × XADT header mode, with the sync policy and forced storage
// format varied alongside so all three policies and both formats get
// crash coverage.
type crashConfig struct {
	name   string
	alg    core.Algorithm
	legacy bool
	sync   wal.SyncPolicy
	format xadt.Format
}

var crashConfigs = []crashConfig{
	{"hybrid-always", core.Hybrid, false, wal.SyncAlways, xadt.Raw},
	{"xorator-batch", core.XORator, false, wal.SyncBatch, xadt.Compressed},
	{"xorator-legacy-off", core.XORator, true, wal.SyncOff, xadt.Raw},
}

// tinyPlay builds a minimal document conforming to the Shakespeare DTD.
// extraLine, when non-empty, is appended as one more LINE — the crash
// matrix passes an oversized text there so the timeline also covers
// overflow-blob WAL frames.
func tinyPlay(t *testing.T, i int, extraLine string) *xmltree.Document {
	t.Helper()
	var sb strings.Builder
	fmt.Fprintf(&sb, `<PLAY><TITLE>Play %d</TITLE><FM><P>note %d</P></FM>
<PERSONAE><TITLE>Cast</TITLE><PERSONA>ROMEO</PERSONA><PERSONA>SPEAKER%d</PERSONA></PERSONAE>
<SCNDESCR>Verona</SCNDESCR><PLAYSUBT>Subtitle %d</PLAYSUBT>
<ACT><TITLE>Act I</TITLE><SCENE><TITLE>Scene %d</TITLE>
<SPEECH><SPEAKER>ROMEO</SPEAKER><LINE>line one of play %d</LINE><LINE>line two</LINE></SPEECH>
<SPEECH><SPEAKER>SPEAKER%d</SPEAKER><LINE>reply in play %d</LINE>`, i, i, i, i, i, i, i, i)
	if extraLine != "" {
		fmt.Fprintf(&sb, "<LINE>%s</LINE>", extraLine)
	}
	sb.WriteString(`</SPEECH></SCENE></ACT></PLAY>`)
	doc, err := xmltree.Parse(sb.String())
	if err != nil {
		t.Fatalf("tiny play %d: %v", i, err)
	}
	return doc
}

// crashDocs is the timeline's document set: five tiny plays, the fourth
// carrying a text larger than MaxInlineRecord so its tuples take the
// overflow path in both the heap and the WAL.
func crashDocs(t *testing.T) []*xmltree.Document {
	t.Helper()
	docs := make([]*xmltree.Document, 5)
	for i := range docs {
		extra := ""
		if i == 3 {
			extra = strings.Repeat("verbose soliloquy ", storage.MaxInlineRecord/16)
		}
		docs[i] = tinyPlay(t, i, extra)
	}
	return docs
}

// runTimeline executes the workload under test on vfs: create a
// WAL-backed store, load in three calls, checkpoint mid-way, load the
// rest, close. Crash points are injected by handing it a FaultVFS.
func runTimeline(vfs storage.VFS, cfg crashConfig, docs []*xmltree.Document) error {
	format := cfg.format
	st, err := core.NewStore(corpus.ShakespeareDTD, core.Config{
		Algorithm:          cfg.alg,
		DisableXADTHeaders: cfg.legacy,
		ForceFormat:        &format,
		Engine:             engine.Config{WALDir: "wal", WALSync: cfg.sync, VFS: vfs},
	})
	if err != nil {
		return err
	}
	if err := st.Load(docs[:2]); err != nil {
		return err
	}
	if err := st.Load(docs[2:3]); err != nil {
		return err
	}
	if err := st.Checkpoint(); err != nil {
		return err
	}
	if err := st.Load(docs[3:]); err != nil {
		return err
	}
	return st.Close()
}

func TestCrashMatrix(t *testing.T) {
	docs := crashDocs(t)
	for _, cfg := range crashConfigs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			t.Parallel()

			// Pass 1: run fault-free over a counting VFS to learn the
			// full schedule of mutating operations, and remember where
			// the first checkpoint is published (its rename) — crashes
			// before that point legitimately leave nothing to recover.
			counter := &storage.FaultVFS{Inner: storage.NewMemVFS()}
			if err := runTimeline(counter, cfg, docs); err != nil {
				t.Fatalf("fault-free timeline: %v", err)
			}
			kinds := counter.OpKinds()
			firstCheckpoint := 0
			for i, k := range kinds {
				if k == "rename" {
					firstCheckpoint = i + 1
					break
				}
			}
			if firstCheckpoint == 0 {
				t.Fatal("timeline performed no checkpoint rename")
			}

			// Uninterrupted twins, one per possible committed prefix,
			// built lazily: the n-document twin is what recovery must
			// reproduce when n batches had committed at the crash.
			twins := map[int]*core.Store{}
			twin := func(n int) *core.Store {
				if tw, ok := twins[n]; ok {
					return tw
				}
				format := cfg.format
				tw, err := core.NewStore(corpus.ShakespeareDTD, core.Config{
					Algorithm:          cfg.alg,
					DisableXADTHeaders: cfg.legacy,
					ForceFormat:        &format,
				})
				if err != nil {
					t.Fatalf("twin store: %v", err)
				}
				if n > 0 {
					if err := tw.Load(docs[:n]); err != nil {
						t.Fatalf("twin load: %v", err)
					}
				} else if err := shred.EnsureTables(tw.DB, tw.Schema); err != nil {
					// Recovery guarantees the mapped tables exist even when
					// no batch committed; give the empty twin the same shape.
					t.Fatalf("twin tables: %v", err)
				}
				twins[n] = tw
				return tw
			}

			// Pass 2: one run per crash point; write operations also get
			// a torn variant where half the failing buffer persists.
			points := 0
			for op := 1; op <= len(kinds); op++ {
				variants := []bool{false}
				if kinds[op-1] == "write" {
					variants = append(variants, true)
				}
				for _, torn := range variants {
					name := fmt.Sprintf("op%03d-%s", op, kinds[op-1])
					if torn {
						name += "-torn"
					}
					points++

					mem := storage.NewMemVFS()
					fv := &storage.FaultVFS{Inner: mem, FailAtOp: op, Torn: torn}
					err := runTimeline(fv, cfg, docs)
					if err == nil {
						t.Fatalf("%s: timeline survived its injected fault", name)
					}
					if !errors.Is(err, storage.ErrCrashed) {
						t.Fatalf("%s: timeline failed outside the fault: %v", name, err)
					}

					// Recover on the bare MemVFS: the crashed process is
					// gone, the bytes it managed to write remain.
					format := cfg.format
					rec, err := core.OpenRecovered(core.Config{
						ForceFormat: &format,
						Engine:      engine.Config{WALDir: "wal", WALSync: cfg.sync, VFS: mem},
					})
					if err != nil {
						if errors.Is(err, core.ErrNoCheckpoint) && op <= firstCheckpoint {
							continue // crashed before store creation finished
						}
						t.Fatalf("%s: recovery failed: %v", name, err)
					}
					committed := int(rec.CommittedBatches())
					if committed > len(docs) {
						t.Fatalf("%s: recovered %d batches from %d documents", name, committed, len(docs))
					}
					if err := difftest.CompareStores(rec, twin(committed)); err != nil {
						t.Fatalf("%s: recovered store differs from %d-document twin: %v", name, committed, err)
					}

					// The recovered store must also be able to finish the
					// job: loading the uncommitted suffix lands it in the
					// same state as a store that never crashed.
					if err := rec.Load(docs[committed:]); err != nil {
						t.Fatalf("%s: resuming load after recovery: %v", name, err)
					}
					if err := difftest.CompareStores(rec, twin(len(docs))); err != nil {
						t.Fatalf("%s: resumed store differs from full twin: %v", name, err)
					}
					if err := rec.Close(); err != nil {
						t.Fatalf("%s: closing recovered store: %v", name, err)
					}
				}
			}
			t.Logf("%s: %d crash points over %d operations recovered cleanly", cfg.name, points, len(kinds))
		})
	}
}

// TestRecoveredStoreAnswersQueries spot-checks that a store rebuilt from
// checkpoint + WAL replay is queryable and index-buildable, not just
// byte-identical: the standard indexes build on top of the replayed
// heaps and a selection over them matches the uninterrupted twin.
func TestRecoveredStoreAnswersQueries(t *testing.T) {
	docs := crashDocs(t)
	mem := storage.NewMemVFS()
	cfg := crashConfigs[1] // xorator, headered
	counter := &storage.FaultVFS{Inner: storage.NewMemVFS()}
	if err := runTimeline(counter, cfg, docs); err != nil {
		t.Fatal(err)
	}
	// Crash three quarters of the way through the schedule, mid-load
	// after the checkpoint.
	fv := &storage.FaultVFS{Inner: mem, FailAtOp: counter.OpCount() * 3 / 4}
	if err := runTimeline(fv, cfg, docs); !errors.Is(err, storage.ErrCrashed) {
		t.Fatalf("timeline err = %v, want simulated crash", err)
	}
	rec, err := core.OpenRecovered(core.Config{
		Engine: engine.Config{WALDir: "wal", WALSync: cfg.sync, VFS: mem},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.CreateDefaultIndexes(); err != nil {
		t.Fatal(err)
	}
	if err := rec.RunStats(); err != nil {
		t.Fatal(err)
	}
	res, err := rec.Query(`SELECT play_title FROM play`)
	if err != nil {
		t.Fatal(err)
	}
	committed := int(rec.CommittedBatches())
	if committed < 3 {
		t.Fatalf("crash point landed before the checkpoint (%d batches)", committed)
	}
	if len(res.Rows) != committed {
		t.Fatalf("plays = %d, want one per committed document (%d)", len(res.Rows), committed)
	}
}

// mutationOps builds the mutation-timeline operation list: document
// adds, SQL DML of every kind, a fragment splice (XORator only — the
// Hybrid mapping has no XADT columns), and a whole-document removal.
// Every operation commits exactly one WAL batch, so the number of
// committed batches a crash leaves behind identifies the exact prefix
// an uninterrupted twin must replay to match the recovered store.
func mutationOps(t *testing.T, alg core.Algorithm, docs []*xmltree.Document) []func(*core.Store) error {
	t.Helper()
	add := func(i int) func(*core.Store) error {
		return func(st *core.Store) error {
			_, err := st.AddDocuments(docs[i : i+1])
			return err
		}
	}
	exec := func(stmt string) func(*core.Store) error {
		return func(st *core.Store) error {
			_, err := st.Exec(stmt)
			return err
		}
	}
	ops := []func(*core.Store) error{
		add(0),
		add(1),
		// Play IDs and speech IDs are the loader's 1..N sequence, so the
		// same statements pick the same victims on every run and twin.
		exec(`UPDATE play SET play_title = 'renamed' WHERE playID = 2`),
		exec(`DELETE FROM speech WHERE speechID = 1`),
		exec(`INSERT INTO play (playID, play_title) VALUES (-1, 'synthetic')`),
	}
	if alg == core.XORator {
		ops = append(ops, func(st *core.Store) error {
			return st.SpliceFragment("speech", "speech_line", 2,
				[]string{"<LINE>spliced before the crash</LINE>", "<LINE>and another</LINE>"})
		})
	}
	ops = append(ops,
		func(st *core.Store) error { return st.RemoveDocument(1) },
		add(2),
		exec(`UPDATE act SET act_title = 'Act Redux' WHERE actID >= 1 AND actID <= 2`),
	)
	return ops
}

// runMutationTimeline applies the op list to a WAL-backed store on vfs,
// checkpointing after the fourth operation so crash points land on both
// sides of a snapshot boundary.
func runMutationTimeline(vfs storage.VFS, cfg crashConfig, ops []func(*core.Store) error) error {
	format := cfg.format
	st, err := core.NewStore(corpus.ShakespeareDTD, core.Config{
		Algorithm:          cfg.alg,
		DisableXADTHeaders: cfg.legacy,
		ForceFormat:        &format,
		Engine:             engine.Config{WALDir: "wal", WALSync: cfg.sync, VFS: vfs},
	})
	if err != nil {
		return err
	}
	for i, op := range ops {
		if err := op(st); err != nil {
			return err
		}
		if i == 3 {
			if err := st.Checkpoint(); err != nil {
				return err
			}
		}
	}
	return st.Close()
}

// TestCrashMatrixMutation is the crash matrix over a mutation history:
// the timeline mixes document adds, UPDATE/DELETE/INSERT, a fragment
// splice, and a document removal, and is killed at every mutating
// filesystem operation (plus torn-write variants). Recovery must
// reproduce the committed-prefix twin byte-for-byte — including the
// delete/update/docremove redo frames — and resuming the remaining
// operations must land in the never-crashed state.
func TestCrashMatrixMutation(t *testing.T) {
	docs := crashDocs(t)
	for _, cfg := range crashConfigs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			t.Parallel()
			ops := mutationOps(t, cfg.alg, docs)

			counter := &storage.FaultVFS{Inner: storage.NewMemVFS()}
			if err := runMutationTimeline(counter, cfg, ops); err != nil {
				t.Fatalf("fault-free timeline: %v", err)
			}
			kinds := counter.OpKinds()
			firstCheckpoint := 0
			for i, k := range kinds {
				if k == "rename" {
					firstCheckpoint = i + 1
					break
				}
			}
			if firstCheckpoint == 0 {
				t.Fatal("timeline performed no checkpoint rename")
			}

			// twin(n) is an unlogged store that applied the first n
			// operations — what recovery must reproduce when n batches
			// had committed at the crash.
			twins := map[int]*core.Store{}
			twin := func(n int) *core.Store {
				if tw, ok := twins[n]; ok {
					return tw
				}
				format := cfg.format
				tw, err := core.NewStore(corpus.ShakespeareDTD, core.Config{
					Algorithm:          cfg.alg,
					DisableXADTHeaders: cfg.legacy,
					ForceFormat:        &format,
				})
				if err != nil {
					t.Fatalf("twin store: %v", err)
				}
				if n == 0 {
					if err := shred.EnsureTables(tw.DB, tw.Schema); err != nil {
						t.Fatalf("twin tables: %v", err)
					}
				}
				for i := 0; i < n; i++ {
					if err := ops[i](tw); err != nil {
						t.Fatalf("twin op %d: %v", i, err)
					}
				}
				twins[n] = tw
				return tw
			}

			points := 0
			for op := 1; op <= len(kinds); op++ {
				variants := []bool{false}
				if kinds[op-1] == "write" {
					variants = append(variants, true)
				}
				for _, torn := range variants {
					name := fmt.Sprintf("op%03d-%s", op, kinds[op-1])
					if torn {
						name += "-torn"
					}
					points++

					mem := storage.NewMemVFS()
					fv := &storage.FaultVFS{Inner: mem, FailAtOp: op, Torn: torn}
					err := runMutationTimeline(fv, cfg, ops)
					if err == nil {
						t.Fatalf("%s: timeline survived its injected fault", name)
					}
					if !errors.Is(err, storage.ErrCrashed) {
						t.Fatalf("%s: timeline failed outside the fault: %v", name, err)
					}

					format := cfg.format
					rec, err := core.OpenRecovered(core.Config{
						ForceFormat: &format,
						Engine:      engine.Config{WALDir: "wal", WALSync: cfg.sync, VFS: mem},
					})
					if err != nil {
						if errors.Is(err, core.ErrNoCheckpoint) && op <= firstCheckpoint {
							continue
						}
						t.Fatalf("%s: recovery failed: %v", name, err)
					}
					committed := int(rec.CommittedBatches())
					if committed > len(ops) {
						t.Fatalf("%s: recovered %d batches from %d operations", name, committed, len(ops))
					}
					if err := difftest.CompareStores(rec, twin(committed)); err != nil {
						t.Fatalf("%s: recovered store differs from %d-op twin: %v", name, committed, err)
					}

					for i := committed; i < len(ops); i++ {
						if err := ops[i](rec); err != nil {
							t.Fatalf("%s: resuming op %d after recovery: %v", name, i, err)
						}
					}
					if err := difftest.CompareStores(rec, twin(len(ops))); err != nil {
						t.Fatalf("%s: resumed store differs from full twin: %v", name, err)
					}
					if err := rec.Close(); err != nil {
						t.Fatalf("%s: closing recovered store: %v", name, err)
					}
				}
			}
			t.Logf("%s: %d crash points over %d operations recovered cleanly", cfg.name, points, len(kinds))
		})
	}
}
