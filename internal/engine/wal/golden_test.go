package wal

import (
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"path"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/engine/storage"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// TestWALFormatGolden pins the on-disk WAL byte layout — magic, frame
// type tags, uvarint payload lengths, record encoding, and trailing
// CRC32s — for a fixed two-batch log. Recovery of logs written by older
// builds depends on this layout, so any diff against
// testdata/wal.golden is a compatibility break; rerun with -update only
// for a deliberate format revision (and bump the magic when you do).
func TestWALFormatGolden(t *testing.T) {
	vfs := storage.NewMemVFS()
	w, err := Create(vfs, "wal", SyncOff)
	if err != nil {
		t.Fatal(err)
	}
	b := w.Begin()
	b.SetFormat(1)
	if err := b.Insert("play", row(1, "Hamlet", nil)); err != nil {
		t.Fatal(err)
	}
	if err := b.Insert("act", row(2, 1)); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	b = w.Begin()
	if err := b.Insert("play", row(3, "Othello", nil)); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	f, err := vfs.Open(path.Join("wal", FileName))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	sb.WriteString("WAL log image: format frame + 2 inserts + commit, insert + commit\n\n")
	sb.WriteString(hex.Dump(data))
	sb.WriteString("\nframes:\n")
	tail, err := ScanBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range tail.Batches {
		fmt.Fprintf(&sb, "batch seq=%d format=%v records=%d\n", batch.Seq, fmtPtr(batch.Format), len(batch.Records))
		for _, rec := range batch.Records {
			fmt.Fprintf(&sb, "  insert table=%s cols=%d overflow=%v\n", rec.Table, len(rec.Row), rec.Overflow)
		}
	}
	got := sb.String()

	goldenPath := filepath.Join("testdata", "wal.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden file: %v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Fatalf("WAL byte layout differs from %s — this breaks recovery of existing logs.\nIf intentional, rerun with -update.\n--- got ---\n%s\n--- want ---\n%s",
			goldenPath, got, want)
	}
}

func fmtPtr(b *byte) string {
	if b == nil {
		return "none"
	}
	return fmt.Sprintf("%d", *b)
}
