package wal

import (
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"path"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/engine/storage"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// TestWALFormatGolden pins the on-disk WAL byte layout — magic, frame
// type tags, uvarint payload lengths, record encoding, and trailing
// CRC32s — for a fixed two-batch log. Recovery of logs written by older
// builds depends on this layout, so any diff against
// testdata/wal.golden is a compatibility break; rerun with -update only
// for a deliberate format revision (and bump the magic when you do).
func TestWALFormatGolden(t *testing.T) {
	vfs := storage.NewMemVFS()
	w, err := Create(vfs, "wal", SyncOff)
	if err != nil {
		t.Fatal(err)
	}
	b := w.Begin()
	b.SetFormat(1)
	if err := b.Insert("play", row(1, "Hamlet", nil)); err != nil {
		t.Fatal(err)
	}
	if err := b.Insert("act", row(2, 1)); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	b = w.Begin()
	if err := b.Insert("play", row(3, "Othello", nil)); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	// Mutation frames (delete/update/docremove), added with DML support;
	// their byte layout is pinned here too.
	b = w.Begin()
	if err := b.Update("play", storage.RID{Page: 0, Slot: 1}, row(3, "Macbeth", nil)); err != nil {
		t.Fatal(err)
	}
	if err := b.Delete("act", storage.RID{Page: 2, Slot: 7}); err != nil {
		t.Fatal(err)
	}
	if err := b.RemoveDoc(42); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	f, err := vfs.Open(path.Join("wal", FileName))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	sb.WriteString("WAL log image: format frame + 2 inserts + commit, insert + commit, update + delete + docremove + commit\n\n")
	sb.WriteString(hex.Dump(data))
	sb.WriteString("\nframes:\n")
	tail, err := ScanBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range tail.Batches {
		fmt.Fprintf(&sb, "batch seq=%d format=%v ops=%d\n", batch.Seq, fmtPtr(batch.Format), len(batch.Ops))
		for _, op := range batch.Ops {
			switch op.Kind {
			case OpInsert:
				fmt.Fprintf(&sb, "  insert table=%s cols=%d overflow=%v\n", op.Table, len(op.Row), op.Overflow)
			case OpDelete:
				fmt.Fprintf(&sb, "  delete table=%s rid=%d/%d\n", op.Table, op.RID.Page, op.RID.Slot)
			case OpUpdate:
				fmt.Fprintf(&sb, "  update table=%s rid=%d/%d cols=%d\n", op.Table, op.RID.Page, op.RID.Slot, len(op.Row))
			case OpDocRemove:
				fmt.Fprintf(&sb, "  docremove id=%d\n", op.DocID)
			}
		}
	}
	got := sb.String()

	goldenPath := filepath.Join("testdata", "wal.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden file: %v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Fatalf("WAL byte layout differs from %s — this breaks recovery of existing logs.\nIf intentional, rerun with -update.\n--- got ---\n%s\n--- want ---\n%s",
			goldenPath, got, want)
	}
}

func fmtPtr(b *byte) string {
	if b == nil {
		return "none"
	}
	return fmt.Sprintf("%d", *b)
}
