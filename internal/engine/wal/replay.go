package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"path"

	"repro/internal/engine/storage"
	"repro/internal/engine/types"
)

// ScannedRecord is one logged row insert.
type ScannedRecord struct {
	Table string
	Row   []types.Value
	// Overflow reports that the row was framed as an overflow blob
	// (its encoded record exceeds the inline page capacity).
	Overflow bool
}

// ScannedBatch is one committed batch of the log.
type ScannedBatch struct {
	// Seq is the batch's commit sequence number.
	Seq uint64
	// Format, when non-nil, is the XADT storage format the batch logged.
	Format *byte
	// Records are the batch's inserts in log order.
	Records []ScannedRecord
}

// Tail is the result of scanning a log: the committed batches and the
// position of the end of the last one, where Resume truncates.
type Tail struct {
	Batches []ScannedBatch
	// ValidEnd is the file offset just past the last committed batch
	// (or past the magic when none committed; 0 when even the magic is
	// missing or torn). Everything after it is an uncommitted or torn
	// tail that recovery discards.
	ValidEnd int64
	// LastSeq is the sequence number of the last committed batch, 0 if
	// none.
	LastSeq uint64
	// Torn reports that scanning stopped at a truncated or CRC-corrupt
	// frame (the expected shape of a crash) rather than the clean end of
	// the file.
	Torn bool
}

// CorruptError reports structural damage the scanner cannot attribute to
// a torn tail: a CRC-valid frame whose content violates the format (bad
// record encoding, non-monotonic commit sequence, unknown frame type), or
// a wrong file magic. Callers distinguish it from clean prefix recovery
// with errors.As.
type CorruptError struct {
	Offset int64
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: corrupt log at offset %d: %s", e.Offset, e.Reason)
}

// maxFramePayload bounds a frame payload; anything larger is treated as
// damage. The largest legitimate frame is an overflow blob, which the
// shredder caps well under this.
const maxFramePayload = 1 << 28

// Scan reads the log in dir and returns its committed batches. A missing
// log file yields an empty tail. Scanning never panics on arbitrary
// bytes: damage either terminates the committed prefix (torn tail) or
// surfaces as a *CorruptError.
func Scan(vfs storage.VFS, dir string) (*Tail, error) {
	f, err := vfs.Open(path.Join(dir, FileName))
	if err != nil {
		if storage.IsNotExist(err) {
			return &Tail{}, nil
		}
		return nil, fmt.Errorf("wal: opening log: %w", err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, fmt.Errorf("wal: reading log: %w", err)
	}
	return ScanBytes(data)
}

// ScanBytes scans an in-memory log image; see Scan.
func ScanBytes(data []byte) (*Tail, error) {
	t := &Tail{}
	if len(data) < len(Magic) {
		// The magic itself was torn; there is nothing to keep.
		t.Torn = len(data) > 0
		return t, nil
	}
	if !bytes.Equal(data[:len(Magic)], []byte(Magic)) {
		return nil, &CorruptError{Offset: 0, Reason: "bad magic"}
	}
	pos := int64(len(Magic))
	t.ValidEnd = pos
	var pending []ScannedRecord
	var pendingFormat *byte
	for int(pos) < len(data) {
		frameStart := pos
		typ, payload, next, ok := readFrame(data, pos)
		if !ok {
			t.Torn = true
			return t, nil
		}
		switch typ {
		case frameInsert, frameBlob:
			rec, err := parseInsert(payload, typ == frameBlob)
			if err != nil {
				return nil, &CorruptError{Offset: frameStart, Reason: err.Error()}
			}
			pending = append(pending, rec)
		case frameFormat:
			if len(payload) != 1 {
				return nil, &CorruptError{Offset: frameStart, Reason: "format frame payload must be 1 byte"}
			}
			b := payload[0]
			pendingFormat = &b
		case frameCommit:
			seq, n := binary.Uvarint(payload)
			if n <= 0 || n != len(payload) {
				return nil, &CorruptError{Offset: frameStart, Reason: "malformed commit sequence"}
			}
			if seq <= t.LastSeq {
				return nil, &CorruptError{Offset: frameStart,
					Reason: fmt.Sprintf("commit sequence %d not after %d", seq, t.LastSeq)}
			}
			t.Batches = append(t.Batches, ScannedBatch{Seq: seq, Format: pendingFormat, Records: pending})
			t.LastSeq = seq
			pending, pendingFormat = nil, nil
			t.ValidEnd = next
		default:
			return nil, &CorruptError{Offset: frameStart, Reason: fmt.Sprintf("unknown frame type 0x%02x", typ)}
		}
		pos = next
	}
	return t, nil
}

// readFrame decodes the frame at pos; ok is false when the frame is
// truncated or its CRC does not match (a torn tail).
func readFrame(data []byte, pos int64) (typ byte, payload []byte, next int64, ok bool) {
	p := int(pos)
	if p >= len(data) {
		return 0, nil, 0, false
	}
	typ = data[p]
	plen, n := binary.Uvarint(data[p+1:])
	if n <= 0 || plen > maxFramePayload {
		return 0, nil, 0, false
	}
	payloadStart := p + 1 + n
	end := payloadStart + int(plen) + 4
	if end > len(data) || end < payloadStart {
		return 0, nil, 0, false
	}
	body := data[p : payloadStart+int(plen)]
	want := binary.LittleEndian.Uint32(data[payloadStart+int(plen) : end])
	if crc32.ChecksumIEEE(body) != want {
		return 0, nil, 0, false
	}
	return typ, data[payloadStart : payloadStart+int(plen)], int64(end), true
}

// parseInsert decodes an insert/blob payload and cross-checks the framing
// against the record's inline/overflow size class.
func parseInsert(payload []byte, blob bool) (ScannedRecord, error) {
	tlen, n := binary.Uvarint(payload)
	if n <= 0 || tlen > 1<<16 || int(tlen) > len(payload)-n {
		return ScannedRecord{}, fmt.Errorf("malformed table name length")
	}
	table := string(payload[n : n+int(tlen)])
	rec := payload[n+int(tlen):]
	if blob != (len(rec) > storage.MaxInlineRecord) {
		return ScannedRecord{}, fmt.Errorf("frame size class does not match record size %d", len(rec))
	}
	row, err := storage.DecodeRecord(rec)
	if err != nil {
		return ScannedRecord{}, fmt.Errorf("record does not decode: %v", err)
	}
	return ScannedRecord{Table: table, Row: row, Overflow: blob}, nil
}
