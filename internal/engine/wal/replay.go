package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"path"

	"repro/internal/engine/storage"
	"repro/internal/engine/types"
)

// OpKind classifies one logged mutation.
type OpKind byte

// Mutation kinds, in frame-tag order.
const (
	OpInsert OpKind = iota
	OpDelete
	OpUpdate
	OpDocRemove
)

// ScannedOp is one logged mutation. Which fields are meaningful depends
// on Kind: inserts carry Table/Row/Overflow, deletes Table/RID, updates
// Table/RID/Row, doc removals DocID only.
type ScannedOp struct {
	Kind  OpKind
	Table string
	Row   []types.Value
	// Overflow reports that an inserted row was framed as an overflow
	// blob (its encoded record exceeds the inline page capacity).
	Overflow bool
	// RID addresses the target row of a delete or update.
	RID storage.RID
	// DocID identifies the document of a doc-removal op.
	DocID int64
}

// ScannedBatch is one committed batch of the log.
type ScannedBatch struct {
	// Seq is the batch's commit sequence number.
	Seq uint64
	// Format, when non-nil, is the XADT storage format the batch logged.
	Format *byte
	// Ops are the batch's mutations in log order; replay must apply them
	// in exactly this order to reproduce the logged heap layout.
	Ops []ScannedOp
}

// Tail is the result of scanning a log: the committed batches and the
// position of the end of the last one, where Resume truncates.
type Tail struct {
	Batches []ScannedBatch
	// ValidEnd is the file offset just past the last committed batch
	// (or past the magic when none committed; 0 when even the magic is
	// missing or torn). Everything after it is an uncommitted or torn
	// tail that recovery discards.
	ValidEnd int64
	// LastSeq is the sequence number of the last committed batch, 0 if
	// none.
	LastSeq uint64
	// Torn reports that scanning stopped at a truncated or CRC-corrupt
	// frame (the expected shape of a crash) rather than the clean end of
	// the file.
	Torn bool
}

// CorruptError reports structural damage the scanner cannot attribute to
// a torn tail: a CRC-valid frame whose content violates the format (bad
// record encoding, non-monotonic commit sequence, unknown frame type), or
// a wrong file magic. Callers distinguish it from clean prefix recovery
// with errors.As.
type CorruptError struct {
	Offset int64
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: corrupt log at offset %d: %s", e.Offset, e.Reason)
}

// maxFramePayload bounds a frame payload; anything larger is treated as
// damage. The largest legitimate frame is an overflow blob, which the
// shredder caps well under this.
const maxFramePayload = 1 << 28

// Scan reads the log in dir and returns its committed batches. A missing
// log file yields an empty tail. Scanning never panics on arbitrary
// bytes: damage either terminates the committed prefix (torn tail) or
// surfaces as a *CorruptError.
func Scan(vfs storage.VFS, dir string) (*Tail, error) {
	f, err := vfs.Open(path.Join(dir, FileName))
	if err != nil {
		if storage.IsNotExist(err) {
			return &Tail{}, nil
		}
		return nil, fmt.Errorf("wal: opening log: %w", err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, fmt.Errorf("wal: reading log: %w", err)
	}
	return ScanBytes(data)
}

// ScanBytes scans an in-memory log image; see Scan.
func ScanBytes(data []byte) (*Tail, error) {
	t := &Tail{}
	if len(data) < len(Magic) {
		// The magic itself was torn; there is nothing to keep.
		t.Torn = len(data) > 0
		return t, nil
	}
	if !bytes.Equal(data[:len(Magic)], []byte(Magic)) {
		return nil, &CorruptError{Offset: 0, Reason: "bad magic"}
	}
	pos := int64(len(Magic))
	t.ValidEnd = pos
	var pending []ScannedOp
	var pendingFormat *byte
	for int(pos) < len(data) {
		frameStart := pos
		typ, payload, next, ok := readFrame(data, pos)
		if !ok {
			t.Torn = true
			return t, nil
		}
		switch typ {
		case frameInsert, frameBlob:
			rec, err := parseInsert(payload, typ == frameBlob)
			if err != nil {
				return nil, &CorruptError{Offset: frameStart, Reason: err.Error()}
			}
			pending = append(pending, rec)
		case frameDelete:
			op, err := parseDelete(payload)
			if err != nil {
				return nil, &CorruptError{Offset: frameStart, Reason: err.Error()}
			}
			pending = append(pending, op)
		case frameUpdate:
			op, err := parseUpdate(payload)
			if err != nil {
				return nil, &CorruptError{Offset: frameStart, Reason: err.Error()}
			}
			pending = append(pending, op)
		case frameDocRemove:
			docID, n := binary.Uvarint(payload)
			if n <= 0 || n != len(payload) || docID > 1<<62 {
				return nil, &CorruptError{Offset: frameStart, Reason: "malformed document id"}
			}
			pending = append(pending, ScannedOp{Kind: OpDocRemove, DocID: int64(docID)})
		case frameFormat:
			if len(payload) != 1 {
				return nil, &CorruptError{Offset: frameStart, Reason: "format frame payload must be 1 byte"}
			}
			b := payload[0]
			pendingFormat = &b
		case frameCommit:
			seq, n := binary.Uvarint(payload)
			if n <= 0 || n != len(payload) {
				return nil, &CorruptError{Offset: frameStart, Reason: "malformed commit sequence"}
			}
			if seq <= t.LastSeq {
				return nil, &CorruptError{Offset: frameStart,
					Reason: fmt.Sprintf("commit sequence %d not after %d", seq, t.LastSeq)}
			}
			t.Batches = append(t.Batches, ScannedBatch{Seq: seq, Format: pendingFormat, Ops: pending})
			t.LastSeq = seq
			pending, pendingFormat = nil, nil
			t.ValidEnd = next
		default:
			return nil, &CorruptError{Offset: frameStart, Reason: fmt.Sprintf("unknown frame type 0x%02x", typ)}
		}
		pos = next
	}
	return t, nil
}

// readFrame decodes the frame at pos; ok is false when the frame is
// truncated or its CRC does not match (a torn tail).
func readFrame(data []byte, pos int64) (typ byte, payload []byte, next int64, ok bool) {
	p := int(pos)
	if p >= len(data) {
		return 0, nil, 0, false
	}
	typ = data[p]
	plen, n := binary.Uvarint(data[p+1:])
	if n <= 0 || plen > maxFramePayload {
		return 0, nil, 0, false
	}
	payloadStart := p + 1 + n
	end := payloadStart + int(plen) + 4
	if end > len(data) || end < payloadStart {
		return 0, nil, 0, false
	}
	body := data[p : payloadStart+int(plen)]
	want := binary.LittleEndian.Uint32(data[payloadStart+int(plen) : end])
	if crc32.ChecksumIEEE(body) != want {
		return 0, nil, 0, false
	}
	return typ, data[payloadStart : payloadStart+int(plen)], int64(end), true
}

// parseTable decodes the leading uvarint-length table name shared by the
// row-addressed payloads, returning the name and the remaining bytes.
func parseTable(payload []byte) (string, []byte, error) {
	tlen, n := binary.Uvarint(payload)
	if n <= 0 || tlen > 1<<16 || int(tlen) > len(payload)-n {
		return "", nil, fmt.Errorf("malformed table name length")
	}
	return string(payload[n : n+int(tlen)]), payload[n+int(tlen):], nil
}

// parseRID decodes a page/slot pair, returning the RID and the remaining
// bytes.
func parseRID(rest []byte) (storage.RID, []byte, error) {
	page, n := binary.Uvarint(rest)
	if n <= 0 || page > 1<<31-1 {
		return storage.RID{}, nil, fmt.Errorf("malformed page number")
	}
	rest = rest[n:]
	slot, n := binary.Uvarint(rest)
	if n <= 0 || slot > 1<<31-1 {
		return storage.RID{}, nil, fmt.Errorf("malformed slot number")
	}
	return storage.RID{Page: int32(page), Slot: int32(slot)}, rest[n:], nil
}

// parseInsert decodes an insert/blob payload and cross-checks the framing
// against the record's inline/overflow size class.
func parseInsert(payload []byte, blob bool) (ScannedOp, error) {
	table, rec, err := parseTable(payload)
	if err != nil {
		return ScannedOp{}, err
	}
	if blob != (len(rec) > storage.MaxInlineRecord) {
		return ScannedOp{}, fmt.Errorf("frame size class does not match record size %d", len(rec))
	}
	row, err := storage.DecodeRecord(rec)
	if err != nil {
		return ScannedOp{}, fmt.Errorf("record does not decode: %v", err)
	}
	return ScannedOp{Kind: OpInsert, Table: table, Row: row, Overflow: blob}, nil
}

// parseDelete decodes a delete payload: table name plus target RID.
func parseDelete(payload []byte) (ScannedOp, error) {
	table, rest, err := parseTable(payload)
	if err != nil {
		return ScannedOp{}, err
	}
	rid, rest, err := parseRID(rest)
	if err != nil {
		return ScannedOp{}, err
	}
	if len(rest) != 0 {
		return ScannedOp{}, fmt.Errorf("trailing bytes after delete payload")
	}
	return ScannedOp{Kind: OpDelete, Table: table, RID: rid}, nil
}

// parseUpdate decodes an update payload: table name, target RID, and the
// row's full new image.
func parseUpdate(payload []byte) (ScannedOp, error) {
	table, rest, err := parseTable(payload)
	if err != nil {
		return ScannedOp{}, err
	}
	rid, rec, err := parseRID(rest)
	if err != nil {
		return ScannedOp{}, err
	}
	row, err := storage.DecodeRecord(rec)
	if err != nil {
		return ScannedOp{}, fmt.Errorf("update record does not decode: %v", err)
	}
	return ScannedOp{Kind: OpUpdate, Table: table, RID: rid, Row: row}, nil
}
