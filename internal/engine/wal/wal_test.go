package wal

import (
	"errors"
	"io"
	"path"
	"strings"
	"testing"

	"repro/internal/engine/storage"
	"repro/internal/engine/types"
)

func row(vals ...any) []types.Value {
	out := make([]types.Value, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case int:
			out[i] = types.NewInt(int64(x))
		case string:
			out[i] = types.NewString(x)
		case []byte:
			out[i] = types.NewXADT(x)
		case nil:
			out[i] = types.Null
		default:
			panic("unsupported test value")
		}
	}
	return out
}

func TestCommitRoundTrip(t *testing.T) {
	vfs := storage.NewMemVFS()
	w, err := Create(vfs, "wal", SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	b := w.Begin()
	b.SetFormat(1)
	if err := b.Insert("t1", row(1, "hello", nil)); err != nil {
		t.Fatal(err)
	}
	if err := b.Insert("t2", row(2, []byte("frag"))); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	b2 := w.Begin()
	if err := b2.Insert("t1", row(3, "world", nil)); err != nil {
		t.Fatal(err)
	}
	if err := b2.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := w.LastCommitted(); got != 2 {
		t.Fatalf("LastCommitted = %d, want 2", got)
	}

	tail, err := Scan(vfs, "wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(tail.Batches) != 2 || tail.Torn {
		t.Fatalf("batches=%d torn=%v, want 2 clean", len(tail.Batches), tail.Torn)
	}
	b0 := tail.Batches[0]
	if b0.Seq != 1 || b0.Format == nil || *b0.Format != 1 || len(b0.Ops) != 2 {
		t.Fatalf("batch 0 = %+v", b0)
	}
	if b0.Ops[0].Table != "t1" || b0.Ops[0].Row[1].Str() != "hello" {
		t.Fatalf("record 0 = %+v", b0.Ops[0])
	}
	if tail.Batches[1].Format != nil {
		t.Fatal("batch 1 should carry no format frame")
	}
	if tail.LastSeq != 2 {
		t.Fatalf("LastSeq = %d", tail.LastSeq)
	}
}

func TestOverflowBlobFraming(t *testing.T) {
	vfs := storage.NewMemVFS()
	w, err := Create(vfs, "wal", SyncOff)
	if err != nil {
		t.Fatal(err)
	}
	big := strings.Repeat("x", storage.MaxInlineRecord+100)
	b := w.Begin()
	if err := b.Insert("t", row(1, big)); err != nil {
		t.Fatal(err)
	}
	if err := b.Insert("t", row(2, "small")); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	tail, err := Scan(vfs, "wal")
	if err != nil {
		t.Fatal(err)
	}
	recs := tail.Batches[0].Ops
	if !recs[0].Overflow || recs[1].Overflow {
		t.Fatalf("overflow flags = %v %v, want true false", recs[0].Overflow, recs[1].Overflow)
	}
	if recs[0].Row[1].Str() != big {
		t.Fatal("blob payload did not round-trip")
	}
}

func TestUncommittedBatchInvisible(t *testing.T) {
	vfs := storage.NewMemVFS()
	w, err := Create(vfs, "wal", SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	b := w.Begin()
	if err := b.Insert("t", row(1)); err != nil {
		t.Fatal(err)
	}
	// Abandoned batch: never committed, so nothing must reach the log.
	tail, err := Scan(vfs, "wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(tail.Batches) != 0 {
		t.Fatalf("abandoned batch leaked %d batches", len(tail.Batches))
	}
}

func TestTornTailDroppedAndResumed(t *testing.T) {
	vfs := storage.NewMemVFS()
	w, err := Create(vfs, "wal", SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	b := w.Begin()
	if err := b.Insert("t", row(1, "committed")); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write: append garbage that is not a whole frame.
	f, err := vfs.Open(path.Join("wal", FileName))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{frameInsert, 0xff, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	tail, err := Scan(vfs, "wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(tail.Batches) != 1 || !tail.Torn {
		t.Fatalf("batches=%d torn=%v, want 1 torn", len(tail.Batches), tail.Torn)
	}

	// Resume truncates the tail and continues the numbering.
	w2, err := Resume(vfs, "wal", SyncAlways, tail.LastSeq, tail.ValidEnd)
	if err != nil {
		t.Fatal(err)
	}
	b2 := w2.Begin()
	if err := b2.Insert("t", row(2, "after")); err != nil {
		t.Fatal(err)
	}
	if err := b2.Commit(); err != nil {
		t.Fatal(err)
	}
	tail2, err := Scan(vfs, "wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(tail2.Batches) != 2 || tail2.Torn || tail2.LastSeq != 2 {
		t.Fatalf("after resume: batches=%d torn=%v last=%d", len(tail2.Batches), tail2.Torn, tail2.LastSeq)
	}
}

func TestResetKeepsSequence(t *testing.T) {
	vfs := storage.NewMemVFS()
	w, err := Create(vfs, "wal", SyncBatch)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		b := w.Begin()
		if err := b.Insert("t", row(i)); err != nil {
			t.Fatal(err)
		}
		if err := b.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	tail, err := Scan(vfs, "wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(tail.Batches) != 0 {
		t.Fatal("reset log should be empty")
	}
	b := w.Begin()
	if err := b.Insert("t", row(9)); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	tail, err = Scan(vfs, "wal")
	if err != nil {
		t.Fatal(err)
	}
	if tail.LastSeq != 4 {
		t.Fatalf("sequence after reset = %d, want 4", tail.LastSeq)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestScanCorruptions(t *testing.T) {
	build := func() []byte {
		vfs := storage.NewMemVFS()
		w, err := Create(vfs, "wal", SyncOff)
		if err != nil {
			t.Fatal(err)
		}
		b := w.Begin()
		if err := b.Insert("t", row(1, "abc")); err != nil {
			t.Fatal(err)
		}
		if err := b.Commit(); err != nil {
			t.Fatal(err)
		}
		f, err := vfs.Open(path.Join("wal", FileName))
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(f)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	t.Run("bad magic is corrupt", func(t *testing.T) {
		data := build()
		data[0] ^= 0xff
		_, err := ScanBytes(data)
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("err = %v, want CorruptError", err)
		}
	})
	t.Run("flipped payload byte is a torn tail", func(t *testing.T) {
		data := build()
		data[len(Magic)+3] ^= 0x01 // inside the first frame: CRC now fails
		tail, err := ScanBytes(data)
		if err != nil {
			t.Fatal(err)
		}
		if len(tail.Batches) != 0 || !tail.Torn {
			t.Fatalf("batches=%d torn=%v", len(tail.Batches), tail.Torn)
		}
	})
	t.Run("every truncation keeps a committed prefix", func(t *testing.T) {
		data := build()
		for cut := 0; cut < len(data); cut++ {
			tail, err := ScanBytes(data[:cut])
			if err != nil {
				var ce *CorruptError
				if !errors.As(err, &ce) {
					t.Fatalf("cut %d: %v", cut, err)
				}
				continue
			}
			if len(tail.Batches) > 1 {
				t.Fatalf("cut %d produced %d batches", cut, len(tail.Batches))
			}
		}
	})
	t.Run("magic-only log is clean and empty", func(t *testing.T) {
		tail, err := ScanBytes([]byte(Magic))
		if err != nil || len(tail.Batches) != 0 || tail.Torn {
			t.Fatalf("tail=%+v err=%v", tail, err)
		}
	})
}

func TestSyncPolicyParse(t *testing.T) {
	for _, tc := range []struct {
		s string
		p SyncPolicy
	}{{"always", SyncAlways}, {"batch", SyncBatch}, {"off", SyncOff}} {
		p, err := ParseSyncPolicy(tc.s)
		if err != nil || p != tc.p {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", tc.s, p, err)
		}
		if p.String() != tc.s {
			t.Fatalf("String() = %q, want %q", p.String(), tc.s)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("expected error for unknown policy")
	}
}
