package index

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/engine/storage"
	"repro/internal/engine/types"
	"repro/internal/testutil"
)

// refEntry mirrors one inserted pair for the sorted reference model.
type refEntry struct {
	key int64
	rid storage.RID
}

// collectRange drains AscendRange into a slice.
func collectRange(t *BTree, lo, hi types.Value) []refEntry {
	var out []refEntry
	t.AscendRange(lo, hi, func(k types.Value, rid storage.RID) bool {
		out = append(out, refEntry{key: k.Int(), rid: rid})
		return true
	})
	return out
}

// refRange filters and sorts the reference model for lo <= key <= hi.
// Only keys are ordered; RIDs of duplicate keys may come back in any
// insertion-dependent order, so comparisons sort ties by RID on both
// sides.
func refRange(ref []refEntry, lo, hi int64, useLo, useHi bool) []refEntry {
	var out []refEntry
	for _, e := range ref {
		if (useLo && e.key < lo) || (useHi && e.key > hi) {
			continue
		}
		out = append(out, e)
	}
	sortEntries(out)
	return out
}

func sortEntries(es []refEntry) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].key != es[j].key {
			return es[i].key < es[j].key
		}
		if es[i].rid.Page != es[j].rid.Page {
			return es[i].rid.Page < es[j].rid.Page
		}
		return es[i].rid.Slot < es[j].rid.Slot
	})
}

func assertSameEntries(t *testing.T, label string, got, want []refEntry) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d entries, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: entry %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// keysAscending asserts the scan emitted keys in non-decreasing order —
// the property a leaf-boundary bug in the chain would break.
func keysAscending(t *testing.T, label string, es []refEntry) {
	t.Helper()
	for i := 1; i < len(es); i++ {
		if es[i].key < es[i-1].key {
			t.Fatalf("%s: keys out of order at %d: %d after %d", label, i, es[i].key, es[i-1].key)
		}
	}
}

// TestBTreeSplitWithDuplicateKeys fills the tree with few distinct keys
// and many duplicates, forcing leaf and internal splits where equal keys
// straddle the split point, then checks every key's RID set and the full
// scan against the reference.
func TestBTreeSplitWithDuplicateKeys(t *testing.T) {
	seed := testutil.Seed(t, 42)
	rng := rand.New(rand.NewSource(seed))
	tr := New()
	var ref []refEntry
	const distinct = 7
	// ~300 duplicates per key: far beyond one leaf (order 128), so equal
	// keys cross multiple leaves and act as separator keys too.
	for i := 0; i < distinct*300; i++ {
		k := int64(rng.Intn(distinct))
		rid := storage.RID{Page: int32(i / 100), Slot: int32(i % 100)}
		tr.Insert(types.NewInt(k), rid)
		ref = append(ref, refEntry{key: k, rid: rid})
	}
	if tr.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(ref))
	}
	if tr.Height() < 2 {
		t.Fatalf("tree never split: height %d with %d entries", tr.Height(), tr.Len())
	}
	for k := int64(0); k < distinct; k++ {
		rids := tr.Lookup(types.NewInt(k))
		got := make([]refEntry, len(rids))
		for i, r := range rids {
			got[i] = refEntry{key: k, rid: r}
		}
		sortEntries(got)
		want := refRange(ref, k, k, true, true)
		assertSameEntries(t, fmt.Sprintf("Lookup(%d) [seed %d]", k, seed), got, want)
	}
	got := collectRange(tr, types.Null, types.Null)
	keysAscending(t, "full scan", got)
	sortEntries(got)
	assertSameEntries(t, "full scan", got, refRange(ref, 0, 0, false, false))
}

// TestBTreeRangeScanAcrossLeaves builds a tree several leaves wide and
// checks range scans whose bounds land inside, between, and outside
// leaves — including bounds that are not present as keys — against the
// sorted reference slice.
func TestBTreeRangeScanAcrossLeaves(t *testing.T) {
	seed := testutil.Seed(t, 7)
	rng := rand.New(rand.NewSource(seed))
	tr := New()
	var ref []refEntry
	// Even keys only, so odd range bounds fall between stored keys.
	for i := 0; i < 2000; i++ {
		k := int64(rng.Intn(1500)) * 2
		rid := storage.RID{Page: int32(i), Slot: int32(i % 7)}
		tr.Insert(types.NewInt(k), rid)
		ref = append(ref, refEntry{key: k, rid: rid})
	}
	if tr.Height() < 2 {
		t.Fatal("tree too small to cross leaf boundaries")
	}
	for trial := 0; trial < 200; trial++ {
		lo := int64(rng.Intn(3100)) - 50
		hi := lo + int64(rng.Intn(400))
		label := fmt.Sprintf("range [%d,%d] (seed %d)", lo, hi, seed)
		got := collectRange(tr, types.NewInt(lo), types.NewInt(hi))
		keysAscending(t, label, got)
		sortEntries(got)
		assertSameEntries(t, label, got, refRange(ref, lo, hi, true, true))
	}
	// Open-ended scans: Null bounds.
	got := collectRange(tr, types.NewInt(1000), types.Null)
	keysAscending(t, "open hi", got)
	sortEntries(got)
	assertSameEntries(t, "open hi", got, refRange(ref, 1000, 0, true, false))
	got = collectRange(tr, types.Null, types.NewInt(1000))
	keysAscending(t, "open lo", got)
	sortEntries(got)
	assertSameEntries(t, "open lo", got, refRange(ref, 0, 1000, false, true))
}

// TestBTreeReverseInsertionOrder inserts strictly descending keys — the
// worst case for leftmost-leaning splits — and checks the scan comes back
// fully sorted with every entry present.
func TestBTreeReverseInsertionOrder(t *testing.T) {
	tr := New()
	var ref []refEntry
	const n = 1000
	for i := 0; i < n; i++ {
		k := int64(n - i)
		rid := storage.RID{Page: int32(i), Slot: 0}
		tr.Insert(types.NewInt(k), rid)
		ref = append(ref, refEntry{key: k, rid: rid})
	}
	if tr.Height() < 2 {
		t.Fatal("tree never split under reverse insertion")
	}
	got := collectRange(tr, types.Null, types.Null)
	keysAscending(t, "reverse-order scan", got)
	sortEntries(got)
	assertSameEntries(t, "reverse-order scan", got, refRange(ref, 0, 0, false, false))

	// A range crossing several leaves of the reverse-built tree.
	got = collectRange(tr, types.NewInt(250), types.NewInt(750))
	keysAscending(t, "reverse range", got)
	sortEntries(got)
	assertSameEntries(t, "reverse range", got, refRange(ref, 250, 750, true, true))
}
