// Package index implements a B+tree over engine values, with duplicate
// keys and leaf-chained range scans. Indexes built by the experiment
// harness ("as suggested by the DB2 Index Wizard" in the paper) are
// instances of this tree; their reported sizes come from its node
// accounting.
package index

import (
	"sort"

	"repro/internal/engine/storage"
	"repro/internal/engine/types"
)

// order is the fan-out of the tree: the maximum number of keys per node.
// 128 keys of ~16-64 bytes keeps nodes near the 8 KiB page size.
const order = 128

// Entry is one key→RID pair.
type Entry struct {
	Key types.Value
	RID storage.RID
}

type node struct {
	leaf     bool
	keys     []types.Value
	children []*node       // internal nodes: len(keys)+1 children
	rids     []storage.RID // leaves: parallel to keys
	next     *node         // leaf chain
}

// BTree is a B+tree with duplicate keys.
type BTree struct {
	root  *node
	size  int
	nodes int
}

// New returns an empty tree.
func New() *BTree {
	leaf := &node{leaf: true}
	return &BTree{root: leaf, nodes: 1}
}

// Len returns the number of entries.
func (t *BTree) Len() int { return t.size }

// NodeCount returns the number of tree nodes, for size accounting.
func (t *BTree) NodeCount() int { return t.nodes }

// SizeBytes reports the index footprint, one page per node, matching how
// the experiments report index sizes.
func (t *BTree) SizeBytes() int64 { return int64(t.nodes) * storage.PageSize }

// Insert adds a key→RID pair; duplicate keys are kept.
func (t *BTree) Insert(key types.Value, rid storage.RID) {
	newChild, splitKey := t.insert(t.root, key, rid)
	if newChild != nil {
		root := &node{
			keys:     []types.Value{splitKey},
			children: []*node{t.root, newChild},
		}
		t.root = root
		t.nodes++
	}
	t.size++
}

// insert descends into n; on split it returns the new right sibling and
// its separator key.
func (t *BTree) insert(n *node, key types.Value, rid storage.RID) (*node, types.Value) {
	if n.leaf {
		// Place duplicates after existing equal keys: descent already
		// picks the rightmost leaf that can hold the key (upperBound), so
		// equal-key postings stay in insertion order and Lookup returns
		// them in the order rows entered the heap.
		i := upperBound(n.keys, key)
		n.keys = insertAt(n.keys, i, key)
		n.rids = insertRIDAt(n.rids, i, rid)
		if len(n.keys) <= order {
			return nil, types.Null
		}
		return t.splitLeaf(n)
	}
	ci := upperBound(n.keys, key)
	newChild, splitKey := t.insert(n.children[ci], key, rid)
	if newChild == nil {
		return nil, types.Null
	}
	n.keys = insertAt(n.keys, ci, splitKey)
	n.children = insertNodeAt(n.children, ci+1, newChild)
	if len(n.keys) <= order {
		return nil, types.Null
	}
	return t.splitInternal(n)
}

func (t *BTree) splitLeaf(n *node) (*node, types.Value) {
	mid := len(n.keys) / 2
	right := &node{
		leaf: true,
		keys: append([]types.Value(nil), n.keys[mid:]...),
		rids: append([]storage.RID(nil), n.rids[mid:]...),
		next: n.next,
	}
	n.keys = n.keys[:mid]
	n.rids = n.rids[:mid]
	n.next = right
	t.nodes++
	return right, right.keys[0]
}

func (t *BTree) splitInternal(n *node) (*node, types.Value) {
	mid := len(n.keys) / 2
	splitKey := n.keys[mid]
	right := &node{
		keys:     append([]types.Value(nil), n.keys[mid+1:]...),
		children: append([]*node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	t.nodes++
	return right, splitKey
}

// Lookup returns the RIDs of all entries equal to key, in heap order
// (sorted by page then slot). Under page reuse, insertion order can
// diverge from heap order, and every access path promises heap-order
// output — so the sort happens here rather than at insert time.
func (t *BTree) Lookup(key types.Value) []storage.RID {
	var out []storage.RID
	t.AscendRange(key, key, func(_ types.Value, rid storage.RID) bool {
		out = append(out, rid)
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Page != out[j].Page {
			return out[i].Page < out[j].Page
		}
		return out[i].Slot < out[j].Slot
	})
	return out
}

// Delete removes one entry matching key→rid; it reports whether a match
// was found. Removal is lazy: leaves may empty out but the tree is never
// rebalanced — range scans tolerate empty leaves, and mutation workloads
// here are small relative to loads.
func (t *BTree) Delete(key types.Value, rid storage.RID) bool {
	n := t.root
	for !n.leaf {
		// Leftmost child that can contain key; duplicates equal to a
		// separator live to its left.
		n = n.children[lowerBound(n.keys, key)]
	}
	i := lowerBound(n.keys, key)
	for n != nil {
		for ; i < len(n.keys); i++ {
			if types.Compare(n.keys[i], key) != 0 {
				return false
			}
			if n.rids[i] == rid {
				n.keys = append(n.keys[:i], n.keys[i+1:]...)
				n.rids = append(n.rids[:i], n.rids[i+1:]...)
				t.size--
				return true
			}
		}
		n = n.next
		i = 0
	}
	return false
}

// AscendRange visits entries with lo <= key <= hi in key order. The
// callback returns false to stop early. A Null lo starts at the smallest
// key; a Null hi ends at the largest.
func (t *BTree) AscendRange(lo, hi types.Value, fn func(types.Value, storage.RID) bool) {
	n := t.root
	for !n.leaf {
		ci := 0
		if !lo.IsNull() {
			// Descend into the leftmost child that can contain lo: with
			// duplicates, keys equal to a separator live to its left.
			ci = lowerBound(n.keys, lo)
		}
		n = n.children[ci]
	}
	i := 0
	if !lo.IsNull() {
		i = lowerBound(n.keys, lo)
	}
	for n != nil {
		for ; i < len(n.keys); i++ {
			if !hi.IsNull() && types.Compare(n.keys[i], hi) > 0 {
				return
			}
			if !fn(n.keys[i], n.rids[i]) {
				return
			}
		}
		n = n.next
		i = 0
	}
}

// Ascend visits all entries in key order.
func (t *BTree) Ascend(fn func(types.Value, storage.RID) bool) {
	t.AscendRange(types.Null, types.Null, fn)
}

// Height returns the tree height (1 for a lone leaf).
func (t *BTree) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		h++
	}
	return h
}

// lowerBound returns the first index i with keys[i] >= key.
func lowerBound(keys []types.Value, key types.Value) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if types.Compare(keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// upperBound returns the first index i with keys[i] > key; descending into
// children[upperBound] keeps duplicate keys reachable to the left.
func upperBound(keys []types.Value, key types.Value) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if types.Compare(keys[mid], key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func insertAt(s []types.Value, i int, v types.Value) []types.Value {
	s = append(s, types.Null)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertRIDAt(s []storage.RID, i int, v storage.RID) []storage.RID {
	s = append(s, storage.RID{})
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertNodeAt(s []*node, i int, v *node) []*node {
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}
