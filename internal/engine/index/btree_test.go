package index

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/engine/storage"
	"repro/internal/engine/types"
)

func rid(n int) storage.RID { return storage.RID{Page: int32(n / 100), Slot: int32(n % 100)} }

func TestInsertLookupSmall(t *testing.T) {
	tr := New()
	for i := 0; i < 10; i++ {
		tr.Insert(types.NewInt(int64(i)), rid(i))
	}
	if tr.Len() != 10 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < 10; i++ {
		rids := tr.Lookup(types.NewInt(int64(i)))
		if len(rids) != 1 || rids[0] != rid(i) {
			t.Errorf("Lookup(%d) = %v", i, rids)
		}
	}
	if got := tr.Lookup(types.NewInt(99)); len(got) != 0 {
		t.Errorf("Lookup(99) = %v", got)
	}
}

func TestInsertManyRandomOrder(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(7))
	const n = 20000
	perm := rng.Perm(n)
	for _, i := range perm {
		tr.Insert(types.NewInt(int64(i)), rid(i))
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Height() < 2 {
		t.Errorf("Height = %d, want a real tree", tr.Height())
	}
	// Full scan is sorted and complete.
	var prev types.Value = types.Null
	count := 0
	tr.Ascend(func(k types.Value, _ storage.RID) bool {
		if !prev.IsNull() && types.Compare(prev, k) > 0 {
			t.Fatalf("out of order: %v after %v", k, prev)
		}
		prev = k
		count++
		return true
	})
	if count != n {
		t.Fatalf("scan visited %d, want %d", count, n)
	}
	// Point lookups.
	for i := 0; i < 500; i++ {
		k := rng.Intn(n)
		rids := tr.Lookup(types.NewInt(int64(k)))
		if len(rids) != 1 || rids[0] != rid(k) {
			t.Fatalf("Lookup(%d) = %v", k, rids)
		}
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr := New()
	const dups = 500
	for i := 0; i < dups; i++ {
		tr.Insert(types.NewInt(42), rid(i))
	}
	for i := 0; i < 200; i++ {
		tr.Insert(types.NewInt(int64(i*1000)), rid(10000+i))
	}
	got := tr.Lookup(types.NewInt(42))
	if len(got) != dups+1 { // +1 for 42*0? no: i*1000 == 0,1000,...; 42 not among them
		// 42 is not a multiple of 1000, so exactly dups matches.
		if len(got) != dups {
			t.Fatalf("Lookup(42) returned %d rids, want %d", len(got), dups)
		}
	}
	seen := map[storage.RID]bool{}
	for _, r := range got {
		seen[r] = true
	}
	if len(seen) != dups {
		t.Errorf("duplicate rids collapsed: %d distinct", len(seen))
	}
}

func TestDuplicatesSpanningSplits(t *testing.T) {
	tr := New()
	// Long runs of equal string keys force duplicate runs across leaf
	// splits.
	keys := []string{"alpha", "beta", "gamma"}
	const run = 300
	n := 0
	for _, k := range keys {
		for i := 0; i < run; i++ {
			tr.Insert(types.NewString(k), rid(n))
			n++
		}
	}
	for _, k := range keys {
		if got := len(tr.Lookup(types.NewString(k))); got != run {
			t.Errorf("Lookup(%s) = %d rids, want %d", k, got, run)
		}
	}
}

func TestAscendRange(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		tr.Insert(types.NewInt(int64(i)), rid(i))
	}
	var got []int64
	tr.AscendRange(types.NewInt(100), types.NewInt(110), func(k types.Value, _ storage.RID) bool {
		got = append(got, k.Int())
		return true
	})
	if len(got) != 11 || got[0] != 100 || got[10] != 110 {
		t.Errorf("range [100,110] = %v", got)
	}
	// Early stop.
	count := 0
	tr.AscendRange(types.Null, types.Null, func(types.Value, storage.RID) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop visited %d", count)
	}
	// Open-ended ranges.
	count = 0
	tr.AscendRange(types.NewInt(990), types.Null, func(types.Value, storage.RID) bool {
		count++
		return true
	})
	if count != 10 {
		t.Errorf("open upper range visited %d, want 10", count)
	}
}

func TestStringKeys(t *testing.T) {
	tr := New()
	words := []string{"speaker", "line", "act", "scene", "play", "title"}
	for i, w := range words {
		tr.Insert(types.NewString(w), rid(i))
	}
	sorted := append([]string(nil), words...)
	sort.Strings(sorted)
	var got []string
	tr.Ascend(func(k types.Value, _ storage.RID) bool {
		got = append(got, k.Str())
		return true
	})
	for i := range sorted {
		if got[i] != sorted[i] {
			t.Fatalf("order = %v, want %v", got, sorted)
		}
	}
}

func TestSizeAccounting(t *testing.T) {
	tr := New()
	if tr.NodeCount() != 1 || tr.SizeBytes() != storage.PageSize {
		t.Errorf("empty tree: nodes=%d size=%d", tr.NodeCount(), tr.SizeBytes())
	}
	for i := 0; i < 50000; i++ {
		tr.Insert(types.NewInt(int64(i)), rid(i))
	}
	if tr.NodeCount() < 50000/order {
		t.Errorf("NodeCount = %d, implausibly small", tr.NodeCount())
	}
	if tr.SizeBytes() != int64(tr.NodeCount())*storage.PageSize {
		t.Error("SizeBytes disagrees with NodeCount")
	}
}

func TestLookupMatchesLinearScanProperty(t *testing.T) {
	f := func(keys []int16, probe int16) bool {
		tr := New()
		want := 0
		for i, k := range keys {
			tr.Insert(types.NewInt(int64(k)), rid(i))
			if k == probe {
				want++
			}
		}
		return len(tr.Lookup(types.NewInt(int64(probe)))) == want
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
