package engine

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"repro/internal/engine/catalog"
	"repro/internal/engine/plan"
	"repro/internal/engine/types"
	"repro/internal/xadt"
)

// parallelFixture builds the Figure 6 schema at a size that spans enough
// heap pages to morselize: nActs acts and 40 speeches per act, with XADT
// speaker/line fragments so parallel plans exercise UDF evaluation.
func parallelFixture(t testing.TB, nActs int) *Database {
	t.Helper()
	db := Open(Config{BufferPoolPages: 1024})
	if _, err := db.CreateTable("act", []catalog.Column{
		{Name: "actID", Type: types.KindInt},
		{Name: "act_title", Type: types.KindString},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("speech", []catalog.Column{
		{Name: "speechID", Type: types.KindInt},
		{Name: "speech_parentID", Type: types.KindInt},
		{Name: "speech_speaker", Type: types.KindXADT},
		{Name: "speech_line", Type: types.KindXADT},
	}); err != nil {
		t.Fatal(err)
	}
	frag := func(s string) types.Value {
		v, err := xadt.Parse(s, xadt.Raw)
		if err != nil {
			t.Fatal(err)
		}
		return types.NewXADT(v.Bytes())
	}
	speakers := []string{"HAMLET", "HORATIO", "GHOST", "OPHELIA", "CLAUDIUS"}
	acts := db.Catalog.Table("act")
	speeches := db.Catalog.Table("speech")
	id := 0
	for a := 1; a <= nActs; a++ {
		if err := acts.Insert([]types.Value{
			types.NewInt(int64(a)), types.NewString(fmt.Sprintf("ACT %d", a)),
		}); err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 40; s++ {
			id++
			err := speeches.Insert([]types.Value{
				types.NewInt(int64(id)),
				types.NewInt(int64(a)),
				frag(fmt.Sprintf("<SPEAKER>%s</SPEAKER>", speakers[id%len(speakers)])),
				frag(fmt.Sprintf("<LINE>line %d of act %d</LINE><LINE>and line two</LINE>", id, a)),
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.RunStats(); err != nil {
		t.Fatal(err)
	}
	if pages := speeches.Heap.DataPages(); pages < 4 {
		t.Fatalf("speech table spans %d pages; too small to morselize", pages)
	}
	return db
}

// parallelQueries covers every operator shape the planner parallelizes:
// bare scans, filters with UDFs, joins, table functions, aggregates, and
// the order-sensitive ORDER BY / LIMIT plans of the QS6 family.
var parallelQueries = []string{
	`SELECT speechID FROM speech`,
	`SELECT speechID, xadtText(speech_speaker) FROM speech`,
	`SELECT speechID FROM speech WHERE findKeyInElm(speech_speaker, 'SPEAKER', 'HAMLET') = 1`,
	`SELECT act_title, speechID FROM act, speech WHERE actID = speech_parentID`,
	`SELECT xadtText(u.out) FROM speech, TABLE(unnest(speech_line, 'LINE')) u`,
	`SELECT speech_parentID, COUNT(*) FROM speech GROUP BY speech_parentID`,
	`SELECT DISTINCT xadtText(speech_speaker) FROM speech`,
	`SELECT speechID FROM speech ORDER BY speechID DESC LIMIT 10`,
	`SELECT act_title, COUNT(*) FROM act, speech WHERE actID = speech_parentID GROUP BY act_title ORDER BY act_title`,
}

// TestParallelQueryDeterminism runs every query shape at DOP 1 and DOP 4
// and requires byte-identical results — including row order, since the
// exchange reassembles morsel output in scan order.
func TestParallelQueryDeterminism(t *testing.T) {
	db := parallelFixture(t, 30)
	for _, q := range parallelQueries {
		db.SetPlannerOptions(plan.Options{DOP: 1})
		want, err := db.Query(q)
		if err != nil {
			t.Fatalf("serial %q: %v", q, err)
		}
		db.SetPlannerOptions(plan.Options{DOP: 4, MorselPages: 1, CPUs: 4})
		got, err := db.Query(q)
		if err != nil {
			t.Fatalf("dop=4 %q: %v", q, err)
		}
		if !reflect.DeepEqual(got.Rows, want.Rows) {
			t.Errorf("%q: dop=4 returned %d rows differing from serial %d rows",
				q, len(got.Rows), len(want.Rows))
		}
	}
}

// TestParallelQueryStress issues parallel queries concurrently against
// one Database; run with -race this doubles as the data-race audit of
// the pool, catalog, heap, and exchange machinery.
func TestParallelQueryStress(t *testing.T) {
	db := parallelFixture(t, 20)
	db.SetPlannerOptions(plan.Options{DOP: 4, MorselPages: 1, CPUs: 4})
	queries := []string{
		`SELECT speechID, xadtText(speech_speaker) FROM speech`,
		`SELECT act_title, speechID FROM act, speech WHERE actID = speech_parentID`,
		`SELECT speech_parentID, COUNT(*) FROM speech GROUP BY speech_parentID`,
		`SELECT xadtText(u.out) FROM speech, TABLE(unnest(speech_line, 'LINE')) u`,
	}
	want := make([]*Result, len(queries))
	for i, q := range queries {
		r, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(queries)*6)
	for round := 0; round < 6; round++ {
		for i, q := range queries {
			wg.Add(1)
			go func(i int, q string) {
				defer wg.Done()
				got, err := db.Query(q)
				if err != nil {
					errs <- fmt.Errorf("%q: %w", q, err)
					return
				}
				if !reflect.DeepEqual(got.Rows, want[i].Rows) {
					errs <- fmt.Errorf("%q: concurrent result differs", q)
				}
			}(i, q)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// BenchmarkScan compares a predicate scan at DOP 1 and DOP GOMAXPROCS —
// the parallel_speedup measurement at benchmark scale.
func BenchmarkScan(b *testing.B) {
	db := parallelFixture(b, 100)
	q := `SELECT speechID FROM speech WHERE findKeyInElm(speech_speaker, 'SPEAKER', 'HAMLET') = 1`
	run := func(b *testing.B, opts plan.Options) {
		db.SetPlannerOptions(opts)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("dop1", func(b *testing.B) { run(b, plan.Options{DOP: 1}) })
	b.Run("dopN", func(b *testing.B) { run(b, plan.Options{DOP: runtime.GOMAXPROCS(0), MorselPages: 4}) })
}
