package plan

import (
	"strings"
	"testing"

	"repro/internal/engine/catalog"
	"repro/internal/engine/expr"
	"repro/internal/engine/types"
)

// midFixture builds a table that morselizes (several pages) but falls
// below both small-input gate thresholds: pages < DefaultMinParallelPages
// and rows < DefaultMinParallelRows.
func midFixture(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New(nil)
	tbl, err := cat.CreateTable("mid", []catalog.Column{
		{Name: "id", Type: types.KindInt},
		{Name: "pad", Type: types.KindString},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		tbl.Insert([]types.Value{
			types.NewInt(int64(i)),
			types.NewString(strings.Repeat("p", 40)),
		})
	}
	if err := cat.RunStatsAll(); err != nil {
		t.Fatal(err)
	}
	pages := tbl.Heap.DataPages()
	if pages < 2 || pages >= DefaultMinParallelPages {
		t.Fatalf("fixture must sit between morselizable and the gate: %d pages", pages)
	}
	if tbl.Rows() >= DefaultMinParallelRows {
		t.Fatalf("fixture must stay under the row floor: %d rows", tbl.Rows())
	}
	return cat
}

func TestSmallInputGateSkipsParallelism(t *testing.T) {
	cat := midFixture(t)
	p := &Planner{Cat: cat, Reg: expr.NewRegistry(), Opts: Options{DOP: 4, MorselPages: 1, CPUs: 4}}
	text := Explain(planFor(t, p, `SELECT id FROM mid WHERE id > 10`))
	if strings.Contains(text, "Gather") {
		t.Fatalf("small input should stay serial at DOP 4:\n%s", text)
	}
}

func TestSmallInputGateDisabled(t *testing.T) {
	cat := midFixture(t)
	p := &Planner{Cat: cat, Reg: expr.NewRegistry(),
		Opts: Options{DOP: 4, MorselPages: 1, MinParallelPages: -1}}
	text := Explain(planFor(t, p, `SELECT id FROM mid WHERE id > 10`))
	if !strings.Contains(text, "Gather(dop=4)") {
		t.Fatalf("MinParallelPages=-1 should force the parallel plan:\n%s", text)
	}
}

func TestSmallInputGatePassesRowFloor(t *testing.T) {
	// bigFixture's fact table has few pages but 4000 rows: the row floor
	// alone should admit it.
	cat := bigFixture(t)
	p := &Planner{Cat: cat, Reg: expr.NewRegistry(), Opts: Options{DOP: 4, MorselPages: 1, CPUs: 4}}
	text := Explain(planFor(t, p, `SELECT id FROM fact WHERE val > 500`))
	if !strings.Contains(text, "Gather(dop=4)") {
		t.Fatalf("4000-row table should pass the row floor:\n%s", text)
	}
}

func TestVectorizePassMarksPlan(t *testing.T) {
	cat := bigFixture(t)
	on := &Planner{Cat: cat, Reg: expr.NewRegistry()}
	off := &Planner{Cat: cat, Reg: expr.NewRegistry(), Opts: Options{DisableVectorized: true}}

	q := `SELECT id, val FROM fact WHERE val > 500`
	onText := Explain(planFor(t, on, q))
	if !strings.Contains(onText, "[vec]") {
		t.Fatalf("default plan has no vectorized operators:\n%s", onText)
	}
	offText := Explain(planFor(t, off, q))
	if strings.Contains(offText, "[vec]") {
		t.Fatalf("DisableVectorized plan still vectorized:\n%s", offText)
	}

	// Parallel plans vectorize inside the worker pipelines and forward
	// batches through the exchange.
	par := &Planner{Cat: cat, Reg: expr.NewRegistry(), Opts: Options{DOP: 4, MorselPages: 1, CPUs: 4}}
	parText := Explain(planFor(t, par, q))
	if !strings.Contains(parText, "Gather(dop=4) [vec]") || !strings.Contains(parText, "MorselScan") {
		t.Fatalf("parallel plan not batch-forwarding:\n%s", parText)
	}

	// Row-wise operators above a vectorized scan: the scan is marked,
	// the sort is not.
	sortText := Explain(planFor(t, on, `SELECT id, val FROM fact ORDER BY val LIMIT 5`))
	if !strings.Contains(sortText, "[vec]") {
		t.Fatalf("scan below TopN should still vectorize:\n%s", sortText)
	}
	if strings.Contains(sortText, "TopN") && strings.Contains(sortText, "TopN(5) [vec]") {
		t.Fatalf("TopN must stay row-wise:\n%s", sortText)
	}
}
