package plan

import (
	"strings"

	"repro/internal/engine/exec"
	"repro/internal/engine/sql"
	"repro/internal/engine/storage"
)

// findKeyConjunct is one pushed conjunct the XADT fragment index can
// answer: findKeyInElm(col, 'Elm', 'key') = 1 with literal arguments,
// where col is an indexed XADT column of the base table.
type findKeyConjunct struct {
	conj   sql.Expr
	column string
	elm    string
	key    string
}

// matchFindKey recognizes a findKeyInElm(col, 'E', 'k') = 1 conjunct
// (either operand order) over a column of b's table. Only the exact
// "= 1" form is indexable: the index knows which rows may contain a
// match, never which rows certainly lack one.
func matchFindKey(b *baseItem, conj sql.Expr) (findKeyConjunct, bool) {
	none := findKeyConjunct{}
	bin, ok := conj.(*sql.BinOp)
	if !ok || bin.Op != "=" {
		return none, false
	}
	fn, fok := bin.L.(*sql.FuncExpr)
	lit, lok := bin.R.(*sql.IntLit)
	if !fok || !lok {
		fn, fok = bin.R.(*sql.FuncExpr)
		lit, lok = bin.L.(*sql.IntLit)
	}
	if !fok || !lok || lit.Val != 1 {
		return none, false
	}
	if !strings.EqualFold(fn.Name, "findKeyInElm") || len(fn.Args) != 3 {
		return none, false
	}
	ref, ok := fn.Args[0].(*sql.ColRef)
	if !ok {
		return none, false
	}
	if ref.Qualifier != "" && ref.Qualifier != b.alias {
		return none, false
	}
	if b.table.Schema.ColIndex(ref.Name) < 0 {
		return none, false
	}
	elm, ok := fn.Args[1].(*sql.StrLit)
	if !ok {
		return none, false
	}
	key, ok := fn.Args[2].(*sql.StrLit)
	if !ok {
		return none, false
	}
	return findKeyConjunct{conj: conj, column: ref.Name, elm: elm.Val, key: key.Val}, true
}

// xadtIndexAccess tries to answer b's pushed predicates through XADT
// fragment indexes. It returns a non-nil IndexedFragScan when at least
// one conjunct is indexable by a valid index that covers every heap row;
// candidate sets of multiple indexable conjuncts are intersected. All
// pushed conjuncts — indexed and not — are re-verified on the fetched
// rows, so the rewrite can only change how rows are found, never which
// rows are returned. nil,nil means "no index applies, use a scan".
func (p *Planner) xadtIndexAccess(b *baseItem) (exec.Operator, error) {
	if p.Opts.Views != nil {
		// Fragment-index probes resolve RIDs against the live index, which
		// a session snapshot cannot trust; the caller also gates this.
		return nil, nil
	}
	var rids []storage.RID
	var matched []string
	have := false
	for _, conj := range b.push {
		fk, ok := matchFindKey(b, conj)
		if !ok {
			continue
		}
		fi := b.table.FragIndexOn(fk.column)
		if fi == nil || !fi.Valid() || fi.Rows() != b.table.Rows() {
			// Missing, invalidated, or stale (has not absorbed every heap
			// row) — the contract says fall back, never guess.
			continue
		}
		cand, ok := fi.LookupFindKey(fk.elm, fk.key)
		if !ok {
			continue
		}
		if have {
			rids = intersectRIDs(rids, cand)
		} else {
			rids = cand
			have = true
		}
		matched = append(matched, fk.conj.String())
	}
	if !have {
		return nil, nil
	}
	scan := exec.NewIndexedFragScan(b.table, b.alias, rids, nil, strings.Join(matched, " AND "))
	if len(b.push) > 0 {
		pred, err := p.bindConjuncts(b.push, scan.Schema())
		if err != nil {
			return nil, err
		}
		scan.Pred = pred
	}
	return scan, nil
}

// intersectRIDs intersects two candidate lists sorted in heap order.
func intersectRIDs(a, b []storage.RID) []storage.RID {
	out := a[:0:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case ridLess(a[i], b[j]):
			i++
		case ridLess(b[j], a[i]):
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func ridLess(a, b storage.RID) bool {
	if a.Page != b.Page {
		return a.Page < b.Page
	}
	return a.Slot < b.Slot
}
