package plan

import (
	"fmt"

	"repro/internal/engine/catalog"
	"repro/internal/engine/exec"
	"repro/internal/engine/expr"
	"repro/internal/engine/sql"
	"repro/internal/engine/types"
)

// PlanStatement compiles any statement. SELECTs go through the query
// planner; DML statements compile to mutation operators that log their
// redo records to log (which may be nil for non-durable stores).
func (p *Planner) PlanStatement(stmt sql.Statement, log exec.MutationLog) (exec.Operator, error) {
	switch s := stmt.(type) {
	case *sql.SelectStmt:
		return p.Plan(s)
	case *sql.InsertStmt:
		return p.PlanInsert(s, log)
	case *sql.UpdateStmt:
		return p.PlanUpdate(s, log)
	case *sql.DeleteStmt:
		return p.PlanDelete(s, log)
	default:
		return nil, fmt.Errorf("plan: unknown statement %T", stmt)
	}
}

// PlanInsert folds the VALUES expressions to constants, maps explicit
// column lists onto schema order (missing columns become NULL), and
// compiles to an InsertOp.
func (p *Planner) PlanInsert(stmt *sql.InsertStmt, log exec.MutationLog) (exec.Operator, error) {
	tbl := p.Cat.Table(stmt.Table)
	if tbl == nil {
		return nil, fmt.Errorf("plan: unknown table %s", stmt.Table)
	}
	cols := make([]int, 0, len(stmt.Columns))
	if len(stmt.Columns) == 0 {
		for i := range tbl.Schema.Columns {
			cols = append(cols, i)
		}
	} else {
		seen := map[int]bool{}
		for _, name := range stmt.Columns {
			ci := tbl.Schema.ColIndex(name)
			if ci < 0 {
				return nil, fmt.Errorf("plan: table %s has no column %s", stmt.Table, name)
			}
			if seen[ci] {
				return nil, fmt.Errorf("plan: duplicate column %s in INSERT", name)
			}
			seen[ci] = true
			cols = append(cols, ci)
		}
	}
	op := &exec.InsertOp{Table: tbl, Log: log}
	for _, tuple := range stmt.Rows {
		if len(tuple) != len(cols) {
			return nil, fmt.Errorf("plan: VALUES tuple has %d expressions for %d columns", len(tuple), len(cols))
		}
		row := make([]types.Value, len(tbl.Schema.Columns))
		for j := range row {
			row[j] = types.Null
		}
		for j, e := range tuple {
			v, err := p.foldValue(e)
			if err != nil {
				return nil, err
			}
			row[cols[j]] = v
		}
		op.Rows = append(op.Rows, row)
	}
	return op, nil
}

// PlanUpdate binds the WHERE predicate and SET assignments against the
// table schema and compiles to an UpdateOp.
func (p *Planner) PlanUpdate(stmt *sql.UpdateStmt, log exec.MutationLog) (exec.Operator, error) {
	tbl, schema, err := p.mutationTarget(stmt.Table)
	if err != nil {
		return nil, err
	}
	op := &exec.UpdateOp{Table: tbl, Log: log}
	seen := map[int]bool{}
	for _, sc := range stmt.Set {
		ci := tbl.Schema.ColIndex(sc.Column)
		if ci < 0 {
			return nil, fmt.Errorf("plan: table %s has no column %s", stmt.Table, sc.Column)
		}
		if seen[ci] {
			return nil, fmt.Errorf("plan: duplicate SET column %s", sc.Column)
		}
		seen[ci] = true
		v, err := p.foldValue(sc.Value)
		if err != nil {
			return nil, err
		}
		op.Set = append(op.Set, exec.SetCol{Idx: ci, Val: v})
	}
	op.Pred, op.Index, op.Key, err = p.bindMutationWhere(stmt.Where, tbl, schema)
	if err != nil {
		return nil, err
	}
	return op, nil
}

// PlanDelete binds the WHERE predicate against the table schema and
// compiles to a DeleteOp.
func (p *Planner) PlanDelete(stmt *sql.DeleteStmt, log exec.MutationLog) (exec.Operator, error) {
	tbl, schema, err := p.mutationTarget(stmt.Table)
	if err != nil {
		return nil, err
	}
	op := &exec.DeleteOp{Table: tbl, Log: log}
	op.Pred, op.Index, op.Key, err = p.bindMutationWhere(stmt.Where, tbl, schema)
	if err != nil {
		return nil, err
	}
	return op, nil
}

// mutationTarget resolves a DML target table and its row schema (the
// table name doubles as the qualifier, matching SELECT's default alias).
func (p *Planner) mutationTarget(name string) (*catalog.Table, *expr.RowSchema, error) {
	tbl := p.Cat.Table(name)
	if tbl == nil {
		return nil, nil, fmt.Errorf("plan: unknown table %s", name)
	}
	cols := make([]expr.ColInfo, len(tbl.Schema.Columns))
	for i, c := range tbl.Schema.Columns {
		cols[i] = expr.ColInfo{Qualifier: name, Name: c.Name, Type: c.Type}
	}
	return tbl, expr.NewRowSchema(cols...), nil
}

// bindMutationWhere binds a DML WHERE clause, reusing the query
// planner's access-path selection in miniature: when an indexed-equality
// conjunct exists (and index scans are enabled), the B+tree supplies the
// candidate RIDs while the complete predicate is still re-verified per
// row — exactly the superset-plus-reverify contract of SELECT's index
// paths.
func (p *Planner) bindMutationWhere(where sql.Expr, tbl *catalog.Table, schema *expr.RowSchema) (expr.Expr, *catalog.Index, types.Value, error) {
	if where == nil {
		return nil, nil, types.Null, nil
	}
	pred, err := p.bind(where, schema)
	if err != nil {
		return nil, nil, types.Null, err
	}
	if !p.Opts.DisableIndexScan {
		for _, conj := range splitConjuncts(where) {
			ref, val, ok := constEquality(conj)
			if !ok {
				continue
			}
			if ref.Qualifier != "" && ref.Qualifier != tbl.Schema.Table {
				continue
			}
			if idx := tbl.IndexOn(ref.Name); idx != nil {
				return pred, idx, val, nil
			}
		}
	}
	return pred, nil, types.Null, nil
}

// foldValue evaluates a DML value expression to a constant. Column
// references have nothing to bind against in a value position, so any
// expression that needs a row fails here.
func (p *Planner) foldValue(e sql.Expr) (types.Value, error) {
	bound, err := p.bind(e, expr.NewRowSchema())
	if err != nil {
		return types.Null, fmt.Errorf("plan: value expression %s: %w", e, err)
	}
	v, err := bound.Eval(nil)
	if err != nil {
		return types.Null, fmt.Errorf("plan: evaluating %s: %w", e, err)
	}
	return v, nil
}
