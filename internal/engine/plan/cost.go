package plan

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/engine/catalog"
	"repro/internal/engine/expr"
	"repro/internal/engine/sql"
	"repro/internal/engine/types"
)

// Cost model constants. The units are abstract "row touches"; only the
// ratios matter. They are calibrated so a plain sequential scan becomes
// worth parallelizing near the old fixed thresholds
// (DefaultMinParallelPages / DefaultMinParallelRows), while scans whose
// predicates call into the XADT UDFs cross over much earlier — per-row
// UDF work is what the paper's §4.4 analysis identifies as the term
// that dominates its query shapes.
const (
	// cPageTouch is the cost of pulling one heap page through the buffer
	// pool.
	cPageTouch = 4.0
	// cRowTouch is the cost of surfacing one row from a scan; it scales
	// with the row width (see rowWidthScale).
	cRowTouch = 1.0
	// cPredCall is one user function call (findKeyInElm and friends)
	// evaluated over one row.
	cPredCall = 24.0
	// cPredLike is one LIKE match over one row.
	cPredLike = 2.0
	// cPredSimple is one comparison / boolean connective over one row.
	cPredSimple = 0.5
	// cHashBuildRow / cHashProbeRow are the per-row costs of the two
	// hash-join phases.
	cHashBuildRow = 2.0
	cHashProbeRow = 1.2
	// cIndexProbeRow is one B+tree descent.
	cIndexProbeRow = 3.0
	// cSortRow is the per-row-per-log2(n) cost of an in-memory sort.
	cSortRow = 0.4
	// cOutRow is the cost of materializing one joined output row.
	cOutRow = 0.3
	// cWorkerStartup is the fixed cost of spinning up one parallel
	// worker pipeline (goroutine, channel, morsel bookkeeping).
	cWorkerStartup = 300.0
	// cExchangeRow is the cost of moving one row through the Gather
	// exchange.
	cExchangeRow = 0.2
	// cMergeSetup is the fixed charge of a merge join (two
	// materializations plus merge bookkeeping); it keeps merge from
	// spuriously beating hash on inputs of a handful of rows, where the
	// affine per-row terms are all noise.
	cMergeSetup = 64.0
)

// defaultNDV is the distinct-count guess when statistics are missing or
// stale — the same default the pre-cost-model planner used.
const defaultNDV = 10

// tableEst carries the statistics-derived properties of one base-table
// FROM entry for the current Plan call. All fields are computed from a
// single StatsSnapshot, so concurrent RunStats never tears an estimate.
type tableEst struct {
	stats catalog.Stats
	// fresh reports whether the snapshot is trusted: valid and not
	// drifted past catalog.DefaultStaleRatio. When false the estimator
	// falls back to the same defaults the pre-statistics planner used.
	fresh bool
	rows  float64 // base cardinality (statistics when fresh, live count otherwise)
	pages float64 // heap data pages
	width float64 // row-width scale factor, 1 + avgRowBytes/256
	sel   float64 // combined selectivity of the pushed conjuncts
	out   float64 // rows × sel, floored at 1 — the post-pushdown estimate
}

// ndv returns the distinct count of a column, falling back to
// defaultNDV when statistics are not fresh.
func (te *tableEst) ndv(col string) float64 {
	if te.fresh {
		if d := te.stats.DistinctOr(col, defaultNDV); d >= 1 {
			return float64(d)
		}
	}
	return defaultNDV
}

// estimate fills per-table cardinality estimates. With the cost model
// on it uses histograms, distinct counts, and fragment-index document
// frequencies from fresh statistics; with DisableCostModel (or for the
// greedy fallback) b.est reproduces the pre-cost-model arithmetic
// exactly. The returned map is keyed by FROM alias.
func (p *Planner) estimate(bases []*baseItem) map[string]*tableEst {
	ests := make(map[string]*tableEst, len(bases))
	for _, b := range bases {
		// Snapshot once so concurrent planners never race a RunStats.
		stats := b.table.StatsSnapshot()
		live := float64(b.table.Rows())
		te := &tableEst{
			stats: stats,
			fresh: stats.Fresh(),
			pages: float64(b.table.Heap.DataPages()),
		}
		te.rows = live
		if p.Opts.DisableCostModel {
			// Seed arithmetic: trust any valid snapshot, equality divides
			// by the distinct count, everything else multiplies by 0.1.
			if stats.Valid {
				te.rows = float64(stats.Rows)
			}
			if te.rows < 1 {
				te.rows = 1
			}
			rows := te.rows
			for _, conj := range b.push {
				if ref, _, ok := constEquality(conj); ok {
					d := stats.DistinctOr(ref.Name, defaultNDV)
					if d < 1 {
						d = 1
					}
					rows /= float64(d)
				} else {
					rows *= 0.1
				}
			}
			if rows < 1 {
				rows = 1
			}
			te.sel = rows / te.rows
			te.out = rows
			b.est = rows
			te.width = rowWidthScale(b.table, te.rows)
			ests[b.alias] = te
			continue
		}
		if te.fresh {
			te.rows = float64(stats.Rows)
		}
		if te.rows < 1 {
			te.rows = 1
		}
		te.width = rowWidthScale(b.table, te.rows)
		sels := make([]float64, 0, len(b.push))
		for _, conj := range b.push {
			sels = append(sels, p.selConjunct(b, te, conj))
		}
		te.sel = combineSel(sels)
		te.out = te.rows * te.sel
		if te.out < 1 {
			te.out = 1
		}
		b.est = te.out
		ests[b.alias] = te
	}
	return ests
}

// rowWidthScale converts a table's average row width into the scan
// cost multiplier: narrow rows cost cRowTouch, a 256-byte row doubles
// it.
func rowWidthScale(t *catalog.Table, rows float64) float64 {
	if rows < 1 {
		return 1
	}
	return 1 + float64(t.DataBytes())/rows/256
}

// selConjunct estimates the selectivity of one pushed conjunct.
//
// The estimate is deliberately a pure function of the statistics
// snapshot, the query text, and durable store state (indexes): it must
// never read Options fields like DisableIndexScan or DisableXADTIndexes,
// because the differential harness compares row-for-row across those
// axes and a flag-dependent estimate could flip the join order between
// cells. In particular the fragment-index document frequency is
// consulted even when the index rewrite itself is disabled.
func (p *Planner) selConjunct(b *baseItem, te *tableEst, conj sql.Expr) float64 {
	if fk, ok := matchFindKey(b, conj); ok {
		if fi := b.table.FragIndexOn(fk.column); fi != nil && fi.Valid() && fi.Rows() == b.table.Rows() {
			if rids, ok := fi.LookupFindKey(fk.elm, fk.key); ok {
				return clampSel(float64(len(rids)) / te.rows)
			}
			return clampSel(1 / te.rows) // indexed and provably absent
		}
		return 0.05 // keyword probes are sharp even unindexed
	}
	if ref, val, ok := constEquality(conj); ok {
		if te.fresh {
			if cs, ok := te.stats.Col(ref.Name); ok && cs.Hist != nil && len(cs.Hist.Bounds) > 0 {
				// Out-of-range equality: the histogram never saw the value.
				last := cs.Hist.Bounds[len(cs.Hist.Bounds)-1]
				if types.Compare(val, cs.Hist.Min) < 0 || types.Compare(last, val) < 0 {
					return clampSel(1 / te.rows)
				}
			}
		}
		return clampSel(1 / te.ndv(ref.Name))
	}
	if bin, ok := conj.(*sql.BinOp); ok {
		if ref, val, dir, ok := constRange(bin); ok {
			if te.fresh {
				if cs, ok := te.stats.Col(ref.Name); ok && cs.Hist != nil {
					f := cs.Hist.FracBelow(val)
					sel := f
					if dir == rangeAbove {
						sel = 1 - f
					}
					// Scale by the non-null fraction: NULLs never pass.
					sel *= 1 - cs.NullFrac
					return clampSel(sel)
				}
			}
			return 1.0 / 3
		}
		if bin.Op == "<>" {
			if ref, ok := bin.L.(*sql.ColRef); ok {
				d := te.ndv(ref.Name)
				return clampSel((d - 1) / d)
			}
			return 0.9
		}
	}
	if _, ok := conj.(*sql.LikeExpr); ok {
		return 0.25
	}
	return 0.1
}

// rangeAbove / rangeBelow describe which side of the constant a range
// predicate keeps.
type rangeDir int

const (
	rangeBelow rangeDir = iota // col < c, col <= c
	rangeAbove                 // col > c, col >= c
)

// constRange recognizes col <op> literal (either operand order) for the
// four ordering comparisons and normalizes it to "keep rows below/above
// the constant". The <= / >= boundary row is absorbed into the
// interpolation error.
func constRange(bin *sql.BinOp) (*sql.ColRef, types.Value, rangeDir, bool) {
	var dir rangeDir
	switch bin.Op {
	case "<", "<=":
		dir = rangeBelow
	case ">", ">=":
		dir = rangeAbove
	default:
		return nil, types.Null, rangeBelow, false
	}
	if ref, ok := bin.L.(*sql.ColRef); ok {
		if val, ok := literalValue(bin.R); ok {
			return ref, val, dir, true
		}
	}
	if ref, ok := bin.R.(*sql.ColRef); ok {
		if val, ok := literalValue(bin.L); ok {
			// c < col keeps rows above the constant.
			if dir == rangeBelow {
				dir = rangeAbove
			} else {
				dir = rangeBelow
			}
			return ref, val, dir, true
		}
	}
	return nil, types.Null, rangeBelow, false
}

// combineSel combines per-conjunct selectivities with damped
// independence (exponential back-off): the most selective conjunct
// counts fully, the next at sqrt, the next at the 4th root, and so on.
// Pure independence over-multiplies correlated predicates; the damping
// keeps multi-predicate estimates from collapsing to zero.
func combineSel(sels []float64) float64 {
	if len(sels) == 0 {
		return 1
	}
	sort.Float64s(sels)
	sel := 1.0
	exp := 1.0
	for _, s := range sels {
		sel *= math.Pow(s, exp)
		exp /= 2
	}
	return clampSel(sel)
}

// clampSel bounds a selectivity to (0, 1].
func clampSel(s float64) float64 {
	if s < 1e-6 {
		return 1e-6
	}
	if s > 1 {
		return 1
	}
	return s
}

// joinSel estimates the selectivity of one equi-join predicate as
// 1/max(ndv(left), ndv(right)) — the textbook containment assumption.
func joinSel(jp joinPred, ests map[string]*tableEst) float64 {
	d := 1.0
	if te, ok := ests[jp.la]; ok {
		d = math.Max(d, te.ndv(jp.l.Name))
	}
	if te, ok := ests[jp.ra]; ok {
		d = math.Max(d, te.ndv(jp.r.Name))
	}
	return clampSel(1 / d)
}

// predCostSQL estimates the per-row evaluation cost of unbound pushed
// conjuncts (used for access-path costing before binding).
func predCostSQL(conjs []sql.Expr) float64 {
	cost := 0.0
	for _, c := range conjs {
		cost += sqlExprCost(c)
	}
	return cost
}

func sqlExprCost(e sql.Expr) float64 {
	switch n := e.(type) {
	case *sql.BinOp:
		return cPredSimple + sqlExprCost(n.L) + sqlExprCost(n.R)
	case *sql.FuncExpr:
		cost := cPredCall
		for _, a := range n.Args {
			cost += sqlExprCost(a)
		}
		return cost
	case *sql.LikeExpr:
		return cPredLike
	default:
		return 0
	}
}

// predCostExpr estimates the per-row evaluation cost of a bound
// predicate tree — the parallel cost gate walks the fused scan
// predicate with it.
func predCostExpr(e expr.Expr) float64 {
	switch n := e.(type) {
	case nil:
		return 0
	case *expr.And:
		return cPredSimple + predCostExpr(n.L) + predCostExpr(n.R)
	case *expr.Or:
		return cPredSimple + predCostExpr(n.L) + predCostExpr(n.R)
	case *expr.Not:
		return predCostExpr(n.E)
	case *expr.Cmp:
		return cPredSimple + predCostExpr(n.L) + predCostExpr(n.R)
	case *expr.Like:
		return cPredLike + predCostExpr(n.E)
	case *expr.Call:
		cost := cPredCall
		for _, a := range n.Args {
			cost += predCostExpr(a)
		}
		return cost
	default:
		return 0
	}
}

// accessCost estimates the cost of producing a base table's
// post-pushdown rows through its cheapest access path. Like
// selConjunct, it is flag-blind: it considers the indexes that exist,
// not the ones the current Options allow, so the estimate (and with it
// the join order) is identical across the differential harness's
// index-on/index-off cells.
func (p *Planner) accessCost(b *baseItem, te *tableEst) float64 {
	predCost := predCostSQL(b.push)
	scan := te.pages*cPageTouch + te.rows*(cRowTouch*te.width+predCost)
	best := scan
	for _, conj := range b.push {
		if fk, ok := matchFindKey(b, conj); ok {
			if fi := b.table.FragIndexOn(fk.column); fi != nil && fi.Valid() && fi.Rows() == b.table.Rows() {
				df := te.rows * p.selConjunct(b, te, conj)
				cost := 2*cIndexProbeRow + df*(cRowTouch*te.width+predCost)
				if cost < best {
					best = cost
				}
			}
			continue
		}
		if ref, _, ok := constEquality(conj); ok {
			if b.table.IndexOn(ref.Name) != nil {
				matches := te.rows / te.ndv(ref.Name)
				cost := cIndexProbeRow + matches*(cRowTouch*te.width+predCost)
				if cost < best {
					best = cost
				}
			}
		}
	}
	return best
}

// CostSummary reports the optimizer's decisions for one statement —
// EXPLAIN companions, benchmark assertions, and tests read it. It is
// returned by value from PlanSummary; the planner itself stays
// stateless so engine sessions can share copies safely.
type CostSummary struct {
	// Strategy is "dp" when the join order came from the
	// dynamic-programming enumeration, "greedy" for the heuristic order
	// (cost model off, a single table, or more than dpMaxRelations).
	Strategy string
	// JoinOrder lists the FROM aliases in chosen join order.
	JoinOrder []string
	// EstRows is the estimated cardinality at the join-tree root.
	EstRows float64
	// Cost is the estimated total cost of the join tree in abstract
	// row-touch units.
	Cost float64
	// Parallel reports whether the plan contains a Gather exchange.
	Parallel bool
	// StaleStats lists tables whose statistics were distrusted (missing
	// or drifted past catalog.DefaultStaleRatio) and estimated from
	// defaults.
	StaleStats []string
}

// String renders the summary on one line, e.g.
// "dp order=[b c a] est=1000 cost=12345 parallel".
func (cs *CostSummary) String() string {
	if cs == nil {
		return ""
	}
	var sb strings.Builder
	sb.WriteString(cs.Strategy)
	sb.WriteString(" order=[")
	sb.WriteString(strings.Join(cs.JoinOrder, " "))
	sb.WriteString("]")
	fmt.Fprintf(&sb, " est=%.0f cost=%.0f", cs.EstRows, cs.Cost)
	if cs.Parallel {
		sb.WriteString(" parallel")
	}
	if len(cs.StaleStats) > 0 {
		fmt.Fprintf(&sb, " stale=[%s]", strings.Join(cs.StaleStats, " "))
	}
	return sb.String()
}
