package plan

import (
	"math"
	"math/bits"
)

// dpMaxRelations bounds the dynamic-programming join enumeration: the
// DP walks 2^n subsets, so past this many FROM entries the planner
// falls back to the greedy heuristic order (the classic System R
// compromise).
const dpMaxRelations = 8

// chooseJoinOrder returns the indexes of bases in join order plus the
// strategy label ("dp" or "greedy"). With the cost model on and a
// joinable FROM list of 2..dpMaxRelations entries it runs the
// left-deep dynamic program over subsets; otherwise it replays the
// greedy heuristic exactly as the pre-cost-model planner did, so
// DisableCostModel reproduces historical plans operator for operator.
func (p *Planner) chooseJoinOrder(bases []*baseItem, preds []joinPred, ests map[string]*tableEst) ([]int, string) {
	if !p.Opts.DisableCostModel && len(bases) >= 2 && len(bases) <= dpMaxRelations {
		return p.dpOrder(bases, preds, ests), "dp"
	}
	return greedyOrder(bases, preds), "greedy"
}

// greedyOrder replays the heuristic the join-tree builder historically
// used: start at the smallest estimated table, then repeatedly take the
// smallest table connected to the joined set by an unused equi
// predicate, falling back to the smallest overall when the FROM list is
// disconnected. Predicate consumption mirrors the tree builder so the
// connectivity test evolves identically.
func greedyOrder(bases []*baseItem, preds []joinPred) []int {
	type entry struct {
		idx int
		b   *baseItem
	}
	remaining := make([]entry, len(bases))
	for i, b := range bases {
		remaining[i] = entry{idx: i, b: b}
	}
	used := make([]bool, len(preds))
	joined := map[string]bool{}
	pick := func(eligible func(*baseItem) bool) int {
		best := -1
		for i, e := range remaining {
			if !eligible(e.b) {
				continue
			}
			if best < 0 || e.b.est < remaining[best].b.est {
				best = i
			}
		}
		return best
	}
	consume := func(alias string) {
		for i, jp := range preds {
			if used[i] {
				continue
			}
			if (joined[jp.la] && jp.ra == alias) || (jp.la == alias && joined[jp.ra]) {
				used[i] = true
			}
		}
	}
	order := make([]int, 0, len(bases))
	at := pick(func(*baseItem) bool { return true })
	order = append(order, remaining[at].idx)
	joined[remaining[at].b.alias] = true
	remaining = append(remaining[:at], remaining[at+1:]...)
	for len(remaining) > 0 {
		at = pick(func(b *baseItem) bool { return connected(b.alias, joined, preds, used) })
		if at < 0 {
			at = pick(func(*baseItem) bool { return true })
		}
		e := remaining[at]
		remaining = append(remaining[:at], remaining[at+1:]...)
		consume(e.b.alias)
		joined[e.b.alias] = true
		order = append(order, e.idx)
	}
	return order
}

// dpEdge is one equi-join predicate resolved to base indexes, with its
// estimated selectivity and per-side column names (for index-nested-
// loop eligibility).
type dpEdge struct {
	li, ri     int
	sel        float64
	lcol, rcol string
}

// dpOrder runs the left-deep dynamic program: for every subset S of
// relations it keeps the cheapest way to produce S, extending each
// best subplan by one relation with the cheapest eligible join
// algorithm. Cardinalities come from the estimator; ties break toward
// the lowest relation index, so the order is deterministic.
func (p *Planner) dpOrder(bases []*baseItem, preds []joinPred, ests map[string]*tableEst) []int {
	n := len(bases)
	full := 1<<n - 1
	byAlias := map[string]int{}
	for i, b := range bases {
		byAlias[b.alias] = i
	}
	out := make([]float64, n)
	access := make([]float64, n)
	for i, b := range bases {
		te := ests[b.alias]
		out[i] = te.out
		access[i] = p.accessCost(b, te)
	}
	var edges []dpEdge
	for _, jp := range preds {
		li, lok := byAlias[jp.la]
		ri, rok := byAlias[jp.ra]
		if !lok || !rok || li == ri {
			continue
		}
		edges = append(edges, dpEdge{li: li, ri: ri, sel: joinSel(jp, ests),
			lcol: jp.l.Name, rcol: jp.r.Name})
	}

	// card[S]: product of per-table outputs, discounted by every join
	// predicate internal to S — the independence assumption, floored at
	// one row.
	card := make([]float64, full+1)
	for S := 1; S <= full; S++ {
		c := 1.0
		for i := 0; i < n; i++ {
			if S&(1<<i) != 0 {
				c *= out[i]
			}
		}
		for _, e := range edges {
			if S&(1<<e.li) != 0 && S&(1<<e.ri) != 0 {
				c *= e.sel
			}
		}
		if c < 1 {
			c = 1
		}
		card[S] = c
	}

	cost := make([]float64, full+1)
	last := make([]int, full+1)
	for S := range cost {
		cost[S] = math.Inf(1)
		last[S] = -1
	}
	for i := 0; i < n; i++ {
		cost[1<<i] = access[i]
		last[1<<i] = i
	}
	for S := 3; S <= full; S++ {
		if bits.OnesCount(uint(S)) < 2 {
			continue
		}
		for t := 0; t < n; t++ {
			bit := 1 << t
			if S&bit == 0 {
				continue
			}
			prev := S &^ bit
			if math.IsInf(cost[prev], 1) {
				continue
			}
			step, _ := p.joinStepCost(bases[t], ests[bases[t].alias],
				card[prev], out[t], card[S], dpInnerIndexed(t, prev, edges, bases))
			if total := cost[prev] + step; total < cost[S] {
				cost[S] = total
				last[S] = t
			}
		}
	}

	order := make([]int, 0, n)
	for S := full; S != 0; {
		t := last[S]
		order = append(order, t)
		S &^= 1 << t
	}
	// Reverse: reconstruction walked from the full set down to the
	// starting singleton.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// dpInnerIndexed reports whether relation t, joined as the inner side
// against the subset prev, is structurally eligible for an index
// nested-loop join: some connecting predicate's t-side column carries a
// B+tree index, t has no pushed predicates (those want their own access
// path), and the plan is not running against session views.
func dpInnerIndexed(t, prev int, edges []dpEdge, bases []*baseItem) bool {
	b := bases[t]
	if len(b.push) != 0 {
		return false
	}
	for _, e := range edges {
		var col string
		switch {
		case e.li == t && prev&(1<<e.ri) != 0:
			col = e.lcol
		case e.ri == t && prev&(1<<e.li) != 0:
			col = e.rcol
		default:
			continue
		}
		if b.table.IndexOn(col) != nil {
			return true
		}
	}
	return false
}

// physJoin names the physical join alternatives the cost model
// compares.
type physJoin int

const (
	physHash physJoin = iota
	physINL
	physMerge
)

// joinStepCost returns the cost of joining the accumulated left side
// (leftCard rows) with base table b (outT post-pushdown rows, outCard
// estimated join output), choosing the cheapest eligible algorithm.
// inlOK is the structural index-nested-loop eligibility; Views-gated
// callers pass false. The returned choice is what the cost model would
// pick absent explicit Join/IndexJoin options.
//
// Hash: build the accumulated side, stream b as probe. INL: one B+tree
// descent per accumulated row, no scan of b at all. Merge: scan b, then
// materialize and sort both sides. The accumulated side's production
// cost is paid by the caller's running total, not here.
func (p *Planner) joinStepCost(b *baseItem, te *tableEst, leftCard, outT, outCard float64, inlOK bool) (float64, physJoin) {
	acc := p.accessCost(b, te)
	hash := leftCard*cHashBuildRow + acc + outT*cHashProbeRow + outCard*cOutRow
	best, alg := hash, physHash
	if inlOK && p.Opts.Views == nil {
		inl := leftCard*(cIndexProbeRow+cRowTouch*te.width) + outCard*cOutRow
		if inl < best {
			best, alg = inl, physINL
		}
	}
	merge := cMergeSetup + acc + sortCost(leftCard) + sortCost(outT) +
		(leftCard+outT)*cRowTouch + outCard*cOutRow
	if merge < best {
		best, alg = merge, physMerge
	}
	return best, alg
}

// sortCost is the n·log2(n) in-memory sort estimate.
func sortCost(n float64) float64 {
	if n < 2 {
		return cSortRow
	}
	return cSortRow * n * math.Log2(n)
}
