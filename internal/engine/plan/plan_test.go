package plan

import (
	"strings"
	"testing"

	"repro/internal/engine/catalog"
	"repro/internal/engine/exec"
	"repro/internal/engine/expr"
	"repro/internal/engine/sql"
	"repro/internal/engine/types"
)

// fixture builds: dept(deptID, name), emp(empID, emp_deptID, emp_name).
func fixture(t *testing.T) (*catalog.Catalog, *Planner) {
	t.Helper()
	cat := catalog.New(nil)
	dept, err := cat.CreateTable("dept", []catalog.Column{
		{Name: "deptID", Type: types.KindInt},
		{Name: "dept_name", Type: types.KindString},
	})
	if err != nil {
		t.Fatal(err)
	}
	emp, err := cat.CreateTable("emp", []catalog.Column{
		{Name: "empID", Type: types.KindInt},
		{Name: "emp_deptID", Type: types.KindInt},
		{Name: "emp_name", Type: types.KindString},
	})
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"eng", "sales", "hr"}
	for i := 0; i < 3; i++ {
		dept.Insert([]types.Value{types.NewInt(int64(i)), types.NewString(names[i])})
	}
	for i := 0; i < 60; i++ {
		emp.Insert([]types.Value{
			types.NewInt(int64(i)),
			types.NewInt(int64(i % 3)),
			types.NewString([]string{"ann", "bob", "cat", "dan"}[i%4]),
		})
	}
	if err := cat.RunStatsAll(); err != nil {
		t.Fatal(err)
	}
	return cat, New(cat, expr.NewRegistry())
}

func runQuery(t *testing.T, p *Planner, q string) [][]types.Value {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	op, err := p.Plan(stmt)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	rows, err := exec.Drain(op)
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	return rows
}

func TestPlanSimpleSelect(t *testing.T) {
	_, p := fixture(t)
	rows := runQuery(t, p, `SELECT dept_name FROM dept WHERE deptID = 1`)
	if len(rows) != 1 || rows[0][0].Str() != "sales" {
		t.Errorf("rows = %v", rows)
	}
}

func TestPlanJoin(t *testing.T) {
	_, p := fixture(t)
	rows := runQuery(t, p, `
SELECT emp_name, dept_name FROM emp, dept
WHERE emp_deptID = deptID AND dept_name = 'eng'`)
	if len(rows) != 20 {
		t.Fatalf("got %d rows, want 20", len(rows))
	}
	for _, r := range rows {
		if r[1].Str() != "eng" {
			t.Fatalf("row = %v", r)
		}
	}
}

func TestPlanJoinAlgorithmsAgree(t *testing.T) {
	cat, _ := fixture(t)
	q := `SELECT empID FROM emp, dept WHERE emp_deptID = deptID AND dept_name = 'hr'`
	var counts []int
	for _, alg := range []JoinAlgorithm{JoinHash, JoinMerge, JoinNested} {
		p := &Planner{Cat: cat, Reg: expr.NewRegistry(), Opts: Options{Join: alg}}
		rows := runQuery(t, p, q)
		counts = append(counts, len(rows))
	}
	if counts[0] != 20 || counts[1] != counts[0] || counts[2] != counts[0] {
		t.Errorf("join algorithm row counts disagree: %v", counts)
	}
}

func TestPlanUsesIndexScan(t *testing.T) {
	cat, p := fixture(t)
	if _, err := cat.CreateIndex("emp", "empID"); err != nil {
		t.Fatal(err)
	}
	stmt, _ := sql.Parse(`SELECT emp_name FROM emp WHERE empID = 7`)
	op, err := p.Plan(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Explain(op), "IndexScan") {
		t.Errorf("plan should use the index:\n%s", Explain(op))
	}
	rows, _ := exec.Drain(op)
	if len(rows) != 1 || rows[0][0].Str() != "dan" {
		t.Errorf("rows = %v", rows)
	}
	// Disabled index scan falls back to a sequential scan.
	p.Opts.DisableIndexScan = true
	op, _ = p.Plan(stmt)
	if strings.Contains(Explain(op), "IndexScan") {
		t.Error("index scan should be disabled")
	}
}

func TestPlanPushdown(t *testing.T) {
	_, p := fixture(t)
	stmt, _ := sql.Parse(`SELECT empID FROM emp, dept WHERE emp_deptID = deptID AND emp_name = 'ann'`)
	op, err := p.Plan(stmt)
	if err != nil {
		t.Fatal(err)
	}
	text := Explain(op)
	// The emp_name filter is fused into emp's scan, below the join.
	joinLine := strings.Index(text, "Join")
	filterLine := strings.Index(text, "SeqScan(emp as emp, filter: emp_name = 'ann')")
	if filterLine < 0 || joinLine < 0 || filterLine < joinLine {
		t.Errorf("pushdown missing:\n%s", text)
	}
}

func TestPlanCrossProductWhenDisconnected(t *testing.T) {
	_, p := fixture(t)
	rows := runQuery(t, p, `SELECT empID FROM emp, dept`)
	if len(rows) != 180 {
		t.Errorf("cross product = %d rows, want 180", len(rows))
	}
}

func TestPlanSelfJoin(t *testing.T) {
	_, p := fixture(t)
	rows := runQuery(t, p, `
SELECT a.empID FROM emp a, emp b
WHERE a.empID = b.empID AND b.emp_name = 'ann'`)
	if len(rows) != 15 {
		t.Errorf("self join = %d rows, want 15", len(rows))
	}
}

func TestPlanAggregates(t *testing.T) {
	_, p := fixture(t)
	rows := runQuery(t, p, `
SELECT emp_deptID, COUNT(*) AS n FROM emp GROUP BY emp_deptID ORDER BY emp_deptID`)
	if len(rows) != 3 {
		t.Fatalf("groups = %d", len(rows))
	}
	for i, r := range rows {
		if r[0].Int() != int64(i) || r[1].Int() != 20 {
			t.Errorf("group %d = %v", i, r)
		}
	}
}

func TestPlanCountDistinct(t *testing.T) {
	_, p := fixture(t)
	rows := runQuery(t, p, `SELECT COUNT(DISTINCT emp_name) FROM emp`)
	if len(rows) != 1 || rows[0][0].Int() != 4 {
		t.Errorf("count distinct = %v", rows)
	}
}

func TestPlanDistinctAndOrder(t *testing.T) {
	_, p := fixture(t)
	rows := runQuery(t, p, `SELECT DISTINCT emp_name FROM emp ORDER BY emp_name DESC`)
	if len(rows) != 4 || rows[0][0].Str() != "dan" || rows[3][0].Str() != "ann" {
		t.Errorf("rows = %v", rows)
	}
}

func TestPlanGroupBySelectValidation(t *testing.T) {
	_, p := fixture(t)
	stmt, _ := sql.Parse(`SELECT emp_name, COUNT(*) FROM emp GROUP BY emp_deptID`)
	if _, err := p.Plan(stmt); err == nil {
		t.Error("selecting a non-grouped column should fail")
	}
}

func TestPlanErrors(t *testing.T) {
	_, p := fixture(t)
	cases := []string{
		`SELECT x FROM ghost`,
		`SELECT ghost FROM emp`,
		`SELECT empID FROM emp, emp`,            // duplicate alias
		`SELECT nosuch(empID) FROM emp`,         // unknown function
		`SELECT empID FROM emp WHERE q.x = 1`,   // unknown alias
		`SELECT e.empID FROM TABLE(nofn(1)) tf`, // unknown table function
	}
	for _, q := range cases {
		stmt, err := sql.Parse(q)
		if err != nil {
			continue
		}
		if _, err := p.Plan(stmt); err == nil {
			t.Errorf("Plan(%q) succeeded, want error", q)
		}
	}
}

func TestPlanAmbiguousColumn(t *testing.T) {
	_, p := fixture(t)
	stmt, _ := sql.Parse(`SELECT empID FROM emp a, emp b WHERE empID = 1`)
	if _, err := p.Plan(stmt); err == nil {
		t.Error("ambiguous unqualified column should fail")
	}
}

func TestPlanTableFunction(t *testing.T) {
	cat, p := fixture(t)
	_ = cat
	reg := expr.NewRegistry()
	reg.RegisterTable(&expr.TableFunc{
		Name: "splitName", Cols: []string{"out"}, Types: []types.Kind{types.KindString},
		MinArgs: 1, MaxArgs: 1,
		Fn: func(args []types.Value) ([][]types.Value, error) {
			s := args[0].Str()
			out := make([][]types.Value, len(s))
			for i := range s {
				out[i] = []types.Value{types.NewString(s[i : i+1])}
			}
			return out, nil
		},
	})
	p.Reg = reg
	rows := runQuery(t, p, `
SELECT DISTINCT letters.out AS letter
FROM emp, TABLE(splitName(emp_name)) letters
WHERE emp_name = 'bob'`)
	// "bob" → letters b, o.
	if len(rows) != 2 {
		t.Errorf("letters = %v", rows)
	}
}

func TestPlanPushdownIntoTableFunc(t *testing.T) {
	_, p := fixture(t)
	reg := expr.NewRegistry()
	reg.RegisterTable(&expr.TableFunc{
		Name: "splitName", Cols: []string{"out"}, Types: []types.Kind{types.KindString},
		MinArgs: 1, MaxArgs: 1,
		Fn: func(args []types.Value) ([][]types.Value, error) {
			s := args[0].Str()
			out := make([][]types.Value, len(s))
			for i := range s {
				out[i] = []types.Value{types.NewString(s[i : i+1])}
			}
			return out, nil
		},
	})
	p.Reg = reg
	q := `SELECT empID FROM emp, TABLE(splitName(emp_name)) letters WHERE letters.out = 'b'`
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	op, err := p.Plan(stmt)
	if err != nil {
		t.Fatal(err)
	}
	text := Explain(op)
	if !strings.Contains(text, "TableFuncApply(splitName as letters, filter: letters.out = 'b')") {
		t.Errorf("predicate on the function output should fuse into the apply:\n%s", text)
	}
	rows, err := exec.Drain(op)
	if err != nil {
		t.Fatal(err)
	}

	// Disabling pushdown keeps the predicate in a Filter above the apply
	// and must not change the result.
	p.Opts.DisablePushdown = true
	op2, err := p.Plan(stmt)
	if err != nil {
		t.Fatal(err)
	}
	text2 := Explain(op2)
	if strings.Contains(text2, "filter:") {
		t.Errorf("DisablePushdown plan still fuses predicates:\n%s", text2)
	}
	rows2, err := exec.Drain(op2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(rows2) {
		t.Errorf("pushdown changed row count: %d vs %d", len(rows), len(rows2))
	}
}

func TestCountJoins(t *testing.T) {
	_, p := fixture(t)
	for _, tc := range []struct {
		q    string
		want int
	}{
		{`SELECT empID FROM emp`, 0},
		{`SELECT empID FROM emp, dept WHERE emp_deptID = deptID`, 1},
		{`SELECT a.empID FROM emp a, emp b, dept WHERE a.empID = b.empID AND a.emp_deptID = deptID`, 2},
	} {
		stmt, _ := sql.Parse(tc.q)
		op, err := p.Plan(stmt)
		if err != nil {
			t.Fatalf("%s: %v", tc.q, err)
		}
		if got := CountJoins(op); got != tc.want {
			t.Errorf("CountJoins(%q) = %d, want %d", tc.q, got, tc.want)
		}
	}
}

func TestSmallestTableJoinsFirst(t *testing.T) {
	_, p := fixture(t)
	stmt, _ := sql.Parse(`SELECT empID FROM emp, dept WHERE emp_deptID = deptID`)
	op, err := p.Plan(stmt)
	if err != nil {
		t.Fatal(err)
	}
	text := Explain(op)
	// dept (3 rows) is the build side: its scan appears before emp's.
	di := strings.Index(text, "SeqScan(dept")
	ei := strings.Index(text, "SeqScan(emp")
	if di < 0 || ei < 0 || di > ei {
		t.Errorf("smallest table should lead:\n%s", text)
	}
}

func TestIndexLoopJoin(t *testing.T) {
	cat, p := fixture(t)
	if _, err := cat.CreateIndex("emp", "emp_deptID"); err != nil {
		t.Fatal(err)
	}
	p.Opts.IndexJoin = true
	stmt, _ := sql.Parse(`SELECT emp_name FROM emp, dept WHERE emp_deptID = deptID AND dept_name = 'eng'`)
	op, err := p.Plan(stmt)
	if err != nil {
		t.Fatal(err)
	}
	text := Explain(op)
	if !strings.Contains(text, "IndexLoopJoin") {
		t.Fatalf("expected index loop join:\n%s", text)
	}
	rows, err := exec.Drain(op)
	if err != nil || len(rows) != 20 {
		t.Fatalf("rows = %d, %v", len(rows), err)
	}
	// Results agree with the hash-join plan.
	p.Opts.IndexJoin = false
	hashRows := runQuery(t, p, `SELECT emp_name FROM emp, dept WHERE emp_deptID = deptID AND dept_name = 'eng'`)
	if len(hashRows) != len(rows) {
		t.Errorf("hash join rows = %d, index join rows = %d", len(hashRows), len(rows))
	}
}

func TestIndexLoopJoinSkippedWithoutIndex(t *testing.T) {
	_, p := fixture(t)
	p.Opts.IndexJoin = true
	stmt, _ := sql.Parse(`SELECT emp_name FROM emp, dept WHERE emp_deptID = deptID`)
	op, err := p.Plan(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(Explain(op), "IndexLoopJoin") {
		t.Error("index loop join chosen without an index")
	}
}

func TestIndexLoopJoinSkippedWithPushdown(t *testing.T) {
	cat, p := fixture(t)
	if _, err := cat.CreateIndex("emp", "emp_deptID"); err != nil {
		t.Fatal(err)
	}
	p.Opts.IndexJoin = true
	// emp has a pushed predicate, so it keeps its own access path.
	stmt, _ := sql.Parse(`SELECT emp_name FROM emp, dept WHERE emp_deptID = deptID AND emp_name = 'ann'`)
	op, err := p.Plan(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(Explain(op), "IndexLoopJoin") {
		t.Errorf("index loop join despite pushdown:\n%s", Explain(op))
	}
	rows, err := exec.Drain(op)
	if err != nil || len(rows) != 15 {
		t.Fatalf("rows = %d, %v", len(rows), err)
	}
}

func TestPlanHaving(t *testing.T) {
	_, p := fixture(t)
	rows := runQuery(t, p, `
SELECT emp_name, COUNT(*) AS n FROM emp GROUP BY emp_name HAVING n >= 15 ORDER BY emp_name`)
	// 60 employees over 4 names: ann gets 15, the rest also 15 each.
	if len(rows) != 4 {
		t.Fatalf("groups = %v", rows)
	}
	rows = runQuery(t, p, `
SELECT emp_name, COUNT(*) AS n FROM emp GROUP BY emp_name HAVING n > 15`)
	if len(rows) != 0 {
		t.Errorf("groups over 15 = %v", rows)
	}
}

func TestPlanHavingRequiresAggregation(t *testing.T) {
	_, p := fixture(t)
	stmt, err := sql.Parse(`SELECT empID FROM emp HAVING empID > 3`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Plan(stmt); err == nil {
		t.Error("HAVING without aggregation accepted")
	}
}

func TestPlanLimit(t *testing.T) {
	_, p := fixture(t)
	rows := runQuery(t, p, `SELECT empID FROM emp ORDER BY empID LIMIT 7`)
	if len(rows) != 7 || rows[6][0].Int() != 6 {
		t.Errorf("rows = %v", rows)
	}
	rows = runQuery(t, p, `SELECT empID FROM emp LIMIT 0`)
	if len(rows) != 0 {
		t.Errorf("limit 0 rows = %v", rows)
	}
	// Limit larger than result.
	rows = runQuery(t, p, `SELECT DISTINCT emp_name FROM emp LIMIT 100`)
	if len(rows) != 4 {
		t.Errorf("rows = %v", rows)
	}
}
