package plan

import (
	"fmt"
	"strings"

	"repro/internal/engine/catalog"
	"repro/internal/engine/exec"
	"repro/internal/engine/expr"
	"repro/internal/engine/mvcc"
	"repro/internal/engine/sql"
	"repro/internal/engine/storage"
)

// JoinAlgorithm selects the physical equi-join operator.
type JoinAlgorithm string

// Join algorithms. The paper's DB2 setup had hash joins enabled; merge
// and nested-loop exist for the §4.4 cost-shape ablation.
const (
	JoinHash   JoinAlgorithm = "hash"
	JoinMerge  JoinAlgorithm = "merge"
	JoinNested JoinAlgorithm = "nested"
)

// Options tune the optimizer.
type Options struct {
	// Join picks the equi-join algorithm; empty means hash.
	Join JoinAlgorithm
	// DisableIndexScan forces sequential scans.
	DisableIndexScan bool
	// DisablePushdown keeps all predicates above the joins.
	DisablePushdown bool
	// IndexJoin enables index-nested-loop joins when the inner table has
	// an index on the join column.
	IndexJoin bool
	// DOP is the degree of intra-query parallelism: scan-rooted plan
	// fragments are cloned across up to DOP workers behind a Gather
	// exchange. 0 or 1 plans exactly the serial operator tree
	// (engine.Open defaults DOP to runtime.GOMAXPROCS). Because the
	// exchange reassembles worker output in morsel order, a parallel
	// plan returns rows in exactly the serial order at any DOP.
	DOP int
	// MorselPages is the page count of one parallel-scan morsel; 0 uses
	// storage.DefaultMorselPages. Tables at most one morsel long stay
	// serial.
	MorselPages int
	// CPUs is the processor count the adaptive parallelism gate assumes
	// can run worker pipelines simultaneously; 0 reads
	// runtime.GOMAXPROCS(0). Only the gate's speedup model consults it —
	// when a scan does fragment, DOP still fixes the worker count, and
	// because Gather preserves morsel order the setting affects speed,
	// never results. On a machine with fewer processors than DOP the
	// gate caps the modeled speedup accordingly, so requesting DOP N on
	// a single-CPU host plans serially instead of paying exchange
	// overhead for no gain. Tests pin this to stay machine-independent.
	CPUs int
	// MemBudgetBytes caps the tracked memory of one query's blocking
	// operators (sort buffers, hash-join builds, aggregate group state).
	// Each compiled plan gets its own exec.QueryCtx sharing one
	// MemTracker across all its operators and workers; operators that
	// would exceed the budget spill to run files. 0 means unlimited and
	// plans the exact in-memory operator paths.
	MemBudgetBytes int64
	// SpillVFS is the filesystem spill runs go through; nil means the
	// operating system (storage.OSFS). Tests inject storage.MemVFS or
	// storage.FaultVFS.
	SpillVFS storage.VFS
	// SpillDir is the base directory for per-query spill directories;
	// empty uses a subdirectory of os.TempDir().
	SpillDir string
	// DisableTopN keeps ORDER BY + LIMIT as a full Sort + Limit instead
	// of fusing them into the bounded-heap TopN operator — the seed
	// behaviour, kept for the before/after benchmark and ablations.
	DisableTopN bool
	// DisableVectorized turns batch-at-a-time execution off, planning the
	// row-at-a-time operator paths everywhere. The zero value vectorizes
	// every subtree that supports it (see vectorize.go).
	DisableVectorized bool
	// MinParallelPages gates intra-query parallelism on input size: a
	// scan fragment stays serial when its table has both fewer data pages
	// than this and fewer rows than DefaultMinParallelRows, because the
	// exchange setup then costs more than the scan. 0 uses
	// DefaultMinParallelPages; negative disables the gate (tests and the
	// differential harness force parallel plans on tiny tables).
	MinParallelPages int
	// DisableXADTIndexes turns the XADT fragment-index rewrite off: even
	// when a valid path/keyword index covers a findKeyInElm conjunct, the
	// planner keeps the sequential scan. Used by the differential harness
	// (index-on vs index-off cells) and the index benchmark baselines.
	DisableXADTIndexes bool
	// DisableCostModel turns the statistics-driven cost model off: the
	// greedy join order, rule-based access paths, hash joins, and the
	// fixed page/row parallelism thresholds — exactly the
	// pre-statistics planner, kept for ablations and as the optimizer
	// benchmark baseline. The zero value plans with the cost model.
	DisableCostModel bool
	// DisableAutoStats stops the planner from refreshing statistics
	// that drifted past catalog.DefaultStaleRatio before planning; the
	// estimator then falls back to defaults until an explicit RunStats.
	DisableAutoStats bool
	// Views, when set, plans every table access against the provider's
	// materialized snapshot view instead of the raw heap — the MVCC
	// session path. Access paths that walk shared physical structures at
	// execution time (fragment-index probes, index nested loops, morsel
	// parallelism, vectorized page decoding) are disabled; scans iterate
	// the view, and B+tree equality accesses filter it per snapshot.
	Views ViewProvider
}

// ViewProvider supplies per-snapshot table views; implemented by the
// engine's Session.
type ViewProvider interface {
	TableView(table string) (*mvcc.View, error)
}

// Planner compiles SELECT statements against a catalog and function
// registry.
type Planner struct {
	Cat  *catalog.Catalog
	Reg  *expr.Registry
	Opts Options
	// Spill accumulates spill statistics across every query this planner
	// compiles; engine.Open points it at the database's sink. May be nil.
	Spill *exec.SpillSink
}

// New returns a planner with default options.
func New(cat *catalog.Catalog, reg *expr.Registry) *Planner {
	return &Planner{Cat: cat, Reg: reg}
}

// baseItem is one base-table FROM entry.
type baseItem struct {
	alias  string
	table  *catalog.Table
	schema *expr.RowSchema
	push   []sql.Expr // single-alias conjuncts pushed to this table
	est    float64    // estimated output cardinality after pushdown
}

// funcItem is one TABLE(f(...)) FROM entry.
type funcItem struct {
	alias  string
	fn     *expr.TableFunc
	call   *sql.TableFuncCall
	schema *expr.RowSchema
}

// Plan compiles a statement into an executable operator tree.
func (p *Planner) Plan(stmt *sql.SelectStmt) (exec.Operator, error) {
	op, _, err := p.PlanSummary(stmt)
	return op, err
}

// PlanSummary compiles a statement and additionally reports the
// optimizer's cost decisions. The summary is a fresh value per call —
// the planner holds no mutable state, so engine sessions can share
// planner copies without races.
func (p *Planner) PlanSummary(stmt *sql.SelectStmt) (exec.Operator, *CostSummary, error) {
	if len(stmt.From) == 0 {
		return nil, nil, fmt.Errorf("plan: FROM list is empty")
	}
	bases, funcs, schemas, err := p.analyzeFrom(stmt)
	if err != nil {
		return nil, nil, err
	}
	sum := &CostSummary{}

	// Auto-refresh: statistics that drifted past the staleness ratio are
	// recomputed before estimation, so sustained DML cannot starve the
	// cost model indefinitely. Skipped under MVCC views (RunStats needs
	// the exclusive path there) and when stats were never collected —
	// analyzing is an explicit choice.
	if !p.Opts.DisableCostModel && !p.Opts.DisableAutoStats && p.Opts.Views == nil {
		for _, b := range bases {
			if err := p.Cat.MaybeRefreshStats(b.table.Schema.Table); err != nil {
				return nil, nil, err
			}
		}
	}

	// One QueryCtx per compiled plan: all blocking operators of this
	// query share one MemTracker and one spill directory, so the budget
	// is per query, not per operator, and worker-safe under DOP > 1.
	var qctx *exec.QueryCtx
	if p.Opts.MemBudgetBytes > 0 {
		qctx = exec.NewQueryCtx(p.Opts.MemBudgetBytes, p.Opts.SpillVFS, p.Opts.SpillDir, p.Spill)
	}

	// Classify WHERE conjuncts.
	var joinPreds []joinPred // two-alias equi predicates between base tables
	var residual []sql.Expr  // everything else evaluated above the joins
	if stmt.Where != nil {
		for _, conj := range splitConjuncts(stmt.Where) {
			aliases, err := refAliases(conj, schemas)
			if err != nil {
				return nil, nil, err
			}
			switch {
			case len(aliases) == 1 && !p.Opts.DisablePushdown && isBaseAlias(bases, aliases):
				alias := firstKey(aliases)
				b := findBase(bases, alias)
				b.push = append(b.push, conj)
			case len(aliases) == 2 && isBaseAlias(bases, aliases) && isEquiJoin(conj):
				l, r, _ := equiJoinSides(conj)
				la, err := resolveOwner(l, schemas)
				if err != nil {
					return nil, nil, err
				}
				ra, err := resolveOwner(r, schemas)
				if err != nil {
					return nil, nil, err
				}
				joinPreds = append(joinPreds, joinPred{l: l, r: r, la: la, ra: ra})
			default:
				residual = append(residual, conj)
			}
		}
	}
	ests := p.estimate(bases)
	order, strategy := p.chooseJoinOrder(bases, joinPreds, ests)
	sum.Strategy = strategy
	if !p.Opts.DisableCostModel {
		for _, b := range bases {
			if te := ests[b.alias]; te != nil && !te.fresh {
				sum.StaleStats = append(sum.StaleStats, b.alias)
			}
		}
	}

	root, err := p.buildJoinTree(bases, joinPreds, order, ests, qctx, sum)
	if err != nil {
		return nil, nil, err
	}

	// Residual pushdown: attach each residual conjunct at the earliest
	// pipeline position where every alias it references is bound. Filters
	// commute with lateral applies (an apply only appends columns), so a
	// conjunct over base tables runs below the first apply, and a conjunct
	// over a table function's output fuses into that apply's Filter —
	// rejected rows are dropped before the joined row is materialized and
	// before any later apply multiplies them. Column indexes are stable
	// under the move because each apply extends the schema as a suffix.
	boundAliases := map[string]bool{}
	for _, b := range bases {
		boundAliases[b.alias] = true
	}
	if !p.Opts.DisablePushdown {
		ready, rest, err := partitionReady(residual, boundAliases, schemas)
		if err != nil {
			return nil, nil, err
		}
		if len(ready) > 0 {
			pred, err := p.bindConjuncts(ready, root.Schema())
			if err != nil {
				return nil, nil, err
			}
			root = exec.NewFilter(root, pred)
		}
		residual = rest
	}

	// Lateral table functions, in declaration order.
	for _, f := range funcs {
		args := make([]expr.Expr, len(f.call.Args))
		for i, a := range f.call.Args {
			bound, err := p.bind(a, root.Schema())
			if err != nil {
				return nil, nil, err
			}
			args[i] = bound
		}
		apply := exec.NewTableFuncApply(root, f.fn, args, f.alias)
		if !p.Opts.DisablePushdown {
			boundAliases[f.alias] = true
			ready, rest, err := partitionReady(residual, boundAliases, schemas)
			if err != nil {
				return nil, nil, err
			}
			if len(ready) > 0 {
				pred, err := p.bindConjuncts(ready, apply.Schema())
				if err != nil {
					return nil, nil, err
				}
				apply.Filter = pred
			}
			residual = rest
		}
		root = apply
	}

	// Residual predicates not attachable earlier (or all of them when
	// pushdown is disabled).
	if len(residual) > 0 {
		pred, err := p.bindConjuncts(residual, root.Schema())
		if err != nil {
			return nil, nil, err
		}
		root = exec.NewFilter(root, pred)
	}

	// Aggregation and projection.
	root, err = p.buildOutput(stmt, root, qctx)
	if err != nil {
		return nil, nil, err
	}

	// HAVING filters the projected (post-aggregate) rows, so aliases and
	// grouped expressions resolve by output column name.
	if stmt.Having != nil {
		if !stmt.HasAggregates() && len(stmt.GroupBy) == 0 {
			return nil, nil, fmt.Errorf("plan: HAVING requires GROUP BY or aggregates")
		}
		pred, err := p.bind(stmt.Having, root.Schema())
		if err != nil {
			return nil, nil, err
		}
		root = exec.NewFilter(root, pred)
	}

	if stmt.Distinct {
		root = exec.NewDistinct(root)
	}

	limitDone := false
	if len(stmt.OrderBy) > 0 {
		keys := make([]expr.Expr, len(stmt.OrderBy))
		desc := make([]bool, len(stmt.OrderBy))
		for i, o := range stmt.OrderBy {
			bound, err := p.bind(o.Expr, root.Schema())
			if err != nil {
				return nil, nil, err
			}
			keys[i] = bound
			desc[i] = o.Desc
		}
		if stmt.Limit >= 0 && !p.Opts.DisableTopN && !p.topNOverBudget(stmt.Limit, root) {
			// ORDER BY + LIMIT k fuses into a bounded heap: O(k) memory
			// instead of materializing and sorting the whole input. The
			// parallel rewrite additionally pushes a partial TopN below
			// the Gather exchange so each worker retains only k rows.
			root = exec.NewTopN(root, keys, desc, stmt.Limit)
			limitDone = true
		} else {
			// Full sort: either no LIMIT, TopN disabled, or the cost
			// model judged the bounded heap itself too large for the
			// memory budget — the Sort can spill, the heap cannot. TopN
			// is a stable sort plus a cutoff, so the switch is
			// row-identical.
			s := exec.NewSort(root, keys, desc)
			s.Ctx = qctx
			root = s
		}
	}
	if stmt.Limit >= 0 && !limitDone {
		root = exec.NewLimit(root, stmt.Limit)
	}

	// Intra-query parallelism: clone scan-rooted fragments across DOP
	// workers behind a Gather exchange. Order-sensitive operators (Sort,
	// Limit, the aggregate's group ordering) sit above the exchange and
	// consume its order-preserving stream, so no plan shape needs a
	// serial fallback for correctness; DOP <= 1 skips the rewrite and
	// yields the exact serial tree.
	if p.Opts.DOP > 1 && p.Opts.Views == nil {
		root = p.parallelize(root, sum)
	}

	// Batch-at-a-time execution: flip the Vec flag on every subtree that
	// can produce batches. Runs after parallelize so worker pipelines and
	// the exchange vectorize too.
	if !p.Opts.DisableVectorized && p.Opts.Views == nil {
		vectorizeOp(root)
	}
	return root, sum, nil
}

// topNOverBudget reports whether a bounded TopN heap of k rows would
// itself blow the memory budget: the heap cannot spill, while the Sort
// it replaces can. Estimated from the plan's output schema width; with
// no budget (or the cost model off) TopN always wins.
func (p *Planner) topNOverBudget(k int64, root exec.Operator) bool {
	if p.Opts.MemBudgetBytes <= 0 || p.Opts.DisableCostModel {
		return false
	}
	rowBytes := 64 + 32*len(root.Schema().Cols)
	return k*int64(rowBytes) > p.Opts.MemBudgetBytes/2
}

// analyzeFrom resolves FROM items against the catalog and registry.
func (p *Planner) analyzeFrom(stmt *sql.SelectStmt) ([]*baseItem, []*funcItem, map[string]*expr.RowSchema, error) {
	var bases []*baseItem
	var funcs []*funcItem
	schemas := map[string]*expr.RowSchema{}
	for _, f := range stmt.From {
		if _, dup := schemas[f.Alias]; dup {
			return nil, nil, nil, fmt.Errorf("plan: duplicate alias %q in FROM", f.Alias)
		}
		if f.Func != nil {
			fn := p.Reg.Table(f.Func.Name)
			if fn == nil {
				return nil, nil, nil, fmt.Errorf("plan: unknown table function %s", f.Func.Name)
			}
			if len(f.Func.Args) < fn.MinArgs || len(f.Func.Args) > fn.MaxArgs {
				return nil, nil, nil, fmt.Errorf("plan: %s expects %d..%d arguments, got %d",
					fn.Name, fn.MinArgs, fn.MaxArgs, len(f.Func.Args))
			}
			cols := make([]expr.ColInfo, len(fn.Cols))
			for i, name := range fn.Cols {
				cols[i] = expr.ColInfo{Qualifier: f.Alias, Name: name, Type: fn.Types[i]}
			}
			funcs = append(funcs, &funcItem{
				alias: f.Alias, fn: fn, call: f.Func,
				schema: expr.NewRowSchema(cols...),
			})
			schemas[f.Alias] = funcs[len(funcs)-1].schema
			continue
		}
		tbl := p.Cat.Table(f.Table)
		if tbl == nil {
			return nil, nil, nil, fmt.Errorf("plan: unknown table %s", f.Table)
		}
		cols := make([]expr.ColInfo, len(tbl.Schema.Columns))
		for i, c := range tbl.Schema.Columns {
			cols[i] = expr.ColInfo{Qualifier: f.Alias, Name: c.Name, Type: c.Type}
		}
		bases = append(bases, &baseItem{
			alias: f.Alias, table: tbl,
			schema: expr.NewRowSchema(cols...),
		})
		schemas[f.Alias] = bases[len(bases)-1].schema
	}
	if len(bases) == 0 {
		return nil, nil, nil, fmt.Errorf("plan: FROM needs at least one base table")
	}
	return bases, funcs, schemas, nil
}

// access builds the access path for one base table: an index scan when an
// indexed equality predicate exists, a sequential scan otherwise, with
// remaining pushed predicates applied as a filter.
func (p *Planner) access(b *baseItem) (exec.Operator, error) {
	var op exec.Operator
	remaining := b.push
	// Under a session snapshot, materialize the table's view once; both
	// scan shapes below iterate it instead of the heap. Fragment-index
	// probes are skipped entirely — their RID sets are computed against
	// the live index at plan time, which a snapshot cannot trust.
	var view *mvcc.View
	if p.Opts.Views != nil {
		v, err := p.Opts.Views.TableView(b.table.Schema.Table)
		if err != nil {
			return nil, err
		}
		view = v
	}
	// A covering fragment index on a findKeyInElm conjunct wins over a
	// B+tree equality: the workload's equality columns (parentCODE and the
	// like) select large fractions of the table, while a keyword/path probe
	// is sharp — and the fragment scan re-verifies every pushed conjunct,
	// equalities included, so precedence never affects results.
	if !p.Opts.DisableXADTIndexes && p.Opts.Views == nil {
		frag, err := p.xadtIndexAccess(b)
		if err != nil {
			return nil, err
		}
		if frag != nil {
			if fs, ok := frag.(*exec.IndexedFragScan); ok {
				fs.Est = b.est
			}
			return frag, nil
		}
	}
	if !p.Opts.DisableIndexScan {
		for i, conj := range b.push {
			ref, val, ok := constEquality(conj)
			if !ok {
				continue
			}
			idx := b.table.IndexOn(ref.Name)
			if idx == nil {
				continue
			}
			iscan := exec.NewIndexScan(b.table, b.alias, idx, val)
			iscan.View = view
			iscan.Est = b.est
			op = iscan
			remaining = append(append([]sql.Expr(nil), b.push[:i]...), b.push[i+1:]...)
			break
		}
	}
	if op == nil {
		scan := exec.NewSeqScan(b.table, b.alias)
		scan.View = view
		scan.Est = b.est
		if len(remaining) > 0 {
			// Fuse pushed predicates into the scan itself: rows are
			// rejected at the cursor, and the parallel rewrite carries the
			// predicate into every worker's MorselScan.
			pred, err := p.bindConjuncts(remaining, scan.Schema())
			if err != nil {
				return nil, err
			}
			scan.Pred = pred
			remaining = nil
		}
		op = scan
	}
	if len(remaining) > 0 {
		pred, err := p.bindConjuncts(remaining, op.Schema())
		if err != nil {
			return nil, err
		}
		op = exec.NewFilter(op, pred)
	}
	return op, nil
}

// partitionReady splits conjuncts into those whose referenced aliases
// are all in bound (attachable now) and the rest (attachable later).
func partitionReady(conjs []sql.Expr, bound map[string]bool, schemas map[string]*expr.RowSchema) (ready, rest []sql.Expr, err error) {
	for _, conj := range conjs {
		aliases, err := refAliases(conj, schemas)
		if err != nil {
			return nil, nil, err
		}
		ok := true
		for a := range aliases {
			if !bound[a] {
				ok = false
				break
			}
		}
		if ok {
			ready = append(ready, conj)
		} else {
			rest = append(rest, conj)
		}
	}
	return ready, rest, nil
}

// joinPred is a classified two-alias equi-join conjunct with its sides'
// owning aliases resolved.
type joinPred struct {
	l, r   *sql.ColRef
	la, ra string
}

func (jp joinPred) expr() sql.Expr {
	return &sql.BinOp{Op: "=", L: jp.l, R: jp.r}
}

// buildJoinTree assembles a left-deep join tree following the chosen
// join order, consuming every equi predicate at the first step where
// both its sides are bound. Per join it picks the physical algorithm:
// explicit Join/IndexJoin options force one (the historical
// precedence), otherwise the cost model compares hash, merge, and
// index nested loops — a comparison that reads only statistics, the
// query, and durable store state, so every differential-harness cell
// picks the same algorithm and row order stays cell-invariant.
func (p *Planner) buildJoinTree(bases []*baseItem, joinPreds []joinPred, order []int, ests map[string]*tableEst, qctx *exec.QueryCtx, sum *CostSummary) (exec.Operator, error) {
	costOn := !p.Opts.DisableCostModel
	used := make([]bool, len(joinPreds))
	joined := map[string]bool{}

	first := bases[order[0]]
	cur, err := p.access(first)
	if err != nil {
		return nil, err
	}
	joined[first.alias] = true
	curEst := first.est
	curCost := 0.0
	if te := ests[first.alias]; te != nil {
		curCost = p.accessCost(first, te)
	}
	sum.JoinOrder = append(sum.JoinOrder, first.alias)

	for _, oi := range order[1:] {
		b := bases[oi]
		sum.JoinOrder = append(sum.JoinOrder, b.alias)

		// Collect the applicable predicates: one side owned by b, the
		// other already joined.
		combined := expr.Concat(cur.Schema(), b.schema)
		var keyL, keyR expr.Expr
		var innerCol string // b-side column of the first key
		var extra []expr.Expr
		predSel := 1.0
		for i, jp := range joinPreds {
			if used[i] {
				continue
			}
			var oldRef, newRef *sql.ColRef
			switch {
			case joined[jp.la] && jp.ra == b.alias:
				oldRef, newRef = jp.l, jp.r
			case jp.la == b.alias && joined[jp.ra]:
				oldRef, newRef = jp.r, jp.l
			default:
				continue
			}
			used[i] = true
			predSel *= joinSel(jp, ests)
			boundOld, err := p.bind(oldRef, combined)
			if err != nil {
				return nil, err
			}
			boundNew, err := p.bind(newRef, combined)
			if err != nil {
				return nil, err
			}
			if keyL == nil {
				keyL, keyR = boundOld, boundNew
				innerCol = newRef.Name
			} else {
				extra = append(extra, &expr.Cmp{Op: expr.EQ, L: boundOld, R: boundNew})
			}
		}

		outCard := curEst * b.est
		if keyL != nil {
			outCard *= predSel
		}
		if outCard < 1 {
			outCard = 1
		}
		te := ests[b.alias]

		// Index nested loops: structurally eligible when the inner table
		// has an index on the join column and no pushed predicate wants
		// its own access path. Opts.IndexJoin forces it (the historical
		// behaviour); otherwise the cost model may still pick it.
		inlOK := keyL != nil && len(b.push) == 0 && p.Opts.Views == nil &&
			b.table.IndexOn(innerCol) != nil
		useINL := inlOK && p.Opts.IndexJoin
		alg := p.Opts.Join
		if !useINL && costOn && alg == "" && keyL != nil && te != nil {
			step, phys := p.joinStepCost(b, te, curEst, b.est, outCard, inlOK)
			curCost += step
			switch phys {
			case physINL:
				useINL = true
			case physMerge:
				alg = JoinMerge
			}
		} else if te != nil {
			step, _ := p.joinStepCost(b, te, curEst, b.est, outCard, false)
			curCost += step
		}

		if useINL {
			idx := b.table.IndexOn(innerCol)
			ilj := exec.NewIndexLoopJoin(cur, b.table, b.alias, idx, keyL)
			ilj.Est = outCard
			cur = ilj
			for _, e := range extra {
				cur = exec.NewFilter(cur, e)
			}
			joined[b.alias] = true
			curEst = outCard
			continue
		}

		right, err := p.access(b)
		if err != nil {
			return nil, err
		}
		switch {
		case keyL == nil:
			nlj := exec.NewNestedLoopJoin(cur, right, nil)
			nlj.Est = outCard
			cur = nlj
		case alg == JoinMerge:
			mj := exec.NewMergeJoin(cur, right, keyL, keyR)
			mj.Est = outCard
			cur = mj
		case alg == JoinNested:
			nlj := exec.NewNestedLoopJoin(cur, right, &expr.Cmp{Op: expr.EQ, L: keyL, R: keyR})
			nlj.Est = outCard
			cur = nlj
		default:
			hj := exec.NewHashJoin(cur, right, keyL, keyR)
			hj.Ctx = qctx
			hj.Est = outCard
			cur = hj
		}
		for _, e := range extra {
			cur = exec.NewFilter(cur, e)
		}
		joined[b.alias] = true
		curEst = outCard
	}

	// Any join predicates never consumed (e.g. self predicates within one
	// alias when pushdown is disabled) become filters.
	for i, jp := range joinPreds {
		if used[i] {
			continue
		}
		bound, err := p.bind(jp.expr(), cur.Schema())
		if err != nil {
			return nil, err
		}
		cur = exec.NewFilter(cur, bound)
	}
	sum.EstRows = curEst
	sum.Cost = curCost
	return cur, nil
}

// buildOutput adds aggregation and projection.
func (p *Planner) buildOutput(stmt *sql.SelectStmt, input exec.Operator, qctx *exec.QueryCtx) (exec.Operator, error) {
	if !stmt.HasAggregates() && len(stmt.GroupBy) == 0 {
		exprs := make([]expr.Expr, len(stmt.Items))
		names := make([]string, len(stmt.Items))
		for i, item := range stmt.Items {
			bound, err := p.bind(item.Expr, input.Schema())
			if err != nil {
				return nil, err
			}
			exprs[i] = bound
			names[i] = outputName(item, i)
		}
		return exec.NewProject(input, exprs, names), nil
	}

	// Aggregation: group expressions first.
	groupExprs := make([]expr.Expr, len(stmt.GroupBy))
	groupNames := make([]string, len(stmt.GroupBy))
	for i, g := range stmt.GroupBy {
		bound, err := p.bind(g, input.Schema())
		if err != nil {
			return nil, err
		}
		groupExprs[i] = bound
		if ref, ok := g.(*sql.ColRef); ok {
			groupNames[i] = ref.Name
		} else {
			groupNames[i] = g.String()
		}
	}
	var aggs []exec.AggSpec
	aggPos := map[int]int{} // select item index → agg index
	for i, item := range stmt.Items {
		if item.Agg == sql.AggNone {
			continue
		}
		spec := exec.AggSpec{Distinct: item.AggDistinct, Name: outputName(item, i)}
		switch item.Agg {
		case sql.AggCount:
			spec.Kind = exec.AggCount
		case sql.AggSum:
			spec.Kind = exec.AggSum
		case sql.AggMin:
			spec.Kind = exec.AggMin
		case sql.AggMax:
			spec.Kind = exec.AggMax
		}
		if !item.Star {
			bound, err := p.bind(item.Expr, input.Schema())
			if err != nil {
				return nil, err
			}
			spec.Arg = bound
		}
		aggPos[i] = len(aggs)
		aggs = append(aggs, spec)
	}
	agg := exec.NewHashAggregate(input, groupExprs, groupNames, aggs)
	agg.Ctx = qctx

	// Map select items onto the aggregate's output columns.
	exprs := make([]expr.Expr, len(stmt.Items))
	names := make([]string, len(stmt.Items))
	for i, item := range stmt.Items {
		names[i] = outputName(item, i)
		if ai, ok := aggPos[i]; ok {
			exprs[i] = &expr.Col{Idx: len(groupExprs) + ai, Name: names[i]}
			continue
		}
		// A non-aggregate select item must match a GROUP BY expression:
		// syntactically, or by column name for references.
		gi := -1
		for j, g := range stmt.GroupBy {
			if g.String() == item.Expr.String() {
				gi = j
				break
			}
			ref, rok := item.Expr.(*sql.ColRef)
			gref, gok := g.(*sql.ColRef)
			if rok && gok && gref.Name == ref.Name &&
				(ref.Qualifier == "" || gref.Qualifier == "" || ref.Qualifier == gref.Qualifier) {
				gi = j
				break
			}
		}
		if gi < 0 {
			return nil, fmt.Errorf("plan: select item %q is not in GROUP BY", item.Expr)
		}
		exprs[i] = &expr.Col{Idx: gi, Name: names[i]}
	}
	return exec.NewProject(agg, exprs, names), nil
}

// bindConjuncts binds a conjunct list and ANDs it together.
func (p *Planner) bindConjuncts(conjs []sql.Expr, schema *expr.RowSchema) (expr.Expr, error) {
	var out expr.Expr
	for _, c := range conjs {
		bound, err := p.bind(c, schema)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = bound
		} else {
			out = &expr.And{L: out, R: bound}
		}
	}
	return out, nil
}

// outputName derives the output column name of a select item.
func outputName(item sql.SelectItem, pos int) string {
	if item.Alias != "" {
		return item.Alias
	}
	if item.Agg != sql.AggNone {
		name := strings.ToLower(item.Agg.String())
		if item.Star {
			return name
		}
		if ref, ok := item.Expr.(*sql.ColRef); ok {
			return name + "_" + ref.Name
		}
		return fmt.Sprintf("%s_%d", name, pos+1)
	}
	if ref, ok := item.Expr.(*sql.ColRef); ok {
		return ref.Name
	}
	return fmt.Sprintf("col_%d", pos+1)
}

// resolveOwner resolves which FROM alias a column reference belongs to.
func resolveOwner(ref *sql.ColRef, schemas map[string]*expr.RowSchema) (string, error) {
	if ref.Qualifier != "" {
		if _, ok := schemas[ref.Qualifier]; !ok {
			return "", fmt.Errorf("plan: unknown table alias %q", ref.Qualifier)
		}
		return ref.Qualifier, nil
	}
	owner := ""
	for alias, s := range schemas {
		if _, err := s.Resolve(alias, ref.Name); err == nil {
			if owner != "" {
				return "", fmt.Errorf("plan: ambiguous column %q", ref.Name)
			}
			owner = alias
		}
	}
	if owner == "" {
		return "", fmt.Errorf("plan: unknown column %q", ref.Name)
	}
	return owner, nil
}

func isEquiJoin(e sql.Expr) bool {
	_, _, ok := equiJoinSides(e)
	return ok
}

func isBaseAlias(bases []*baseItem, aliases map[string]bool) bool {
	for a := range aliases {
		if findBase(bases, a) == nil {
			return false
		}
	}
	return true
}

func findBase(bases []*baseItem, alias string) *baseItem {
	for _, b := range bases {
		if b.alias == alias {
			return b
		}
	}
	return nil
}

func firstKey(m map[string]bool) string {
	for k := range m {
		return k
	}
	return ""
}

// connected reports whether alias has an unused equi edge into the joined
// set.
func connected(alias string, joined map[string]bool, preds []joinPred, used []bool) bool {
	for i, jp := range preds {
		if used[i] {
			continue
		}
		if (jp.la == alias && joined[jp.ra]) || (jp.ra == alias && joined[jp.la]) {
			return true
		}
	}
	return false
}

// vecSuffix marks a vectorized operator in Explain output.
func vecSuffix(vec bool) string {
	if vec {
		return " [vec]"
	}
	return ""
}

// estSuffix renders an operator's estimated cardinality. Appended after
// the operator's own rendering so substring assertions on the operator
// text keep matching; zero (no estimate — e.g. DisableCostModel never
// annotates joins) renders nothing.
func estSuffix(est float64) string {
	if est <= 0 {
		return ""
	}
	return fmt.Sprintf(" est=%.0f", est)
}

// Explain renders a physical plan tree for diagnostics and tests.
func Explain(op exec.Operator) string {
	var sb strings.Builder
	explain(&sb, op, 0)
	return sb.String()
}

func explain(sb *strings.Builder, op exec.Operator, depth int) {
	indent := strings.Repeat("  ", depth)
	switch n := op.(type) {
	case *exec.SeqScan:
		fmt.Fprintf(sb, "%s%s%s\n", indent, n, estSuffix(n.Est))
	case *exec.IndexScan:
		fmt.Fprintf(sb, "%s%s%s\n", indent, n, estSuffix(n.Est))
	case *exec.IndexedFragScan:
		fmt.Fprintf(sb, "%s%s%s\n", indent, n, estSuffix(n.Est))
	case *exec.ValuesScan:
		fmt.Fprintf(sb, "%sValuesScan(%d rows)\n", indent, len(n.Rows))
	case *exec.Filter:
		fmt.Fprintf(sb, "%sFilter(%s)%s\n", indent, n.Pred, vecSuffix(n.Vec))
		explain(sb, n.Child, depth+1)
	case *exec.Project:
		fmt.Fprintf(sb, "%sProject(%s)%s\n", indent, strings.Join(n.Schema().Names(), ", "), vecSuffix(n.Vec))
		explain(sb, n.Child, depth+1)
	case *exec.HashJoin:
		fmt.Fprintf(sb, "%sHashJoin(%s = %s)%s\n", indent, n.LeftKey, n.RightKey, estSuffix(n.Est))
		explain(sb, n.Left, depth+1)
		explain(sb, n.Right, depth+1)
	case *exec.MergeJoin:
		fmt.Fprintf(sb, "%sMergeJoin(%s = %s)%s\n", indent, n.LeftKey, n.RightKey, estSuffix(n.Est))
		explain(sb, n.Left, depth+1)
		explain(sb, n.Right, depth+1)
	case *exec.NestedLoopJoin:
		if n.Pred == nil {
			fmt.Fprintf(sb, "%sCrossProduct%s\n", indent, estSuffix(n.Est))
		} else {
			fmt.Fprintf(sb, "%sNestedLoopJoin(%s)%s\n", indent, n.Pred, estSuffix(n.Est))
		}
		explain(sb, n.Left, depth+1)
		explain(sb, n.Right, depth+1)
	case *exec.IndexLoopJoin:
		fmt.Fprintf(sb, "%s%s%s\n", indent, n, estSuffix(n.Est))
		explain(sb, n.Left, depth+1)
	case *exec.TableFuncApply:
		if n.Filter != nil {
			fmt.Fprintf(sb, "%sTableFuncApply(%s as %s, filter: %s)\n", indent, n.Func.Name, n.Alias, n.Filter)
		} else {
			fmt.Fprintf(sb, "%sTableFuncApply(%s as %s)\n", indent, n.Func.Name, n.Alias)
		}
		explain(sb, n.Child, depth+1)
	case *exec.HashAggregate:
		fmt.Fprintf(sb, "%sHashAggregate(%d groups keys, %d aggs)%s\n", indent, len(n.GroupBy), len(n.Aggs), vecSuffix(n.Vec))
		explain(sb, n.Child, depth+1)
	case *exec.Sort:
		fmt.Fprintf(sb, "%sSort\n", indent)
		explain(sb, n.Child, depth+1)
	case *exec.TopN:
		fmt.Fprintf(sb, "%s%s\n", indent, n)
		explain(sb, n.Child, depth+1)
	case *exec.Distinct:
		fmt.Fprintf(sb, "%sDistinct\n", indent)
		explain(sb, n.Child, depth+1)
	case *exec.Limit:
		fmt.Fprintf(sb, "%sLimit(%d)%s\n", indent, n.N, vecSuffix(n.Vec))
		explain(sb, n.Child, depth+1)
	case *exec.Gather:
		// All pipelines are clones; show the first as representative.
		fmt.Fprintf(sb, "%s%s\n", indent, n)
		explain(sb, n.Pipes[0].Root, depth+1)
	case *exec.MorselScan:
		fmt.Fprintf(sb, "%s%s%s\n", indent, n, estSuffix(n.Est))
	case *exec.HashProbe:
		fmt.Fprintf(sb, "%s%s\n", indent, n)
		fmt.Fprintf(sb, "%s  HashBuild\n", indent)
		explain(sb, n.Build.Input, depth+2)
		explain(sb, n.Right, depth+1)
	default:
		fmt.Fprintf(sb, "%s%T\n", indent, op)
	}
}

// CountJoins returns the number of join operators in a plan — the metric
// the paper's analysis centers on ("queries usually have fewer joins").
func CountJoins(op exec.Operator) int {
	switch n := op.(type) {
	case *exec.Filter:
		return CountJoins(n.Child)
	case *exec.Project:
		return CountJoins(n.Child)
	case *exec.HashJoin:
		return 1 + CountJoins(n.Left) + CountJoins(n.Right)
	case *exec.MergeJoin:
		return 1 + CountJoins(n.Left) + CountJoins(n.Right)
	case *exec.NestedLoopJoin:
		return 1 + CountJoins(n.Left) + CountJoins(n.Right)
	case *exec.IndexLoopJoin:
		return 1 + CountJoins(n.Left)
	case *exec.TableFuncApply:
		return CountJoins(n.Child)
	case *exec.HashAggregate:
		return CountJoins(n.Child)
	case *exec.Sort:
		return CountJoins(n.Child)
	case *exec.TopN:
		return CountJoins(n.Child)
	case *exec.Distinct:
		return CountJoins(n.Child)
	case *exec.Limit:
		return CountJoins(n.Child)
	case *exec.Gather:
		return CountJoins(n.Pipes[0].Root)
	case *exec.HashProbe:
		return 1 + CountJoins(n.Build.Input) + CountJoins(n.Right)
	default:
		return 0
	}
}
