package plan

import "repro/internal/engine/exec"

// vectorizeOp is the planner's vectorize pass: a bottom-up walk that
// flips the Vec flag on every operator whose subtree can run
// batch-at-a-time, and reports whether op itself now produces batches.
//
// Scans are the batch sources; Filter, Project, and Limit forward their
// child's capability; HashAggregate consumes batches (when its child
// produces them and it has no spill context) but emits rows; Gather
// forwards batches only when every worker pipeline is batch-capable.
// Row-only operators — joins, sorts, distinct, the lateral apply, every
// spill path — keep their row implementations and read vectorized
// children through the batch→row shim, so no plan shape changes.
func vectorizeOp(op exec.Operator) bool {
	switch n := op.(type) {
	case *exec.SeqScan:
		n.Vec = true
		return true
	case *exec.MorselScan:
		n.Vec = true
		return true
	case *exec.ValuesScan:
		n.Vec = true
		return true
	case *exec.Filter:
		n.Vec = vectorizeOp(n.Child)
		return n.Vec
	case *exec.Project:
		n.Vec = vectorizeOp(n.Child)
		return n.Vec
	case *exec.Limit:
		n.Vec = vectorizeOp(n.Child)
		return n.Vec
	case *exec.HashAggregate:
		// Batch consumption, row production. The spill path stays
		// row-at-a-time: its frozen-group/partition bookkeeping is
		// per-row, so only the unbounded in-memory path vectorizes.
		n.Vec = vectorizeOp(n.Child) && n.Ctx == nil
		return false
	case *exec.Gather:
		all := true
		for i := range n.Pipes {
			if !vectorizeOp(n.Pipes[i].Root) {
				all = false
			}
		}
		n.Vec = all
		return all
	case *exec.Sort:
		vectorizeOp(n.Child)
		return false
	case *exec.TopN:
		vectorizeOp(n.Child)
		return false
	case *exec.Distinct:
		vectorizeOp(n.Child)
		return false
	case *exec.TableFuncApply:
		vectorizeOp(n.Child)
		return false
	case *exec.HashJoin:
		vectorizeOp(n.Left)
		vectorizeOp(n.Right)
		return false
	case *exec.MergeJoin:
		vectorizeOp(n.Left)
		vectorizeOp(n.Right)
		return false
	case *exec.NestedLoopJoin:
		vectorizeOp(n.Left)
		vectorizeOp(n.Right)
		return false
	case *exec.IndexLoopJoin:
		vectorizeOp(n.Left)
		return false
	case *exec.HashProbe:
		vectorizeOp(n.Build.Input)
		vectorizeOp(n.Right)
		return false
	}
	return false
}
