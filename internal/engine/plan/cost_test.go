package plan

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/engine/catalog"
	"repro/internal/engine/exec"
	"repro/internal/engine/expr"
	"repro/internal/engine/sql"
	"repro/internal/engine/types"
)

var update = flag.Bool("update", false, "rewrite golden files")

// chainFixture builds the a–b–c chain the greedy order loses on: a is
// the smallest table but joins b over a 4-value key (a⋈b explodes),
// while b⋈c is 1:1 over a unique key. Greedy starts at a and pays the
// explosion; the DP enumeration joins b⋈c first.
func chainFixture(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New(nil)
	mk := func(name string, cols []string, rows int, gen func(i int) []types.Value) {
		t.Helper()
		specs := make([]catalog.Column, len(cols))
		for i, c := range cols {
			specs[i] = catalog.Column{Name: c, Type: types.KindInt}
		}
		tbl, err := cat.CreateTable(name, specs)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < rows; i++ {
			if err := tbl.Insert(gen(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	mk("a", []string{"a_id", "a_ab"}, 20, func(i int) []types.Value {
		return []types.Value{types.NewInt(int64(i)), types.NewInt(int64(i % 4))}
	})
	mk("b", []string{"b_id", "b_ab", "b_bc"}, 400, func(i int) []types.Value {
		return []types.Value{types.NewInt(int64(i)), types.NewInt(int64(i % 4)), types.NewInt(int64(i))}
	})
	mk("c", []string{"c_id", "c_bc"}, 400, func(i int) []types.Value {
		return []types.Value{types.NewInt(int64(i)), types.NewInt(int64(i))}
	})
	if err := cat.RunStatsAll(); err != nil {
		t.Fatal(err)
	}
	return cat
}

const chainQuery = `SELECT COUNT(*) FROM a, b, c WHERE a_ab = b_ab AND b_bc = c_bc`

// TestDPJoinOrderAvoidsExplodingIntermediate is the join-ordering
// regression test: the greedy order starts at the smallest table (a)
// and materializes the a⋈b explosion; the DP enumeration must instead
// join the selective b⋈c edge first, and both orders must return the
// same rows.
func TestDPJoinOrderAvoidsExplodingIntermediate(t *testing.T) {
	cat := chainFixture(t)
	stmt, err := sql.Parse(chainQuery)
	if err != nil {
		t.Fatal(err)
	}

	greedyP := &Planner{Cat: cat, Reg: expr.NewRegistry(), Opts: Options{DisableCostModel: true}}
	gOp, gSum, err := greedyP.PlanSummary(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if gSum.Strategy != "greedy" {
		t.Errorf("DisableCostModel strategy = %q, want greedy", gSum.Strategy)
	}
	if len(gSum.JoinOrder) != 3 || gSum.JoinOrder[0] != "a" {
		t.Errorf("greedy order = %v, want to start at the smallest table a", gSum.JoinOrder)
	}

	costP := &Planner{Cat: cat, Reg: expr.NewRegistry()}
	cOp, cSum, err := costP.PlanSummary(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if cSum.Strategy != "dp" {
		t.Errorf("cost-model strategy = %q, want dp", cSum.Strategy)
	}
	if len(cSum.JoinOrder) != 3 || cSum.JoinOrder[0] == "a" {
		t.Errorf("dp order = %v, want the selective b/c edge first", cSum.JoinOrder)
	}

	want, err := exec.Drain(gOp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := exec.Drain(cOp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("dp rows differ from greedy rows: %v vs %v", got, want)
	}
}

// TestStaleStatsFallbackAfterDML pins the staleness contract: once DML
// drifts a table past catalog.DefaultStaleRatio, a planner with
// DisableAutoStats must distrust its statistics (reporting the table in
// StaleStats and estimating from defaults), while the default planner
// auto-refreshes before estimating and trusts them again.
func TestStaleStatsFallbackAfterDML(t *testing.T) {
	cat := chainFixture(t)
	stmt, err := sql.Parse(chainQuery)
	if err != nil {
		t.Fatal(err)
	}
	fresh := &Planner{Cat: cat, Reg: expr.NewRegistry(), Opts: Options{DisableAutoStats: true}}
	if _, sum, err := fresh.PlanSummary(stmt); err != nil {
		t.Fatal(err)
	} else if len(sum.StaleStats) != 0 {
		t.Fatalf("freshly analyzed tables reported stale: %v", sum.StaleStats)
	}

	// Push b past the staleness ratio without touching its contents.
	b := cat.Table("b")
	b.AdvanceMods(int64(float64(b.Rows())*catalog.DefaultStaleRatio) + 1)

	noAuto := &Planner{Cat: cat, Reg: expr.NewRegistry(), Opts: Options{DisableAutoStats: true}}
	if _, sum, err := noAuto.PlanSummary(stmt); err != nil {
		t.Fatal(err)
	} else {
		found := false
		for _, alias := range sum.StaleStats {
			if alias == "b" {
				found = true
			}
		}
		if !found {
			t.Fatalf("drifted table b not in StaleStats: %v", sum.StaleStats)
		}
	}
	if snap := b.StatsSnapshot(); snap.Fresh() {
		t.Fatal("snapshot still fresh after drift")
	}

	// The default planner refreshes the drifted table before estimating.
	auto := &Planner{Cat: cat, Reg: expr.NewRegistry()}
	if _, sum, err := auto.PlanSummary(stmt); err != nil {
		t.Fatal(err)
	} else if len(sum.StaleStats) != 0 {
		t.Fatalf("auto-refresh left stale tables: %v", sum.StaleStats)
	}
	if snap := b.StatsSnapshot(); !snap.Fresh() {
		t.Fatal("auto-refresh did not restore fresh statistics")
	}
}

// TestExplainEstGolden pins the EXPLAIN text — operator shapes and the
// est= cardinality annotations — for a fixed fixture and query set. Any
// estimator or join-order change shows up as a golden diff. Refresh
// with go test ./internal/engine/plan/ -run ExplainEstGolden -update.
func TestExplainEstGolden(t *testing.T) {
	cat := chainFixture(t)
	queries := []string{
		`SELECT a_id FROM a WHERE a_ab = 2`,
		`SELECT b_id FROM b WHERE b_bc < 100`,
		`SELECT a_id, b_id FROM a, b WHERE a_ab = b_ab`,
		chainQuery,
	}
	var sb strings.Builder
	p := &Planner{Cat: cat, Reg: expr.NewRegistry()}
	for _, q := range queries {
		op := planFor(t, p, q)
		sb.WriteString("-- " + q + "\n")
		sb.WriteString(Explain(op))
		sb.WriteString("\n")
	}
	got := sb.String()
	path := filepath.Join("testdata", "explain_est.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if string(want) != got {
		t.Errorf("EXPLAIN drifted from %s (rerun with -update if intended)\ngot:\n%s", path, got)
	}
	if !strings.Contains(got, "est=") {
		t.Error("no est= annotations in cost-model EXPLAIN output")
	}
}
