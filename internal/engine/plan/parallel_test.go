package plan

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/engine/catalog"
	"repro/internal/engine/exec"
	"repro/internal/engine/expr"
	"repro/internal/engine/sql"
	"repro/internal/engine/types"
)

// bigFixture builds fact(id, grp, val) with enough pages to morselize
// and dim(grpID, label) to join against.
func bigFixture(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New(nil)
	fact, err := cat.CreateTable("fact", []catalog.Column{
		{Name: "id", Type: types.KindInt},
		{Name: "grp", Type: types.KindInt},
		{Name: "val", Type: types.KindInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		fact.Insert([]types.Value{
			types.NewInt(int64(i)),
			types.NewInt(int64(i % 7)),
			types.NewInt(int64((i * 37) % 1000)),
		})
	}
	dim, err := cat.CreateTable("dim", []catalog.Column{
		{Name: "grpID", Type: types.KindInt},
		{Name: "label", Type: types.KindString},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		dim.Insert([]types.Value{types.NewInt(int64(i)), types.NewString(strings.Repeat("x", i+1))})
	}
	if err := cat.RunStatsAll(); err != nil {
		t.Fatal(err)
	}
	if fact.Heap.DataPages() < 4 {
		t.Fatalf("fact table too small to morselize: %d pages", fact.Heap.DataPages())
	}
	return cat
}

func planFor(t *testing.T, p *Planner, q string) exec.Operator {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	op, err := p.Plan(stmt)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	return op
}

func TestParallelPlanShape(t *testing.T) {
	cat := bigFixture(t)
	serial := &Planner{Cat: cat, Reg: expr.NewRegistry()}
	par := &Planner{Cat: cat, Reg: expr.NewRegistry(), Opts: Options{DOP: 4, MorselPages: 1, CPUs: 4}}

	q := `SELECT id, val FROM fact WHERE val > 500`
	sText := Explain(planFor(t, serial, q))
	if strings.Contains(sText, "Gather") {
		t.Fatalf("serial plan contains Gather:\n%s", sText)
	}
	pText := Explain(planFor(t, par, q))
	if !strings.Contains(pText, "Gather(dop=4)") || !strings.Contains(pText, "MorselScan") {
		t.Fatalf("parallel plan missing Gather/MorselScan:\n%s", pText)
	}
	// The filter must run inside the workers, fused into each MorselScan
	// below the exchange.
	fused := strings.Index(pText, "MorselScan(fact as fact, filter: val > 500)")
	if fused < 0 || strings.Index(pText, "Gather") > fused {
		t.Fatalf("filter not pushed into worker pipelines:\n%s", pText)
	}
}

func TestParallelPlanSmallTableStaysSerial(t *testing.T) {
	cat := bigFixture(t)
	par := &Planner{Cat: cat, Reg: expr.NewRegistry(), Opts: Options{DOP: 4, CPUs: 4}}
	// dim fits in one page: a Gather would only add overhead.
	text := Explain(planFor(t, par, `SELECT label FROM dim`))
	if strings.Contains(text, "Gather") {
		t.Fatalf("single-page table should not be parallelized:\n%s", text)
	}
}

func TestParallelJoinCountMatchesSerial(t *testing.T) {
	cat := bigFixture(t)
	serial := &Planner{Cat: cat, Reg: expr.NewRegistry()}
	par := &Planner{Cat: cat, Reg: expr.NewRegistry(), Opts: Options{DOP: 4, MorselPages: 1, CPUs: 4}}
	q := `SELECT label FROM dim, fact WHERE grpID = grp`
	want := CountJoins(planFor(t, serial, q))
	got := CountJoins(planFor(t, par, q))
	if got != want {
		t.Errorf("parallel plan reports %d joins, serial %d", got, want)
	}
}

func TestParallelResultsIdentical(t *testing.T) {
	cat := bigFixture(t)
	queries := []string{
		`SELECT id, val FROM fact`,
		`SELECT id FROM fact WHERE val > 300`,
		`SELECT id, val FROM fact ORDER BY val, id`,
		`SELECT grp, COUNT(*), SUM(val) FROM fact GROUP BY grp`,
		`SELECT DISTINCT grp FROM fact`,
		`SELECT id FROM fact LIMIT 25`,
		`SELECT label, val FROM dim, fact WHERE grpID = grp`,
		`SELECT label, COUNT(*) FROM dim, fact WHERE grpID = grp GROUP BY label ORDER BY label`,
	}
	serial := &Planner{Cat: cat, Reg: expr.NewRegistry()}
	for _, q := range queries {
		stmt, err := sql.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		want, err := exec.Drain(mustPlan(t, serial, stmt))
		if err != nil {
			t.Fatalf("serial %q: %v", q, err)
		}
		for _, dop := range []int{2, 4} {
			par := &Planner{Cat: cat, Reg: expr.NewRegistry(), Opts: Options{DOP: dop, MorselPages: 1, CPUs: dop}}
			got, err := exec.Drain(mustPlan(t, par, stmt))
			if err != nil {
				t.Fatalf("dop=%d %q: %v", dop, q, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("dop=%d %q: %d rows differ from serial %d rows", dop, q, len(got), len(want))
			}
		}
	}
}

func mustPlan(t *testing.T, p *Planner, stmt *sql.SelectStmt) exec.Operator {
	t.Helper()
	op, err := p.Plan(stmt)
	if err != nil {
		t.Fatal(err)
	}
	return op
}
