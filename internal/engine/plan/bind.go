// Package plan turns parsed SELECT statements into executable operator
// trees: it binds column references and function calls, pushes filters
// down to scans, chooses index scans for indexed equality predicates,
// orders joins by estimated cardinality, and picks join algorithms (hash
// by default, as the paper's DB2 configuration enabled).
package plan

import (
	"fmt"

	"repro/internal/engine/expr"
	"repro/internal/engine/sql"
	"repro/internal/engine/types"
)

// bind converts an unbound sql.Expr into an executable expr.Expr resolved
// against schema.
func (p *Planner) bind(e sql.Expr, schema *expr.RowSchema) (expr.Expr, error) {
	switch n := e.(type) {
	case *sql.ColRef:
		idx, err := schema.Resolve(n.Qualifier, n.Name)
		if err != nil {
			return nil, err
		}
		return &expr.Col{Idx: idx, Name: n.String()}, nil
	case *sql.IntLit:
		return &expr.Const{Val: types.NewInt(n.Val)}, nil
	case *sql.NullLit:
		return &expr.Const{Val: types.Null}, nil
	case *sql.StrLit:
		return &expr.Const{Val: types.NewString(n.Val)}, nil
	case *sql.BinOp:
		l, err := p.bind(n.L, schema)
		if err != nil {
			return nil, err
		}
		r, err := p.bind(n.R, schema)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case "AND":
			return &expr.And{L: l, R: r}, nil
		case "OR":
			return &expr.Or{L: l, R: r}, nil
		case "=":
			return &expr.Cmp{Op: expr.EQ, L: l, R: r}, nil
		case "<>":
			return &expr.Cmp{Op: expr.NE, L: l, R: r}, nil
		case "<":
			return &expr.Cmp{Op: expr.LT, L: l, R: r}, nil
		case "<=":
			return &expr.Cmp{Op: expr.LE, L: l, R: r}, nil
		case ">":
			return &expr.Cmp{Op: expr.GT, L: l, R: r}, nil
		case ">=":
			return &expr.Cmp{Op: expr.GE, L: l, R: r}, nil
		default:
			return nil, fmt.Errorf("plan: unknown operator %q", n.Op)
		}
	case *sql.NotExpr:
		inner, err := p.bind(n.E, schema)
		if err != nil {
			return nil, err
		}
		return &expr.Not{E: inner}, nil
	case *sql.LikeExpr:
		inner, err := p.bind(n.E, schema)
		if err != nil {
			return nil, err
		}
		like := expr.NewLike(inner, n.Pattern)
		if n.Negated {
			return &expr.Not{E: like}, nil
		}
		return like, nil
	case *sql.FuncExpr:
		fn := p.Reg.Scalar(n.Name)
		if fn == nil {
			return nil, fmt.Errorf("plan: unknown function %s", n.Name)
		}
		args := make([]expr.Expr, len(n.Args))
		for i, a := range n.Args {
			bound, err := p.bind(a, schema)
			if err != nil {
				return nil, err
			}
			args[i] = bound
		}
		return expr.NewCall(p.Reg, fn, args)
	default:
		return nil, fmt.Errorf("plan: cannot bind %T", e)
	}
}

// refAliases collects the FROM aliases an unbound expression references,
// resolving unqualified names through the alias schemas.
func refAliases(e sql.Expr, schemas map[string]*expr.RowSchema) (map[string]bool, error) {
	out := map[string]bool{}
	var visit func(sql.Expr) error
	visit = func(e sql.Expr) error {
		switch n := e.(type) {
		case *sql.ColRef:
			if n.Qualifier != "" {
				if _, ok := schemas[n.Qualifier]; !ok {
					return fmt.Errorf("plan: unknown table alias %q", n.Qualifier)
				}
				out[n.Qualifier] = true
				return nil
			}
			owner := ""
			for alias, s := range schemas {
				if _, err := s.Resolve(alias, n.Name); err == nil {
					if owner != "" {
						return fmt.Errorf("plan: ambiguous column %q (in %s and %s)", n.Name, owner, alias)
					}
					owner = alias
				}
			}
			if owner == "" {
				return fmt.Errorf("plan: unknown column %q", n.Name)
			}
			out[owner] = true
		case *sql.BinOp:
			if err := visit(n.L); err != nil {
				return err
			}
			return visit(n.R)
		case *sql.NotExpr:
			return visit(n.E)
		case *sql.LikeExpr:
			return visit(n.E)
		case *sql.FuncExpr:
			for _, a := range n.Args {
				if err := visit(a); err != nil {
					return err
				}
			}
		case *sql.IntLit, *sql.StrLit:
		default:
			return fmt.Errorf("plan: cannot analyze %T", e)
		}
		return nil
	}
	if err := visit(e); err != nil {
		return nil, err
	}
	return out, nil
}

// splitConjuncts flattens an AND tree into its conjuncts.
func splitConjuncts(e sql.Expr) []sql.Expr {
	if b, ok := e.(*sql.BinOp); ok && b.Op == "AND" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []sql.Expr{e}
}

// equiJoinSides recognizes "colA = colB" conjuncts spanning two aliases
// and returns the two references.
func equiJoinSides(e sql.Expr) (*sql.ColRef, *sql.ColRef, bool) {
	b, ok := e.(*sql.BinOp)
	if !ok || b.Op != "=" {
		return nil, nil, false
	}
	l, lok := b.L.(*sql.ColRef)
	r, rok := b.R.(*sql.ColRef)
	if !lok || !rok {
		return nil, nil, false
	}
	return l, r, true
}

// constEquality recognizes "col = literal" (either order) and returns the
// column and the literal value.
func constEquality(e sql.Expr) (*sql.ColRef, types.Value, bool) {
	b, ok := e.(*sql.BinOp)
	if !ok || b.Op != "=" {
		return nil, types.Null, false
	}
	if c, ok := b.L.(*sql.ColRef); ok {
		if v, ok := literalValue(b.R); ok {
			return c, v, true
		}
	}
	if c, ok := b.R.(*sql.ColRef); ok {
		if v, ok := literalValue(b.L); ok {
			return c, v, true
		}
	}
	return nil, types.Null, false
}

func literalValue(e sql.Expr) (types.Value, bool) {
	switch n := e.(type) {
	case *sql.IntLit:
		return types.NewInt(n.Val), true
	case *sql.StrLit:
		return types.NewString(n.Val), true
	default:
		return types.Null, false
	}
}
