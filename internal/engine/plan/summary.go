package plan

import (
	"fmt"
	"strings"

	"repro/internal/engine/exec"
)

// PredicateSummary walks a compiled plan and reports where each
// predicate ended up: pushed into a scan cursor, answered by an XADT
// fragment index (with re-verification), fused into a table-function
// apply, or left as a residual filter above the joins. EXPLAIN output
// shows the operators; this shows the classification at a glance.
func PredicateSummary(op exec.Operator) string {
	var pushed, indexed, fused, residual []string
	collectPredicates(op, &pushed, &indexed, &fused, &residual)
	var sb strings.Builder
	line := func(label string, preds []string) {
		if len(preds) == 0 {
			fmt.Fprintf(&sb, "%s: (none)\n", label)
			return
		}
		fmt.Fprintf(&sb, "%s: %s\n", label, strings.Join(preds, "; "))
	}
	line("pushed", pushed)
	line("indexed", indexed)
	line("apply-fused", fused)
	line("residual", residual)
	return sb.String()
}

func collectPredicates(op exec.Operator, pushed, indexed, fused, residual *[]string) {
	switch n := op.(type) {
	case *exec.SeqScan:
		if n.Pred != nil {
			*pushed = append(*pushed, n.Pred.String())
		}
	case *exec.MorselScan:
		if n.Pred != nil {
			*pushed = append(*pushed, n.Pred.String())
		}
	case *exec.IndexScan:
		*indexed = append(*indexed, n.String())
	case *exec.IndexedFragScan:
		*indexed = append(*indexed, fmt.Sprintf("%s (verified)", n.IndexDesc))
	case *exec.Filter:
		*residual = append(*residual, n.Pred.String())
		collectPredicates(n.Child, pushed, indexed, fused, residual)
	case *exec.Project:
		collectPredicates(n.Child, pushed, indexed, fused, residual)
	case *exec.TableFuncApply:
		if n.Filter != nil {
			*fused = append(*fused, n.Filter.String())
		}
		collectPredicates(n.Child, pushed, indexed, fused, residual)
	case *exec.HashJoin:
		collectPredicates(n.Left, pushed, indexed, fused, residual)
		collectPredicates(n.Right, pushed, indexed, fused, residual)
	case *exec.MergeJoin:
		collectPredicates(n.Left, pushed, indexed, fused, residual)
		collectPredicates(n.Right, pushed, indexed, fused, residual)
	case *exec.NestedLoopJoin:
		if n.Pred != nil {
			*residual = append(*residual, n.Pred.String())
		}
		collectPredicates(n.Left, pushed, indexed, fused, residual)
		collectPredicates(n.Right, pushed, indexed, fused, residual)
	case *exec.IndexLoopJoin:
		collectPredicates(n.Left, pushed, indexed, fused, residual)
	case *exec.HashProbe:
		collectPredicates(n.Build.Input, pushed, indexed, fused, residual)
		collectPredicates(n.Right, pushed, indexed, fused, residual)
	case *exec.Gather:
		// All pipelines are clones; the first is representative.
		collectPredicates(n.Pipes[0].Root, pushed, indexed, fused, residual)
	case *exec.HashAggregate:
		collectPredicates(n.Child, pushed, indexed, fused, residual)
	case *exec.Sort:
		collectPredicates(n.Child, pushed, indexed, fused, residual)
	case *exec.TopN:
		collectPredicates(n.Child, pushed, indexed, fused, residual)
	case *exec.Distinct:
		collectPredicates(n.Child, pushed, indexed, fused, residual)
	case *exec.Limit:
		collectPredicates(n.Child, pushed, indexed, fused, residual)
	}
}
