package plan

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/engine/exec"
	"repro/internal/engine/expr"
	"repro/internal/engine/sql"
	"repro/internal/engine/storage"
)

func TestTopNPlanShape(t *testing.T) {
	cat := bigFixture(t)
	q := `SELECT id, val FROM fact ORDER BY val LIMIT 5`

	p := &Planner{Cat: cat, Reg: expr.NewRegistry()}
	text := Explain(planFor(t, p, q))
	if !strings.Contains(text, "TopN(5)") {
		t.Fatalf("ORDER BY + LIMIT not fused into TopN:\n%s", text)
	}
	if strings.Contains(text, "Sort") || strings.Contains(text, "Limit(") {
		t.Fatalf("fused plan still contains Sort/Limit:\n%s", text)
	}

	// DisableTopN restores the seed Sort + Limit shape.
	seed := &Planner{Cat: cat, Reg: expr.NewRegistry(), Opts: Options{DisableTopN: true}}
	text = Explain(planFor(t, seed, q))
	if strings.Contains(text, "TopN(") {
		t.Fatalf("DisableTopN plan contains TopN:\n%s", text)
	}
	if !strings.Contains(text, "Sort") || !strings.Contains(text, "Limit(5)") {
		t.Fatalf("DisableTopN plan missing Sort/Limit:\n%s", text)
	}

	// ORDER BY without LIMIT must not become a TopN.
	text = Explain(planFor(t, p, `SELECT id, val FROM fact ORDER BY val`))
	if strings.Contains(text, "TopN(") {
		t.Fatalf("ORDER BY without LIMIT fused into TopN:\n%s", text)
	}
}

func TestTopNPartialPushedBelowGather(t *testing.T) {
	cat := bigFixture(t)
	par := &Planner{Cat: cat, Reg: expr.NewRegistry(), Opts: Options{DOP: 4, MorselPages: 1, CPUs: 4}}
	op := planFor(t, par, `SELECT id, val FROM fact ORDER BY val, id LIMIT 7`)

	top, ok := op.(*exec.TopN)
	if !ok {
		t.Fatalf("root is %T, want *exec.TopN:\n%s", op, Explain(op))
	}
	g, ok := top.Child.(*exec.Gather)
	if !ok {
		t.Fatalf("TopN child is %T, want *exec.Gather:\n%s", top.Child, Explain(op))
	}
	for i, pipe := range g.Pipes {
		partial, ok := pipe.Root.(*exec.TopN)
		if !ok {
			t.Fatalf("pipe %d root is %T, want partial TopN:\n%s", i, pipe.Root, Explain(op))
		}
		if partial.N != 7 {
			t.Fatalf("pipe %d partial TopN keeps %d rows, want 7", i, partial.N)
		}
	}
	// Both levels show up in the explain text too.
	if text := Explain(op); strings.Count(text, "TopN(7)") != 2 {
		t.Fatalf("explain should show outer and partial TopN:\n%s", text)
	}
}

func TestBudgetKeepsSpillableHashJoinAboveGather(t *testing.T) {
	cat := bigFixture(t)
	q := `SELECT label, val FROM dim, fact WHERE grpID = grp`

	free := &Planner{Cat: cat, Reg: expr.NewRegistry(), Opts: Options{DOP: 4, MorselPages: 1, CPUs: 4}}
	freeText := Explain(planFor(t, free, q))
	if !strings.Contains(freeText, "HashProbe") {
		t.Fatalf("without a budget the join should use the HashBuild/HashProbe fragments:\n%s", freeText)
	}

	// HashProbe has no spill path, so a memory budget must keep the
	// serial spilling HashJoin above the exchange.
	budget := &Planner{Cat: cat, Reg: expr.NewRegistry(), Opts: Options{
		DOP: 4, MorselPages: 1, CPUs: 4, MemBudgetBytes: 1 << 20, SpillVFS: storage.NewMemVFS()}}
	text := Explain(planFor(t, budget, q))
	if strings.Contains(text, "HashProbe") {
		t.Fatalf("budgeted plan still uses the unspillable HashProbe:\n%s", text)
	}
	if !strings.Contains(text, "HashJoin(") || !strings.Contains(text, "Gather") {
		t.Fatalf("budgeted plan should keep HashJoin above a Gather:\n%s", text)
	}
}

func TestBudgetedQueriesMatchUnbounded(t *testing.T) {
	cat := bigFixture(t)
	queries := []string{
		`SELECT id, val FROM fact ORDER BY val, id`,
		`SELECT grp, COUNT(*), SUM(val) FROM fact GROUP BY grp`,
		`SELECT label, val FROM dim, fact WHERE grpID = grp`,
		`SELECT id, val FROM fact ORDER BY val, id LIMIT 9`,
	}
	serial := &Planner{Cat: cat, Reg: expr.NewRegistry()}
	for _, q := range queries {
		stmt, err := sql.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		want, err := exec.Drain(mustPlan(t, serial, stmt))
		if err != nil {
			t.Fatalf("serial %q: %v", q, err)
		}
		for _, dop := range []int{1, 4} {
			sink := &exec.SpillSink{}
			p := &Planner{Cat: cat, Reg: expr.NewRegistry(), Spill: sink, Opts: Options{
				// 256 bytes: even the 7-group aggregate state overflows.
				DOP: dop, MorselPages: 1, CPUs: dop, MemBudgetBytes: 256, SpillVFS: storage.NewMemVFS()}}
			got, err := exec.Drain(mustPlan(t, p, stmt))
			if err != nil {
				t.Fatalf("budgeted dop=%d %q: %v", dop, q, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("dop=%d %q: budgeted rows differ from unbounded", dop, q)
			}
			if !strings.Contains(q, "LIMIT") && sink.Stats().Runs == 0 {
				t.Fatalf("dop=%d %q: 256-byte budget produced no spill runs", dop, q)
			}
		}
	}
}
