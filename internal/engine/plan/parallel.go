package plan

import (
	"runtime"

	"repro/internal/engine/exec"
	"repro/internal/engine/expr"
	"repro/internal/engine/storage"
)

// parallelize rewrites a plan for intra-query parallelism. Maximal
// scan-rooted fragments — chains of Filter / Project / TableFuncApply /
// hash-join probe sides / index-loop-join outer sides ending in a
// SeqScan — are cloned once per worker and fanned out behind a Gather
// exchange; everything else keeps its serial operator but has its
// streaming input parallelized in place. Hash-join build sides are
// lifted into a HashBuild shared by all probe workers (built once, with
// the key hashing itself parallelized), and the build input is
// recursively parallelized too.
// Small-input parallelism gate defaults: a table below both thresholds
// is scanned serially even at DOP > 1, because spinning up workers and
// reassembling morsel output costs more than the scan itself (the
// regression the gate removes showed on sub-page lookup queries).
const (
	// DefaultMinParallelPages is the data-page floor of the gate when
	// Options.MinParallelPages is 0.
	DefaultMinParallelPages = 32
	// DefaultMinParallelRows is the cardinality floor: a small-paged
	// table still parallelizes when statistics (or the live row count)
	// say it holds at least this many rows.
	DefaultMinParallelRows = 2048
)

func (p *Planner) parallelize(op exec.Operator, sum *CostSummary) exec.Operator {
	b := &parallelBuilder{
		planner:     p,
		dop:         p.Opts.DOP,
		morselPages: p.Opts.MorselPages,
		minPages:    p.Opts.MinParallelPages,
		memBudget:   p.Opts.MemBudgetBytes > 0,
		sum:         sum,
	}
	return b.rewrite(op)
}

// parallelBuilder carries the rewrite parameters.
type parallelBuilder struct {
	planner     *Planner
	dop         int
	morselPages int
	// minPages is the small-input gate (see DefaultMinParallelPages);
	// negative disables it.
	minPages int
	// memBudget disables the shared HashBuild/HashProbe fragment form:
	// those operators have no spill path, so under a memory budget the
	// spilling serial HashJoin stays above the exchange and only its
	// inputs parallelize.
	memBudget bool
	// sum, when non-nil, records whether the rewrite installed a Gather.
	sum *CostSummary
}

// tooSmall reports whether a scan falls under the small-input gate.
// Three regimes, selected by Options.MinParallelPages: negative
// disables the gate entirely; positive is an explicit fixed page floor
// (with the historical row-count escape hatch); zero — the default —
// runs the cost gate, which weighs the scan's estimated work (pages,
// rows, row width, per-row predicate cost) against worker startup and
// exchange overhead. With DisableCostModel the zero value falls back to
// the historical fixed thresholds. Because Gather preserves morsel
// order, the gate affects only speed, never results.
func (b *parallelBuilder) tooSmall(n *exec.SeqScan) bool {
	minPages := b.minPages
	if minPages < 0 {
		return false
	}
	if minPages == 0 && !b.planner.Opts.DisableCostModel {
		return !b.worthParallel(n)
	}
	if minPages == 0 {
		minPages = DefaultMinParallelPages
	}
	t := n.Table
	if t.Heap.DataPages() >= minPages {
		return false
	}
	rows := t.Rows()
	if stats := t.StatsSnapshot(); stats.Valid {
		rows = stats.Rows
	}
	return rows < DefaultMinParallelRows
}

// worthParallel is the cost gate: parallelize when the projected
// parallel cost (the scan split across the workers that can actually
// run at once, plus per-worker startup and per-output-row exchange
// overhead) undercuts the serial scan cost. Scans whose fused
// predicates call XADT UDFs cross over much earlier than plain scans —
// per-row UDF work parallelizes perfectly while the exchange overhead
// stays fixed. The divisor is capped at Options.CPUs (default
// GOMAXPROCS): DOP workers beyond the processor count still pay
// startup and exchange but time-slice one core, so on a starved host
// the gate refuses and the plan stays serial.
func (b *parallelBuilder) worthParallel(n *exec.SeqScan) bool {
	cpus := b.planner.Opts.CPUs
	if cpus <= 0 {
		cpus = runtime.GOMAXPROCS(0)
	}
	eff := float64(b.dop)
	if c := float64(cpus); c < eff {
		eff = c
	}
	if eff < 2 {
		return false
	}
	t := n.Table
	rows := float64(t.Rows())
	if stats := t.StatsSnapshot(); stats.Fresh() {
		rows = float64(stats.Rows)
	}
	if rows < 1 {
		rows = 1
	}
	pages := float64(t.Heap.DataPages())
	serial := pages*cPageTouch + rows*(cRowTouch*rowWidthScale(t, rows)+predCostExpr(n.Pred))
	outRows := n.Est
	if outRows <= 0 {
		outRows = rows
	}
	parallel := serial/eff + float64(b.dop)*cWorkerStartup + outRows*cExchangeRow
	return parallel < serial
}

// rewrite returns an equivalent plan with parallel fragments installed.
func (b *parallelBuilder) rewrite(op exec.Operator) exec.Operator {
	if pipes, shared, ok := b.fragment(op); ok {
		if b.sum != nil {
			b.sum.Parallel = true
		}
		return exec.NewGather(pipes, b.morselPages, shared)
	}
	switch n := op.(type) {
	case *exec.Filter:
		n.Child = b.rewrite(n.Child)
	case *exec.Project:
		n.Child = b.rewrite(n.Child)
	case *exec.TableFuncApply:
		n.Child = b.rewrite(n.Child)
	case *exec.Sort:
		n.Child = b.rewrite(n.Child)
	case *exec.TopN:
		// When the child parallelizes into a Gather, push a partial TopN
		// into every worker pipeline: each worker keeps at most N rows,
		// so the exchange moves O(DOP·N) rows instead of the full input.
		// The outer TopN re-selects the global N; its seq tie-break sees
		// the same arrival order as the serial plan because Gather
		// preserves morsel order.
		n.Child = b.rewrite(n.Child)
		if g, ok := n.Child.(*exec.Gather); ok {
			for i := range g.Pipes {
				g.Pipes[i].Root = exec.NewTopN(g.Pipes[i].Root,
					expr.CloneAll(n.Keys), append([]bool(nil), n.Desc...), n.N)
			}
		}
	case *exec.Distinct:
		n.Child = b.rewrite(n.Child)
	case *exec.Limit:
		n.Child = b.rewrite(n.Child)
	case *exec.HashAggregate:
		n.Child = b.rewrite(n.Child)
	case *exec.NestedLoopJoin:
		// The inner side is materialized once at Open; only the streamed
		// outer side benefits from a parallel input.
		n.Left = b.rewrite(n.Left)
	case *exec.HashJoin:
		n.Left = b.rewrite(n.Left)
		n.Right = b.rewrite(n.Right)
	case *exec.MergeJoin:
		n.Left = b.rewrite(n.Left)
		n.Right = b.rewrite(n.Right)
	case *exec.IndexLoopJoin:
		n.Left = b.rewrite(n.Left)
	}
	return op
}

// fragment attempts to clone the subtree rooted at op into per-worker
// pipelines. It succeeds only when the fragment bottoms out in a
// SeqScan large enough to split into more than one morsel; expressions
// are cloned per worker so no evaluation state is shared.
func (b *parallelBuilder) fragment(op exec.Operator) ([]exec.Pipeline, []exec.Resettable, bool) {
	switch n := op.(type) {
	case *exec.SeqScan:
		morselPages := b.morselPages
		if morselPages <= 0 {
			morselPages = storage.DefaultMorselPages
		}
		pages := n.Table.Heap.DataPages()
		if pages <= morselPages {
			return nil, nil, false // a single morsel gains nothing
		}
		if b.tooSmall(n) {
			return nil, nil, false // exchange overhead would dominate
		}
		workers := b.dop
		if m := (pages + morselPages - 1) / morselPages; workers > m {
			workers = m
		}
		pipes := make([]exec.Pipeline, workers)
		for i := range pipes {
			leaf := exec.NewMorselScan(n.Table, n.Alias)
			leaf.Est = n.Est
			if n.Pred != nil {
				// The fused scan predicate runs inside each worker.
				leaf.Pred = expr.Clone(n.Pred)
			}
			pipes[i] = exec.Pipeline{Root: leaf, Leaf: leaf}
		}
		return pipes, nil, true

	case *exec.Filter:
		pipes, shared, ok := b.fragment(n.Child)
		if !ok {
			return nil, nil, false
		}
		for i := range pipes {
			pipes[i].Root = exec.NewFilter(pipes[i].Root, expr.Clone(n.Pred))
		}
		return pipes, shared, true

	case *exec.Project:
		pipes, shared, ok := b.fragment(n.Child)
		if !ok {
			return nil, nil, false
		}
		names := n.Schema().Names()
		for i := range pipes {
			pipes[i].Root = exec.NewProject(pipes[i].Root, expr.CloneAll(n.Exprs), names)
		}
		return pipes, shared, true

	case *exec.TableFuncApply:
		pipes, shared, ok := b.fragment(n.Child)
		if !ok {
			return nil, nil, false
		}
		for i := range pipes {
			apply := exec.NewTableFuncApply(pipes[i].Root, n.Func, expr.CloneAll(n.Args), n.Alias)
			if n.Filter != nil {
				apply.Filter = expr.Clone(n.Filter)
			}
			pipes[i].Root = apply
		}
		return pipes, shared, true

	case *exec.HashJoin:
		if b.memBudget {
			// HashBuild/HashProbe cannot spill; keep the serial spilling
			// HashJoin above the exchange (its inputs still parallelize
			// via the rewrite switch).
			return nil, nil, false
		}
		// Parallelize the probe (right) side; the build side becomes a
		// shared HashBuild, itself recursively parallelized.
		pipes, shared, ok := b.fragment(n.Right)
		if !ok {
			return nil, nil, false
		}
		build := &exec.HashBuild{
			Input:    b.rewrite(n.Left),
			Key:      n.LeftKey,
			BuildDOP: b.dop,
		}
		shared = append(shared, build)
		for i := range pipes {
			pipes[i].Root = exec.NewHashProbe(build, pipes[i].Root,
				expr.Clone(n.LeftKey), expr.Clone(n.RightKey))
		}
		return pipes, shared, true

	case *exec.IndexLoopJoin:
		// The B+tree and inner heap are read-only at query time, so
		// workers probe them concurrently; only the key expression needs
		// cloning.
		pipes, shared, ok := b.fragment(n.Left)
		if !ok {
			return nil, nil, false
		}
		for i := range pipes {
			pipes[i].Root = exec.NewIndexLoopJoin(pipes[i].Root, n.Right, n.Alias,
				n.Index, expr.Clone(n.LeftKey))
		}
		return pipes, shared, true
	}
	return nil, nil, false
}
