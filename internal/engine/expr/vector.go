// Vectorized expression evaluation: kernels that evaluate a bound
// expression over a whole column-major batch at once, driven by a
// selection vector. Filtering narrows the selection in place — data is
// never moved — and the common predicate shapes (comparison of a column
// against a constant or another column, conjunctions, LIKE over a
// column) run as tight loops without the per-row interface dispatch of
// Expr.Eval. Everything else falls back to a gather-and-Eval loop with
// identical semantics, so the vectorized path is behaviourally
// indistinguishable from the row path.
package expr

import (
	"repro/internal/engine/types"
	"repro/internal/engine/vec"
)

// VecScratch holds the reusable buffers of one operator's vectorized
// evaluation: a gathered row for the generic fallback path. The zero
// value is ready to use.
type VecScratch struct {
	row []types.Value
}

func (s *VecScratch) rowBuf(n int) []types.Value {
	if cap(s.row) < n {
		s.row = make([]types.Value, n)
	}
	return s.row[:n]
}

// FilterBatch narrows the batch's selection to the rows where pred is
// true, preserving the row-at-a-time semantics exactly: NULL comparisons
// are false, AND short-circuits left to right (a row rejected by the
// left conjunct never evaluates the right), and Truthy decides survival.
func FilterBatch(pred Expr, b *vec.Batch, s *VecScratch) error {
	switch p := pred.(type) {
	case *And:
		// Sequential narrowing: rows dropped by L are not in the
		// selection when R runs — the batch form of short-circuiting.
		if err := FilterBatch(p.L, b, s); err != nil {
			return err
		}
		return FilterBatch(p.R, b, s)
	case *Cmp:
		if lc, ok := p.L.(*Col); ok {
			if rc, ok := p.R.(*Const); ok {
				return filterColConst(p.Op, lc, rc.Val, b)
			}
			if rc, ok := p.R.(*Col); ok {
				return filterColCol(p.Op, lc, rc, b)
			}
		}
	case *Like:
		if c, ok := p.E.(*Col); ok {
			return filterLikeCol(p, c, b)
		}
	}
	return filterGeneric(pred, b, s)
}

// cmpKeep translates a types.Compare result under op.
func cmpKeep(op CmpOp, n int) bool {
	switch op {
	case EQ:
		return n == 0
	case NE:
		return n != 0
	case LT:
		return n < 0
	case LE:
		return n <= 0
	case GT:
		return n > 0
	default:
		return n >= 0
	}
}

// filterColConst is the Cmp(Col, Const) kernel.
func filterColConst(op CmpOp, lc *Col, cv types.Value, b *vec.Batch) error {
	if lc.Idx >= len(b.Cols) {
		// Match Col.Eval's out-of-range error via the row path.
		_, err := lc.Eval(nil)
		return err
	}
	col := b.Cols[lc.Idx]
	sel := b.SelBuf()
	k := 0
	if cv.IsNull() {
		b.Sel = sel[:0] // NULL comparisons are false for every row
		return nil
	}
	if b.Sel == nil {
		for i := 0; i < b.NRows; i++ {
			v := col[i]
			if !v.IsNull() && cmpKeep(op, types.Compare(v, cv)) {
				sel[k] = i
				k++
			}
		}
	} else {
		for _, i := range b.Sel {
			v := col[i]
			if !v.IsNull() && cmpKeep(op, types.Compare(v, cv)) {
				sel[k] = i
				k++
			}
		}
	}
	b.Sel = sel[:k]
	return nil
}

// filterColCol is the Cmp(Col, Col) kernel.
func filterColCol(op CmpOp, lc, rc *Col, b *vec.Batch) error {
	if lc.Idx >= len(b.Cols) {
		_, err := lc.Eval(nil)
		return err
	}
	if rc.Idx >= len(b.Cols) {
		_, err := rc.Eval(nil)
		return err
	}
	l, r := b.Cols[lc.Idx], b.Cols[rc.Idx]
	sel := b.SelBuf()
	k := 0
	if b.Sel == nil {
		for i := 0; i < b.NRows; i++ {
			lv, rv := l[i], r[i]
			if !lv.IsNull() && !rv.IsNull() && cmpKeep(op, types.Compare(lv, rv)) {
				sel[k] = i
				k++
			}
		}
	} else {
		for _, i := range b.Sel {
			lv, rv := l[i], r[i]
			if !lv.IsNull() && !rv.IsNull() && cmpKeep(op, types.Compare(lv, rv)) {
				sel[k] = i
				k++
			}
		}
	}
	b.Sel = sel[:k]
	return nil
}

// filterLikeCol is the LIKE kernel over a column operand: the compiled
// matcher runs directly on the column values.
func filterLikeCol(p *Like, c *Col, b *vec.Batch) error {
	if c.Idx >= len(b.Cols) {
		_, err := c.Eval(nil)
		return err
	}
	col := b.Cols[c.Idx]
	sel := b.SelBuf()
	k := 0
	keep := func(v types.Value) bool {
		return v.Kind() == types.KindString && p.matcher(v.Str())
	}
	if b.Sel == nil {
		for i := 0; i < b.NRows; i++ {
			if keep(col[i]) {
				sel[k] = i
				k++
			}
		}
	} else {
		for _, i := range b.Sel {
			if keep(col[i]) {
				sel[k] = i
				k++
			}
		}
	}
	b.Sel = sel[:k]
	return nil
}

// filterGeneric is the fallback: gather each active row and evaluate
// pred with the row-at-a-time engine.
func filterGeneric(pred Expr, b *vec.Batch, s *VecScratch) error {
	row := s.rowBuf(len(b.Cols))
	sel := b.SelBuf()
	k := 0
	n := b.Active()
	for o := 0; o < n; o++ {
		i := b.RowIdx(o)
		for j, col := range b.Cols {
			row[j] = col[i]
		}
		v, err := pred.Eval(row)
		if err != nil {
			return err
		}
		if v.Truthy() {
			sel[k] = i
			k++
		}
	}
	b.Sel = sel[:k]
	return nil
}

// EvalBatch evaluates e at every active row of the batch, writing the
// result for physical row i into out[i]. Inactive rows of out are left
// untouched. Column references and constants avoid per-row dispatch;
// everything else gathers and Evals.
func EvalBatch(e Expr, b *vec.Batch, out []types.Value, s *VecScratch) error {
	switch n := e.(type) {
	case *Col:
		if n.Idx >= len(b.Cols) {
			_, err := n.Eval(nil)
			return err
		}
		col := b.Cols[n.Idx]
		if b.Sel == nil {
			copy(out[:b.NRows], col[:b.NRows])
		} else {
			for _, i := range b.Sel {
				out[i] = col[i]
			}
		}
		return nil
	case *Const:
		if b.Sel == nil {
			for i := 0; i < b.NRows; i++ {
				out[i] = n.Val
			}
		} else {
			for _, i := range b.Sel {
				out[i] = n.Val
			}
		}
		return nil
	}
	row := s.rowBuf(len(b.Cols))
	na := b.Active()
	for o := 0; o < na; o++ {
		i := b.RowIdx(o)
		for j, col := range b.Cols {
			row[j] = col[i]
		}
		v, err := e.Eval(row)
		if err != nil {
			return err
		}
		out[i] = v
	}
	return nil
}
