// Package expr defines row schemas, scalar expressions, and the function
// registry of the engine. The registry distinguishes built-in functions
// (evaluated inline) from user-defined functions (invoked through the UDF
// call convention, optionally "fenced" in a separate goroutine), which is
// the mechanism behind the paper's Figure 14 overhead measurement.
package expr

import (
	"fmt"

	"repro/internal/engine/types"
)

// ColInfo describes one column of an intermediate row: an optional
// qualifier (table name or alias) and the column name.
type ColInfo struct {
	Qualifier string
	Name      string
	Type      types.Kind
}

// RowSchema is the schema of rows flowing between operators.
type RowSchema struct {
	Cols []ColInfo
}

// NewRowSchema builds a schema from column infos.
func NewRowSchema(cols ...ColInfo) *RowSchema {
	return &RowSchema{Cols: cols}
}

// Concat returns a schema with the columns of a followed by those of b.
func Concat(a, b *RowSchema) *RowSchema {
	cols := make([]ColInfo, 0, len(a.Cols)+len(b.Cols))
	cols = append(cols, a.Cols...)
	cols = append(cols, b.Cols...)
	return &RowSchema{Cols: cols}
}

// Resolve finds the index of a column reference. An empty qualifier
// matches any; ambiguous or missing references are errors.
func (s *RowSchema) Resolve(qualifier, name string) (int, error) {
	found := -1
	for i, c := range s.Cols {
		if c.Name != name {
			continue
		}
		if qualifier != "" && c.Qualifier != qualifier {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("expr: ambiguous column reference %s", refString(qualifier, name))
		}
		found = i
	}
	if found < 0 {
		return 0, fmt.Errorf("expr: unknown column %s", refString(qualifier, name))
	}
	return found, nil
}

func refString(q, n string) string {
	if q == "" {
		return n
	}
	return q + "." + n
}

// Names returns the bare column names in order.
func (s *RowSchema) Names() []string {
	out := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		out[i] = c.Name
	}
	return out
}
