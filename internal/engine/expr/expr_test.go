package expr

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/engine/types"
)

func evalBool(t *testing.T, e Expr, row []types.Value) bool {
	t.Helper()
	v, err := e.Eval(row)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return v.Truthy()
}

func TestRowSchemaResolve(t *testing.T) {
	s := NewRowSchema(
		ColInfo{Qualifier: "speech", Name: "speechID", Type: types.KindInt},
		ColInfo{Qualifier: "speech", Name: "speaker", Type: types.KindString},
		ColInfo{Qualifier: "act", Name: "actID", Type: types.KindInt},
	)
	if i, err := s.Resolve("", "speaker"); err != nil || i != 1 {
		t.Errorf("Resolve(speaker) = %d, %v", i, err)
	}
	if i, err := s.Resolve("act", "actID"); err != nil || i != 2 {
		t.Errorf("Resolve(act.actID) = %d, %v", i, err)
	}
	if _, err := s.Resolve("", "ghost"); err == nil {
		t.Error("missing column should error")
	}
	if _, err := s.Resolve("speech", "actID"); err == nil {
		t.Error("wrong qualifier should error")
	}
}

func TestRowSchemaAmbiguity(t *testing.T) {
	s := NewRowSchema(
		ColInfo{Qualifier: "a", Name: "id"},
		ColInfo{Qualifier: "b", Name: "id"},
	)
	if _, err := s.Resolve("", "id"); err == nil {
		t.Error("ambiguous reference should error")
	}
	if i, err := s.Resolve("b", "id"); err != nil || i != 1 {
		t.Errorf("qualified resolve = %d, %v", i, err)
	}
}

func TestConcatSchemas(t *testing.T) {
	a := NewRowSchema(ColInfo{Qualifier: "x", Name: "p"})
	b := NewRowSchema(ColInfo{Qualifier: "y", Name: "q"})
	c := Concat(a, b)
	if len(c.Cols) != 2 || c.Cols[1].Name != "q" {
		t.Errorf("Concat = %v", c.Cols)
	}
	if got := c.Names(); got[0] != "p" || got[1] != "q" {
		t.Errorf("Names = %v", got)
	}
}

func TestComparisons(t *testing.T) {
	row := []types.Value{types.NewInt(5), types.NewString("abc")}
	five := &Col{Idx: 0, Name: "n"}
	cases := []struct {
		op   CmpOp
		rhs  int64
		want bool
	}{
		{EQ, 5, true}, {EQ, 6, false},
		{NE, 6, true}, {NE, 5, false},
		{LT, 6, true}, {LT, 5, false},
		{LE, 5, true}, {LE, 4, false},
		{GT, 4, true}, {GT, 5, false},
		{GE, 5, true}, {GE, 6, false},
	}
	for _, tc := range cases {
		e := &Cmp{Op: tc.op, L: five, R: &Const{Val: types.NewInt(tc.rhs)}}
		if got := evalBool(t, e, row); got != tc.want {
			t.Errorf("5 %s %d = %v, want %v", tc.op, tc.rhs, got, tc.want)
		}
	}
}

func TestNullComparisonsAreFalse(t *testing.T) {
	row := []types.Value{types.Null}
	c := &Col{Idx: 0, Name: "x"}
	for _, op := range []CmpOp{EQ, NE, LT, GT} {
		e := &Cmp{Op: op, L: c, R: &Const{Val: types.NewInt(1)}}
		if evalBool(t, e, row) {
			t.Errorf("NULL %s 1 should be false", op)
		}
	}
}

func TestLogicalOps(t *testing.T) {
	tr := &Const{Val: types.NewBool(true)}
	fa := &Const{Val: types.NewBool(false)}
	if !evalBool(t, &And{tr, tr}, nil) || evalBool(t, &And{tr, fa}, nil) {
		t.Error("AND truth table")
	}
	if !evalBool(t, &Or{fa, tr}, nil) || evalBool(t, &Or{fa, fa}, nil) {
		t.Error("OR truth table")
	}
	if evalBool(t, &Not{tr}, nil) || !evalBool(t, &Not{fa}, nil) {
		t.Error("NOT truth table")
	}
}

type errExpr struct{}

func (errExpr) Eval([]types.Value) (types.Value, error) {
	return types.Null, errors.New("boom")
}
func (errExpr) String() string { return "err" }

func TestShortCircuit(t *testing.T) {
	fa := &Const{Val: types.NewBool(false)}
	tr := &Const{Val: types.NewBool(true)}
	// AND short-circuits: the erroring right side is never evaluated.
	if evalBool(t, &And{fa, errExpr{}}, nil) {
		t.Error("false AND x should be false")
	}
	if !evalBool(t, &Or{tr, errExpr{}}, nil) {
		t.Error("true OR x should be true")
	}
	// Errors propagate when reached.
	if _, err := (&And{tr, errExpr{}}).Eval(nil); err == nil {
		t.Error("error should propagate")
	}
}

func TestLikePatterns(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"%friend%", "my friend here", true},
		{"%friend%", "foe", false},
		{"Romeo%", "Romeo and Juliet", true},
		{"Romeo%", "and Romeo", false},
		{"%Juliet", "Romeo and Juliet", true},
		{"%Juliet", "Juliet rises", false},
		{"exact", "exact", true},
		{"exact", "exactly", false},
		{"a_c", "abc", true},
		{"a_c", "ac", false},
		{"a%c", "abbbc", true},
		{"a%c", "ab", false},
		{"%a%b%", "xaybz", true},
		{"%a%b%", "xbya", false},
		{"%", "anything", true},
		{"", "", true},
		{"", "x", false},
	}
	for _, tc := range cases {
		e := NewLike(&Col{Idx: 0, Name: "s"}, tc.pattern)
		got := evalBool(t, e, []types.Value{types.NewString(tc.s)})
		if got != tc.want {
			t.Errorf("%q LIKE %q = %v, want %v", tc.s, tc.pattern, got, tc.want)
		}
	}
}

func TestLikeOnNullAndNonString(t *testing.T) {
	e := NewLike(&Col{Idx: 0, Name: "s"}, "%x%")
	if evalBool(t, e, []types.Value{types.Null}) {
		t.Error("NULL LIKE should be false")
	}
	if evalBool(t, e, []types.Value{types.NewInt(5)}) {
		t.Error("int LIKE should be false")
	}
}

func TestLikeMatchesContainsProperty(t *testing.T) {
	f := func(s, key string) bool {
		if strings.ContainsAny(key, "%_") {
			return true
		}
		e := NewLike(&Col{Idx: 0, Name: "s"}, "%"+key+"%")
		v, err := e.Eval([]types.Value{types.NewString(s)})
		if err != nil {
			return false
		}
		return v.Truthy() == strings.Contains(s, key)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegistryAndCalls(t *testing.T) {
	reg := NewRegistry()
	double := &ScalarFunc{
		Name: "double", MinArgs: 1, MaxArgs: 1,
		Fn: func(args []types.Value) (types.Value, error) {
			return types.NewInt(args[0].Int() * 2), nil
		},
	}
	if err := reg.RegisterScalar(double); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterScalar(double); err == nil {
		t.Error("duplicate registration should fail")
	}
	call, err := NewCall(reg, double, []Expr{&Const{Val: types.NewInt(21)}})
	if err != nil {
		t.Fatal(err)
	}
	v, err := call.Eval(nil)
	if err != nil || v.Int() != 42 {
		t.Errorf("double(21) = %v, %v", v, err)
	}
	// Arity check.
	if _, err := NewCall(reg, double, nil); err == nil {
		t.Error("arity violation should fail")
	}
}

func TestBuiltinAndUDFAgree(t *testing.T) {
	reg := NewRegistry()
	impl := func(args []types.Value) (types.Value, error) {
		return types.NewInt(int64(len(args[0].Str()))), nil
	}
	builtin := &ScalarFunc{Name: "length", Builtin: true, MinArgs: 1, MaxArgs: 1, Fn: impl}
	udf := &ScalarFunc{Name: "udf_length", MinArgs: 1, MaxArgs: 1, Fn: impl}
	reg.RegisterScalar(builtin)
	reg.RegisterScalar(udf)
	arg := []Expr{&Const{Val: types.NewString("HAMLET")}}
	cb, _ := NewCall(reg, builtin, arg)
	cu, _ := NewCall(reg, udf, arg)
	vb, err1 := cb.Eval(nil)
	vu, err2 := cu.Eval(nil)
	if err1 != nil || err2 != nil || vb.Int() != 6 || vu.Int() != 6 {
		t.Errorf("builtin=%v,%v udf=%v,%v", vb, err1, vu, err2)
	}
}

func TestFencedCalls(t *testing.T) {
	reg := NewRegistry()
	reg.Fenced = true
	fn := &ScalarFunc{
		Name: "inc", MinArgs: 1, MaxArgs: 1,
		Fn: func(args []types.Value) (types.Value, error) {
			return types.NewInt(args[0].Int() + 1), nil
		},
	}
	reg.RegisterScalar(fn)
	call, _ := NewCall(reg, fn, []Expr{&Const{Val: types.NewInt(1)}})
	for i := 0; i < 100; i++ {
		v, err := call.Eval(nil)
		if err != nil || v.Int() != 2 {
			t.Fatalf("fenced call = %v, %v", v, err)
		}
	}
}

func TestTableFuncRegistry(t *testing.T) {
	reg := NewRegistry()
	tf := &TableFunc{
		Name: "unnest", Cols: []string{"out"}, Types: []types.Kind{types.KindXADT},
		MinArgs: 2, MaxArgs: 2,
		Fn: func(args []types.Value) ([][]types.Value, error) { return nil, nil },
	}
	if err := reg.RegisterTable(tf); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterTable(tf); err == nil {
		t.Error("duplicate table function should fail")
	}
	if reg.Table("unnest") == nil || reg.Table("ghost") != nil {
		t.Error("table lookup")
	}
}

func TestExprStrings(t *testing.T) {
	e := &And{
		L: &Cmp{Op: EQ, L: &Col{Idx: 0, Name: "a"}, R: &Const{Val: types.NewString("x")}},
		R: NewLike(&Col{Idx: 1, Name: "b"}, "%y%"),
	}
	want := "(a = 'x' AND b LIKE '%y%')"
	if got := e.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}
