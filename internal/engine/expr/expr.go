package expr

import (
	"fmt"
	"strings"

	"repro/internal/engine/types"
)

// Expr is a bound scalar expression, evaluated against a row.
type Expr interface {
	Eval(row []types.Value) (types.Value, error)
	String() string
}

// Const is a literal value.
type Const struct {
	Val types.Value
}

// Eval returns the literal.
func (c *Const) Eval([]types.Value) (types.Value, error) { return c.Val, nil }

// String renders the literal.
func (c *Const) String() string {
	if c.Val.Kind() == types.KindString {
		return "'" + c.Val.Str() + "'"
	}
	return c.Val.String()
}

// Col is a resolved column reference.
type Col struct {
	Idx  int
	Name string
}

// Eval returns the row value at the resolved position.
func (c *Col) Eval(row []types.Value) (types.Value, error) {
	if c.Idx >= len(row) {
		return types.Null, fmt.Errorf("expr: column %s index %d out of row of %d", c.Name, c.Idx, len(row))
	}
	return row[c.Idx], nil
}

// String renders the column name.
func (c *Col) String() string { return c.Name }

// CmpOp is a comparison operator.
type CmpOp int

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

// String renders the operator in SQL syntax.
func (o CmpOp) String() string {
	switch o {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	default:
		return ">="
	}
}

// Cmp is a binary comparison. Comparisons involving NULL are false,
// approximating three-valued logic for the WHERE clauses the workloads
// use.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Eval evaluates both sides and compares.
func (c *Cmp) Eval(row []types.Value) (types.Value, error) {
	l, err := c.L.Eval(row)
	if err != nil {
		return types.Null, err
	}
	r, err := c.R.Eval(row)
	if err != nil {
		return types.Null, err
	}
	if l.IsNull() || r.IsNull() {
		return types.NewBool(false), nil
	}
	n := types.Compare(l, r)
	var ok bool
	switch c.Op {
	case EQ:
		ok = n == 0
	case NE:
		ok = n != 0
	case LT:
		ok = n < 0
	case LE:
		ok = n <= 0
	case GT:
		ok = n > 0
	case GE:
		ok = n >= 0
	}
	return types.NewBool(ok), nil
}

// String renders the comparison.
func (c *Cmp) String() string {
	return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R)
}

// And is a conjunction with short-circuit evaluation.
type And struct {
	L, R Expr
}

// Eval short-circuits on a false left side.
func (a *And) Eval(row []types.Value) (types.Value, error) {
	l, err := a.L.Eval(row)
	if err != nil {
		return types.Null, err
	}
	if !l.Truthy() {
		return types.NewBool(false), nil
	}
	r, err := a.R.Eval(row)
	if err != nil {
		return types.Null, err
	}
	return types.NewBool(r.Truthy()), nil
}

// String renders the conjunction.
func (a *And) String() string { return fmt.Sprintf("(%s AND %s)", a.L, a.R) }

// Or is a disjunction with short-circuit evaluation.
type Or struct {
	L, R Expr
}

// Eval short-circuits on a true left side.
func (o *Or) Eval(row []types.Value) (types.Value, error) {
	l, err := o.L.Eval(row)
	if err != nil {
		return types.Null, err
	}
	if l.Truthy() {
		return types.NewBool(true), nil
	}
	r, err := o.R.Eval(row)
	if err != nil {
		return types.Null, err
	}
	return types.NewBool(r.Truthy()), nil
}

// String renders the disjunction.
func (o *Or) String() string { return fmt.Sprintf("(%s OR %s)", o.L, o.R) }

// Not negates its operand.
type Not struct {
	E Expr
}

// Eval negates the operand's truthiness.
func (n *Not) Eval(row []types.Value) (types.Value, error) {
	v, err := n.E.Eval(row)
	if err != nil {
		return types.Null, err
	}
	return types.NewBool(!v.Truthy()), nil
}

// String renders the negation.
func (n *Not) String() string { return fmt.Sprintf("NOT %s", n.E) }

// Like is a SQL LIKE predicate with % and _ wildcards. The pattern is
// compiled once at construction.
type Like struct {
	E       Expr
	Pattern string
	matcher likeMatcher
}

// NewLike compiles pattern and returns the predicate.
func NewLike(e Expr, pattern string) *Like {
	return &Like{E: e, Pattern: pattern, matcher: compileLike(pattern)}
}

// Eval matches the operand's string value against the pattern; non-string
// operands and NULLs yield false.
func (l *Like) Eval(row []types.Value) (types.Value, error) {
	v, err := l.E.Eval(row)
	if err != nil {
		return types.Null, err
	}
	if v.Kind() != types.KindString {
		return types.NewBool(false), nil
	}
	return types.NewBool(l.matcher(v.Str())), nil
}

// String renders the predicate.
func (l *Like) String() string { return fmt.Sprintf("%s LIKE '%s'", l.E, l.Pattern) }

// likeMatcher matches a string against a compiled LIKE pattern.
type likeMatcher func(s string) bool

// compileLike builds a matcher. The common '%key%' shape compiles to a
// substring search; general patterns fall back to greedy segment
// matching.
func compileLike(pattern string) likeMatcher {
	if !strings.Contains(pattern, "_") {
		trimmed := strings.Trim(pattern, "%")
		if !strings.Contains(trimmed, "%") {
			switch {
			case strings.HasPrefix(pattern, "%") && strings.HasSuffix(pattern, "%") && len(pattern) >= 2:
				return func(s string) bool { return strings.Contains(s, trimmed) }
			case strings.HasPrefix(pattern, "%"):
				return func(s string) bool { return strings.HasSuffix(s, trimmed) }
			case strings.HasSuffix(pattern, "%"):
				return func(s string) bool { return strings.HasPrefix(s, trimmed) }
			default:
				return func(s string) bool { return s == trimmed }
			}
		}
	}
	return func(s string) bool { return likeMatch(pattern, s) }
}

// likeMatch is a backtracking matcher for general LIKE patterns.
func likeMatch(pattern, s string) bool {
	pi, si := 0, 0
	starP, starS := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			pi++
			si++
		case pi < len(pattern) && pattern[pi] == '%':
			starP = pi
			starS = si
			pi++
		case starP >= 0:
			starS++
			si = starS
			pi = starP + 1
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}
