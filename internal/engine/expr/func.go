package expr

import (
	"fmt"
	"sync"

	"repro/internal/engine/types"
)

// ScalarFunc is a function callable from SQL expressions.
type ScalarFunc struct {
	Name string
	// Builtin functions are evaluated inline by the executor; UDFs go
	// through the external call convention (argument boxing, indirect
	// dispatch, optional fencing), which is measurably more expensive —
	// the effect the paper quantifies in Figure 14.
	Builtin bool
	// MinArgs and MaxArgs bound the argument count.
	MinArgs, MaxArgs int
	// ReadOnly declares that Fn never mutates its argument payloads, so
	// the external call convention may skip the per-call defensive copy
	// (DB2's NO SQL + deterministic UDFs get the same marshaling
	// shortcut). Leave false for UDFs used to measure the full Figure-14
	// invocation overhead.
	ReadOnly bool
	// Fn is the implementation.
	Fn func(args []types.Value) (types.Value, error)
}

// TableFunc is a table-valued function usable in FROM via TABLE(f(...)),
// like the paper's unnest UDF (§3.5).
type TableFunc struct {
	Name string
	// Cols are the output column names (the paper's unnest returns a
	// single column named "out").
	Cols []string
	// Types are the output column types, parallel to Cols.
	Types []types.Kind
	// MinArgs and MaxArgs bound the argument count.
	MinArgs, MaxArgs int
	// Fn produces the output rows for one invocation.
	Fn func(args []types.Value) ([][]types.Value, error)
}

// Registry holds the functions known to a database.
type Registry struct {
	scalars map[string]*ScalarFunc
	tables  map[string]*TableFunc
	// Fenced routes UDF calls through a separate goroutine, modeling
	// DB2's FENCED mode where UDFs run in their own address space. The
	// paper runs NOT FENCED because fencing "causes a significant
	// performance penalty"; the flag exists to reproduce that penalty.
	Fenced    bool
	fenceOnce sync.Once
	fenceCh   chan fenceCall
}

type fenceCall struct {
	fn    func(args []types.Value) (types.Value, error)
	args  []types.Value
	reply chan fenceReply
}

type fenceReply struct {
	val types.Value
	err error
}

// NewRegistry returns an empty function registry.
func NewRegistry() *Registry {
	return &Registry{
		scalars: map[string]*ScalarFunc{},
		tables:  map[string]*TableFunc{},
	}
}

// RegisterScalar adds a scalar function; redefinition is an error.
func (r *Registry) RegisterScalar(f *ScalarFunc) error {
	if _, dup := r.scalars[f.Name]; dup {
		return fmt.Errorf("expr: scalar function %s already registered", f.Name)
	}
	r.scalars[f.Name] = f
	return nil
}

// RegisterTable adds a table function; redefinition is an error.
func (r *Registry) RegisterTable(f *TableFunc) error {
	if _, dup := r.tables[f.Name]; dup {
		return fmt.Errorf("expr: table function %s already registered", f.Name)
	}
	r.tables[f.Name] = f
	return nil
}

// Scalar returns the named scalar function, or nil.
func (r *Registry) Scalar(name string) *ScalarFunc { return r.scalars[name] }

// Table returns the named table function, or nil.
func (r *Registry) Table(name string) *TableFunc { return r.tables[name] }

// callFenced routes a call through the fence goroutine, starting it on
// first use.
func (r *Registry) callFenced(fn func([]types.Value) (types.Value, error), args []types.Value) (types.Value, error) {
	r.fenceOnce.Do(func() {
		r.fenceCh = make(chan fenceCall)
		go func() {
			for c := range r.fenceCh {
				v, err := c.fn(c.args)
				c.reply <- fenceReply{val: v, err: err}
			}
		}()
	})
	reply := make(chan fenceReply, 1)
	r.fenceCh <- fenceCall{fn: fn, args: args, reply: reply}
	rep := <-reply
	return rep.val, rep.err
}

// Call is a bound scalar function invocation.
type Call struct {
	Func *ScalarFunc
	Args []Expr
	reg  *Registry
	// buf is the reusable argument buffer for the built-in fast path.
	buf []types.Value
}

// NewCall binds a function invocation.
func NewCall(reg *Registry, fn *ScalarFunc, args []Expr) (*Call, error) {
	if len(args) < fn.MinArgs || len(args) > fn.MaxArgs {
		return nil, fmt.Errorf("expr: %s expects %d..%d arguments, got %d",
			fn.Name, fn.MinArgs, fn.MaxArgs, len(args))
	}
	return &Call{Func: fn, Args: args, reg: reg, buf: make([]types.Value, len(args))}, nil
}

// Eval evaluates the arguments and dispatches. Built-ins reuse the
// argument buffer and call directly; UDFs box arguments into a fresh
// slice, validate them, and dispatch indirectly (through the fence when
// enabled) — the per-call overhead the paper attributes to the UDF
// mechanism.
func (c *Call) Eval(row []types.Value) (types.Value, error) {
	if c.Func.Builtin {
		for i, a := range c.Args {
			v, err := a.Eval(row)
			if err != nil {
				return types.Null, err
			}
			c.buf[i] = v
		}
		return c.Func.Fn(c.buf)
	}
	args := make([]types.Value, len(c.Args))
	for i, a := range c.Args {
		v, err := a.Eval(row)
		if err != nil {
			return types.Null, err
		}
		// The external call convention copies argument payloads into the
		// UDF's own memory (DB2 marshals SQL values into the UDF's
		// buffers on every call) — the per-call cost Figure 14
		// quantifies. ReadOnly UDFs skip the copy; it also keeps the
		// bytes' identity stable, which the XADT decode cache keys on.
		if c.Func.ReadOnly {
			args[i] = v
		} else {
			args[i] = copyValue(v)
		}
	}
	// The handle is re-resolved and arguments re-validated per
	// invocation.
	fn := c.reg.Scalar(c.Func.Name)
	if fn == nil {
		return types.Null, fmt.Errorf("expr: function %s disappeared", c.Func.Name)
	}
	for _, v := range args {
		_ = v.Kind()
	}
	if c.reg.Fenced {
		return c.reg.callFenced(fn.Fn, args)
	}
	return fn.Fn(args)
}

// copyValue duplicates a value's payload into fresh memory.
func copyValue(v types.Value) types.Value {
	switch v.Kind() {
	case types.KindString:
		b := make([]byte, len(v.Str()))
		copy(b, v.Str())
		return types.NewString(string(b))
	case types.KindXADT:
		b := make([]byte, len(v.XADT()))
		copy(b, v.XADT())
		return types.NewXADT(b)
	default:
		return v
	}
}

// String renders the call.
func (c *Call) String() string {
	s := c.Func.Name + "("
	for i, a := range c.Args {
		if i > 0 {
			s += ", "
		}
		s += a.String()
	}
	return s + ")"
}
