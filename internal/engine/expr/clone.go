package expr

import "repro/internal/engine/types"

// Clone returns a copy of a bound expression that is safe to evaluate
// concurrently with the original. Most expression nodes are immutable
// and shared as-is; the exception is Call, whose built-in fast path
// reuses a per-instance argument buffer, so every worker of a parallel
// pipeline must evaluate its own Call instances.
func Clone(e Expr) Expr {
	switch n := e.(type) {
	case *Cmp:
		return &Cmp{Op: n.Op, L: Clone(n.L), R: Clone(n.R)}
	case *And:
		return &And{L: Clone(n.L), R: Clone(n.R)}
	case *Or:
		return &Or{L: Clone(n.L), R: Clone(n.R)}
	case *Not:
		return &Not{E: Clone(n.E)}
	case *Call:
		return n.clone()
	default:
		// Const, Col and Like evaluate without mutable state; sharing
		// them across workers is safe.
		return e
	}
}

// CloneAll clones a slice of expressions.
func CloneAll(es []Expr) []Expr {
	out := make([]Expr, len(es))
	for i, e := range es {
		out[i] = Clone(e)
	}
	return out
}

// clone copies a Call with a private argument buffer.
func (c *Call) clone() *Call {
	args := make([]Expr, len(c.Args))
	for i, a := range c.Args {
		args[i] = Clone(a)
	}
	return &Call{Func: c.Func, Args: args, reg: c.reg, buf: make([]types.Value, len(args))}
}
