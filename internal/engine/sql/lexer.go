// Package sql parses the SQL subset the paper's workloads use: SELECT
// with DISTINCT, scalar and aggregate expressions, multi-table FROM lists
// with TABLE(f(...)) table-function items, WHERE with comparisons, LIKE,
// AND/OR/NOT, GROUP BY, and ORDER BY.
package sql

import (
	"fmt"
	"strings"
)

// tokKind classifies lexical tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // ( ) , . * = <> < <= > >=
)

type token struct {
	kind tokKind
	text string
	pos  int
}

// Error reports a parse failure with position context.
type Error struct {
	Pos int
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("sql: at %d: %s", e.Pos, e.Msg) }

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(c):
			for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
		case c >= '0' && c <= '9':
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
		case c == '\'':
			s, err := l.lexString()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tokString, text: s, pos: start})
		case strings.ContainsRune("(),.*=", rune(c)):
			l.pos++
			l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: start})
		case c == '<':
			l.pos++
			text := "<"
			if l.pos < len(l.src) && (l.src[l.pos] == '=' || l.src[l.pos] == '>') {
				text += string(l.src[l.pos])
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokSymbol, text: text, pos: start})
		case c == '>':
			l.pos++
			text := ">"
			if l.pos < len(l.src) && l.src[l.pos] == '=' {
				text += "="
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokSymbol, text: text, pos: start})
		case c == '!':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
				l.pos += 2
				l.toks = append(l.toks, token{kind: tokSymbol, text: "<>", pos: start})
			} else {
				return nil, &Error{Pos: start, Msg: "unexpected '!'"}
			}
		case c == '-':
			// Negative integer literal.
			l.pos++
			if l.pos >= len(l.src) || l.src[l.pos] < '0' || l.src[l.pos] > '9' {
				return nil, &Error{Pos: start, Msg: "unexpected '-'"}
			}
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
		default:
			return nil, &Error{Pos: start, Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// -- line comments
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

// lexString parses a single-quoted literal with ” as the escape for a
// quote.
func (l *lexer) lexString() (string, error) {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return sb.String(), nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return "", &Error{Pos: start, Msg: "unterminated string literal"}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
