package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one SELECT statement.
func Parse(src string) (*SelectStmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.atKeyword("") && p.cur().kind != tokEOF {
		return nil, p.errorf("unexpected %q after statement", p.cur().text)
	}
	return stmt, nil
}

// ParseStatement parses one statement of any kind, dispatching on the
// leading keyword. INSERT/UPDATE/DELETE (and their clause markers INTO,
// VALUES, SET) are contextual keywords, not reserved words: generated
// schemas are free to use them as table or column names, and only the
// statement head position gives them meaning.
func ParseStatement(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmt Statement
	switch {
	case p.atKeyword("SELECT"):
		stmt, err = p.parseSelect()
	case p.atKeyword("INSERT"):
		stmt, err = p.parseInsert()
	case p.atKeyword("UPDATE"):
		stmt, err = p.parseUpdate()
	case p.atKeyword("DELETE"):
		stmt, err = p.parseDelete()
	default:
		return nil, p.errorf("expected SELECT, INSERT, UPDATE, or DELETE, found %q", p.cur().text)
	}
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, p.errorf("unexpected %q after statement", p.cur().text)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) advance()   { p.pos++ }

func (p *parser) errorf(format string, args ...any) error {
	return &Error{Pos: p.cur().pos, Msg: fmt.Sprintf(format, args...)}
}

// atKeyword reports whether the current token is the given keyword
// (case-insensitive). An empty keyword never matches.
func (p *parser) atKeyword(kw string) bool {
	t := p.cur()
	return kw != "" && t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.atKeyword(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, found %q", kw, p.cur().text)
	}
	return nil
}

func (p *parser) atSymbol(s string) bool {
	t := p.cur()
	return t.kind == tokSymbol && t.text == s
}

func (p *parser) acceptSymbol(s string) bool {
	if p.atSymbol(s) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return p.errorf("expected %q, found %q", s, p.cur().text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", p.errorf("expected identifier, found %q", t.text)
	}
	if isReserved(t.text) {
		return "", p.errorf("reserved word %q used as identifier", t.text)
	}
	p.advance()
	return t.text, nil
}

var reserved = map[string]bool{
	"select": true, "distinct": true, "from": true, "where": true,
	"and": true, "or": true, "not": true, "like": true, "group": true,
	"by": true, "order": true, "as": true, "table": true, "asc": true,
	"desc": true, "having": true, "limit": true,
}

func isReserved(word string) bool { return reserved[strings.ToLower(word)] }

var aggKinds = map[string]AggKind{
	"count": AggCount, "sum": AggSum, "min": AggMin, "max": AggMax,
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	stmt.Distinct = p.acceptKeyword("DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		item, err := p.parseFromItem()
		if err != nil {
			return nil, err
		}
		stmt.From = append(stmt.From, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.cur()
		if t.kind != tokNumber {
			return nil, p.errorf("LIMIT requires an integer")
		}
		p.advance()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil || n < 0 {
			return nil, p.errorf("bad LIMIT %q", t.text)
		}
		stmt.Limit = n
	}
	return stmt, nil
}

// parseInsert parses INSERT INTO table [(col, ...)] VALUES (expr, ...)
// [, (expr, ...)]*.
func (p *parser) parseInsert() (*InsertStmt, error) {
	p.advance() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: name}
	if p.acceptSymbol("(") {
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, col)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseValueExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		if len(stmt.Columns) > 0 && len(row) != len(stmt.Columns) {
			return nil, p.errorf("VALUES tuple has %d expressions for %d columns", len(row), len(stmt.Columns))
		}
		stmt.Rows = append(stmt.Rows, row)
		if !p.acceptSymbol(",") {
			break
		}
	}
	return stmt, nil
}

// parseUpdate parses UPDATE table SET col = expr [, ...] [WHERE expr].
func (p *parser) parseUpdate() (*UpdateStmt, error) {
	p.advance() // UPDATE
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &UpdateStmt{Table: name}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		e, err := p.parseValueExpr()
		if err != nil {
			return nil, err
		}
		stmt.Set = append(stmt.Set, SetClause{Column: col, Value: e})
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	return stmt, nil
}

// parseValueExpr parses a DML value expression, where NULL is a
// contextual literal. A bare "null" in this position always means the
// literal — column references are not evaluable in value positions
// anyway.
func (p *parser) parseValueExpr() (Expr, error) {
	if p.atKeyword("NULL") {
		p.advance()
		return &NullLit{}, nil
	}
	return p.parseExpr()
}

// parseDelete parses DELETE FROM table [WHERE expr].
func (p *parser) parseDelete() (*DeleteStmt, error) {
	p.advance() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{Table: name}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	var item SelectItem
	// Aggregate?
	if t := p.cur(); t.kind == tokIdent {
		if agg, ok := aggKinds[strings.ToLower(t.text)]; ok && p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "(" {
			p.advance()
			p.advance() // '('
			item.Agg = agg
			if agg == AggCount && p.atSymbol("*") {
				p.advance()
				item.Star = true
			} else {
				item.AggDistinct = p.acceptKeyword("DISTINCT")
				e, err := p.parseExpr()
				if err != nil {
					return item, err
				}
				item.Expr = e
			}
			if err := p.expectSymbol(")"); err != nil {
				return item, err
			}
			return p.parseItemAlias(item)
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return item, err
	}
	item.Expr = e
	return p.parseItemAlias(item)
}

func (p *parser) parseItemAlias(item SelectItem) (SelectItem, error) {
	if p.acceptKeyword("AS") {
		name, err := p.expectIdent()
		if err != nil {
			return item, err
		}
		item.Alias = name
	}
	return item, nil
}

func (p *parser) parseFromItem() (FromItem, error) {
	var item FromItem
	if p.acceptKeyword("TABLE") {
		if err := p.expectSymbol("("); err != nil {
			return item, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return item, err
		}
		if err := p.expectSymbol("("); err != nil {
			return item, err
		}
		call := &TableFuncCall{Name: name}
		if !p.atSymbol(")") {
			for {
				arg, err := p.parseExpr()
				if err != nil {
					return item, err
				}
				call.Args = append(call.Args, arg)
				if !p.acceptSymbol(",") {
					break
				}
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return item, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return item, err
		}
		alias, err := p.expectIdent()
		if err != nil {
			return item, fmt.Errorf("%w (table functions need an alias)", err)
		}
		item.Func = call
		item.Alias = alias
		return item, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return item, err
	}
	item.Table = name
	item.Alias = name
	// Optional alias (possibly with AS).
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return item, err
		}
		item.Alias = alias
	} else if t := p.cur(); t.kind == tokIdent && !isReserved(t.text) {
		item.Alias = t.text
		p.advance()
	}
	return item, nil
}

// Expression grammar: or := and (OR and)*; and := unary (AND unary)*;
// unary := NOT unary | cmp; cmp := primary ((=|<>|<|<=|>|>=) primary |
// [NOT] LIKE 'pattern')?; primary := literal | func(args) | colref |
// (or).
func (p *parser) parseExpr() (Expr, error) {
	return p.parseOr()
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	if t := p.cur(); t.kind == tokSymbol {
		switch t.text {
		case "=", "<>", "<", "<=", ">", ">=":
			p.advance()
			r, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			return &BinOp{Op: t.text, L: l, R: r}, nil
		}
	}
	negated := false
	if p.atKeyword("NOT") && p.pos+1 < len(p.toks) &&
		p.toks[p.pos+1].kind == tokIdent && strings.EqualFold(p.toks[p.pos+1].text, "LIKE") {
		p.advance()
		negated = true
	}
	if p.acceptKeyword("LIKE") {
		t := p.cur()
		if t.kind != tokString {
			return nil, p.errorf("LIKE requires a string pattern")
		}
		p.advance()
		return &LikeExpr{E: l, Pattern: t.text, Negated: negated}, nil
	}
	if negated {
		return nil, p.errorf("expected LIKE after NOT")
	}
	return l, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.advance()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer %q", t.text)
		}
		return &IntLit{Val: n}, nil
	case tokString:
		p.advance()
		return &StrLit{Val: t.text}, nil
	case tokSymbol:
		if t.text == "(" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tokIdent:
		if isReserved(t.text) {
			return nil, p.errorf("unexpected keyword %q", t.text)
		}
		// Function call?
		if p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "(" {
			p.advance()
			p.advance()
			call := &FuncExpr{Name: t.text}
			if !p.atSymbol(")") {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if !p.acceptSymbol(",") {
						break
					}
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		return p.parseColRefFrom(t)
	}
	return nil, p.errorf("unexpected %q in expression", t.text)
}

// parseColRefFrom consumes an identifier (already peeked as t) and an
// optional .name suffix.
func (p *parser) parseColRefFrom(t token) (Expr, error) {
	p.advance()
	if p.acceptSymbol(".") {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &ColRef{Qualifier: t.text, Name: name}, nil
	}
	return &ColRef{Name: t.text}, nil
}
