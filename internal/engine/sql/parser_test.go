package sql

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return stmt
}

func TestParseSimpleSelect(t *testing.T) {
	stmt := mustParse(t, `SELECT speaker_value FROM speaker`)
	if len(stmt.Items) != 1 || len(stmt.From) != 1 {
		t.Fatalf("stmt = %+v", stmt)
	}
	ref, ok := stmt.Items[0].Expr.(*ColRef)
	if !ok || ref.Name != "speaker_value" {
		t.Errorf("item = %v", stmt.Items[0].Expr)
	}
	if stmt.From[0].Table != "speaker" || stmt.From[0].Alias != "speaker" {
		t.Errorf("from = %+v", stmt.From[0])
	}
}

// TestParsePaperQE1 parses the paper's Figure 7(a) query verbatim.
func TestParsePaperQE1(t *testing.T) {
	src := `
SELECT getElm(speech_line, 'LINE', 'LINE', 'friend')
FROM speech, act
WHERE findKeyInElm(speech_speaker, 'SPEAKER', 'HAMLET') = 1
AND findKeyInElm(speech_line, 'LINE', 'friend') = 1
AND speech_parentID = actID
AND speech_parentCODE = 'ACT'`
	stmt := mustParse(t, src)
	call, ok := stmt.Items[0].Expr.(*FuncExpr)
	if !ok || call.Name != "getElm" || len(call.Args) != 4 {
		t.Fatalf("select item = %v", stmt.Items[0].Expr)
	}
	if len(stmt.From) != 2 {
		t.Errorf("from = %v", stmt.From)
	}
	if stmt.Where == nil {
		t.Fatal("no where")
	}
	// The where clause is a left-deep AND tree with 4 conjuncts.
	conj := 1
	var count func(Expr)
	count = func(e Expr) {
		if b, ok := e.(*BinOp); ok && b.Op == "AND" {
			conj++
			count(b.L)
			count(b.R)
		}
	}
	count(stmt.Where)
	if conj != 4 {
		t.Errorf("conjuncts = %d, want 4", conj)
	}
}

// TestParsePaperQE1Hybrid parses Figure 7(b).
func TestParsePaperQE1Hybrid(t *testing.T) {
	src := `
SELECT line_value
FROM speech, act, speaker, line
WHERE speech_parentID = actID
AND speech_parentCODE = 'ACT'
AND speaker_parentID = speechID
AND speaker_value = 'HAMLET'
AND line_parentID = speechID
AND line_value LIKE '%friend%'`
	stmt := mustParse(t, src)
	if len(stmt.From) != 4 {
		t.Errorf("from = %v", stmt.From)
	}
	var foundLike bool
	var walk func(Expr)
	walk = func(e Expr) {
		switch n := e.(type) {
		case *BinOp:
			walk(n.L)
			walk(n.R)
		case *LikeExpr:
			foundLike = true
			if n.Pattern != "%friend%" {
				t.Errorf("pattern = %q", n.Pattern)
			}
		}
	}
	walk(stmt.Where)
	if !foundLike {
		t.Error("LIKE predicate not parsed")
	}
}

// TestParseUnnestQuery parses the Figure 9 unnest query.
func TestParseUnnestQuery(t *testing.T) {
	src := `SELECT DISTINCT unnestedS.out AS SPEAKER
FROM speakers, TABLE(unnest(speaker, 'speaker')) unnestedS`
	stmt := mustParse(t, src)
	if !stmt.Distinct {
		t.Error("DISTINCT not parsed")
	}
	if stmt.Items[0].Alias != "SPEAKER" {
		t.Errorf("alias = %q", stmt.Items[0].Alias)
	}
	ref := stmt.Items[0].Expr.(*ColRef)
	if ref.Qualifier != "unnestedS" || ref.Name != "out" {
		t.Errorf("ref = %+v", ref)
	}
	if len(stmt.From) != 2 {
		t.Fatalf("from = %+v", stmt.From)
	}
	tf := stmt.From[1]
	if tf.Func == nil || tf.Func.Name != "unnest" || tf.Alias != "unnestedS" {
		t.Errorf("table func = %+v", tf)
	}
	if len(tf.Func.Args) != 2 {
		t.Errorf("args = %v", tf.Func.Args)
	}
}

func TestParseAggregates(t *testing.T) {
	stmt := mustParse(t, `SELECT author_value, COUNT(DISTINCT section) AS n
FROM authors GROUP BY author_value ORDER BY n DESC`)
	if stmt.Items[1].Agg != AggCount || !stmt.Items[1].AggDistinct {
		t.Errorf("agg item = %+v", stmt.Items[1])
	}
	if len(stmt.GroupBy) != 1 {
		t.Fatalf("group by = %+v", stmt.GroupBy)
	}
	if ref, ok := stmt.GroupBy[0].(*ColRef); !ok || ref.Name != "author_value" {
		t.Errorf("group by = %+v", stmt.GroupBy[0])
	}
	if len(stmt.OrderBy) != 1 || !stmt.OrderBy[0].Desc {
		t.Errorf("order by = %+v", stmt.OrderBy)
	}
	if !stmt.HasAggregates() {
		t.Error("HasAggregates = false")
	}
}

func TestParseCountStar(t *testing.T) {
	stmt := mustParse(t, `SELECT COUNT(*) FROM speech WHERE speechID > 100`)
	if stmt.Items[0].Agg != AggCount || !stmt.Items[0].Star {
		t.Errorf("item = %+v", stmt.Items[0])
	}
	b := stmt.Where.(*BinOp)
	if b.Op != ">" {
		t.Errorf("where = %v", stmt.Where)
	}
}

func TestParseOtherAggregates(t *testing.T) {
	stmt := mustParse(t, `SELECT SUM(n), MIN(n), MAX(n) FROM t`)
	if stmt.Items[0].Agg != AggSum || stmt.Items[1].Agg != AggMin || stmt.Items[2].Agg != AggMax {
		t.Errorf("items = %+v", stmt.Items)
	}
}

func TestParsePrecedence(t *testing.T) {
	stmt := mustParse(t, `SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3`)
	or := stmt.Where.(*BinOp)
	if or.Op != "OR" {
		t.Fatalf("top op = %s, want OR", or.Op)
	}
	and := or.R.(*BinOp)
	if and.Op != "AND" {
		t.Errorf("right op = %s, want AND", and.Op)
	}
	// Parentheses override.
	stmt = mustParse(t, `SELECT a FROM t WHERE (x = 1 OR y = 2) AND z = 3`)
	top := stmt.Where.(*BinOp)
	if top.Op != "AND" {
		t.Errorf("parenthesized top op = %s, want AND", top.Op)
	}
}

func TestParseNot(t *testing.T) {
	stmt := mustParse(t, `SELECT a FROM t WHERE NOT x = 1 AND y NOT LIKE '%z%'`)
	and := stmt.Where.(*BinOp)
	if _, ok := and.L.(*NotExpr); !ok {
		t.Errorf("left = %T", and.L)
	}
	like := and.R.(*LikeExpr)
	if !like.Negated {
		t.Error("NOT LIKE not negated")
	}
}

func TestParseStringEscapes(t *testing.T) {
	stmt := mustParse(t, `SELECT a FROM t WHERE s = 'O''Brien'`)
	b := stmt.Where.(*BinOp)
	if lit := b.R.(*StrLit); lit.Val != "O'Brien" {
		t.Errorf("literal = %q", lit.Val)
	}
}

func TestParseNegativeNumbersAndComments(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t -- trailing comment\nWHERE n = -5")
	b := stmt.Where.(*BinOp)
	if lit := b.R.(*IntLit); lit.Val != -5 {
		t.Errorf("literal = %d", lit.Val)
	}
}

func TestParseTableAliases(t *testing.T) {
	stmt := mustParse(t, `SELECT s.speechID FROM speech s, speech AS s2 WHERE s.speechID = s2.speechID`)
	if stmt.From[0].Alias != "s" || stmt.From[1].Alias != "s2" {
		t.Errorf("aliases = %+v", stmt.From)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`SELECT`,
		`SELECT a`,
		`SELECT a FROM`,
		`SELECT a FROM t WHERE`,
		`SELECT a FROM t WHERE x LIKE 5`,
		`SELECT a FROM t GROUP`,
		`SELECT a FROM t extra garbage ,`,
		`SELECT a FROM TABLE(f(1))`,        // missing alias
		`SELECT COUNT( FROM t`,             // bad aggregate
		`SELECT a FROM t WHERE x = 'open`,  // unterminated string
		`SELECT a FROM t WHERE x ! 1`,      // bad operator
		`SELECT a FROM t WHERE select = 1`, // keyword as identifier
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	stmt := mustParse(t, `select distinct a from t where b like '%x%' group by a order by a asc`)
	if !stmt.Distinct || stmt.Where == nil || len(stmt.GroupBy) != 1 || len(stmt.OrderBy) != 1 {
		t.Errorf("stmt = %+v", stmt)
	}
}

func TestExprStringsRoundTrip(t *testing.T) {
	src := `SELECT a FROM t WHERE f(x, 'v') = 1 AND NOT b LIKE '%p%' OR c.d <> 2`
	stmt := mustParse(t, src)
	s := stmt.Where.String()
	for _, want := range []string{"f(x, 'v')", "NOT", "LIKE '%p%'", "c.d <> 2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestParseHavingAndLimit(t *testing.T) {
	stmt := mustParse(t, `SELECT grp, COUNT(*) AS n FROM t GROUP BY grp HAVING n > 2 ORDER BY n DESC LIMIT 5`)
	if stmt.Having == nil {
		t.Fatal("HAVING not parsed")
	}
	b, ok := stmt.Having.(*BinOp)
	if !ok || b.Op != ">" {
		t.Errorf("having = %v", stmt.Having)
	}
	if stmt.Limit != 5 {
		t.Errorf("limit = %d", stmt.Limit)
	}
	// No LIMIT means -1.
	stmt = mustParse(t, `SELECT a FROM t`)
	if stmt.Limit != -1 {
		t.Errorf("default limit = %d", stmt.Limit)
	}
}

func TestParseLimitErrors(t *testing.T) {
	for _, q := range []string{
		`SELECT a FROM t LIMIT`,
		`SELECT a FROM t LIMIT x`,
		`SELECT a FROM t LIMIT -3`,
	} {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) succeeded", q)
		}
	}
}

func TestParseInsert(t *testing.T) {
	stmt, err := ParseStatement(`INSERT INTO play (playID, play_title, play_scndescr) VALUES (-1, 'Hamlet', NULL), (2, 'Lear', 'heath')`)
	if err != nil {
		t.Fatal(err)
	}
	ins, ok := stmt.(*InsertStmt)
	if !ok {
		t.Fatalf("statement = %T, want *InsertStmt", stmt)
	}
	if ins.Table != "play" {
		t.Errorf("table = %q", ins.Table)
	}
	if len(ins.Columns) != 3 || ins.Columns[0] != "playID" {
		t.Errorf("columns = %v", ins.Columns)
	}
	if len(ins.Rows) != 2 || len(ins.Rows[0]) != 3 {
		t.Fatalf("rows = %v", ins.Rows)
	}
	if lit, ok := ins.Rows[0][0].(*IntLit); !ok || lit.Val != -1 {
		t.Errorf("first value = %v, want -1", ins.Rows[0][0])
	}
	if _, ok := ins.Rows[0][2].(*NullLit); !ok {
		t.Errorf("third value = %v, want NULL", ins.Rows[0][2])
	}
}

func TestParseUpdate(t *testing.T) {
	stmt, err := ParseStatement(`UPDATE speech SET speech_speaker = 'ROMEO', speech_childOrder = NULL WHERE speechID >= 2 AND speechID <= 5`)
	if err != nil {
		t.Fatal(err)
	}
	up, ok := stmt.(*UpdateStmt)
	if !ok {
		t.Fatalf("statement = %T, want *UpdateStmt", stmt)
	}
	if up.Table != "speech" || len(up.Set) != 2 {
		t.Fatalf("stmt = %+v", up)
	}
	if up.Set[0].Column != "speech_speaker" {
		t.Errorf("set[0] = %+v", up.Set[0])
	}
	if _, ok := up.Set[1].Value.(*NullLit); !ok {
		t.Errorf("set[1] value = %v, want NULL", up.Set[1].Value)
	}
	if up.Where == nil {
		t.Error("WHERE clause lost")
	}
}

func TestParseDelete(t *testing.T) {
	stmt, err := ParseStatement(`DELETE FROM line WHERE lineID = 7`)
	if err != nil {
		t.Fatal(err)
	}
	del, ok := stmt.(*DeleteStmt)
	if !ok {
		t.Fatalf("statement = %T, want *DeleteStmt", stmt)
	}
	if del.Table != "line" || del.Where == nil {
		t.Fatalf("stmt = %+v", del)
	}
	stmt, err = ParseStatement(`DELETE FROM line`)
	if err != nil {
		t.Fatal(err)
	}
	if del := stmt.(*DeleteStmt); del.Where != nil {
		t.Errorf("bare DELETE grew a WHERE: %+v", del)
	}
}

// NULL is contextual: it stays usable as an identifier in SELECT, so
// pre-DML queries never change meaning.
func TestParseNullContextual(t *testing.T) {
	stmt := mustParse(t, `SELECT null FROM t`)
	if ref, ok := stmt.Items[0].Expr.(*ColRef); !ok || ref.Name != "null" {
		t.Errorf("SELECT null = %v, want column reference", stmt.Items[0].Expr)
	}
}

func TestParseDMLErrors(t *testing.T) {
	for _, src := range []string{
		`INSERT INTO play VALUES`,
		`INSERT INTO play (a, b) VALUES (1)`,
		`UPDATE play WHERE playID = 1`,
		`UPDATE play SET`,
		`DELETE play WHERE playID = 1`,
		`INSERT INTO (a) VALUES (1)`,
	} {
		if _, err := ParseStatement(src); err == nil {
			t.Errorf("ParseStatement(%q) succeeded, want error", src)
		}
	}
}
