package sql

import (
	"fmt"
	"strings"
)

// Expr is an unbound expression node; the planner binds column references
// against the FROM schemas.
type Expr interface {
	String() string
}

// ColRef references a column, optionally qualified by a table alias.
type ColRef struct {
	Qualifier string
	Name      string
}

// String renders the reference.
func (c *ColRef) String() string {
	if c.Qualifier == "" {
		return c.Name
	}
	return c.Qualifier + "." + c.Name
}

// IntLit is an integer literal.
type IntLit struct {
	Val int64
}

// String renders the literal.
func (i *IntLit) String() string { return fmt.Sprintf("%d", i.Val) }

// NullLit is a NULL literal. NULL is contextual: it is only recognized
// in DML value positions (INSERT VALUES tuples, UPDATE SET right-hand
// sides), so schemas remain free to use "null" as a column name.
type NullLit struct{}

// String renders the literal.
func (*NullLit) String() string { return "NULL" }

// StrLit is a string literal.
type StrLit struct {
	Val string
}

// String renders the literal in SQL quoting.
func (s *StrLit) String() string {
	return "'" + strings.ReplaceAll(s.Val, "'", "''") + "'"
}

// BinOp is a binary operator: comparisons, AND, OR.
type BinOp struct {
	Op   string // "=", "<>", "<", "<=", ">", ">=", "AND", "OR"
	L, R Expr
}

// String renders the operation.
func (b *BinOp) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// NotExpr negates an expression.
type NotExpr struct {
	E Expr
}

// String renders the negation.
func (n *NotExpr) String() string { return "NOT " + n.E.String() }

// LikeExpr is a LIKE predicate.
type LikeExpr struct {
	E       Expr
	Pattern string
	Negated bool
}

// String renders the predicate.
func (l *LikeExpr) String() string {
	op := "LIKE"
	if l.Negated {
		op = "NOT LIKE"
	}
	return fmt.Sprintf("%s %s '%s'", l.E, op, l.Pattern)
}

// FuncExpr is a scalar function invocation.
type FuncExpr struct {
	Name string
	Args []Expr
}

// String renders the call.
func (f *FuncExpr) String() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return f.Name + "(" + strings.Join(parts, ", ") + ")"
}

// AggKind enumerates aggregate functions.
type AggKind int

// Aggregates supported in select lists.
const (
	AggNone AggKind = iota
	AggCount
	AggSum
	AggMin
	AggMax
)

// String names the aggregate.
func (a AggKind) String() string {
	switch a {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return ""
	}
}

// SelectItem is one output expression of a SELECT.
type SelectItem struct {
	// Expr is the value expression; nil for COUNT(*).
	Expr Expr
	// Alias is the output name from AS, or "".
	Alias string
	// Agg is the aggregate applied, AggNone for plain expressions.
	Agg AggKind
	// AggDistinct marks COUNT(DISTINCT expr).
	AggDistinct bool
	// Star marks COUNT(*).
	Star bool
}

// FromItem is one entry of the FROM list: a base table or a table
// function.
type FromItem struct {
	// Table is the base-table name; empty for table functions.
	Table string
	// Alias is the binding name (defaults to the table name).
	Alias string
	// Func is set for TABLE(f(args)) items.
	Func *TableFuncCall
}

// TableFuncCall is a table-function invocation in FROM.
type TableFuncCall struct {
	Name string
	Args []Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStmt is a parsed SELECT statement.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []FromItem
	Where    Expr
	GroupBy  []Expr
	// Having filters groups; references output columns of the aggregate
	// (aliases or grouped expressions).
	Having  Expr
	OrderBy []OrderItem
	// Limit bounds the result set; negative means no limit.
	Limit int64
}

// Statement is any parsed SQL statement: SELECT, INSERT, UPDATE, DELETE.
type Statement interface {
	stmt()
}

func (*SelectStmt) stmt() {}
func (*InsertStmt) stmt() {}
func (*UpdateStmt) stmt() {}
func (*DeleteStmt) stmt() {}

// InsertStmt is a parsed INSERT ... VALUES statement. Columns may be
// empty, meaning the full column list in schema order.
type InsertStmt struct {
	Table   string
	Columns []string
	// Rows holds one expression list per VALUES tuple; expressions must
	// be literal-foldable (no column references).
	Rows [][]Expr
}

// SetClause is one column assignment of an UPDATE.
type SetClause struct {
	Column string
	Value  Expr
}

// UpdateStmt is a parsed UPDATE ... SET ... [WHERE ...] statement.
type UpdateStmt struct {
	Table string
	Set   []SetClause
	Where Expr
}

// DeleteStmt is a parsed DELETE FROM ... [WHERE ...] statement.
type DeleteStmt struct {
	Table string
	Where Expr
}

// HasAggregates reports whether any select item applies an aggregate.
func (s *SelectStmt) HasAggregates() bool {
	for _, it := range s.Items {
		if it.Agg != AggNone {
			return true
		}
	}
	return false
}
