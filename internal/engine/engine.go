// Package engine is the database facade of the reproduction: an embedded
// relational engine with table storage, B+tree indexes, a SQL-subset
// planner/executor, and the XADT methods of the paper registered as UDFs
// (getElm, findKeyInElm, getElmIndex, and the unnest table function),
// alongside built-in and UDF variants of string functions for the
// Figure 14 overhead experiment.
package engine

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync/atomic"

	"repro/internal/engine/catalog"
	"repro/internal/engine/exec"
	"repro/internal/engine/expr"
	"repro/internal/engine/mvcc"
	"repro/internal/engine/plan"
	"repro/internal/engine/sql"
	"repro/internal/engine/storage"
	"repro/internal/engine/types"
	"repro/internal/engine/wal"
	"repro/internal/xadt"
)

// Config tunes a database instance.
type Config struct {
	// BufferPoolPages bounds the tracked page residency; 0 disables
	// buffer accounting.
	BufferPoolPages int
	// Planner options (join algorithm, pushdown, index usage).
	Planner plan.Options
	// FencedUDFs runs UDFs in a separate goroutine (DB2's FENCED mode).
	// The paper measures NOT FENCED.
	FencedUDFs bool
	// DOP is the degree of intra-query parallelism. 0 defaults to
	// runtime.GOMAXPROCS(0); 1 forces serial execution. A non-zero
	// Planner.DOP takes precedence.
	DOP int
	// XADTCacheEntries bounds each worker's XADT decode cache; 0 uses
	// xadt.DefaultCacheEntries.
	XADTCacheEntries int
	// DisableXADTFastPath starts the database with header fast-reject
	// and decode caching off (the parse-every-call baseline). Toggle at
	// runtime with SetXADTFastPath.
	DisableXADTFastPath bool
	// WALDir, when non-empty, enables the record-level write-ahead log:
	// every document load becomes one committed batch under this
	// directory, checkpoints truncate the log, and core.OpenRecovered
	// restores the committed prefix after a crash. Consumed by the
	// store lifecycle layer (core), which owns load batching and
	// checkpointing.
	WALDir string
	// WALSync is the log sync policy (wal.SyncAlways, the zero value,
	// wal.SyncBatch, or wal.SyncOff).
	WALSync wal.SyncPolicy
	// VFS is the filesystem the WAL and checkpoint files go through;
	// nil means the operating system (storage.OSFS). Tests inject
	// storage.MemVFS/storage.FaultVFS here to drive crash points
	// deterministically.
	VFS storage.VFS
	// MemBudgetBytes caps the tracked memory of each query's blocking
	// operators (sort, hash-join build, aggregate groups); when a query
	// exceeds it, those operators spill to run files and merge back with
	// byte-identical output. 0 means unlimited (the in-memory paths).
	// A non-zero Planner.MemBudgetBytes takes precedence.
	MemBudgetBytes int64
	// SpillDir is the base directory for per-query spill files; empty
	// uses a subdirectory of os.TempDir(). Spill I/O goes through VFS
	// when set (falling back to the OS).
	SpillDir string
	// DisableVectorized runs every query with the row-at-a-time operator
	// paths instead of batch-at-a-time execution — the seed behaviour,
	// kept for the before/after benchmark and the differential harness.
	DisableVectorized bool
	// DisableXADTIndexes keeps the planner off the XADT fragment indexes
	// (path + keyword) even when they exist — the scan baseline for the
	// index benchmark and the index-off differential cells.
	DisableXADTIndexes bool
	// MVCC attaches a transaction manager and per-table version sidecars
	// at open, enabling Begin/Commit/Rollback sessions with snapshot
	// isolation. Off, the database behaves exactly as the single-user
	// engine of PRs 1–8.
	MVCC bool
}

// xadtRuntime is the per-database XADT evaluation state: the decode
// cache pool the UDFs borrow worker-private caches from, and the
// fast-path switch benchmarks toggle to compare against the
// parse-every-call baseline.
type xadtRuntime struct {
	caches  *xadt.CachePool
	enabled atomic.Bool
}

func newXadtRuntime(cfg Config) *xadtRuntime {
	rt := &xadtRuntime{caches: xadt.NewCachePool(cfg.XADTCacheEntries)}
	rt.enabled.Store(!cfg.DisableXADTFastPath)
	return rt
}

// evaluator returns the evaluator for one UDF invocation and its
// release function. With the fast path on, the evaluator carries a
// pooled cache (sync.Pool keeps it effectively worker-private, so the
// hot path takes no locks); off, it parses every call and ignores
// headers, reproducing seed-era behaviour exactly.
func (rt *xadtRuntime) evaluator() (*xadt.Evaluator, func()) {
	if !rt.enabled.Load() {
		return &xadt.Evaluator{NoFilter: true}, func() {}
	}
	c := rt.caches.Get()
	e := &xadt.Evaluator{Cache: c}
	return e, func() { rt.caches.Put(c) }
}

// Database is an embedded database instance.
type Database struct {
	Catalog  *catalog.Catalog
	Registry *expr.Registry
	Pool     *storage.BufferPool
	// TxnMgr is the MVCC transaction manager, nil unless Config.MVCC was
	// set (or EnableMVCC called). When present, Begin opens snapshot
	// sessions and every direct mutation must run inside a transaction
	// envelope (see core's direct-op wrappers).
	TxnMgr  *mvcc.TxnManager
	planner *plan.Planner
	xadtRT  *xadtRuntime
	spill   *exec.SpillSink
}

// EnableMVCC attaches a transaction manager and registers a version
// sidecar on every existing (and future) table. Idempotent; must be
// called before concurrent use begins.
func (db *Database) EnableMVCC() {
	if db.TxnMgr != nil {
		return
	}
	db.TxnMgr = mvcc.NewTxnManager()
	db.Catalog.SetMVCC(db.TxnMgr)
}

// SpillStats returns the spill counters accumulated across all queries
// since Open or the last ResetSpillStats: runs written, bytes spilled,
// extra merge passes, and the highest tracked-memory peak of any query.
func (db *Database) SpillStats() exec.SpillStats { return db.spill.Stats() }

// ResetSpillStats zeroes the spill counters, so benchmarks can attribute
// spill activity to one measured query.
func (db *Database) ResetSpillStats() { db.spill.Reset() }

// SetXADTFastPath switches XADT header fast-reject and decode caching
// on or off at runtime. Off reproduces the parse-every-call baseline on
// the same stored data, so results must be byte-identical either way.
func (db *Database) SetXADTFastPath(on bool) { db.xadtRT.enabled.Store(on) }

// XADTFastPath reports whether the fast path is on.
func (db *Database) XADTFastPath() bool { return db.xadtRT.enabled.Load() }

// XADTCacheStats returns the decode-cache hit/miss totals accumulated
// so far, the XADT counterpart of Pool.Stats.
func (db *Database) XADTCacheStats() xadt.CacheStats { return db.xadtRT.caches.Stats() }

// Result is a fully materialized query result.
type Result struct {
	Cols []string
	Rows [][]types.Value
}

// Open creates an empty database with the standard function library
// registered.
func Open(cfg Config) *Database {
	pool := storage.NewBufferPool(cfg.BufferPoolPages)
	cat := catalog.New(pool)
	reg := expr.NewRegistry()
	reg.Fenced = cfg.FencedUDFs
	spill := &exec.SpillSink{}
	db := &Database{
		Catalog:  cat,
		Registry: reg,
		Pool:     pool,
		planner:  &plan.Planner{Cat: cat, Reg: reg, Opts: resolveOptions(cfg), Spill: spill},
		xadtRT:   newXadtRuntime(cfg),
		spill:    spill,
	}
	registerStandardFunctions(reg, db.xadtRT)
	if cfg.MVCC {
		db.EnableMVCC()
	}
	return db
}

// resolveOptions folds the top-level Config knobs into the planner
// options: an explicit Planner.DOP wins, then Config.DOP, then the
// machine's GOMAXPROCS (a bare plan.Planner constructed without
// engine.Open keeps DOP 0 and plans serially). The memory budget and
// spill location fold the same way, and spill I/O defaults to the
// database's VFS so tests exercising spills stay in memory.
func resolveOptions(cfg Config) plan.Options {
	opts := cfg.Planner
	if opts.DOP == 0 {
		opts.DOP = cfg.DOP
	}
	if opts.DOP == 0 {
		opts.DOP = runtime.GOMAXPROCS(0)
	}
	if opts.MemBudgetBytes == 0 {
		opts.MemBudgetBytes = cfg.MemBudgetBytes
	}
	if opts.SpillVFS == nil {
		opts.SpillVFS = cfg.VFS
	}
	if opts.SpillDir == "" {
		opts.SpillDir = cfg.SpillDir
	}
	if cfg.DisableVectorized {
		opts.DisableVectorized = true
	}
	if cfg.DisableXADTIndexes {
		opts.DisableXADTIndexes = true
	}
	return opts
}

// SetPlannerOptions replaces the optimizer options (used by ablation
// benchmarks to switch join algorithms).
func (db *Database) SetPlannerOptions(opts plan.Options) {
	db.planner.Opts = opts
}

// CreateTable registers a table.
func (db *Database) CreateTable(name string, cols []catalog.Column) (*catalog.Table, error) {
	return db.Catalog.CreateTable(name, cols)
}

// CreateIndex builds an index over table.column.
func (db *Database) CreateIndex(table, column string) error {
	_, err := db.Catalog.CreateIndex(table, column)
	return err
}

// CreateXADTIndex builds the path + keyword fragment index over an XADT
// column.
func (db *Database) CreateXADTIndex(table, column string) error {
	_, err := db.Catalog.CreateXADTIndex(table, column)
	return err
}

// RunStats refreshes optimizer statistics on every table.
func (db *Database) RunStats() error { return db.Catalog.RunStatsAll() }

// Plan compiles a query without executing it.
func (db *Database) Plan(query string) (exec.Operator, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	return db.planner.Plan(stmt)
}

// Query compiles and runs a query, materializing the result.
func (db *Database) Query(query string) (*Result, error) {
	op, err := db.Plan(query)
	if err != nil {
		return nil, err
	}
	rows, err := exec.Drain(op)
	if err != nil {
		return nil, fmt.Errorf("engine: executing %q: %w", query, err)
	}
	return &Result{Cols: op.Schema().Names(), Rows: rows}, nil
}

// Exec parses and runs any statement — SELECT or DML — returning the
// result-row count for queries and the affected-row count for mutations.
// Redo records of mutations go to log (often a *wal.Batch); a nil log
// runs them without durability.
func (db *Database) Exec(query string, log exec.MutationLog) (int64, error) {
	stmt, err := sql.ParseStatement(query)
	if err != nil {
		return 0, err
	}
	return db.ExecStatement(stmt, log)
}

// ExecStatement runs an already-parsed statement; see Exec.
func (db *Database) ExecStatement(stmt sql.Statement, log exec.MutationLog) (int64, error) {
	op, err := db.planner.PlanStatement(stmt, log)
	if err != nil {
		return 0, err
	}
	rows, err := exec.Drain(op)
	if err != nil {
		return 0, fmt.Errorf("engine: executing statement: %w", err)
	}
	if _, ok := stmt.(*sql.SelectStmt); ok {
		return int64(len(rows)), nil
	}
	// Mutation operators emit exactly one row: the affected-row count.
	if len(rows) != 1 || len(rows[0]) != 1 {
		return 0, fmt.Errorf("engine: mutation returned malformed count")
	}
	return rows[0][0].Int(), nil
}

// Explain returns the physical plan of a query as text.
func (db *Database) Explain(query string) (string, error) {
	op, err := db.Plan(query)
	if err != nil {
		return "", err
	}
	return plan.Explain(op), nil
}

// JoinCount returns the number of join operators a query plans to — the
// paper's central cost driver.
func (db *Database) JoinCount(query string) (int, error) {
	op, err := db.Plan(query)
	if err != nil {
		return 0, err
	}
	return plan.CountJoins(op), nil
}

// Save writes a snapshot of the database's tables, data, and index
// definitions to w.
func (db *Database) Save(w io.Writer) error {
	return db.Catalog.Save(w)
}

// OpenSnapshot reconstructs a database from a snapshot written by Save,
// rebuilding indexes and statistics. The function registry is the
// standard library plus whatever the caller registers afterwards.
func OpenSnapshot(r io.Reader, cfg Config) (*Database, error) {
	pool := storage.NewBufferPool(cfg.BufferPoolPages)
	cat, err := catalog.Load(r, pool)
	if err != nil {
		return nil, err
	}
	reg := expr.NewRegistry()
	reg.Fenced = cfg.FencedUDFs
	spill := &exec.SpillSink{}
	db := &Database{
		Catalog:  cat,
		Registry: reg,
		Pool:     pool,
		planner:  &plan.Planner{Cat: cat, Reg: reg, Opts: resolveOptions(cfg), Spill: spill},
		xadtRT:   newXadtRuntime(cfg),
		spill:    spill,
	}
	registerStandardFunctions(reg, db.xadtRT)
	if cfg.MVCC {
		db.EnableMVCC()
	}
	return db, nil
}

// registerStandardFunctions installs the XADT methods (§3.4.2), the
// unnest table function (§3.5), and the built-in/UDF string function
// pairs of the Figure 14 experiment. The XADT UDFs evaluate through rt:
// each invocation borrows a worker-private decode cache and honors the
// fast-path switch. They are ReadOnly — they never mutate the fragment
// bytes — so the call convention skips the defensive argument copy.
func registerStandardFunctions(reg *expr.Registry, rt *xadtRuntime) {
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}

	// getElm(inXML, rootElm, searchElm, searchKey [, level]) → XADT
	must(reg.RegisterScalar(&expr.ScalarFunc{
		Name: "getElm", MinArgs: 4, MaxArgs: 5, ReadOnly: true,
		Fn: func(args []types.Value) (types.Value, error) {
			if args[0].IsNull() {
				return types.Null, nil
			}
			in, err := xadtArg(args[0])
			if err != nil {
				return types.Null, err
			}
			rootElm, searchElm, searchKey, err := stringArgs(args[1:4])
			if err != nil {
				return types.Null, err
			}
			level := 0
			if len(args) == 5 && !args[4].IsNull() {
				level = int(args[4].Int())
			}
			eval, release := rt.evaluator()
			defer release()
			out, err := eval.GetElm(in, rootElm, searchElm, searchKey, level)
			if err != nil {
				return types.Null, err
			}
			return types.NewXADT(out.Bytes()), nil
		},
	}))

	// findKeyInElm(inXML, searchElm, searchKey) → INTEGER 0/1
	must(reg.RegisterScalar(&expr.ScalarFunc{
		Name: "findKeyInElm", MinArgs: 3, MaxArgs: 3, ReadOnly: true,
		Fn: func(args []types.Value) (types.Value, error) {
			if args[0].IsNull() {
				return types.NewInt(0), nil
			}
			in, err := xadtArg(args[0])
			if err != nil {
				return types.Null, err
			}
			searchElm, searchKey, _, err := stringArgs([]types.Value{args[1], args[2], types.NewString("")})
			if err != nil {
				return types.Null, err
			}
			eval, release := rt.evaluator()
			defer release()
			found, err := eval.FindKeyInElm(in, searchElm, searchKey)
			if err != nil {
				return types.Null, err
			}
			if found {
				return types.NewInt(1), nil
			}
			return types.NewInt(0), nil
		},
	}))

	// getElmIndex(inXML, parentElm, childElm, startPos, endPos) → XADT
	must(reg.RegisterScalar(&expr.ScalarFunc{
		Name: "getElmIndex", MinArgs: 5, MaxArgs: 5, ReadOnly: true,
		Fn: func(args []types.Value) (types.Value, error) {
			if args[0].IsNull() {
				return types.Null, nil
			}
			in, err := xadtArg(args[0])
			if err != nil {
				return types.Null, err
			}
			parentElm, childElm, _, err := stringArgs([]types.Value{args[1], args[2], types.NewString("")})
			if err != nil {
				return types.Null, err
			}
			if args[3].IsNull() || args[4].IsNull() {
				return types.Null, nil
			}
			eval, release := rt.evaluator()
			defer release()
			out, err := eval.GetElmIndex(in, parentElm, childElm, int(args[3].Int()), int(args[4].Int()))
			if err != nil {
				return types.Null, err
			}
			return types.NewXADT(out.Bytes()), nil
		},
	}))

	// xadtText(inXML) → VARCHAR: serialized fragment text, used to
	// render query answers and compare results across mappings.
	must(reg.RegisterScalar(&expr.ScalarFunc{
		Name: "xadtText", MinArgs: 1, MaxArgs: 1, ReadOnly: true,
		Fn: func(args []types.Value) (types.Value, error) {
			if args[0].IsNull() {
				return types.Null, nil
			}
			in, err := xadtArg(args[0])
			if err != nil {
				return types.Null, err
			}
			s, err := in.Text()
			if err != nil {
				return types.Null, err
			}
			return types.NewString(s), nil
		},
	}))

	// xadtInnerText(inXML) → VARCHAR: concatenated character data of the
	// fragment, without tags or attributes. Grouping queries use it to
	// compare fragment contents across mappings (QG4/QG5).
	must(reg.RegisterScalar(&expr.ScalarFunc{
		Name: "xadtInnerText", MinArgs: 1, MaxArgs: 1, ReadOnly: true,
		Fn: func(args []types.Value) (types.Value, error) {
			if args[0].IsNull() {
				return types.Null, nil
			}
			in, err := xadtArg(args[0])
			if err != nil {
				return types.Null, err
			}
			nodes, err := in.Nodes()
			if err != nil {
				return types.Null, err
			}
			var sb strings.Builder
			for _, n := range nodes {
				sb.WriteString(n.InnerText())
			}
			return types.NewString(sb.String()), nil
		},
	}))

	// unnest(inXML, tag) table function → rows of single XADT column
	// "out" (Figure 9).
	must(reg.RegisterTable(&expr.TableFunc{
		Name: "unnest", Cols: []string{"out"}, Types: []types.Kind{types.KindXADT},
		MinArgs: 2, MaxArgs: 2,
		Fn: func(args []types.Value) ([][]types.Value, error) {
			if args[0].IsNull() {
				return nil, nil
			}
			in, err := xadtArg(args[0])
			if err != nil {
				return nil, err
			}
			if args[1].IsNull() || args[1].Kind() != types.KindString {
				return nil, fmt.Errorf("engine: unnest tag must be a string")
			}
			eval, release := rt.evaluator()
			defer release()
			vals, err := eval.Unnest(in, args[1].Str())
			if err != nil {
				return nil, err
			}
			out := make([][]types.Value, len(vals))
			for i, v := range vals {
				out[i] = []types.Value{types.NewXADT(v.Bytes())}
			}
			return out, nil
		},
	}))

	// Figure 14 pairs: built-in length/substr vs equivalent UDFs.
	lengthImpl := func(args []types.Value) (types.Value, error) {
		if args[0].IsNull() {
			return types.Null, nil
		}
		if args[0].Kind() != types.KindString {
			return types.Null, fmt.Errorf("engine: length expects a string")
		}
		return types.NewInt(int64(len(args[0].Str()))), nil
	}
	substrImpl := func(args []types.Value) (types.Value, error) {
		if args[0].IsNull() {
			return types.Null, nil
		}
		if args[0].Kind() != types.KindString {
			return types.Null, fmt.Errorf("engine: substr expects a string")
		}
		s := args[0].Str()
		start := int(args[1].Int()) // 1-based
		if start < 1 {
			start = 1
		}
		if start > len(s) {
			return types.NewString(""), nil
		}
		out := s[start-1:]
		if len(args) == 3 && !args[2].IsNull() {
			n := int(args[2].Int())
			if n < 0 {
				n = 0
			}
			if n < len(out) {
				out = out[:n]
			}
		}
		return types.NewString(out), nil
	}
	must(reg.RegisterScalar(&expr.ScalarFunc{
		Name: "length", Builtin: true, MinArgs: 1, MaxArgs: 1, Fn: lengthImpl,
	}))
	must(reg.RegisterScalar(&expr.ScalarFunc{
		Name: "udf_length", MinArgs: 1, MaxArgs: 1, Fn: lengthImpl,
	}))
	must(reg.RegisterScalar(&expr.ScalarFunc{
		Name: "substr", Builtin: true, MinArgs: 2, MaxArgs: 3, Fn: substrImpl,
	}))
	must(reg.RegisterScalar(&expr.ScalarFunc{
		Name: "udf_substr", MinArgs: 2, MaxArgs: 3, Fn: substrImpl,
	}))
}

// xadtArg converts an argument to an XADT value; VARCHAR arguments are
// treated as raw fragments, mirroring the paper's implementation of the
// XADT on top of VARCHAR.
func xadtArg(v types.Value) (xadt.Value, error) {
	switch v.Kind() {
	case types.KindXADT:
		return xadt.FromBytes(v.XADT()), nil
	case types.KindString:
		return xadt.Parse(v.Str(), xadt.Raw)
	default:
		return xadt.Value{}, fmt.Errorf("engine: expected XADT argument, got %v", v.Kind())
	}
}

// stringArgs extracts up to three string arguments, treating NULL as "".
func stringArgs(args []types.Value) (a, b, c string, err error) {
	get := func(v types.Value) (string, error) {
		if v.IsNull() {
			return "", nil
		}
		if v.Kind() != types.KindString {
			return "", fmt.Errorf("engine: expected string argument, got %v", v.Kind())
		}
		return v.Str(), nil
	}
	if len(args) > 0 {
		if a, err = get(args[0]); err != nil {
			return
		}
	}
	if len(args) > 1 {
		if b, err = get(args[1]); err != nil {
			return
		}
	}
	if len(args) > 2 {
		if c, err = get(args[2]); err != nil {
			return
		}
	}
	return
}
