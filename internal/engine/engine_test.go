package engine

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/engine/catalog"
	"repro/internal/engine/plan"
	"repro/internal/engine/types"
	"repro/internal/xadt"
)

// fixtureDB builds a tiny XORator-style database: act and speech tables
// with XADT speaker/line fragments, mirroring the paper's Figure 6 schema.
func fixtureDB(t *testing.T) *Database {
	t.Helper()
	db := Open(Config{BufferPoolPages: 256})
	_, err := db.CreateTable("act", []catalog.Column{
		{Name: "actID", Type: types.KindInt},
		{Name: "act_title", Type: types.KindString},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = db.CreateTable("speech", []catalog.Column{
		{Name: "speechID", Type: types.KindInt},
		{Name: "speech_parentID", Type: types.KindInt},
		{Name: "speech_parentCODE", Type: types.KindString},
		{Name: "speech_speaker", Type: types.KindXADT},
		{Name: "speech_line", Type: types.KindXADT},
	})
	if err != nil {
		t.Fatal(err)
	}
	frag := func(s string) types.Value {
		v, err := xadt.Parse(s, xadt.Raw)
		if err != nil {
			t.Fatal(err)
		}
		return types.NewXADT(v.Bytes())
	}
	acts := db.Catalog.Table("act")
	acts.Insert([]types.Value{types.NewInt(1), types.NewString("ACT I")})
	acts.Insert([]types.Value{types.NewInt(2), types.NewString("ACT II")})
	speeches := db.Catalog.Table("speech")
	speeches.Insert([]types.Value{
		types.NewInt(1), types.NewInt(1), types.NewString("ACT"),
		frag("<SPEAKER>HAMLET</SPEAKER>"),
		frag("<LINE>my dear friend</LINE><LINE>good night</LINE>"),
	})
	speeches.Insert([]types.Value{
		types.NewInt(2), types.NewInt(1), types.NewString("ACT"),
		frag("<SPEAKER>HORATIO</SPEAKER>"),
		frag("<LINE>hail to your lordship</LINE>"),
	})
	speeches.Insert([]types.Value{
		types.NewInt(3), types.NewInt(2), types.NewString("ACT"),
		frag("<SPEAKER>HAMLET</SPEAKER><SPEAKER>GHOST</SPEAKER>"),
		frag("<LINE>a friend indeed</LINE><LINE>swear</LINE>"),
	})
	if err := db.RunStats(); err != nil {
		t.Fatal(err)
	}
	return db
}

func queryStrings(t *testing.T, db *Database, q string) []string {
	t.Helper()
	res, err := db.Query(q)
	if err != nil {
		t.Fatalf("Query(%q): %v", q, err)
	}
	var out []string
	for _, row := range res.Rows {
		var parts []string
		for _, v := range row {
			if v.Kind() == types.KindXADT {
				s, err := xadt.FromBytes(v.XADT()).Text()
				if err != nil {
					t.Fatal(err)
				}
				parts = append(parts, s)
			} else {
				parts = append(parts, v.String())
			}
		}
		out = append(out, strings.Join(parts, "|"))
	}
	return out
}

// TestQueryQE1Shape runs the paper's Figure 7(a) query shape against the
// fixture.
func TestQueryQE1Shape(t *testing.T) {
	db := fixtureDB(t)
	rows := queryStrings(t, db, `
SELECT getElm(speech_line, 'LINE', 'LINE', 'friend')
FROM speech, act
WHERE findKeyInElm(speech_speaker, 'SPEAKER', 'HAMLET') = 1
AND findKeyInElm(speech_line, 'LINE', 'friend') = 1
AND speech_parentID = actID
AND speech_parentCODE = 'ACT'`)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	joined := strings.Join(rows, ";")
	if !strings.Contains(joined, "my dear friend") || !strings.Contains(joined, "a friend indeed") {
		t.Errorf("rows = %v", rows)
	}
	if strings.Contains(joined, "good night") {
		t.Errorf("non-matching lines leaked: %v", rows)
	}
}

// TestQueryQE2Shape runs the Figure 8(a) order-access query.
func TestQueryQE2Shape(t *testing.T) {
	db := fixtureDB(t)
	rows := queryStrings(t, db, `SELECT getElmIndex(speech_line, '', 'LINE', 2, 2) FROM speech`)
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	joined := strings.Join(rows, ";")
	if !strings.Contains(joined, "good night") || !strings.Contains(joined, "swear") {
		t.Errorf("rows = %v", rows)
	}
}

// TestQueryUnnest runs the Figure 9 unnest query.
func TestQueryUnnest(t *testing.T) {
	db := fixtureDB(t)
	rows := queryStrings(t, db, `
SELECT DISTINCT xadtText(unnestedS.out) AS SPEAKER
FROM speech, TABLE(unnest(speech_speaker, 'SPEAKER')) unnestedS`)
	if len(rows) != 3 {
		t.Fatalf("distinct speakers = %v", rows)
	}
	joined := strings.Join(rows, ";")
	for _, want := range []string{"HAMLET", "HORATIO", "GHOST"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %s in %v", want, rows)
		}
	}
}

func TestBuiltinVsUDFStringFunctions(t *testing.T) {
	db := fixtureDB(t)
	b := queryStrings(t, db, `SELECT length(act_title) FROM act`)
	u := queryStrings(t, db, `SELECT udf_length(act_title) FROM act`)
	if len(b) != 2 || len(u) != 2 || b[0] != u[0] || b[1] != u[1] {
		t.Errorf("builtin %v vs udf %v", b, u)
	}
	bs := queryStrings(t, db, `SELECT substr(act_title, 5) FROM act`)
	us := queryStrings(t, db, `SELECT udf_substr(act_title, 5) FROM act`)
	if bs[0] != "I" || us[0] != "I" || bs[1] != "II" {
		t.Errorf("substr: %v / %v", bs, us)
	}
}

func TestFencedModeMatchesUnfenced(t *testing.T) {
	plain := fixtureDB(t)
	fenced := Open(Config{FencedUDFs: true})
	// Rebuild the same fixture in the fenced database.
	fenced.CreateTable("act", []catalog.Column{
		{Name: "actID", Type: types.KindInt},
		{Name: "act_title", Type: types.KindString},
	})
	fenced.Catalog.Table("act").Insert([]types.Value{types.NewInt(1), types.NewString("ACT I")})
	a := queryStrings(t, plain, `SELECT udf_length(act_title) FROM act WHERE actID = 1`)
	b := queryStrings(t, fenced, `SELECT udf_length(act_title) FROM act WHERE actID = 1`)
	if len(a) != 1 || len(b) != 1 || a[0] != b[0] {
		t.Errorf("fenced result differs: %v vs %v", a, b)
	}
}

func TestJoinCountAndExplain(t *testing.T) {
	db := fixtureDB(t)
	n, err := db.JoinCount(`SELECT speechID FROM speech, act WHERE speech_parentID = actID`)
	if err != nil || n != 1 {
		t.Errorf("JoinCount = %d, %v", n, err)
	}
	text, err := db.Explain(`SELECT speechID FROM speech`)
	if err != nil || !strings.Contains(text, "SeqScan") {
		t.Errorf("Explain = %q, %v", text, err)
	}
}

func TestIndexedQuery(t *testing.T) {
	db := fixtureDB(t)
	if err := db.CreateIndex("speech", "speech_parentID"); err != nil {
		t.Fatal(err)
	}
	rows := queryStrings(t, db, `SELECT speechID FROM speech WHERE speech_parentID = 1`)
	if len(rows) != 2 {
		t.Errorf("rows = %v", rows)
	}
	text, _ := db.Explain(`SELECT speechID FROM speech WHERE speech_parentID = 1`)
	if !strings.Contains(text, "IndexScan") {
		t.Errorf("expected index scan:\n%s", text)
	}
}

func TestQueryErrors(t *testing.T) {
	db := fixtureDB(t)
	cases := []string{
		`SELECT`,
		`SELECT x FROM nosuch`,
		`SELECT getElm(actID, 'a', 'b', 'c') FROM act`, // wrong arg type at runtime
	}
	for _, q := range cases {
		if _, err := db.Query(q); err == nil {
			t.Errorf("Query(%q) succeeded, want error", q)
		}
	}
}

func TestNullXADTHandling(t *testing.T) {
	db := fixtureDB(t)
	db.Catalog.Table("speech").Insert([]types.Value{
		types.NewInt(9), types.NewInt(2), types.NewString("ACT"), types.Null, types.Null,
	})
	// findKeyInElm on NULL returns 0: the row is filtered, not an error.
	rows := queryStrings(t, db, `
SELECT speechID FROM speech WHERE findKeyInElm(speech_speaker, 'SPEAKER', 'HAMLET') = 1`)
	if len(rows) != 2 {
		t.Errorf("rows = %v", rows)
	}
}

func TestSetPlannerOptions(t *testing.T) {
	db := fixtureDB(t)
	db.SetPlannerOptions(plan.Options{Join: plan.JoinMerge})
	text, err := db.Explain(`SELECT speechID FROM speech, act WHERE speech_parentID = actID`)
	if err != nil || !strings.Contains(text, "MergeJoin") {
		t.Errorf("explain = %q, %v", text, err)
	}
}

func TestBufferPoolAccounting(t *testing.T) {
	db := fixtureDB(t)
	db.Pool.Reset()
	if _, err := db.Query(`SELECT speechID FROM speech`); err != nil {
		t.Fatal(err)
	}
	if db.Pool.Stats().Total() == 0 {
		t.Error("query did not touch the buffer pool")
	}
}

func TestConcurrentReadQueries(t *testing.T) {
	db := fixtureDB(t)
	if err := db.CreateIndex("speech", "speechID"); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		`SELECT speechID FROM speech WHERE speechID = 2`,
		`SELECT xadtText(speech_speaker) FROM speech`,
		`SELECT COUNT(*) FROM speech, act WHERE speech_parentID = actID`,
		`SELECT DISTINCT xadtText(u.out) FROM speech, TABLE(unnest(speech_speaker, 'SPEAKER')) u`,
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(queries)*8)
	for round := 0; round < 8; round++ {
		for _, q := range queries {
			wg.Add(1)
			go func(q string) {
				defer wg.Done()
				if _, err := db.Query(q); err != nil {
					errs <- err
				}
			}(q)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
