package engine

import (
	"fmt"

	"repro/internal/engine/exec"
	"repro/internal/engine/mvcc"
	"repro/internal/engine/storage"
)

// Applier replays a transaction's recorded row ops against the live
// catalog at commit time. Ops reference rows by the RID they had in the
// transaction's snapshot view (or a pseudo-RID for the txn's own
// inserts); the applier tracks where each such row lives now, because an
// update can move a row to a new slot mid-replay. First-committer-wins
// conflict detection guarantees no other transaction has touched these
// rows since the snapshot, so the only moves to track are our own.
type Applier struct {
	db  *Database
	log exec.MutationLog
	// pseudo maps a txn-local insert's pseudo-RID to the heap RID the
	// replayed insert landed on.
	pseudo map[int32]storage.RID
	// trans maps, per table, an op's original RID to the row's current
	// RID after our own moves. Absent means unmoved.
	trans map[string]map[storage.RID]storage.RID
}

// NewApplier returns an applier that writes redo records to log (often
// a *wal.Batch); nil log applies without durability.
func (db *Database) NewApplier(log exec.MutationLog) *Applier {
	return &Applier{
		db:     db,
		log:    log,
		pseudo: make(map[int32]storage.RID),
		trans:  make(map[string]map[storage.RID]storage.RID),
	}
}

// resolve maps an op's RID to the row's current heap RID.
func (a *Applier) resolve(table string, rid storage.RID) (storage.RID, error) {
	if mvcc.IsPseudo(rid) {
		cur, ok := a.pseudo[rid.Slot]
		if !ok {
			return storage.RID{}, fmt.Errorf("engine: unresolved pseudo rid %v", rid)
		}
		return cur, nil
	}
	if m := a.trans[table]; m != nil {
		if cur, ok := m[rid]; ok {
			return cur, nil
		}
	}
	return rid, nil
}

func (a *Applier) setCurrent(table string, opRID, cur storage.RID) {
	if mvcc.IsPseudo(opRID) {
		a.pseudo[opRID.Slot] = cur
		return
	}
	m := a.trans[table]
	if m == nil {
		m = make(map[storage.RID]storage.RID)
		a.trans[table] = m
	}
	m[opRID] = cur
}

// Apply replays one row op. OpDocAdd is not a row op and must be handled
// by the caller (the store layer owns the document loader).
func (a *Applier) Apply(op mvcc.Op) error {
	t := a.db.Catalog.Table(op.Table)
	if t == nil {
		return fmt.Errorf("engine: apply: unknown table %q", op.Table)
	}
	switch op.Kind {
	case mvcc.OpRowInsert:
		rid, err := t.InsertRID(op.Row)
		if err != nil {
			return err
		}
		a.setCurrent(op.Table, op.RID, rid)
		if a.log != nil {
			return a.log.Insert(op.Table, op.Row)
		}
		return nil
	case mvcc.OpRowUpdate:
		cur, err := a.resolve(op.Table, op.RID)
		if err != nil {
			return err
		}
		newRID, err := t.UpdateRID(cur, op.Row)
		if err != nil {
			return err
		}
		if newRID != cur {
			a.setCurrent(op.Table, op.RID, newRID)
		}
		if a.log != nil {
			// Redo convention: log the pre-move RID plus the full new
			// image, matching UpdateOp and replay.
			return a.log.Update(op.Table, cur, op.Row)
		}
		return nil
	case mvcc.OpRowDelete:
		cur, err := a.resolve(op.Table, op.RID)
		if err != nil {
			return err
		}
		if _, err := t.DeleteRID(cur); err != nil {
			return err
		}
		if a.log != nil {
			return a.log.Delete(op.Table, cur)
		}
		return nil
	default:
		return fmt.Errorf("engine: apply: op kind %d is not a row op", op.Kind)
	}
}
