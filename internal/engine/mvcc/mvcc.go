// Package mvcc implements snapshot isolation for the engine: a
// transaction manager that hands out snapshot timestamps and detects
// first-committer-wins write-write conflicts, per-table version stamps
// layered over the existing heap files, and materialized per-snapshot
// table views the executor scans instead of the raw heaps.
//
// The design keeps the heap as the single physical home of the *latest
// committed* state — exactly what PRs 1–8 store, log, checkpoint, and
// replay — and hangs the version history off to the side:
//
//   - every committed row carries a create timestamp (absent = born at
//     time 0, i.e. predating MVCC or recovered from a checkpoint);
//   - deleting or updating a row moves its previous image into an undo
//     list stamped with (born, died) timestamps.
//
// A snapshot at time S sees a heap row iff its create stamp is ≤ S, and
// an undo image iff born ≤ S < died. Because every mutation is applied
// under the manager's exclusive latch with a fresh commit timestamp, the
// version intervals of any one RID are disjoint, so at most one version
// of a RID is visible to any snapshot — including across RID reuse.
//
// Readers never block writers and vice versa in the long-running sense:
// a view is materialized under a brief shared latch and queries then run
// latch-free over the materialized rows, while commits serialize only
// against each other and against view materialization.
package mvcc

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/engine/storage"
	"repro/internal/engine/types"
)

// ErrConflict reports a first-committer-wins write-write conflict: the
// committing transaction wrote a row or document whose version was
// replaced by another transaction that committed after this one's
// snapshot. The transaction is rolled back; retry it on a new snapshot.
var ErrConflict = errors.New("mvcc: write-write conflict")

// PseudoPage is the page number of the pseudo-RIDs a transaction assigns
// to its own uncommitted inserts. Pseudo rows live only in the session's
// overlay; commit replays the insert and resolves the pseudo slot to the
// real RID the heap assigned.
const PseudoPage = 1 << 30

// PseudoRID returns the pseudo-RID of the n'th row a transaction
// inserted.
func PseudoRID(n int) storage.RID {
	return storage.RID{Page: PseudoPage, Slot: int32(n)}
}

// IsPseudo reports whether rid names an uncommitted own-insert rather
// than a committed heap row.
func IsPseudo(rid storage.RID) bool { return rid.Page >= PseudoPage }

// RowKey is the conflict-journal key of one heap row version. Two
// transactions collide exactly when they write the same committed row
// version, which both necessarily name by the same RID.
func RowKey(table string, rid storage.RID) string {
	return fmt.Sprintf("r:%s:%d:%d", table, rid.Page, rid.Slot)
}

// DocKey is the conflict-journal key of one registered document, making
// whole-document operations (remove, splice) mutually conflicting even
// when they touch disjoint rows of the document.
func DocKey(docID int64) string { return fmt.Sprintf("d:%d", docID) }

// OpKind discriminates the deferred operations a transaction records.
type OpKind int

// The operation vocabulary. Row ops are physical: they name the row
// version the transaction saw (or its own pseudo-insert) and carry the
// full new image, so replaying the list in order against the
// committed state — on this store or on a twin — reproduces identical
// heaps. Document adds stay logical because their rows and document ID
// only exist once the commit-time loader run assigns them.
const (
	OpRowInsert OpKind = iota
	OpRowUpdate
	OpRowDelete
	OpDocAdd
)

// Op is one deferred mutation of a transaction, applied at commit.
type Op struct {
	Kind  OpKind
	Table string
	// RID targets the snapshot row version (update/delete); a pseudo
	// RID targets one of the transaction's own inserts instead.
	RID storage.RID
	// Row is the inserted row or the full post-update image.
	Row []types.Value
	// Docs is the document-add payload, owned by the store layer
	// (core passes []*xmltree.Document; the engine never inspects it).
	Docs any
}

// TxnManager coordinates snapshots, commits, and version garbage
// collection for one database.
type TxnManager struct {
	// latch is the database-wide structure latch: held shared while a
	// view is materialized or a checkpoint scans the heaps, held
	// exclusively while a commit (or direct operation) applies its
	// mutations and stamps versions. It is never held across query
	// execution, only across the materialize/apply step itself.
	latch sync.RWMutex
	// commitMu serializes commit protocols and direct operations, which
	// also makes it the lock under which all WAL writing happens (the
	// wal.Writer is not safe for concurrent use).
	commitMu sync.Mutex

	mu            sync.Mutex
	lastCommitted uint64
	// active refcounts live snapshots per timestamp; its minimum floors
	// version garbage collection.
	active map[uint64]int
	// writes is the conflict journal: key → timestamp of the last
	// commit that wrote it. Pruned below the oldest active snapshot.
	writes map[string]uint64
	tables []*TableVersions

	// applyTS is the commit timestamp of the transaction currently
	// applying its mutations; non-zero only while latch is held
	// exclusively. The catalog's version hooks read it.
	applyTS uint64
	// pending collects the journal keys the hooks record during the
	// current apply.
	pending []string
}

// NewTxnManager returns an empty transaction manager; time starts at 0,
// so everything already stored is visible to every snapshot.
func NewTxnManager() *TxnManager {
	return &TxnManager{active: map[uint64]int{}, writes: map[string]uint64{}}
}

// Register creates the version sidecar for one table.
func (m *TxnManager) Register(table string) *TableVersions {
	tv := &TableVersions{mgr: m, name: table, created: map[storage.RID]uint64{}}
	m.mu.Lock()
	m.tables = append(m.tables, tv)
	m.mu.Unlock()
	return tv
}

// LastCommitted returns the newest commit timestamp.
func (m *TxnManager) LastCommitted() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastCommitted
}

// note records a journal key during an apply. Called from the version
// hooks with the latch held exclusively.
func (m *TxnManager) note(key string) { m.pending = append(m.pending, key) }

// Begin opens a transaction on a snapshot of the latest committed state.
func (m *TxnManager) Begin() *Txn {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.lastCommitted
	m.active[s]++
	return &Txn{mgr: m, snap: s, keys: map[string]struct{}{}}
}

// releaseLocked drops one reference to snapshot s. Caller holds m.mu.
func (m *TxnManager) releaseLocked(s uint64) {
	if n := m.active[s]; n > 1 {
		m.active[s] = n - 1
	} else {
		delete(m.active, s)
	}
}

// minSnapshotLocked returns the garbage-collection floor: no snapshot at
// or below it will ever be opened again, so versions dead by then are
// unreachable. Caller holds m.mu.
func (m *TxnManager) minSnapshotLocked() uint64 {
	min := m.lastCommitted
	for s := range m.active {
		if s < min {
			min = s
		}
	}
	return min
}

// gc prunes version and journal state no live or future snapshot can
// observe.
func (m *TxnManager) gc(min uint64) {
	m.latch.Lock()
	for _, tv := range m.tables {
		tv.pruneLocked(min)
	}
	m.latch.Unlock()
	m.mu.Lock()
	for k, ts := range m.writes {
		if ts <= min {
			delete(m.writes, k)
		}
	}
	m.mu.Unlock()
}

// RunDirect executes a single-shot mutation — the legacy Store paths
// (Load, AddDocuments, Exec, ...) on an MVCC store — as its own
// committed transaction: exclusive latch, fresh commit timestamp, hooks
// stamping versions and journaling keys. fn runs with every concurrent
// view materialization blocked, so its heap mutations are atomic with
// respect to snapshots.
func (m *TxnManager) RunDirect(fn func(commitTS uint64) error) error {
	m.commitMu.Lock()
	defer m.commitMu.Unlock()
	m.mu.Lock()
	commitTS := m.lastCommitted + 1
	m.mu.Unlock()

	m.latch.Lock()
	m.applyTS = commitTS
	m.pending = m.pending[:0]
	err := fn(commitTS)
	m.applyTS = 0
	keys := append([]string(nil), m.pending...)
	m.latch.Unlock()

	if err != nil && len(keys) == 0 {
		// Failed before mutating anything: the timestamp was never
		// observed, so it can be handed out again.
		return err
	}
	m.finishCommit(commitTS, keys, nil)
	return err
}

// Quiesce runs fn with commits and direct operations blocked — the
// checkpoint path, whose snapshot must capture a commit boundary.
func (m *TxnManager) Quiesce(fn func() error) error {
	m.commitMu.Lock()
	defer m.commitMu.Unlock()
	return fn()
}

// Exclusive runs fn with both commits and view materialization blocked —
// DDL such as index builds on a live store.
func (m *TxnManager) Exclusive(fn func() error) error {
	m.commitMu.Lock()
	defer m.commitMu.Unlock()
	m.latch.Lock()
	defer m.latch.Unlock()
	return fn()
}

// finishCommit publishes a commit: journal keys, the new timestamp, and
// a garbage-collection pass. extra carries op-time keys of the
// committing transaction (view RIDs and document keys) on top of the
// hook-recorded ones.
func (m *TxnManager) finishCommit(commitTS uint64, keys []string, extra map[string]struct{}) {
	m.mu.Lock()
	for _, k := range keys {
		m.writes[k] = commitTS
	}
	for k := range extra {
		m.writes[k] = commitTS
	}
	m.lastCommitted = commitTS
	min := m.minSnapshotLocked()
	m.mu.Unlock()
	m.gc(min)
}

// Txn is one transaction: a snapshot timestamp plus the write keys its
// operations touched, checked first-committer-wins at commit.
type Txn struct {
	mgr  *TxnManager
	snap uint64
	keys map[string]struct{}
	done bool
}

// Snapshot returns the transaction's snapshot timestamp.
func (t *Txn) Snapshot() uint64 { return t.snap }

// Done reports whether the transaction has committed or rolled back.
func (t *Txn) Done() bool { return t.done }

// Touch records a write key for the commit-time conflict check.
func (t *Txn) Touch(key string) { t.keys[key] = struct{}{} }

// Rollback releases the snapshot without applying anything. Safe to call
// after Commit (it becomes a no-op), so callers can defer it.
func (t *Txn) Rollback() {
	if t.done {
		return
	}
	t.done = true
	m := t.mgr
	m.mu.Lock()
	m.releaseLocked(t.snap)
	min := m.minSnapshotLocked()
	m.mu.Unlock()
	// A closing reader may have been the snapshot pinning old versions.
	m.gc(min)
}

// Commit runs the commit protocol: first-committer-wins conflict check
// against the journal, then apply(commitTS) under the exclusive latch
// (the caller replays its operation log and writes its WAL batch there),
// then journal publication and version GC. A nil apply releases the
// snapshot without consuming a timestamp — the read-only commit.
//
// On ErrConflict the transaction is rolled back and the store is
// untouched. An apply error after mutations have landed leaves the store
// poisoned (exactly like a mid-statement error on the single-user
// paths); the burned timestamp is still published so no snapshot can
// observe a half-applied state as "latest committed".
func (t *Txn) Commit(apply func(commitTS uint64) error) error {
	if t.done {
		return errors.New("mvcc: transaction already finished")
	}
	m := t.mgr
	m.commitMu.Lock()
	defer m.commitMu.Unlock()

	m.mu.Lock()
	for k := range t.keys {
		if ts, ok := m.writes[k]; ok && ts > t.snap {
			m.releaseLocked(t.snap)
			min := m.minSnapshotLocked()
			m.mu.Unlock()
			t.done = true
			m.gc(min)
			return fmt.Errorf("%w: %s committed at %d, snapshot is %d", ErrConflict, k, ts, t.snap)
		}
	}
	commitTS := m.lastCommitted + 1
	m.mu.Unlock()

	if apply == nil {
		// Read-only: release the snapshot, consume no timestamp.
		m.mu.Lock()
		m.releaseLocked(t.snap)
		min := m.minSnapshotLocked()
		m.mu.Unlock()
		t.done = true
		m.gc(min)
		return nil
	}

	m.latch.Lock()
	m.applyTS = commitTS
	m.pending = m.pending[:0]
	err := apply(commitTS)
	m.applyTS = 0
	keys := append([]string(nil), m.pending...)
	m.latch.Unlock()

	m.mu.Lock()
	m.releaseLocked(t.snap)
	m.mu.Unlock()
	t.done = true

	if err != nil && len(keys) == 0 {
		m.mu.Lock()
		min := m.minSnapshotLocked()
		m.mu.Unlock()
		m.gc(min)
		return err
	}
	m.finishCommit(commitTS, keys, t.keys)
	return err
}

// undoEntry is one superseded row image: visible to snapshots S with
// born ≤ S < died.
type undoEntry struct {
	rid        storage.RID
	row        []types.Value
	born, died uint64
}

// TableVersions is the per-table version sidecar: create stamps for
// current heap rows and the undo list of superseded images. All access
// happens under the manager's latch (shared for reads, exclusive for the
// hooks), so it needs no lock of its own.
type TableVersions struct {
	mgr     *TxnManager
	name    string
	created map[storage.RID]uint64
	undo    []undoEntry
}

// NoteInsert stamps a freshly inserted heap row with the applying
// transaction's timestamp. Outside an apply (recovery replay, non-MVCC
// paths that never see a sidecar anyway) it is a no-op: the row is born
// at time 0 and visible to everyone, which is exactly right for
// recovered state.
func (v *TableVersions) NoteInsert(rid storage.RID) {
	ts := v.mgr.applyTS
	if ts == 0 {
		return
	}
	v.created[rid] = ts
	v.mgr.note(RowKey(v.name, rid))
}

// NoteDelete retires the row version at rid, preserving its image for
// older snapshots. A row born and deleted by the same transaction leaves
// no trace — no snapshot can ever see it.
func (v *TableVersions) NoteDelete(rid storage.RID, old []types.Value) {
	ts := v.mgr.applyTS
	if ts == 0 {
		return
	}
	born := v.created[rid]
	delete(v.created, rid)
	if born < ts {
		v.undo = append(v.undo, undoEntry{rid, append([]types.Value(nil), old...), born, ts})
	}
	v.mgr.note(RowKey(v.name, rid))
}

// NoteUpdate retires the pre-image at rid and stamps the new version at
// newRID (which equals rid when the heap updated in place).
func (v *TableVersions) NoteUpdate(rid storage.RID, old []types.Value, newRID storage.RID) {
	ts := v.mgr.applyTS
	if ts == 0 {
		return
	}
	born := v.created[rid]
	delete(v.created, rid)
	if born < ts {
		v.undo = append(v.undo, undoEntry{rid, append([]types.Value(nil), old...), born, ts})
	}
	v.created[newRID] = ts
	v.mgr.note(RowKey(v.name, rid))
	if newRID != rid {
		v.mgr.note(RowKey(v.name, newRID))
	}
}

// pruneLocked drops versions and stamps no snapshot above min can
// distinguish from "born at 0". Caller holds the latch exclusively.
func (v *TableVersions) pruneLocked(min uint64) {
	kept := v.undo[:0]
	for _, u := range v.undo {
		if u.died > min {
			kept = append(kept, u)
		}
	}
	for i := len(kept); i < len(v.undo); i++ {
		v.undo[i] = undoEntry{}
	}
	v.undo = kept
	for rid, ts := range v.created {
		if ts <= min {
			delete(v.created, rid)
		}
	}
}

// Versions reports the live sidecar sizes (create stamps, undo images) —
// observability for the GC tests.
func (m *TxnManager) Versions() (created, undo int) {
	m.latch.RLock()
	defer m.latch.RUnlock()
	for _, tv := range m.tables {
		created += len(tv.created)
		undo += len(tv.undo)
	}
	return
}

// VRow is one visible row of a materialized view: the RID names the
// version (committed heap/undo RID, or a pseudo-RID for the session's
// own inserts) and Row is its image. Rows are aliased, never copied —
// heap mutation always installs fresh row slices, so a materialized
// image stays immutable after the latch is released.
type VRow struct {
	RID storage.RID
	Row []types.Value
}

// View is a materialized per-snapshot table state, ordered by RID like a
// heap scan, so view execution visits rows in the same stable order a
// raw scan of the same version set would.
type View struct {
	Rows []VRow
}

// ridLess orders RIDs like a heap scan: page-major, slot-minor.
func ridLess(a, b storage.RID) bool {
	if a.Page != b.Page {
		return a.Page < b.Page
	}
	return a.Slot < b.Slot
}

// Materialize builds the view of one table at snapshot snap: heap rows
// whose create stamp is ≤ snap, merged in RID order with the undo images
// whose (born, died) interval contains snap. scan must iterate the
// table's heap in RID order (storage.HeapFile.Scan does). The shared
// latch is held only for the duration of the materialization.
//
// A nil sidecar means the table is unversioned (a store that predates
// EnableMVCC, or the non-MVCC configuration); every row is visible.
func (m *TxnManager) Materialize(tv *TableVersions, snap uint64, scan func(func(storage.RID, []types.Value) error) error) (*View, error) {
	m.latch.RLock()
	defer m.latch.RUnlock()
	v := &View{}
	if tv == nil {
		err := scan(func(rid storage.RID, row []types.Value) error {
			v.Rows = append(v.Rows, VRow{rid, row})
			return nil
		})
		return v, err
	}
	var old []VRow
	for _, u := range tv.undo {
		if u.born <= snap && snap < u.died {
			old = append(old, VRow{u.rid, u.row})
		}
	}
	sort.Slice(old, func(i, j int) bool { return ridLess(old[i].RID, old[j].RID) })
	i := 0
	err := scan(func(rid storage.RID, row []types.Value) error {
		for i < len(old) && !ridLess(rid, old[i].RID) {
			v.Rows = append(v.Rows, old[i])
			i++
		}
		if born, ok := tv.created[rid]; !ok || born <= snap {
			v.Rows = append(v.Rows, VRow{rid, row})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ; i < len(old); i++ {
		v.Rows = append(v.Rows, old[i])
	}
	return v, nil
}
