package mvcc

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/engine/storage"
	"repro/internal/engine/types"
)

// fakeHeap is a minimal RID-ordered heap standing in for a HeapFile.
type fakeHeap struct {
	rows map[storage.RID][]types.Value
}

func newFakeHeap() *fakeHeap { return &fakeHeap{rows: map[storage.RID][]types.Value{}} }

func (h *fakeHeap) scan(fn func(storage.RID, []types.Value) error) error {
	var rids []storage.RID
	for rid := range h.rows {
		rids = append(rids, rid)
	}
	for i := 0; i < len(rids); i++ {
		for j := i + 1; j < len(rids); j++ {
			if ridLess(rids[j], rids[i]) {
				rids[i], rids[j] = rids[j], rids[i]
			}
		}
	}
	for _, rid := range rids {
		if err := fn(rid, h.rows[rid]); err != nil {
			return err
		}
	}
	return nil
}

func rid(page, slot int32) storage.RID { return storage.RID{Page: page, Slot: slot} }

func row(v int64) []types.Value { return []types.Value{types.NewInt(v)} }

// insert applies a direct insert through the hook discipline.
func (h *fakeHeap) insert(tv *TableVersions, r storage.RID, vals []types.Value) {
	h.rows[r] = vals
	tv.NoteInsert(r)
}

func (h *fakeHeap) delete(tv *TableVersions, r storage.RID) {
	old := h.rows[r]
	delete(h.rows, r)
	tv.NoteDelete(r, old)
}

func (h *fakeHeap) update(tv *TableVersions, r, newRID storage.RID, vals []types.Value) {
	old := h.rows[r]
	delete(h.rows, r)
	h.rows[newRID] = vals
	tv.NoteUpdate(r, old, newRID)
}

func viewInts(t *testing.T, m *TxnManager, tv *TableVersions, h *fakeHeap, snap uint64) []int64 {
	t.Helper()
	v, err := m.Materialize(tv, snap, h.scan)
	if err != nil {
		t.Fatal(err)
	}
	var out []int64
	for _, vr := range v.Rows {
		out = append(out, vr.Row[0].Int())
	}
	return out
}

func eqInts(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestVisibilityAcrossCommits(t *testing.T) {
	m := NewTxnManager()
	tv := m.Register("t")
	h := newFakeHeap()

	// Pre-MVCC state: rows born at time 0.
	h.rows[rid(0, 0)] = row(1)
	h.rows[rid(0, 1)] = row(2)

	reader := m.Begin() // snapshot 0
	if err := m.RunDirect(func(uint64) error {
		h.insert(tv, rid(0, 2), row(3))
		h.update(tv, rid(0, 1), rid(0, 1), row(20))
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// The old snapshot still sees the original state.
	if got := viewInts(t, m, tv, h, reader.Snapshot()); !eqInts(got, []int64{1, 2}) {
		t.Fatalf("snapshot 0 sees %v, want [1 2]", got)
	}
	// A fresh snapshot sees the committed mutation.
	if got := viewInts(t, m, tv, h, m.LastCommitted()); !eqInts(got, []int64{1, 20, 3}) {
		t.Fatalf("snapshot 1 sees %v, want [1 20 3]", got)
	}
	reader.Rollback()
}

func TestVisibilityRowMoveAndDelete(t *testing.T) {
	m := NewTxnManager()
	tv := m.Register("t")
	h := newFakeHeap()
	h.rows[rid(0, 0)] = row(1)

	reader := m.Begin()
	if err := m.RunDirect(func(uint64) error {
		// Update that moves the row to a new page, and a delete.
		h.update(tv, rid(0, 0), rid(1, 0), row(10))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := viewInts(t, m, tv, h, reader.Snapshot()); !eqInts(got, []int64{1}) {
		t.Fatalf("old snapshot sees %v, want [1]", got)
	}
	if got := viewInts(t, m, tv, h, m.LastCommitted()); !eqInts(got, []int64{10}) {
		t.Fatalf("new snapshot sees %v, want [10]", got)
	}

	if err := m.RunDirect(func(uint64) error {
		h.delete(tv, rid(1, 0))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := viewInts(t, m, tv, h, reader.Snapshot()); !eqInts(got, []int64{1}) {
		t.Fatalf("old snapshot sees %v after delete, want [1]", got)
	}
	if got := viewInts(t, m, tv, h, m.LastCommitted()); len(got) != 0 {
		t.Fatalf("new snapshot sees %v, want empty", got)
	}
	reader.Rollback()
}

func TestFirstCommitterWins(t *testing.T) {
	m := NewTxnManager()
	tv := m.Register("t")
	h := newFakeHeap()
	h.rows[rid(0, 0)] = row(1)
	key := RowKey("t", rid(0, 0))

	t1 := m.Begin()
	t2 := m.Begin()
	t1.Touch(key)
	t2.Touch(key)

	if err := t1.Commit(func(uint64) error {
		h.update(tv, rid(0, 0), rid(0, 0), row(10))
		return nil
	}); err != nil {
		t.Fatalf("first committer: %v", err)
	}
	err := t2.Commit(func(uint64) error {
		t.Fatal("conflicting apply must not run")
		return nil
	})
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("second committer got %v, want ErrConflict", err)
	}
	if !t2.Done() {
		t.Fatal("conflicting txn not finished")
	}
	if got := viewInts(t, m, tv, h, m.LastCommitted()); !eqInts(got, []int64{10}) {
		t.Fatalf("state after conflict: %v, want [10]", got)
	}
}

func TestNoConflictOnDisjointKeys(t *testing.T) {
	m := NewTxnManager()
	tv := m.Register("t")
	h := newFakeHeap()
	h.rows[rid(0, 0)] = row(1)
	h.rows[rid(0, 1)] = row(2)

	t1 := m.Begin()
	t2 := m.Begin()
	t1.Touch(RowKey("t", rid(0, 0)))
	t2.Touch(RowKey("t", rid(0, 1)))

	if err := t1.Commit(func(uint64) error {
		h.update(tv, rid(0, 0), rid(0, 0), row(10))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(func(uint64) error {
		h.update(tv, rid(0, 1), rid(0, 1), row(20))
		return nil
	}); err != nil {
		t.Fatalf("disjoint writer conflicted: %v", err)
	}
	if got := viewInts(t, m, tv, h, m.LastCommitted()); !eqInts(got, []int64{10, 20}) {
		t.Fatalf("state %v, want [10 20]", got)
	}
}

func TestConflictAgainstHookJournaledDirectOp(t *testing.T) {
	m := NewTxnManager()
	tv := m.Register("t")
	h := newFakeHeap()
	h.rows[rid(0, 0)] = row(1)

	txn := m.Begin()
	txn.Touch(RowKey("t", rid(0, 0)))
	// A direct operation (no Touch calls — only the hooks journal it)
	// rewrites the row after txn's snapshot.
	if err := m.RunDirect(func(uint64) error {
		h.update(tv, rid(0, 0), rid(0, 0), row(99))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	err := txn.Commit(func(uint64) error { return nil })
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("got %v, want ErrConflict against direct op", err)
	}
}

func TestReadOnlyCommitBurnsNoTimestamp(t *testing.T) {
	m := NewTxnManager()
	txn := m.Begin()
	if err := txn.Commit(nil); err != nil {
		t.Fatal(err)
	}
	if m.LastCommitted() != 0 {
		t.Fatalf("read-only commit advanced time to %d", m.LastCommitted())
	}
	if err := txn.Commit(nil); err == nil {
		t.Fatal("double commit succeeded")
	}
}

func TestGCPrunesVersionsAndJournal(t *testing.T) {
	m := NewTxnManager()
	tv := m.Register("t")
	h := newFakeHeap()
	h.rows[rid(0, 0)] = row(1)

	reader := m.Begin() // pins snapshot 0
	for i := 0; i < 5; i++ {
		if err := m.RunDirect(func(uint64) error {
			h.update(tv, rid(0, 0), rid(0, 0), row(int64(10+i)))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	created, undo := m.Versions()
	if undo == 0 || created == 0 {
		t.Fatalf("expected live versions while a snapshot is pinned, got created=%d undo=%d", created, undo)
	}
	// The pinned snapshot still reads the original image.
	if got := viewInts(t, m, tv, h, reader.Snapshot()); !eqInts(got, []int64{1}) {
		t.Fatalf("pinned snapshot sees %v, want [1]", got)
	}
	reader.Rollback()
	created, undo = m.Versions()
	if created != 0 || undo != 0 {
		t.Fatalf("GC left created=%d undo=%d after last snapshot closed", created, undo)
	}
	m.mu.Lock()
	nwrites := len(m.writes)
	m.mu.Unlock()
	if nwrites != 0 {
		t.Fatalf("GC left %d journal entries", nwrites)
	}
}

func TestRIDReuseDoesNotLeakAcrossSnapshots(t *testing.T) {
	m := NewTxnManager()
	tv := m.Register("t")
	h := newFakeHeap()
	h.rows[rid(0, 0)] = row(1)

	reader := m.Begin()
	// Delete the row, then a later transaction reuses the same RID.
	if err := m.RunDirect(func(uint64) error {
		h.delete(tv, rid(0, 0))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.RunDirect(func(uint64) error {
		h.insert(tv, rid(0, 0), row(42))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// The old snapshot must see exactly the original image, not the
	// reused slot's new row.
	if got := viewInts(t, m, tv, h, reader.Snapshot()); !eqInts(got, []int64{1}) {
		t.Fatalf("old snapshot sees %v across RID reuse, want [1]", got)
	}
	if got := viewInts(t, m, tv, h, m.LastCommitted()); !eqInts(got, []int64{42}) {
		t.Fatalf("new snapshot sees %v, want [42]", got)
	}
	reader.Rollback()
}

func TestMaterializeMergeOrder(t *testing.T) {
	m := NewTxnManager()
	tv := m.Register("t")
	h := newFakeHeap()
	for i := int32(0); i < 4; i++ {
		h.rows[rid(0, i)] = row(int64(i))
	}
	reader := m.Begin()
	if err := m.RunDirect(func(uint64) error {
		h.delete(tv, rid(0, 1))
		h.update(tv, rid(0, 3), rid(1, 0), row(30)) // move to later page
		h.insert(tv, rid(0, 1), row(99))            // reuse the freed slot
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// The old snapshot's view preserves the original RID order exactly.
	if got := viewInts(t, m, tv, h, reader.Snapshot()); !eqInts(got, []int64{0, 1, 2, 3}) {
		t.Fatalf("old view order %v, want [0 1 2 3]", got)
	}
	if got := viewInts(t, m, tv, h, m.LastCommitted()); !eqInts(got, []int64{0, 99, 2, 30}) {
		t.Fatalf("new view order %v, want [0 99 2 30]", got)
	}
	reader.Rollback()
}

func TestFailedApplyWithoutMutationKeepsTimestamp(t *testing.T) {
	m := NewTxnManager()
	boom := fmt.Errorf("boom")
	err := m.RunDirect(func(uint64) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
	if m.LastCommitted() != 0 {
		t.Fatalf("failed no-op apply burned timestamp: %d", m.LastCommitted())
	}
	txn := m.Begin()
	err = txn.Commit(func(uint64) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
	if m.LastCommitted() != 0 {
		t.Fatalf("failed no-op commit burned timestamp: %d", m.LastCommitted())
	}
}

func TestPseudoRIDs(t *testing.T) {
	p := PseudoRID(7)
	if !IsPseudo(p) {
		t.Fatal("pseudo rid not recognized")
	}
	if IsPseudo(rid(0, 7)) {
		t.Fatal("heap rid misclassified as pseudo")
	}
}
