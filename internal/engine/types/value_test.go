package types

import (
	"hash/fnv"
	"testing"
	"testing/quick"
)

func TestKindsAndAccessors(t *testing.T) {
	if !Null.IsNull() || Null.Kind() != KindNull {
		t.Error("zero value should be NULL")
	}
	if NewInt(42).Int() != 42 {
		t.Error("Int round-trip")
	}
	if NewString("x").Str() != "x" {
		t.Error("Str round-trip")
	}
	if string(NewXADT([]byte("f")).XADT()) != "f" {
		t.Error("XADT round-trip")
	}
	if !NewBool(true).Bool() || NewBool(false).Bool() {
		t.Error("Bool round-trip")
	}
}

func TestAccessorPanics(t *testing.T) {
	cases := []func(){
		func() { Null.Int() },
		func() { NewInt(1).Str() },
		func() { NewString("s").XADT() },
		func() { NewInt(1).Bool() },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestTruthy(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
	}{
		{NewBool(true), true},
		{NewBool(false), false},
		{NewInt(1), true},
		{NewInt(0), false},
		{Null, false},
		{NewString("true"), false},
	}
	for _, tc := range cases {
		if got := tc.v.Truthy(); got != tc.want {
			t.Errorf("Truthy(%v) = %v, want %v", tc.v, got, tc.want)
		}
	}
}

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{Null, NewInt(0), -1},
		{NewInt(0), Null, 1},
		{Null, Null, 0},
		{NewXADT([]byte{1}), NewXADT([]byte{1, 2}), -1},
		{NewXADT([]byte{2}), NewXADT([]byte{1, 2}), 1},
		{NewBool(false), NewBool(true), -1},
		{NewBool(true), NewInt(1), 0}, // booleans compare numerically
	}
	for _, tc := range cases {
		if got := Compare(tc.a, tc.b); got != tc.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCompareCrossKindTotalOrder(t *testing.T) {
	// Different kinds order deterministically and antisymmetrically.
	vals := []Value{Null, NewInt(5), NewString("5"), NewXADT([]byte("5"))}
	for _, a := range vals {
		for _, b := range vals {
			if Compare(a, b) != -Compare(b, a) {
				t.Errorf("Compare(%v,%v) not antisymmetric", a, b)
			}
		}
	}
}

func TestHashEqualConsistency(t *testing.T) {
	pairs := [][2]Value{
		{NewInt(7), NewInt(7)},
		{NewString("abc"), NewString("abc")},
		{NewXADT([]byte("x")), NewXADT([]byte("x"))},
		{Null, Null},
	}
	for _, p := range pairs {
		if !Equal(p[0], p[1]) {
			t.Errorf("Equal(%v,%v) = false", p[0], p[1])
		}
		if Hash(p[0]) != Hash(p[1]) {
			t.Errorf("Hash mismatch for equal values %v", p[0])
		}
	}
	if Hash(NewInt(1)) == Hash(NewString("1")) {
		t.Error("int 1 and string \"1\" should hash differently")
	}
}

func TestCompareIntProperty(t *testing.T) {
	f := func(a, b int64) bool {
		got := Compare(NewInt(a), NewInt(b))
		switch {
		case a < b:
			return got == -1
		case a > b:
			return got == 1
		default:
			return got == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashStringProperty(t *testing.T) {
	f := func(s string) bool {
		return Hash(NewString(s)) == Hash(NewString(s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// fnvReference is what Hash computed before the direct-loop rewrite:
// hash/fnv over the tag byte plus the payload bytes. Hash must stay
// bit-identical to it so row-wise and vectorized hash tables built in
// the same query agree on every bucket.
func fnvReference(v Value) uint64 {
	h := fnv.New64a()
	switch v.kind {
	case KindNull:
		h.Write([]byte{0})
	case KindInt, KindBool:
		var buf [9]byte
		buf[0] = 1
		for i := 0; i < 8; i++ {
			buf[i+1] = byte(v.i >> (8 * i))
		}
		h.Write(buf[:])
	case KindString:
		h.Write([]byte{2})
		h.Write([]byte(v.s))
	case KindXADT:
		h.Write([]byte{3})
		h.Write(v.x)
	}
	return h.Sum64()
}

func TestHashMatchesFNVReference(t *testing.T) {
	vals := []Value{
		NewInt(0), NewInt(-7), NewInt(1 << 40),
		NewString(""), NewString("hello"),
		NewBool(true), NewBool(false),
		NewXADT([]byte("<a>frag</a>")), NewXADT(nil),
		Null,
	}
	for _, v := range vals {
		if got, want := Hash(v), fnvReference(v); got != want {
			t.Errorf("Hash(%v) = %d, fnv reference = %d", v, got, want)
		}
	}
	f := func(i int64, s string) bool {
		return Hash(NewInt(i)) == fnvReference(NewInt(i)) &&
			Hash(NewString(s)) == fnvReference(NewString(s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSize(t *testing.T) {
	if NewInt(1).Size() != 9 {
		t.Errorf("int size = %d", NewInt(1).Size())
	}
	if NewString("abcd").Size() != 9 {
		t.Errorf("string size = %d", NewString("abcd").Size())
	}
	if Null.Size() != 1 {
		t.Errorf("null size = %d", Null.Size())
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewInt(-3), "-3"},
		{NewString("hi"), "hi"},
		{NewBool(true), "true"},
	}
	for _, tc := range cases {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("String(%#v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}
