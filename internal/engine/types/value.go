// Package types defines the value system of the engine: the three SQL
// types the mapped schemas use (INTEGER, VARCHAR, and the XADT fragment
// type), NULL handling, comparison, and hashing.
package types

import (
	"fmt"
	"strconv"
)

// Kind enumerates the runtime types of a Value.
type Kind int

const (
	// KindNull is the SQL NULL of any type.
	KindNull Kind = iota
	// KindInt is a 64-bit integer.
	KindInt
	// KindString is a variable-length string.
	KindString
	// KindXADT is an XML fragment in its stored encoding.
	KindXADT
	// KindBool is a boolean, produced only by predicate evaluation.
	KindBool
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "integer"
	case KindString:
		return "string"
	case KindXADT:
		return "XADT"
	case KindBool:
		return "boolean"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is a single SQL value. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64
	s    string
	x    []byte
}

// Null is the SQL NULL value.
var Null = Value{}

// NewInt returns an integer value.
func NewInt(i int64) Value { return Value{kind: KindInt, i: i} }

// NewString returns a string value.
func NewString(s string) Value { return Value{kind: KindString, s: s} }

// NewXADT returns an XADT value holding the stored fragment encoding.
func NewXADT(b []byte) Value { return Value{kind: KindXADT, x: b} }

// NewBool returns a boolean value.
func NewBool(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Kind returns the runtime type of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the integer payload; it panics on other kinds.
func (v Value) Int() int64 {
	if v.kind != KindInt {
		panic("types: Int() on " + v.kind.String())
	}
	return v.i
}

// Str returns the string payload; it panics on other kinds.
func (v Value) Str() string {
	if v.kind != KindString {
		panic("types: Str() on " + v.kind.String())
	}
	return v.s
}

// XADT returns the fragment encoding; it panics on other kinds.
func (v Value) XADT() []byte {
	if v.kind != KindXADT {
		panic("types: XADT() on " + v.kind.String())
	}
	return v.x
}

// Bool returns the boolean payload; it panics on other kinds.
func (v Value) Bool() bool {
	if v.kind != KindBool {
		panic("types: Bool() on " + v.kind.String())
	}
	return v.i != 0
}

// Truthy reports whether the value acts as true in a WHERE clause: a true
// boolean or a nonzero integer. NULL and everything else are false.
func (v Value) Truthy() bool {
	switch v.kind {
	case KindBool, KindInt:
		return v.i != 0
	default:
		return false
	}
}

// String renders the value for display.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindString:
		return v.s
	case KindXADT:
		return fmt.Sprintf("XADT(%d bytes)", len(v.x))
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// Compare orders two values: NULL sorts first; integers and booleans
// compare numerically; strings lexicographically; XADT values by their
// encodings. Comparing values of different non-null kinds orders by kind,
// which gives sorting a total order without implicit casts.
func Compare(a, b Value) int {
	if a.kind == KindNull || b.kind == KindNull {
		switch {
		case a.kind == b.kind:
			return 0
		case a.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	ka, kb := comparisonClass(a.kind), comparisonClass(b.kind)
	if ka != kb {
		if ka < kb {
			return -1
		}
		return 1
	}
	switch ka {
	case classNumeric:
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		default:
			return 0
		}
	case classString:
		switch {
		case a.s < b.s:
			return -1
		case a.s > b.s:
			return 1
		default:
			return 0
		}
	default: // classBytes
		return compareBytes(a.x, b.x)
	}
}

const (
	classNumeric = iota
	classString
	classBytes
)

func comparisonClass(k Kind) int {
	switch k {
	case KindInt, KindBool:
		return classNumeric
	case KindString:
		return classString
	default:
		return classBytes
	}
}

func compareBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// Equal reports whether two values compare equal.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// FNV-1a parameters, matching hash/fnv.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// Hash returns a hash of the value, consistent with Equal. It is FNV-1a
// over a tag byte plus the payload bytes, written out directly rather
// than through hash/fnv: the hasher interface forces a heap value and
// accessor indirection per call, and hashing sits on the hot path of
// joins, grouping, and the vectorized hash kernels.
func Hash(v Value) uint64 {
	h := fnvOffset
	switch v.kind {
	case KindNull:
		h = (h ^ 0) * fnvPrime
	case KindInt, KindBool:
		h = (h ^ 1) * fnvPrime
		p := uint64(v.i)
		for i := 0; i < 8; i++ {
			h = (h ^ (p >> (8 * i) & 0xff)) * fnvPrime
		}
	case KindString:
		h = (h ^ 2) * fnvPrime
		for i := 0; i < len(v.s); i++ {
			h = (h ^ uint64(v.s[i])) * fnvPrime
		}
	case KindXADT:
		h = (h ^ 3) * fnvPrime
		for _, b := range v.x {
			h = (h ^ uint64(b)) * fnvPrime
		}
	}
	return h
}

// Size returns the approximate in-record size of the value in bytes,
// matching the storage codec of package storage.
func (v Value) Size() int {
	switch v.kind {
	case KindNull:
		return 1
	case KindInt, KindBool:
		return 9
	case KindString:
		return 5 + len(v.s)
	case KindXADT:
		return 5 + len(v.x)
	default:
		return 1
	}
}
