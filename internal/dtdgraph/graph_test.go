package dtdgraph

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/dtd"
)

func buildGraph(t *testing.T, src string) *Graph {
	t.Helper()
	d, err := dtd.Parse(src)
	if err != nil {
		t.Fatalf("dtd.Parse: %v", err)
	}
	g := Build(dtd.Simplify(d))
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return g
}

func TestPlaysGraphInDegrees(t *testing.T) {
	g := buildGraph(t, corpus.PlaysDTD)
	cases := map[string]int{
		"PLAY": 0, "INDUCT": 1, "ACT": 1, "SCENE": 2,
		"SPEECH": 2, "TITLE": 3, "SUBTITLE": 3,
		"PROLOGUE": 1, "SUBHEAD": 1, "SPEAKER": 1, "LINE": 1,
	}
	for name, want := range cases {
		if got := g.InDegree(name); got != want {
			t.Errorf("InDegree(%s) = %d, want %d", name, got, want)
		}
	}
}

func TestPlaysGraphBelowStar(t *testing.T) {
	g := buildGraph(t, corpus.PlaysDTD)
	below := []string{"ACT", "SCENE", "SUBTITLE", "SPEECH", "SUBHEAD", "SPEAKER", "LINE"}
	notBelow := []string{"PLAY", "INDUCT", "TITLE", "PROLOGUE"}
	for _, name := range below {
		if !g.BelowStar(name) {
			t.Errorf("BelowStar(%s) = false, want true", name)
		}
	}
	for _, name := range notBelow {
		if g.BelowStar(name) {
			t.Errorf("BelowStar(%s) = true, want false", name)
		}
	}
}

func TestLeafClassification(t *testing.T) {
	g := buildGraph(t, corpus.ShakespeareDTD)
	if !g.IsPCDATALeaf("SPEAKER") {
		t.Error("SPEAKER should be a PCDATA leaf")
	}
	if g.IsLeaf("LINE") {
		t.Error("LINE has a STAGEDIR child; not a leaf")
	}
	if g.IsLeaf("SPEECH") {
		t.Error("SPEECH is not a leaf")
	}
	if !g.IsPCDATALeaf("STAGEDIR") {
		t.Error("STAGEDIR should be a PCDATA leaf")
	}
}

func TestRoots(t *testing.T) {
	for _, tc := range []struct {
		src  string
		want string
	}{
		{corpus.PlaysDTD, "PLAY"},
		{corpus.ShakespeareDTD, "PLAY"},
		{corpus.SigmodDTD, "PP"},
	} {
		g := buildGraph(t, tc.src)
		roots := g.Roots()
		if len(roots) != 1 || roots[0] != tc.want {
			t.Errorf("Roots = %v, want [%s]", roots, tc.want)
		}
	}
}

func TestSubtree(t *testing.T) {
	g := buildGraph(t, corpus.SigmodDTD)
	sub := g.Subtree("sList")
	for _, name := range []string{"sListTuple", "sectionName", "articles", "aTuple",
		"title", "authors", "author", "initPage", "endPage", "Toindex", "index",
		"fullText", "size"} {
		if !sub[name] {
			t.Errorf("Subtree(sList) missing %s", name)
		}
	}
	if sub["PP"] || sub["volume"] {
		t.Error("Subtree(sList) contains non-descendants")
	}
}

func TestExternalLinksShakespeare(t *testing.T) {
	g := buildGraph(t, corpus.ShakespeareDTD)
	// FM and PERSONAE hang off PLAY with PCDATA-leaf-only sharing: the
	// revised graph duplicates those leaves, so no external links.
	for _, name := range []string{"FM", "PERSONAE", "LINE"} {
		if g.HasExternalLinks(name) {
			t.Errorf("HasExternalLinks(%s) = true, want false", name)
		}
	}
	// INDUCT's subtree contains SCENE and SPEECH, which ACT and others
	// also reference.
	for _, name := range []string{"INDUCT", "ACT", "PROLOGUE", "EPILOGUE"} {
		if !g.HasExternalLinks(name) {
			t.Errorf("HasExternalLinks(%s) = false, want true", name)
		}
	}
}

func TestExternalLinksSigmod(t *testing.T) {
	g := buildGraph(t, corpus.SigmodDTD)
	if g.HasExternalLinks("sList") {
		t.Error("sList subtree should have no external links")
	}
}

func TestRecursiveSimpleCycle(t *testing.T) {
	g := buildGraph(t, `
<!ELEMENT a (b*)>
<!ELEMENT b (c?)>
<!ELEMENT c (b*, d)>
<!ELEMENT d (#PCDATA)>
`)
	rec := g.Recursive()
	if !rec["b"] || !rec["c"] {
		t.Errorf("recursive = %v, want b and c", rec)
	}
	if rec["a"] || rec["d"] {
		t.Errorf("a/d should not be recursive: %v", rec)
	}
}

func TestRecursiveSelfLoop(t *testing.T) {
	g := buildGraph(t, `<!ELEMENT part (part*, name)> <!ELEMENT name (#PCDATA)>`)
	rec := g.Recursive()
	if !rec["part"] {
		t.Error("part should be self-recursive")
	}
	if rec["name"] {
		t.Error("name should not be recursive")
	}
}

func TestNoRecursionInPaperDTDs(t *testing.T) {
	for _, src := range []string{corpus.PlaysDTD, corpus.ShakespeareDTD, corpus.SigmodDTD} {
		g := buildGraph(t, src)
		if rec := g.Recursive(); len(rec) != 0 {
			t.Errorf("unexpected recursion: %v", rec)
		}
	}
}

func TestSCCsReverseTopological(t *testing.T) {
	g := buildGraph(t, `
<!ELEMENT a (b)>
<!ELEMENT b (c)>
<!ELEMENT c (#PCDATA)>
`)
	sccs := g.SCCs()
	if len(sccs) != 3 {
		t.Fatalf("got %d SCCs, want 3", len(sccs))
	}
	// Reverse topological: c before b before a.
	order := map[string]int{}
	for i, scc := range sccs {
		for _, n := range scc {
			order[n] = i
		}
	}
	if !(order["c"] < order["b"] && order["b"] < order["a"]) {
		t.Errorf("SCC order not reverse topological: %v", sccs)
	}
}

func TestValidateUndeclaredReference(t *testing.T) {
	d, err := dtd.Parse(`<!ELEMENT a (ghost)>`)
	if err != nil {
		t.Fatal(err)
	}
	g := Build(dtd.Simplify(d))
	if err := g.Validate(); err == nil {
		t.Error("Validate should reject undeclared child reference")
	}
}

func TestParentNames(t *testing.T) {
	g := buildGraph(t, corpus.PlaysDTD)
	got := g.ParentNames("SPEECH")
	if len(got) != 2 || got[0] != "ACT" || got[1] != "SCENE" {
		t.Errorf("ParentNames(SPEECH) = %v, want [ACT SCENE]", got)
	}
}

func TestPathCountMonotonic(t *testing.T) {
	g := buildGraph(t, corpus.PlaysDTD)
	n := g.PathCount("PLAY", false)
	withCData := g.PathCount("PLAY", true)
	if n <= 0 || withCData <= n {
		t.Errorf("PathCount = %d / %d, want positive and increasing with cdata", n, withCData)
	}
}

func TestPathCountCutsCycles(t *testing.T) {
	g := buildGraph(t, `<!ELEMENT part (part?, name)> <!ELEMENT name (#PCDATA)>`)
	n := g.PathCount("part", false)
	// part, part/part, part/name: descent stops at a repeated element, so
	// the path part/part/name is not enumerated.
	if n != 3 {
		t.Errorf("PathCount = %d, want 3", n)
	}
}
