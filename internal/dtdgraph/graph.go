// Package dtdgraph builds the DTD graph of Shanmugasundaram et al. over a
// simplified DTD and provides the structural analyses that the Hybrid and
// XORator mapping algorithms are defined in terms of: in-degrees,
// below-star tests, leaf classification, subtree reachability with the
// revised-graph leaf decoupling of the XORator paper (§3.2), and recursive
// strongly connected components.
package dtdgraph

import (
	"fmt"
	"sort"

	"repro/internal/dtd"
)

// Edge is a parent→child reference in the DTD graph, annotated with the
// simplified occurrence indicator of the reference.
type Edge struct {
	Parent string
	Child  string
	Occurs dtd.Occurs
}

// Graph is a DTD graph over a simplified DTD.
type Graph struct {
	// S is the simplified DTD the graph was built from.
	S *dtd.SimplifiedDTD
	// Order lists element names in declaration order.
	Order []string
	// parents maps each element to the edges arriving at it.
	parents map[string][]Edge
}

// Build constructs the DTD graph for a simplified DTD. Every element
// declared in the DTD becomes a node; each child item becomes an edge.
func Build(s *dtd.SimplifiedDTD) *Graph {
	g := &Graph{S: s, parents: map[string][]Edge{}}
	g.Order = append(g.Order, s.Order...)
	for _, name := range s.Order {
		for _, it := range s.Elements[name].Items {
			g.parents[it.Name] = append(g.parents[it.Name], Edge{
				Parent: name,
				Child:  it.Name,
				Occurs: it.Occurs,
			})
		}
	}
	return g
}

// Validate reports an error if any content model references an undeclared
// element.
func (g *Graph) Validate() error {
	for _, name := range g.Order {
		for _, it := range g.S.Elements[name].Items {
			if g.S.Element(it.Name) == nil {
				return fmt.Errorf("dtdgraph: element %s references undeclared element %s", name, it.Name)
			}
		}
	}
	return nil
}

// Items returns the child items of the named element in content order.
func (g *Graph) Items(name string) []dtd.Item {
	e := g.S.Element(name)
	if e == nil {
		return nil
	}
	return e.Items
}

// Parents returns the edges arriving at name, in declaration order of the
// parents.
func (g *Graph) Parents(name string) []Edge {
	return g.parents[name]
}

// ParentNames returns the distinct parent element names of name, sorted.
func (g *Graph) ParentNames(name string) []string {
	seen := map[string]bool{}
	for _, e := range g.parents[name] {
		seen[e.Parent] = true
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// InDegree returns the number of distinct parent elements of name.
func (g *Graph) InDegree(name string) int {
	return len(g.ParentNames(name))
}

// BelowStar reports whether any reference to name carries a Star
// indicator — i.e. the node sits directly below a "*" operator node in the
// DTD graph.
func (g *Graph) BelowStar(name string) bool {
	for _, e := range g.parents[name] {
		if e.Occurs == dtd.Star {
			return true
		}
	}
	return false
}

// IsLeaf reports whether name has no element children.
func (g *Graph) IsLeaf(name string) bool {
	e := g.S.Element(name)
	return e != nil && len(e.Items) == 0
}

// IsPCDATALeaf reports whether name is a leaf that contains character
// data. These are the nodes the revised DTD graph duplicates per parent to
// eliminate sharing (§3.2).
func (g *Graph) IsPCDATALeaf(name string) bool {
	e := g.S.Element(name)
	return e != nil && len(e.Items) == 0 && e.HasPCDATA
}

// Roots returns elements with no parents, in declaration order.
func (g *Graph) Roots() []string {
	var out []string
	for _, name := range g.Order {
		if len(g.parents[name]) == 0 {
			out = append(out, name)
		}
	}
	return out
}

// Subtree returns the set of elements reachable from name through child
// edges. name itself is a member only when it is reachable from itself —
// i.e. the element is recursive.
func (g *Graph) Subtree(name string) map[string]bool {
	seen := map[string]bool{}
	var visit func(string)
	visit = func(n string) {
		for _, it := range g.Items(n) {
			if !seen[it.Name] {
				seen[it.Name] = true
				visit(it.Name)
			}
		}
	}
	visit(name)
	return seen
}

// HasExternalLinks reports whether any descendant of name is referenced
// from outside the subtree rooted at name. Duplicated nodes — PCDATA
// leaves, which the revised DTD graph copies per parent — never count as
// externally linked. This is the test of XORator rule 1: a subtree with no
// external links can be collapsed into an XADT attribute of name's parent.
func (g *Graph) HasExternalLinks(name string) bool {
	sub := g.Subtree(name)
	if sub[name] {
		// The element reaches itself: recursion cannot be folded into a
		// fragment attribute.
		return true
	}
	for d := range sub {
		if g.IsPCDATALeaf(d) {
			continue
		}
		for _, p := range g.ParentNames(d) {
			if p != name && !sub[p] {
				return true
			}
		}
	}
	return false
}

// Recursive returns the set of elements involved in recursion: members of
// any strongly connected component of size greater than one, plus elements
// with a self-edge.
func (g *Graph) Recursive() map[string]bool {
	out := map[string]bool{}
	for _, scc := range g.SCCs() {
		if len(scc) > 1 {
			for _, n := range scc {
				out[n] = true
			}
		}
	}
	for _, name := range g.Order {
		for _, it := range g.Items(name) {
			if it.Name == name {
				out[name] = true
			}
		}
	}
	return out
}

// SCCs returns the strongly connected components of the DTD graph using
// Tarjan's algorithm, in reverse topological order. Component member lists
// are sorted.
func (g *Graph) SCCs() [][]string {
	t := &tarjan{
		g:       g,
		index:   map[string]int{},
		lowlink: map[string]int{},
		onStack: map[string]bool{},
	}
	for _, name := range g.Order {
		if _, visited := t.index[name]; !visited {
			t.strongConnect(name)
		}
	}
	for _, scc := range t.sccs {
		sort.Strings(scc)
	}
	return t.sccs
}

type tarjan struct {
	g       *Graph
	counter int
	index   map[string]int
	lowlink map[string]int
	stack   []string
	onStack map[string]bool
	sccs    [][]string
}

func (t *tarjan) strongConnect(v string) {
	t.index[v] = t.counter
	t.lowlink[v] = t.counter
	t.counter++
	t.stack = append(t.stack, v)
	t.onStack[v] = true

	for _, it := range t.g.Items(v) {
		w := it.Name
		if _, visited := t.index[w]; !visited {
			t.strongConnect(w)
			t.lowlink[v] = min(t.lowlink[v], t.lowlink[w])
		} else if t.onStack[w] {
			t.lowlink[v] = min(t.lowlink[v], t.index[w])
		}
	}

	if t.lowlink[v] == t.index[v] {
		var scc []string
		for {
			w := t.stack[len(t.stack)-1]
			t.stack = t.stack[:len(t.stack)-1]
			t.onStack[w] = false
			scc = append(scc, w)
			if w == v {
				break
			}
		}
		t.sccs = append(t.sccs, scc)
	}
}

// PathCount returns the number of distinct label paths from the given root
// to every reachable node, cutting cycles at repeated elements along a
// path. This models the Monet mapping's association tables: one table per
// distinct path. Paths to character data are counted separately when
// countCData is true (Monet stores a cdata association per path).
func (g *Graph) PathCount(root string, countCData bool) int {
	count := 0
	var visit func(name string, onPath map[string]bool)
	visit = func(name string, onPath map[string]bool) {
		count++
		e := g.S.Element(name)
		if e == nil {
			return
		}
		if countCData && e.HasPCDATA {
			count++
		}
		if countCData {
			count += len(e.Attrs)
		}
		if onPath[name] {
			return
		}
		onPath[name] = true
		for _, it := range e.Items {
			visit(it.Name, onPath)
		}
		delete(onPath, name)
	}
	visit(root, map[string]bool{})
	return count
}
