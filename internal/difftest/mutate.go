package difftest

import (
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/dtd"
	"repro/internal/engine"
	"repro/internal/engine/plan"
	"repro/internal/engine/storage"
	"repro/internal/engine/types"
	"repro/internal/engine/wal"
	"repro/internal/mapping"
	"repro/internal/xadt"
	"repro/internal/xmltree"
)

// RunMutation executes the mutation-history differential axis: each
// iteration derives a random DTD and document set, builds a Hybrid and
// a XORator twin plus a WAL-backed durable XORator twin, then applies a
// seeded random sequence of mutations — SQL INSERT/UPDATE/DELETE,
// document add/remove/replace, and fragment splices — identically to
// all of them. After every op the twins must agree on a sample of the
// iteration's query suite across the DOP-1/DOP-N and index-on/off
// cells; every few ops the durable twin is killed (its handle simply
// abandoned), recovered from its checkpoint and WAL tail, and must be
// byte-identical to the never-durable XORator twin. SQL statements run
// against the durable twin with index scans disabled, so the B+tree and
// forced-scan DML access paths must pick identical victims or the
// byte-for-byte comparison fails.
//
// Iterations whose history is document-ops-only additionally compare
// the mutated stores against fresh stores loaded with just the
// surviving documents, on ID-insensitive queries: whatever a document
// add/remove/replace sequence reaches must be indistinguishable — up to
// synthetic IDs — from never having loaded the removed documents at
// all.
func RunMutation(opts Options) (*Summary, error) {
	opts.setDefaults()
	sum := &Summary{}
	for iter := 0; iter < opts.Iters; iter++ {
		seed := opts.Seed + int64(iter)
		ms, err := newMutState(opts, seed, nil, nil)
		if err != nil {
			return sum, fmt.Errorf("mutation iteration %d (seed %d): %w", iter, seed, err)
		}
		divs, cells, err := ms.run(opts)
		if err != nil {
			return sum, fmt.Errorf("mutation iteration %d (seed %d): %w", iter, seed, err)
		}
		sum.Iters++
		sum.Cases += len(ms.cases)
		sum.Cells += cells
		if len(divs) > 0 {
			for i := range divs {
				divs[i].Iter, divs[i].Seed = iter, seed
			}
			sum.Divergences = append(sum.Divergences, divs...)
			fmt.Fprintf(opts.Log, "difftest: mutation iteration %d (seed %d) diverged: %s\n",
				iter, seed, divs[0].Detail)
			if sum.Artifact == "" {
				min := minimizeMutation(opts, seed, ms, divs[0])
				if err := writeMutationArtifact(opts, min, divs[0]); err != nil {
					fmt.Fprintf(opts.Log, "difftest: writing artifact: %v\n", err)
				} else {
					sum.Artifact = opts.ArtifactPath
				}
			}
			if opts.FailFast {
				break
			}
		}
		if (iter+1)%5 == 0 {
			fmt.Fprintf(opts.Log, "difftest: mutation %d/%d iterations, %d cells, %d divergences\n",
				iter+1, opts.Iters, sum.Cells, len(sum.Divergences))
		}
	}
	return sum, nil
}

// mutState is one mutation iteration: the generated inputs, the three
// twins, and the live-document bookkeeping the op generator draws from.
type mutState struct {
	seed   int64
	dtdSrc string
	root   string
	d      *dtd.DTD
	format *xadt.Format
	docs   []*xmltree.Document
	texts  []string

	// rng drives op selection and op payloads. It is seeded separately
	// from document generation so a minimized run (fewer initial docs)
	// still replays the same op stream.
	rng     *rand.Rand
	docOnly bool

	hy, xo *core.Store
	// dur is the WAL-backed XORator twin; durVFS is its filesystem, kept
	// so the twin can be "killed" and recovered in place mid-history.
	dur    *core.Store
	durVFS storage.VFS

	live     []int64
	liveDocs map[int64]*xmltree.Document
	// maxLive caps the live-document set so a long history cannot grow
	// the tables without bound; LoadRepeat raises it past the default.
	maxLive int
	// nextNeg allocates IDs for SQL INSERTs. Negative IDs can never
	// collide with the shredder's counters (which only count up from 1),
	// so an inserted row neither aliases a document row nor disturbs the
	// ID sequence the next document add will use.
	nextNeg int64
	// fragDirty is set once any SQL mutation or fragment splice has run:
	// from then on the cross-mapping cases that relate XADT fragment
	// content to Hybrid child relations (xadtcount, xadtfindkey) are no
	// longer equivalent — a splice rewrites only the XORator fragment,
	// and row-level DML cannot touch the fragment and the child rows in
	// lockstep. Document-level ops keep full equivalence.
	fragDirty bool

	samp  *docSamples
	cases []Case
	opLog []string
}

// newMutState derives the iteration inputs from seed and builds the
// twins. A non-nil docs overrides document generation (minimization);
// the format decision is drawn before the documents so a minimized run
// keeps the original representation.
func newMutState(opts Options, seed int64, docs []*xmltree.Document, texts []string) (*mutState, error) {
	genRng := rand.New(rand.NewSource(seed))
	ms := &mutState{seed: seed, root: "E0", nextNeg: -1, liveDocs: map[int64]*xmltree.Document{}}
	ms.dtdSrc = genDTD(genRng)
	var err error
	ms.d, err = dtd.Parse(ms.dtdSrc)
	if err != nil {
		return nil, fmt.Errorf("generated DTD does not parse: %w\n%s", err, ms.dtdSrc)
	}
	switch genRng.Intn(3) {
	case 0: // let the stores sample and choose
	case 1:
		f := xadt.Raw
		ms.format = &f
	default:
		f := xadt.Compressed
		ms.format = &f
	}
	if docs == nil {
		docs, texts, err = genDocs(genRng, ms.d, ms.root, opts.Docs)
		if err != nil {
			return nil, err
		}
	}
	ms.docs, ms.texts = docs, texts
	ms.rng = rand.New(rand.NewSource(seed ^ 0x6d757461))
	ms.docOnly = ms.rng.Intn(4) == 0
	if err := ms.build(opts); err != nil {
		return nil, err
	}
	ms.samp = collectSamples(ms.docs)
	caseRng := rand.New(rand.NewSource(seed ^ 0x9ca5e5))
	ms.cases = generateCases(caseRng, ms.hy.Schema, ms.xo.Schema, ms.hy.Simplified, ms.samp, 1)
	return ms, nil
}

func (ms *mutState) build(opts Options) error {
	mkPlain := func(alg core.Algorithm) (*core.Store, error) {
		return core.NewStore(ms.dtdSrc, core.Config{Algorithm: alg, ForceFormat: ms.format})
	}
	var err error
	if ms.hy, err = mkPlain(core.Hybrid); err != nil {
		return fmt.Errorf("hybrid store: %w", err)
	}
	if ms.xo, err = mkPlain(core.XORator); err != nil {
		return fmt.Errorf("xorator store: %w", err)
	}
	ms.durVFS = storage.NewMemVFS()
	ms.dur, err = core.NewStore(ms.dtdSrc, core.Config{Algorithm: core.XORator, ForceFormat: ms.format,
		Engine: engine.Config{WALDir: "wal", WALSync: wal.SyncAlways, VFS: ms.durVFS}})
	if err != nil {
		return fmt.Errorf("durable store: %w", err)
	}
	// The initial documents enter through AddDocuments, not Load, so the
	// whole history — including the first documents — is removable.
	// LoadRepeat replicates them, giving DOP cells enough pages to split
	// into more than one morsel.
	initial := ms.docs
	for r := 1; r < opts.LoadRepeat; r++ {
		initial = append(initial, ms.docs...)
	}
	ids, err := ms.addEverywhere(initial)
	if err != nil {
		return err
	}
	for i, id := range ids {
		ms.live = append(ms.live, id)
		ms.liveDocs[id] = initial[i]
	}
	ms.maxLive = 10
	if len(ms.live) > ms.maxLive {
		ms.maxLive = len(ms.live)
	}
	for _, s := range ms.stores() {
		if err := s.CreateDefaultIndexes(); err != nil {
			return err
		}
		if err := s.RunStats(); err != nil {
			return err
		}
	}
	return nil
}

func (ms *mutState) stores() []*core.Store { return []*core.Store{ms.hy, ms.xo, ms.dur} }

// addEverywhere adds the documents to all three twins and requires the
// per-store document ID allocation to agree.
func (ms *mutState) addEverywhere(docs []*xmltree.Document) ([]int64, error) {
	ref, err := ms.hy.AddDocuments(docs)
	if err != nil {
		return nil, fmt.Errorf("hybrid add: %w", err)
	}
	for _, s := range []*core.Store{ms.xo, ms.dur} {
		ids, err := s.AddDocuments(docs)
		if err != nil {
			return nil, err
		}
		if len(ids) != len(ref) {
			return nil, fmt.Errorf("document ID allocation diverged: %v vs %v", ids, ref)
		}
		for i := range ids {
			if ids[i] != ref[i] {
				return nil, fmt.Errorf("document ID allocation diverged: %v vs %v", ids, ref)
			}
		}
	}
	return ref, nil
}

// run applies the op sequence, checking after every op and recovering
// the durable twin every few ops. It stops at the first divergent op:
// state after a divergence is already suspect, so piling on follow-up
// divergences would only bury the interesting one.
func (ms *mutState) run(opts Options) ([]Divergence, int, error) {
	var divs []Divergence
	cells := 0
	for op := 0; op < opts.Ops; op++ {
		desc, ds, err := ms.applyOp()
		if err != nil {
			return divs, cells, fmt.Errorf("op %d (%s): %w", op, desc, err)
		}
		ms.opLog = append(ms.opLog, desc)
		cells++ // the op itself (count agreement) is a checked cell
		divs = append(divs, ds...)
		if len(divs) > 0 {
			return divs, cells, nil
		}
		// A rotating sample of the query suite runs after every op; the
		// full suite runs at the end of the history.
		for j := 0; j < 3 && j < len(ms.cases); j++ {
			c := ms.cases[(op*3+j)%len(ms.cases)]
			ds, n, err := ms.checkMutCase(opts, c)
			cells += n
			if err != nil {
				return divs, cells, fmt.Errorf("op %d (%s) case %s: %w", op, desc, c.Name, err)
			}
			divs = append(divs, ds...)
		}
		if len(divs) > 0 {
			return divs, cells, nil
		}
		if op%8 == 7 {
			ds, n, err := ms.recoverDurable()
			cells += n
			if err != nil {
				return divs, cells, fmt.Errorf("op %d (%s): %w", op, desc, err)
			}
			divs = append(divs, ds...)
			if len(divs) > 0 {
				return divs, cells, nil
			}
		}
	}
	ds, n, err := ms.recoverDurable()
	cells += n
	if err != nil {
		return divs, cells, err
	}
	divs = append(divs, ds...)
	for _, c := range ms.cases {
		cds, n, err := ms.checkMutCase(opts, c)
		cells += n
		if err != nil {
			return divs, cells, fmt.Errorf("final sweep case %s: %w", c.Name, err)
		}
		divs = append(divs, cds...)
	}
	if ms.docOnly {
		fds, n, err := ms.checkFreshLoad()
		cells += n
		if err != nil {
			return divs, cells, err
		}
		divs = append(divs, fds...)
	}
	return divs, cells, nil
}

// ---- op generation and application ----------------------------------------

const (
	opAdd = iota
	opRemove
	opReplace
	opInsert
	opUpdate
	opDelete
	opSplice
)

func (ms *mutState) applyOp() (string, []Divergence, error) {
	var kind int
	if ms.docOnly {
		kind = []int{opAdd, opAdd, opRemove, opReplace}[ms.rng.Intn(4)]
	} else {
		kind = []int{opAdd, opAdd, opRemove, opReplace, opInsert, opUpdate, opDelete, opSplice}[ms.rng.Intn(8)]
	}
	// Keep the live set in [1, maxLive]: at least one document so the
	// query suite stays non-trivial, and bounded above so a long history
	// cannot grow the tables without bound.
	if kind == opAdd && len(ms.live) >= ms.maxLive {
		kind = opRemove
	}
	if kind == opRemove && len(ms.live) <= 1 {
		kind = opAdd
	}
	switch kind {
	case opAdd:
		desc, err := ms.opAddDoc()
		return desc, nil, err
	case opRemove:
		desc, err := ms.opRemoveDoc()
		return desc, nil, err
	case opReplace:
		desc, err := ms.opReplaceDoc()
		return desc, nil, err
	case opInsert:
		return ms.opSQLInsert()
	case opUpdate:
		return ms.opSQLUpdate()
	case opDelete:
		return ms.opSQLDelete()
	default:
		return ms.opSplice()
	}
}

func (ms *mutState) opAddDoc() (string, error) {
	docs, _, err := genDocs(ms.rng, ms.d, ms.root, 1)
	if err != nil {
		return "add", err
	}
	ids, err := ms.addEverywhere(docs)
	if err != nil {
		return "add", err
	}
	ms.live = append(ms.live, ids[0])
	ms.liveDocs[ids[0]] = docs[0]
	return fmt.Sprintf("add doc %d", ids[0]), nil
}

func (ms *mutState) opRemoveDoc() (string, error) {
	i := ms.rng.Intn(len(ms.live))
	id := ms.live[i]
	desc := fmt.Sprintf("remove doc %d", id)
	for _, s := range ms.stores() {
		if err := s.RemoveDocument(id); err != nil {
			return desc, err
		}
	}
	ms.live = append(ms.live[:i], ms.live[i+1:]...)
	delete(ms.liveDocs, id)
	return desc, nil
}

func (ms *mutState) opReplaceDoc() (string, error) {
	id := ms.live[ms.rng.Intn(len(ms.live))]
	desc := fmt.Sprintf("replace doc %d", id)
	docs, _, err := genDocs(ms.rng, ms.d, ms.root, 1)
	if err != nil {
		return desc, err
	}
	for _, s := range ms.stores() {
		if err := s.ReplaceDocument(id, docs[0]); err != nil {
			return desc, err
		}
	}
	ms.liveDocs[id] = docs[0]
	return desc, nil
}

// execEverywhere runs one SQL statement on all three twins. The durable
// twin executes with index scans disabled, making every statement an
// indexed-vs-scan differential: the later byte-for-byte store comparison
// fails if the two access paths picked different victims.
func (ms *mutState) execEverywhere(stmt string) ([]Divergence, error) {
	nh, err := ms.hy.Exec(stmt)
	if err != nil {
		return nil, fmt.Errorf("hybrid %q: %w", stmt, err)
	}
	nx, err := ms.xo.Exec(stmt)
	if err != nil {
		return nil, fmt.Errorf("xorator %q: %w", stmt, err)
	}
	ms.dur.DB.SetPlannerOptions(plan.Options{DOP: 1, DisableIndexScan: true})
	nd, err := ms.dur.Exec(stmt)
	ms.dur.DB.SetPlannerOptions(plan.Options{DOP: 1})
	if err != nil {
		return nil, fmt.Errorf("durable %q: %w", stmt, err)
	}
	if nh != nx || nx != nd {
		return []Divergence{{Case: Case{Name: "(dml)", Hybrid: stmt, XORator: stmt},
			Axis:   "mutation:dml-count",
			Detail: fmt.Sprintf("%q affected hybrid=%d xorator=%d durable=%d", stmt, nh, nx, nd)}}, nil
	}
	return nil, nil
}

func (ms *mutState) opSQLInsert() (string, []Divergence, error) {
	pairs := sharedRelPairs(ms.hy.Schema, ms.xo.Schema)
	if len(pairs) == 0 {
		desc, err := ms.opAddDoc()
		return desc, nil, err
	}
	p := pairs[ms.rng.Intn(len(pairs))]
	cols := sharedColumns(p)
	names := make([]string, 0, len(cols))
	idPos := -1
	for _, c := range cols {
		if c.Kind == mapping.KindID {
			idPos = len(names)
		}
		names = append(names, c.Name)
	}
	if idPos < 0 {
		desc, err := ms.opAddDoc()
		return desc, nil, err
	}
	var tuples []string
	for r, nr := 0, 1+ms.rng.Intn(2); r < nr; r++ {
		vals := make([]string, len(cols))
		for i, c := range cols {
			switch {
			case i == idPos:
				vals[i] = fmt.Sprint(ms.nextNeg)
				ms.nextNeg--
			case c.Type == mapping.Int:
				if ms.rng.Intn(4) == 0 {
					vals[i] = "NULL"
				} else {
					vals[i] = fmt.Sprint(ms.rng.Intn(6))
				}
			default:
				if ms.rng.Intn(4) == 0 {
					vals[i] = "NULL"
				} else {
					vals[i] = sqlString(plainWords[ms.rng.Intn(len(plainWords))])
				}
			}
		}
		tuples = append(tuples, "("+strings.Join(vals, ", ")+")")
	}
	stmt := fmt.Sprintf("INSERT INTO %s (%s) VALUES %s",
		p.hy.Name, strings.Join(names, ", "), strings.Join(tuples, ", "))
	ms.fragDirty = true
	divs, err := ms.execEverywhere(stmt)
	return stmt, divs, err
}

// dmlWhere builds a WHERE clause over shared columns, biased toward
// equality on the ID column so the DML index access path actually fires.
func (ms *mutState) dmlWhere(p relPair, cols []mapping.Column) string {
	idName := p.hy.IDColumn()
	max := int(ms.maxLiveID(p.hy.Name))
	if max < 1 {
		max = 1
	}
	switch ms.rng.Intn(4) {
	case 0:
		a := 1 + ms.rng.Intn(max)
		return fmt.Sprintf(" WHERE %s >= %d AND %s <= %d", idName, a, idName, a+ms.rng.Intn(3))
	case 1:
		if strs := colsOfType(cols, mapping.String); len(strs) > 0 {
			c := strs[ms.rng.Intn(len(strs))]
			w := plainWords[ms.rng.Intn(len(plainWords))]
			return fmt.Sprintf(" WHERE %s LIKE %s", c.Name, sqlString("%"+w+"%"))
		}
		fallthrough
	default:
		return fmt.Sprintf(" WHERE %s = %d", idName, 1+ms.rng.Intn(max))
	}
}

// maxLiveID reports the highest stored ID in a relation (0 if empty).
func (ms *mutState) maxLiveID(table string) int64 {
	rel := ms.xo.Schema.Relation(table)
	t := ms.xo.Table(table)
	if rel == nil || t == nil {
		return 0
	}
	idc := relIDIdx(rel)
	if idc < 0 {
		return 0
	}
	var max int64
	_ = t.Heap.Scan(func(_ storage.RID, row []types.Value) error {
		if v := row[idc]; !v.IsNull() && v.Kind() == types.KindInt && v.Int() > max {
			max = v.Int()
		}
		return nil
	})
	return max
}

func relIDIdx(rel *mapping.Relation) int {
	for i, c := range rel.Columns {
		if c.Kind == mapping.KindID {
			return i
		}
	}
	return -1
}

func (ms *mutState) opSQLUpdate() (string, []Divergence, error) {
	pairs := sharedRelPairs(ms.hy.Schema, ms.xo.Schema)
	if len(pairs) == 0 {
		desc, err := ms.opAddDoc()
		return desc, nil, err
	}
	p := pairs[ms.rng.Intn(len(pairs))]
	cols := sharedColumns(p)
	var settable []mapping.Column
	for _, c := range cols {
		switch c.Kind {
		case mapping.KindValue, mapping.KindAttr, mapping.KindInlined, mapping.KindInlinedAttr:
			settable = append(settable, c)
		}
	}
	if len(settable) == 0 {
		desc, err := ms.opAddDoc()
		return desc, nil, err
	}
	ms.rng.Shuffle(len(settable), func(i, j int) { settable[i], settable[j] = settable[j], settable[i] })
	k := 1 + ms.rng.Intn(2)
	if k > len(settable) {
		k = len(settable)
	}
	var sets []string
	for _, c := range settable[:k] {
		v := sqlString(plainWords[ms.rng.Intn(len(plainWords))])
		if ms.rng.Intn(5) == 0 {
			v = "NULL"
		}
		sets = append(sets, fmt.Sprintf("%s = %s", c.Name, v))
	}
	stmt := fmt.Sprintf("UPDATE %s SET %s%s", p.hy.Name, strings.Join(sets, ", "), ms.dmlWhere(p, cols))
	ms.fragDirty = true
	divs, err := ms.execEverywhere(stmt)
	return stmt, divs, err
}

func (ms *mutState) opSQLDelete() (string, []Divergence, error) {
	pairs := sharedRelPairs(ms.hy.Schema, ms.xo.Schema)
	if len(pairs) == 0 {
		desc, err := ms.opAddDoc()
		return desc, nil, err
	}
	p := pairs[ms.rng.Intn(len(pairs))]
	stmt := fmt.Sprintf("DELETE FROM %s%s", p.hy.Name, ms.dmlWhere(p, sharedColumns(p)))
	ms.fragDirty = true
	divs, err := ms.execEverywhere(stmt)
	return stmt, divs, err
}

// opSplice rewrites one row's XADT fragment on the two XORator twins.
// The Hybrid twin keeps its shredded child rows, so splices only run on
// XORator and the fragile cross-mapping cases retire (fragDirty).
func (ms *mutState) opSplice() (string, []Divergence, error) {
	xcols := schemaXadtCols(ms.xo.Schema)
	if len(xcols) == 0 {
		desc, err := ms.opAddDoc()
		return desc, nil, err
	}
	x := xcols[ms.rng.Intn(len(xcols))]
	rel := ms.xo.Schema.Relation(x.rel.Name)
	t := ms.xo.Table(x.rel.Name)
	idc := relIDIdx(rel)
	var ids []int64
	_ = t.Heap.Scan(func(_ storage.RID, row []types.Value) error {
		if v := row[idc]; !v.IsNull() && v.Kind() == types.KindInt {
			ids = append(ids, v.Int())
		}
		return nil
	})
	if len(ids) == 0 {
		desc, err := ms.opAddDoc()
		return desc, nil, err
	}
	id := ids[ms.rng.Intn(len(ids))]
	var frags []string
	for i, n := 0, ms.rng.Intn(3); i < n; i++ {
		frags = append(frags, fmt.Sprintf("<%s>%s %s</%s>", x.child,
			plainWords[ms.rng.Intn(len(plainWords))], plainWords[ms.rng.Intn(len(plainWords))], x.child))
	}
	desc := fmt.Sprintf("splice %s.%s id=%d frags=%d", x.rel.Name, x.col.Name, id, len(frags))
	ms.fragDirty = true
	for _, s := range []*core.Store{ms.xo, ms.dur} {
		if err := s.SpliceFragment(x.rel.Name, x.col.Name, id, frags); err != nil {
			return desc, nil, err
		}
	}
	return desc, nil, nil
}

// ---- per-op query checks ---------------------------------------------------

// runStoreQuery executes one query under the given planner options,
// restoring the store's default configuration afterwards.
func runStoreQuery(s *core.Store, o plan.Options, fast bool, sql string) (*engine.Result, error) {
	s.DB.SetXADTFastPath(fast)
	s.DB.SetPlannerOptions(o)
	defer func() {
		s.DB.SetXADTFastPath(true)
		s.DB.SetPlannerOptions(plan.Options{DOP: 1})
	}()
	res, err := s.Query(sql)
	if err != nil {
		return nil, fmt.Errorf("%q: %w", sql, err)
	}
	return res, nil
}

// fragileCross reports whether a cross case relates fragment content to
// Hybrid child relations, the equivalence row-level mutations break.
func fragileCross(name string) bool {
	return strings.Contains(name, "xadtcount") || strings.Contains(name, "xadtfindkey")
}

// checkMutCase runs one case across the mutation cell set: serial
// reference vs DOP-N, index-on vs index-off (both the XADT fragment
// indexes and the B+tree scans), the XADT fast path, and — while the
// mapping equivalence holds — the cross-mapping multiset comparison.
func (ms *mutState) checkMutCase(opts Options, c Case) ([]Divergence, int, error) {
	var divs []Divergence
	cells := 0
	record := func(axis, detail string) {
		divs = append(divs, Divergence{Case: c, Axis: axis, Detail: detail})
	}
	serial := plan.Options{DOP: 1}
	par := plan.Options{DOP: opts.DOP, MorselPages: 1, MinParallelPages: -1}
	noIdx := plan.Options{DOP: 1, DisableXADTIndexes: true, DisableIndexScan: true}
	noIdxPar := plan.Options{DOP: opts.DOP, MorselPages: 1, MinParallelPages: -1,
		DisableXADTIndexes: true, DisableIndexScan: true}
	type cellSpec struct {
		axis string
		o    plan.Options
		fast bool
	}
	var hyRef, xoRef *engine.Result
	if c.Hybrid != "" {
		ref, err := runStoreQuery(ms.hy, serial, true, c.Hybrid)
		if err != nil {
			return divs, cells, fmt.Errorf("hybrid %w", err)
		}
		hyRef = ref
		for _, cell := range []cellSpec{
			{"hybrid:dop", par, true},
			{"hybrid:noindex", noIdx, true},
			{"hybrid:noindex+dop", noIdxPar, true},
		} {
			got, err := runStoreQuery(ms.hy, cell.o, cell.fast, c.Hybrid)
			if err != nil {
				return divs, cells, fmt.Errorf("hybrid %w", err)
			}
			cells++
			if !sameRows(ref.Rows, got.Rows) {
				record(cell.axis, diffRows(ref.Rows, got.Rows))
			}
		}
	}
	if c.XORator != "" {
		ref, err := runStoreQuery(ms.xo, serial, true, c.XORator)
		if err != nil {
			return divs, cells, fmt.Errorf("xorator %w", err)
		}
		xoRef = ref
		for _, cell := range []cellSpec{
			{"xorator:dop", par, true},
			{"xorator:fastpath", serial, false},
			{"xorator:noindex", noIdx, true},
			{"xorator:noindex+dop", noIdxPar, true},
		} {
			got, err := runStoreQuery(ms.xo, cell.o, cell.fast, c.XORator)
			if err != nil {
				return divs, cells, fmt.Errorf("xorator %w", err)
			}
			cells++
			if !sameRows(ref.Rows, got.Rows) {
				record(cell.axis, diffRows(ref.Rows, got.Rows))
			}
		}
	}
	if c.Cross && hyRef != nil && xoRef != nil && !(ms.fragDirty && fragileCross(c.Name)) {
		cells++
		a, b := sortedCanon(hyRef.Rows), sortedCanon(xoRef.Rows)
		if !equalStrings(a, b) {
			record("mutation:cross-mapping", diffCanon(a, b))
		}
	}
	return divs, cells, nil
}

// recoverDurable kills the durable twin — its handle is simply
// abandoned, exactly what a crash leaves behind — recovers the store
// from the same filesystem, and requires the result to be
// byte-identical to the never-durable XORator twin. Half the time a
// checkpoint lands first, so histories recover across both snapshot
// and log-tail boundaries.
func (ms *mutState) recoverDurable() ([]Divergence, int, error) {
	var divs []Divergence
	cells := 0
	if ms.rng.Intn(2) == 0 {
		if err := ms.dur.Checkpoint(); err != nil {
			return nil, 0, fmt.Errorf("checkpointing durable twin: %w", err)
		}
	}
	rec, err := core.OpenRecovered(core.Config{Algorithm: core.XORator, ForceFormat: ms.format,
		Engine: engine.Config{WALDir: "wal", WALSync: wal.SyncAlways, VFS: ms.durVFS}})
	if err != nil {
		return nil, 0, fmt.Errorf("recovering durable twin: %w", err)
	}
	ms.dur = rec
	if err := rec.CreateDefaultIndexes(); err != nil {
		return nil, 0, err
	}
	// Re-analyze both twins: the recovered store carries the checkpoint's
	// statistics (possibly from before any document was loaded) while the
	// uninterrupted twin carries statistics that drifted through the
	// history. The recovered-query cells compare row order exactly, so the
	// planners must see identical statistics — refresh both over the
	// byte-identical heaps.
	if err := rec.RunStats(); err != nil {
		return nil, 0, err
	}
	if err := ms.xo.RunStats(); err != nil {
		return nil, 0, err
	}
	cells++
	if err := CompareStores(rec, ms.xo); err != nil {
		divs = append(divs, Divergence{Case: Case{Name: "(recovered state)"},
			Axis: "mutation:recovered-state", Detail: err.Error()})
		return divs, cells, nil
	}
	// A couple of queries against the freshly recovered store, compared
	// to the uninterrupted twin.
	for j := 0; j < 2 && j < len(ms.cases); j++ {
		c := ms.cases[ms.rng.Intn(len(ms.cases))]
		if c.XORator == "" {
			continue
		}
		ref, err := runStoreQuery(ms.xo, plan.Options{DOP: 1}, true, c.XORator)
		if err != nil {
			return divs, cells, fmt.Errorf("xorator %w", err)
		}
		got, err := runStoreQuery(rec, plan.Options{DOP: 1}, true, c.XORator)
		if err != nil {
			return divs, cells, fmt.Errorf("recovered %w", err)
		}
		cells++
		if !sameRows(ref.Rows, got.Rows) {
			divs = append(divs, Divergence{Case: c, Axis: "mutation:recovered-query",
				Detail: diffRows(ref.Rows, got.Rows)})
		}
	}
	return divs, cells, nil
}

// checkFreshLoad compares the mutated stores against fresh stores
// holding only the surviving documents. Synthetic IDs differ (the
// mutated store's counters never rewind), so the comparison runs
// ID-insensitive queries: row counts, value-group counts, and fragment
// counts must all be indistinguishable from never having loaded the
// removed documents.
func (ms *mutState) checkFreshLoad() ([]Divergence, int, error) {
	docs := make([]*xmltree.Document, 0, len(ms.live))
	for _, id := range ms.live {
		docs = append(docs, ms.liveDocs[id])
	}
	mk := func(alg core.Algorithm) (*core.Store, error) {
		s, err := core.NewStore(ms.dtdSrc, core.Config{Algorithm: alg, ForceFormat: ms.format})
		if err != nil {
			return nil, err
		}
		if _, err := s.AddDocuments(docs); err != nil {
			return nil, err
		}
		if err := s.CreateDefaultIndexes(); err != nil {
			return nil, err
		}
		if err := s.RunStats(); err != nil {
			return nil, err
		}
		return s, nil
	}
	fhy, err := mk(core.Hybrid)
	if err != nil {
		return nil, 0, fmt.Errorf("fresh hybrid store: %w", err)
	}
	fxo, err := mk(core.XORator)
	if err != nil {
		return nil, 0, fmt.Errorf("fresh xorator store: %w", err)
	}
	var divs []Divergence
	cells := 0
	check := func(mutated, fresh *core.Store, axis, q string) error {
		a, err := runStoreQuery(mutated, plan.Options{DOP: 1}, true, q)
		if err != nil {
			return err
		}
		b, err := runStoreQuery(fresh, plan.Options{DOP: 1}, true, q)
		if err != nil {
			return err
		}
		cells++
		ca, cb := sortedCanon(a.Rows), sortedCanon(b.Rows)
		if !equalStrings(ca, cb) {
			divs = append(divs, Divergence{Case: Case{Name: "freshload", Hybrid: q, XORator: q},
				Axis: axis, Detail: diffCanon(ca, cb)})
		}
		return nil
	}
	for _, p := range sharedRelPairs(ms.hy.Schema, ms.xo.Schema) {
		qs := []string{"SELECT COUNT(*) FROM " + p.hy.Name}
		if strs := colsOfType(sharedColumns(p), mapping.String); len(strs) > 0 {
			c := strs[0]
			qs = append(qs, fmt.Sprintf("SELECT %s, COUNT(*) FROM %s GROUP BY %s", c.Name, p.hy.Name, c.Name))
		}
		for _, q := range qs {
			if err := check(ms.hy, fhy, "hybrid:fresh-load", q); err != nil {
				return divs, cells, err
			}
			if err := check(ms.xo, fxo, "xorator:fresh-load", q); err != nil {
				return divs, cells, err
			}
		}
	}
	for _, x := range schemaXadtCols(ms.xo.Schema) {
		q := fmt.Sprintf("SELECT COUNT(*) FROM %s, TABLE(unnest(%s, %s)) u",
			x.rel.Name, x.col.Name, sqlString(x.child))
		if err := check(ms.xo, fxo, "xorator:fresh-load", q); err != nil {
			return divs, cells, err
		}
	}
	return divs, cells, nil
}

// ---- minimization and the failure artifact ---------------------------------

// minimizeMutation re-runs the iteration on progressively smaller
// initial document sets. The op stream is seeded independently of the
// documents, so a reduced run replays a similar history; a removal is
// kept only when the same axis still diverges.
func minimizeMutation(opts Options, seed int64, ms *mutState, d Divergence) *mutState {
	best := ms
	docs, texts := ms.docs, ms.texts
	for i := len(docs) - 1; i >= 0 && len(docs) > 1; i-- {
		tryDocs := make([]*xmltree.Document, 0, len(docs)-1)
		tryDocs = append(append(tryDocs, docs[:i]...), docs[i+1:]...)
		tryTexts := make([]string, 0, len(texts)-1)
		tryTexts = append(append(tryTexts, texts[:i]...), texts[i+1:]...)
		sub, err := newMutState(opts, seed, tryDocs, tryTexts)
		if err != nil {
			continue
		}
		divs, _, err := sub.run(opts)
		if err != nil {
			continue
		}
		for _, sd := range divs {
			if sd.Axis == d.Axis {
				docs, texts, best = tryDocs, tryTexts, sub
				break
			}
		}
	}
	return best
}

func writeMutationArtifact(opts Options, ms *mutState, d Divergence) error {
	var sb strings.Builder
	sb.WriteString("# difftest mutation divergence artifact\n")
	fmt.Fprintf(&sb, "# replay: go run ./cmd/repro -exp difftest -mutate -seed %d -iters 1\n", d.Seed)
	fmt.Fprintf(&sb, "seed: %d\niteration: %d\ncase: %s\naxis: %s\ndetail: %s\n",
		d.Seed, d.Iter, d.Case.Name, d.Axis, d.Detail)
	if ms.format != nil {
		fmt.Fprintf(&sb, "xadt format: %v\n", *ms.format)
	}
	fmt.Fprintf(&sb, "ops: %d, dop: %d, doc-only: %v\n", opts.Ops, opts.DOP, ms.docOnly)
	if d.Case.Hybrid != "" || d.Case.XORator != "" {
		fmt.Fprintf(&sb, "\n--- hybrid SQL ---\n%s\n\n--- xorator SQL ---\n%s\n", d.Case.Hybrid, d.Case.XORator)
	}
	sb.WriteString("\n--- mutation history ---\n")
	for i, op := range ms.opLog {
		fmt.Fprintf(&sb, "%3d: %s\n", i, op)
	}
	fmt.Fprintf(&sb, "\n--- DTD ---\n%s", ms.dtdSrc)
	for i, t := range ms.texts {
		fmt.Fprintf(&sb, "\n--- document %d of %d (minimized) ---\n%s\n", i+1, len(ms.texts), t)
	}
	return os.WriteFile(opts.ArtifactPath, []byte(sb.String()), 0o644)
}
