package difftest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/engine/exec"
	"repro/internal/testutil"
)

// TestMutationDifferentialSmoke runs short random mutation histories —
// SQL DML, document add/remove/replace, fragment splices — against the
// Hybrid/XORator/durable triplet and requires every checked cell to
// agree, including the periodic kill-and-recover byte comparison.
func TestMutationDifferentialSmoke(t *testing.T) {
	seed := testutil.Seed(t, 1)
	sum, err := RunMutation(Options{
		Seed:         seed,
		Iters:        3,
		Ops:          25,
		ArtifactPath: filepath.Join(t.TempDir(), "artifact.txt"),
	})
	if err != nil {
		t.Fatalf("harness error: %v (%s)", err, testutil.ReproLine(t, seed))
	}
	if len(sum.Divergences) > 0 {
		t.Fatalf("%d divergences, first: %s (%s)",
			len(sum.Divergences), sum.Divergences[0], testutil.ReproLine(t, seed))
	}
	if sum.Cells == 0 {
		t.Fatal("no mutation cells executed")
	}
	t.Logf("%d iterations, %d cases, %d cells, all identical", sum.Iters, sum.Cases, sum.Cells)
}

// TestMutationHistory500 is the headline acceptance run: one seeded
// 500-op random mutation history applied to both mappings, checked at
// DOP 1 and 4 with indexes on and off after every op, with the durable
// twin killed and recovered every few ops and required to come back
// byte-identical to the twin that never crashed.
func TestMutationHistory500(t *testing.T) {
	if testing.Short() {
		t.Skip("500-op history skipped in -short mode")
	}
	seed := testutil.Seed(t, 1)
	sum, err := RunMutation(Options{
		Seed:         seed,
		Iters:        1,
		Ops:          500,
		Docs:         2,
		DOP:          4,
		ArtifactPath: filepath.Join(t.TempDir(), "artifact.txt"),
	})
	if err != nil {
		t.Fatalf("harness error: %v (%s)", err, testutil.ReproLine(t, seed))
	}
	if len(sum.Divergences) > 0 {
		t.Fatalf("%d divergences, first: %s (%s)",
			len(sum.Divergences), sum.Divergences[0], testutil.ReproLine(t, seed))
	}
	t.Logf("500-op history: %d cells checked, all identical", sum.Cells)
}

// TestMutationDetectsDivergence proves the mutation net has teeth: with
// the Gather's morsel reordering sabotaged, the DOP cells checked after
// each op must report a divergence and write a -mutate replay artifact.
func TestMutationDetectsDivergence(t *testing.T) {
	exec.DisableGatherReorder = true
	defer func() { exec.DisableGatherReorder = false }()
	seed := testutil.Seed(t, 1)
	art := filepath.Join(t.TempDir(), "artifact.txt")
	sum, err := RunMutation(Options{
		Seed:         seed,
		Iters:        40,
		Ops:          12,
		Docs:         4,
		LoadRepeat:   12,
		FailFast:     true,
		ArtifactPath: art,
	})
	if err != nil {
		t.Fatalf("harness error: %v (%s)", err, testutil.ReproLine(t, seed))
	}
	if len(sum.Divergences) == 0 {
		t.Fatalf("sabotaged Gather reorder went undetected (%s)", testutil.ReproLine(t, seed))
	}
	data, err := os.ReadFile(art)
	if err != nil {
		t.Fatalf("failure artifact not written: %v", err)
	}
	for _, want := range []string{"-exp difftest -mutate -seed", "--- mutation history ---", "--- DTD ---"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("artifact missing %q", want)
		}
	}
	t.Logf("detected: %s", sum.Divergences[0])
}
