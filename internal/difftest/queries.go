package difftest

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/dtd"
	"repro/internal/mapping"
)

// Case is one generated query. Cross cases carry semantically equivalent
// SQL for both mappings and their (sorted) row sets must agree across
// stores; single-mapping cases leave the other side empty and are checked
// only across that mapping's DOP/fast-path/legacy cells.
type Case struct {
	Name    string
	Hybrid  string
	XORator string
	Cross   bool
	// Ordered marks a query whose ORDER BY covers every projected
	// column: its output order is fully determined by the data, so
	// cells that legitimately plan different join orders (the
	// cost-model axis) still compare exactly, not as multisets.
	Ordered bool
}

// qgen holds everything the query templates draw from.
type qgen struct {
	rng  *rand.Rand
	hy   *mapping.Schema
	xo   *mapping.Schema
	sd   *dtd.SimplifiedDTD
	samp *docSamples
	// repeat is how many times the document set was loaded, for sizing
	// numeric ranges against actual ID domains.
	repeat int
}

// relPair is a relation present in both mapped schemas for the same element.
type relPair struct {
	hy, xo *mapping.Relation
}

// xadtCol is one XADT fragment column of a XORator relation.
type xadtCol struct {
	rel   *mapping.Relation
	col   mapping.Column
	child string // the DTD element the fragment stores
}

// generateCases produces the query suite for one iteration: every template
// is attempted one or two times; templates that find no applicable schema
// shape simply contribute nothing.
func generateCases(rng *rand.Rand, hy, xo *mapping.Schema, sd *dtd.SimplifiedDTD, samp *docSamples, repeat int) []Case {
	g := &qgen{rng: rng, hy: hy, xo: xo, sd: sd, samp: samp, repeat: repeat}
	templates := []func() (Case, bool){
		g.tCount, g.tCount,
		g.tScan, g.tScan, g.tScan,
		g.tJoin, g.tJoin,
		g.tJoin3,
		g.tOrderLimit,
		g.tGroupCount,
		g.tAggMinMax,
		g.tXadtCount, g.tXadtCount,
		g.tXadtFindKey, g.tXadtFindKey,
		g.tXadtGetElm,
		g.tXadtIndex,
		g.tXadtUnnest,
	}
	var out []Case
	for i, t := range templates {
		if c, ok := t(); ok {
			c.Name = fmt.Sprintf("%02d-%s", i, c.Name)
			out = append(out, c)
		}
	}
	return out
}

// ---- schema introspection -------------------------------------------------

func (g *qgen) sharedRelations() []relPair { return sharedRelPairs(g.hy, g.xo) }

// sharedRelPairs lists the relations both mapped schemas derive for the
// same element; the mutation axis uses it too, to pick DML targets whose
// rows exist identically in both stores.
func sharedRelPairs(hy, xo *mapping.Schema) []relPair {
	var out []relPair
	for _, xr := range xo.Relations {
		if hr := hy.Relation(xr.Name); hr != nil && hr.Element == xr.Element {
			out = append(out, relPair{hy: hr, xo: xr})
		}
	}
	return out
}

func (g *qgen) pickSharedRel() (relPair, bool) {
	rels := g.sharedRelations()
	if len(rels) == 0 {
		return relPair{}, false
	}
	return rels[g.rng.Intn(len(rels))], true
}

func colEqual(a, b mapping.Column) bool {
	if a.Name != b.Name || a.Type != b.Type || a.Kind != b.Kind || a.Attr != b.Attr {
		return false
	}
	if len(a.Path) != len(b.Path) {
		return false
	}
	for i := range a.Path {
		if a.Path[i] != b.Path[i] {
			return false
		}
	}
	return true
}

// sharedColumns returns the columns that exist with identical definitions
// in both mappings of a shared relation. Because both shredders walk the
// same documents in the same order, these columns hold identical values in
// both stores — they are what cross-mapping templates may reference.
func sharedColumns(p relPair) []mapping.Column {
	var out []mapping.Column
	for _, hc := range p.hy.Columns {
		if xc, ok := p.xo.Column(hc.Name); ok && colEqual(hc, xc) {
			out = append(out, hc)
		}
	}
	return out
}

func colsOfType(cols []mapping.Column, t mapping.ColType) []mapping.Column {
	var out []mapping.Column
	for _, c := range cols {
		if c.Type == t {
			out = append(out, c)
		}
	}
	return out
}

func colOfKind(r *mapping.Relation, k mapping.ColKind) (mapping.Column, bool) {
	for _, c := range r.Columns {
		if c.Kind == k {
			return c, true
		}
	}
	return mapping.Column{}, false
}

// xadtCols lists every XADT column of the XORator schema.
func (g *qgen) xadtCols() []xadtCol { return schemaXadtCols(g.xo) }

func schemaXadtCols(s *mapping.Schema) []xadtCol {
	var out []xadtCol
	for _, r := range s.Relations {
		for _, c := range r.Columns {
			if c.Kind == mapping.KindXADT {
				out = append(out, xadtCol{rel: r, col: c, child: c.Path[0]})
			}
		}
	}
	return out
}

func (g *qgen) pickXadtCol() (xadtCol, bool) {
	cols := g.xadtCols()
	if len(cols) == 0 {
		return xadtCol{}, false
	}
	return cols[g.rng.Intn(len(cols))], true
}

// ---- value sampling -------------------------------------------------------

// sampleFor returns the observed document values a string column stores.
func (g *qgen) sampleFor(rel *mapping.Relation, c mapping.Column) []string {
	switch c.Kind {
	case mapping.KindValue:
		return g.samp.texts[rel.Element]
	case mapping.KindAttr:
		return g.samp.attrs[attrKey(rel.Element, c.Attr)]
	case mapping.KindInlined:
		return g.samp.texts[c.Path[len(c.Path)-1]]
	case mapping.KindInlinedAttr:
		return g.samp.attrs[attrKey(c.Path[len(c.Path)-1], c.Attr)]
	}
	return nil
}

// pickWord samples an alphanumeric word from an element's observed text.
func (g *qgen) pickWord(elem string) (string, bool) {
	texts := g.samp.texts[elem]
	if len(texts) == 0 {
		return "", false
	}
	words := alnumWords(texts[g.rng.Intn(len(texts))])
	if len(words) == 0 {
		return "", false
	}
	return words[g.rng.Intn(len(words))], true
}

// maxID is a loose upper bound on the relation's ID domain.
func (g *qgen) maxID(elem string) int {
	n := g.samp.count[elem] * g.repeat
	if n < 1 {
		n = 1
	}
	return n
}

func sqlString(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

// ---- predicate builder ----------------------------------------------------

// pred builds 0-2 random conditions over the given columns, returning a
// " WHERE ..." clause or "".
func (g *qgen) pred(rel *mapping.Relation, cols []mapping.Column) string {
	var conds []string
	for i, k := 0, g.rng.Intn(3); i < k; i++ {
		c := cols[g.rng.Intn(len(cols))]
		switch c.Type {
		case mapping.Int:
			max := g.maxID(rel.Element)
			switch g.rng.Intn(3) {
			case 0:
				conds = append(conds, fmt.Sprintf("%s = %d", c.Name, 1+g.rng.Intn(max)))
			case 1:
				conds = append(conds, fmt.Sprintf("%s >= %d", c.Name, 1+g.rng.Intn(max)))
			default:
				a := 1 + g.rng.Intn(max)
				conds = append(conds, fmt.Sprintf("%s >= %d AND %s <= %d", c.Name, a, c.Name, a+g.rng.Intn(max)))
			}
		case mapping.String:
			vals := g.sampleFor(rel, c)
			if len(vals) == 0 {
				continue
			}
			v := vals[g.rng.Intn(len(vals))]
			if g.rng.Intn(2) == 0 {
				if words := alnumWords(v); len(words) > 0 {
					w := words[g.rng.Intn(len(words))]
					conds = append(conds, fmt.Sprintf("%s LIKE %s", c.Name, sqlString("%"+w+"%")))
					continue
				}
			}
			conds = append(conds, fmt.Sprintf("%s = %s", c.Name, sqlString(v)))
		}
	}
	if len(conds) == 0 {
		return ""
	}
	return " WHERE " + strings.Join(conds, " AND ")
}

// ---- cross-mapping templates ----------------------------------------------

func (g *qgen) tCount() (Case, bool) {
	p, ok := g.pickSharedRel()
	if !ok {
		return Case{}, false
	}
	sql := "SELECT COUNT(*) FROM " + p.hy.Name
	return Case{Name: "count:" + p.hy.Name, Hybrid: sql, XORator: sql, Cross: true}, true
}

func (g *qgen) tScan() (Case, bool) {
	p, ok := g.pickSharedRel()
	if !ok {
		return Case{}, false
	}
	cols := sharedColumns(p)
	if len(cols) == 0 {
		return Case{}, false
	}
	proj := []string{p.hy.IDColumn()}
	for i, k := 0, g.rng.Intn(3); i < k; i++ {
		proj = append(proj, cols[g.rng.Intn(len(cols))].Name)
	}
	sql := "SELECT " + strings.Join(proj, ", ") + " FROM " + p.hy.Name + g.pred(p.hy, cols)
	return Case{Name: "scan:" + p.hy.Name, Hybrid: sql, XORator: sql, Cross: true}, true
}

func (g *qgen) tJoin() (Case, bool) {
	var cands []relPair
	for _, p := range g.sharedRelations() {
		if len(p.hy.ParentElements) > 0 {
			cands = append(cands, p)
		}
	}
	if len(cands) == 0 {
		return Case{}, false
	}
	c := cands[g.rng.Intn(len(cands))]
	pe := c.hy.ParentElements[g.rng.Intn(len(c.hy.ParentElements))]
	if pe == c.hy.Element {
		// A recursive element's parent is its own relation; the SQL
		// subset's unqualified columns cannot express that self-join.
		return Case{}, false
	}
	phy, pxo := g.hy.RelationFor(pe), g.xo.RelationFor(pe)
	if phy == nil || pxo == nil || phy.Name != pxo.Name {
		return Case{}, false
	}
	cpid, ok := colOfKind(c.hy, mapping.KindParentID)
	if !ok {
		return Case{}, false
	}
	conds := []string{fmt.Sprintf("%s = %s", cpid.Name, phy.IDColumn())}
	if code, ok := colOfKind(c.hy, mapping.KindParentCode); ok && g.rng.Intn(2) == 0 {
		conds = append(conds, fmt.Sprintf("%s = %s", code.Name, sqlString(pe)))
	}
	cols := sharedColumns(c)
	proj := []string{phy.IDColumn(), c.hy.IDColumn()}
	if strs := colsOfType(cols, mapping.String); len(strs) > 0 && g.rng.Intn(2) == 0 {
		proj = append(proj, strs[g.rng.Intn(len(strs))].Name)
	}
	sql := fmt.Sprintf("SELECT %s FROM %s, %s WHERE %s",
		strings.Join(proj, ", "), phy.Name, c.hy.Name, strings.Join(conds, " AND "))
	return Case{Name: "join:" + phy.Name + "/" + c.hy.Name, Hybrid: sql, XORator: sql, Cross: true}, true
}

// tJoin3 builds a three-relation chain join — grandparent, parent,
// child linked by their parentID foreign keys — ordered by every
// projected column so the output order is data-determined. It is the
// join-order workload of the cost-model axis: with three relations of
// different sizes the greedy and DP planners can legitimately pick
// different orders, and the full ORDER BY makes those plans exactly
// comparable.
func (g *qgen) tJoin3() (Case, bool) {
	shared := g.sharedRelations()
	byElem := map[string]relPair{}
	for _, p := range shared {
		byElem[p.hy.Element] = p
	}
	type chain struct{ gp, par, ch relPair }
	var cands []chain
	for _, ch := range shared {
		for _, pe := range ch.hy.ParentElements {
			par, ok := byElem[pe]
			if !ok || pe == ch.hy.Element {
				continue
			}
			for _, gpe := range par.hy.ParentElements {
				gp, ok := byElem[gpe]
				if !ok || gpe == pe || gpe == ch.hy.Element {
					continue
				}
				cands = append(cands, chain{gp: gp, par: par, ch: ch})
			}
		}
	}
	if len(cands) == 0 {
		return Case{}, false
	}
	c := cands[g.rng.Intn(len(cands))]
	chPid, ok := colOfKind(c.ch.hy, mapping.KindParentID)
	if !ok {
		return Case{}, false
	}
	parPid, ok := colOfKind(c.par.hy, mapping.KindParentID)
	if !ok {
		return Case{}, false
	}
	conds := []string{
		fmt.Sprintf("%s = %s", chPid.Name, c.par.hy.IDColumn()),
		fmt.Sprintf("%s = %s", parPid.Name, c.gp.hy.IDColumn()),
	}
	if code, ok := colOfKind(c.ch.hy, mapping.KindParentCode); ok {
		conds = append(conds, fmt.Sprintf("%s = %s", code.Name, sqlString(c.par.hy.Element)))
	}
	if code, ok := colOfKind(c.par.hy, mapping.KindParentCode); ok {
		conds = append(conds, fmt.Sprintf("%s = %s", code.Name, sqlString(c.gp.hy.Element)))
	}
	proj := []string{c.gp.hy.IDColumn(), c.par.hy.IDColumn(), c.ch.hy.IDColumn()}
	sql := fmt.Sprintf("SELECT %s FROM %s, %s, %s WHERE %s ORDER BY %s",
		strings.Join(proj, ", "), c.gp.hy.Name, c.par.hy.Name, c.ch.hy.Name,
		strings.Join(conds, " AND "), strings.Join(proj, ", "))
	return Case{
		Name:    "join3:" + c.gp.hy.Name + "/" + c.par.hy.Name + "/" + c.ch.hy.Name,
		Hybrid:  sql, XORator: sql, Cross: true, Ordered: true,
	}, true
}

func (g *qgen) tOrderLimit() (Case, bool) {
	p, ok := g.pickSharedRel()
	if !ok {
		return Case{}, false
	}
	id := p.hy.IDColumn()
	dir := "ASC"
	if g.rng.Intn(2) == 0 {
		dir = "DESC"
	}
	sql := fmt.Sprintf("SELECT %s FROM %s WHERE %s >= %d ORDER BY %s %s LIMIT %d",
		id, p.hy.Name, id, 1+g.rng.Intn(g.maxID(p.hy.Element)), id, dir, 1+g.rng.Intn(10))
	return Case{Name: "orderlimit:" + p.hy.Name, Hybrid: sql, XORator: sql, Cross: true}, true
}

func (g *qgen) tGroupCount() (Case, bool) {
	p, ok := g.pickSharedRel()
	if !ok {
		return Case{}, false
	}
	strs := colsOfType(sharedColumns(p), mapping.String)
	if len(strs) == 0 {
		return Case{}, false
	}
	s := strs[g.rng.Intn(len(strs))].Name
	sql := fmt.Sprintf("SELECT %s, COUNT(*) FROM %s GROUP BY %s", s, p.hy.Name, s)
	return Case{Name: "group:" + p.hy.Name, Hybrid: sql, XORator: sql, Cross: true}, true
}

func (g *qgen) tAggMinMax() (Case, bool) {
	p, ok := g.pickSharedRel()
	if !ok {
		return Case{}, false
	}
	ints := colsOfType(sharedColumns(p), mapping.Int)
	if len(ints) == 0 {
		return Case{}, false
	}
	c := ints[g.rng.Intn(len(ints))].Name
	sql := fmt.Sprintf("SELECT MIN(%s), MAX(%s), COUNT(*) FROM %s", c, c, p.hy.Name)
	return Case{Name: "agg:" + p.hy.Name, Hybrid: sql, XORator: sql, Cross: true}, true
}

// ---- XADT templates -------------------------------------------------------

// tXadtCount counts fragment occurrences two ways: unnesting the XADT
// column on the XORator side, and counting the child's relation rows
// (restricted by parentCODE when ambiguous) on the Hybrid side. When the
// child has no Hybrid relation the case degrades to XORator-only.
func (g *qgen) tXadtCount() (Case, bool) {
	x, ok := g.pickXadtCol()
	if !ok {
		return Case{}, false
	}
	xsql := fmt.Sprintf("SELECT COUNT(*) FROM %s, TABLE(unnest(%s, %s)) u",
		x.rel.Name, x.col.Name, sqlString(x.child))
	c := Case{Name: "xadtcount:" + x.col.Name, XORator: xsql}
	if er := g.hy.RelationFor(x.child); er != nil {
		hsql := "SELECT COUNT(*) FROM " + er.Name
		if code, ok := colOfKind(er, mapping.KindParentCode); ok {
			hsql += fmt.Sprintf(" WHERE %s = %s", code.Name, sqlString(x.rel.Element))
		}
		c.Hybrid, c.Cross = hsql, true
	}
	return c, true
}

// tXadtFindKey compares findKeyInElm against a LIKE predicate: count the
// owners whose fragment contains a key, vs count the distinct parents of
// child rows whose value matches the key. Only PCDATA-only leaf children
// qualify (their fragment text is exactly the relation's value column).
func (g *qgen) tXadtFindKey() (Case, bool) {
	var cands []xadtCol
	for _, x := range g.xadtCols() {
		se := g.sd.Element(x.child)
		if se != nil && se.HasPCDATA && len(se.Items) == 0 && len(g.samp.texts[x.child]) > 0 {
			cands = append(cands, x)
		}
	}
	if len(cands) == 0 {
		return Case{}, false
	}
	x := cands[g.rng.Intn(len(cands))]
	w, ok := g.pickWord(x.child)
	if !ok {
		return Case{}, false
	}
	xsql := fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE findKeyInElm(%s, %s, %s) = 1",
		x.rel.Name, x.col.Name, sqlString(x.child), sqlString(w))
	c := Case{Name: "xadtfindkey:" + x.col.Name, XORator: xsql}
	er := g.hy.RelationFor(x.child)
	if er == nil {
		return c, true
	}
	pid, okPid := colOfKind(er, mapping.KindParentID)
	val, okVal := colOfKind(er, mapping.KindValue)
	if !okPid || !okVal {
		return c, true
	}
	conds := []string{fmt.Sprintf("%s LIKE %s", val.Name, sqlString("%"+w+"%"))}
	if code, ok := colOfKind(er, mapping.KindParentCode); ok {
		conds = append(conds, fmt.Sprintf("%s = %s", code.Name, sqlString(x.rel.Element)))
	}
	c.Hybrid = fmt.Sprintf("SELECT COUNT(DISTINCT %s) FROM %s WHERE %s",
		pid.Name, er.Name, strings.Join(conds, " AND "))
	c.Cross = true
	return c, true
}

// childTarget picks a search target inside a fragment: the fragment's own
// element or one of its DTD children.
func (g *qgen) childTarget(x xadtCol) string {
	se := g.sd.Element(x.child)
	if se != nil && len(se.Items) > 0 && g.rng.Intn(2) == 0 {
		return se.Items[g.rng.Intn(len(se.Items))].Name
	}
	return x.child
}

func (g *qgen) tXadtGetElm() (Case, bool) {
	x, ok := g.pickXadtCol()
	if !ok {
		return Case{}, false
	}
	target := g.childTarget(x)
	key, _ := g.pickWord(target) // empty key matches everything
	sql := fmt.Sprintf("SELECT %s, xadtText(getElm(%s, %s, %s, %s)) FROM %s",
		x.rel.IDColumn(), x.col.Name, sqlString(x.child), sqlString(target), sqlString(key), x.rel.Name)
	if g.rng.Intn(2) == 0 {
		sql += fmt.Sprintf(" WHERE findKeyInElm(%s, %s, %s) = 1", x.col.Name, sqlString(target), sqlString(key))
	}
	return Case{Name: "getelm:" + x.col.Name, XORator: sql}, true
}

func (g *qgen) tXadtIndex() (Case, bool) {
	x, ok := g.pickXadtCol()
	if !ok {
		return Case{}, false
	}
	i := 1 + g.rng.Intn(3)
	j := i + g.rng.Intn(2)
	sql := fmt.Sprintf("SELECT %s, xadtText(getElmIndex(%s, %s, %s, %d, %d)) FROM %s",
		x.rel.IDColumn(), x.col.Name, sqlString(""), sqlString(x.child), i, j, x.rel.Name)
	return Case{Name: "getelmindex:" + x.col.Name, XORator: sql}, true
}

func (g *qgen) tXadtUnnest() (Case, bool) {
	x, ok := g.pickXadtCol()
	if !ok {
		return Case{}, false
	}
	sql := fmt.Sprintf("SELECT %s, xadtInnerText(u.out) FROM %s, TABLE(unnest(%s, %s)) u",
		x.rel.IDColumn(), x.rel.Name, x.col.Name, sqlString(x.child))
	if target := g.childTarget(x); target != x.child || g.rng.Intn(2) == 0 {
		if w, ok := g.pickWord(target); ok {
			sql += fmt.Sprintf(" WHERE findKeyInElm(u.out, %s, %s) = 1", sqlString(target), sqlString(w))
		}
	}
	return Case{Name: "unnest:" + x.col.Name, XORator: sql}, true
}
