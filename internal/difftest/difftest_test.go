package difftest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/engine/exec"
	"repro/internal/testutil"
)

// TestDifferentialSmoke is the short-budget differential run that make ci
// executes under -race: a dozen random DTDs, each checked across the full
// mapping × DOP × fast-path × legacy matrix.
func TestDifferentialSmoke(t *testing.T) {
	seed := testutil.Seed(t, 1)
	sum, err := Run(Options{
		Seed:         seed,
		Iters:        12,
		ArtifactPath: filepath.Join(t.TempDir(), "artifact.txt"),
	})
	if err != nil {
		t.Fatalf("harness error: %v (%s)", err, testutil.ReproLine(t, seed))
	}
	if len(sum.Divergences) > 0 {
		t.Fatalf("%d divergences, first: %s (%s)",
			len(sum.Divergences), sum.Divergences[0], testutil.ReproLine(t, seed))
	}
	if sum.Cells == 0 {
		t.Fatal("no matrix cells executed")
	}
	t.Logf("%d iterations, %d cases, %d cells, all identical", sum.Iters, sum.Cases, sum.Cells)
}

// TestDifferentialCrashAxis runs the matrix with the crash-recovery axis
// on: each iteration's documents are also loaded through a WAL on a
// fault-injecting in-memory filesystem, crashed at a seeded point,
// recovered, resumed, and the recovered store must agree with the
// uninterrupted one — byte-for-byte on the heaps and row-for-row on
// every XORator query.
func TestDifferentialCrashAxis(t *testing.T) {
	seed := testutil.Seed(t, 1)
	sum, err := Run(Options{
		Seed:         seed,
		Iters:        8,
		Crash:        true,
		ArtifactPath: filepath.Join(t.TempDir(), "artifact.txt"),
	})
	if err != nil {
		t.Fatalf("harness error: %v (%s)", err, testutil.ReproLine(t, seed))
	}
	if len(sum.Divergences) > 0 {
		t.Fatalf("%d divergences, first: %s (%s)",
			len(sum.Divergences), sum.Divergences[0], testutil.ReproLine(t, seed))
	}
	t.Logf("%d iterations, %d cells with recovered stores, all identical", sum.Iters, sum.Cells)
}

// TestDifferentialCostModelAxis reruns the matrix with the cost-model
// axis on: every query also executes under the greedy pre-statistics
// planner, with statistics invalidated, and with statistics forced
// stale under DisableAutoStats. Join orders may differ across those
// cells, but the rows must not: multiset-identical in general, byte-
// identical for the fully-ordered three-way-join cases.
func TestDifferentialCostModelAxis(t *testing.T) {
	seed := testutil.Seed(t, 1)
	sum, err := Run(Options{
		Seed:         seed,
		Iters:        8,
		CostModel:    true,
		ArtifactPath: filepath.Join(t.TempDir(), "artifact.txt"),
	})
	if err != nil {
		t.Fatalf("harness error: %v (%s)", err, testutil.ReproLine(t, seed))
	}
	if len(sum.Divergences) > 0 {
		t.Fatalf("%d divergences, first: %s (%s)",
			len(sum.Divergences), sum.Divergences[0], testutil.ReproLine(t, seed))
	}
	t.Logf("%d iterations, %d cells including cost-model axis, all identical", sum.Iters, sum.Cells)
}

// TestDifferentialMemBudgetAxis reruns the matrix with a tiny per-query
// memory budget: every query additionally executes with its blocking
// operators forced through the spill paths (serially and at DOP), and
// must still return exactly the unlimited-memory rows on both mappings.
func TestDifferentialMemBudgetAxis(t *testing.T) {
	seed := testutil.Seed(t, 1)
	sum, err := Run(Options{
		Seed:         seed,
		Iters:        8,
		MemBudget:    4096,
		ArtifactPath: filepath.Join(t.TempDir(), "artifact.txt"),
	})
	if err != nil {
		t.Fatalf("harness error: %v (%s)", err, testutil.ReproLine(t, seed))
	}
	if len(sum.Divergences) > 0 {
		t.Fatalf("%d divergences, first: %s (%s)",
			len(sum.Divergences), sum.Divergences[0], testutil.ReproLine(t, seed))
	}
	t.Logf("%d iterations, %d cells including budget axis, all identical", sum.Iters, sum.Cells)
}

// TestDifferentialDetectsDivergence proves the harness has teeth: with the
// Gather's morsel reordering disabled (a deliberately corrupted config),
// parallel cells emit rows in arrival order and the run must report a
// divergence plus a seed-replayable failure artifact.
func TestDifferentialDetectsDivergence(t *testing.T) {
	exec.DisableGatherReorder = true
	defer func() { exec.DisableGatherReorder = false }()
	seed := testutil.Seed(t, 1)
	art := filepath.Join(t.TempDir(), "artifact.txt")
	sum, err := Run(Options{
		Seed:         seed,
		Iters:        40,
		Docs:         4,
		LoadRepeat:   12,
		FailFast:     true,
		ArtifactPath: art,
	})
	if err != nil {
		t.Fatalf("harness error: %v (%s)", err, testutil.ReproLine(t, seed))
	}
	if len(sum.Divergences) == 0 {
		t.Fatalf("sabotaged Gather reorder went undetected (%s)", testutil.ReproLine(t, seed))
	}
	data, err := os.ReadFile(art)
	if err != nil {
		t.Fatalf("failure artifact not written: %v", err)
	}
	for _, want := range []string{"# replay: go run ./cmd/repro -exp difftest -seed", "--- DTD ---", "--- document 1 of"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("artifact missing %q", want)
		}
	}
	t.Logf("detected: %s", sum.Divergences[0])
}
